package vsfs

import (
	"encoding/json"

	"vsfs/internal/bitset"
	"vsfs/internal/checker"
	"vsfs/internal/ir"
	"vsfs/internal/obs"
)

// VarFacts is one source-level variable's points-to facts.
type VarFacts struct {
	Var      string   `json:"var"`
	PointsTo []string `json:"pointsTo"`
}

// FuncReport is one function's slice of the analysis result.
type FuncReport struct {
	Func    string     `json:"func"`
	Vars    []VarFacts `json:"vars,omitempty"`
	Callees []string   `json:"callees,omitempty"`
}

// Finding is one checker-reported issue, mirroring
// internal/checker.Finding at the facade boundary. File, Line and Col
// are the source position when the program carries provenance
// (mini-C input with Options.Filename set); zero otherwise.
type Finding struct {
	Kind    string `json:"kind"`
	Func    string `json:"func"`
	Label   uint32 `json:"label"`
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
}

// Report is the machine-readable form of Dump plus the call graph,
// checker findings, and run statistics. Every slice is sorted, so two
// runs over the same input marshal to byte-identical JSON — the
// property the analysis service's result cache relies on.
type Report struct {
	Mode      string       `json:"mode"`
	Functions []FuncReport `json:"functions"`
	Findings  []Finding    `json:"findings"`
	Stats     Summary      `json:"stats"`

	// Shape is the Table II-style program feature vector; deterministic
	// for a given input, so it never breaks the byte-identity the result
	// cache keys on.
	Shape Shape `json:"shape"`

	// HotObjects is the per-object cost attribution top-K, present only
	// when the run enabled Options.Attr (so default reports stay
	// byte-identical to pre-attribution ones).
	HotObjects []obs.HotObject `json:"hotObjects,omitempty"`

	// Degraded marks a run that exhausted its resource budget and fell
	// down the backend ladder; Degradation is the human-readable
	// reason. Mode reflects the analysis that actually produced the
	// facts ("cfgfree" or "andersen" on degraded runs).
	Degraded    bool   `json:"degraded,omitempty"`
	Degradation string `json:"degradation,omitempty"`
}

// reportTopK bounds the hot-object table embedded in reports; clients
// needing more call Result.HotObjects directly.
const reportTopK = 10

// Report builds the structured result. Order is deterministic
// everywhere: functions in definition order, variables and callees
// sorted by name, findings in instruction order.
func (r *Result) Report() Report {
	rep := Report{
		Mode:        r.mode.String(),
		Findings:    r.Check(),
		Stats:       r.Stats(),
		Shape:       r.shape,
		HotObjects:  r.HotObjects(reportTopK),
		Degraded:    r.degraded,
		Degradation: r.degradation,
	}
	if rep.Findings == nil {
		rep.Findings = []Finding{}
	}
	cg := r.CallGraph()
	for _, f := range r.prog.Funcs {
		if len(f.Name) >= 2 && f.Name[:2] == "__" {
			continue
		}
		fr := FuncReport{Func: f.Name, Callees: cg[f.Name]}
		names, groups := r.varGroups(f)
		for _, n := range names {
			if groups[n].IsEmpty() {
				continue
			}
			fr.Vars = append(fr.Vars, VarFacts{Var: n, PointsTo: r.objNames(groups[n])})
		}
		rep.Functions = append(rep.Functions, fr)
	}
	return rep
}

// MarshalJSON is not customised; Report marshals deterministically
// because it holds only structs and sorted slices. MarshalIndent is a
// convenience wrapper producing the canonical rendering used by
// cmd/vsfs -json and the analysis server.
func (rep Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// resultFacts adapts Result to the checker interfaces (including
// checker.FlowFacts), dispatching to whichever analysis the run
// selected.
type resultFacts struct{ r *Result }

func (a resultFacts) PointsTo(v ir.ID) *bitset.Sparse      { return a.r.pointsTo(v) }
func (a resultFacts) ObjectSummary(o ir.ID) *bitset.Sparse { return a.r.objectSummary(o) }
func (a resultFacts) ContentsBefore(label uint32, o ir.ID) *bitset.Sparse {
	return a.r.contentsBefore(label, o)
}

// CheckConfig tunes Result.CheckWith. The zero value runs the
// memory-safety checkers only; naming both a taint source and sink adds
// the information-flow checker, optionally hardened with sanitizer
// functions.
type CheckConfig struct {
	// TaintSource marks every object allocated in the named function
	// sensitive; TaintSink reports sensitive objects reaching arguments
	// of calls to the named function. Both must be set to enable the
	// taint checker.
	TaintSource string `json:"taintSource,omitempty"`
	TaintSink   string `json:"taintSink,omitempty"`
	// TaintSanitizers declassify everything reachable from arguments of
	// calls to the named functions.
	TaintSanitizers []string `json:"taintSanitizers,omitempty"`
}

// Check runs the memory-safety clients (null/uninitialised dereference,
// dangling returns, stack escapes, use-after-free, double-free,
// memory-leak) over the solved facts of this run's analysis mode.
// Findings come back in instruction order per client — deterministic
// for a given program.
func (r *Result) Check() []Finding {
	return r.CheckWith(CheckConfig{})
}

// CheckWith is Check plus optional taint checking; see CheckConfig.
func (r *Result) CheckWith(cfg CheckConfig) []Finding {
	facts := resultFacts{r}
	var all []checker.Finding
	all = append(all, checker.NullDerefs(r.prog, facts)...)
	all = append(all, checker.DanglingReturns(r.prog, facts)...)
	all = append(all, checker.StackEscapes(r.prog, facts)...)
	all = append(all, checker.UseAfterFrees(r.prog, facts)...)
	all = append(all, checker.DoubleFrees(r.prog, facts)...)
	all = append(all, checker.MemoryLeaks(r.prog, facts)...)
	if cfg.TaintSource != "" && cfg.TaintSink != "" {
		sans := make([]checker.LeakSanitizer, 0, len(cfg.TaintSanitizers))
		for _, s := range cfg.TaintSanitizers {
			sans = append(sans, checker.LeakSanitizer{Func: s})
		}
		all = append(all, checker.Leaks(r.prog, facts, facts,
			checker.LeakSource{Func: cfg.TaintSource},
			checker.LeakSink{Func: cfg.TaintSink}, sans...)...)
	}
	out := make([]Finding, 0, len(all))
	for _, f := range all {
		out = append(out, Finding{
			Kind:    string(f.Kind),
			Func:    f.Func,
			Label:   f.Label,
			File:    r.prog.File,
			Line:    f.Pos.Line,
			Col:     f.Pos.Col,
			Message: f.Message,
		})
	}
	return out
}
