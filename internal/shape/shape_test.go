package shape_test

import (
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/irparse"
	"vsfs/internal/shape"
)

func profileOf(t *testing.T, src string) shape.Profile {
	t.Helper()
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return shape.Of(prog, andersen.Analyze(prog))
}

func TestProfileCounts(t *testing.T) {
	const src = `
func main() {
entry:
  pa = alloc a 0
  pb = alloc b 0
  q = alloc qcell 0
  store q, pa
  x = load q
  store q, pb
  y = load q
  ret
}
`
	p := profileOf(t, src)
	if p.Functions != 1 {
		t.Errorf("Functions = %d, want 1", p.Functions)
	}
	if p.Loads != 2 || p.Stores != 2 {
		t.Errorf("Loads/Stores = %d/%d, want 2/2", p.Loads, p.Stores)
	}
	if p.StoreLoadRatio != 1.0 {
		t.Errorf("StoreLoadRatio = %v, want 1.0", p.StoreLoadRatio)
	}
	if p.AddressTaken != 3 {
		t.Errorf("AddressTaken = %d, want 3 (a, b, qcell)", p.AddressTaken)
	}
	if p.Calls != 0 || p.IndirectCalls != 0 {
		t.Errorf("Calls/IndirectCalls = %d/%d, want 0/0", p.Calls, p.IndirectCalls)
	}
	if p.Instrs < 7 {
		t.Errorf("Instrs = %d, want at least the 7 visible instructions", p.Instrs)
	}
	// x and y each reach {a, b} in the flow-insensitive auxiliary.
	if p.MaxPtsSize != 2 {
		t.Errorf("MaxPtsSize = %d, want 2", p.MaxPtsSize)
	}
	if p.AvgPtsSize < 1 || p.AvgPtsSize > 2 {
		t.Errorf("AvgPtsSize = %v, want within [1, 2]", p.AvgPtsSize)
	}
	// All four memory accesses go through q with |pts(q)| = 1, so the
	// density is exactly 4/Instrs.
	if want := 4.0 / float64(p.Instrs); p.IndirectDensity != want {
		t.Errorf("IndirectDensity = %v, want %v", p.IndirectDensity, want)
	}
	if p.AddressTaken > 0 {
		if want := float64(p.Singletons) / float64(p.AddressTaken); p.SingletonRatio != want {
			t.Errorf("SingletonRatio = %v, want %v", p.SingletonRatio, want)
		}
	}
}

func TestProfileCallMix(t *testing.T) {
	const src = `
func helper() {
entry:
  ret
}

func main() {
entry:
  fp = funcaddr helper
  call helper()
  calli fp()
  ret
}
`
	p := profileOf(t, src)
	if p.Functions != 2 {
		t.Errorf("Functions = %d, want 2", p.Functions)
	}
	if p.Calls != 2 {
		t.Errorf("Calls = %d, want 2", p.Calls)
	}
	if p.IndirectCalls != 1 {
		t.Errorf("IndirectCalls = %d, want 1 (the calli)", p.IndirectCalls)
	}
}

// TestProfileZeroDenominators pins the contract that every ratio is 0
// (not NaN) when its denominator is 0.
func TestProfileZeroDenominators(t *testing.T) {
	const src = `
func main() {
entry:
  ret
}
`
	p := profileOf(t, src)
	if p.Loads != 0 || p.Stores != 0 || p.AddressTaken != 0 {
		t.Fatalf("unexpected counts in empty program: %+v", p)
	}
	if p.StoreLoadRatio != 0 || p.SingletonRatio != 0 || p.AvgPtsSize != 0 || p.IndirectDensity != 0 {
		t.Errorf("ratios must be 0 with zero denominators, got %+v", p)
	}
}

// TestProfileDeterministic is the oracle invariant: the profile is a
// pure function of (program, aux), so recomputing — and re-solving from
// source — must reproduce it exactly. Profile is a comparable struct,
// so != is a field-for-field check.
func TestProfileDeterministic(t *testing.T) {
	const src = `
func main() {
entry:
  pa = alloc a 0
  q = alloc qcell 0
  store q, pa
  x = load q
  call main()
  ret
}
`
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	aux := andersen.Analyze(prog)
	p1 := shape.Of(prog, aux)
	p2 := shape.Of(prog, aux)
	if p1 != p2 {
		t.Errorf("recompute differs:\n%+v\n%+v", p1, p2)
	}
	prog2, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p3 := shape.Of(prog2, andersen.Analyze(prog2))
	if p1 != p3 {
		t.Errorf("re-solve differs:\n%+v\n%+v", p1, p3)
	}
}
