// Package shape computes a Table II-style program feature vector from
// the partial-SSA IR and the completed auxiliary (Andersen) result —
// deliberately *before* memory-SSA or SVFG construction, so a backend
// chooser can consult it without paying for the staged pipeline it is
// choosing whether to run. The features mirror the program-shape
// columns the paper's evaluation keys on (IR size, indirect density,
// address-taken objects) plus the ratios the CFG-free backend's
// usefulness hinges on (store/load balance, singleton coverage).
//
// The profile is a pure function of (program, auxiliary result): both
// are deterministic, so re-solving the same source must reproduce the
// profile bit-for-bit — an oracle invariant (internal/oracle).
package shape

import (
	"vsfs/internal/andersen"
	"vsfs/internal/ir"
)

// Profile is the feature vector. Ratios are 0 when their denominator
// is 0. This is the exact input contract for the auto-backend
// heuristic (ROADMAP item 3): keep fields append-only.
type Profile struct {
	// IR size.
	Instrs    int `json:"instrs"`
	Functions int `json:"functions"`

	// Memory-access mix.
	Loads  int `json:"loads"`
	Stores int `json:"stores"`
	// StoreLoadRatio is Stores/Loads: store-heavy programs version
	// (and meld) more, load-heavy ones stress consumed-set lookups.
	StoreLoadRatio float64 `json:"storeLoadRatio"`

	// Object population.
	AddressTaken int `json:"addressTaken"`
	Singletons   int `json:"singletons"`
	// SingletonRatio is Singletons/AddressTaken: the fraction of
	// objects eligible for strong updates, which bounds how much
	// flow-sensitivity can pay off at all.
	SingletonRatio float64 `json:"singletonRatio"`

	// Call structure.
	Calls         int `json:"calls"`
	IndirectCalls int `json:"indirectCalls"`

	// Auxiliary points-to density.
	// AvgPtsSize averages |pts_aux(p)| over pointers with a non-empty
	// set; MaxPtsSize is the largest single set.
	AvgPtsSize float64 `json:"avgPtsSize"`
	MaxPtsSize int     `json:"maxPtsSize"`

	// IndirectDensity estimates indirect value-flow edges per
	// instruction before the SVFG exists: each memory access fans out
	// to every object its base pointer may reach, so
	// Σ_access |pts_aux(base)| / Instrs approximates Table II's
	// indirect-edge density.
	IndirectDensity float64 `json:"indirectDensity"`
}

// Of computes the profile. aux must come from prog. Iteration is in
// label/ID order throughout, so the result is deterministic.
func Of(prog *ir.Program, aux *andersen.Result) Profile {
	var p Profile
	for _, f := range prog.Funcs {
		p.Functions++
		f.ForEachInstr(func(in *ir.Instr) {
			p.Instrs++
			switch in.Op {
			case ir.Load:
				p.Loads++
				p.IndirectDensity += float64(aux.PointsTo(in.Uses[0]).Len())
			case ir.Store:
				p.Stores++
				p.IndirectDensity += float64(aux.PointsTo(in.Uses[0]).Len())
			case ir.Call:
				p.Calls++
				if in.Callee == nil {
					p.IndirectCalls++
				}
			}
		})
	}
	singles := aux.Singletons()
	var ptsSum, ptsPtrs int
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsObject(id) {
			p.AddressTaken++
			if singles.Has(uint32(id)) {
				p.Singletons++
			}
			continue
		}
		if !prog.IsPointer(id) {
			continue
		}
		if n := aux.PointsTo(id).Len(); n > 0 {
			ptsSum += n
			ptsPtrs++
			if n > p.MaxPtsSize {
				p.MaxPtsSize = n
			}
		}
	}
	if p.Loads > 0 {
		p.StoreLoadRatio = float64(p.Stores) / float64(p.Loads)
	}
	if p.AddressTaken > 0 {
		p.SingletonRatio = float64(p.Singletons) / float64(p.AddressTaken)
	}
	if ptsPtrs > 0 {
		p.AvgPtsSize = float64(ptsSum) / float64(ptsPtrs)
	}
	if p.Instrs > 0 {
		p.IndirectDensity /= float64(p.Instrs)
	} else {
		p.IndirectDensity = 0
	}
	return p
}
