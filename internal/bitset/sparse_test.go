package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetHasClear(t *testing.T) {
	s := New()
	if !s.IsEmpty() {
		t.Fatal("new set not empty")
	}
	ids := []uint32{0, 1, 63, 64, 65, 127, 128, 1000000, 4294967295}
	for _, id := range ids {
		if !s.Set(id) {
			t.Errorf("Set(%d) reported no change on first insert", id)
		}
		if s.Set(id) {
			t.Errorf("Set(%d) reported change on second insert", id)
		}
		if !s.Has(id) {
			t.Errorf("Has(%d) = false after Set", id)
		}
	}
	if got := s.Len(); got != len(ids) {
		t.Errorf("Len = %d, want %d", got, len(ids))
	}
	if got := s.Min(); got != 0 {
		t.Errorf("Min = %d, want 0", got)
	}
	for _, id := range ids {
		if !s.Clear(id) {
			t.Errorf("Clear(%d) reported no change", id)
		}
		if s.Clear(id) {
			t.Errorf("Clear(%d) reported change on second clear", id)
		}
		if s.Has(id) {
			t.Errorf("Has(%d) = true after Clear", id)
		}
	}
	if !s.IsEmpty() {
		t.Error("set not empty after clearing all")
	}
	if s.Words() != 0 {
		t.Errorf("Words = %d after clearing all, want 0", s.Words())
	}
}

func TestHasOnMissingChunk(t *testing.T) {
	s := Of(1000)
	if s.Has(2000) || s.Has(5) {
		t.Error("Has reported membership for absent chunk")
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min on empty set did not panic")
		}
	}()
	New().Min()
}

func TestSingle(t *testing.T) {
	if _, ok := New().Single(); ok {
		t.Error("Single true on empty set")
	}
	if id, ok := Of(42).Single(); !ok || id != 42 {
		t.Errorf("Single on {42} = (%d, %v)", id, ok)
	}
	if _, ok := Of(42, 43).Single(); ok {
		t.Error("Single true on 2-element same-word set")
	}
	if _, ok := Of(42, 420).Single(); ok {
		t.Error("Single true on 2-element cross-word set")
	}
}

func TestUnionWith(t *testing.T) {
	a := Of(1, 2, 3, 200)
	b := Of(3, 4, 100)
	if !a.UnionWith(b) {
		t.Error("UnionWith reported no change")
	}
	want := []uint32{1, 2, 3, 4, 100, 200}
	if got := a.Slice(); !equalIDs(got, want) {
		t.Errorf("union = %v, want %v", got, want)
	}
	if a.UnionWith(b) {
		t.Error("second UnionWith reported change")
	}
	// Union into empty.
	c := New()
	if !c.UnionWith(a) || !c.Equal(a) {
		t.Error("union into empty set failed")
	}
	// Union with empty.
	if a.UnionWith(New()) {
		t.Error("union with empty set reported change")
	}
}

func TestIntersectWith(t *testing.T) {
	a := Of(1, 2, 3, 200, 300)
	b := Of(2, 3, 300, 400)
	if !a.IntersectWith(b) {
		t.Error("IntersectWith reported no change")
	}
	if got, want := a.Slice(), []uint32{2, 3, 300}; !equalIDs(got, want) {
		t.Errorf("intersection = %v, want %v", got, want)
	}
	if a.IntersectWith(b) {
		t.Error("second IntersectWith reported change")
	}
	a.IntersectWith(New())
	if !a.IsEmpty() {
		t.Error("intersection with empty not empty")
	}
}

func TestDifferenceWith(t *testing.T) {
	a := Of(1, 2, 3, 200, 300)
	b := Of(2, 300, 400)
	if !a.DifferenceWith(b) {
		t.Error("DifferenceWith reported no change")
	}
	if got, want := a.Slice(), []uint32{1, 3, 200}; !equalIDs(got, want) {
		t.Errorf("difference = %v, want %v", got, want)
	}
	if a.DifferenceWith(b) {
		t.Error("second DifferenceWith reported change")
	}
}

func TestIntersectsAndSubset(t *testing.T) {
	a := Of(1, 100, 1000)
	b := Of(100)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects false on overlapping sets")
	}
	if a.Intersects(Of(2, 200)) {
		t.Error("Intersects true on disjoint sets")
	}
	if !b.SubsetOf(a) {
		t.Error("SubsetOf false for {100} ⊆ {1,100,1000}")
	}
	if a.SubsetOf(b) {
		t.Error("SubsetOf true for superset")
	}
	if !New().SubsetOf(b) {
		t.Error("empty not subset")
	}
	if !b.SubsetOf(b) {
		t.Error("set not subset of itself")
	}
	if Of(1).SubsetOf(New()) {
		t.Error("nonempty subset of empty")
	}
	// Same word, extra bit.
	if Of(1, 2).SubsetOf(Of(1)) {
		t.Error("{1,2} reported subset of {1}")
	}
}

func TestCloneCopyEqual(t *testing.T) {
	a := Of(5, 6, 7, 500)
	c := a.Clone()
	if !c.Equal(a) {
		t.Error("clone not equal")
	}
	c.Set(9)
	if c.Equal(a) {
		t.Error("mutated clone still equal")
	}
	var d Sparse
	d.Copy(a)
	if !d.Equal(a) {
		t.Error("copy not equal")
	}
	if a.Equal(Of(5, 6, 7)) {
		t.Error("sets of different length equal")
	}
	if Of(1).Equal(Of(2)) {
		t.Error("{1} equal {2}")
	}
}

func TestStringAndSlice(t *testing.T) {
	if got := Of(3, 1, 2).String(); got != "{1, 2, 3}" {
		t.Errorf("String = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	if Of().Slice() != nil {
		t.Error("empty Slice not nil")
	}
}

func TestHashDistinguishes(t *testing.T) {
	if Of(1, 2).Hash() == Of(1, 3).Hash() {
		t.Error("hash collision on tiny distinct sets (suspicious)")
	}
	if Of(1, 2).Hash() != Of(2, 1).Hash() {
		t.Error("hash depends on insertion order")
	}
}

// model-based property tests against map[uint32]bool

type opSeq []opItem

type opItem struct {
	Op byte
	ID uint32
}

func (opSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(200)
	ops := make(opSeq, n)
	for i := range ops {
		ops[i] = opItem{Op: byte(r.Intn(3)), ID: uint32(r.Intn(300))}
	}
	return reflect.ValueOf(ops)
}

func TestQuickModel(t *testing.T) {
	f := func(ops opSeq) bool {
		s := New()
		model := map[uint32]bool{}
		for _, op := range ops {
			switch op.Op {
			case 0:
				s.Set(op.ID)
				model[op.ID] = true
			case 1:
				s.Clear(op.ID)
				delete(model, op.ID)
			case 2:
				if s.Has(op.ID) != model[op.ID] {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		keys := make([]uint32, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return equalIDs(s.Slice(), keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSetAlgebra(t *testing.T) {
	type pair struct{ A, B []uint16 }
	f := func(p pair) bool {
		a, b := fromU16(p.A), fromU16(p.B)

		// Union then difference/intersection laws.
		u := a.Clone()
		u.UnionWith(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		i := a.Clone()
		i.IntersectWith(b)
		if !i.SubsetOf(a) || !i.SubsetOf(b) {
			return false
		}
		d := a.Clone()
		d.DifferenceWith(b)
		if d.Intersects(b) {
			return false
		}
		// d ∪ i == a
		di := d.Clone()
		di.UnionWith(i)
		if !di.Equal(a) {
			return false
		}
		// Union commutative.
		u2 := b.Clone()
		u2.UnionWith(a)
		if !u2.Equal(u) {
			return false
		}
		// Idempotent.
		u3 := u.Clone()
		if u3.UnionWith(u) {
			return false
		}
		// Hash agreement on equal contents.
		return u2.Hash() == u.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func fromU16(xs []uint16) *Sparse {
	s := New()
	for _, x := range xs {
		s.Set(uint32(x))
	}
	return s
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	if got := in.Intern(New()); got != 0 {
		t.Errorf("empty set interned to %d, want 0 (ε)", got)
	}
	a := in.Intern(Of(1, 2, 3))
	b := in.Intern(Of(3, 2, 1))
	if a != b {
		t.Errorf("equal contents interned to %d and %d", a, b)
	}
	c := in.Intern(Of(1, 2))
	if c == a {
		t.Error("distinct contents interned to same ID")
	}
	if got := in.Get(a); !got.Equal(Of(1, 2, 3)) {
		t.Errorf("Get(%d) = %v", a, got)
	}
	if in.Len() != 3 {
		t.Errorf("Len = %d, want 3", in.Len())
	}
	// Mutating the argument after interning must not corrupt the table.
	s := Of(9)
	id := in.Intern(s)
	s.Set(10)
	if !in.Get(id).Equal(Of(9)) {
		t.Error("interned set aliased caller's storage")
	}
}

func BenchmarkUnionWith(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := New()
	c := New()
	for i := 0; i < 500; i++ {
		a.Set(uint32(r.Intn(10000)))
		c.Set(uint32(r.Intn(10000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := a.Clone()
		d.UnionWith(c)
	}
}
