package bitset

import "sync/atomic"

// WordBytes is the in-memory size of one element of a Sparse set: a
// 64-bit word plus its 32-bit base (padded). The guard layer multiplies
// word counts by this to express budgets in bytes.
const WordBytes = 16

// allocatedWords counts, process-wide, the net growth in Sparse
// elements: every insertion of a new element (Set, the growing paths of
// UnionWith and Copy) adds to it. It is monotone — shrinking operations
// do not subtract — making it a cheap cumulative-allocation clock the
// guard layer reads twice (arm, check) to bound a run's points-to
// storage growth. Accounting is global: concurrent solves observe each
// other's allocations, which is the conservatism a process-protecting
// budget pool wants.
var allocatedWords atomic.Int64

// AllocatedWords returns the cumulative element-allocation count. The
// absolute value is meaningless; only differences are.
func AllocatedWords() int64 { return allocatedWords.Load() }

// trackAlloc records the net growth of a set by n elements.
func trackAlloc(n int) {
	if n > 0 {
		allocatedWords.Add(int64(n))
	}
}
