package bitset

import (
	"sort"
	"testing"
)

// decodeOps replays a byte string as a mutation history over two sets,
// mirroring every step in map models. Three bytes per op: opcode, then
// a big-endian 16-bit ID, so chunks well past the first word get
// exercised.
func decodeOps(data []byte) (a, b *Sparse, ma, mb map[uint32]bool) {
	a, b = New(), New()
	ma, mb = map[uint32]bool{}, map[uint32]bool{}
	for i := 0; i+2 < len(data); i += 3 {
		id := uint32(data[i+1])<<8 | uint32(data[i+2])
		switch data[i] % 4 {
		case 0:
			a.Set(id)
			ma[id] = true
		case 1:
			a.Clear(id)
			delete(ma, id)
		case 2:
			b.Set(id)
			mb[id] = true
		case 3:
			b.Clear(id)
			delete(mb, id)
		}
	}
	return a, b, ma, mb
}

func fromModel(m map[uint32]bool) *Sparse {
	s := New()
	for id := range m {
		s.Set(id)
	}
	return s
}

func sortedIDs(m map[uint32]bool) []uint32 {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FuzzSparseLaws checks the algebraic laws the solvers lean on against
// a map model: membership, the union/intersect/difference triangle,
// subset/intersects consistency, Min/Single/Len, and Hash/Equal
// agreement for sets built by different mutation histories.
func FuzzSparseLaws(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 2, 0, 1, 1, 0, 1})
	f.Add([]byte{0, 0, 63, 0, 0, 64, 2, 0, 64, 1, 0, 63, 3, 0, 64})
	f.Add([]byte{0, 3, 232, 2, 3, 232, 0, 0, 10, 2, 0, 200, 1, 3, 232})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ma, mb := decodeOps(data)

		// Membership, cardinality, and ascending iteration.
		if a.Len() != len(ma) {
			t.Fatalf("Len = %d, model has %d", a.Len(), len(ma))
		}
		want := sortedIDs(ma)
		got := a.Slice()
		if len(got) != len(want) {
			t.Fatalf("Slice = %v, model %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Slice[%d] = %d, model %d", i, got[i], want[i])
			}
		}
		for _, id := range want {
			if !a.Has(id) {
				t.Fatalf("Has(%d) = false, model has it", id)
			}
		}

		// Min and Single.
		if len(want) > 0 && a.Min() != want[0] {
			t.Fatalf("Min = %d, model %d", a.Min(), want[0])
		}
		if id, ok := a.Single(); ok != (len(want) == 1) || (ok && id != want[0]) {
			t.Fatalf("Single = (%d, %v), model %v", id, ok, want)
		}

		// Union / intersection / difference against the model.
		union, inter, diff := a.Clone(), a.Clone(), a.Clone()
		union.UnionWith(b)
		inter.IntersectWith(b)
		diff.DifferenceWith(b)
		mu, mi, md := map[uint32]bool{}, map[uint32]bool{}, map[uint32]bool{}
		for id := range ma {
			mu[id] = true
			if mb[id] {
				mi[id] = true
			} else {
				md[id] = true
			}
		}
		for id := range mb {
			mu[id] = true
		}
		for name, pair := range map[string][2]*Sparse{
			"union":      {union, fromModel(mu)},
			"intersect":  {inter, fromModel(mi)},
			"difference": {diff, fromModel(md)},
		} {
			if !pair[0].Equal(pair[1]) {
				t.Fatalf("%s = %v, model %v", name, pair[0], pair[1])
			}
		}

		// Inclusion–exclusion and the recomposition identity
		// (A\B) ∪ (A∩B) = A.
		if union.Len() != a.Len()+b.Len()-inter.Len() {
			t.Fatalf("|A∪B| = %d, want |A|+|B|-|A∩B| = %d",
				union.Len(), a.Len()+b.Len()-inter.Len())
		}
		recomposed := diff.Clone()
		recomposed.UnionWith(inter)
		if !recomposed.Equal(a) {
			t.Fatalf("(A\\B) ∪ (A∩B) = %v, want A = %v", recomposed, a)
		}

		// Predicate consistency with the derived sets.
		if a.SubsetOf(b) != diff.IsEmpty() {
			t.Fatalf("SubsetOf = %v, but A\\B = %v", a.SubsetOf(b), diff)
		}
		if a.Intersects(b) != !inter.IsEmpty() {
			t.Fatalf("Intersects = %v, but A∩B = %v", a.Intersects(b), inter)
		}

		// Hash/Equal agreement: the same contents reached by a fresh
		// reverse-order build must be Equal with an equal Hash.
		rebuilt := New()
		for i := len(want) - 1; i >= 0; i-- {
			rebuilt.Set(want[i])
		}
		if !rebuilt.Equal(a) || rebuilt.Hash() != a.Hash() {
			t.Fatalf("rebuild of %v is not Hash/Equal-identical", want)
		}

		// Copy replaces any prior contents, including wider ones.
		dst := union.Clone()
		dst.Copy(a)
		if !dst.Equal(a) {
			t.Fatalf("Copy onto wider destination = %v, want %v", dst, a)
		}
	})
}

// FuzzInternerStability checks the interner against the same op
// decoder: equal contents always map to the same ID, distinct contents
// to distinct IDs, Get returns the canonical contents, and mutating an
// argument after interning never disturbs previously issued IDs.
func FuzzInternerStability(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 2, 0, 1})
	f.Add([]byte{0, 1, 0, 0, 2, 0, 2, 1, 0, 2, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, _, _ := decodeOps(data)
		in := NewInterner()

		ida := in.Intern(a)
		idb := in.Intern(b)
		if (ida == idb) != a.Equal(b) {
			t.Fatalf("Intern IDs %d/%d disagree with Equal = %v", ida, idb, a.Equal(b))
		}
		if !in.Get(ida).Equal(a) || !in.Get(idb).Equal(b) {
			t.Fatal("Get does not round-trip the interned contents")
		}

		// Mutate the argument; the canonical set and the ID mapping for
		// the original contents must both survive.
		snapshot := a.Clone()
		a.Set(60000)
		a.Clear(0)
		if !in.Get(ida).Equal(snapshot) {
			t.Fatalf("canonical set changed after argument mutation: %v vs %v",
				in.Get(ida), snapshot)
		}
		if got := in.Intern(snapshot); got != ida {
			t.Fatalf("re-interning the original contents gives %d, want %d", got, ida)
		}

		// Interning is idempotent per contents and Len counts distinct
		// contents only (+1 for the preassigned empty set ε).
		if got := in.Intern(b.Clone()); got != idb {
			t.Fatalf("re-interning b gives %d, want %d", got, idb)
		}
		wantLen := 1
		if !snapshot.IsEmpty() {
			wantLen++
		}
		if !b.IsEmpty() && !b.Equal(snapshot) {
			wantLen++
		}
		if in.Len() != wantLen {
			t.Fatalf("Len = %d after interning two sets, want %d", in.Len(), wantLen)
		}
	})
}
