package bitset

import "testing"

func TestInternEmptyIsZero(t *testing.T) {
	in := NewInterner()
	if got := in.Intern(New()); got != 0 {
		t.Fatalf("Intern(∅) = %d, want 0 (the meld identity ε)", got)
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d after interning only ∅, want 1", in.Len())
	}
}

func TestInternDeduplicates(t *testing.T) {
	in := NewInterner()
	a := in.Intern(Of(1, 2, 300))
	b := in.Intern(Of(1, 2, 300))
	if a != b {
		t.Fatalf("equal contents interned to different IDs %d and %d", a, b)
	}
	c := in.Intern(Of(1, 2, 301))
	if c == a {
		t.Fatalf("different contents interned to the same ID %d", c)
	}
	if got := in.Get(a); !got.Equal(Of(1, 2, 300)) {
		t.Fatalf("Get(%d) = %v, want {1, 2, 300}", a, got)
	}
}

// TestInternPostMutationSafety pins the contract the Intern doc comment
// states: Intern stores a clone, so mutating the argument afterwards —
// including growing it, clearing it, and re-interning it — cannot
// corrupt the canonical set behind the assigned ID.
func TestInternPostMutationSafety(t *testing.T) {
	in := NewInterner()
	s := Of(5, 70, 700)
	id := in.Intern(s)

	s.Set(9000)
	s.Clear(5)
	if got := in.Get(id); !got.Equal(Of(5, 70, 700)) {
		t.Fatalf("canonical set corrupted by post-intern mutation: Get(%d) = %v", id, got)
	}

	// The mutated value is new content and must intern to a fresh ID;
	// the original content must still resolve to the original ID.
	id2 := in.Intern(s)
	if id2 == id {
		t.Fatalf("mutated set interned to the old ID %d", id)
	}
	if got := in.Intern(Of(5, 70, 700)); got != id {
		t.Fatalf("original contents re-interned to %d, want %d", got, id)
	}

	// Draining the argument entirely must not drain the canonical sets.
	s.Clear(9000)
	s.Clear(70)
	s.Clear(700)
	if !s.IsEmpty() {
		t.Fatalf("test bug: s should be empty, got %v", s)
	}
	if got := in.Get(id2); !got.Equal(Of(70, 700, 9000)) {
		t.Fatalf("canonical set for %d corrupted by draining the argument: %v", id2, got)
	}
	if got := in.Intern(s); got != 0 {
		t.Fatalf("Intern(drained) = %d, want 0", got)
	}
}
