package bitset

// Interner assigns stable dense uint32 IDs to distinct Sparse contents.
// Two sets with equal members always intern to the same ID, which lets the
// meld labelling represent a version (a set of prelabel atoms) as a single
// comparable integer.
type Interner struct {
	byHash map[uint64][]uint32 // content hash -> candidate IDs
	sets   []*Sparse           // ID -> canonical (frozen) set
}

// NewInterner returns an empty interner. ID 0 is pre-assigned to the empty
// set, so the zero ID doubles as the meld identity ε.
func NewInterner() *Interner {
	in := &Interner{byHash: make(map[uint64][]uint32)}
	empty := New()
	in.byHash[empty.Hash()] = []uint32{0}
	in.sets = append(in.sets, empty)
	return in
}

// Intern returns the ID for the contents of s, assigning a new one if the
// contents have not been seen. Intern stores a private clone of s, never s
// itself, so the caller remains free to mutate s afterwards; a mutation
// can never corrupt the canonical set behind the returned ID (the clone
// costs a copy only when the contents are new).
func (in *Interner) Intern(s *Sparse) uint32 {
	h := s.Hash()
	for _, id := range in.byHash[h] {
		if in.sets[id].Equal(s) {
			return id
		}
	}
	id := uint32(len(in.sets))
	in.sets = append(in.sets, s.Clone())
	in.byHash[h] = append(in.byHash[h], id)
	return id
}

// Get returns the canonical set for an ID. The result must not be mutated.
func (in *Interner) Get(id uint32) *Sparse { return in.sets[id] }

// Len returns the number of distinct sets interned (including the empty
// set).
func (in *Interner) Len() int { return len(in.sets) }
