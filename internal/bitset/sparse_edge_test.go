package bitset

import "testing"

// TestClearCompactsEmptiedWord pins the element-compaction behaviour:
// clearing the last member of a 64-bit chunk must drop the chunk
// entirely (Words shrinks), not leave a zero word behind — Equal and
// Hash compare the element slices structurally, so a lingering zero
// word would make equal sets compare unequal.
func TestClearCompactsEmptiedWord(t *testing.T) {
	s := Of(3, 70, 700)
	if s.Words() != 3 {
		t.Fatalf("Words = %d, want 3 chunks for {3, 70, 700}", s.Words())
	}
	if !s.Clear(70) {
		t.Fatal("Clear(70) reported no change")
	}
	if s.Words() != 2 {
		t.Fatalf("Words = %d after emptying the middle chunk, want 2", s.Words())
	}
	if !s.Equal(Of(3, 700)) {
		t.Fatalf("s = %v, want {3, 700}", s)
	}
	if s.Hash() != Of(3, 700).Hash() {
		t.Fatal("hash differs from a freshly built {3, 700}")
	}

	// Empty the set completely through single Clears.
	s.Clear(3)
	s.Clear(700)
	if !s.IsEmpty() || s.Words() != 0 {
		t.Fatalf("s = %v (%d words) after clearing everything, want empty", s, s.Words())
	}
	if !s.Equal(New()) || s.Hash() != New().Hash() {
		t.Fatal("fully drained set is not Equal/Hash-identical to a fresh empty set")
	}
}

// TestMinOnMultiWordSets exercises Min when the smallest member is not
// in the first word ever set: insertion order must not matter, only the
// sorted element layout.
func TestMinOnMultiWordSets(t *testing.T) {
	s := New()
	s.Set(900)
	s.Set(500)
	s.Set(130)
	if got := s.Min(); got != 130 {
		t.Fatalf("Min = %d, want 130", got)
	}
	s.Clear(130)
	if got := s.Min(); got != 500 {
		t.Fatalf("Min = %d after clearing the old minimum, want 500", got)
	}
	s.Set(64) // exactly on a chunk boundary
	if got := s.Min(); got != 64 {
		t.Fatalf("Min = %d, want 64", got)
	}
}

// TestSingleOnMultiWordSets: Single must reject sets whose one-bit
// words are spread over several chunks, and recognise a singleton again
// once the set shrinks back to one chunk with one bit.
func TestSingleOnMultiWordSets(t *testing.T) {
	s := Of(63, 64)
	if _, ok := s.Single(); ok {
		t.Fatal("Single on {63, 64} (two chunks, one bit each) reported a singleton")
	}
	s.Clear(63)
	if id, ok := s.Single(); !ok || id != 64 {
		t.Fatalf("Single = (%d, %v), want (64, true)", id, ok)
	}
	s.Set(65)
	if _, ok := s.Single(); ok {
		t.Fatal("Single on {64, 65} (one chunk, two bits) reported a singleton")
	}
}

// TestCopyOntoLargerDestination: Copy must replace, not merge — stale
// chunks of a wider destination have to disappear.
func TestCopyOntoLargerDestination(t *testing.T) {
	dst := Of(1, 100, 1000, 10000)
	src := Of(5)
	dst.Copy(src)
	if !dst.Equal(src) {
		t.Fatalf("dst = %v after Copy, want %v", dst, src)
	}
	if dst.Words() != 1 {
		t.Fatalf("dst keeps %d words, want 1", dst.Words())
	}
	// And onto an empty source: the destination must drain.
	dst.Copy(New())
	if !dst.IsEmpty() {
		t.Fatalf("dst = %v after Copy(empty), want empty", dst)
	}
}

// TestHashStableUnderContentPreservingMutation: Hash is a pure function
// of the members. Any mutation history that ends at the same contents —
// including transient members in other chunks — must yield the same
// hash and Equal result.
func TestHashStableUnderContentPreservingMutation(t *testing.T) {
	ref := Of(10, 200, 3000)

	mutated := New()
	mutated.Set(5000) // transient chunk, removed again below
	mutated.Set(3000)
	mutated.Set(10)
	mutated.Set(11) // transient bit inside a kept chunk
	mutated.Set(200)
	mutated.Clear(5000)
	mutated.Clear(11)

	if !mutated.Equal(ref) {
		t.Fatalf("mutated = %v, want %v", mutated, ref)
	}
	if mutated.Hash() != ref.Hash() {
		t.Fatal("hash depends on mutation history, not contents")
	}

	viaSetOps := Of(10, 200, 3000, 77, 140)
	viaSetOps.DifferenceWith(Of(77, 140))
	if viaSetOps.Hash() != ref.Hash() || !viaSetOps.Equal(ref) {
		t.Fatal("DifferenceWith leaves a structurally different set for equal contents")
	}
}
