// Package bitset provides a sparse bit vector keyed by uint32, the
// backing representation for points-to sets and meld-label sets
// throughout the analysis. It mirrors the role LLVM's SparseBitVector
// plays in SVF: membership, union, intersection and difference over
// mostly-clustered small integer IDs, with cheap copy and equality.
package bitset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const wordBits = 64

// element is one 64-bit chunk of the vector. base is the ID of the first
// bit in the chunk (always a multiple of 64); word holds the 64 membership
// bits starting at base.
type element struct {
	base uint32
	word uint64
}

// Sparse is a sparse bit vector over uint32 IDs. The zero value is an
// empty, ready-to-use set. Sparse is not safe for concurrent mutation.
type Sparse struct {
	elems []element // sorted by base, no zero words
}

// New returns an empty set. Provided for symmetry; new(Sparse) and a zero
// Sparse value work equally well.
func New() *Sparse { return &Sparse{} }

// Of returns a set containing exactly the given IDs.
func Of(ids ...uint32) *Sparse {
	s := New()
	for _, id := range ids {
		s.Set(id)
	}
	return s
}

// find returns the index of the element with the given base, or the index
// where it would be inserted.
func (s *Sparse) find(base uint32) int {
	return sort.Search(len(s.elems), func(i int) bool { return s.elems[i].base >= base })
}

// Set inserts id into the set. It reports whether the set changed.
func (s *Sparse) Set(id uint32) bool {
	base := id &^ (wordBits - 1)
	bit := uint64(1) << (id % wordBits)
	i := s.find(base)
	if i < len(s.elems) && s.elems[i].base == base {
		if s.elems[i].word&bit != 0 {
			return false
		}
		s.elems[i].word |= bit
		return true
	}
	s.elems = append(s.elems, element{})
	copy(s.elems[i+1:], s.elems[i:])
	s.elems[i] = element{base: base, word: bit}
	trackAlloc(1)
	return true
}

// Clear removes id from the set. It reports whether the set changed.
func (s *Sparse) Clear(id uint32) bool {
	base := id &^ (wordBits - 1)
	bit := uint64(1) << (id % wordBits)
	i := s.find(base)
	if i >= len(s.elems) || s.elems[i].base != base || s.elems[i].word&bit == 0 {
		return false
	}
	s.elems[i].word &^= bit
	if s.elems[i].word == 0 {
		s.elems = append(s.elems[:i], s.elems[i+1:]...)
	}
	return true
}

// Has reports whether id is in the set.
func (s *Sparse) Has(id uint32) bool {
	base := id &^ (wordBits - 1)
	i := s.find(base)
	return i < len(s.elems) && s.elems[i].base == base && s.elems[i].word&(1<<(id%wordBits)) != 0
}

// IsEmpty reports whether the set has no members.
func (s *Sparse) IsEmpty() bool { return len(s.elems) == 0 }

// Len returns the number of members.
func (s *Sparse) Len() int {
	n := 0
	for _, e := range s.elems {
		n += bits.OnesCount64(e.word)
	}
	return n
}

// Words returns the number of 64-bit chunks backing the set, a proxy for
// its memory footprint used by the solver statistics.
func (s *Sparse) Words() int { return len(s.elems) }

// Min returns the smallest member. It panics on an empty set.
func (s *Sparse) Min() uint32 {
	if len(s.elems) == 0 {
		panic("bitset: Min of empty Sparse")
	}
	e := s.elems[0]
	return e.base + uint32(bits.TrailingZeros64(e.word))
}

// Single returns (id, true) if the set has exactly one member.
func (s *Sparse) Single() (uint32, bool) {
	if len(s.elems) != 1 {
		return 0, false
	}
	w := s.elems[0].word
	if w&(w-1) != 0 {
		return 0, false
	}
	return s.elems[0].base + uint32(bits.TrailingZeros64(w)), true
}

// Copy replaces the contents of s with those of t.
func (s *Sparse) Copy(t *Sparse) {
	trackAlloc(len(t.elems) - len(s.elems))
	s.elems = append(s.elems[:0], t.elems...)
}

// Clone returns a fresh set with the same members.
func (s *Sparse) Clone() *Sparse {
	c := New()
	c.Copy(s)
	return c
}

// Equal reports whether s and t have the same members.
func (s *Sparse) Equal(t *Sparse) bool {
	if len(s.elems) != len(t.elems) {
		return false
	}
	for i, e := range s.elems {
		if t.elems[i] != e {
			return false
		}
	}
	return true
}

// UnionWith adds all members of t to s, reporting whether s changed.
// This is the meet operator of the points-to analysis and the meld
// operator of the labelling: commutative, associative, idempotent, with
// the empty set as identity.
func (s *Sparse) UnionWith(t *Sparse) bool {
	if len(t.elems) == 0 {
		return false
	}
	if len(s.elems) == 0 {
		s.elems = append(s.elems[:0], t.elems...)
		trackAlloc(len(t.elems))
		return true
	}
	changed := false
	before := len(s.elems)
	out := make([]element, 0, len(s.elems)+len(t.elems))
	i, j := 0, 0
	for i < len(s.elems) && j < len(t.elems) {
		a, b := s.elems[i], t.elems[j]
		switch {
		case a.base < b.base:
			out = append(out, a)
			i++
		case a.base > b.base:
			out = append(out, b)
			changed = true
			j++
		default:
			m := a.word | b.word
			if m != a.word {
				changed = true
			}
			out = append(out, element{base: a.base, word: m})
			i++
			j++
		}
	}
	out = append(out, s.elems[i:]...)
	if j < len(t.elems) {
		changed = true
		out = append(out, t.elems[j:]...)
	}
	s.elems = out
	trackAlloc(len(out) - before)
	return changed
}

// IntersectWith removes members of s not in t, reporting whether s changed.
func (s *Sparse) IntersectWith(t *Sparse) bool {
	changed := false
	out := s.elems[:0]
	i, j := 0, 0
	for i < len(s.elems) && j < len(t.elems) {
		a, b := s.elems[i], t.elems[j]
		switch {
		case a.base < b.base:
			changed = true
			i++
		case a.base > b.base:
			j++
		default:
			m := a.word & b.word
			if m != a.word {
				changed = true
			}
			if m != 0 {
				out = append(out, element{base: a.base, word: m})
			}
			i++
			j++
		}
	}
	if i < len(s.elems) {
		changed = true
	}
	s.elems = out
	return changed
}

// DifferenceWith removes members of t from s, reporting whether s changed.
func (s *Sparse) DifferenceWith(t *Sparse) bool {
	changed := false
	out := s.elems[:0]
	i, j := 0, 0
	for i < len(s.elems) && j < len(t.elems) {
		a, b := s.elems[i], t.elems[j]
		switch {
		case a.base < b.base:
			out = append(out, a)
			i++
		case a.base > b.base:
			j++
		default:
			m := a.word &^ b.word
			if m != a.word {
				changed = true
			}
			if m != 0 {
				out = append(out, element{base: a.base, word: m})
			}
			i++
			j++
		}
	}
	out = append(out, s.elems[i:]...)
	s.elems = out
	return changed
}

// Intersects reports whether s and t share at least one member.
func (s *Sparse) Intersects(t *Sparse) bool {
	i, j := 0, 0
	for i < len(s.elems) && j < len(t.elems) {
		a, b := s.elems[i], t.elems[j]
		switch {
		case a.base < b.base:
			i++
		case a.base > b.base:
			j++
		default:
			if a.word&b.word != 0 {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// SubsetOf reports whether every member of s is in t.
func (s *Sparse) SubsetOf(t *Sparse) bool {
	i, j := 0, 0
	for i < len(s.elems) {
		if j >= len(t.elems) {
			return false
		}
		a, b := s.elems[i], t.elems[j]
		switch {
		case a.base < b.base:
			return false
		case a.base > b.base:
			j++
		default:
			if a.word&^b.word != 0 {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// ForEach calls f on every member in ascending order.
func (s *Sparse) ForEach(f func(uint32)) {
	for _, e := range s.elems {
		w := e.word
		for w != 0 {
			f(e.base + uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// AppendTo appends the members in ascending order to dst.
func (s *Sparse) AppendTo(dst []uint32) []uint32 {
	s.ForEach(func(id uint32) { dst = append(dst, id) })
	return dst
}

// Slice returns the members in ascending order.
func (s *Sparse) Slice() []uint32 {
	if len(s.elems) == 0 {
		return nil
	}
	return s.AppendTo(make([]uint32, 0, s.Len()))
}

// Hash returns an FNV-1a style hash of the contents, suitable for
// interning.
func (s *Sparse) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, e := range s.elems {
		h ^= uint64(e.base)
		h *= prime
		h ^= e.word
		h *= prime
	}
	return h
}

// String renders the set as {a, b, c}.
func (s *Sparse) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id uint32) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
	})
	b.WriteByte('}')
	return b.String()
}
