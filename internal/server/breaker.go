package server

import (
	"fmt"
	"sync"
	"time"
)

// breaker is a per-program circuit breaker: a program (cache key) whose
// solves keep failing hard — panics or non-degradable budget blowouts —
// is short-circuited to its cached failure for a cooling-off period
// instead of being allowed to burn a worker on every retry. Degraded
// results and cancellations never trip it: the former are successes,
// the latter say nothing about the program.
type breaker struct {
	threshold int           // consecutive hard failures before opening
	openFor   time.Duration // how long an open entry short-circuits
	now       func() time.Time

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	fails    int
	open     bool
	openedAt time.Time
	lastErr  error
	// probing marks that the one half-open probe this cooling-off expiry
	// admits is in flight; concurrent callers keep getting the cached
	// failure until the probe resolves.
	probing bool
}

// probeRetryAfter is the Retry-After served while a half-open probe is
// in flight. It is the floor of the open circuit's countdown — the
// remaining cooling-off shrinks toward zero and this never exceeds one
// second — so the advertised Retry-After is monotonically non-increasing
// across one open period.
const probeRetryAfter = time.Second / 2

// breakerMaxEntries caps the tracked-program map; when full, untripped
// entries are dropped first so an adversarial key stream cannot grow
// memory without bound.
const breakerMaxEntries = 4096

func newBreaker(threshold int, openFor time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{
		threshold: threshold,
		openFor:   openFor,
		now:       now,
		entries:   make(map[string]*breakerEntry),
	}
}

// errBreakerOpen is the cached failure served while a program's breaker
// is open. It unwraps to the failure that tripped the circuit.
type errBreakerOpen struct {
	retryAfter time.Duration
	cause      error
}

func (e errBreakerOpen) Error() string {
	return fmt.Sprintf("server: circuit open for this program (retry in %s): last failure: %v",
		e.retryAfter.Round(time.Second), e.cause)
}

func (e errBreakerOpen) Unwrap() error { return e.cause }

// allow reports whether a solve for key may proceed. While the circuit
// is open it returns the cached failure; once the cooling-off period
// ends exactly one caller is admitted as the half-open probe (a success
// resets the entry, a failure reopens it immediately). Concurrent
// callers racing the probe keep getting the cached failure — admitting
// the whole herd would defeat the circuit on the programs most likely
// to take a worker down.
func (b *breaker) allow(key string) error {
	if b == nil || b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || !e.open {
		return nil
	}
	remaining := b.openFor - b.now().Sub(e.openedAt)
	if remaining > 0 {
		return errBreakerOpen{retryAfter: remaining, cause: e.lastErr}
	}
	if e.probing {
		return errBreakerOpen{retryAfter: probeRetryAfter, cause: e.lastErr}
	}
	// Half-open: admit this one probe; the entry stays open until the
	// probe's outcome arrives at recordSuccess or recordFailure.
	e.probing = true
	return nil
}

// recordFailure notes one hard failure for key and reports whether this
// one tripped the circuit open (a failed half-open probe reopens it,
// which counts as a trip).
func (b *breaker) recordFailure(key string, cause error) bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil {
		if len(b.entries) >= breakerMaxEntries {
			b.evictLocked()
		}
		e = &breakerEntry{}
		b.entries[key] = e
	}
	e.fails++
	e.lastErr = cause
	if e.open {
		if e.probing {
			// The half-open probe failed: restart the cooling-off clock.
			e.openedAt = b.now()
			e.probing = false
			return true
		}
		// A straggler failure from a solve admitted before the circuit
		// opened: recorded, but it neither re-trips nor resets the clock.
		return false
	}
	if e.fails >= b.threshold {
		e.open = true
		e.openedAt = b.now()
		return true
	}
	return false
}

// recordSuccess clears key's failure history.
func (b *breaker) recordSuccess(key string) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.entries, key)
}

// evictLocked drops untripped entries, or — when every entry is open —
// the stalest open one. Caller holds mu.
func (b *breaker) evictLocked() {
	var oldestKey string
	var oldest time.Time
	for k, e := range b.entries {
		if !e.open {
			delete(b.entries, k)
			return
		}
		if oldestKey == "" || e.openedAt.Before(oldest) {
			oldestKey, oldest = k, e.openedAt
		}
	}
	if oldestKey != "" {
		delete(b.entries, oldestKey)
	}
}

// tracked returns the number of programs with failure history.
func (b *breaker) tracked() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}
