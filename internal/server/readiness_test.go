package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestReadyzDrainAware: /readyz is the load-balancer's routing signal —
// 200 while serving, 503 with Retry-After the moment Close begins —
// while /healthz stays a pure liveness check that never flips.
func TestReadyzDrainAware(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	code, body := get(t, s, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("pre-drain /readyz = %d: %s", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Close")
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain /readyz = %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Errorf("post-drain Retry-After = %q, want an integer in [1,3]", rec.Header().Get("Retry-After"))
	}

	if code, _ := get(t, s, "/healthz"); code != http.StatusOK {
		t.Errorf("post-drain /healthz = %d; liveness must not follow readiness", code)
	}
}

// TestRetryAfterJitterSpread is the anti-stampede regression test: the
// Retry-After on retryable failures must be drawn from a bounded window
// with real spread, not a fixed constant that synchronizes every
// client's retry into one thundering herd. Seeded, so no wall clock and
// no flakes.
func TestRetryAfterJitterSpread(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RetryJitterSeed: 42})

	distinctShed := map[int]bool{}
	distinctBudget := map[int]bool{}
	for i := 0; i < 200; i++ {
		shed := s.retryAfterSecs(1, 2)
		if shed < 1 || shed > 3 {
			t.Fatalf("draw %d: shed Retry-After %d outside [1,3]", i, shed)
		}
		distinctShed[shed] = true

		budget := s.retryAfterSecs(5, 5)
		if budget < 5 || budget > 10 {
			t.Fatalf("draw %d: budget Retry-After %d outside [5,10]", i, budget)
		}
		distinctBudget[budget] = true
	}
	if len(distinctShed) < 3 {
		t.Errorf("200 shed draws hit only %d distinct values — that is a herd, not jitter", len(distinctShed))
	}
	if len(distinctBudget) < 4 {
		t.Errorf("200 budget draws hit only %d of 6 values — jitter is not spreading", len(distinctBudget))
	}

	// Same seed, same sequence: the spread is reproducible, not clocky.
	s2 := newTestServer(t, Config{Workers: 1, RetryJitterSeed: 42})
	s3 := newTestServer(t, Config{Workers: 1, RetryJitterSeed: 42})
	for i := 0; i < 50; i++ {
		if a, b := s2.retryAfterSecs(1, 2), s3.retryAfterSecs(1, 2); a != b {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, a, b)
		}
	}
}

// TestQueueShedRetryAfterJittered rides the full HTTP path: queue-full
// rejections must carry the jittered window, not a constant.
func TestQueueShedRetryAfterJittered(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryJitterSeed: 7})

	// Overflow the tiny pool with distinct programs (identical ones
	// would coalesce in the single-flight layer instead of shedding).
	const burst = 24
	headers := make([]http.Header, burst)
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], headers[i], _ = post(t, s, "/analyze",
				AnalyzeRequest{Source: mediumIR(int64(7100 + i)), Lang: "ir"})
		}(i)
	}
	wg.Wait()

	got := map[int]bool{}
	for i := 0; i < burst; i++ {
		if codes[i] != http.StatusServiceUnavailable {
			continue
		}
		ra, err := strconv.Atoi(headers[i].Get("Retry-After"))
		if err != nil || ra < 1 || ra > 3 {
			t.Fatalf("shed Retry-After = %q, want integer in [1,3]", headers[i].Get("Retry-After"))
		}
		got[ra] = true
	}
	if len(got) < 2 {
		t.Errorf("shed responses carried only %v distinct Retry-After values — no observable jitter", got)
	}
}

// TestBreakerHalfOpenSingleProbe is the concurrency contract of the
// half-open state: when the cooling-off period expires, exactly one
// caller is admitted as the probe; the concurrent herd keeps getting
// the cached failure until the probe resolves.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	b := newBreaker(1, 10*time.Second, clock)
	cause := errors.New("boom")
	if !b.recordFailure("k", cause) {
		t.Fatal("threshold 1 did not trip on first failure")
	}
	advance(11 * time.Second) // cooled off: next allow is the probe

	const herd = 32
	var wg sync.WaitGroup
	results := make([]error, herd)
	start := make(chan struct{})
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = b.allow("k")
		}(i)
	}
	close(start)
	wg.Wait()

	admitted := 0
	for i, err := range results {
		if err == nil {
			admitted++
			continue
		}
		var bo errBreakerOpen
		if !errors.As(err, &bo) {
			t.Fatalf("caller %d: unexpected error %v", i, err)
		}
		if bo.retryAfter != probeRetryAfter {
			t.Errorf("caller %d: probe-window Retry-After = %v, want %v", i, bo.retryAfter, probeRetryAfter)
		}
	}
	if admitted != 1 {
		t.Fatalf("half-open admitted %d callers, want exactly 1", admitted)
	}

	// The probe failing reopens the circuit for everyone at once.
	if !b.recordFailure("k", cause) {
		t.Fatal("probe failure did not reopen the circuit")
	}
	if err := b.allow("k"); err == nil {
		t.Fatal("circuit reopened but allow admitted a caller")
	}

	// Next expiry: one probe again, and its success resets the entry.
	advance(11 * time.Second)
	if err := b.allow("k"); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.recordSuccess("k")
	if err := b.allow("k"); err != nil || b.tracked() != 0 {
		t.Fatalf("after probe success: allow=%v tracked=%d", err, b.tracked())
	}
}

// TestBreakerRetryAfterMonotonicWhileOpen: while one open period cools
// off, successive callers are told non-increasing waits — the breaker
// never pushes a client's retry further out than the last answer did.
func TestBreakerRetryAfterMonotonicWhileOpen(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, 10*time.Second, func() time.Time { return now })
	b.recordFailure("k", errors.New("boom"))

	last := time.Duration(1 << 62)
	for elapsed := time.Duration(0); elapsed < 10*time.Second; elapsed += 900 * time.Millisecond {
		var bo errBreakerOpen
		if err := b.allow("k"); !errors.As(err, &bo) {
			t.Fatalf("t+%v: want errBreakerOpen, got %v", elapsed, err)
		}
		if bo.retryAfter > last {
			t.Fatalf("t+%v: Retry-After grew from %v to %v", elapsed, last, bo.retryAfter)
		}
		last = bo.retryAfter
		now = now.Add(900 * time.Millisecond)
	}
}
