package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestParallelRequestByteIdentical is the service half of the
// parallel-eq-sequential invariant: the same program solved
// sequentially and at several parallel worker counts must produce
// byte-identical /analyze bodies after dropping the schedule-shaped
// effort counters, and all parallel worker counts must agree on every
// byte — which is what justifies caching them under one "par" class.
func TestParallelRequestByteIdentical(t *testing.T) {
	s := newTestServer(t, Config{})

	strip := func(body []byte) []byte {
		var resp struct {
			Report map[string]json.RawMessage `json:"report"`
			Dump   string                     `json:"dump"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("bad body: %v", err)
		}
		var stats map[string]any
		if err := json.Unmarshal(resp.Report["stats"], &stats); err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"nodesProcessed", "propagations", "changed",
			"worklistHighWater", "meldOps", "meldIterations", "distinctVersions"} {
			delete(stats, k)
		}
		stripped, err := json.Marshal(stats)
		if err != nil {
			t.Fatal(err)
		}
		resp.Report["stats"] = stripped
		norm, err := json.Marshal(map[string]any{"report": resp.Report, "dump": resp.Dump})
		if err != nil {
			t.Fatal(err)
		}
		return norm
	}

	code, _, seqBody := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code != http.StatusOK {
		t.Fatalf("sequential analyze = %d: %s", code, seqBody)
	}

	var parRef []byte
	for _, w := range []int{2, 4, 8} {
		code, hdr, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC, Parallel: w})
		if code != http.StatusOK {
			t.Fatalf("parallel=%d analyze = %d: %s", w, code, body)
		}
		if !bytes.Equal(strip(body), strip(seqBody)) {
			t.Fatalf("parallel=%d response differs from sequential beyond the schedule counters", w)
		}
		if parRef == nil {
			parRef = body
			if hdr.Get("X-Vsfs-Cache") != "miss" {
				t.Fatalf("first parallel request: cache = %q, want miss", hdr.Get("X-Vsfs-Cache"))
			}
			continue
		}
		// Worker counts beyond the first share the "par" cache class:
		// byte-identical body, served as a hit.
		if !bytes.Equal(body, parRef) {
			t.Fatalf("parallel=%d full response differs from parallel=2", w)
		}
		if hdr.Get("X-Vsfs-Cache") != "hit" {
			t.Fatalf("parallel=%d: cache = %q, want hit (shared parallel class)", w, hdr.Get("X-Vsfs-Cache"))
		}
	}

	// The sequential entry is a distinct class: re-requesting it hits.
	code, hdr, _ := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code != http.StatusOK || hdr.Get("X-Vsfs-Cache") != "hit" {
		t.Fatalf("sequential re-request = %d cache %q, want 200 hit", code, hdr.Get("X-Vsfs-Cache"))
	}

	if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC, Parallel: -1}); code != http.StatusBadRequest {
		t.Fatalf("parallel=-1 = %d, want 400: %s", code, body)
	}
}

// TestParallelShardMetrics: a parallel solve must light up the
// vsfs_parallel_* and vsfs_shard_* series on /metrics and the parallel
// section of /stats, with per-shard pops that sum to something
// positive.
func TestParallelShardMetrics(t *testing.T) {
	s := newTestServer(t, Config{Parallel: 4})
	if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC}); code != http.StatusOK {
		t.Fatalf("analyze = %d: %s", code, body)
	}

	code, body := get(t, s, "/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Parallel.Solves != 1 {
		t.Fatalf("stats parallel solves = %d, want 1", snap.Parallel.Solves)
	}
	var total int64
	for _, pops := range snap.Parallel.ShardPops {
		total += pops
	}
	if total <= 0 {
		t.Fatalf("stats shard pops sum to %d, want > 0", total)
	}
	if snap.Parallel.LastImbalance < 1 {
		t.Fatalf("stats last imbalance = %v, want >= 1", snap.Parallel.LastImbalance)
	}

	code, body = get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"vsfs_parallel_solves_total 1",
		`vsfs_shard_pops_total{shard="0"}`,
		`vsfs_shard_pops_total{shard="15"}`,
		"vsfs_shard_steals_total",
		"vsfs_shard_imbalance",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestParallelConfigDefaultAndOverride: Config.Parallel makes parallel
// the server default, and a request's parallel=1 opts back into the
// sequential engine (landing in the sequential cache class).
func TestParallelConfigDefaultAndOverride(t *testing.T) {
	s := newTestServer(t, Config{Parallel: 4})

	code, hdr, _ := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code != http.StatusOK {
		t.Fatalf("analyze = %d", code)
	}
	parKey := hdr.Get("X-Vsfs-Key")

	code, hdr, _ = post(t, s, "/analyze", AnalyzeRequest{Source: smallC, Parallel: 1})
	if code != http.StatusOK {
		t.Fatalf("parallel=1 analyze = %d", code)
	}
	if hdr.Get("X-Vsfs-Cache") != "miss" {
		t.Fatalf("sequential override: cache = %q, want miss (distinct class)", hdr.Get("X-Vsfs-Cache"))
	}
	if hdr.Get("X-Vsfs-Key") == parKey {
		t.Fatal("sequential override shares the parallel cache key")
	}

	var snap StatsSnapshot
	_, body := get(t, s, "/stats")
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Parallel.Solves != 1 {
		t.Fatalf("parallel solves = %d, want 1 (the override solve was sequential)", snap.Parallel.Solves)
	}
}
