package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

var promSample = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="[^"]*",?)*\})? (-?[0-9.]+(?:[eE][+-]?[0-9]+)?|\+Inf|NaN)$`)

// parsePrometheus validates text-format exposition and returns the
// samples as metricName{labels} → value.
func parsePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[f[2]] = true
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		base := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(base, suffix) && typed[strings.TrimSuffix(base, suffix)] {
				base = strings.TrimSuffix(base, suffix)
			}
		}
		if !typed[base] {
			t.Fatalf("sample %q precedes its # TYPE line", line)
		}
		v, err := strconv.ParseFloat(strings.Replace(m[3], "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	s := newTestServer(t, Config{})

	if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC}); code != http.StatusOK {
		t.Fatalf("POST /analyze = %d: %s", code, body)
	}
	if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC}); code != http.StatusOK {
		t.Fatalf("repeat POST /analyze = %d: %s", code, body)
	}
	if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC, Mode: "cfgfree"}); code != http.StatusOK {
		t.Fatalf("cfgfree POST /analyze = %d: %s", code, body)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	samples := parsePrometheus(t, rec.Body.String())

	if got := samples[`vsfs_cache_requests_total{result="miss"}`]; got != 2 {
		t.Errorf("cache misses = %v, want 2 (vsfs and cfgfree solve separately)", got)
	}
	if got := samples[`vsfs_cache_requests_total{result="hit"}`]; got != 1 {
		t.Errorf("cache hits = %v, want 1", got)
	}
	if got := samples[`vsfs_requests_total{mode="vsfs"}`]; got != 2 {
		t.Errorf("vsfs requests = %v, want 2", got)
	}
	if got := samples[`vsfs_requests_total{mode="cfgfree"}`]; got != 1 {
		t.Errorf("cfgfree requests = %v, want 1", got)
	}
	if got := samples[`vsfs_requests_total{mode="sfs"}`]; got != 0 {
		t.Errorf("sfs requests = %v, want materialised 0", got)
	}
	if got := samples[`vsfs_solve_seconds_count`]; got != 2 {
		t.Errorf("solve count = %v, want 2", got)
	}
	for _, ph := range []string{"andersen", "solve"} {
		key := `vsfs_solve_phase_seconds_count{phase="` + ph + `"}`
		if got := samples[key]; got != 2 {
			t.Errorf("%s = %v, want 2", key, got)
		}
	}
	// The cfgfree solve skips memssa/svfg but still observes zeros.
	for _, ph := range []string{"memssa", "svfg"} {
		key := `vsfs_solve_phase_seconds_count{phase="` + ph + `"}`
		if got := samples[key]; got != 2 {
			t.Errorf("%s = %v, want 2", key, got)
		}
	}

	// The same counter feeds /stats.
	st := s.Stats()
	if st.RequestsByMode["vsfs"] != 2 || st.RequestsByMode["cfgfree"] != 1 || st.RequestsByMode["sfs"] != 0 {
		t.Errorf("Stats RequestsByMode = %v", st.RequestsByMode)
	}
	if _, ok := samples[`vsfs_uptime_seconds`]; !ok {
		t.Error("vsfs_uptime_seconds missing")
	}

	// Histogram buckets must be cumulative (monotone non-decreasing in
	// le order) and end at +Inf == _count.
	checkHistogram(t, samples, "vsfs_solve_seconds", "")
	checkHistogram(t, samples, "vsfs_solve_phase_seconds", `phase="solve"`)
	checkHistogram(t, samples, "vsfs_points_to_sets", "")
}

func checkHistogram(t *testing.T, samples map[string]float64, name, label string) {
	t.Helper()
	type bkt struct {
		le float64
		n  float64
	}
	var buckets []bkt
	for k, v := range samples {
		if !strings.HasPrefix(k, name+"_bucket{") || !strings.Contains(k, label) {
			continue
		}
		i := strings.Index(k, `le="`)
		le := k[i+4 : strings.Index(k[i+4:], `"`)+i+4]
		f := float64(0)
		if le == "+Inf" {
			f = 1e308
		} else {
			var err error
			if f, err = strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("bad le in %q: %v", k, err)
			}
		}
		buckets = append(buckets, bkt{f, v})
	}
	if len(buckets) < 2 {
		t.Fatalf("histogram %s{%s}: found %d buckets", name, label, len(buckets))
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].n < buckets[i-1].n {
			t.Fatalf("histogram %s{%s}: bucket counts not monotone at le=%g", name, label, buckets[i].le)
		}
	}
	var count float64
	for k, v := range samples {
		if strings.HasPrefix(k, name+"_count") && strings.Contains(k, label) {
			count = v
		}
	}
	if last := buckets[len(buckets)-1]; last.n != count {
		t.Fatalf("histogram %s{%s}: +Inf bucket %g != count %g", name, label, last.n, count)
	}
}

func TestMetricsDisabled(t *testing.T) {
	s := newTestServer(t, Config{DisableMetrics: true})
	if code, _ := get(t, s, "/metrics"); code != http.StatusNotFound {
		t.Fatalf("GET /metrics with DisableMetrics = %d, want 404", code)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	off := newTestServer(t, Config{})
	if code, _ := get(t, off, "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof = %d, want 404", code)
	}
	on := newTestServer(t, Config{EnablePprof: true})
	if code, _ := get(t, on, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof with EnablePprof = %d, want 200", code)
	}
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	s := newTestServer(t, Config{})

	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-Id", "client-chosen-7")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "client-chosen-7" {
		t.Fatalf("X-Request-Id = %q, want the client's own id", got)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Header().Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id generated")
	}
}

// TestRequestIDInShedResponse: the satellite bugfix — a 503 from the
// shed path must carry the request ID in its body so the client can
// quote it back at the operator.
func TestRequestIDInShedResponse(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}

	data, _ := json.Marshal(AnalyzeRequest{Source: smallC})
	req := httptest.NewRequest("POST", "/analyze", bytes.NewReader(data))
	req.Header.Set("X-Request-Id", "shed-me-42")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("analyze after Close = %d, want 503", rec.Code)
	}
	var resp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RequestID != "shed-me-42" {
		t.Fatalf("error body requestId = %q, want shed-me-42", resp.RequestID)
	}
}

func TestStatsUptimeAndWorkers(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3})
	if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC}); code != http.StatusOK {
		t.Fatalf("POST /analyze = %d: %s", code, body)
	}
	code, body := get(t, s, "/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	var st StatsSnapshot
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptimeSeconds = %v, want > 0", st.UptimeSeconds)
	}
	if st.Workers != 3 {
		t.Errorf("workers = %d, want 3", st.Workers)
	}
	if st.WorkersBusy < 0 || st.WorkersBusy > 3 {
		t.Errorf("workersBusy = %d, want within [0,3]", st.WorkersBusy)
	}
	if st.SolvesOK != 1 || st.AvgSolveMs <= 0 {
		t.Errorf("solvesOK = %d avgSolveMs = %v, want 1 and > 0", st.SolvesOK, st.AvgSolveMs)
	}
	if !strings.Contains(string(body), `"uptimeSeconds"`) || !strings.Contains(string(body), `"workersBusy"`) {
		t.Error("stats JSON missing uptimeSeconds/workersBusy fields")
	}
}

func TestAccessLogCarriesRequestIDAndCacheStatus(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Config{
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	for i := 0; i < 2; i++ {
		data, _ := json.Marshal(AnalyzeRequest{Source: smallC})
		req := httptest.NewRequest("POST", "/analyze", bytes.NewReader(data))
		req.Header.Set("X-Request-Id", "log-check-"+strconv.Itoa(i))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("POST /analyze #%d = %d", i, rec.Code)
		}
	}
	logs := buf.String()
	for _, want := range []string{
		`"id":"log-check-0"`, `"id":"log-check-1"`,
		`"path":"/analyze"`, `"cache":"miss"`, `"cache":"hit"`,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %s; got:\n%s", want, logs)
		}
	}
}
