package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vsfs/internal/guard"
)

// goroutineCount samples the goroutine count after giving transient
// goroutines (HTTP plumbing, abandoned waiters) time to exit.
func goroutineCount() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}

// TestFaultedPhasesServerSurvives injects a deterministic panic into
// each pipeline phase in turn and proves the daemon converts it into a
// structured 500, keeps its workers, and serves the next request.
func TestFaultedPhasesServerSurvives(t *testing.T) {
	before := goroutineCount()
	for _, phase := range guard.PipelinePhases {
		t.Run(phase, func(t *testing.T) {
			plan := guard.NewFaultPlan(guard.Fault{Phase: phase, Step: 0, Kind: guard.FaultPanic, Times: 1})
			s := newTestServer(t, Config{Workers: 2, Faults: plan})

			code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
			if code != http.StatusInternalServerError {
				t.Fatalf("faulted analyze = %d, want 500 (body %s)", code, body)
			}
			var er struct {
				Error     string `json:"error"`
				RequestID string `json:"requestId"`
			}
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("500 body is not structured JSON: %v: %s", err, body)
			}
			if !strings.Contains(er.Error, "panic in "+phase) || er.RequestID == "" {
				t.Fatalf("500 body = %+v, want phase %q and a request id", er, phase)
			}
			if st := s.Stats(); st.GuardPanics != 1 {
				t.Fatalf("GuardPanics = %d, want 1", st.GuardPanics)
			}

			// The plan is spent (Times: 1); the same pool must now solve.
			code, _, body = post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
			if code != http.StatusOK {
				t.Fatalf("post-panic analyze = %d, want 200 (body %s)", code, body)
			}
		})
	}
	if after := goroutineCount(); after > before+3 {
		t.Fatalf("goroutines grew from %d to %d across faulted servers", before, after)
	}
}

// TestDegradedThroughServer drives a budget blowout in the solve phase
// end-to-end: the response must be a 200 carrying the degradation
// ladder's CFG-free rung, marked degraded in both body and header,
// cached, and counted.
func TestDegradedThroughServer(t *testing.T) {
	plan := guard.NewFaultPlan(guard.Fault{Phase: "solve", Step: 0, Kind: guard.FaultSlow})
	s := newTestServer(t, Config{Workers: 1, StepBudget: 1 << 30, Faults: plan})

	code, hdr, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code != http.StatusOK {
		t.Fatalf("degraded analyze = %d, want 200 (body %s)", code, body)
	}
	if hdr.Get("X-Vsfs-Degraded") != "true" {
		t.Fatal("degraded response missing X-Vsfs-Degraded header")
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Report.Degraded || resp.Report.Degradation == "" {
		t.Fatalf("report not marked degraded: %+v", resp.Report)
	}
	if resp.Mode != "cfgfree" || resp.Report.Mode != "cfgfree" {
		t.Fatalf("degraded mode = %q/%q, want the cfgfree rung", resp.Mode, resp.Report.Mode)
	}

	// Repeat must be a cache hit with a byte-identical body — the
	// degraded result self-heals repeated over-budget programs.
	code2, hdr2, body2 := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code2 != http.StatusOK || hdr2.Get("X-Vsfs-Cache") != "hit" {
		t.Fatalf("repeat = %d cache=%q, want 200 hit", code2, hdr2.Get("X-Vsfs-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cache hit body differs from degraded miss")
	}
	if hdr2.Get("X-Vsfs-Degraded") != "true" {
		t.Fatal("cached degraded response missing X-Vsfs-Degraded header")
	}

	st := s.Stats()
	if st.DegradedResults != 1 || st.BudgetExceeded != 1 {
		t.Fatalf("DegradedResults = %d, BudgetExceeded = %d, want 1, 1", st.DegradedResults, st.BudgetExceeded)
	}
	if st.SolveErrors != 0 {
		t.Fatalf("SolveErrors = %d: degradation must not count as an error", st.SolveErrors)
	}

	// The mandated counters are on /metrics too.
	_, metrics := get(t, s, "/metrics")
	for _, want := range []string{
		"vsfs_degraded_results_total 1",
		`vsfs_budget_exceeded_total{phase="solve",resource="steps"} 1`,
		"vsfs_shed_requests_total 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestBreakerShortCircuits: a program that keeps panicking trips its
// circuit; further requests for it are answered from the cached failure
// with Retry-After, without burning a worker; other programs still run.
func TestBreakerShortCircuits(t *testing.T) {
	plan := guard.NewFaultPlan(guard.Fault{Phase: "solve", Step: 0, Kind: guard.FaultPanic, Times: 2})
	s := newTestServer(t, Config{Workers: 1, BreakerThreshold: 2, BreakerOpenFor: time.Hour, Faults: plan})

	for i := 0; i < 2; i++ {
		if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC}); code != http.StatusInternalServerError {
			t.Fatalf("panic request %d = %d, want 500 (body %s)", i, code, body)
		}
	}
	code, hdr, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("breaker request = %d, want 503 (body %s)", code, body)
	}
	if hdr.Get("Retry-After") == "" || hdr.Get("X-Vsfs-Breaker") != "open" {
		t.Fatalf("breaker 503 headers = Retry-After %q, X-Vsfs-Breaker %q",
			hdr.Get("Retry-After"), hdr.Get("X-Vsfs-Breaker"))
	}
	if !strings.Contains(string(body), "circuit open") {
		t.Fatalf("breaker body: %s", body)
	}

	// A different program is unaffected (the fault plan is spent).
	if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: mediumIR(900), Lang: "ir"}); code != http.StatusOK {
		t.Fatalf("other program = %d, want 200 (body %s)", code, body)
	}

	st := s.Stats()
	if st.BreakerOpens != 1 || st.BreakerRejects != 1 {
		t.Fatalf("BreakerOpens = %d, BreakerRejects = %d, want 1, 1", st.BreakerOpens, st.BreakerRejects)
	}
}

// TestBreakerHalfOpenRecovers exercises the unit-level state machine
// with a fake clock: open → cooled off → half-open probe → reset.
func TestBreakerHalfOpenRecovers(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(2, 10*time.Second, func() time.Time { return now })
	cause := errors.New("boom")

	if b.recordFailure("k", cause) {
		t.Fatal("tripped below threshold")
	}
	if !b.recordFailure("k", cause) {
		t.Fatal("did not trip at threshold")
	}
	err := b.allow("k")
	var bo errBreakerOpen
	if !errors.As(err, &bo) || !errors.Is(err, cause) {
		t.Fatalf("allow while open = %v", err)
	}
	if bo.retryAfter <= 0 || bo.retryAfter > 10*time.Second {
		t.Fatalf("retryAfter = %v", bo.retryAfter)
	}

	now = now.Add(11 * time.Second)
	if err := b.allow("k"); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	// A half-open failure reopens immediately...
	if !b.recordFailure("k", cause) {
		t.Fatal("half-open failure did not reopen")
	}
	now = now.Add(11 * time.Second)
	if err := b.allow("k"); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	// ...and a half-open success resets the entry for good.
	b.recordSuccess("k")
	if err := b.allow("k"); err != nil || b.tracked() != 0 {
		t.Fatalf("after success: allow=%v tracked=%d", err, b.tracked())
	}
}

// TestOverloadRecovery floods a tiny server far past its queue bound
// and then proves the shed was clean: every rejection carried
// Retry-After, no goroutines leaked, and the pool still serves.
func TestOverloadRecovery(t *testing.T) {
	before := goroutineCount()
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	const burst = 24
	var wg sync.WaitGroup
	type reply struct {
		code       int
		retryAfter string
	}
	replies := make([]reply, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, hdr, _ := post(t, s, "/analyze",
				AnalyzeRequest{Source: mediumIR(int64(700 + i)), Lang: "ir"})
			replies[i] = reply{code, hdr.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, r := range replies {
		switch r.code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if r.retryAfter == "" {
				t.Errorf("request %d shed without Retry-After", i)
			}
		default:
			t.Fatalf("request %d: unexpected status %d", i, r.code)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("ok = %d, shed = %d; want both nonzero", ok, shed)
	}
	if st := s.Stats(); st.ShedRequests != int64(shed) {
		t.Fatalf("ShedRequests = %d, want %d", st.ShedRequests, shed)
	}

	// The flood is over: the pool still serves fresh work promptly.
	if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC}); code != http.StatusOK {
		t.Fatalf("post-flood analyze = %d (body %s)", code, body)
	}
	if after := goroutineCount(); after > before+5 {
		t.Fatalf("goroutines grew from %d to %d after flood", before, after)
	}
}

// TestServerBudgetPoolSplit: the per-solve budget is the server-wide
// pool divided across workers.
func TestServerBudgetPoolSplit(t *testing.T) {
	s := New(Config{Workers: 4, StepBudget: 1000, MemBudget: 400})
	defer s.Close(context.Background())
	if s.stepsPerSolve != 250 || s.memPerSolve != 100 {
		t.Fatalf("per-solve budgets = %d steps, %d bytes; want 250, 100", s.stepsPerSolve, s.memPerSolve)
	}
	if fmt.Sprint(s.brk.threshold) != fmt.Sprint(DefaultBreakerThreshold) {
		t.Fatalf("breaker threshold = %d", s.brk.threshold)
	}
}
