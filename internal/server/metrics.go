package server

import (
	"strconv"
	"time"

	"vsfs"
	"vsfs/internal/checker"
	"vsfs/internal/guard"
	"vsfs/internal/obs"
)

// analysisModes are the selectable backend modes, in the facade's Mode
// order; the per-mode request counter materialises one series for each.
var analysisModes = []string{
	vsfs.VSFS.String(),
	vsfs.SFS.String(),
	vsfs.FlowInsensitive.String(),
	vsfs.CFGFree.String(),
}

// serverMetrics wires every service counter, gauge, and histogram into
// one obs.Registry. GET /metrics renders the registry in Prometheus
// text format and GET /stats reads the same series back, so the two
// surfaces can never disagree.
type serverMetrics struct {
	reg *obs.Registry

	httpRequests   *obs.Family // counter by endpoint
	requestsByMode *obs.Family // counter by analysis mode (vsfs|sfs|cfgfree|andersen)
	cacheReqs      *obs.Family // counter by result (hit|miss)
	flightShared   *obs.Series

	solvesStarted *obs.Series
	solveOutcomes *obs.Family // counter by outcome (ok|error|cancelled)
	shedRequests  *obs.Series

	findingsTotal *obs.Family // counter by finding kind (POST /check)

	guardPanics     *obs.Family // counter by phase (pipeline phases + "server")
	degradedResults *obs.Series
	budgetExceeded  *obs.Family // counter by phase and resource
	breakerOpens    *obs.Series
	breakerRejects  *obs.Series

	solveSeconds *obs.Series // histogram: total solve latency
	phaseSeconds *obs.Family // histogram by phase (andersen|memssa|svfg|solve)
	solveMax     *obs.Series // gauge: slowest solve seen

	ptsSets     *obs.Series // histogram: (object, version) sets stored per solve
	propagation *obs.Series // counter: cumulative set unions attempted
	worklistHW  *obs.Series // gauge: max main-phase worklist length seen

	distinctVersions *obs.Series // gauge: last solve's distinct meld labels
	prelabels        *obs.Series // gauge: last solve's prelabel count

	// Program-shape gauges: the Table II-style feature vector of the
	// most recent successful solve (the auto-backend heuristic's input).
	shapeInstrs          *obs.Series
	shapeAddressTaken    *obs.Series
	shapeStoreLoadRatio  *obs.Series
	shapeSingletonRatio  *obs.Series
	shapeIndirectDensity *obs.Series

	// Attribution series, populated only when Config.Attribution is on.
	attrCharges    *obs.Family // counter by kind (pops|props|sets|melds)
	attrObjectCost *obs.Series // histogram: per-object attributed cost

	// Parallel-solver series, populated only by solves that ran the
	// sharded engine (Config.Parallel or a request's parallel ≥ 2).
	parallelSolves *obs.Series // counter: solves answered by the parallel engine
	shardPops      *obs.Family // counter by shard: worklist pops owned by each shard
	shardSteals    *obs.Series // counter: cross-worker chunk steals (schedule-dependent)
	shardImbalance *obs.Series // gauge: last parallel solve's max-shard/mean-shard pop ratio
}

// attrMetricsTopK bounds how many per-object cost observations one
// solve feeds into the vsfs_attr_object_cost histogram.
const attrMetricsTopK = 64

// newServerMetrics registers every family and the instantaneous gauges,
// which read live state (queue, pool, cache, clock) at scrape time.
func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg: r,

		httpRequests: r.CounterVec("vsfs_http_requests_total",
			"HTTP requests received, by endpoint."),
		requestsByMode: r.CounterVec("vsfs_requests_total",
			"Analysis requests accepted, by requested backend mode."),
		cacheReqs: r.CounterVec("vsfs_cache_requests_total",
			"Result-cache lookups, by result."),
		flightShared: r.Counter("vsfs_singleflight_shared_total",
			"Requests coalesced into another request's in-flight solve."),

		solvesStarted: r.Counter("vsfs_solves_started_total",
			"Solves handed to the worker pool."),
		solveOutcomes: r.CounterVec("vsfs_solves_total",
			"Completed solves, by outcome."),
		shedRequests: r.Counter("vsfs_shed_requests_total",
			"Solves shed with 503 because the queue was full."),

		findingsTotal: r.CounterVec("vsfs_findings_total",
			"Checker findings reported by POST /check (after suppressions), by kind."),

		guardPanics: r.CounterVec("vsfs_guard_panics_total",
			"Pipeline panics isolated by the guard layer, by phase."),
		degradedResults: r.Counter("vsfs_degraded_results_total",
			"Solves that exhausted their budget and fell down the backend ladder."),
		budgetExceeded: r.CounterVec("vsfs_budget_exceeded_total",
			"Budget breaches, by pipeline phase and exhausted resource."),
		breakerOpens: r.Counter("vsfs_breaker_opens_total",
			"Per-program circuits tripped open by repeated hard failures."),
		breakerRejects: r.Counter("vsfs_breaker_rejects_total",
			"Requests short-circuited to a cached failure by an open circuit."),

		solveSeconds: r.Histogram("vsfs_solve_seconds",
			"End-to-end solve latency (parse through main phase).", obs.LatencyBuckets),
		phaseSeconds: r.HistogramVec("vsfs_solve_phase_seconds",
			"Solve latency broken down by pipeline phase.", obs.LatencyBuckets),
		solveMax: r.Gauge("vsfs_solve_max_seconds",
			"Slowest successful solve observed."),

		ptsSets: r.Histogram("vsfs_points_to_sets",
			"Points-to sets stored by the main phase, per solve.", obs.SizeBuckets),
		propagation: r.Counter("vsfs_propagations_total",
			"Cumulative set unions attempted by main-phase solving."),
		worklistHW: r.Gauge("vsfs_worklist_high_water",
			"Largest main-phase worklist length observed across solves."),

		distinctVersions: r.Gauge("vsfs_distinct_versions",
			"Distinct meld-labelling versions in the most recent VSFS solve."),
		prelabels: r.Gauge("vsfs_prelabels",
			"Prelabel atoms allocated in the most recent VSFS solve."),

		shapeInstrs: r.Gauge("vsfs_shape_instrs",
			"IR instructions of the most recent successful solve."),
		shapeAddressTaken: r.Gauge("vsfs_shape_address_taken",
			"Address-taken abstract objects of the most recent successful solve."),
		shapeStoreLoadRatio: r.Gauge("vsfs_shape_store_load_ratio",
			"Store/load ratio of the most recent successful solve."),
		shapeSingletonRatio: r.Gauge("vsfs_shape_singleton_ratio",
			"Fraction of address-taken objects that are singletons in the most recent successful solve."),
		shapeIndirectDensity: r.Gauge("vsfs_shape_indirect_density",
			"Estimated indirect value-flow edges per instruction of the most recent successful solve."),

		attrCharges: r.CounterVec("vsfs_attr_charges_total",
			"Per-object cost-attribution charges across attributed solves, by kind."),
		attrObjectCost: r.Histogram("vsfs_attr_object_cost",
			"Attributed cost (propagations + pops + melds) per hot object, per attributed solve.", obs.SizeBuckets),

		parallelSolves: r.Counter("vsfs_parallel_solves_total",
			"Solves answered by the sharded parallel VSFS engine."),
		shardPops: r.CounterVec("vsfs_shard_pops_total",
			"Parallel-solver worklist pops, by owning shard."),
		shardSteals: r.Counter("vsfs_shard_steals_total",
			"Parallel-solver chunks processed by a worker other than the one the round-robin split assigned."),
		shardImbalance: r.Gauge("vsfs_shard_imbalance",
			"Hottest shard's pops over the per-shard mean in the most recent parallel solve (1.0 = perfectly balanced)."),
	}
	obs.RegisterBuildInfo(r)

	r.GaugeFunc("vsfs_queue_depth",
		"Solves waiting for a worker right now.",
		func() float64 { return float64(s.pool.queued()) })
	r.GaugeFunc("vsfs_workers_busy",
		"Workers executing a solve right now.",
		func() float64 { return float64(s.pool.running()) })
	r.GaugeFunc("vsfs_workers",
		"Size of the worker pool.",
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("vsfs_cache_entries",
		"Solved programs currently cached.",
		func() float64 { return float64(s.cache.len()) })
	r.GaugeFunc("vsfs_uptime_seconds",
		"Seconds since the server was created.",
		func() float64 { return time.Since(s.started).Seconds() })

	// Materialise the label combinations /stats reads, so a fresh server
	// exposes zeros rather than absent series.
	for _, ep := range []string{"analyze", "query", "check"} {
		m.httpRequests.With("endpoint", ep)
	}
	for _, k := range checker.Kinds() {
		m.findingsTotal.With("kind", string(k))
	}
	for _, res := range []string{"hit", "miss"} {
		m.cacheReqs.With("result", res)
	}
	for _, mode := range analysisModes {
		m.requestsByMode.With("mode", mode)
	}
	for _, out := range []string{"ok", "error", "cancelled"} {
		m.solveOutcomes.With("outcome", out)
	}
	for _, ph := range []string{"andersen", "memssa", "svfg", "solve"} {
		m.phaseSeconds.With("phase", ph)
	}
	for _, ph := range guard.PipelinePhases {
		m.guardPanics.With("phase", ph)
	}
	m.guardPanics.With("phase", "server")
	for _, kind := range []string{"pops", "props", "sets", "melds"} {
		m.attrCharges.With("kind", kind)
	}
	for sh := 0; sh < vsfs.ShardCount; sh++ {
		m.shardPops.With("shard", strconv.Itoa(sh))
	}
	return m
}

// observeSolve folds one successful run into the registry: latency by
// phase, solver effort, and the versioning quantities the paper's
// Table III tracks.
func (m *serverMetrics) observeSolve(res *vsfs.Result) {
	t := res.Timings()
	m.solveSeconds.Observe(t.Total.Seconds())
	m.phaseSeconds.With("phase", "andersen").Observe(t.Andersen.Seconds())
	m.phaseSeconds.With("phase", "memssa").Observe(t.MemSSA.Seconds())
	m.phaseSeconds.With("phase", "svfg").Observe(t.SVFG.Seconds())
	m.phaseSeconds.With("phase", "solve").Observe(t.Solve.Seconds())
	m.solveMax.SetMax(t.Total.Seconds())

	st := res.Stats()
	m.ptsSets.Observe(float64(st.PtsSets))
	m.propagation.Add(float64(st.Propagations))
	m.worklistHW.SetMax(float64(st.WorklistHighWater))
	if st.Mode == "vsfs" {
		m.distinctVersions.Set(float64(st.DistinctVersions))
		m.prelabels.Set(float64(st.Prelabels))
	}

	sh := res.Shape()
	m.shapeInstrs.Set(float64(sh.Instrs))
	m.shapeAddressTaken.Set(float64(sh.AddressTaken))
	m.shapeStoreLoadRatio.Set(sh.StoreLoadRatio)
	m.shapeSingletonRatio.Set(sh.SingletonRatio)
	m.shapeIndirectDensity.Set(sh.IndirectDensity)

	if ps := res.Parallelism(); ps != nil {
		m.parallelSolves.Inc()
		for sh, pops := range ps.ShardPops {
			m.shardPops.With("shard", strconv.Itoa(sh)).Add(float64(pops))
		}
		m.shardSteals.Add(float64(ps.Steals))
		m.shardImbalance.Set(ps.ImbalanceRatio)
	}

	if a := res.Attr(); a != nil {
		m.attrCharges.With("kind", "pops").Add(float64(a.TotalPops()))
		m.attrCharges.With("kind", "props").Add(float64(a.TotalProps()))
		m.attrCharges.With("kind", "sets").Add(float64(a.TotalSets()))
		m.attrCharges.With("kind", "melds").Add(float64(a.TotalMelds()))
		for _, h := range res.HotObjects(attrMetricsTopK) {
			m.attrObjectCost.Observe(float64(h.Propagations + h.Pops + h.Melds))
		}
	}
}
