package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchRequest drives one POST /analyze through the full handler stack.
func benchRequest(b *testing.B, s *Server, body []byte) {
	req := httptest.NewRequest("POST", "/analyze", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkServerCacheHit measures a fully warm request: the program is
// already solved, so the cost is hashing + cache lookup + rendering.
func BenchmarkServerCacheHit(b *testing.B) {
	s := New(Config{})
	defer closeQuiet(b, s)
	body, _ := json.Marshal(AnalyzeRequest{Source: mediumIR(7), Lang: "ir"})
	benchRequest(b, s, body) // prime the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, s, body)
	}
}

// BenchmarkServerCacheMiss measures the same request with the cache
// purged each iteration, so every request pays for a full solve. The
// gap between this and BenchmarkServerCacheHit is what the
// content-addressed cache buys.
func BenchmarkServerCacheMiss(b *testing.B) {
	s := New(Config{})
	defer closeQuiet(b, s)
	body, _ := json.Marshal(AnalyzeRequest{Source: mediumIR(7), Lang: "ir"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.purge()
		benchRequest(b, s, body)
	}
}

func closeQuiet(b *testing.B, s *Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		b.Errorf("Close: %v", err)
	}
}
