package server

import (
	"sync/atomic"

	"vsfs"
)

// metrics holds the server's monotonic counters; every field is
// accessed atomically so handler goroutines never contend on a lock
// for bookkeeping.
type metrics struct {
	requests        atomic.Int64
	analyzeRequests atomic.Int64
	queryRequests   atomic.Int64

	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	flightShared atomic.Int64

	solves          atomic.Int64
	solvesOK        atomic.Int64
	solveErrors     atomic.Int64
	solvesCancelled atomic.Int64
	queueRejects    atomic.Int64

	solveNanos    atomic.Int64
	maxSolveNanos atomic.Int64

	// Per-phase cumulative wall clock, mirroring vsfs.Timings.
	andersenNanos atomic.Int64
	memSSANanos   atomic.Int64
	svfgNanos     atomic.Int64
	mainNanos     atomic.Int64
}

// observeSolve folds one successful run's timings into the counters.
func (m *metrics) observeSolve(t vsfs.Timings) {
	m.solveNanos.Add(int64(t.Total))
	m.andersenNanos.Add(int64(t.Andersen))
	m.memSSANanos.Add(int64(t.MemSSA))
	m.svfgNanos.Add(int64(t.SVFG))
	m.mainNanos.Add(int64(t.Solve))
	for {
		old := m.maxSolveNanos.Load()
		if int64(t.Total) <= old || m.maxSolveNanos.CompareAndSwap(old, int64(t.Total)) {
			return
		}
	}
}

// PhaseMillis breaks cumulative solve time down by pipeline phase.
type PhaseMillis struct {
	Andersen float64 `json:"andersenMs"`
	MemSSA   float64 `json:"memSSAMs"`
	SVFG     float64 `json:"svfgMs"`
	Solve    float64 `json:"solveMs"`
}

// StatsSnapshot is the JSON body of GET /stats.
type StatsSnapshot struct {
	Requests        int64 `json:"requests"`
	AnalyzeRequests int64 `json:"analyzeRequests"`
	QueryRequests   int64 `json:"queryRequests"`

	CacheHits    int64 `json:"cacheHits"`
	CacheMisses  int64 `json:"cacheMisses"`
	CacheEntries int   `json:"cacheEntries"`

	SingleFlightShared int64 `json:"singleFlightShared"`

	Solves          int64 `json:"solves"`
	SolvesOK        int64 `json:"solvesOK"`
	SolveErrors     int64 `json:"solveErrors"`
	SolvesCancelled int64 `json:"solvesCancelled"`
	QueueRejects    int64 `json:"queueRejects"`
	QueueDepth      int   `json:"queueDepth"`
	Workers         int   `json:"workers"`

	AvgSolveMs float64     `json:"avgSolveMs"`
	MaxSolveMs float64     `json:"maxSolveMs"`
	Phase      PhaseMillis `json:"phase"`
}

func (s *Server) snapshot() StatsSnapshot {
	m := &s.met
	snap := StatsSnapshot{
		Requests:        m.requests.Load(),
		AnalyzeRequests: m.analyzeRequests.Load(),
		QueryRequests:   m.queryRequests.Load(),

		CacheHits:    m.cacheHits.Load(),
		CacheMisses:  m.cacheMisses.Load(),
		CacheEntries: s.cache.len(),

		SingleFlightShared: m.flightShared.Load(),

		Solves:          m.solves.Load(),
		SolvesOK:        m.solvesOK.Load(),
		SolveErrors:     m.solveErrors.Load(),
		SolvesCancelled: m.solvesCancelled.Load(),
		QueueRejects:    m.queueRejects.Load(),
		QueueDepth:      s.pool.queued(),
		Workers:         s.cfg.Workers,

		MaxSolveMs: float64(m.maxSolveNanos.Load()) / 1e6,
		Phase: PhaseMillis{
			Andersen: float64(m.andersenNanos.Load()) / 1e6,
			MemSSA:   float64(m.memSSANanos.Load()) / 1e6,
			SVFG:     float64(m.svfgNanos.Load()) / 1e6,
			Solve:    float64(m.mainNanos.Load()) / 1e6,
		},
	}
	if ok := snap.SolvesOK; ok > 0 {
		snap.AvgSolveMs = float64(m.solveNanos.Load()) / 1e6 / float64(ok)
	}
	return snap
}
