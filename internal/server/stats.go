package server

import (
	"strconv"
	"time"

	"vsfs"
)

// PhaseMillis breaks cumulative solve time down by pipeline phase.
type PhaseMillis struct {
	Andersen float64 `json:"andersenMs"`
	MemSSA   float64 `json:"memSSAMs"`
	SVFG     float64 `json:"svfgMs"`
	Solve    float64 `json:"solveMs"`
}

// LastShape mirrors the vsfs_shape_* gauges: the Table II-style feature
// vector of the most recent successful solve (zero before any solve).
type LastShape struct {
	Instrs          int     `json:"instrs"`
	AddressTaken    int     `json:"addressTaken"`
	StoreLoadRatio  float64 `json:"storeLoadRatio"`
	SingletonRatio  float64 `json:"singletonRatio"`
	IndirectDensity float64 `json:"indirectDensity"`
}

// StatsSnapshot is the JSON body of GET /stats. Every field is read
// back from the metrics registry (or live server state), so /stats and
// /metrics always agree.
type StatsSnapshot struct {
	Requests        int64 `json:"requests"`
	AnalyzeRequests int64 `json:"analyzeRequests"`
	QueryRequests   int64 `json:"queryRequests"`
	CheckRequests   int64 `json:"checkRequests"`

	// RequestsByMode counts accepted analysis requests by requested
	// backend (vsfs, sfs, cfgfree, andersen).
	RequestsByMode map[string]int64 `json:"requestsByMode"`

	FindingsReported int64 `json:"findingsReported"`

	CacheHits    int64 `json:"cacheHits"`
	CacheMisses  int64 `json:"cacheMisses"`
	CacheEntries int   `json:"cacheEntries"`

	SingleFlightShared int64 `json:"singleFlightShared"`

	Solves          int64 `json:"solves"`
	SolvesOK        int64 `json:"solvesOK"`
	SolveErrors     int64 `json:"solveErrors"`
	SolvesCancelled int64 `json:"solvesCancelled"`
	ShedRequests    int64 `json:"shedRequests"`
	QueueDepth      int   `json:"queueDepth"`
	Workers         int   `json:"workers"`
	WorkersBusy     int   `json:"workersBusy"`

	GuardPanics     int64 `json:"guardPanics"`
	DegradedResults int64 `json:"degradedResults"`
	BudgetExceeded  int64 `json:"budgetExceeded"`
	BreakerOpens    int64 `json:"breakerOpens"`
	BreakerRejects  int64 `json:"breakerRejects"`
	BreakerTracked  int   `json:"breakerTracked"`

	UptimeSeconds float64 `json:"uptimeSeconds"`

	AvgSolveMs float64     `json:"avgSolveMs"`
	MaxSolveMs float64     `json:"maxSolveMs"`
	Phase      PhaseMillis `json:"phase"`

	LastShape LastShape `json:"lastShape"`

	Parallel ParallelSnapshot `json:"parallel"`
}

// ParallelSnapshot mirrors the vsfs_parallel_* and vsfs_shard_* series:
// cumulative sharded-engine activity plus the most recent parallel
// solve's load-balance gauge. All zero when no solve has run the
// parallel engine.
type ParallelSnapshot struct {
	Solves int64 `json:"solves"`
	// ShardPops is cumulative worklist pops by owning shard, indexed by
	// shard number (length vsfs.ShardCount).
	ShardPops []int64 `json:"shardPops"`
	// Steals counts chunks processed by a worker other than the one the
	// round-robin split assigned. Schedule-dependent: a capacity signal,
	// never part of any determinism contract.
	Steals int64 `json:"steals"`
	// LastImbalance is the most recent parallel solve's hottest-shard /
	// mean-shard pop ratio (1.0 = perfectly balanced).
	LastImbalance float64 `json:"lastImbalance"`
}

func (s *Server) snapshot() StatsSnapshot {
	m := s.met
	phaseSum := func(ph string) float64 {
		return m.phaseSeconds.With("phase", ph).Sum() * 1e3
	}
	snap := StatsSnapshot{
		Requests:        int64(m.httpRequests.Total()),
		AnalyzeRequests: int64(m.httpRequests.With("endpoint", "analyze").Value()),
		QueryRequests:   int64(m.httpRequests.With("endpoint", "query").Value()),
		CheckRequests:   int64(m.httpRequests.With("endpoint", "check").Value()),

		FindingsReported: int64(m.findingsTotal.Total()),

		CacheHits:    int64(m.cacheReqs.With("result", "hit").Value()),
		CacheMisses:  int64(m.cacheReqs.With("result", "miss").Value()),
		CacheEntries: s.cache.len(),

		SingleFlightShared: int64(m.flightShared.Value()),

		Solves:          int64(m.solvesStarted.Value()),
		SolvesOK:        int64(m.solveOutcomes.With("outcome", "ok").Value()),
		SolveErrors:     int64(m.solveOutcomes.With("outcome", "error").Value()),
		SolvesCancelled: int64(m.solveOutcomes.With("outcome", "cancelled").Value()),
		ShedRequests:    int64(m.shedRequests.Value()),
		QueueDepth:      s.pool.queued(),
		Workers:         s.cfg.Workers,
		WorkersBusy:     s.pool.running(),

		GuardPanics:     int64(m.guardPanics.Total()),
		DegradedResults: int64(m.degradedResults.Value()),
		BudgetExceeded:  int64(m.budgetExceeded.Total()),
		BreakerOpens:    int64(m.breakerOpens.Value()),
		BreakerRejects:  int64(m.breakerRejects.Value()),
		BreakerTracked:  s.brk.tracked(),

		UptimeSeconds: time.Since(s.started).Seconds(),

		MaxSolveMs: m.solveMax.Value() * 1e3,
		Phase: PhaseMillis{
			Andersen: phaseSum("andersen"),
			MemSSA:   phaseSum("memssa"),
			SVFG:     phaseSum("svfg"),
			Solve:    phaseSum("solve"),
		},

		LastShape: LastShape{
			Instrs:          int(m.shapeInstrs.Value()),
			AddressTaken:    int(m.shapeAddressTaken.Value()),
			StoreLoadRatio:  m.shapeStoreLoadRatio.Value(),
			SingletonRatio:  m.shapeSingletonRatio.Value(),
			IndirectDensity: m.shapeIndirectDensity.Value(),
		},
	}
	snap.RequestsByMode = make(map[string]int64, len(analysisModes))
	for _, mode := range analysisModes {
		snap.RequestsByMode[mode] = int64(m.requestsByMode.With("mode", mode).Value())
	}
	snap.Parallel = ParallelSnapshot{
		Solves:        int64(m.parallelSolves.Value()),
		ShardPops:     make([]int64, vsfs.ShardCount),
		Steals:        int64(m.shardSteals.Value()),
		LastImbalance: m.shardImbalance.Value(),
	}
	for sh := range snap.Parallel.ShardPops {
		snap.Parallel.ShardPops[sh] = int64(m.shardPops.With("shard", strconv.Itoa(sh)).Value())
	}
	if n := m.solveSeconds.Count(); n > 0 {
		snap.AvgSolveMs = m.solveSeconds.Sum() * 1e3 / float64(n)
	}
	return snap
}
