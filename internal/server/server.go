// Package server turns the vsfs library into analysis-as-a-service: a
// long-running HTTP/JSON daemon that accepts mini-C or textual-IR
// programs, solves them with the chosen analysis (vsfs, sfs, cfgfree,
// or andersen), and answers points-to, alias, call-graph, witness, and
// checker queries.
//
// Three pieces of plumbing make it a service rather than a CGI wrapper:
//
//   - Cancellation: request contexts (client disconnects, per-request
//     deadlines, the server-wide solve budget) flow through the facade
//     into the worklist loops of every solver, so abandoned work stops
//     burning CPU promptly.
//   - A content-addressed result cache: solved programs are cached
//     under the SHA-256 of (mode, language, source) with an LRU bound,
//     and single-flight deduplication ensures N concurrent identical
//     requests trigger exactly one solve.
//   - A bounded worker pool: at most Workers solves run at once, at
//     most QueueDepth wait, and anything beyond that is shed with 503
//     instead of accumulating goroutines. Close drains in-flight work.
//
// Endpoints: GET /healthz, GET /stats, GET /metrics, POST /analyze,
// POST /query, POST /check, and (opt-in) GET /debug/pprof/*. All
// response bodies
// are deterministic — sorted keys and slices everywhere — so a cache
// hit is byte-identical to the cache miss that populated it; only the
// X-Vsfs-Cache header differs.
//
// Every request is tagged with a request ID (client-supplied
// X-Request-Id or generated), which is echoed in the response header,
// embedded in error bodies, and attached to every log line — including
// the solve-cancellation and queue-shed paths — so a client-visible
// failure can always be correlated with the server's logs.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vsfs"
	"vsfs/internal/diag"
	"vsfs/internal/guard"
	"vsfs/internal/obs"
)

// Config sizes the service. Zero values select sensible defaults.
type Config struct {
	// Workers bounds concurrent solves; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds solves waiting for a worker; default 64.
	// Submissions beyond it fail fast with 503.
	QueueDepth int
	// SolveTimeout caps one solve's wall clock; default 30s. Zero means
	// DefaultSolveTimeout; negative means no cap.
	SolveTimeout time.Duration
	// CacheEntries bounds the result cache; default 128.
	CacheEntries int
	// Logger receives structured access and error logs; default discards.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/.
	EnablePprof bool
	// DisableMetrics leaves GET /metrics unmounted. The registry still
	// runs either way — /stats is derived from it.
	DisableMetrics bool

	// StepBudget is a server-wide pool of worklist steps: each solve
	// runs under a budget of StepBudget/Workers steps. A solve that
	// exhausts it after the auxiliary phase degrades to the
	// flow-insensitive result; earlier breaches fail with 503. Zero
	// means unbounded.
	StepBudget int64
	// MemBudget is the server-wide pool of points-to storage bytes,
	// split across Workers like StepBudget. Zero means unbounded.
	MemBudget int64

	// BreakerThreshold is how many consecutive hard failures (panics or
	// non-degradable budget blowouts) a single program may cause before
	// its circuit opens and requests for it are short-circuited to the
	// cached failure. Zero selects the default; negative disables the
	// breaker.
	BreakerThreshold int
	// BreakerOpenFor is the cooling-off period of an open circuit;
	// default 30s.
	BreakerOpenFor time.Duration

	// Faults injects a deterministic guard.FaultPlan into every solve.
	// Test and chaos-drill hook; leave nil in production.
	Faults *guard.FaultPlan

	// Ledger, when non-nil, records every completed solve (including
	// degraded ones) as a vsfs.RunRecord and serves the tail at
	// GET /runs. The server does not close it; the owner does.
	Ledger *obs.Ledger
	// TraceDir, when non-empty, writes one Chrome trace_event file per
	// solve into the directory, named and tagged with the request ID of
	// the single-flight leader.
	TraceDir string
	// Attribution enables per-object cost attribution on every solve:
	// reports embed the hot-object table and /metrics gains the
	// vsfs_attr_* series. Adds ~four slice writes per solver event.
	Attribution bool

	// Parallel is the default worker count for VSFS main solves: values
	// ≥ 2 run the sharded parallel engine, 0/1 solve sequentially. A
	// request's "parallel" field overrides it. Parallel and sequential
	// solves produce byte-identical responses (the parallel-eq-sequential
	// invariant), so results are cached in just two classes — sequential
	// and parallel — rather than one per worker count.
	Parallel int

	// RetryJitterSeed seeds the bounded jitter added to Retry-After
	// values on shed/shutdown/budget rejections, so a burst of rejected
	// clients does not resynchronize into a retry stampede. Zero draws a
	// random seed; tests fix it for deterministic spreads (no wall clock
	// is involved either way).
	RetryJitterSeed int64
}

// Defaults for Config's zero values.
const (
	DefaultQueueDepth       = 64
	DefaultCacheEntries     = 128
	DefaultSolveTimeout     = 30 * time.Second
	DefaultBreakerThreshold = 3
	DefaultBreakerOpenFor   = 30 * time.Second
)

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.SolveTimeout == 0 {
		c.SolveTimeout = DefaultSolveTimeout
	} else if c.SolveTimeout < 0 {
		c.SolveTimeout = 0
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.Logger == nil {
		c.Logger = obs.Discard()
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	} else if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = DefaultBreakerOpenFor
	}
	return c
}

// Server is the analysis service. Create with New, mount via
// http.Handler, stop with Close.
type Server struct {
	cfg     Config
	cache   *resultCache
	flight  *flightGroup
	pool    *pool
	brk     *breaker
	met     *serverMetrics
	logger  *slog.Logger
	started time.Time
	mux     *http.ServeMux

	// draining flips once Close begins: /readyz answers 503 from then
	// on so load balancers stop routing here while in-flight solves
	// finish. /healthz stays 200 — the process is alive, just leaving.
	draining atomic.Bool

	// jitter randomizes Retry-After values under jitterMu; seeded from
	// Config.RetryJitterSeed.
	jitterMu sync.Mutex
	jitter   *rand.Rand

	// Per-solve share of the server-wide budget pools.
	stepsPerSolve int64
	memPerSolve   int64
}

// New builds a Server with its worker pool already running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	seed := cfg.RetryJitterSeed
	if seed == 0 {
		seed = rand.Int63()
	}
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheEntries),
		flight:  newFlightGroup(cfg.SolveTimeout),
		brk:     newBreaker(cfg.BreakerThreshold, cfg.BreakerOpenFor, nil),
		logger:  cfg.Logger,
		started: time.Now(),
		jitter:  rand.New(rand.NewSource(seed)),
	}
	if cfg.StepBudget > 0 {
		s.stepsPerSolve = max64(1, cfg.StepBudget/int64(cfg.Workers))
	}
	if cfg.MemBudget > 0 {
		s.memPerSolve = max64(1, cfg.MemBudget/int64(cfg.Workers))
	}
	s.met = newServerMetrics(s)
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, func(v any) {
		// Last-resort defense: solve jobs recover their own panics, so
		// this only fires for a bug in the job plumbing itself. The
		// worker survives either way.
		s.met.guardPanics.With("phase", "server").Inc()
		s.logger.Error("worker recovered from panic", "panic", fmt.Sprint(v))
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /runs", s.handleRuns)
	s.mux.HandleFunc("POST /analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /check", s.handleCheck)
	if !cfg.DisableMetrics {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler. It is the telemetry middleware:
// it assigns (or adopts) the request ID, counts the request, runs the
// handler, and emits one structured access-log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	startedAt := time.Now()
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = obs.NewRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	r = r.WithContext(obs.WithRequestID(r.Context(), id))

	s.met.httpRequests.With("endpoint", endpointOf(r.URL.Path)).Inc()
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)

	attrs := []slog.Attr{
		slog.String("id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Duration("duration", time.Since(startedAt)),
	}
	if cs := w.Header().Get("X-Vsfs-Cache"); cs != "" {
		attrs = append(attrs, slog.String("cache", cs))
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// Close stops accepting new solves and drains queued and in-flight
// work, returning ctx.Err() if draining outlives the context. From the
// first moment of Close, /readyz answers 503 so health-checked routers
// (the gateway tier) stop sending new work here.
func (s *Server) Close(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.shutdown(ctx)
}

// Draining reports whether Close has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats returns a point-in-time snapshot of the service counters.
func (s *Server) Stats() StatsSnapshot { return s.snapshot() }

// AnalyzeRequest is the body of POST /analyze (and is embedded in
// QueryRequest). TimeoutMs is a per-request deadline; it is not part of
// the cache key because it does not affect the solved result.
type AnalyzeRequest struct {
	Source    string `json:"source"`
	Lang      string `json:"lang,omitempty"` // "c" (default) or "ir"
	Mode      string `json:"mode,omitempty"` // "vsfs" (default), "sfs", "cfgfree", "andersen"
	TimeoutMs int    `json:"timeoutMs,omitempty"`
	// Parallel overrides the server's default VSFS solver worker count
	// for this request: ≥ 2 solves on the sharded parallel engine, 1
	// forces a sequential solve, 0 defers to Config.Parallel. Only the
	// solver schedule changes — the response is byte-identical either
	// way — so only the sequential/parallel class (not the exact count)
	// enters the cache key.
	Parallel int `json:"parallel,omitempty"`
}

// AnalyzeResponse is the body of a successful POST /analyze.
type AnalyzeResponse struct {
	Key    string      `json:"key"`
	Mode   string      `json:"mode"`
	Report vsfs.Report `json:"report"`
	Dump   string      `json:"dump"`
}

// CheckRequest is the body of POST /check. The solve itself rides the
// same cache/single-flight/pool/breaker path as /analyze; the checkers
// and the diagnostics pipeline run per request on the solved facts.
type CheckRequest struct {
	AnalyzeRequest
	// Filename is the display name stamped into finding locations and
	// SARIF artifact URIs. Cosmetic only.
	Filename string `json:"filename,omitempty"`
	// Format selects the response body: "json" (default) or "sarif".
	Format string `json:"format,omitempty"`
	// Severities overrides per-kind severities (error|warning|note).
	Severities map[string]string `json:"severities,omitempty"`
	// Taint configuration; see vsfs.CheckConfig.
	TaintSource     string   `json:"taintSource,omitempty"`
	TaintSink       string   `json:"taintSink,omitempty"`
	TaintSanitizers []string `json:"taintSanitizers,omitempty"`
}

// CheckResponse is the body of a successful POST /check in "json"
// format.
type CheckResponse struct {
	Key        string         `json:"key"`
	Mode       string         `json:"mode"`
	Findings   []diag.Finding `json:"findings"`
	Suppressed int            `json:"suppressed,omitempty"`
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	AnalyzeRequest
	Kind  string `json:"kind"` // points-to | alias | callgraph | explain | check
	Func  string `json:"func,omitempty"`
	Var   string `json:"var,omitempty"`
	Func2 string `json:"func2,omitempty"`
	Var2  string `json:"var2,omitempty"`
}

// CallEdge is one function's resolved callees.
type CallEdge struct {
	Func    string   `json:"func"`
	Callees []string `json:"callees"`
}

// QueryResponse is the body of a successful POST /query. Exactly one
// result field is populated, matching Kind.
type QueryResponse struct {
	Key       string         `json:"key"`
	Kind      string         `json:"kind"`
	PointsTo  []string       `json:"pointsTo,omitempty"`
	Alias     *bool          `json:"alias,omitempty"`
	CallGraph []CallEdge     `json:"callGraph,omitempty"`
	Witnesses []string       `json:"witnesses,omitempty"`
	Findings  []vsfs.Finding `json:"findings,omitempty"`
}

// errBadRequest marks client errors that should map to 400/422 rather
// than 500.
type errBadRequest struct{ error }

func badRequestf(format string, args ...any) error {
	return errBadRequest{fmt.Errorf(format, args...)}
}

// resolve returns the solved result for req, via cache, single-flight,
// and the worker pool in that order.
func (s *Server) resolve(ctx context.Context, req AnalyzeRequest) (res *vsfs.Result, key string, hit bool, err error) {
	mode, err := vsfs.ParseMode(req.Mode)
	if err != nil {
		return nil, "", false, errBadRequest{err}
	}
	input, err := vsfs.ParseInput(req.Lang)
	if err != nil {
		return nil, "", false, errBadRequest{err}
	}
	if strings.TrimSpace(req.Source) == "" {
		return nil, "", false, badRequestf("empty source")
	}
	if req.Parallel < 0 {
		return nil, "", false, badRequestf("bad parallel %d (want 0 for the server default, 1 for sequential, or a worker count)", req.Parallel)
	}
	workers := s.cfg.Parallel
	if req.Parallel > 0 {
		workers = req.Parallel
	}
	s.met.requestsByMode.With("mode", mode.String()).Inc()
	key = cacheKey(mode, input, req.Source, workers)
	if r, ok := s.cache.get(key); ok {
		s.met.cacheReqs.With("result", "hit").Inc()
		return r, key, true, nil
	}
	s.met.cacheReqs.With("result", "miss").Inc()

	// A program that keeps taking workers down is short-circuited to
	// its cached failure until the circuit's cooling-off period ends.
	if err := s.brk.allow(key); err != nil {
		s.met.breakerRejects.Inc()
		s.logger.Warn("request short-circuited, breaker open", "id", obs.RequestID(ctx), "key", key)
		return nil, key, false, err
	}

	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	// The single-flight solve runs on a context detached from this
	// request (other waiters may outlive it), so the leader's request ID
	// must be carried over explicitly for the solve's log lines.
	reqID := obs.RequestID(ctx)
	r, shared, err := s.flight.do(ctx, key, func(solveCtx context.Context) (*vsfs.Result, error) {
		return s.solveOn(obs.WithRequestID(solveCtx, reqID), key, mode, input, req.Source, workers)
	})
	if shared {
		s.met.flightShared.Inc()
	}
	return r, key, false, err
}

// solveOn runs one solve on the worker pool under solveCtx and caches a
// successful result. It is only ever called as a single-flight leader,
// so each distinct in-flight program occupies at most one queue slot.
func (s *Server) solveOn(solveCtx context.Context, key string, mode vsfs.Mode, input vsfs.Input, source string, workers int) (*vsfs.Result, error) {
	type outcome struct {
		res *vsfs.Result
		err error
	}
	ch := make(chan outcome, 1)
	reqID := obs.RequestID(solveCtx)
	job := func() {
		done := false
		defer func() {
			// Defense in depth: the facade isolates phase panics itself,
			// so this recover only fires for a panic outside any phase.
			// The waiters still get an answer and the worker survives.
			if v := recover(); v != nil && !done {
				err := &guard.PhaseError{Phase: "server", Value: v}
				s.met.solveOutcomes.With("outcome", "error").Inc()
				s.met.guardPanics.With("phase", "server").Inc()
				s.logger.Error("solve panicked outside pipeline", "id", reqID, "key", key, "panic", fmt.Sprint(v))
				ch <- outcome{nil, err}
			}
		}()
		// A solve abandoned by every waiter while still queued: skip it.
		if err := solveCtx.Err(); err != nil {
			s.met.solveOutcomes.With("outcome", "cancelled").Inc()
			s.logger.Warn("solve abandoned in queue", "id", reqID, "key", key, "err", err)
			done = true
			ch <- outcome{nil, err}
			return
		}
		s.met.solvesStarted.Inc()
		ctx := guard.WithBudget(solveCtx, guard.NewBudget(s.stepsPerSolve, s.memPerSolve, 0))
		if s.cfg.Faults != nil {
			ctx = guard.WithFaults(ctx, s.cfg.Faults)
		}
		if s.cfg.TraceDir != "" {
			tr := obs.NewTrace()
			tr.Tag("requestId", reqID)
			ctx = obs.NewContext(ctx, tr)
			defer s.writeTrace(tr, reqID)
		}
		res, err := vsfs.AnalyzeContext(ctx, source, vsfs.Options{Mode: mode, Input: input, Attr: s.cfg.Attribution, Parallel: workers})
		switch {
		case err == nil:
			s.met.solveOutcomes.With("outcome", "ok").Inc()
			s.met.observeSolve(res)
			s.brk.recordSuccess(key)
			if res.Degraded() {
				phase, resource := res.DegradedCause()
				s.met.degradedResults.Inc()
				s.met.budgetExceeded.With("phase", phase, "resource", resource).Inc()
				s.logger.Warn("solve degraded", "id", reqID, "key", key, "reason", res.Degradation())
			}
			// Only complete solves are cached — including degraded ones,
			// which are deterministic for a fixed server budget, so a
			// repeat of an over-budget program is a cache hit rather than
			// another doomed solve. A cancelled or failed solve can never
			// corrupt an entry.
			s.cache.add(key, res)
			if s.cfg.Ledger != nil {
				// Each ledger record covers one actual solve (cache hits
				// re-serve this record's run). The checker pass is paid
				// only when a ledger wants the finding count.
				rec := res.RunRecord(time.Now(), len(res.Check()))
				if lerr := s.cfg.Ledger.Append(rec); lerr != nil {
					s.logger.Warn("ledger append failed", "id", reqID, "err", lerr)
				}
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.met.solveOutcomes.With("outcome", "cancelled").Inc()
			s.logger.Warn("solve cancelled", "id", reqID, "key", key, "err", err)
		default:
			s.met.solveOutcomes.With("outcome", "error").Inc()
			var pe *guard.PhaseError
			var be *guard.ErrBudgetExceeded
			switch {
			case errors.As(err, &pe):
				s.met.guardPanics.With("phase", pe.Phase).Inc()
				if s.brk.recordFailure(key, err) {
					s.met.breakerOpens.Inc()
				}
				s.logger.Error("solve panicked", "id", reqID, "key", key,
					"phase", pe.Phase, "program", pe.ProgramHash, "panic", fmt.Sprint(pe.Value))
			case errors.As(err, &be):
				// A breach before the auxiliary result exists has no
				// fallback; repeated ones trip the breaker like panics.
				s.met.budgetExceeded.With("phase", be.Phase, "resource", string(be.Resource)).Inc()
				if s.brk.recordFailure(key, err) {
					s.met.breakerOpens.Inc()
				}
				s.logger.Warn("solve over budget, no fallback", "id", reqID, "key", key, "err", err)
			}
		}
		done = true
		ch <- outcome{res, err}
	}
	if err := s.pool.submit(job); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.met.shedRequests.Inc()
			s.logger.Warn("solve shed, queue full", "id", reqID, "key", key)
		}
		return nil, err
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-solveCtx.Done():
		return nil, solveCtx.Err()
	}
}

// writeTrace persists one solve's Chrome trace under TraceDir, named by
// the request ID (sanitised — the ID may be client-supplied). Failures
// are logged, never surfaced: tracing must not affect the solve.
func (s *Server) writeTrace(tr *obs.Trace, reqID string) {
	name := "solve-" + sanitizeID(reqID) + ".json"
	f, err := os.Create(filepath.Join(s.cfg.TraceDir, name))
	if err != nil {
		s.logger.Warn("trace create failed", "id", reqID, "err", err)
		return
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		s.logger.Warn("trace write failed", "id", reqID, "err", err)
	}
}

// sanitizeID keeps [A-Za-z0-9_-] of a request ID for use in filenames.
func sanitizeID(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(out) < 64; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "unknown"
	}
	return string(out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ok",
		"version": obs.Version,
		"go":      obs.GoVersion(),
	})
}

// handleReadyz is the routing probe: 200 while the server accepts new
// solves, 503 with Retry-After once Close has begun. Liveness
// (/healthz) deliberately stays 200 through a drain — the process is
// healthy, it is just not taking new work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs(1, 2)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status":  "draining",
			"version": obs.Version,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ready",
		"version": obs.Version,
	})
}

// RunsResponse is the body of GET /runs: the newest ledger records,
// oldest first, as raw JSON lines.
type RunsResponse struct {
	Runs []json.RawMessage `json:"runs"`
}

// Bounds for GET /runs?n=K: K is clamped into [1, MaxRunsTail] rather
// than rejected, so dashboards asking for "everything" (huge K) or
// miscomputing zero get the documented edge value instead of a 400;
// only non-numeric input is a client error.
const (
	DefaultRunsTail = 20
	MaxRunsTail     = 500
)

// handleRuns tails the persistent run ledger. 404 when the server was
// started without one.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Ledger == nil {
		s.writeError(w, r, http.StatusNotFound, errors.New("no run ledger configured (start with -ledger)"))
		return
	}
	n := DefaultRunsTail
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, badRequestf("bad n %q (want an integer)", q))
			return
		}
		n = min(max(v, 1), MaxRunsTail)
	}
	runs, err := s.cfg.Ledger.Tail(n)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	if runs == nil {
		runs = []json.RawMessage{}
	}
	writeJSON(w, http.StatusOK, RunsResponse{Runs: runs})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

// handleMetrics renders the registry in Prometheus text format 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.reg.WritePrometheus(w)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	res, key, hit, err := s.resolve(r.Context(), req)
	if err != nil {
		s.setRetryHeaders(w, err)
		s.writeError(w, r, statusFor(err), err)
		return
	}
	setResultHeaders(w, key, hit, res)
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Key:    key,
		Mode:   res.Stats().Mode,
		Report: res.Report(),
		Dump:   res.Dump(),
	})
}

// handleCheck solves the program (cached), runs the full checker suite
// over the solved facts, pushes the findings through the diagnostics
// engine (severities, fingerprints, inline suppressions), counts them
// into vsfs_findings_total by kind, and renders JSON or SARIF 2.1.0.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	format := strings.ToLower(req.Format)
	if format != "" && format != "json" && format != "sarif" {
		s.writeError(w, r, http.StatusBadRequest, badRequestf("unknown format %q (want json or sarif)", req.Format))
		return
	}
	severities := make(map[string]diag.Severity, len(req.Severities))
	for kind, lvl := range req.Severities {
		switch sv := diag.Severity(lvl); sv {
		case diag.Error, diag.Warning, diag.Note:
			severities[kind] = sv
		default:
			s.writeError(w, r, http.StatusBadRequest, badRequestf("bad severity %q for %q (want error, warning or note)", lvl, kind))
			return
		}
	}
	res, key, hit, err := s.resolve(r.Context(), req.AnalyzeRequest)
	if err != nil {
		s.setRetryHeaders(w, err)
		s.writeError(w, r, statusFor(err), err)
		return
	}
	raw := res.CheckWith(vsfs.CheckConfig{
		TaintSource:     req.TaintSource,
		TaintSink:       req.TaintSink,
		TaintSanitizers: req.TaintSanitizers,
	})
	rawd := make([]diag.Raw, len(raw))
	for i, f := range raw {
		rawd[i] = diag.Raw{Kind: f.Kind, Func: f.Func, Label: f.Label, Line: f.Line, Col: f.Col, Message: f.Message}
	}
	findings := diag.New(req.Filename, rawd, severities)
	findings, suppressed := diag.Suppress(req.Source, findings)
	for _, f := range findings {
		s.met.findingsTotal.With("kind", f.Kind).Inc()
	}
	setResultHeaders(w, key, hit, res)
	if format == "sarif" {
		w.Header().Set("Content-Type", "application/sarif+json")
		w.WriteHeader(http.StatusOK)
		if err := diag.WriteSARIF(w, findings); err != nil {
			s.logger.Warn("sarif encoding failed", "id", obs.RequestID(r.Context()), "err", err)
		}
		return
	}
	if findings == nil {
		findings = []diag.Finding{}
	}
	writeJSON(w, http.StatusOK, CheckResponse{
		Key:        key,
		Mode:       res.Stats().Mode,
		Findings:   findings,
		Suppressed: suppressed,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	res, key, hit, err := s.resolve(r.Context(), req.AnalyzeRequest)
	if err != nil {
		s.setRetryHeaders(w, err)
		s.writeError(w, r, statusFor(err), err)
		return
	}
	resp := QueryResponse{Key: key, Kind: req.Kind}
	switch strings.ToLower(req.Kind) {
	case "points-to", "pointsto", "pts":
		if req.Var == "" {
			s.writeError(w, r, http.StatusBadRequest, badRequestf(`"points-to" needs "var" (and optionally "func")`))
			return
		}
		resp.PointsTo = res.PointsToVar(req.Func, req.Var)
		if resp.PointsTo == nil {
			resp.PointsTo = []string{}
		}
	case "alias":
		if req.Var == "" || req.Var2 == "" {
			s.writeError(w, r, http.StatusBadRequest, badRequestf(`"alias" needs "var" and "var2" (and optionally "func"/"func2")`))
			return
		}
		alias := res.MayAlias(req.Func, req.Var, req.Func2, req.Var2)
		resp.Alias = &alias
	case "callgraph", "call-graph":
		cg := res.CallGraph()
		edges := make([]CallEdge, 0, len(cg))
		for _, fn := range res.Functions() {
			callees := cg[fn]
			if callees == nil {
				callees = []string{}
			}
			edges = append(edges, CallEdge{Func: fn, Callees: callees})
		}
		resp.CallGraph = edges
	case "explain", "why":
		if req.Var == "" {
			s.writeError(w, r, http.StatusBadRequest, badRequestf(`"explain" needs "var" (and optionally "func")`))
			return
		}
		resp.Witnesses = res.Explain(req.Func, req.Var)
		if resp.Witnesses == nil {
			resp.Witnesses = []string{}
		}
	case "check":
		resp.Findings = res.Check()
		if resp.Findings == nil {
			resp.Findings = []vsfs.Finding{}
		}
	default:
		s.writeError(w, r, http.StatusBadRequest,
			badRequestf("unknown query kind %q (want points-to, alias, callgraph, explain, or check)", req.Kind))
		return
	}
	setResultHeaders(w, key, hit, res)
	writeJSON(w, http.StatusOK, resp)
}

// setResultHeaders reports cache and degradation status out of band:
// the body must stay byte-identical between a miss and the hits it
// feeds, so anything that may vary or merely annotate rides in headers.
func setResultHeaders(w http.ResponseWriter, key string, hit bool, res *vsfs.Result) {
	status := "miss"
	if hit {
		status = "hit"
	}
	w.Header().Set("X-Vsfs-Cache", status)
	w.Header().Set("X-Vsfs-Key", key)
	if res.Degraded() {
		w.Header().Set("X-Vsfs-Degraded", "true")
	}
}

// retryAfterSecs returns base plus a bounded random offset in
// [0, spread] seconds. Fixed Retry-After values synchronize every
// rejected client's retry into the next stampede; the jitter spreads
// the horde without wall-clock involvement (the RNG is seeded, so tests
// are deterministic).
func (s *Server) retryAfterSecs(base, spread int) int {
	s.jitterMu.Lock()
	defer s.jitterMu.Unlock()
	return base + s.jitter.Intn(spread+1)
}

// setRetryHeaders attaches Retry-After to retryable failures: a shed or
// shutting-down request may retry almost immediately, an open circuit
// when it closes, and a budget breach after backing off. The shed and
// budget values are jittered (see retryAfterSecs); the breaker value is
// the circuit's actual remaining cooling-off, which is monotonically
// non-increasing while the circuit stays open.
func (s *Server) setRetryHeaders(w http.ResponseWriter, err error) {
	var bo errBreakerOpen
	var be *guard.ErrBudgetExceeded
	switch {
	case errors.As(err, &bo):
		secs := int(bo.retryAfter/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.Header().Set("X-Vsfs-Breaker", "open")
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShutdown):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs(1, 2)))
	case errors.As(err, &be):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs(5, 5)))
	}
}

// statusFor maps resolve errors to HTTP statuses: queue pressure,
// shutdown, open circuits, and non-degradable budget breaches are 503
// (retryable), cancellation/deadline is 504, a pipeline panic is 500,
// malformed requests are 400, and programs that fail to compile are 422.
func statusFor(err error) int {
	var bo errBreakerOpen
	var pe *guard.PhaseError
	var be *guard.ErrBudgetExceeded
	switch {
	case errors.As(err, &bo):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case errors.As(err, &be):
		return http.StatusServiceUnavailable
	default:
		var bad errBadRequest
		if errors.As(err, &bad) {
			return http.StatusBadRequest
		}
		return http.StatusUnprocessableEntity
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"requestId,omitempty"`
}

// writeError renders a failure with the request ID embedded in the
// body, so a shed (503) or cancelled (504) request can be matched to
// the server's log line for the same ID.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	id := obs.RequestID(r.Context())
	if status >= 500 {
		s.logger.Warn("request failed", "id", id, "status", status, "err", err)
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), RequestID: id})
}

// writeJSON renders v canonically: encoding/json marshals struct fields
// in declaration order and map keys sorted, and every slice we emit is
// pre-sorted, so identical values produce identical bytes.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}
