package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"vsfs"
)

// cacheKey content-addresses an analysis request: the SHA-256 of
// (mode, input language, solver schedule class, source text),
// NUL-separated so no two distinct requests collide by concatenation.
// Per-request options that do not affect the solved result (deadlines,
// query parameters) are deliberately excluded. The schedule class is
// binary — "seq" for workers ≤ 1, "par" for ≥ 2 — not the worker
// count itself: every parallel worker count produces a byte-identical
// response (the parallel-eq-sequential determinism invariant), so
// folding the count in would only fragment the cache. The two classes
// are kept distinct anyway so effort counters in Report.Stats, which
// legitimately differ between the two engines, never flip within one
// cache entry.
func cacheKey(mode vsfs.Mode, input vsfs.Input, source string, workers int) string {
	class := "seq"
	if workers > 1 {
		class = "par"
	}
	h := sha256.New()
	h.Write([]byte(mode.String()))
	h.Write([]byte{0})
	h.Write([]byte(input.String()))
	h.Write([]byte{0})
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// resultCache is a bounded LRU over solved programs keyed by content
// hash. Values are immutable *vsfs.Result instances, safe for any
// number of concurrent query readers.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *vsfs.Result
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*vsfs.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).res, true
	}
	return nil, false
}

func (c *resultCache) add(key string, res *vsfs.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// purge empties the cache; used by tests and benchmarks to force
// cache-miss paths.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element)
}
