package server

import (
	"context"
	"sync"
	"time"

	"vsfs"
)

// flightGroup deduplicates concurrent identical solves: the first
// request for a key becomes the leader and runs fn exactly once, on a
// context detached from any individual request; later arrivals wait for
// the shared outcome. The solve context is cancelled only when every
// waiter has abandoned the call (waiter refcount hits zero), so one
// impatient client cannot kill a solve other clients are still waiting
// on — and a cancelled solve yields an error, which the server never
// caches, so cancellation can never corrupt a cached entry.
type flightGroup struct {
	// budget caps each underlying solve's wall clock (0 = unbounded).
	budget time.Duration

	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	cancel context.CancelFunc

	// waiters counts requests that will still consume the outcome;
	// guarded by flightGroup.mu.
	waiters int

	// res/err are written once before done is closed.
	res *vsfs.Result
	err error
}

func newFlightGroup(budget time.Duration) *flightGroup {
	return &flightGroup{budget: budget, calls: make(map[string]*flightCall)}
}

// do returns fn's outcome for key, coalescing concurrent callers.
// shared reports whether this caller joined a solve started by another.
// If ctx is done first, do abandons the call and returns ctx.Err(); the
// last waiter to abandon cancels the underlying solve so no CPU burns
// for a result nobody wants.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (*vsfs.Result, error)) (res *vsfs.Result, shared bool, err error) {
	g.mu.Lock()
	c, ok := g.calls[key]
	if ok {
		c.waiters++
		shared = true
		g.mu.Unlock()
	} else {
		base := context.Background()
		var solveCtx context.Context
		var cancel context.CancelFunc
		if g.budget > 0 {
			solveCtx, cancel = context.WithTimeout(base, g.budget)
		} else {
			solveCtx, cancel = context.WithCancel(base)
		}
		c = &flightCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
		g.calls[key] = c
		g.mu.Unlock()
		go func() {
			c.res, c.err = fn(solveCtx)
			g.mu.Lock()
			// The last abandoning waiter may already have replaced or
			// removed this entry; only delete our own.
			if g.calls[key] == c {
				delete(g.calls, key)
			}
			g.mu.Unlock()
			cancel() // release the timeout's resources
			close(c.done)
		}()
	}

	select {
	case <-c.done:
		return c.res, shared, c.err
	case <-ctx.Done():
		// When done and ctx.Done() are both ready, select picks at
		// random — a request whose deadline expires just as the shared
		// solve completes must still get the ready result, not a 504.
		// Re-check done non-blockingly before honouring ctx.Err(); the
		// completion path never touches the waiter refcount, so taking
		// it here keeps the bookkeeping consistent.
		select {
		case <-c.done:
			return c.res, shared, c.err
		default:
		}
		g.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		if last && g.calls[key] == c {
			// Unlink the doomed call atomically with the refcount drop so
			// a later identical request starts a fresh solve instead of
			// inheriting this one's cancellation error.
			delete(g.calls, key)
		}
		g.mu.Unlock()
		if last {
			c.cancel()
		}
		return nil, shared, ctx.Err()
	}
}
