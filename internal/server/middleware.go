package server

import (
	"net/http"
	"strings"
)

// statusWriter records the status code and whether the handler marked
// the response as a cache hit, for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// endpointOf classifies a request path into a bounded label set so the
// per-endpoint counter cannot grow without bound on probe traffic.
func endpointOf(path string) string {
	switch {
	case path == "/healthz":
		return "healthz"
	case path == "/readyz":
		return "readyz"
	case path == "/stats":
		return "stats"
	case path == "/metrics":
		return "metrics"
	case path == "/analyze":
		return "analyze"
	case path == "/query":
		return "query"
	case path == "/check":
		return "check"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "pprof"
	default:
		return "other"
	}
}
