package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"vsfs/internal/obs"
)

func TestHealthzReportsVersion(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	var h struct {
		Status  string `json:"status"`
		Version string `json:"version"`
		Go      string `json:"go"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != obs.Version || h.Go != obs.GoVersion() {
		t.Fatalf("healthz = %+v, want status ok, version %s, go %s", h, obs.Version, obs.GoVersion())
	}
}

func TestRunsWithoutLedgerIs404(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := get(t, s, "/runs")
	if code != http.StatusNotFound {
		t.Fatalf("GET /runs without ledger = %d, want 404 (body %s)", code, body)
	}
	if !strings.Contains(string(body), "-ledger") {
		t.Fatalf("404 body should point at the -ledger flag: %s", body)
	}
}

func TestRunsTailsLedger(t *testing.T) {
	led, err := obs.OpenLedger(filepath.Join(t.TempDir(), "runs.jsonl"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	s := newTestServer(t, Config{Ledger: led})

	// Two distinct programs plus one cache hit: the ledger records
	// solves, not requests, so exactly two records.
	if code, _, _ := post(t, s, "/analyze", AnalyzeRequest{Source: smallC}); code != 200 {
		t.Fatalf("analyze = %d", code)
	}
	other := strings.Replace(smallC, "int g;", "int g; int h;", 1)
	if code, _, _ := post(t, s, "/analyze", AnalyzeRequest{Source: other}); code != 200 {
		t.Fatalf("analyze = %d", code)
	}
	if code, _, _ := post(t, s, "/analyze", AnalyzeRequest{Source: smallC}); code != 200 {
		t.Fatalf("cache-hit analyze = %d", code)
	}

	code, body := get(t, s, "/runs")
	if code != http.StatusOK {
		t.Fatalf("GET /runs = %d (body %s)", code, body)
	}
	var resp RunsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Runs) != 2 {
		t.Fatalf("got %d run records, want 2 (cache hits must not re-append): %s", len(resp.Runs), body)
	}
	for i, raw := range resp.Runs {
		var rec struct {
			Time    string `json:"time"`
			Backend string `json:"backend"`
			Shape   struct {
				Instrs int `json:"instrs"`
			} `json:"shape"`
			TotalMs float64 `json:"totalMs"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Time == "" || rec.Backend == "" || rec.Shape.Instrs == 0 {
			t.Fatalf("record %d missing fields: %s", i, raw)
		}
	}

	// ?n truncates to the newest records.
	code, body = get(t, s, "/runs?n=1")
	if code != http.StatusOK {
		t.Fatalf("GET /runs?n=1 = %d", code)
	}
	resp = RunsResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Runs) != 1 {
		t.Fatalf("got %d run records with n=1, want 1", len(resp.Runs))
	}

	if code, _ := get(t, s, "/runs?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("GET /runs?n=bogus = %d, want 400", code)
	}

	// Out-of-range counts clamp to the documented edges instead of
	// erroring: dashboards that miscompute zero or ask for "everything"
	// still get an answer.
	for _, q := range []string{"-3", "0"} {
		code, body = get(t, s, "/runs?n="+q)
		if code != http.StatusOK {
			t.Fatalf("GET /runs?n=%s = %d, want 200 (clamped to 1)", q, code)
		}
		resp = RunsResponse{}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Runs) != 1 {
			t.Fatalf("GET /runs?n=%s returned %d records, want 1 (clamped)", q, len(resp.Runs))
		}
	}
	code, body = get(t, s, "/runs?n=99999999")
	if code != http.StatusOK {
		t.Fatalf("GET /runs?n=99999999 = %d, want 200 (clamped to MaxRunsTail)", code)
	}
	resp = RunsResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Runs) != 2 {
		t.Fatalf("GET /runs?n=99999999 returned %d records, want all 2", len(resp.Runs))
	}
}

func TestAttributionSurfacesInReportAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{Attribution: true})
	code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code != 200 {
		t.Fatalf("analyze = %d: %s", code, body)
	}
	var resp struct {
		Report struct {
			HotObjects []struct {
				Object string `json:"object"`
				Pops   uint64 `json:"pops"`
			} `json:"hotObjects"`
			Shape struct {
				Instrs int `json:"instrs"`
			} `json:"shape"`
		} `json:"report"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	rep := resp.Report
	if len(rep.HotObjects) == 0 {
		t.Fatal("attribution enabled but report has no hotObjects")
	}
	if rep.Shape.Instrs == 0 {
		t.Fatal("report has no shape profile")
	}

	code, mbody := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	text := string(mbody)
	for _, want := range []string{
		"vsfs_attr_charges_total",
		"vsfs_attr_object_cost",
		"vsfs_shape_instrs",
		"vsfs_build_info",
		`version="` + obs.Version + `"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /stats mirrors the shape gauges.
	code, sbody := get(t, s, "/stats")
	if code != 200 {
		t.Fatalf("GET /stats = %d", code)
	}
	var st StatsSnapshot
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if st.LastShape.Instrs != rep.Shape.Instrs {
		t.Fatalf("stats lastShape.instrs = %d, report shape.instrs = %d — must agree",
			st.LastShape.Instrs, rep.Shape.Instrs)
	}
}

func TestAttributionOffByDefault(t *testing.T) {
	s := newTestServer(t, Config{})
	code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code != 200 {
		t.Fatalf("analyze = %d", code)
	}
	if bytes.Contains(body, []byte(`"hotObjects"`)) {
		t.Fatalf("hotObjects present without Attribution: %s", body)
	}
	if !bytes.Contains(body, []byte(`"shape"`)) {
		t.Fatalf("shape profile must be unconditional: %s", body)
	}
}

func TestTraceDirWritesPerSolveTrace(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{TraceDir: dir})

	data, _ := json.Marshal(AnalyzeRequest{Source: smallC})
	req := httptest.NewRequest("POST", "/analyze", bytes.NewReader(data))
	req.Header.Set("X-Request-Id", "trace-me-1")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("analyze = %d", rec.Code)
	}

	path := filepath.Join(dir, "solve-trace-me-1.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no per-solve trace written: %v", err)
	}
	if !json.Valid(raw) {
		t.Fatalf("trace is not valid JSON: %s", raw)
	}
	if !bytes.Contains(raw, []byte("trace-me-1")) {
		t.Fatal("trace not tagged with the request ID")
	}
	if !bytes.Contains(raw, []byte("andersen")) {
		t.Fatal("trace has no pipeline phase events")
	}
}

func TestTraceDirSanitizesRequestID(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{TraceDir: dir})

	data, _ := json.Marshal(AnalyzeRequest{Source: smallC})
	req := httptest.NewRequest("POST", "/analyze", bytes.NewReader(data))
	req.Header.Set("X-Request-Id", "../../etc/passwd")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("analyze = %d", rec.Code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want exactly 1 trace inside the trace dir, got %d", len(entries))
	}
	name := entries[0].Name()
	if strings.Contains(name, "/") || strings.Contains(name, "..") {
		t.Fatalf("unsafe trace filename %q", name)
	}
}

// TestConcurrentObserveScrapeStats is the satellite race test: solves
// (which Observe histograms, set shape gauges, and append attribution
// series) racing /metrics scrapes and /stats snapshots. Run under
// -race; any unsynchronised access in the registry or snapshot path
// trips the detector.
func TestConcurrentObserveScrapeStats(t *testing.T) {
	led, err := obs.OpenLedger(filepath.Join(t.TempDir(), "runs.jsonl"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	s := newTestServer(t, Config{Workers: 4, Attribution: true, Ledger: led})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Distinct sources defeat the cache and single-flight, so
				// every request is a real solve that writes telemetry.
				src := fmt.Sprintf("int v%d_%d;\n%s", w, i, smallC)
				if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: src}); code != 200 {
					t.Errorf("analyze = %d: %s", code, body)
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if code, _ := get(t, s, "/metrics"); code != 200 {
				t.Errorf("/metrics = %d", code)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			code, body := get(t, s, "/stats")
			if code != 200 {
				t.Errorf("/stats = %d", code)
				return
			}
			var st StatsSnapshot
			if err := json.Unmarshal(body, &st); err != nil {
				t.Errorf("/stats body: %v", err)
				return
			}
			if _, err := led.Tail(5); err != nil {
				t.Errorf("concurrent ledger tail: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Telemetry landed: 20 solves observed.
	st := s.Stats()
	if st.SolvesOK != 20 {
		t.Fatalf("solvesOK = %d, want 20", st.SolvesOK)
	}
	if st.LastShape.Instrs == 0 {
		t.Fatal("shape gauges never set")
	}
}
