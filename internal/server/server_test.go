package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vsfs"
	"vsfs/internal/workload"
)

const smallC = `
int g;
int *gp;
void set(int *x) { gp = x; }
int main() {
  int a;
  int *p;
  p = &a;
  set(p);
  return 0;
}
`

// mediumIR / slowIR generate deterministic workload programs sized so a
// solve takes long enough (~100ms / ~300ms uninstrumented) for requests
// to genuinely overlap in the concurrency tests.
func sizedIR(funcs, instrs int, seed int64) string {
	cfg := workload.DefaultRandomConfig()
	cfg.Funcs = funcs
	cfg.InstrsPerFunc = instrs
	cfg.GlobalBias = 0.2
	cfg.ChainFrac = 0.2
	cfg.ChainLen = 5
	return workload.Random(seed, cfg).String()
}

func mediumIR(seed int64) string { return sizedIR(18, 60, seed) }
func slowIR(seed int64) string   { return sizedIR(22, 65, seed) }

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// post sends a JSON POST through the full handler stack.
func post(t *testing.T, s *Server, path string, body any) (int, http.Header, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

func get(t *testing.T, s *Server, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	if !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("unexpected body: %s", body)
	}
}

// TestQueryMatchesLibraryFacts: the service must answer exactly what
// the library (and hence cmd/vsfs) computes on the same input.
func TestQueryMatchesLibraryFacts(t *testing.T) {
	s := newTestServer(t, Config{})

	want, err := vsfs.AnalyzeC(smallC, vsfs.Options{})
	if err != nil {
		t.Fatal(err)
	}

	code, _, body := post(t, s, "/query", QueryRequest{
		AnalyzeRequest: AnalyzeRequest{Source: smallC},
		Kind:           "points-to", Func: "main", Var: "p",
	})
	if code != http.StatusOK {
		t.Fatalf("POST /query = %d: %s", code, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	wantPts := want.PointsToVar("main", "p")
	if fmt.Sprint(resp.PointsTo) != fmt.Sprint(wantPts) {
		t.Fatalf("points-to(main.p) = %v, want %v", resp.PointsTo, wantPts)
	}

	code, _, body = post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code != http.StatusOK {
		t.Fatalf("POST /analyze = %d: %s", code, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Dump != want.Dump() {
		t.Fatalf("server dump differs from library dump:\n%s\n---\n%s", ar.Dump, want.Dump())
	}

	// Alias and check kinds answer from the same result.
	code, _, body = post(t, s, "/query", QueryRequest{
		AnalyzeRequest: AnalyzeRequest{Source: smallC},
		Kind:           "alias", Func: "main", Var: "p", Func2: "set", Var2: "x",
	})
	if code != http.StatusOK {
		t.Fatalf("alias query = %d: %s", code, body)
	}
	var aresp QueryResponse
	if err := json.Unmarshal(body, &aresp); err != nil {
		t.Fatal(err)
	}
	if aresp.Alias == nil || *aresp.Alias != want.MayAlias("main", "p", "set", "x") {
		t.Fatalf("alias answer = %v, want %v", aresp.Alias, want.MayAlias("main", "p", "set", "x"))
	}
	code, _, body = post(t, s, "/query", QueryRequest{
		AnalyzeRequest: AnalyzeRequest{Source: smallC},
		Kind:           "check",
	})
	if code != http.StatusOK {
		t.Fatalf("check query = %d: %s", code, body)
	}
	var cresp QueryResponse
	if err := json.Unmarshal(body, &cresp); err != nil {
		t.Fatal(err)
	}
	if len(cresp.Findings) != len(want.Check()) {
		t.Fatalf("check findings = %d, want %d", len(cresp.Findings), len(want.Check()))
	}
}

// TestCacheHitByteIdentical: the second identical request must be a
// cache hit whose body is byte-for-byte the first (miss) response; the
// cache status travels in a header precisely so bodies can't differ.
func TestCacheHitByteIdentical(t *testing.T) {
	s := newTestServer(t, Config{})

	code1, hdr1, body1 := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	code2, hdr2, body2 := post(t, s, "/analyze", AnalyzeRequest{Source: smallC})
	if code1 != 200 || code2 != 200 {
		t.Fatalf("status = %d, %d", code1, code2)
	}
	if got := hdr1.Get("X-Vsfs-Cache"); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	if got := hdr2.Get("X-Vsfs-Cache"); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit body differs from miss body:\n%s\n---\n%s", body1, body2)
	}
	if hdr1.Get("X-Vsfs-Key") == "" || hdr1.Get("X-Vsfs-Key") != hdr2.Get("X-Vsfs-Key") {
		t.Fatalf("content keys differ: %q vs %q", hdr1.Get("X-Vsfs-Key"), hdr2.Get("X-Vsfs-Key"))
	}

	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.SolvesOK != 1 {
		t.Fatalf("stats = hits %d misses %d solvesOK %d, want 1/1/1",
			st.CacheHits, st.CacheMisses, st.SolvesOK)
	}

	// Query responses are deterministic across hit/miss too.
	q := QueryRequest{AnalyzeRequest: AnalyzeRequest{Source: smallC}, Kind: "callgraph"}
	_, _, qb1 := post(t, s, "/query", q)
	_, _, qb2 := post(t, s, "/query", q)
	if !bytes.Equal(qb1, qb2) {
		t.Fatalf("query bodies differ across cache hits:\n%s\n---\n%s", qb1, qb2)
	}
}

// TestSingleFlight: N concurrent identical requests must trigger
// exactly one solve.
func TestSingleFlight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	src := mediumIR(7)

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = post(t, s, "/analyze", AnalyzeRequest{Source: src, Lang: "ir"})
		}(i)
	}
	wg.Wait()

	for i, c := range codes {
		if c != 200 {
			t.Fatalf("request %d: status %d: %s", i, c, bodies[i])
		}
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	st := s.Stats()
	if st.SolvesOK != 1 {
		t.Fatalf("SolvesOK = %d, want exactly 1 (single-flight)", st.SolvesOK)
	}
	if st.Solves != 1 {
		t.Fatalf("Solves = %d, want exactly 1", st.Solves)
	}
}

// TestParallelDistinct: distinct programs must each get their own solve
// — deduplication must key on content, not collapse everything.
func TestParallelDistinct(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})

	const distinct = 4
	srcs := make([]string, distinct)
	for i := range srcs {
		srcs[i] = mediumIR(int64(100 + i))
	}

	var wg sync.WaitGroup
	errs := make(chan error, distinct*2)
	for rep := 0; rep < 2; rep++ {
		for i := 0; i < distinct; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: srcs[i], Lang: "ir"})
				if code != 200 {
					errs <- fmt.Errorf("src %d: status %d: %s", i, code, body)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SolvesOK != distinct {
		t.Fatalf("SolvesOK = %d, want %d (one per distinct program)", st.SolvesOK, distinct)
	}
}

// TestPerRequestDeadline: a 1ms budget on a ~300ms program must come
// back promptly with 504, and the cancelled solve must not poison the
// cache — the follow-up full solve returns the correct result.
func TestPerRequestDeadline(t *testing.T) {
	s := newTestServer(t, Config{})
	src := slowIR(7)

	start := time.Now()
	code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: src, Lang: "ir", TimeoutMs: 1})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body: %s", code, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("error body does not mention the deadline: %s", body)
	}
	// "Promptly": far sooner than the full solve (~300ms uninstrumented,
	// seconds under -race). The worklist polls every 1024 pops, so 150ms
	// is a generous bound that still proves the solve was aborted.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("cancelled request took %v, want well under the full solve time", elapsed)
	}

	// The aborted solve must not have cached anything.
	if st := s.Stats(); st.SolvesOK != 0 || st.CacheEntries != 0 {
		t.Fatalf("after cancellation: SolvesOK=%d CacheEntries=%d, want 0/0", st.SolvesOK, st.CacheEntries)
	}

	// Full solve afterwards: correct, cached, and identical to the
	// library's answer on the same input.
	code, hdr, body2 := post(t, s, "/analyze", AnalyzeRequest{Source: src, Lang: "ir"})
	if code != 200 {
		t.Fatalf("follow-up status = %d: %s", code, body2)
	}
	if hdr.Get("X-Vsfs-Cache") != "miss" {
		t.Fatalf("follow-up should be a miss, got %q", hdr.Get("X-Vsfs-Cache"))
	}
	want, err := vsfs.AnalyzeIR(src, vsfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body2, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Dump != want.Dump() {
		t.Fatal("post-cancellation solve produced a dump differing from the library's")
	}
	if st := s.Stats(); st.SolvesCancelled < 1 {
		t.Fatalf("SolvesCancelled = %d, want >= 1", st.SolvesCancelled)
	}
}

// TestClientDisconnect: cancelling the request context (as net/http
// does when a client goes away) aborts the solve.
func TestClientDisconnect(t *testing.T) {
	s := newTestServer(t, Config{})
	src := slowIR(11)

	ctx, cancel := context.WithCancel(context.Background())
	data, _ := json.Marshal(AnalyzeRequest{Source: src, Lang: "ir"})
	req := httptest.NewRequest("POST", "/analyze", bytes.NewReader(data)).WithContext(ctx)
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
	if st := s.Stats(); st.SolvesOK != 0 {
		t.Fatalf("SolvesOK = %d, want 0", st.SolvesOK)
	}
}

// TestQueueShedding: with one worker and a one-slot queue, a burst of
// distinct solves must shed load with 503 instead of queueing unboundedly.
func TestQueueShedding(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	const burst = 8
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, _ = post(t, s, "/analyze",
				AnalyzeRequest{Source: mediumIR(int64(200 + i)), Lang: "ir"})
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
	if shed == 0 {
		t.Fatal("no request was shed; queue bound not enforced")
	}
	if st := s.Stats(); st.ShedRequests != int64(shed) {
		t.Fatalf("ShedRequests = %d, want %d", st.ShedRequests, shed)
	}
}

// TestGracefulShutdown: Close drains an in-flight solve rather than
// dropping it, and later work is refused with 503.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 2})
	src := mediumIR(31)

	done := make(chan int, 1)
	go func() {
		code, _, _ := post(t, s, "/analyze", AnalyzeRequest{Source: src, Lang: "ir"})
		done <- code
	}()
	// Let the solve get onto a worker before shutting down.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Solves == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if code := <-done; code != 200 {
		t.Fatalf("in-flight request finished with %d, want 200 (drained)", code)
	}

	code, _, _ := post(t, s, "/analyze", AnalyzeRequest{Source: mediumIR(32), Lang: "ir"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown solve = %d, want 503", code)
	}
}

// TestBadRequests: malformed inputs map to 4xx, not 5xx.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"empty source", "/analyze", AnalyzeRequest{}, 400},
		{"bad mode", "/analyze", AnalyzeRequest{Source: smallC, Mode: "nope"}, 400},
		{"bad lang", "/analyze", AnalyzeRequest{Source: smallC, Lang: "rust"}, 400},
		{"compile error", "/analyze", AnalyzeRequest{Source: "int main( {"}, 422},
		{"bad kind", "/query", QueryRequest{AnalyzeRequest: AnalyzeRequest{Source: smallC}, Kind: "nope"}, 400},
		{"alias missing var", "/query", QueryRequest{AnalyzeRequest: AnalyzeRequest{Source: smallC}, Kind: "alias"}, 400},
	}
	for _, tc := range cases {
		code, _, body := post(t, s, tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, code, tc.want, body)
		}
	}
}

// TestHammerMixed is the -race workout: parallel identical and distinct
// requests, queries, and stats reads all at once.
func TestHammerMixed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, CacheEntries: 8})
	srcs := []string{smallC}
	for i := 0; i < 3; i++ {
		srcs = append(srcs, sizedIR(10, 50, int64(300+i)))
	}
	langs := []string{"c", "ir", "ir", "ir"}

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Decouple source choice from action choice so every program
			// sees every action across the 32 iterations.
			j := (i / 4) % len(srcs)
			switch i % 4 {
			case 0, 1:
				code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: srcs[j], Lang: langs[j]})
				if code != 200 {
					t.Errorf("analyze %d: %d %s", i, code, body)
				}
			case 2:
				code, _, body := post(t, s, "/query", QueryRequest{
					AnalyzeRequest: AnalyzeRequest{Source: srcs[j], Lang: langs[j]},
					Kind:           "callgraph",
				})
				if code != 200 {
					t.Errorf("query %d: %d %s", i, code, body)
				}
			case 3:
				if code, _ := get(t, s, "/stats"); code != 200 {
					t.Errorf("stats %d: %d", i, code)
				}
			}
		}(i)
	}
	wg.Wait()

	st := s.Stats()
	if st.SolvesOK != int64(len(srcs)) {
		t.Fatalf("SolvesOK = %d, want %d (each distinct program solved once)", st.SolvesOK, len(srcs))
	}
}

// TestLRUEviction: the cache keeps at most CacheEntries solved programs.
func TestLRUEviction(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: 2})
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("int main() { int a%d; int *p; p = &a%d; return 0; }", i, i)
		if code, _, body := post(t, s, "/analyze", AnalyzeRequest{Source: src}); code != 200 {
			t.Fatalf("analyze %d: %d %s", i, code, body)
		}
	}
	if st := s.Stats(); st.CacheEntries != 2 {
		t.Fatalf("CacheEntries = %d, want 2 (LRU bound)", st.CacheEntries)
	}
	// Oldest entry was evicted: re-requesting it is a miss and re-solve.
	src0 := "int main() { int a0; int *p; p = &a0; return 0; }"
	_, hdr, _ := post(t, s, "/analyze", AnalyzeRequest{Source: src0})
	if hdr.Get("X-Vsfs-Cache") != "miss" {
		t.Fatalf("evicted entry came back as %q, want miss", hdr.Get("X-Vsfs-Cache"))
	}
}

// uafC frees a heap cell and then stores through the stale pointer at
// line 6 column 3.
const uafC = `int main() {
  int *p;
  int x;
  p = malloc();
  free(p);
  *p = 2;
  return 0;
}`

func TestCheckEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})

	body := map[string]any{"source": uafC, "filename": "uaf.c"}
	code, hdr, resp := post(t, s, "/check", body)
	if code != http.StatusOK {
		t.Fatalf("POST /check = %d: %s", code, resp)
	}
	var cr CheckResponse
	if err := json.Unmarshal(resp, &cr); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if cr.Mode != "vsfs" || cr.Key == "" {
		t.Errorf("mode/key = %q/%q", cr.Mode, cr.Key)
	}
	var uaf int
	for _, f := range cr.Findings {
		if f.Kind == "use-after-free" {
			uaf++
			if f.File != "uaf.c" || f.Line != 6 || f.Col != 3 {
				t.Errorf("position = %s:%d:%d, want uaf.c:6:3", f.File, f.Line, f.Col)
			}
			if f.Fingerprint == "" {
				t.Error("missing fingerprint")
			}
		}
	}
	if uaf == 0 {
		t.Fatalf("no use-after-free finding in %s", resp)
	}

	// The second identical request must be a cache hit for the solve —
	// findings are recomputed but the result key is stable.
	_, hdr2, resp2 := post(t, s, "/check", body)
	if hdr.Get("X-VSFS-Cache") != "miss" || hdr2.Get("X-VSFS-Cache") != "hit" {
		t.Errorf("cache headers = %q then %q", hdr.Get("X-VSFS-Cache"), hdr2.Get("X-VSFS-Cache"))
	}
	if !bytes.Equal(resp, resp2) {
		t.Errorf("cached check differs:\n%s\nvs\n%s", resp, resp2)
	}

	// Findings metric materialised and counted (2 requests x findings).
	mcode, mbody := get(t, s, "/metrics")
	if mcode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", mcode)
	}
	if !strings.Contains(string(mbody), `vsfs_findings_total{kind="use-after-free"} `+fmt.Sprint(2*uaf)) {
		t.Errorf("metrics missing findings counter:\n%s", mbody)
	}
}

func TestCheckEndpointSARIF(t *testing.T) {
	s := newTestServer(t, Config{})

	code, hdr, resp := post(t, s, "/check",
		map[string]any{"source": uafC, "filename": "uaf.c", "format": "sarif"})
	if code != http.StatusOK {
		t.Fatalf("POST /check = %d: %s", code, resp)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/sarif+json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(resp, &doc); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v", doc["version"])
	}
	run := doc["runs"].([]any)[0].(map[string]any)
	results := run["results"].([]any)
	if len(results) == 0 {
		t.Fatal("no SARIF results")
	}
	found := false
	for _, r := range results {
		if r.(map[string]any)["ruleId"] == "use-after-free" {
			found = true
		}
	}
	if !found {
		t.Errorf("no use-after-free result: %s", resp)
	}
}

func TestCheckEndpointSuppression(t *testing.T) {
	s := newTestServer(t, Config{})

	suppressed := strings.Replace(uafC, "*p = 2;", "*p = 2; // vsfs:ignore(use-after-free)", 1)
	code, _, resp := post(t, s, "/check", map[string]any{"source": suppressed})
	if code != http.StatusOK {
		t.Fatalf("POST /check = %d: %s", code, resp)
	}
	var cr CheckResponse
	if err := json.Unmarshal(resp, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Suppressed == 0 {
		t.Errorf("suppressed = 0, want > 0: %s", resp)
	}
	for _, f := range cr.Findings {
		if f.Kind == "use-after-free" && f.Line == 6 {
			t.Errorf("suppressed finding still reported: %+v", f)
		}
	}
}

func TestCheckEndpointBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	for name, body := range map[string]any{
		"bad format":   map[string]any{"source": uafC, "format": "xml"},
		"bad severity": map[string]any{"source": uafC, "severities": map[string]string{"null-deref": "fatal"}},
		"empty source": map[string]any{"source": ""},
	} {
		code, _, resp := post(t, s, "/check", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: code = %d (%s), want 400", name, code, resp)
		}
	}
}

func TestCheckEndpointSeverityOverride(t *testing.T) {
	s := newTestServer(t, Config{})
	code, _, resp := post(t, s, "/check", map[string]any{
		"source":     uafC,
		"severities": map[string]string{"use-after-free": "note"},
	})
	if code != http.StatusOK {
		t.Fatalf("POST /check = %d: %s", code, resp)
	}
	var cr CheckResponse
	if err := json.Unmarshal(resp, &cr); err != nil {
		t.Fatal(err)
	}
	for _, f := range cr.Findings {
		if f.Kind == "use-after-free" && f.Severity != "note" {
			t.Errorf("severity = %s, want note", f.Severity)
		}
	}
}
