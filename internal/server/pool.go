package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

var (
	// ErrQueueFull is returned when the solve queue is at capacity and
	// every worker is busy; clients should back off and retry.
	ErrQueueFull = errors.New("server: solve queue full")
	// ErrShutdown is returned for work submitted after Close began.
	ErrShutdown = errors.New("server: shutting down")
)

// pool is a fixed-size worker pool with a bounded FIFO queue. Submission
// never blocks: when the queue is full the caller gets ErrQueueFull
// immediately, which the HTTP layer maps to 503 so load-shedding is
// visible to clients instead of piling up goroutines.
type pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	busy    atomic.Int64
	onPanic func(v any)

	mu     sync.Mutex
	closed bool
}

func newPool(workers, queueDepth int, onPanic func(v any)) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &pool{jobs: make(chan func(), queueDepth), onPanic: onPanic}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.busy.Add(1)
				p.run(job)
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// run executes one job, containing any panic so a single bad job can
// never take the worker (and with it a pool slot) down for good.
func (p *pool) run(job func()) {
	defer func() {
		if v := recover(); v != nil && p.onPanic != nil {
			p.onPanic(v)
		}
	}()
	job()
}

// submit enqueues job without blocking.
func (p *pool) submit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrShutdown
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// queued returns the number of jobs waiting for a worker.
func (p *pool) queued() int { return len(p.jobs) }

// running returns the number of workers currently executing a job.
func (p *pool) running() int { return int(p.busy.Load()) }

// shutdown stops intake and drains queued and in-flight jobs, returning
// early with ctx.Err() if the drain outlives the context.
func (p *pool) shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
