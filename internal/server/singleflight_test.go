package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"vsfs"
)

// TestFlightReadyResultBeatsExpiredContext is the regression test for
// the done/ctx.Done() select race: when the shared solve has already
// completed, a waiter whose context expired at the same moment must
// return the ready result, never ctx.Err(). Pre-fix, select picked
// between the two ready channels at random, so this failed roughly
// half of its iterations.
func TestFlightReadyResultBeatsExpiredContext(t *testing.T) {
	g := newFlightGroup(0)
	want := &vsfs.Result{}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // both channels ready from the very first select

	for i := 0; i < 300; i++ {
		// Plant a completed call: done closed, result written — the
		// state do() observes when the solve finishes just as the
		// waiter's deadline passes.
		c := &flightCall{done: make(chan struct{}), cancel: func() {}, waiters: 1}
		c.res = want
		close(c.done)
		g.mu.Lock()
		g.calls["k"] = c
		g.mu.Unlock()

		res, shared, err := g.do(ctx, "k", func(context.Context) (*vsfs.Result, error) {
			t.Fatal("fn must not run: a call for this key is already complete")
			return nil, nil
		})
		if err != nil {
			t.Fatalf("iteration %d: got err %v with a ready result", i, err)
		}
		if res != want {
			t.Fatalf("iteration %d: got res %p, want the planted result", i, res)
		}
		if !shared {
			t.Fatalf("iteration %d: joining an in-flight call must report shared", i)
		}

		g.mu.Lock()
		delete(g.calls, "k")
		g.mu.Unlock()
	}
}

// TestFlightExpiredContextStillAbandonsRunningSolve pins the other side
// of the fix: when the solve is NOT done, an expired context must still
// abandon the call promptly, and the last waiter's abandonment cancels
// the underlying solve.
func TestFlightExpiredContextStillAbandonsRunningSolve(t *testing.T) {
	g := newFlightGroup(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	release := make(chan struct{})
	var cancelled sync.WaitGroup
	cancelled.Add(1)
	_, _, err := g.do(ctx, "k", func(solveCtx context.Context) (*vsfs.Result, error) {
		go func() {
			defer cancelled.Done()
			<-solveCtx.Done() // the abandoned solve must be cancelled
		}()
		<-release
		return nil, solveCtx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	done := make(chan struct{})
	go func() { cancelled.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoning the last waiter did not cancel the solve context")
	}
	close(release)
}
