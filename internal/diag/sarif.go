package diag

import (
	"encoding/json"
	"io"
	"sort"
)

// SARIF 2.1.0 document model — only the slice of the spec vsfs emits.
// Field names follow the OASIS schema exactly; omitted optionals are
// dropped from the JSON so validators stay happy.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	DefaultConfig    *sarifConfig `json:"defaultConfiguration,omitempty"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations,omitempty"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation *sarifPhysical `json:"physicalLocation,omitempty"`
	LogicalLocations []sarifLogical `json:"logicalLocations,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifLogical struct {
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
}

// ruleDescriptions gives each built-in kind its SARIF rule text.
var ruleDescriptions = map[string]string{
	"null-deref":      "Dereference of a pointer that may be null or uninitialised at this point.",
	"dangling-return": "Function may return a pointer into its own stack frame.",
	"stack-escape":    "Address of a local variable escapes into storage that outlives the frame.",
	"use-after-free":  "Memory access may touch an object that was already freed.",
	"double-free":     "Free of an object that may already have been freed.",
	"memory-leak":     "Heap allocation is neither freed nor reachable when the program exits.",
	"leak":            "Sensitive object may flow into a sink call.",
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log. Rules are
// emitted for exactly the kinds present (sorted, so output is
// deterministic); each result carries the finding's severity as its
// level, its source region when known, its enclosing function as a
// logical location, and the stable fingerprint under
// partialFingerprints["vsfsFingerprint/v1"].
func WriteSARIF(w io.Writer, findings []Finding) error {
	kindSet := map[string]bool{}
	for _, f := range findings {
		kindSet[f.Kind] = true
	}
	kinds := make([]string, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)

	rules := make([]sarifRule, 0, len(kinds))
	ruleIndex := make(map[string]int, len(kinds))
	for i, k := range kinds {
		desc := ruleDescriptions[k]
		if desc == "" {
			desc = "Finding of kind " + k + "."
		}
		rules = append(rules, sarifRule{
			ID:               k,
			ShortDescription: sarifMessage{Text: desc},
			DefaultConfig:    &sarifConfig{Level: string(DefaultSeverity(k))},
		})
		ruleIndex[k] = i
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		res := sarifResult{
			RuleID:    f.Kind,
			RuleIndex: ruleIndex[f.Kind],
			Level:     string(f.Severity),
			Message:   sarifMessage{Text: f.Message},
		}
		if f.Fingerprint != "" {
			res.PartialFingerprints = map[string]string{"vsfsFingerprint/v1": f.Fingerprint}
		}
		loc := sarifLocation{}
		if f.Line > 0 && f.File != "" {
			loc.PhysicalLocation = &sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}
		}
		if f.Func != "" {
			loc.LogicalLocations = []sarifLogical{{Name: f.Func, Kind: "function"}}
		}
		if loc.PhysicalLocation != nil || loc.LogicalLocations != nil {
			res.Locations = []sarifLocation{loc}
		}
		results = append(results, res)
	}

	doc := sarifLog{
		Schema:  "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "vsfs", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
