// Package diag is the diagnostics engine sitting between the checkers
// and the user: it turns raw checker findings into presentable,
// suppressible, diffable diagnostics.
//
//   - every finding gets a stable fingerprint (content hash of kind,
//     file, function and message — deliberately not the line number, so
//     unrelated edits that shift code do not churn baselines);
//   - severities are configurable per kind on top of built-in defaults;
//   - inline "// vsfs:ignore(kind)" comments suppress findings at their
//     source line (a directive on its own line covers the line below);
//   - a JSON baseline file records fingerprints of known findings so
//     only new ones are reported;
//   - two renderers: human-readable text (file:line:col: severity:
//     message [kind]) and SARIF 2.1.0 for code-scanning UIs.
//
// The package is self-contained (stdlib only) and consumes plain
// structs, so any producer of findings — the facade, the daemon, tests
// — can use it without import cycles.
package diag

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// Severity grades a finding. The values match SARIF result levels.
type Severity string

const (
	Error   Severity = "error"
	Warning Severity = "warning"
	Note    Severity = "note"
)

// defaultSeverity maps the built-in checker kinds to their default
// grade. Kinds not listed default to Warning.
var defaultSeverity = map[string]Severity{
	"use-after-free":  Error,
	"double-free":     Error,
	"dangling-return": Error,
	"null-deref":      Warning,
	"stack-escape":    Warning,
	"memory-leak":     Warning,
	"leak":            Warning,
}

// DefaultSeverity returns the built-in severity for a finding kind.
func DefaultSeverity(kind string) Severity {
	if s, ok := defaultSeverity[kind]; ok {
		return s
	}
	return Warning
}

// Finding is one diagnostic, ready to render. Line and Col are 1-based;
// zero means the IR carried no source provenance and renderers fall
// back to the function name and instruction label.
type Finding struct {
	Kind        string   `json:"kind"`
	Func        string   `json:"func"`
	Label       uint32   `json:"label"`
	File        string   `json:"file,omitempty"`
	Line        int      `json:"line,omitempty"`
	Col         int      `json:"col,omitempty"`
	Message     string   `json:"message"`
	Severity    Severity `json:"severity"`
	Fingerprint string   `json:"fingerprint"`
}

// Location renders the finding's anchor: "file:line:col" when the
// source position is known, "func (ℓN)" otherwise.
func (f Finding) Location() string {
	if f.Line > 0 && f.File != "" {
		return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
	}
	if f.Line > 0 {
		return fmt.Sprintf("%d:%d", f.Line, f.Col)
	}
	return fmt.Sprintf("%s (ℓ%d)", f.Func, f.Label)
}

// String renders the finding in the text format:
// location: severity: message [kind].
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", f.Location(), f.Severity, f.Message, f.Kind)
}

// Raw is the producer-side view of a finding, mirroring
// checker.Finding without importing it.
type Raw struct {
	Kind    string
	Func    string
	Label   uint32
	Line    int
	Col     int
	Message string
}

// New builds presentable findings from raw checker output: stamps the
// file, resolves severities (overrides win over defaults, keyed by
// kind), computes fingerprints, and sorts by position then kind. Equal
// raw findings get distinct fingerprints via an occurrence counter, so
// a baseline that saw N copies hides exactly N.
func New(file string, raw []Raw, severities map[string]Severity) []Finding {
	out := make([]Finding, 0, len(raw))
	for _, r := range raw {
		sev := DefaultSeverity(r.Kind)
		if s, ok := severities[r.Kind]; ok {
			sev = s
		}
		out = append(out, Finding{
			Kind:     r.Kind,
			Func:     r.Func,
			Label:    r.Label,
			File:     file,
			Line:     r.Line,
			Col:      r.Col,
			Message:  r.Message,
			Severity: sev,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Kind < b.Kind
	})
	occ := make(map[string]int, len(out))
	for i := range out {
		key := fingerprintKey(out[i])
		occ[key]++
		out[i].Fingerprint = fingerprint(key, occ[key])
	}
	return out
}

// fingerprintKey is the stable identity of a finding. Line and column
// are excluded on purpose: moving code around must not invalidate a
// baseline, only changing what is reported (kind, function, message)
// or where it lives (file) should.
func fingerprintKey(f Finding) string {
	return fmt.Sprintf("v1\x00%s\x00%s\x00%s\x00%s", f.Kind, f.File, f.Func, f.Message)
}

func fingerprint(key string, occurrence int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d", key, occurrence)))
	return hex.EncodeToString(h[:8])
}

// RenderText writes the findings one per line in the human format.
func RenderText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}

// CountBySeverity tallies findings per severity grade.
func CountBySeverity(findings []Finding) map[Severity]int {
	out := map[Severity]int{}
	for _, f := range findings {
		out[f.Severity]++
	}
	return out
}
