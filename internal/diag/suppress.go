package diag

import (
	"regexp"
	"strings"
)

// ignoreRe matches a suppression directive inside a line comment:
// "// vsfs:ignore" silences every kind, "// vsfs:ignore(k1, k2)" only
// the listed kinds.
var ignoreRe = regexp.MustCompile(`//\s*vsfs:ignore(?:\(([^)]*)\))?`)

// ignores maps a 1-based source line to the set of suppressed kinds;
// the empty string key means "all kinds".
type ignores map[int]map[string]bool

// parseIgnores scans source text for suppression directives. A
// directive sharing a line with code applies to that line; a directive
// on a line that holds nothing but the comment applies to the next
// line, the conventional "ignore the statement below" form.
func parseIgnores(src string) ignores {
	out := ignores{}
	for i, line := range strings.Split(src, "\n") {
		m := ignoreRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		target := i + 1 // 1-based line of the directive
		if strings.HasPrefix(strings.TrimSpace(line), "//") {
			target++ // standalone comment: covers the line below
		}
		set := out[target]
		if set == nil {
			set = map[string]bool{}
			out[target] = set
		}
		if m[1] == "" {
			set[""] = true
			continue
		}
		for _, kind := range strings.Split(m[1], ",") {
			if kind = strings.TrimSpace(kind); kind != "" {
				set[kind] = true
			}
		}
	}
	return out
}

// Suppress drops findings silenced by "// vsfs:ignore" directives in
// the source text, returning the surviving findings and the number
// suppressed. Findings without a source position can never be
// suppressed this way — there is no line to attach the directive to.
func Suppress(src string, findings []Finding) ([]Finding, int) {
	ign := parseIgnores(src)
	if len(ign) == 0 {
		return findings, 0
	}
	kept := findings[:0:0]
	suppressed := 0
	for _, f := range findings {
		set := ign[f.Line]
		if f.Line > 0 && set != nil && (set[""] || set[f.Kind]) {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}
