package diag

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() []Finding {
	return New("prog.c", []Raw{
		{Kind: "use-after-free", Func: "main", Label: 12, Line: 7, Col: 3, Message: "store through p may access heap.1 after it was freed"},
		{Kind: "null-deref", Func: "main", Label: 9, Line: 5, Col: 3, Message: "load through q, which points to nothing here"},
		{Kind: "memory-leak", Func: "lose", Label: 4, Line: 2, Col: 7, Message: "heap allocation heap.2 is never freed and unreachable at exit"},
	}, nil)
}

func TestNewSortsAndFingerprints(t *testing.T) {
	fs := sample()
	if fs[0].Kind != "memory-leak" || fs[1].Kind != "null-deref" || fs[2].Kind != "use-after-free" {
		t.Fatalf("order = %v, want position order", fs)
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if f.Fingerprint == "" || len(f.Fingerprint) != 16 {
			t.Errorf("fingerprint %q, want 16 hex chars", f.Fingerprint)
		}
		if seen[f.Fingerprint] {
			t.Errorf("duplicate fingerprint %q", f.Fingerprint)
		}
		seen[f.Fingerprint] = true
	}
	// Stable across runs and independent of line shifts.
	again := New("prog.c", []Raw{
		{Kind: "null-deref", Func: "main", Label: 30, Line: 50, Col: 3, Message: "load through q, which points to nothing here"},
	}, nil)
	if again[0].Fingerprint != fs[1].Fingerprint {
		t.Errorf("fingerprint changed with line shift: %q vs %q", again[0].Fingerprint, fs[1].Fingerprint)
	}
}

func TestDuplicateFindingsGetDistinctFingerprints(t *testing.T) {
	raw := []Raw{
		{Kind: "null-deref", Func: "f", Message: "same"},
		{Kind: "null-deref", Func: "f", Message: "same"},
	}
	fs := New("a.c", raw, nil)
	if fs[0].Fingerprint == fs[1].Fingerprint {
		t.Errorf("identical raw findings share fingerprint %q", fs[0].Fingerprint)
	}
}

func TestSeverityDefaultsAndOverrides(t *testing.T) {
	fs := sample()
	for _, f := range fs {
		want := DefaultSeverity(f.Kind)
		if f.Severity != want {
			t.Errorf("%s severity = %s, want %s", f.Kind, f.Severity, want)
		}
	}
	over := New("p.c", []Raw{{Kind: "null-deref", Func: "m", Message: "x"}},
		map[string]Severity{"null-deref": Error})
	if over[0].Severity != Error {
		t.Errorf("override ignored: %s", over[0].Severity)
	}
	if DefaultSeverity("made-up-kind") != Warning {
		t.Errorf("unknown kind default = %s, want warning", DefaultSeverity("made-up-kind"))
	}
}

func TestRenderText(t *testing.T) {
	var buf bytes.Buffer
	RenderText(&buf, sample())
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %q", lines)
	}
	if lines[1] != "prog.c:5:3: warning: load through q, which points to nothing here [null-deref]" {
		t.Errorf("line = %q", lines[1])
	}
}

func TestLocationFallback(t *testing.T) {
	f := Finding{Kind: "null-deref", Func: "g", Label: 42, Message: "m", Severity: Warning}
	if got := f.Location(); got != "g (ℓ42)" {
		t.Errorf("Location() = %q", got)
	}
}

func TestSuppress(t *testing.T) {
	src := `int main() {
  int *q;
  *q = 1; // vsfs:ignore(null-deref)
  // vsfs:ignore
  *q = 2;
  *q = 3; // vsfs:ignore(use-after-free)
  return 0;
}`
	fs := New("p.c", []Raw{
		{Kind: "null-deref", Func: "main", Line: 3, Col: 3, Message: "a"},
		{Kind: "null-deref", Func: "main", Line: 5, Col: 3, Message: "b"},
		{Kind: "null-deref", Func: "main", Line: 6, Col: 3, Message: "c"},
	}, nil)
	kept, n := Suppress(src, fs)
	if n != 2 || len(kept) != 1 {
		t.Fatalf("kept = %v, suppressed = %d; want the line-6 finding only", kept, n)
	}
	if kept[0].Line != 6 {
		t.Errorf("kept = %v (wrong-kind directive must not suppress)", kept[0])
	}
}

func TestSuppressIgnoresPositionlessFindings(t *testing.T) {
	fs := []Finding{{Kind: "k", Func: "f", Message: "m"}}
	kept, n := Suppress("// vsfs:ignore\nx", fs)
	if n != 0 || len(kept) != 1 {
		t.Errorf("positionless finding suppressed")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	fs := sample()
	b := NewBaseline(fs[:2])
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kept, hidden := back.Filter(fs)
	if hidden != 2 || len(kept) != 1 {
		t.Fatalf("kept = %v, hidden = %d", kept, hidden)
	}
	if kept[0].Kind != "use-after-free" {
		t.Errorf("kept = %v", kept[0])
	}
}

func TestBaselineRejectsBadInput(t *testing.T) {
	if _, err := ReadBaseline(strings.NewReader("{")); err == nil {
		t.Error("truncated baseline accepted")
	}
	if _, err := ReadBaseline(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v", doc["version"])
	}
	runs := doc["runs"].([]any)
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "vsfs" {
		t.Errorf("driver = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != 3 {
		t.Errorf("rules = %d, want 3 (one per kind present)", len(rules))
	}
	results := run["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "memory-leak" {
		t.Errorf("ruleId = %v", first["ruleId"])
	}
	loc := first["locations"].([]any)[0].(map[string]any)
	phys := loc["physicalLocation"].(map[string]any)
	if phys["artifactLocation"].(map[string]any)["uri"] != "prog.c" {
		t.Errorf("uri = %v", phys)
	}
	region := phys["region"].(map[string]any)
	if region["startLine"].(float64) != 2 || region["startColumn"].(float64) != 7 {
		t.Errorf("region = %v", region)
	}
	if first["partialFingerprints"] == nil {
		t.Error("missing partialFingerprints")
	}
	// ruleIndex must point at the rule with the matching id.
	idx := int(first["ruleIndex"].(float64))
	if rules[idx].(map[string]any)["id"] != "memory-leak" {
		t.Errorf("ruleIndex %d mismatched", idx)
	}
}

func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run must still carry a results array: %s", buf.String())
	}
}
