package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Baseline records the fingerprints of accepted findings. Runs filter
// against it so only findings introduced since the baseline was taken
// are reported — the standard way to adopt a checker on a codebase
// with pre-existing issues.
type Baseline struct {
	Version      int      `json:"version"`
	Fingerprints []string `json:"fingerprints"`
}

// baselineVersion guards the file format.
const baselineVersion = 1

// NewBaseline captures the given findings as the accepted set.
func NewBaseline(findings []Finding) *Baseline {
	fps := make([]string, 0, len(findings))
	for _, f := range findings {
		fps = append(fps, f.Fingerprint)
	}
	sort.Strings(fps)
	return &Baseline{Version: baselineVersion, Fingerprints: fps}
}

// ReadBaseline parses a baseline written by Write.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("diag: malformed baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("diag: unsupported baseline version %d", b.Version)
	}
	return &b, nil
}

// Write serialises the baseline as deterministic, diff-friendly JSON.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Filter returns the findings not present in the baseline and how many
// were hidden by it.
func (b *Baseline) Filter(findings []Finding) ([]Finding, int) {
	known := make(map[string]bool, len(b.Fingerprints))
	for _, fp := range b.Fingerprints {
		known[fp] = true
	}
	kept := findings[:0:0]
	hidden := 0
	for _, f := range findings {
		if known[f.Fingerprint] {
			hidden++
			continue
		}
		kept = append(kept, f)
	}
	return kept, hidden
}
