package guard

import (
	"context"
	"errors"
	"testing"
	"time"

	"vsfs/internal/bitset"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	if b := NewBudget(0, 0, 0); b != nil {
		t.Fatalf("all-unbounded budget = %v, want nil", b)
	}
	var b *Budget
	if err := b.check("solve", 1<<40); err != nil {
		t.Fatalf("nil budget check: %v", err)
	}
	if b.StepsUsed() != 0 || b.BytesUsed() != 0 {
		t.Fatal("nil budget reports usage")
	}
}

func TestStepBudget(t *testing.T) {
	b := NewBudget(2048, 0, 0)
	ctx := WithBudget(context.Background(), b)
	if err := Tick(ctx, "andersen", 1024); err != nil {
		t.Fatalf("first tick: %v", err)
	}
	if err := Tick(ctx, "andersen", 1024); err != nil {
		t.Fatalf("second tick (at limit): %v", err)
	}
	err := Tick(ctx, "solve", 1024)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("third tick: %v, want *ErrBudgetExceeded", err)
	}
	if be.Phase != "solve" || be.Resource != ResourceSteps || be.Limit != 2048 {
		t.Fatalf("breach = %+v", be)
	}
	if got := b.StepsUsed(); got != 3072 {
		t.Fatalf("StepsUsed = %d, want 3072", got)
	}
}

func TestMemBudget(t *testing.T) {
	b := NewBudget(0, 64, 0)
	ctx := WithBudget(context.Background(), b)
	if err := Tick(ctx, "solve", 1); err != nil {
		t.Fatalf("tick before allocation: %v", err)
	}
	// Allocate well past 64 bytes of set storage.
	s := bitset.New()
	for i := uint32(0); i < 64; i++ {
		s.Set(i * 64) // one element each
	}
	err := Tick(ctx, "solve", 1)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != ResourceMem {
		t.Fatalf("tick after allocation: %v, want mem breach", err)
	}
	if b.BytesUsed() < 64*bitset.WordBytes {
		t.Fatalf("BytesUsed = %d, want >= %d", b.BytesUsed(), 64*bitset.WordBytes)
	}
}

func TestWallBudget(t *testing.T) {
	b := NewBudget(0, 0, time.Nanosecond)
	ctx := WithBudget(context.Background(), b)
	time.Sleep(time.Millisecond)
	err := Tick(ctx, "memssa", 1)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != ResourceWall {
		t.Fatalf("tick past deadline: %v, want wall breach", err)
	}
}

func TestTickHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Tick(ctx, "solve", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("tick on cancelled ctx: %v", err)
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	err := Recover(context.Background(), "svfg", "cafebabe", func() error {
		panic("boom")
	})
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PhaseError", err)
	}
	if pe.Phase != "svfg" || pe.ProgramHash != "cafebabe" || pe.Value != "boom" {
		t.Fatalf("PhaseError = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PhaseError carries no stack")
	}
}

func TestRecoverPassesThrough(t *testing.T) {
	want := errors.New("ordinary")
	if err := Recover(context.Background(), "parse", "", func() error { return want }); err != want {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if err := Recover(context.Background(), "parse", "", func() error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestFaultPanicAtStep(t *testing.T) {
	plan := NewFaultPlan(Fault{Phase: "solve", Step: 2, Kind: FaultPanic})
	ctx := WithFaults(context.Background(), plan)
	err := Recover(ctx, "solve", "h", func() error {
		for i := 0; i < 10; i++ {
			if err := Tick(ctx, "solve", 1); err != nil {
				return err
			}
		}
		return nil
	})
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PhaseError", err)
	}
	ip, ok := pe.Value.(*InjectedPanic)
	if !ok || ip.Phase != "solve" || ip.Step != 2 {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

func TestFaultOnlyTargetsItsPhase(t *testing.T) {
	plan := NewFaultPlan(Fault{Phase: "solve", Step: 0, Kind: FaultPanic})
	ctx := WithFaults(context.Background(), plan)
	err := Recover(ctx, "andersen", "h", func() error {
		return Tick(ctx, "andersen", 1)
	})
	if err != nil {
		t.Fatalf("fault for phase solve fired in andersen: %v", err)
	}
}

func TestFaultTimesBoundsPhaseEntries(t *testing.T) {
	plan := NewFaultPlan(Fault{Phase: "solve", Step: 0, Kind: FaultPanic, Times: 1})
	ctx := WithFaults(context.Background(), plan)
	run := func() error { return Recover(ctx, "solve", "h", func() error { return nil }) }
	if err := run(); err == nil {
		t.Fatal("first entry did not fault")
	}
	if err := run(); err != nil {
		t.Fatalf("second entry faulted after Times=1: %v", err)
	}
}

func TestFaultSlowBlowsStepBudget(t *testing.T) {
	plan := NewFaultPlan(Fault{Phase: "solve", Step: 1, Kind: FaultSlow})
	b := NewBudget(1<<30, 0, 0)
	ctx := WithBudget(WithFaults(context.Background(), plan), b)
	if err := Tick(ctx, "solve", 1); err != nil {
		t.Fatalf("tick 0: %v", err)
	}
	err := Tick(ctx, "solve", 1)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != ResourceSteps {
		t.Fatalf("tick 1 after slow fault: %v, want steps breach", err)
	}
}

func TestFaultAllocSpikeBlowsMemBudget(t *testing.T) {
	plan := NewFaultPlan(Fault{Phase: "memssa", Step: 0, Kind: FaultAllocSpike, Amount: 1 << 20})
	b := NewBudget(0, 1<<10, 0)
	ctx := WithBudget(WithFaults(context.Background(), plan), b)
	err := Tick(ctx, "memssa", 1)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != ResourceMem {
		t.Fatalf("tick after alloc spike: %v, want mem breach", err)
	}
}

func TestSeededPlanIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := SeededPlan(seed).Faults(), SeededPlan(seed).Faults()
		if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
			t.Fatalf("seed %d: plans differ: %+v vs %+v", seed, a, b)
		}
	}
}

func TestHashStable(t *testing.T) {
	a, b := Hash([]byte("x")), Hash([]byte("x"))
	if a != b || len(a) != 16 {
		t.Fatalf("Hash = %q / %q", a, b)
	}
	if Hash([]byte("y")) == a {
		t.Fatal("distinct inputs collide")
	}
}
