// Package guard is the resource-governance layer of the pipeline: it
// bounds how much a single analysis may cost (worklist steps, points-to
// storage, wall clock), converts panics in any pipeline phase into
// typed, loggable errors instead of process death, and provides
// deterministic fault injection so every one of those failure paths can
// be exercised end-to-end in tests.
//
// The pieces compose through context.Context: WithBudget installs a
// *Budget, WithFaults installs a *FaultPlan, and Tick — called at the
// solvers' existing cancelCheckInterval sites and at the build passes of
// memssa/svfg — polls cancellation, fires due faults, charges the
// budget, and returns a typed error the facade can act on. Recover
// wraps one pipeline phase and turns any panic (organic or injected)
// into a *PhaseError carrying the phase name, program hash, and stack.
//
// Budgets exist so a production deployment can bound cost and fall back
// to the cheaper (still sound) auxiliary Andersen result rather than
// fall over — the facade degrades on *ErrBudgetExceeded from any phase
// after Andersen's has completed.
package guard

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"vsfs/internal/bitset"
)

// Resource names the budget dimension that was exhausted.
type Resource string

// The budgeted resources.
const (
	// ResourceSteps is worklist/build iterations across all phases.
	ResourceSteps Resource = "steps"
	// ResourceMem is bytes of points-to storage allocated by the bitset
	// layer since the budget was armed.
	ResourceMem Resource = "mem"
	// ResourceWall is elapsed wall clock since the budget was armed.
	ResourceWall Resource = "wall"
)

// ErrBudgetExceeded reports that a phase blew through one dimension of
// its Budget. The facade treats it as the signal to degrade to the
// auxiliary result when one exists; everything else should treat it as
// a retryable resource-exhaustion error, not a correctness failure.
type ErrBudgetExceeded struct {
	// Phase is the pipeline phase that hit the limit (parse, andersen,
	// memssa, svfg, solve).
	Phase string
	// Resource is the exhausted dimension.
	Resource Resource
	// Limit is the configured bound in the resource's unit (steps,
	// bytes, or nanoseconds).
	Limit int64
	// Shard is the parallel-solver shard whose charge tripped the
	// limit, or -1 when the breach was not attributed to a shard
	// (sequential solves, build passes, unsharded worker chunks). The
	// budget itself is shared — shards charge one envelope and the
	// charges sum — so Shard is provenance, not a per-shard limit.
	Shard int
}

func (e *ErrBudgetExceeded) Error() string {
	if e.Shard >= 0 {
		return fmt.Sprintf("guard: %s budget exceeded in %s phase (limit %d, shard %d)", e.Resource, e.Phase, e.Limit, e.Shard)
	}
	return fmt.Sprintf("guard: %s budget exceeded in %s phase (limit %d)", e.Resource, e.Phase, e.Limit)
}

// Budget is one analysis run's resource envelope. Create with
// NewBudget, install with WithBudget, and the pipeline's Tick sites
// charge and check it. A nil *Budget is valid everywhere and means
// "unbounded". A Budget must not be reused across runs: the memory
// baseline is recorded once, at creation.
type Budget struct {
	maxSteps int64
	maxBytes int64
	maxWall  time.Duration

	steps      atomic.Int64
	extraBytes atomic.Int64 // injected by FaultAllocSpike
	baseWords  int64
	armedAt    time.Time
}

// NewBudget returns an armed budget. Zero (or negative) limits mean
// that dimension is unbounded; a nil return for an all-unbounded
// request keeps the fully-unlimited path free.
func NewBudget(maxSteps, maxBytes int64, maxWall time.Duration) *Budget {
	if maxSteps <= 0 && maxBytes <= 0 && maxWall <= 0 {
		return nil
	}
	return &Budget{
		maxSteps:  maxSteps,
		maxBytes:  maxBytes,
		maxWall:   maxWall,
		baseWords: bitset.AllocatedWords(),
		armedAt:   time.Now(),
	}
}

// Limits returns the configured ceilings (zero = unbounded, matching
// NewBudget's convention). A degradation rung uses it to re-arm a
// fresh budget with the same envelope after the original is exhausted.
func (b *Budget) Limits() (maxSteps, maxBytes int64, maxWall time.Duration) {
	if b == nil {
		return 0, 0, 0
	}
	return b.maxSteps, b.maxBytes, b.maxWall
}

// StepsUsed returns the worklist/build steps charged so far.
func (b *Budget) StepsUsed() int64 {
	if b == nil {
		return 0
	}
	return b.steps.Load()
}

// BytesUsed returns the points-to storage growth observed so far.
// Accounting is process-global at the bitset layer, so concurrent
// solves see each other's allocations; under a shared budget pool that
// conservatism is intentional — the pool protects the process.
func (b *Budget) BytesUsed() int64 {
	if b == nil {
		return 0
	}
	return (bitset.AllocatedWords()-b.baseWords)*bitset.WordBytes + b.extraBytes.Load()
}

// addSteps charges n steps and reports whether the step limit is now
// exceeded.
func (b *Budget) addSteps(n int64) bool {
	return b.steps.Add(n) > b.maxSteps && b.maxSteps > 0
}

// check charges n steps against the budget and verifies every
// dimension, attributing any breach to phase.
func (b *Budget) check(phase string, n int64) error {
	if b == nil {
		return nil
	}
	if b.addSteps(n) {
		return &ErrBudgetExceeded{Phase: phase, Resource: ResourceSteps, Limit: b.maxSteps, Shard: -1}
	}
	if b.maxBytes > 0 && b.BytesUsed() > b.maxBytes {
		return &ErrBudgetExceeded{Phase: phase, Resource: ResourceMem, Limit: b.maxBytes, Shard: -1}
	}
	if b.maxWall > 0 && time.Since(b.armedAt) > b.maxWall {
		return &ErrBudgetExceeded{Phase: phase, Resource: ResourceWall, Limit: int64(b.maxWall), Shard: -1}
	}
	return nil
}

type budgetKey struct{}

// WithBudget installs b on the context; the pipeline's Tick sites will
// charge and enforce it. Installing nil is a no-op.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom returns the context's budget, or nil.
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// Tick is the per-checkpoint governance poll, called every
// cancelCheckInterval iterations of each fixpoint loop and between the
// build passes of the memssa/svfg phases. In order it (1) honours
// context cancellation, (2) fires any due injected fault for phase —
// which may panic or charge the budget — and (3) charges n steps
// against the budget and enforces every limit. It returns nil when the
// run may continue.
func Tick(ctx context.Context, phase string, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if p := FaultsFrom(ctx); p != nil {
		p.checkpoint(ctx, phase)
	}
	if b := BudgetFrom(ctx); b != nil {
		return b.check(phase, n)
	}
	return nil
}

// TickShard is Tick for the parallel solver's shard-owned work: it
// charges the same shared budget (per-shard charges sum — the
// conservation rule of DESIGN.md §13) but stamps any budget breach with
// the charging shard so degradation provenance can name it. Safe to
// call concurrently from shard workers: the budget counters are atomic
// and the fault plan serialises its own checkpoints.
func TickShard(ctx context.Context, phase string, shard int, n int64) error {
	err := Tick(ctx, phase, n)
	var be *ErrBudgetExceeded
	if errors.As(err, &be) && shard >= 0 {
		be.Shard = shard
	}
	return err
}

// PhaseError is a pipeline-phase panic converted into a value: the
// worker that hit it survives, the daemon can answer with a structured
// 500, and the circuit breaker can key off the program hash.
type PhaseError struct {
	// Phase is the pipeline phase that panicked.
	Phase string
	// ProgramHash identifies the input (Hash of the source), "" when
	// the caller analysed a prebuilt program.
	ProgramHash string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PhaseError) Error() string {
	if e.ProgramHash == "" {
		return fmt.Sprintf("guard: panic in %s phase: %v", e.Phase, e.Value)
	}
	return fmt.Sprintf("guard: panic in %s phase (program %s): %v", e.Phase, e.ProgramHash, e.Value)
}

// Recover runs one pipeline phase with panic isolation: a panic inside
// fn (organic or fault-injected) becomes a *PhaseError instead of
// unwinding the goroutine. It also fires phase-entry faults, so phases
// without an internal Tick loop (parse) are still injectable.
func Recover(ctx context.Context, phase, programHash string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PhaseError{Phase: phase, ProgramHash: programHash, Value: r, Stack: debug.Stack()}
		}
	}()
	if p := FaultsFrom(ctx); p != nil {
		p.enterPhase(phase)
		p.checkpoint(ctx, phase)
	}
	return fn()
}

// Hash returns the short content hash used to identify a program in
// PhaseErrors, circuit-breaker keys, and logs: the first 16 hex digits
// of the SHA-256 of src.
func Hash(src []byte) string {
	sum := sha256.Sum256(src)
	return hex.EncodeToString(sum[:8])
}
