package guard

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
)

// FaultKind selects what an injected fault does when it fires.
type FaultKind int

const (
	// FaultPanic panics with an *InjectedPanic value; Recover converts
	// it into a *PhaseError like any organic panic.
	FaultPanic FaultKind = iota
	// FaultSlow charges Amount extra steps to the context's budget,
	// deterministically simulating a pathological slowdown without
	// touching the wall clock.
	FaultSlow
	// FaultAllocSpike charges Amount extra bytes to the context's
	// budget, deterministically simulating a memory blow-up.
	FaultAllocSpike
)

func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultSlow:
		return "slow"
	case FaultAllocSpike:
		return "alloc-spike"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// defaultFaultAmount is the budget charge of a Slow or AllocSpike fault
// whose Amount is zero: large enough to blow any realistic budget at
// the next check.
const defaultFaultAmount = int64(1) << 40

// Fault is one planned injection: at the Step-th governance checkpoint
// of the named Phase, do Kind.
type Fault struct {
	// Phase is the pipeline phase to fault (parse, andersen, memssa,
	// svfg, solve). Checkpoint 0 of every phase fires at phase entry,
	// so even loop-free phases are injectable.
	Phase string
	// Step is the checkpoint index within the phase at which to fire.
	Step int
	// Kind is what to do.
	Kind FaultKind
	// Amount is the budget charge for Slow/AllocSpike; 0 means "huge".
	Amount int64
	// Times bounds how many phase entries fire this fault; 0 means
	// every one (the shape a circuit-breaker test wants).
	Times int
}

// InjectedPanic is the value a FaultPanic panics with, so tests and
// logs can tell injected faults from organic bugs.
type InjectedPanic struct {
	Phase string
	Step  int
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("injected panic at %s checkpoint %d", p.Phase, p.Step)
}

// FaultPlan schedules deterministic faults across pipeline phases. It
// counts governance checkpoints per phase — no wall clock, no global
// randomness — so a given (plan, program) pair fails identically on
// every run. A plan is safe for concurrent use, but checkpoint counting
// is per-plan: for exact step targeting run solves serially, or give
// each solve its own plan.
//
// The zero value is an empty plan that never fires.
type FaultPlan struct {
	mu     sync.Mutex
	faults []Fault
	count  map[string]int // checkpoints seen in the current phase entry
	fired  []int          // phase entries during which each fault fired
}

// NewFaultPlan returns a plan that injects exactly the given faults.
func NewFaultPlan(faults ...Fault) *FaultPlan {
	return &FaultPlan{faults: faults, count: make(map[string]int), fired: make([]int, len(faults))}
}

// PipelinePhases lists the five facade phases in execution order — the
// namespace Fault.Phase draws from.
var PipelinePhases = []string{"parse", "andersen", "memssa", "svfg", "solve"}

// SeededPlan derives one pseudo-random fault from seed: a phase, an
// early checkpoint, and a kind. Same seed, same plan — the property the
// fuzz harness's -faults mode relies on to reproduce a failure.
func SeededPlan(seed int64) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	f := Fault{
		Phase: PipelinePhases[rng.Intn(len(PipelinePhases))],
		Step:  rng.Intn(4),
		Kind:  FaultKind(rng.Intn(3)),
	}
	return NewFaultPlan(f)
}

// Faults returns a copy of the planned faults.
func (p *FaultPlan) Faults() []Fault {
	if p == nil {
		return nil
	}
	return append([]Fault(nil), p.faults...)
}

// enterPhase resets phase's checkpoint counter; called by Recover at
// phase entry so Step indexes are per-phase-run, not cumulative.
func (p *FaultPlan) enterPhase(phase string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count == nil {
		p.count = make(map[string]int)
	}
	p.count[phase] = 0
	for i := range p.faults {
		if p.faults[i].Phase == phase {
			p.ensureFired()
			p.fired[i]++ // counts phase entries; decremented back if unfired below Step
		}
	}
}

func (p *FaultPlan) ensureFired() {
	if len(p.fired) < len(p.faults) {
		p.fired = append(p.fired, make([]int, len(p.faults)-len(p.fired))...)
	}
}

// checkpoint advances phase's counter and fires any due fault. A panic
// fault does not return.
func (p *FaultPlan) checkpoint(ctx context.Context, phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.count == nil {
		p.count = make(map[string]int)
	}
	step := p.count[phase]
	p.count[phase] = step + 1
	var due []Fault
	p.ensureFired()
	for i, f := range p.faults {
		if f.Phase != phase || f.Step != step {
			continue
		}
		if f.Times > 0 && p.fired[i] > f.Times {
			continue
		}
		due = append(due, f)
	}
	p.mu.Unlock()

	for _, f := range due {
		amount := f.Amount
		if amount == 0 {
			amount = defaultFaultAmount
		}
		switch f.Kind {
		case FaultPanic:
			panic(&InjectedPanic{Phase: phase, Step: step})
		case FaultSlow:
			if b := BudgetFrom(ctx); b != nil {
				b.steps.Add(amount)
			}
		case FaultAllocSpike:
			if b := BudgetFrom(ctx); b != nil {
				b.extraBytes.Add(amount)
			}
		}
	}
}

type faultKey struct{}

// WithFaults installs a fault plan on the context. Installing nil is a
// no-op.
func WithFaults(ctx context.Context, p *FaultPlan) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, faultKey{}, p)
}

// FaultsFrom returns the context's fault plan, or nil.
func FaultsFrom(ctx context.Context) *FaultPlan {
	p, _ := ctx.Value(faultKey{}).(*FaultPlan)
	return p
}
