package fsicfg

import (
	"fmt"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/memssa"
	"vsfs/internal/sfs"
	"vsfs/internal/svfg"
	"vsfs/internal/workload"
)

func pipeline(t *testing.T, src string) (*ir.Program, *svfg.Graph, *Result) {
	t.Helper()
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	return prog, g, Solve(g)
}

func varByName(t *testing.T, prog *ir.Program, name string) ir.ID {
	t.Helper()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsPointer(id) && prog.Value(id).Name == name {
			return id
		}
	}
	t.Fatalf("no pointer %q", name)
	return ir.None
}

func wantPts(t *testing.T, prog *ir.Program, r *Result, v string, want ...string) {
	t.Helper()
	got := map[string]bool{}
	r.PointsTo(varByName(t, prog, v)).ForEach(func(o uint32) {
		got[prog.NameOf(ir.ID(o))] = true
	})
	if len(got) != len(want) {
		t.Errorf("pts(%s) = %v, want %v", v, got, want)
		return
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("pts(%s) = %v, want %v", v, got, want)
			return
		}
	}
}

func TestStrongUpdate(t *testing.T) {
	prog, _, r := pipeline(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  y = alloc c 0
  store p, x
  store p, y
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "c")
}

func TestBranchMergeAndCall(t *testing.T) {
	prog, _, r := pipeline(t, `
func setter(q, val) {
entry:
  store q, val
  ret
}
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  y = alloc c 0
  br l, rr
l:
  store p, x
  jmp j
rr:
  call setter(p, y)
  jmp j
j:
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "b", "c")
}

func TestIndirectCall(t *testing.T) {
	prog, _, r := pipeline(t, `
func setter(q, val) {
entry:
  store q, val
  ret
}
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  fp = funcaddr setter
  calli fp(p, x)
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "b")
	var call *ir.Instr
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.IsIndirectCall() {
			call = in
		}
	})
	if callees := r.CalleesOf(call); len(callees) != 1 || callees[0].Name != "setter" {
		t.Errorf("CalleesOf = %v", callees)
	}
}

// TestQuickOrderingChain checks the precision chain on random programs:
// fsicfg ⊆ sfs ≡ vsfs ⊆ andersen for every top-level pointer.
func TestQuickOrderingChain(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := workload.DefaultRandomConfig()
			cfg.InstrsPerFunc = 25 // the oracle is quadratic-ish; keep it small
			cfg.Funcs = 4
			prog := workload.Random(seed, cfg)
			aux := andersen.Analyze(prog)
			mssa := memssa.Build(prog, aux)
			g := svfg.Build(prog, aux, mssa)

			oracle := Solve(g.Clone())
			sfsRes := sfs.Solve(g.Clone())
			vsfsRes := core.Solve(g.Clone())

			for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
				if !prog.IsPointer(v) {
					continue
				}
				o := oracle.PointsTo(v)
				sf := sfsRes.PointsTo(v)
				vf := vsfsRes.PointsTo(v)
				an := aux.PointsTo(v)
				if !o.SubsetOf(sf) {
					t.Fatalf("pts_icfg(%s) = %v ⊄ pts_sfs = %v", prog.NameOf(v), o, sf)
				}
				if !sf.Equal(vf) {
					t.Fatalf("pts_sfs(%s) = %v ≠ pts_vsfs = %v", prog.NameOf(v), sf, vf)
				}
				if !sf.SubsetOf(an) {
					t.Fatalf("pts_sfs(%s) = %v ⊄ pts_aux = %v", prog.NameOf(v), sf, an)
				}
			}
		})
	}
}

func TestStatsPopulated(t *testing.T) {
	_, _, r := pipeline(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  store p, x
  v = load p
  ret
}
`)
	if r.Stats.NodesProcessed == 0 || r.Stats.EnvSets == 0 {
		t.Errorf("stats empty: %+v", r.Stats)
	}
}
