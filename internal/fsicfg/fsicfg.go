// Package fsicfg implements the traditional iterative data-flow
// formulation of flow-sensitive points-to analysis on the
// interprocedural control-flow graph (equations (4)–(5) of the paper).
// It maintains an IN/OUT environment (object → points-to set) at every
// instruction and propagates whole environments across CFG edges — the
// expensive formulation the staged analyses avoid.
//
// Its role in this repository is as a correctness oracle: on programs in
// partial SSA it computes results at least as precise as SFS/VSFS
// (tested as the subset ordering fsicfg ⊆ sfs ≡ vsfs ⊆ andersen), using
// the same strong-update rule and the same global treatment of top-level
// pointers.
package fsicfg

import (
	"vsfs/internal/bitset"
	"vsfs/internal/cfg"
	"vsfs/internal/ir"
	"vsfs/internal/svfg"
)

// Stats counts solver effort.
type Stats struct {
	NodesProcessed int
	Propagations   int
	EnvSets        int // (node, object) sets stored in IN/OUT at fixpoint
	EnvWords       int
}

// Result holds the oracle's outcome.
type Result struct {
	g *svfg.Graph

	pt  []*bitset.Sparse
	in  []map[ir.ID]*bitset.Sparse
	out []map[ir.ID]*bitset.Sparse

	callees map[*ir.Instr]map[*ir.Function]bool

	Stats Stats
}

var empty = bitset.New()

// PointsTo returns the points-to set of a top-level pointer.
func (r *Result) PointsTo(v ir.ID) *bitset.Sparse {
	if int(v) < len(r.pt) && r.pt[v] != nil {
		return r.pt[v]
	}
	return empty
}

// CalleesOf returns the resolved callees of a call instruction.
func (r *Result) CalleesOf(call *ir.Instr) []*ir.Function {
	m := r.callees[call]
	out := make([]*ir.Function, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Solve runs the ICFG analysis to fixpoint. The graph supplies the
// program, the singleton classification and the top-level use index; the
// value-flow edges themselves are not used.
func Solve(g *svfg.Graph) *Result {
	n := len(g.Prog.Instrs)
	s := &state{
		Result: &Result{
			g:       g,
			pt:      make([]*bitset.Sparse, g.Prog.NumValues()+1),
			in:      make([]map[ir.ID]*bitset.Sparse, n),
			out:     make([]map[ir.ID]*bitset.Sparse, n),
			callees: make(map[*ir.Instr]map[*ir.Function]bool),
		},
		preds:     make([][]uint32, n),
		succs:     make([][]uint32, n),
		reachable: make([]bool, n),
		fsCallers: make(map[*ir.Function][]uint32),
	}
	s.buildICFG()
	s.run()
	s.collectStats()
	return s.Result
}

type state struct {
	*Result

	preds, succs [][]uint32
	reachable    []bool

	fsCallers map[*ir.Function][]uint32

	work worklist
}

type worklist struct {
	queue []uint32
	in    bitset.Sparse
}

func (w *worklist) push(n uint32) {
	if w.in.Set(n) {
		w.queue = append(w.queue, n)
	}
}

func (w *worklist) pop() (uint32, bool) {
	if len(w.queue) == 0 {
		return 0, false
	}
	n := w.queue[0]
	w.queue = w.queue[1:]
	w.in.Clear(n)
	return n, true
}

func (s *state) addEdge(from, to uint32) {
	for _, t := range s.succs[from] {
		if t == to {
			return
		}
	}
	s.succs[from] = append(s.succs[from], to)
	s.preds[to] = append(s.preds[to], from)
}

// buildICFG wires intraprocedural sequencing over reachable blocks.
// Interprocedural edges are added during solving as callees resolve.
func (s *state) buildICFG() {
	for _, f := range s.g.Prog.Funcs {
		info := cfg.Compute(f)
		for _, blk := range f.Blocks {
			if !info.Reachable(blk) {
				continue
			}
			for _, in := range blk.Instrs {
				s.reachable[in.Label] = true
			}
			for i := 0; i+1 < len(blk.Instrs); i++ {
				s.addEdge(blk.Instrs[i].Label, blk.Instrs[i+1].Label)
			}
			if len(blk.Instrs) == 0 {
				continue
			}
			last := blk.Instrs[len(blk.Instrs)-1].Label
			for _, succ := range blk.Succs {
				if info.Reachable(succ) && len(succ.Instrs) > 0 {
					s.addEdge(last, succ.Instrs[0].Label)
				}
			}
		}
	}
}

// afterCall returns the ICFG node that receives control when a callee
// returns: the instruction after the call (its CallRet companion when
// present), or the successors' first instructions if the call ends its
// block. Returned as a list to cover the block-末 case.
func (s *state) afterCall(call *ir.Instr) []uint32 {
	blk := call.Block
	for i, in := range blk.Instrs {
		if in == call {
			if i+1 < len(blk.Instrs) {
				return []uint32{blk.Instrs[i+1].Label}
			}
			var out []uint32
			for _, succ := range blk.Succs {
				if len(succ.Instrs) > 0 {
					out = append(out, succ.Instrs[0].Label)
				}
			}
			return out
		}
	}
	return nil
}

func (s *state) ptOf(v ir.ID) *bitset.Sparse {
	if int(v) >= len(s.pt) {
		grown := make([]*bitset.Sparse, s.g.Prog.NumValues()+1)
		copy(grown, s.pt)
		s.pt = grown
	}
	if s.pt[v] == nil {
		s.pt[v] = bitset.New()
	}
	return s.pt[v]
}

func (s *state) addPt(v ir.ID, src *bitset.Sparse) {
	s.Stats.Propagations++
	if s.ptOf(v).UnionWith(src) {
		for _, u := range s.g.UsersOf(v) {
			if s.reachable[u] {
				s.work.push(u)
			}
		}
	}
}

func envGet(m map[ir.ID]*bitset.Sparse, o ir.ID) *bitset.Sparse {
	if set := m[o]; set != nil {
		return set
	}
	return empty
}

func (s *state) run() {
	prog := s.g.Prog
	for l := 1; l < len(prog.Instrs); l++ {
		if s.reachable[l] {
			s.work.push(uint32(l))
		}
	}
	for {
		l, ok := s.work.pop()
		if !ok {
			return
		}
		s.Stats.NodesProcessed++
		s.process(prog.Instrs[l])
	}
}

func (s *state) process(in *ir.Instr) {
	l := in.Label

	// IN(ℓ) = ∪ OUT(pred) — equation (4).
	if s.in[l] == nil {
		s.in[l] = make(map[ir.ID]*bitset.Sparse)
	}
	inEnv := s.in[l]
	for _, p := range s.preds[l] {
		for o, set := range s.out[p] {
			if set.IsEmpty() {
				continue
			}
			cur := inEnv[o]
			if cur == nil {
				cur = bitset.New()
				inEnv[o] = cur
			}
			s.Stats.Propagations++
			cur.UnionWith(set)
		}
	}

	// Top-level effects.
	switch in.Op {
	case ir.Alloc:
		s.Stats.Propagations++
		if s.ptOf(in.Def).Set(uint32(in.Obj)) {
			for _, u := range s.g.UsersOf(in.Def) {
				if s.reachable[u] {
					s.work.push(u)
				}
			}
		}
	case ir.Copy:
		s.addPt(in.Def, s.ptOf(in.Uses[0]))
	case ir.Phi:
		for _, u := range in.Uses {
			s.addPt(in.Def, s.ptOf(u))
		}
	case ir.Field:
		prog := s.g.Prog
		add := bitset.New()
		s.ptOf(in.Uses[0]).ForEach(func(o uint32) {
			if prog.Value(ir.ID(o)).ObjKind == ir.FuncObj {
				return
			}
			add.Set(uint32(prog.FieldObj(ir.ID(o), in.Off)))
		})
		s.addPt(in.Def, add)
	case ir.Load:
		s.ptOf(in.Uses[0]).Clone().ForEach(func(o uint32) {
			s.addPt(in.Def, envGet(inEnv, ir.ID(o)))
		})
	case ir.Call:
		s.processCall(in)
	case ir.FunExit:
		for _, c := range s.fsCallers[in.Parent] {
			s.work.push(c)
		}
	}

	// OUT(ℓ) = Gen ∪ (IN − Kill) — equation (5).
	if s.out[l] == nil {
		s.out[l] = make(map[ir.ID]*bitset.Sparse)
	}
	outEnv := s.out[l]
	changed := false

	if in.Op == ir.Store {
		p, q := in.Uses[0], in.Uses[1]
		ptp := s.ptOf(p)
		ptq := s.ptOf(q)
		// Static strong-update predicate, matching sfs and core.
		strong := false
		if single, ok := s.g.Aux.PointsTo(p).Single(); ok && s.g.IsSingleton(ir.ID(single)) {
			strong = true
		}
		for o, set := range inEnv {
			if strong && s.g.Aux.PointsTo(p).Has(uint32(o)) {
				continue // killed; gen below
			}
			cur := outEnv[o]
			if cur == nil {
				cur = bitset.New()
				outEnv[o] = cur
			}
			s.Stats.Propagations++
			if cur.UnionWith(set) {
				changed = true
			}
		}
		gen := ptp
		if strong {
			gen = s.g.Aux.PointsTo(p) // the single always-written object
		}
		gen.ForEach(func(o uint32) {
			cur := outEnv[ir.ID(o)]
			if cur == nil {
				cur = bitset.New()
				outEnv[ir.ID(o)] = cur
			}
			s.Stats.Propagations++
			if cur.UnionWith(ptq) {
				changed = true
			}
		})
	} else {
		for o, set := range inEnv {
			cur := outEnv[o]
			if cur == nil {
				cur = bitset.New()
				outEnv[o] = cur
			}
			s.Stats.Propagations++
			if cur.UnionWith(set) {
				changed = true
			}
		}
	}

	if changed {
		for _, succ := range s.succs[l] {
			s.work.push(succ)
		}
	}
}

// processCall resolves callees (on the fly for indirect calls), wires
// top-level flow, and installs the interprocedural ICFG edges
// call → callee-entry and callee-exit → after-call.
func (s *state) processCall(in *ir.Instr) {
	resolve := func(callee *ir.Function) {
		m := s.callees[in]
		if m == nil {
			m = make(map[*ir.Function]bool)
			s.callees[in] = m
		}
		if !m[callee] {
			m[callee] = true
			s.fsCallers[callee] = append(s.fsCallers[callee], in.Label)
			entry := callee.EntryInstr.Label
			exit := callee.ExitInstr.Label
			s.reachable[entry] = true
			s.addEdge(in.Label, entry)
			for _, after := range s.afterCall(in) {
				s.addEdge(exit, after)
				// The exit's OUT may already be stable; make the new
				// successor pull it.
				s.work.push(after)
			}
			s.work.push(entry)
		}
		args := in.CallArgs()
		for i, a := range args {
			if i >= len(callee.Params) {
				break
			}
			s.addPt(callee.Params[i], s.ptOf(a))
		}
		if in.Def != ir.None && callee.Ret != ir.None {
			s.addPt(in.Def, s.ptOf(callee.Ret))
		}
	}

	if in.Callee != nil {
		resolve(in.Callee)
		return
	}
	prog := s.g.Prog
	s.ptOf(in.CalleePtr()).Clone().ForEach(func(o uint32) {
		if v := prog.Value(ir.ID(o)); v.ObjKind == ir.FuncObj {
			resolve(v.Func)
		}
	})
}

func (s *state) collectStats() {
	count := func(envs []map[ir.ID]*bitset.Sparse) {
		for _, m := range envs {
			for _, set := range m {
				s.Stats.EnvSets++
				s.Stats.EnvWords += set.Words()
			}
		}
	}
	count(s.in)
	count(s.out)
}
