package cfgfree

import (
	"fmt"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/ir"
)

// verifyMaxPasses bounds the reference evaluator's chaotic iteration; a
// monotone system over a finite lattice converges in far fewer passes,
// so hitting the cap means the evaluator itself is broken.
const verifyMaxPasses = 10000

// Verify replays the constraint system with an independent evaluator
// and reports the first divergence from res, or nil when the solved
// result is exactly reproducible. The evaluator shares only the window
// table (the specification of which accesses are flow-sensitive); the
// fixpoint engine is deliberately naive — chaotic iteration over the
// instruction list with direct semantics, no worklist, no difference
// propagation, no copy edges — so a bug in the solver's incremental
// machinery cannot hide in a shared code path. The oracle runs this as
// the cfgfree-replay invariant.
func Verify(prog *ir.Program, aux *andersen.Result, res *Result) error {
	windows := computeWindows(prog, aux)

	pts := make([]*bitset.Sparse, prog.NumValues())
	at := func(id ir.ID) *bitset.Sparse {
		//vsfs:lint-ignore guardtick oracle-only naive replay runs outside guard budgets by design; growth is bounded by the ID space
		for int(id) >= len(pts) {
			pts = append(pts, nil)
		}
		if pts[id] == nil {
			pts[id] = bitset.New()
		}
		return pts[id]
	}
	callees := make(map[*ir.Instr]map[*ir.Function]bool)
	wire := func(call *ir.Instr, callee *ir.Function) bool {
		if callees[call] == nil {
			callees[call] = make(map[*ir.Function]bool)
		}
		callees[call][callee] = true
		changed := false
		args := call.CallArgs()
		for i, arg := range args {
			if i >= len(callee.Params) {
				break
			}
			if at(callee.Params[i]).UnionWith(at(arg)) {
				changed = true
			}
		}
		if call.Def != ir.None && callee.Ret != ir.None {
			if at(call.Def).UnionWith(at(callee.Ret)) {
				changed = true
			}
		}
		return changed
	}

	// objsOf snapshots a base pointer's objects so applying semantics
	// (which may grow the value space via FieldObj or union into the
	// iterated set) never mutates a set mid-iteration.
	objsOf := func(base ir.ID) []uint32 {
		return at(base).AppendTo(nil)
	}

	pass := 0
	for changed := true; changed; pass++ {
		if pass >= verifyMaxPasses {
			return fmt.Errorf("cfgfree verify: no fixpoint after %d passes", verifyMaxPasses)
		}
		changed = false
		for _, f := range prog.Funcs {
			f.ForEachInstr(func(in *ir.Instr) {
				switch in.Op {
				case ir.Alloc:
					if at(in.Def).Set(uint32(in.Obj)) {
						changed = true
					}
				case ir.Copy:
					if at(in.Def).UnionWith(at(in.Uses[0])) {
						changed = true
					}
				case ir.Phi:
					for _, u := range in.Uses {
						if at(in.Def).UnionWith(at(u)) {
							changed = true
						}
					}
				case ir.Field:
					for _, o := range objsOf(in.Uses[0]) {
						if prog.Value(ir.ID(o)).ObjKind == ir.FuncObj {
							continue
						}
						fo := prog.FieldObj(ir.ID(o), in.Off)
						if at(in.Def).Set(uint32(fo)) {
							changed = true
						}
					}
				case ir.Load:
					for _, o := range objsOf(in.Uses[0]) {
						if vals, ok := windows[accessKey{in: in, o: ir.ID(o)}]; ok {
							for _, val := range vals {
								if at(in.Def).UnionWith(at(val)) {
									changed = true
								}
							}
							continue
						}
						if at(in.Def).UnionWith(at(ir.ID(o))) {
							changed = true
						}
					}
				case ir.Store:
					for _, o := range objsOf(in.Uses[0]) {
						if at(ir.ID(o)).UnionWith(at(in.Uses[1])) {
							changed = true
						}
					}
				case ir.Call:
					if in.Callee != nil {
						if wire(in, in.Callee) {
							changed = true
						}
						break
					}
					for _, o := range objsOf(in.CalleePtr()) {
						v := prog.Value(ir.ID(o))
						if v.ObjKind != ir.FuncObj {
							continue
						}
						if wire(in, v.Func) {
							changed = true
						}
					}
				}
			})
		}
	}

	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		want := at(id)
		got := res.PointsTo(id)
		if !want.Equal(got) {
			return fmt.Errorf("cfgfree verify: pts(%s) = %s, reference says %s",
				prog.NameOf(id), got, want)
		}
	}
	for call, want := range callees {
		got := res.CalleesOf(call)
		if len(got) != len(want) {
			return fmt.Errorf("cfgfree verify: call @%d resolves %d callees, reference says %d",
				call.Label, len(got), len(want))
		}
		for _, fn := range got {
			if !want[fn] {
				return fmt.Errorf("cfgfree verify: call @%d resolves %s, reference does not",
					call.Label, fn.Name)
			}
		}
	}
	var extra error
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			// The reference map has no entry for never-resolved calls,
			// so the loop above cannot catch spurious solver callees.
			if extra == nil && in.Op == ir.Call && callees[in] == nil && len(res.CalleesOf(in)) != 0 {
				extra = fmt.Errorf("cfgfree verify: call @%d resolves callees the reference does not", in.Label)
			}
		})
	}
	return extra
}
