package cfgfree_test

import (
	"os"
	"path/filepath"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/cfgfree"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/lang"
)

// solveBoth builds the auxiliary result and the CFG-free result for one
// program.
func solveBoth(t *testing.T, prog *ir.Program) (*andersen.Result, *cfgfree.Result) {
	t.Helper()
	aux := andersen.Analyze(prog)
	return aux, cfgfree.Solve(prog, aux)
}

// checkInvariants asserts the portable per-program contract: the result
// replays exactly on the independent reference evaluator, is bracketed
// above by the auxiliary analysis, and re-solving is deterministic.
func checkInvariants(t *testing.T, prog *ir.Program, aux *andersen.Result, res *cfgfree.Result) {
	t.Helper()
	if err := cfgfree.Verify(prog, aux, res); err != nil {
		t.Error(err)
	}
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if !res.PointsTo(id).SubsetOf(aux.PointsTo(id)) {
			t.Errorf("pts(%s): cfgfree %s ⊄ aux %s", prog.NameOf(id), res.PointsTo(id), aux.PointsTo(id))
		}
	}
	again := cfgfree.Solve(prog, aux)
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if !res.PointsTo(id).Equal(again.PointsTo(id)) {
			t.Errorf("pts(%s) not deterministic: %s vs %s", prog.NameOf(id), res.PointsTo(id), again.PointsTo(id))
		}
	}
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call {
				return
			}
			a, b := res.CalleesOf(in), again.CalleesOf(in)
			if len(a) != len(b) {
				t.Errorf("callees @%d not deterministic: %v vs %v", in.Label, a, b)
				return
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("callees @%d not deterministic: %v vs %v", in.Label, a, b)
					return
				}
			}
		})
	}
}

func TestChecksCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "checks", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checks corpus: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := lang.Compile(string(src))
			if err != nil {
				t.Fatal(err)
			}
			aux, res := solveBoth(t, prog)
			checkInvariants(t, prog, aux, res)
		})
	}
}

func TestRegressionCorpus(t *testing.T) {
	var files []string
	for _, pat := range []string{
		filepath.Join("..", "oracle", "testdata", "regressions", "*.ir"),
		filepath.Join("..", "..", "testdata", "checks", "*.ir"),
	} {
		fs, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, fs...)
	}
	if len(files) == 0 {
		t.Fatal("no regression corpus")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := irparse.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			aux, res := solveBoth(t, prog)
			checkInvariants(t, prog, aux, res)
		})
	}
}

// idOf resolves a source-level name to its value ID.
func idOf(t *testing.T, prog *ir.Program, name string) ir.ID {
	t.Helper()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.NameOf(id) == name {
			return id
		}
	}
	t.Fatalf("no value named %q", name)
	return ir.None
}

// names renders a points-to set for assertion messages.
func setEquals(prog *ir.Program, set interface{ Slice() []uint32 }, want ...ir.ID) bool {
	got := set.Slice()
	if len(got) != len(want) {
		return false
	}
	for i, o := range got {
		if ir.ID(o) != want[i] {
			return false
		}
	}
	return true
}

// TestWindowPrecision is the signature case where the CFG-free backend
// beats Andersen: two stores to a singleton cell in one block, each
// followed by a load. The auxiliary analysis conflates both loads to
// {a, b}; the strong-update windows split them.
func TestWindowPrecision(t *testing.T) {
	const src = `
func main() {
entry:
  pa = alloc a 0
  pb = alloc b 0
  q = alloc qcell 0
  store q, pa
  x = load q
  store q, pb
  y = load q
  ret
}
`
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	aux, res := solveBoth(t, prog)
	checkInvariants(t, prog, aux, res)

	a, b := idOf(t, prog, "a"), idOf(t, prog, "b")
	x, y, qcell := idOf(t, prog, "x"), idOf(t, prog, "y"), idOf(t, prog, "qcell")
	if !setEquals(prog, res.PointsTo(x), a) {
		t.Errorf("pts(x) = %s, want {a}", res.PointsTo(x))
	}
	if !setEquals(prog, res.PointsTo(y), b) {
		t.Errorf("pts(y) = %s, want {b}", res.PointsTo(y))
	}
	if aux.PointsTo(x).Len() != 2 || aux.PointsTo(y).Len() != 2 {
		t.Fatalf("auxiliary analysis should conflate both loads to 2 objects (got %s, %s) — precision case is vacuous",
			aux.PointsTo(x), aux.PointsTo(y))
	}
	// The summary query stays flow-insensitive: everything ever stored.
	if !setEquals(prog, res.ObjectSummary(qcell), a, b) {
		t.Errorf("ObjectSummary(qcell) = %s, want {a, b}", res.ObjectSummary(qcell))
	}

	// Consumed/yielded at the load labels reflect the windows.
	var loads []*ir.Instr
	prog.Funcs[0].ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.Load {
			loads = append(loads, in)
		}
	})
	if len(loads) != 2 {
		t.Fatalf("expected 2 loads, got %d", len(loads))
	}
	if got := res.ConsumedSet(loads[0].Label, qcell); !setEquals(prog, got, a) {
		t.Errorf("ConsumedSet(first load, qcell) = %s, want {a}", got)
	}
	if got := res.ConsumedSet(loads[1].Label, qcell); !setEquals(prog, got, b) {
		t.Errorf("ConsumedSet(second load, qcell) = %s, want {b}", got)
	}
	if res.Stats.WindowedAccesses == 0 {
		t.Error("Stats.WindowedAccesses = 0, want > 0")
	}
}

// TestCallClobbersWindow pins the conservative side of the window scan:
// a call between the anchor store and the load may rewrite the cell, so
// the load must fall back to the global contents set.
func TestCallClobbersWindow(t *testing.T) {
	const src = `
func helper() {
entry:
  ret
}
func main() {
entry:
  pa = alloc a 0
  pb = alloc b 0
  q = alloc qcell 0
  store q, pa
  store q, pb
  call helper()
  y = load q
  ret
}
`
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	aux, res := solveBoth(t, prog)
	checkInvariants(t, prog, aux, res)
	a, b, y := idOf(t, prog, "a"), idOf(t, prog, "b"), idOf(t, prog, "y")
	if !setEquals(prog, res.PointsTo(y), a, b) {
		t.Errorf("pts(y) = %s, want {a, b}: the call clobbers the window", res.PointsTo(y))
	}
}

// TestYieldedSet pins the three YieldedSet regimes on one program:
// strong store (exact overwrite), weak store (accumulate), non-store
// (pass-through).
func TestYieldedSet(t *testing.T) {
	const src = `
func main() {
entry:
  pa = alloc a 0
  pb = alloc b 0
  q = alloc qcell 0
  store q, pa
  store q, pb
  y = load q
  ret
}
`
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, res := solveBoth(t, prog)
	a, b, qcell := idOf(t, prog, "a"), idOf(t, prog, "b"), idOf(t, prog, "qcell")

	var stores []*ir.Instr
	var load *ir.Instr
	prog.Funcs[0].ForEachInstr(func(in *ir.Instr) {
		switch in.Op {
		case ir.Store:
			stores = append(stores, in)
		case ir.Load:
			load = in
		}
	})
	// Both stores strongly update the singleton qcell: each yields
	// exactly the stored value.
	if got := res.YieldedSet(stores[0].Label, qcell); !setEquals(prog, got, a) {
		t.Errorf("YieldedSet(store pa, qcell) = %s, want {a}", got)
	}
	if got := res.YieldedSet(stores[1].Label, qcell); !setEquals(prog, got, b) {
		t.Errorf("YieldedSet(store pb, qcell) = %s, want {b}", got)
	}
	// A non-store passes its consumed set through.
	if got := res.YieldedSet(load.Label, qcell); !setEquals(prog, got, b) {
		t.Errorf("YieldedSet(load, qcell) = %s, want {b}", got)
	}
}
