// Package cfgfree implements the repository's third solver backend: an
// Andersen-style flow-sensitive points-to analysis that consumes the
// partial-SSA IR directly, with no control-flow graph traversal, no
// memory SSA, and no sparse value-flow graph — the formulation of "Flow
// Sensitivity without Control Flow Graph" (Zhang, Cheng, Lei; see
// PAPERS.md) reconstructed for this IR.
//
// The solver is the auxiliary analysis's inclusion-constraint engine
// (worklist, difference propagation, on-the-fly call-graph resolution)
// plus one flow-sensitive refinement: intra-block strong-update
// windows. For a memory access ℓ and an object o, if the nearest
// preceding store k in ℓ's own basic block strongly updates o — the
// exact predicate SFS uses: pts_aux(ptr_k) = {o} and o is a singleton
// per the shared classification (andersen.Result.Singletons) — and no
// call separates k from ℓ, then the contents of o visible at ℓ are
// exactly the values written by the stores in [k, ℓ) that may target o.
// Blocks are single-entry and execute in order, so the strong store k
// provably overwrites the one concrete cell o names before ℓ runs;
// everything the window omits cannot be o's content at ℓ. When no such
// anchor exists (or a call may have rewritten o in between), the access
// falls back to the global flow-insensitive set for o, which every
// store feeds and nothing ever kills.
//
// The windows are purely syntactic — computed once from the instruction
// sequence and the completed auxiliary result, before solving starts —
// so the constraint system stays monotone and the fixpoint is
// deterministic. By construction the solution is bracketed by the
// staged analyses: pts_SFS ⊆ pts_cfgfree ⊆ pts_aux pointwise (the
// window predicate is SFS's own kill predicate, and window contents are
// a subset of what Andersen pours into the global set). The oracle
// (internal/oracle) enforces both orderings, and Verify replays the
// solution against an independent chaotic-iteration evaluator.
package cfgfree

import (
	"context"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/obs"
)

// cancelCheckInterval is how many worklist iterations pass between
// governance polls (guard.Tick) in the solver loop.
const cancelCheckInterval = 1024

// Stats reports solver effort and window coverage.
type Stats struct {
	NodesProcessed int // worklist pops with a non-empty delta
	Propagations   int // set unions attempted
	Changed        int // unions that grew a set
	PtsSets        int // non-empty points-to sets at fixpoint
	PtsWords       int // words backing those sets
	WorklistHW     int // worklist high-water mark

	// WindowedAccesses counts (access, object) pairs that resolved to a
	// strong-update window instead of the global set; WindowStores is
	// the total number of store values feeding those windows.
	WindowedAccesses int
	WindowStores     int
}

// accessKey identifies one (memory access, object) pair. Keyed by
// instruction identity, not label: the memory-SSA pass renumbers labels
// when this backend runs as a degradation rung.
type accessKey struct {
	in *ir.Instr
	o  ir.ID
}

// Result is a solved program. It is immutable once returned and safe
// for concurrent queries.
type Result struct {
	prog *ir.Program
	aux  *andersen.Result

	pts []*bitset.Sparse

	// consumed holds the materialised window contents per windowed
	// (access, object) pair; accesses without an entry read the global
	// set for the object.
	consumed map[accessKey]*bitset.Sparse

	callTargets map[*ir.Instr][]*ir.Function

	Stats Stats
}

var emptySet = bitset.New()

// PointsTo returns pts_cf(v) for a top-level pointer v (or the global
// contents set when v is an object). The set is shared; do not mutate.
func (r *Result) PointsTo(v ir.ID) *bitset.Sparse {
	if int(v) < len(r.pts) && r.pts[v] != nil {
		return r.pts[v]
	}
	return emptySet
}

// ObjectSummary returns everything object o may ever hold: the global
// flow-insensitive set every store through a may-alias pointer feeds.
func (r *Result) ObjectSummary(o ir.ID) *bitset.Sparse { return r.PointsTo(o) }

// CalleesOf returns the functions a Call instruction may invoke,
// resolved on the fly from the flow-sensitive function-pointer sets,
// ordered by name then entry label (the same order SFS reports).
func (r *Result) CalleesOf(call *ir.Instr) []*ir.Function {
	return r.callTargets[call]
}

// instrAt returns the instruction labelled label, or nil for labels
// outside the program (including the reserved label 0).
func (r *Result) instrAt(label uint32) *ir.Instr {
	if label == 0 || int(label) >= len(r.prog.Instrs) {
		return nil
	}
	return r.prog.Instrs[label]
}

// ConsumedSet returns what object o may hold immediately before the
// instruction labelled label: the window contents when the access sits
// under a strong-update window for o, the global set otherwise.
func (r *Result) ConsumedSet(label uint32, o ir.ID) *bitset.Sparse {
	if in := r.instrAt(label); in != nil {
		if set, ok := r.consumed[accessKey{in: in, o: o}]; ok {
			return set
		}
	}
	return r.PointsTo(o)
}

// YieldedSet returns what object o may hold immediately after the
// instruction labelled label: for a strong store to the singleton o,
// exactly the stored value's set; for a weak store, the consumed
// contents plus the stored values; for everything else, the consumed
// contents unchanged.
func (r *Result) YieldedSet(label uint32, o ir.ID) *bitset.Sparse {
	in := r.instrAt(label)
	if in == nil || in.Op != ir.Store {
		return r.ConsumedSet(label, o)
	}
	p, q := in.Uses[0], in.Uses[1]
	if single, ok := r.aux.PointsTo(p).Single(); ok &&
		ir.ID(single) == o && r.aux.Singletons().Has(uint32(o)) {
		return r.PointsTo(q)
	}
	out := r.ConsumedSet(label, o).Clone()
	if r.PointsTo(p).Has(uint32(o)) {
		out.UnionWith(r.PointsTo(q))
	}
	return out
}

// Solve runs the CFG-free analysis to fixpoint. The auxiliary result
// must come from the same program.
func Solve(prog *ir.Program, aux *andersen.Result) *Result {
	r, err := SolveContext(context.Background(), prog, aux)
	if err != nil {
		// Unreachable: a background context carries no deadline, budget
		// or fault plan, so solving cannot be interrupted.
		panic(err)
	}
	return r
}

// SolveContext is Solve with cooperative cancellation and resource
// governance: the worklist loop polls the context (and any guard budget
// or fault plan attached to it) under the phase name "cfgfree".
func SolveContext(ctx context.Context, prog *ir.Program, aux *andersen.Result) (*Result, error) {
	s := &solver{
		prog:        prog,
		aux:         aux,
		ctx:         ctx,
		attr:        obs.AttrFrom(ctx),
		windows:     computeWindows(prog, aux),
		resolved:    make(map[callTarget]bool),
		callTargets: make(map[*ir.Instr][]*ir.Function),
	}
	s.ensure(uint32(prog.NumValues()))
	s.generate()
	if err := s.solve(); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

// computeWindows scans every basic block once and records, for each
// (memory access, object) pair, the values of the preceding same-block
// stores back to (and including) the nearest strong-update anchor for
// the object. Calls (and their CallRet companions, when the memory-SSA
// pass has inserted them) clobber the scan: a callee may rewrite o.
// MEMPHI markers are transparent — they sit at block entries and write
// nothing. No entry is recorded when no anchor exists.
func computeWindows(prog *ir.Program, aux *andersen.Result) map[accessKey][]ir.ID {
	singles := aux.Singletons()
	windows := make(map[accessKey][]ir.ID)
	for _, f := range prog.Funcs {
		for _, blk := range f.Blocks {
			// stores holds the clobber-free run of stores preceding the
			// instruction being visited, oldest first.
			var stores []*ir.Instr
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.Call, ir.CallRet:
					stores = stores[:0]
				case ir.Load, ir.Store:
					base := in.Uses[0]
					aux.PointsTo(base).ForEach(func(o32 uint32) {
						o := ir.ID(o32)
						var vals []ir.ID
						for i := len(stores) - 1; i >= 0; i-- {
							st := stores[i]
							spts := aux.PointsTo(st.Uses[0])
							if !spts.Has(o32) {
								continue
							}
							vals = append(vals, st.Uses[1])
							if single, ok := spts.Single(); ok &&
								ir.ID(single) == o && singles.Has(o32) {
								windows[accessKey{in: in, o: o}] = vals
								return
							}
						}
					})
					if in.Op == ir.Store {
						stores = append(stores, in)
					}
				}
			}
		}
	}
	return windows
}

// worklist is a FIFO queue with a membership bitset to avoid duplicates.
type worklist struct {
	queue []uint32
	in    bitset.Sparse
	hw    int
}

func (w *worklist) push(n uint32) {
	if w.in.Set(n) {
		w.queue = append(w.queue, n)
		if len(w.queue) > w.hw {
			w.hw = len(w.queue)
		}
	}
}

func (w *worklist) pop() (uint32, bool) {
	if len(w.queue) == 0 {
		return 0, false
	}
	n := w.queue[0]
	w.queue = w.queue[1:]
	w.in.Clear(n)
	return n, true
}

type fieldUse struct {
	def ir.ID
	off int
}

type callTarget struct {
	call *ir.Instr
	fn   *ir.Function
}

// solver is the mutable analysis state. Unlike the auxiliary solver it
// performs no cycle collapsing: objects must keep their identity so the
// window table stays addressable, and the corpus scale never needs it.
type solver struct {
	prog *ir.Program
	aux  *andersen.Result
	ctx  context.Context

	pts       []*bitset.Sparse
	processed []*bitset.Sparse
	succs     []*bitset.Sparse

	loadsAt  [][]*ir.Instr // base pointer → loads through it
	storesAt [][]ir.ID     // base pointer → stored values
	fieldsAt [][]fieldUse  // base pointer → (def, off) of field addresses
	icallsAt [][]*ir.Instr // function pointer → indirect calls through it

	windows map[accessKey][]ir.ID

	resolved    map[callTarget]bool
	callTargets map[*ir.Instr][]*ir.Function

	work  worklist
	stats Stats

	// attr charges solver work to owning objects (nil = off, no-op
	// receiver). This backend's nodes are values and objects in one ID
	// space, so the owner of a pop or union is the node itself when it
	// is an object, the unattributed bucket 0 otherwise; per-object
	// sums stay conserved against the stats gauges.
	attr *obs.ObjectAttr
}

// owner maps a constraint node to the object charged for its work.
func (s *solver) owner(n uint32) uint32 {
	if int(n) < s.prog.NumValues() && s.prog.IsObject(ir.ID(n)) {
		return n
	}
	return 0
}

func (s *solver) ensure(id uint32) {
	//vsfs:lint-ignore guardtick growth is bounded by the node-ID space; the pop that created the id was charged at the run checkpoint
	for uint32(len(s.pts)) <= id {
		s.pts = append(s.pts, nil)
		s.processed = append(s.processed, nil)
		s.succs = append(s.succs, nil)
		s.loadsAt = append(s.loadsAt, nil)
		s.storesAt = append(s.storesAt, nil)
		s.fieldsAt = append(s.fieldsAt, nil)
		s.icallsAt = append(s.icallsAt, nil)
	}
}

func (s *solver) ptsOf(n uint32) *bitset.Sparse {
	if s.pts[n] == nil {
		s.pts[n] = bitset.New()
	}
	return s.pts[n]
}

func (s *solver) addPts(n uint32, obj ir.ID) {
	if s.ptsOf(n).Set(uint32(obj)) {
		s.work.push(n)
	}
}

// addCopy inserts the copy edge src→dst (pts(dst) ⊇ pts(src)), eagerly
// propagating the current set.
func (s *solver) addCopy(dst, src ir.ID) {
	d, c := uint32(dst), uint32(src)
	if d == c {
		return
	}
	if s.succs[c] == nil {
		s.succs[c] = bitset.New()
	}
	if !s.succs[c].Set(d) {
		return
	}
	if s.pts[c] != nil && !s.pts[c].IsEmpty() {
		s.stats.Propagations++
		s.attr.Prop(s.owner(d))
		if s.ptsOf(d).UnionWith(s.pts[c]) {
			s.stats.Changed++
			s.work.push(d)
		}
	}
}

// generate installs the base and complex constraints for every
// instruction. MEMPHI and CallRet markers (present when the program has
// been through the memory-SSA pass) generate nothing: their clobber
// role is already folded into the window table.
func (s *solver) generate() {
	for _, f := range s.prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			switch in.Op {
			case ir.Alloc:
				s.addPts(uint32(in.Def), in.Obj)
			case ir.Copy:
				s.addCopy(in.Def, in.Uses[0])
			case ir.Phi:
				for _, u := range in.Uses {
					s.addCopy(in.Def, u)
				}
			case ir.Load:
				q := uint32(in.Uses[0])
				s.loadsAt[q] = append(s.loadsAt[q], in)
				s.reprocess(q)
			case ir.Store:
				p := uint32(in.Uses[0])
				s.storesAt[p] = append(s.storesAt[p], in.Uses[1])
				s.reprocess(p)
			case ir.Field:
				q := uint32(in.Uses[0])
				s.fieldsAt[q] = append(s.fieldsAt[q], fieldUse{def: in.Def, off: in.Off})
				s.reprocess(q)
			case ir.Call:
				if in.Callee != nil {
					s.wireCall(in, in.Callee)
				} else {
					fp := uint32(in.CalleePtr())
					s.icallsAt[fp] = append(s.icallsAt[fp], in)
					s.reprocess(fp)
				}
			}
		})
	}
}

// reprocess forces the complex constraints at n to see the whole
// current points-to set again.
func (s *solver) reprocess(n uint32) {
	if s.processed[n] != nil && !s.processed[n].IsEmpty() {
		s.processed[n] = nil
	}
	if s.pts[n] != nil && !s.pts[n].IsEmpty() {
		s.work.push(n)
	}
}

// wireCall connects actuals to formals and the return value for one
// (call, callee) pair, once.
func (s *solver) wireCall(call *ir.Instr, callee *ir.Function) {
	key := callTarget{call: call, fn: callee}
	if s.resolved[key] {
		return
	}
	s.resolved[key] = true
	s.callTargets[call] = append(s.callTargets[call], callee)
	args := call.CallArgs()
	for i, arg := range args {
		if i >= len(callee.Params) {
			break // excess actuals are dropped, as in K&R varargs
		}
		s.addCopy(callee.Params[i], arg)
	}
	if call.Def != ir.None && callee.Ret != ir.None {
		s.addCopy(call.Def, callee.Ret)
	}
}

// solve runs the worklist to fixpoint with difference propagation.
func (s *solver) solve() error {
	for steps := 0; ; steps++ {
		if steps%cancelCheckInterval == 0 {
			if err := guard.Tick(s.ctx, "cfgfree", cancelCheckInterval); err != nil {
				return err
			}
		}
		n, ok := s.work.pop()
		if !ok {
			break
		}
		if s.pts[n] == nil {
			continue
		}
		delta := s.pts[n].Clone()
		if s.processed[n] != nil {
			delta.DifferenceWith(s.processed[n])
		}
		if delta.IsEmpty() {
			continue
		}
		if s.processed[n] == nil {
			s.processed[n] = bitset.New()
		}
		s.processed[n].UnionWith(delta)
		s.stats.NodesProcessed++
		s.attr.Pop(s.owner(n))

		s.applyComplex(n, delta)

		if s.succs[n] != nil {
			s.succs[n].ForEach(func(d uint32) {
				if d == n {
					return
				}
				s.stats.Propagations++
				s.attr.Prop(s.owner(d))
				if s.ptsOf(d).UnionWith(delta) {
					s.stats.Changed++
					s.work.push(d)
				}
			})
		}
	}
	return nil
}

// applyComplex handles loads, stores, field addresses and indirect
// calls whose base pointer gained the objects in delta. Loads are where
// flow-sensitivity enters: an access under a strong-update window for o
// copies from the window's store values instead of the global set.
func (s *solver) applyComplex(n uint32, delta *bitset.Sparse) {
	prog := s.prog
	for _, ld := range s.loadsAt[n] {
		delta.ForEach(func(o uint32) {
			if vals, ok := s.windows[accessKey{in: ld, o: ir.ID(o)}]; ok {
				for _, val := range vals {
					s.addCopy(ld.Def, val) // pts(def) ⊇ pts(val_window)
				}
				return
			}
			s.addCopy(ld.Def, ir.ID(o)) // pts(def) ⊇ pts_cf(o)
		})
	}
	for _, src := range s.storesAt[n] {
		delta.ForEach(func(o uint32) {
			// The global set is the fallback for every window-less
			// access anywhere in the program; it is never killed.
			s.addCopy(ir.ID(o), src) // pts_cf(o) ⊇ pts(src)
		})
	}
	for _, fu := range s.fieldsAt[n] {
		delta.ForEach(func(o uint32) {
			if prog.Value(ir.ID(o)).ObjKind == ir.FuncObj {
				return // no fields of functions
			}
			fo := prog.FieldObj(ir.ID(o), fu.off)
			s.ensure(uint32(prog.NumValues()) - 1)
			s.addPts(uint32(fu.def), fo)
		})
	}
	if calls := s.icallsAt[n]; len(calls) > 0 {
		delta.ForEach(func(o uint32) {
			v := prog.Value(ir.ID(o))
			if v.ObjKind != ir.FuncObj {
				return // calling through a non-function pointer: no-op
			}
			for _, call := range calls {
				s.wireCall(call, v.Func)
			}
		})
	}
}

// funcLess orders callees by name, breaking ties by entry label — the
// order SFS reports, so cross-backend callee comparisons are stable.
func funcLess(a, b *ir.Function) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.EntryInstr.Label < b.EntryInstr.Label
}

func (s *solver) finish() *Result {
	s.stats.WorklistHW = s.work.hw
	for n, set := range s.pts {
		if set != nil && !set.IsEmpty() {
			s.stats.PtsSets++
			s.stats.PtsWords += set.Words()
			s.attr.Set(s.owner(uint32(n)))
		}
	}
	// Materialise the window contents so ConsumedSet is an O(1) lookup
	// on an immutable Result.
	consumed := make(map[accessKey]*bitset.Sparse, len(s.windows))
	for key, vals := range s.windows {
		set := bitset.New()
		for _, val := range vals {
			if int(val) < len(s.pts) && s.pts[val] != nil {
				set.UnionWith(s.pts[val])
			}
		}
		consumed[key] = set
		s.stats.WindowedAccesses++
		s.stats.WindowStores += len(vals)
	}
	for _, callees := range s.callTargets {
		for i := 1; i < len(callees); i++ {
			for j := i; j > 0 && funcLess(callees[j], callees[j-1]); j-- {
				callees[j], callees[j-1] = callees[j-1], callees[j]
			}
		}
	}
	return &Result{
		prog:        s.prog,
		aux:         s.aux,
		pts:         s.pts,
		consumed:    consumed,
		callTargets: s.callTargets,
		Stats:       s.stats,
	}
}
