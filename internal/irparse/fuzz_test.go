package irparse

import "testing"

// FuzzParse checks the IR parser never panics on arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"func main() {\nentry:\n  ret\n}",
		"global g 3\nfunc f(a, b) {\nentry:\n  p = alloc o 1\n  ret p\n}",
		"func f() {\nentry:\n  br a, b\na:\n  ret\nb:\n  ret\n}",
		"func f() {\nentry:\n  x = phi(y, z)\n  ret\n}",
		"func f() {",
		"func f() {\nentry:\n  x = calli y(z)\n  ret\n}",
		"func f() {\nentry:\n  store a, b\n  jmp entry\n}",
		"wibble",
		"global",
		"func f(,) {\nentry:\n  ret\n}",
		"func f() }{",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Error("Parse returned nil, nil")
		}
	})
}
