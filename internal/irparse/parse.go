// Package irparse reads and writes the textual form of the ir package's
// programs. The syntax is line-oriented:
//
//	// comment (or #)
//	global g 2
//	func main(p, q) {
//	entry:
//	  a = alloc o 0
//	  h = alloc.heap ho 3
//	  fp = funcaddr callee
//	  b = copy a
//	  c = phi(a, b)
//	  d = field a, 1
//	  e = load a
//	  store a, b
//	  free a
//	  r = call callee(a, b)
//	  r2 = calli fp(a)
//	  br then, join
//	then:
//	  jmp join
//	join:
//	  ret r
//	}
//
// Each alloc creates a fresh abstract object (an allocation site); object
// names are display-only. Pointer names are function-scoped, with globals
// as a fallback scope. Multiple ret blocks are legal in the source and
// are unified into a single exit (as LLVM's UnifyFunctionExitNodes does),
// introducing a phi for the return value when needed.
package irparse

import (
	"fmt"
	"strconv"
	"strings"

	"vsfs/internal/ir"
)

// Parse builds and finalizes a program from source text.
func Parse(src string) (*ir.Program, error) {
	p := &parser{
		prog:    ir.NewProgram(),
		lines:   strings.Split(src, "\n"),
		globals: make(map[string]ir.ID),
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	if err := p.prog.Finalize(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// MustParse is Parse for tests and examples with known-good sources.
func MustParse(src string) *ir.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	prog    *ir.Program
	lines   []string
	globals map[string]ir.ID
}

type srcError struct {
	line int
	msg  string
}

func (e *srcError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func errAt(line int, format string, args ...any) error {
	return &srcError{line: line, msg: fmt.Sprintf(format, args...)}
}

// run performs two passes: signatures first (so calls can reference
// functions defined later), then bodies.
func (p *parser) run() error {
	type fnSpan struct {
		name   string
		params []string
		start  int // first body line
		end    int // line of closing brace
	}
	var spans []fnSpan

	for i := 0; i < len(p.lines); i++ {
		toks, err := lex(p.lines[i])
		if err != nil {
			return errAt(i+1, "%v", err)
		}
		if len(toks) == 0 {
			continue
		}
		switch toks[0] {
		case "global":
			if len(toks) < 2 {
				return errAt(i+1, "global wants a name")
			}
			nf := 0
			if len(toks) == 3 {
				nf, err = strconv.Atoi(toks[2])
				if err != nil || nf < 0 {
					return errAt(i+1, "bad field count %q", toks[2])
				}
			} else if len(toks) != 2 {
				return errAt(i+1, "global wants: global <name> [fields]")
			}
			if _, dup := p.globals[toks[1]]; dup {
				return errAt(i+1, "duplicate global %q", toks[1])
			}
			g, _ := p.prog.NewGlobal(toks[1], nf)
			p.globals[toks[1]] = g
		case "func":
			name, params, err := parseSignature(toks)
			if err != nil {
				return errAt(i+1, "%v", err)
			}
			span := fnSpan{name: name, params: params, start: i + 1}
			depth := 1
			j := i + 1
			for ; j < len(p.lines); j++ {
				t, err := lex(p.lines[j])
				if err != nil {
					return errAt(j+1, "%v", err)
				}
				if len(t) == 1 && t[0] == "}" {
					depth--
					if depth == 0 {
						break
					}
				}
			}
			if depth != 0 {
				return errAt(i+1, "function %s: missing closing brace", name)
			}
			span.end = j
			spans = append(spans, span)
			i = j
		default:
			return errAt(i+1, "expected 'global' or 'func', got %q", toks[0])
		}
	}

	// Pass 1: declare functions.
	for _, s := range spans {
		if p.prog.FuncByName(s.name) != nil {
			return errAt(s.start, "duplicate function %q", s.name)
		}
		f := p.prog.NewFunction(s.name, len(s.params))
		for i, prm := range f.Params {
			p.prog.Value(prm).Name = s.params[i]
		}
	}

	// Pass 2: bodies.
	for _, s := range spans {
		if err := p.parseBody(p.prog.FuncByName(s.name), s.params, s.start, s.end); err != nil {
			return err
		}
	}
	return nil
}

func parseSignature(toks []string) (name string, params []string, err error) {
	// func name ( a , b ) {
	rest := toks[1:]
	if len(rest) < 4 || rest[1] != "(" || rest[len(rest)-1] != "{" || rest[len(rest)-2] != ")" {
		return "", nil, fmt.Errorf("malformed function signature")
	}
	name = rest[0]
	inner := rest[2 : len(rest)-2]
	for i := 0; i < len(inner); i++ {
		if i%2 == 0 {
			if !isIdent(inner[i]) {
				return "", nil, fmt.Errorf("bad parameter %q", inner[i])
			}
			params = append(params, inner[i])
		} else if inner[i] != "," {
			return "", nil, fmt.Errorf("expected ',' in parameter list")
		}
	}
	if len(inner) > 0 && len(inner)%2 == 0 {
		return "", nil, fmt.Errorf("trailing ',' in parameter list")
	}
	return name, params, nil
}

// fnScope resolves pointer names within one function.
type fnScope struct {
	p    *parser
	f    *ir.Function
	vars map[string]ir.ID
}

func (s *fnScope) lookup(name string) ir.ID {
	if id, ok := s.vars[name]; ok {
		return id
	}
	if id, ok := s.p.globals[name]; ok {
		return id
	}
	id := s.p.prog.NewPointer(name)
	s.vars[name] = id
	return id
}

type pendingRet struct {
	block *ir.Block
	val   ir.ID // ir.None for bare ret
	line  int
}

func (p *parser) parseBody(f *ir.Function, params []string, start, end int) error {
	scope := &fnScope{p: p, f: f, vars: make(map[string]ir.ID)}
	for i, prm := range f.Params {
		scope.vars[params[i]] = prm
	}

	blocks := map[string]*ir.Block{"entry": f.Entry}
	getBlock := func(name string) *ir.Block {
		if b, ok := blocks[name]; ok {
			return b
		}
		b := f.NewBlock(name)
		blocks[name] = b
		return b
	}

	cur := f.Entry
	terminated := false
	sawBlock := false
	var rets []pendingRet
	// Track source definition order so printing is a fixed point of
	// parsing (forward-referenced blocks are created early internally).
	defined := map[*ir.Block]bool{f.Entry: true}
	defOrder := []*ir.Block{f.Entry}

	for ln := start; ln < end; ln++ {
		toks, err := lex(p.lines[ln])
		if err != nil {
			return errAt(ln+1, "%v", err)
		}
		if len(toks) == 0 {
			continue
		}
		// Block label?
		if len(toks) == 2 && toks[1] == ":" {
			nb := getBlock(toks[0])
			if len(nb.Instrs) > 0 && nb != f.Entry || nb == f.Entry && sawBlock {
				return errAt(ln+1, "block %q defined twice", toks[0])
			}
			started := sawBlock || len(cur.Instrs) > 1 // entry holds FunEntry
			if !terminated && started {
				return errAt(ln, "block %q not terminated before %q", cur.Name, toks[0])
			}
			if !sawBlock && nb != f.Entry && len(f.Entry.Instrs) == 1 {
				// Source names its first block something other than
				// "entry"; alias it to the entry block.
				delete(blocks, toks[0])
				blocks[toks[0]] = f.Entry
				f.Entry.Name = toks[0]
				nb = f.Entry
				f.Blocks = f.Blocks[:1]
			}
			cur = nb
			terminated = false
			sawBlock = true
			if !defined[nb] {
				defined[nb] = true
				defOrder = append(defOrder, nb)
			}
			continue
		}
		if terminated {
			return errAt(ln+1, "instruction after terminator in block %q", cur.Name)
		}
		term, err := p.parseInstr(f, scope, cur, getBlock, toks, ln+1, &rets)
		if err != nil {
			return err
		}
		terminated = term
	}
	if !terminated {
		return errAt(end, "function %s: final block %q not terminated", f.Name, cur.Name)
	}

	// Every referenced label must be defined, and blocks are reordered
	// to source order so the printer round-trips.
	for name, b := range blocks {
		if !defined[b] {
			return errAt(end, "function %s: jump to undefined block %q", f.Name, name)
		}
	}
	f.Blocks = defOrder
	for i, b := range f.Blocks {
		b.Index = i
	}

	return p.unifyReturns(f, scope, rets)
}

// unifyReturns gives f a single exit block, adding a phi for the return
// value when several ret sites return different pointers.
func (p *parser) unifyReturns(f *ir.Function, scope *fnScope, rets []pendingRet) error {
	switch len(rets) {
	case 0:
		return fmt.Errorf("function %s has no ret", f.Name)
	case 1:
		f.Exit = rets[0].block
		f.Ret = rets[0].val
		return nil
	}
	exit := f.NewBlock("__exit__")
	var vals []ir.ID
	for _, r := range rets {
		r.block.AddSucc(exit)
		if r.val != ir.None {
			vals = append(vals, r.val)
		}
	}
	f.Exit = exit
	switch {
	case len(vals) == 0:
		f.Ret = ir.None
	case len(vals) == 1:
		f.Ret = vals[0]
	default:
		ret := p.prog.NewPointer("__ret__")
		f.EmitPhi(exit, ret, vals...)
		f.Ret = ret
	}
	return nil
}

// parseInstr handles one instruction or terminator line. It returns
// whether the line terminated the block.
func (p *parser) parseInstr(f *ir.Function, scope *fnScope, b *ir.Block,
	getBlock func(string) *ir.Block, toks []string, line int, rets *[]pendingRet) (bool, error) {

	switch toks[0] {
	case "jmp":
		if len(toks) != 2 {
			return false, errAt(line, "jmp wants one target")
		}
		b.AddSucc(getBlock(toks[1]))
		return true, nil
	case "br":
		targets, err := splitCommaList(toks[1:])
		if err != nil || len(targets) < 1 {
			return false, errAt(line, "br wants comma-separated targets")
		}
		for _, tgt := range targets {
			b.AddSucc(getBlock(tgt))
		}
		return true, nil
	case "ret":
		switch len(toks) {
		case 1:
			*rets = append(*rets, pendingRet{block: b, val: ir.None, line: line})
		case 2:
			*rets = append(*rets, pendingRet{block: b, val: scope.lookup(toks[1]), line: line})
		default:
			return false, errAt(line, "ret wants at most one value")
		}
		return true, nil
	case "store":
		// store addr , val
		args, err := splitCommaList(toks[1:])
		if err != nil || len(args) != 2 {
			return false, errAt(line, "store wants: store <addr>, <val>")
		}
		f.EmitStore(b, scope.lookup(args[0]), scope.lookup(args[1]))
		return false, nil
	case "free":
		// free p — sugar for a store of the FREED token through p.
		if len(toks) != 2 {
			return false, errAt(line, "free wants: free <ptr>")
		}
		f.EmitStore(b, scope.lookup(toks[1]), p.prog.FreedPtr())
		return false, nil
	case "call", "calli":
		// result-less call
		return false, p.parseCall(f, scope, b, ir.None, toks, line)
	}

	// def-producing forms: name = op ...
	if len(toks) < 3 || toks[1] != "=" {
		return false, errAt(line, "cannot parse instruction %q", strings.Join(toks, " "))
	}
	def := toks[0]
	op := toks[2]
	rest := toks[3:]
	defID := func() ir.ID {
		if _, exists := scope.vars[def]; exists {
			// Redefinition is caught by the validator; still build it.
			return scope.vars[def]
		}
		if _, isGlobal := p.globals[def]; isGlobal {
			return p.globals[def]
		}
		id := p.prog.NewPointer(def)
		scope.vars[def] = id
		return id
	}

	switch op {
	case "alloc", "alloc.heap", "alloc.global":
		if len(rest) < 1 || len(rest) > 2 {
			return false, errAt(line, "%s wants: <p> = %s <obj> [fields]", op, op)
		}
		nf := 0
		if len(rest) == 2 {
			var err error
			nf, err = strconv.Atoi(rest[1])
			if err != nil || nf < 0 {
				return false, errAt(line, "bad field count %q", rest[1])
			}
		}
		kind := ir.StackObj
		var owner *ir.Function = f
		switch op {
		case "alloc.heap":
			kind = ir.HeapObj
			owner = nil
		case "alloc.global":
			kind = ir.GlobalObj
			owner = nil
		}
		obj := p.prog.NewObject(rest[0], kind, nf, owner)
		f.EmitAlloc(b, defID(), obj)
	case "funcaddr":
		if len(rest) != 1 {
			return false, errAt(line, "funcaddr wants a function name")
		}
		callee := p.prog.FuncByName(rest[0])
		if callee == nil {
			return false, errAt(line, "funcaddr of unknown function %q", rest[0])
		}
		f.EmitAlloc(b, defID(), p.prog.FuncObj(callee))
	case "copy":
		if len(rest) != 1 {
			return false, errAt(line, "copy wants one operand")
		}
		f.EmitCopy(b, defID(), scope.lookup(rest[0]))
	case "load":
		if len(rest) != 1 {
			return false, errAt(line, "load wants one operand")
		}
		f.EmitLoad(b, defID(), scope.lookup(rest[0]))
	case "field":
		args, err := splitCommaList(rest)
		if err != nil || len(args) != 2 {
			return false, errAt(line, "field wants: <p> = field <q>, <offset>")
		}
		off, err := strconv.Atoi(args[1])
		if err != nil || off < 0 {
			return false, errAt(line, "bad field offset %q", args[1])
		}
		f.EmitField(b, defID(), scope.lookup(args[0]), off)
	case "phi":
		names, err := parenList(rest)
		if err != nil || len(names) == 0 {
			return false, errAt(line, "phi wants: <p> = phi(<q>, ...)")
		}
		ids := make([]ir.ID, len(names))
		for i, n := range names {
			ids[i] = scope.lookup(n)
		}
		f.EmitPhi(b, defID(), ids...)
	case "call", "calli":
		return false, p.parseCall(f, scope, b, defID(), toks[2:], line)
	default:
		return false, errAt(line, "unknown opcode %q", op)
	}
	return false, nil
}

// parseCall parses "call name(args)" or "calli fp(args)"; toks starts at
// the call keyword.
func (p *parser) parseCall(f *ir.Function, scope *fnScope, b *ir.Block, def ir.ID, toks []string, line int) error {
	if len(toks) < 2 {
		return errAt(line, "malformed call")
	}
	kw, target := toks[0], toks[1]
	args, err := parenList(toks[2:])
	if err != nil {
		return errAt(line, "malformed call arguments: %v", err)
	}
	ids := make([]ir.ID, len(args))
	for i, a := range args {
		ids[i] = scope.lookup(a)
	}
	switch kw {
	case "call":
		callee := p.prog.FuncByName(target)
		if callee == nil {
			return errAt(line, "call to unknown function %q (use calli for indirect calls)", target)
		}
		f.EmitCall(b, def, callee, ids...)
	case "calli":
		f.EmitCallIndirect(b, def, scope.lookup(target), ids...)
	default:
		return errAt(line, "unknown call keyword %q", kw)
	}
	return nil
}

// parenList parses "( a , b , c )" token sequences into names.
func parenList(toks []string) ([]string, error) {
	if len(toks) < 2 || toks[0] != "(" || toks[len(toks)-1] != ")" {
		return nil, fmt.Errorf("expected parenthesised list")
	}
	return splitCommaList(toks[1 : len(toks)-1])
}

func splitCommaList(toks []string) ([]string, error) {
	var out []string
	for i, t := range toks {
		if i%2 == 0 {
			if t == "," {
				return nil, fmt.Errorf("unexpected ','")
			}
			out = append(out, t)
		} else if t != "," {
			return nil, fmt.Errorf("expected ',', got %q", t)
		}
	}
	if len(toks) > 0 && len(toks)%2 == 0 {
		return nil, fmt.Errorf("trailing ','")
	}
	return out, nil
}

// lex splits one line into tokens: identifiers/numbers, and the symbols
// = ( ) , : { }. Comments start with // or #.
func lex(line string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			return toks, nil
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return toks, nil
		case strings.ContainsRune("=(),:{}", rune(c)):
			toks = append(toks, string(c))
			i++
		case isIdentByte(c) || (c >= '0' && c <= '9'):
			j := i
			for j < len(line) && (isIdentByte(line[j]) || line[j] >= '0' && line[j] <= '9') {
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.' || c == '$' || c == '&'
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !isIdentByte(c) && !(c >= '0' && c <= '9') {
			return false
		}
	}
	return !(s[0] >= '0' && s[0] <= '9')
}
