package irparse

import (
	"fmt"
	"testing"

	"vsfs/internal/workload"
)

// TestQuickRoundTripRandom: printing any generated program and parsing
// it back must reach a fixed point, and the reparsed program must have
// the same instruction count and validate.
func TestQuickRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := workload.DefaultRandomConfig()
			cfg.InstrsPerFunc = 25
			prog := workload.Random(seed, cfg)
			s1 := prog.String()
			p2, err := Parse(s1)
			if err != nil {
				t.Fatalf("reparse failed: %v\nsource:\n%s", err, s1)
			}
			s2 := p2.String()
			if s1 != s2 {
				t.Fatalf("round trip not a fixed point (seed %d)", seed)
			}
			if len(p2.Instrs) != len(prog.Instrs) {
				t.Fatalf("instruction count changed: %d → %d", len(prog.Instrs), len(p2.Instrs))
			}
		})
	}
}
