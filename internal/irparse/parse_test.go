package irparse

import (
	"strings"
	"testing"

	"vsfs/internal/ir"
)

const fig1Src = `
// Figure 1 of the paper, intraprocedural fragment.
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  store p, x
  y = load p
  q = alloc.heap h 0
  store q, y
  ret
}
`

func TestParseFig1(t *testing.T) {
	prog, err := Parse(fig1Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f := prog.FuncByName("main")
	if f == nil {
		t.Fatal("no main")
	}
	var ops []ir.Op
	f.ForEachInstr(func(in *ir.Instr) { ops = append(ops, in.Op) })
	want := []ir.Op{ir.FunEntry, ir.Alloc, ir.Alloc, ir.Store, ir.Load, ir.Alloc, ir.Store, ir.FunExit}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestParseInterprocedural(t *testing.T) {
	src := `
global gp 0

func id(x) {
entry:
  r = copy x
  ret r
}

func main() {
entry:
  a = alloc o 2
  fld = field a, 1
  fp = funcaddr id
  r1 = call id(a)
  r2 = calli fp(fld)
  store gp, r1
  br then, else
then:
  v = load gp
  ret v
else:
  ret r2
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := prog.FuncByName("main")
	if m == nil || prog.FuncByName("id") == nil {
		t.Fatal("functions missing")
	}
	if !prog.FuncByName("id").AddressTaken {
		t.Error("id not address-taken despite funcaddr")
	}
	// Two rets → unified exit with a phi.
	if m.Exit.Name != "__exit__" {
		t.Errorf("exit block = %q, want __exit__", m.Exit.Name)
	}
	if m.Ret == ir.None {
		t.Fatal("no unified return value")
	}
	var phis int
	m.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.Phi && in.Def == m.Ret {
			phis++
			if len(in.Uses) != 2 {
				t.Errorf("return phi has %d operands", len(in.Uses))
			}
		}
	})
	if phis != 1 {
		t.Errorf("return phis = %d, want 1", phis)
	}
	// Global is shared across scopes.
	gf := prog.GlobalsFunc()
	if gf == nil {
		t.Fatal("no globals function")
	}
}

func TestParseFirstBlockAlias(t *testing.T) {
	src := `
func f() {
start:
  a = alloc o 0
  ret a
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f := prog.FuncByName("f")
	if f.Entry.Name != "start" {
		t.Errorf("entry name = %q", f.Entry.Name)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1", len(f.Blocks))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unterminated", "func f() {\nentry:\n  a = alloc o 0\n}", "not terminated"},
		{"after terminator", "func f() {\nentry:\n  ret\n  a = alloc o 0\n}", "after terminator"},
		{"unknown op", "func f() {\nentry:\n  a = frobnicate b\n  ret\n}", "unknown opcode"},
		{"unknown callee", "func f() {\nentry:\n  call nope()\n  ret\n}", "unknown function"},
		{"bad offset", "func f() {\nentry:\n  a = field b, x\n  ret\n}", "bad field offset"},
		{"missing brace", "func f() {\nentry:\n  ret\n", "missing closing brace"},
		{"dup func", "func f() {\nentry:\n  ret\n}\nfunc f() {\nentry:\n  ret\n}", "duplicate function"},
		{"dup global", "global g\nglobal g", "duplicate global"},
		{"no ret", "func f() {\nentry:\n  jmp entry\n}", "has no ret"},
		{"top level junk", "wibble\n", "expected 'global' or 'func'"},
		{"undefined label", "func f() {\nentry:\n  br nowhere, entry\n}", "undefined block"},
		{"bad char", "func f() {\nentry:\n  a = copy b!\n  ret\n}", "unexpected character"},
		{"store arity", "func f() {\nentry:\n  store a\n  ret\n}", "store wants"},
		{"funcaddr unknown", "func f() {\nentry:\n  a = funcaddr nope\n  ret\n}", "unknown function"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestRedefinitionCaughtByValidator(t *testing.T) {
	src := "func f() {\nentry:\n  a = alloc o 0\n  a = alloc o2 0\n  ret\n}"
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "partial SSA") {
		t.Errorf("err = %v, want partial SSA violation", err)
	}
}

// Round-trip: print → parse → print must be a fixed point.
func TestRoundTrip(t *testing.T) {
	srcs := map[string]string{
		"fig1": fig1Src,
		"interproc": `
global g 1

func id(x) {
entry:
  r = copy x
  ret r
}

func main() {
entry:
  a = alloc o 2
  b = alloc.heap h 3
  fld = field a, 1
  fp = funcaddr id
  c = phi(a, b)
  r = calli fp(c)
  store g, r
  v = load g
  br left, right
left:
  d1 = copy v
  ret d1
right:
  ret v
}
`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			p1, err := Parse(src)
			if err != nil {
				t.Fatalf("parse 1: %v", err)
			}
			s1 := p1.String()
			p2, err := Parse(s1)
			if err != nil {
				t.Fatalf("parse 2 of:\n%s\nerror: %v", s1, err)
			}
			s2 := p2.String()
			if s1 != s2 {
				t.Errorf("round trip not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
			}
		})
	}
}
