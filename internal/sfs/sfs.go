// Package sfs implements staged flow-sensitive points-to analysis
// (Hardekopf & Lin, CGO'11) on the sparse value-flow graph: the baseline
// the paper's VSFS improves on. Top-level pointers have one global
// points-to set each (they are in SSA form); every SVFG node keeps an IN
// map (object → points-to set) and store nodes additionally keep an OUT
// map, following equations (6)–(7) of the paper. Strong updates are
// applied at stores whose base pointer resolves to a single singleton
// object. The call graph is resolved on the fly from flow-sensitive
// points-to results.
package sfs

import (
	"context"

	"vsfs/internal/bitset"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/obs"
	"vsfs/internal/svfg"
)

// Stats quantifies solver effort and storage, the quantities Table III's
// time and memory columns are driven by.
type Stats struct {
	NodesProcessed int // worklist pops
	Propagations   int // set unions attempted along value-flow edges
	Changed        int // unions that grew the target
	PtsSets        int // (node, object) points-to sets stored in IN/OUT maps
	PtsWords       int // total 64-bit words backing those sets
	TopLevelWords  int // words backing top-level points-to sets
	CallEdges      int // resolved (call site, callee) pairs
	WorklistHW     int // worklist high-water mark
}

// Result holds the analysis outcome.
type Result struct {
	Graph *svfg.Graph

	pt []*bitset.Sparse // top-level points-to sets

	in  []map[ir.ID]*bitset.Sparse
	out []map[ir.ID]*bitset.Sparse // store nodes only

	callees map[*ir.Instr]map[*ir.Function]bool

	Stats Stats
}

// PointsTo returns the flow-sensitive points-to set of a top-level
// pointer. The caller must not mutate it.
func (r *Result) PointsTo(v ir.ID) *bitset.Sparse {
	if int(v) < len(r.pt) && r.pt[v] != nil {
		return r.pt[v]
	}
	return empty
}

// CalleesOf returns the flow-sensitively resolved callees of a call.
func (r *Result) CalleesOf(call *ir.Instr) []*ir.Function {
	m := r.callees[call]
	out := make([]*ir.Function, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sortFuncs(out)
	return out
}

// ObjectSummary returns the union of o's points-to sets over every
// program point: everything the object may ever hold. Used by clients
// that want a per-variable (rather than per-point) answer.
func (r *Result) ObjectSummary(o ir.ID) *bitset.Sparse {
	out := bitset.New()
	for _, m := range r.in {
		if set := m[o]; set != nil {
			out.UnionWith(set)
		}
	}
	for _, m := range r.out {
		if set := m[o]; set != nil {
			out.UnionWith(set)
		}
	}
	return out
}

// InSet returns IN[ℓ](o); used by tests and the precision-equivalence
// checks against VSFS.
func (r *Result) InSet(label uint32, o ir.ID) *bitset.Sparse {
	if m := r.in[label]; m != nil {
		if s := m[o]; s != nil {
			return s
		}
	}
	return empty
}

// OutSet returns OUT[ℓ](o) as the propagation rules see it: the store's
// own OUT entry if it has one, otherwise IN (all other nodes are
// identity for objects).
func (r *Result) OutSet(label uint32, o ir.ID) *bitset.Sparse {
	if m := r.out[label]; m != nil {
		if s := m[o]; s != nil {
			return s
		}
	}
	return r.InSet(label, o)
}

var empty = bitset.New()

// sortFuncs orders callees by name, breaking ties by entry label:
// Function.Name is a mutable display string with no uniqueness
// guarantee, and a sort keyed on it alone would leak map iteration
// order whenever two distinct functions share a name.
func sortFuncs(fs []*ir.Function) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && funcLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func funcLess(a, b *ir.Function) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.EntryInstr.Label < b.EntryInstr.Label
}

// Solve runs the analysis to fixpoint. It mutates g (on-the-fly indirect
// edges); pass a fresh or cloned graph.
func Solve(g *svfg.Graph) *Result {
	r, _ := SolveContext(context.Background(), g)
	return r
}

// SolveContext is Solve with cancellation: the worklist loop polls ctx
// every cancelCheckInterval pops and aborts with ctx.Err() when the
// context is done. A cancelled solve returns no Result; the mutated
// graph must be discarded.
func SolveContext(ctx context.Context, g *svfg.Graph) (*Result, error) {
	s := &state{
		Result: &Result{
			Graph:   g,
			pt:      make([]*bitset.Sparse, g.Prog.NumValues()+1),
			in:      make([]map[ir.ID]*bitset.Sparse, len(g.Prog.Instrs)),
			out:     make([]map[ir.ID]*bitset.Sparse, len(g.Prog.Instrs)),
			callees: make(map[*ir.Instr]map[*ir.Function]bool),
		},
		ctx:       ctx,
		attr:      obs.AttrFrom(ctx),
		fsCallers: make(map[*ir.Function][]uint32),
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	s.Stats.WorklistHW = s.work.hw
	s.collectStats()
	return s.Result, nil
}

// cancelCheckInterval is how many worklist pops pass between context
// polls in the solving loop.
const cancelCheckInterval = 1024

type state struct {
	*Result

	ctx  context.Context
	work worklist

	// attr charges solver work to owning objects; nil (no-op receiver)
	// when attribution is off. Every Stats increment pairs with exactly
	// one charge — object 0 buckets top-level work — so per-object
	// sums are conserved against the solver-wide gauges.
	attr *obs.ObjectAttr

	// fsCallers maps a function to the call-site labels resolved to it,
	// so a growing return value reschedules its callers.
	fsCallers map[*ir.Function][]uint32
}

// worklist is FIFO with a membership set.
type worklist struct {
	queue []uint32
	in    bitset.Sparse
	hw    int // high-water mark of queued nodes
}

func (w *worklist) push(n uint32) {
	if w.in.Set(n) {
		w.queue = append(w.queue, n)
		if len(w.queue) > w.hw {
			w.hw = len(w.queue)
		}
	}
}

func (w *worklist) pop() (uint32, bool) {
	if len(w.queue) == 0 {
		return 0, false
	}
	n := w.queue[0]
	w.queue = w.queue[1:]
	w.in.Clear(n)
	return n, true
}

func (s *state) ptOf(v ir.ID) *bitset.Sparse {
	if int(v) >= len(s.pt) {
		grown := make([]*bitset.Sparse, s.Graph.Prog.NumValues()+1)
		copy(grown, s.pt)
		s.pt = grown
	}
	if s.pt[v] == nil {
		s.pt[v] = bitset.New()
	}
	return s.pt[v]
}

// inPeek reads IN[ℓ](o) without materialising an entry, so reads do not
// inflate the stored-set statistics (the paper counts points-to sets
// actually maintained).
func (s *state) inPeek(label uint32, o ir.ID) *bitset.Sparse {
	if m := s.in[label]; m != nil {
		if set := m[o]; set != nil {
			return set
		}
	}
	return empty
}

func (s *state) inSet(label uint32, o ir.ID) *bitset.Sparse {
	m := s.in[label]
	if m == nil {
		m = make(map[ir.ID]*bitset.Sparse)
		s.in[label] = m
	}
	set := m[o]
	if set == nil {
		set = bitset.New()
		m[o] = set
	}
	return set
}

func (s *state) outSet(label uint32, o ir.ID) *bitset.Sparse {
	m := s.out[label]
	if m == nil {
		m = make(map[ir.ID]*bitset.Sparse)
		s.out[label] = m
	}
	set := m[o]
	if set == nil {
		set = bitset.New()
		m[o] = set
	}
	return set
}

// addPt unions src into the top-level set of v and reschedules v's users
// on change.
func (s *state) addPt(v ir.ID, src *bitset.Sparse) {
	s.Stats.Propagations++
	s.attr.Prop(0)
	if s.ptOf(v).UnionWith(src) {
		s.Stats.Changed++
		for _, u := range s.Graph.UsersOf(v) {
			s.work.push(u)
		}
	}
}

// propagate pushes a source set into IN[to](o), rescheduling to on change
// ([A-PROP] of the SFS formulation).
func (s *state) propagate(to uint32, o ir.ID, src *bitset.Sparse) {
	if src.IsEmpty() {
		return
	}
	s.Stats.Propagations++
	s.attr.Prop(uint32(o))
	if s.inSet(to, o).UnionWith(src) {
		s.Stats.Changed++
		s.work.push(to)
	}
}

func (s *state) run() error {
	prog := s.Graph.Prog
	for l := 1; l < len(prog.Instrs); l++ {
		s.work.push(uint32(l))
	}
	for steps := 0; ; steps++ {
		if steps%cancelCheckInterval == 0 {
			if err := guard.Tick(s.ctx, "solve", cancelCheckInterval); err != nil {
				return err
			}
		}
		l, ok := s.work.pop()
		if !ok {
			return nil
		}
		s.Stats.NodesProcessed++
		in := prog.Instrs[l]
		s.attr.Pop(popOwner(s.Graph, in))
		s.process(in)
	}
}

// popOwner charges a worklist pop to the object whose memory state the
// node manipulates: the smallest χ'd object for stores, the smallest
// μ'd object for loads, the unattributed bucket otherwise. The same
// rule internal/core uses, so per-backend attribution is comparable.
func popOwner(g *svfg.Graph, in *ir.Instr) uint32 {
	switch in.Op {
	case ir.Store:
		if chi := g.MSSA.ChiOf(in.Label); !chi.IsEmpty() {
			return chi.Min()
		}
	case ir.Load:
		if mu := g.MSSA.MuOf(in.Label); !mu.IsEmpty() {
			return mu.Min()
		}
	}
	return 0
}

func (s *state) process(in *ir.Instr) {
	g := s.Graph
	l := in.Label
	switch in.Op {
	case ir.Alloc:
		s.Stats.Propagations++
		s.attr.Prop(0)
		if s.ptOf(in.Def).Set(uint32(in.Obj)) {
			s.Stats.Changed++
			for _, u := range g.UsersOf(in.Def) {
				s.work.push(u)
			}
		}

	case ir.Copy:
		s.addPt(in.Def, s.ptOf(in.Uses[0]))

	case ir.Phi:
		for _, u := range in.Uses {
			s.addPt(in.Def, s.ptOf(u))
		}

	case ir.Field:
		prog := g.Prog
		add := bitset.New()
		s.ptOf(in.Uses[0]).ForEach(func(o uint32) {
			if prog.Value(ir.ID(o)).ObjKind == ir.FuncObj {
				return
			}
			add.Set(uint32(prog.FieldObj(ir.ID(o), in.Off)))
		})
		s.addPt(in.Def, add)

	case ir.Load:
		// [LOAD]: pt(p) ⊇ IN[ℓ](o) for each o ∈ pt(q).
		s.ptOf(in.Uses[0]).Clone().ForEach(func(o uint32) {
			s.addPt(in.Def, s.inPeek(l, ir.ID(o)))
		})

	case ir.Store:
		s.processStore(in)

	case ir.Call:
		s.processCall(in)
		s.forwardObjects(in) // μ-side pass-through to callee entries

	case ir.FunExit:
		// Reschedule resolved callers when the return value grows; the
		// object flows to CallRet nodes ride the indirect edges.
		for _, c := range s.fsCallers[in.Parent] {
			s.work.push(c)
		}
		s.forwardObjects(in)

	case ir.FunEntry, ir.MemPhi, ir.CallRet:
		s.forwardObjects(in)
	}
}

// forwardObjects implements the identity transfer of non-store nodes:
// OUT = IN, then [A-PROP] along every outgoing indirect edge.
func (s *state) forwardObjects(in *ir.Instr) {
	m := s.in[in.Label]
	if len(m) == 0 {
		return
	}
	// Deterministic order.
	objs := make([]ir.ID, 0, len(m))
	for o := range m {
		objs = append(objs, o)
	}
	sortIDs(objs)
	for _, o := range objs {
		src := m[o]
		for _, succ := range s.Graph.IndirSuccs(in.Label, o) {
			s.propagate(succ, o, src)
		}
	}
}

func sortIDs(ids []ir.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// processStore applies [STORE] and [SU/WU]: for each pointee o of p,
// OUT(o) = pt(q) if the store strongly updates o, else IN(o) ∪ pt(q);
// χ'd objects not pointed to by p (per flow-sensitive information) pass
// through, OUT(o) = IN(o).
//
// The strong-update predicate is evaluated on the *auxiliary* points-to
// set of p: it fires iff pts^aux(p) is a single singleton object, which
// implies the store always writes exactly that object when it executes.
// Evaluating it on the in-flight flow-sensitive set (as SVF does) makes
// the result depend on worklist order — values can slip through the
// pass-through before pt(p) resolves — which would break the exact
// SFS ≡ VSFS equality the paper claims; the static predicate makes both
// solvers least fixpoints of identical monotone equations.
func (s *state) processStore(in *ir.Instr) {
	g := s.Graph
	l := in.Label
	p, q := in.Uses[0], in.Uses[1]
	ptp := s.ptOf(p)
	ptq := s.ptOf(q)

	strong := false
	if single, ok := g.Aux.PointsTo(p).Single(); ok && g.IsSingleton(ir.ID(single)) {
		strong = true
	}

	g.MSSA.ChiOf(l).ForEach(func(o32 uint32) {
		o := ir.ID(o32)
		out := s.outSet(l, o)
		changed := false
		if strong {
			// Kill: only the stored value survives.
			s.Stats.Propagations++
			s.attr.Prop(o32)
			changed = out.UnionWith(ptq)
		} else {
			s.Stats.Propagations++
			s.attr.Prop(o32)
			changed = out.UnionWith(s.inPeek(l, o))
			if ptp.Has(o32) {
				s.Stats.Propagations++
				s.attr.Prop(o32)
				if out.UnionWith(ptq) {
					changed = true
				}
			}
		}
		if changed {
			s.Stats.Changed++
		}
		if changed || !out.IsEmpty() {
			for _, succ := range g.IndirSuccs(l, o) {
				s.propagate(succ, o, out)
			}
		}
	})
}

// processCall wires top-level argument/return flow for every resolved
// callee and performs on-the-fly call-graph resolution for indirect
// calls, adding the interprocedural indirect edges the paper's gray
// [CALL]/[RET] rules describe.
func (s *state) processCall(in *ir.Instr) {
	g := s.Graph
	if in.Callee != nil {
		s.wireCallee(in, in.Callee)
		return
	}
	if g.Prewired {
		// Ablation mode: the auxiliary call graph was wired at build
		// time; resolve targets from it instead of flow-sensitive
		// function-pointer values.
		for _, callee := range g.Aux.CalleesOf(in) {
			s.wireCallee(in, callee)
		}
		return
	}
	prog := g.Prog
	s.ptOf(in.CalleePtr()).Clone().ForEach(func(o uint32) {
		v := prog.Value(ir.ID(o))
		if v.ObjKind == ir.FuncObj {
			s.wireCallee(in, v.Func)
		}
	})
}

func (s *state) wireCallee(call *ir.Instr, callee *ir.Function) {
	g := s.Graph
	m := s.callees[call]
	if m == nil {
		m = make(map[*ir.Function]bool)
		s.callees[call] = m
	}
	if !m[callee] {
		// Newly resolved: record and add the interprocedural indirect
		// edges (for direct calls they exist in the built graph already;
		// AddIndirectEdge deduplicates).
		m[callee] = true
		s.Stats.CallEdges++
		s.fsCallers[callee] = append(s.fsCallers[callee], call.Label)

		entry := callee.EntryInstr.Label
		g.MSSA.FormalIn[callee].ForEach(func(o uint32) {
			if g.MSSA.MuOf(call.Label).Has(o) {
				g.AddIndirectEdge(call.Label, entry, ir.ID(o))
			}
		})
		if ret := g.MSSA.CallRets[call]; ret != nil {
			exit := callee.ExitInstr.Label
			g.MSSA.FormalOut[callee].ForEach(func(o uint32) {
				if g.MSSA.ChiOf(ret.Label).Has(o) {
					g.AddIndirectEdge(exit, ret.Label, ir.ID(o))
					// Ship anything already sitting at the exit.
					s.propagate(ret.Label, ir.ID(o), s.inPeek(exit, ir.ID(o)))
				}
			})
		}
		s.work.push(entry)
	}

	// Top-level flow (repeated on every call reprocessing: argument sets
	// grow monotonically).
	args := call.CallArgs()
	for i, a := range args {
		if i >= len(callee.Params) {
			break
		}
		s.addPt(callee.Params[i], s.ptOf(a))
	}
	if call.Def != ir.None && callee.Ret != ir.None {
		s.addPt(call.Def, s.ptOf(callee.Ret))
	}
}

// collectStats sizes the IN/OUT storage at fixpoint. Sets only grow
// during solving, so the fixpoint sizes are also the peaks.
func (s *state) collectStats() {
	for _, m := range s.in {
		for o, set := range m {
			s.Stats.PtsSets++
			s.Stats.PtsWords += set.Words()
			s.attr.Set(uint32(o))
		}
	}
	for _, m := range s.out {
		for o, set := range m {
			s.Stats.PtsSets++
			s.Stats.PtsWords += set.Words()
			s.attr.Set(uint32(o))
		}
	}
	for _, set := range s.pt {
		if set != nil {
			s.Stats.TopLevelWords += set.Words()
		}
	}
}
