package sfs

import (
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/ir"
	"vsfs/internal/memssa"
	"vsfs/internal/svfg"
)

// TestCalleesOfDuplicateNamesDeterministic mirrors the core package's
// regression test: two distinct functions renamed to collide must come
// back from CalleesOf in a stable order (name, then entry label), not
// map iteration order.
func TestCalleesOfDuplicateNamesDeterministic(t *testing.T) {
	prog := ir.NewProgram()
	h1 := prog.NewFunction("h1", 0)
	h2 := prog.NewFunction("h2", 0)
	mainFn := prog.NewFunction("main", 0)

	b := mainFn.Entry
	fp1 := prog.NewPointer("fp1")
	mainFn.EmitAlloc(b, fp1, prog.FuncObj(h1))
	fp2 := prog.NewPointer("fp2")
	mainFn.EmitAlloc(b, fp2, prog.FuncObj(h2))
	ph := prog.NewPointer("ph")
	mainFn.EmitPhi(b, ph, fp1, fp2)
	call := mainFn.EmitCallIndirect(b, ir.None, ph)

	if err := prog.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	h1.Name, h2.Name = "handler", "handler"

	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	r := Solve(svfg.Build(prog, aux, mssa))

	for i := 0; i < 64; i++ {
		got := r.CalleesOf(call)
		if len(got) != 2 {
			t.Fatalf("CalleesOf = %v, want both handlers", got)
		}
		if got[0] != h1 || got[1] != h2 {
			t.Fatalf("iteration %d: CalleesOf order differs from entry-label tie-break", i)
		}
	}
}
