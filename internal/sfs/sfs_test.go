package sfs

import (
	"fmt"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/memssa"
	"vsfs/internal/svfg"
	"vsfs/internal/workload"
)

// pipeline runs parse → aux → memssa → svfg → sfs.
func pipeline(t *testing.T, src string) (*ir.Program, *svfg.Graph, *Result) {
	t.Helper()
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := buildGraph(prog)
	return prog, g, Solve(g)
}

func buildGraph(prog *ir.Program) *svfg.Graph {
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	return svfg.Build(prog, aux, mssa)
}

func varByName(t *testing.T, prog *ir.Program, name string) ir.ID {
	t.Helper()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsPointer(id) && prog.Value(id).Name == name {
			return id
		}
	}
	t.Fatalf("no pointer %q", name)
	return ir.None
}

func names(prog *ir.Program, r *Result, v ir.ID) map[string]bool {
	out := map[string]bool{}
	r.PointsTo(v).ForEach(func(o uint32) { out[prog.NameOf(ir.ID(o))] = true })
	return out
}

func wantPts(t *testing.T, prog *ir.Program, r *Result, v string, want ...string) {
	t.Helper()
	got := names(prog, r, varByName(t, prog, v))
	if len(got) != len(want) {
		t.Errorf("pts(%s) = %v, want %v", v, got, want)
		return
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("pts(%s) = %v, want %v", v, got, want)
			return
		}
	}
}

func TestStrongUpdateKillsOldValue(t *testing.T) {
	// p points to singleton a; the second store strongly updates a, so
	// the load sees only c, not b. Andersen would report {b, c}.
	prog, _, r := pipeline(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  y = alloc c 0
  store p, x
  store p, y
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "c")
}

func TestWeakUpdateOnHeap(t *testing.T) {
	// Heap objects are summaries: both stores accumulate.
	prog, _, r := pipeline(t, `
func main() {
entry:
  p = alloc.heap h 0
  x = alloc b 0
  y = alloc c 0
  store p, x
  store p, y
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "b", "c")
}

func TestWeakUpdateOnMultiplePointees(t *testing.T) {
	// q may point to a or b, so stores through q cannot strongly update.
	prog, _, r := pipeline(t, `
func main() {
entry:
  pa = alloc a 0
  pb = alloc b 0
  q = phi(pa, pb)
  x = alloc t1 0
  y = alloc t2 0
  store q, x
  store q, y
  v = load q
  ret
}
`)
	wantPts(t, prog, r, "v", "t1", "t2")
}

func TestLoadBeforeStoreSeesNothing(t *testing.T) {
	prog, _, r := pipeline(t, `
func main() {
entry:
  p = alloc a 0
  v = load p
  x = alloc b 0
  store p, x
  ret
}
`)
	wantPts(t, prog, r, "v")
}

func TestBranchMerge(t *testing.T) {
	prog, _, r := pipeline(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  y = alloc c 0
  br l, rgt
l:
  store p, x
  jmp j
rgt:
  store p, y
  jmp j
j:
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "b", "c")
}

func TestFlowThroughDirectCall(t *testing.T) {
	prog, _, r := pipeline(t, `
func setter(q, val) {
entry:
  store q, val
  ret
}
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  call setter(p, x)
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "b")
}

func TestFlowSensitiveAcrossCallOrder(t *testing.T) {
	// The load happens before the mutating call: must not see the
	// callee's store.
	prog, _, r := pipeline(t, `
func setter(q, val) {
entry:
  store q, val
  ret
}
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  v = load p
  call setter(p, x)
  w = load p
  ret
}
`)
	wantPts(t, prog, r, "v")
	wantPts(t, prog, r, "w", "b")
}

func TestIndirectCallOnTheFly(t *testing.T) {
	prog, _, r := pipeline(t, `
func setter(q, val) {
entry:
  store q, val
  ret
}
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  fp = funcaddr setter
  calli fp(p, x)
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "b")
	// Call graph contains exactly setter.
	var call *ir.Instr
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.IsIndirectCall() {
			call = in
		}
	})
	callees := r.CalleesOf(call)
	if len(callees) != 1 || callees[0].Name != "setter" {
		t.Errorf("CalleesOf = %v", callees)
	}
}

func TestFlowSensitiveCallGraphSmallerThanAndersen(t *testing.T) {
	// fp is overwritten before the call: flow-sensitively only g2 is
	// callable, while Andersen reports both.
	prog, g, r := pipeline(t, `
func g1() {
entry:
  a1 = alloc o1 0
  ret a1
}
func g2() {
entry:
  a2 = alloc o2 0
  ret a2
}
func main() {
entry:
  c = alloc cell 0
  f1 = funcaddr g1
  f2 = funcaddr g2
  store c, f1
  store c, f2
  fp = load c
  q = calli fp()
  ret
}
`)
	// The cell is a singleton: the second store strongly updates it, so
	// fp loads only &g2.
	wantPts(t, prog, r, "fp", "&g2")
	wantPts(t, prog, r, "q", "o2")
	var call *ir.Instr
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.IsIndirectCall() {
			call = in
		}
	})
	if callees := r.CalleesOf(call); len(callees) != 1 || callees[0].Name != "g2" {
		t.Errorf("FS callees = %v, want [g2]", callees)
	}
	if aux := g.Aux.CalleesOf(call); len(aux) != 2 {
		t.Errorf("aux callees = %v, want both", aux)
	}
}

func TestReturnValueFlow(t *testing.T) {
	prog, _, r := pipeline(t, `
func mk() {
entry:
  x = alloc fresh 0
  ret x
}
func main() {
entry:
  v = call mk()
  ret
}
`)
	wantPts(t, prog, r, "v", "fresh")
}

func TestLoopAccumulates(t *testing.T) {
	prog, _, r := pipeline(t, `
func main() {
entry:
  p = alloc.heap cell 0
  x = alloc seed 0
  store p, x
  jmp header
header:
  br body, done
body:
  v = load p
  w = alloc.heap item 0
  store w, v
  store p, w
  jmp header
done:
  z = load p
  ret
}
`)
	wantPts(t, prog, r, "z", "seed", "item")
	// v accumulates both across iterations.
	wantPts(t, prog, r, "v", "seed", "item")
}

func TestFieldFlow(t *testing.T) {
	prog, _, r := pipeline(t, `
func main() {
entry:
  s = alloc agg 2
  f0 = field s, 0
  f1 = field s, 1
  x = alloc t1 0
  y = alloc t2 0
  store f0, x
  store f1, y
  v0 = load f0
  v1 = load f1
  ret
}
`)
	wantPts(t, prog, r, "v0", "t1")
	wantPts(t, prog, r, "v1", "t2")
}

func TestGlobalsAcrossFunctions(t *testing.T) {
	prog, _, r := pipeline(t, `
global g 0
func init2() {
entry:
  x = alloc boot 0
  store g, x
  ret
}
func main() {
entry:
  call init2()
  v = load g
  ret
}
`)
	wantPts(t, prog, r, "v", "boot")
}

// Soundness ordering: flow-sensitive results must be a subset of the
// auxiliary (flow-insensitive) results for every top-level pointer, on
// random programs.
func TestQuickSubsetOfAndersen(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := workload.Random(seed, workload.DefaultRandomConfig())
			aux := andersen.Analyze(prog)
			mssa := memssa.Build(prog, aux)
			g := svfg.Build(prog, aux, mssa)
			r := Solve(g)
			for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
				if !prog.IsPointer(v) {
					continue
				}
				if !r.PointsTo(v).SubsetOf(aux.PointsTo(v)) {
					t.Fatalf("pts_fs(%s) = %v ⊄ pts_aux = %v",
						prog.NameOf(v), r.PointsTo(v), aux.PointsTo(v))
				}
			}
			// FS call graph ⊆ aux call graph.
			for _, f := range prog.Funcs {
				f.ForEachInstr(func(in *ir.Instr) {
					if in.Op != ir.Call {
						return
					}
					auxSet := map[*ir.Function]bool{}
					for _, c := range aux.CalleesOf(in) {
						auxSet[c] = true
					}
					for _, c := range r.CalleesOf(in) {
						if !auxSet[c] {
							t.Fatalf("FS callee %s not in aux call graph", c.Name)
						}
					}
				})
			}
		})
	}
}

func TestStatsReasonable(t *testing.T) {
	prog := workload.Random(7, workload.DefaultRandomConfig())
	g := buildGraph(prog)
	r := Solve(g)
	if r.Stats.NodesProcessed == 0 || r.Stats.Propagations == 0 {
		t.Errorf("stats empty: %+v", r.Stats)
	}
	if r.Stats.PtsSets == 0 {
		t.Error("no IN/OUT sets recorded")
	}
}
