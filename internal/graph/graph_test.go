package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeDedup(t *testing.T) {
	g := New(3)
	if !g.AddEdge(0, 1) {
		t.Error("first AddEdge not new")
	}
	if g.AddEdge(0, 1) {
		t.Error("duplicate AddEdge reported new")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge wrong")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if len(g.Preds(1)) != 1 || g.Preds(1)[0] != 0 {
		t.Errorf("Preds(1) = %v", g.Preds(1))
	}
	n := g.AddNode()
	if n != 3 || g.Len() != 4 {
		t.Errorf("AddNode = %d, Len = %d", n, g.Len())
	}
}

func TestSCCsSimpleCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0, 2 -> 3
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	comp, n := g.SCCs()
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("cycle nodes in different components: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Error("node 3 merged into cycle")
	}
	// Reverse topological numbering: {0,1,2} can reach {3}, so its ID is larger.
	if comp[0] < comp[3] {
		t.Errorf("component order not reverse-topological: %v", comp)
	}
}

func TestSCCsSelfLoopAndIsolated(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0)
	comp, n := g.SCCs()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	if comp[0] == comp[1] || comp[1] == comp[2] || comp[0] == comp[2] {
		t.Errorf("distinct nodes share a component: %v", comp)
	}
}

func TestCondenseAndTopo(t *testing.T) {
	// Two 2-cycles joined: (0<->1) -> (2<->3) -> 4
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(3, 4)
	comp, n := g.SCCs()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	c := g.Condense(comp, n)
	order, ok := c.TopoOrder()
	if !ok {
		t.Fatal("condensation not acyclic")
	}
	pos := make(map[uint32]int)
	for i, v := range order {
		pos[v] = i
	}
	if !(pos[comp[0]] < pos[comp[2]] && pos[comp[2]] < pos[comp[4]]) {
		t.Errorf("topo order wrong: comp=%v order=%v", comp, order)
	}
}

func TestTopoOrderCycleFails(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, ok := g.TopoOrder(); ok {
		t.Error("TopoOrder succeeded on a cyclic graph")
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	seen := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("Reachable(0)[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
	seen = g.Reachable(0, 3)
	if !seen[4] {
		t.Error("multi-root reachability missed node 4")
	}
}

func TestDeepGraphNoStackOverflow(t *testing.T) {
	// A 200k-node path would overflow a recursive Tarjan.
	const n = 200000
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(uint32(i), uint32(i+1))
	}
	_, comps := g.SCCs()
	if comps != n {
		t.Errorf("comps = %d, want %d", comps, n)
	}
}

// Property: SCC assignment matches a brute-force mutual-reachability check
// on small random graphs.
func TestQuickSCCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(9)
		g := New(n)
		for e := 0; e < r.Intn(3*n); e++ {
			g.AddEdge(uint32(r.Intn(n)), uint32(r.Intn(n)))
		}
		comp, _ := g.SCCs()
		// Brute-force reachability.
		reach := make([][]bool, n)
		for i := 0; i < n; i++ {
			reach[i] = g.Reachable(uint32(i))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				mutual := reach[i][j] && reach[j][i]
				if (comp[i] == comp[j]) != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: condensation is always acyclic and edge-consistent.
func TestQuickCondensationAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := New(n)
		for e := 0; e < r.Intn(4*n); e++ {
			g.AddEdge(uint32(r.Intn(n)), uint32(r.Intn(n)))
		}
		comp, k := g.SCCs()
		c := g.Condense(comp, k)
		_, ok := c.TopoOrder()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
