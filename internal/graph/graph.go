// Package graph provides a small directed-graph toolkit used by the
// analyses: adjacency storage over dense uint32 node IDs, Tarjan's
// strongly-connected-components algorithm, topological ordering of the
// condensation, and reachability. It is deliberately minimal — nodes are
// integers and any labelling lives with the caller.
package graph

import "sort"

// Digraph is a directed graph over nodes 0..N-1. Parallel edges are
// deduplicated; self-loops are allowed.
type Digraph struct {
	succs [][]uint32
	preds [][]uint32
	edges int
}

// New returns a digraph with n nodes and no edges.
func New(n int) *Digraph {
	return &Digraph{
		succs: make([][]uint32, n),
		preds: make([][]uint32, n),
	}
}

// Len returns the number of nodes.
func (g *Digraph) Len() int { return len(g.succs) }

// NumEdges returns the number of distinct edges.
func (g *Digraph) NumEdges() int { return g.edges }

// AddNode appends a fresh node and returns its ID.
func (g *Digraph) AddNode() uint32 {
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return uint32(len(g.succs) - 1)
}

// AddEdge inserts the edge from→to, reporting whether it was new.
func (g *Digraph) AddEdge(from, to uint32) bool {
	if contains(g.succs[from], to) {
		return false
	}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
	g.edges++
	return true
}

// HasEdge reports whether the edge from→to exists.
func (g *Digraph) HasEdge(from, to uint32) bool { return contains(g.succs[from], to) }

// Succs returns the successor list of n. The caller must not mutate it.
func (g *Digraph) Succs(n uint32) []uint32 { return g.succs[n] }

// Preds returns the predecessor list of n. The caller must not mutate it.
func (g *Digraph) Preds(n uint32) []uint32 { return g.preds[n] }

func contains(xs []uint32, x uint32) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// SCCs computes the strongly connected components with Tarjan's algorithm
// (iterative, so deep graphs do not overflow the stack). It returns a
// slice mapping node → component ID and the number of components.
// Component IDs are assigned in reverse topological order of the
// condensation: if there is a path from component a to component b (a≠b),
// then ID(a) > ID(b).
func (g *Digraph) SCCs() (comp []uint32, n int) {
	const unvisited = ^uint32(0)
	nn := g.Len()
	comp = make([]uint32, nn)
	index := make([]uint32, nn)
	lowlink := make([]uint32, nn)
	onStack := make([]bool, nn)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []uint32
	var next uint32

	type frame struct {
		node uint32
		succ int
	}
	var frames []frame

	for root := 0; root < nn; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{node: uint32(root)})
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, uint32(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.node
			if f.succ < len(g.succs[v]) {
				w := g.succs[v][f.succ]
				f.succ++
				if index[w] == unvisited {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
				continue
			}
			// v is complete.
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = uint32(n)
					if w == v {
						break
					}
				}
				n++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].node
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
		}
	}
	return comp, n
}

// Condense builds the condensation graph of g given the SCC assignment
// from SCCs. Self-edges within a component are dropped.
func (g *Digraph) Condense(comp []uint32, n int) *Digraph {
	c := New(n)
	for v := 0; v < g.Len(); v++ {
		for _, w := range g.succs[v] {
			if comp[v] != comp[w] {
				c.AddEdge(comp[v], comp[w])
			}
		}
	}
	return c
}

// TopoOrder returns a topological order of an acyclic digraph via Kahn's
// algorithm, or ok=false if the graph has a cycle. Ties are broken by
// node ID so the result is deterministic.
func (g *Digraph) TopoOrder() (order []uint32, ok bool) {
	nn := g.Len()
	indeg := make([]int, nn)
	for v := 0; v < nn; v++ {
		for range g.preds[v] {
			indeg[v]++
		}
	}
	ready := make([]uint32, 0, nn)
	for v := 0; v < nn; v++ {
		if indeg[v] == 0 {
			ready = append(ready, uint32(v))
		}
	}
	order = make([]uint32, 0, nn)
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range g.succs[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	return order, len(order) == nn
}

// Reachable returns the set of nodes reachable from the given roots
// (including the roots themselves), as a boolean slice.
func (g *Digraph) Reachable(roots ...uint32) []bool {
	seen := make([]bool, g.Len())
	var work []uint32
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, w := range g.succs[v] {
			if !seen[w] {
				seen[w] = true
				work = append(work, w)
			}
		}
	}
	return seen
}
