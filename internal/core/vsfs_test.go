package core

import (
	"fmt"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/meld"
	"vsfs/internal/memssa"
	"vsfs/internal/sfs"
	"vsfs/internal/svfg"
	"vsfs/internal/workload"
)

func pipeline(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	return prog, Solve(g)
}

func varByName(t *testing.T, prog *ir.Program, name string) ir.ID {
	t.Helper()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsPointer(id) && prog.Value(id).Name == name {
			return id
		}
	}
	t.Fatalf("no pointer %q", name)
	return ir.None
}

func wantPts(t *testing.T, prog *ir.Program, r *Result, v string, want ...string) {
	t.Helper()
	got := map[string]bool{}
	r.PointsTo(varByName(t, prog, v)).ForEach(func(o uint32) {
		got[prog.NameOf(ir.ID(o))] = true
	})
	if len(got) != len(want) {
		t.Errorf("pts(%s) = %v, want %v", v, got, want)
		return
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("pts(%s) = %v, want %v", v, got, want)
			return
		}
	}
}

func TestStrongUpdateKillsOldValue(t *testing.T) {
	prog, r := pipeline(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  y = alloc c 0
  store p, x
  store p, y
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "c")
}

func TestWeakUpdateAccumulates(t *testing.T) {
	prog, r := pipeline(t, `
func main() {
entry:
  p = alloc.heap h 0
  x = alloc b 0
  y = alloc c 0
  store p, x
  store p, y
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "b", "c")
}

func TestInterproceduralFlow(t *testing.T) {
	prog, r := pipeline(t, `
func setter(q, val) {
entry:
  store q, val
  ret
}
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  v = load p
  call setter(p, x)
  w = load p
  ret
}
`)
	wantPts(t, prog, r, "v")
	wantPts(t, prog, r, "w", "b")
}

func TestIndirectCallOnTheFly(t *testing.T) {
	prog, r := pipeline(t, `
func setter(q, val) {
entry:
  store q, val
  ret
}
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  fp = funcaddr setter
  calli fp(p, x)
  v = load p
  ret
}
`)
	wantPts(t, prog, r, "v", "b")
	var call *ir.Instr
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.IsIndirectCall() {
			call = in
		}
	})
	if callees := r.CalleesOf(call); len(callees) != 1 || callees[0].Name != "setter" {
		t.Errorf("CalleesOf = %v", callees)
	}
}

// motivatingFragment hand-builds the paper's Figure 2 SVFG fragment: two
// stores (ℓ1, ℓ2) and three loads (ℓ3, ℓ4, ℓ5) of object a, with
//
//	ℓ1 → ℓ2, ℓ1 → ℓ3, ℓ1 → ℓ4, ℓ1 → ℓ5, ℓ2 → ℓ4, ℓ2 → ℓ5
//
// It bypasses the memory-SSA pass to pin the exact edge set the figure
// shows. Returns the graph plus the labels of ℓ1..ℓ5 and the object.
func motivatingFragment(t *testing.T) (*svfg.Graph, [6]uint32, ir.ID) {
	t.Helper()
	prog, err := irparse.Parse(`
func main() {
entry:
  p = alloc.heap a 0
  q = copy p
  x1 = alloc b1 0
  x2 = alloc b2 0
  store p, x1
  v3 = load p
  store q, x2
  v4 = load p
  v5 = load p
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	aux := andersen.Analyze(prog)

	var l [6]uint32 // 1-indexed ℓ1..ℓ5
	var a ir.ID
	stores, loads := 0, 0
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		switch in.Op {
		case ir.Alloc:
			if prog.Value(in.Obj).Name == "a" {
				a = in.Obj
			}
		case ir.Store:
			stores++
			l[stores] = in.Label // ℓ1, ℓ2
		case ir.Load:
			loads++
			l[2+loads] = in.Label // ℓ3, ℓ4, ℓ5
		}
	})

	n := len(prog.Instrs)
	mssa := &memssa.Result{
		Prog:      prog,
		Aux:       aux,
		Mu:        make([]*bitset.Sparse, n),
		Chi:       make([]*bitset.Sparse, n),
		FormalIn:  map[*ir.Function]*bitset.Sparse{},
		FormalOut: map[*ir.Function]*bitset.Sparse{},
		CallRets:  map[*ir.Instr]*ir.Instr{},
	}
	for _, f := range prog.Funcs {
		mssa.FormalIn[f] = bitset.New()
		mssa.FormalOut[f] = bitset.New()
	}
	mssa.Chi[l[1]] = bitset.Of(uint32(a))
	mssa.Chi[l[2]] = bitset.Of(uint32(a))
	for _, ld := range []uint32{l[3], l[4], l[5]} {
		mssa.Mu[ld] = bitset.Of(uint32(a))
	}
	mssa.Edges = []memssa.IndirEdge{
		{From: l[1], To: l[2], Obj: a},
		{From: l[1], To: l[3], Obj: a},
		{From: l[1], To: l[4], Obj: a},
		{From: l[1], To: l[5], Obj: a},
		{From: l[2], To: l[4], Obj: a},
		{From: l[2], To: l[5], Obj: a},
	}
	return svfg.Build(prog, aux, mssa), l, a
}

// TestVersioningFigure9 checks the consume/yield assignments of the
// paper's Figures 5 and 9 on the motivating fragment.
func TestVersioningFigure9(t *testing.T) {
	g, l, a := motivatingFragment(t)
	r := Solve(g)

	k1 := r.YieldVersion(l[1], a)
	k2 := r.YieldVersion(l[2], a)
	if k1 == meld.Epsilon || k2 == meld.Epsilon || k1 == k2 {
		t.Fatalf("store yields not distinct prelabels: κ1=%d κ2=%d", k1, k2)
	}
	// ξℓ2(o) = ξℓ3(o) = ηℓ1(o) = κ1.
	if got := r.ConsumeVersion(l[2], a); got != k1 {
		t.Errorf("ξℓ2 = %d, want κ1=%d", got, k1)
	}
	if got := r.ConsumeVersion(l[3], a); got != k1 {
		t.Errorf("ξℓ3 = %d, want κ1=%d", got, k1)
	}
	// ξℓ4(o) = ξℓ5(o) = κ1 ⊙ κ2, distinct from both.
	c4, c5 := r.ConsumeVersion(l[4], a), r.ConsumeVersion(l[5], a)
	if c4 != c5 {
		t.Errorf("ξℓ4 = %d ≠ ξℓ5 = %d", c4, c5)
	}
	if c4 == k1 || c4 == k2 || c4 == meld.Epsilon {
		t.Errorf("ξℓ4 = %d not a fresh meld of κ1, κ2", c4)
	}
	// Loads yield what they consume ([INTERNAL]^V).
	if r.YieldVersion(l[3], a) != k1 {
		t.Errorf("ηℓ3 = %d, want κ1", r.YieldVersion(l[3], a))
	}
	if r.YieldVersion(l[4], a) != c4 {
		t.Error("ηℓ4 ≠ ξℓ4")
	}
	// ℓ1 consumes ε (nothing reaches it).
	if r.ConsumeVersion(l[1], a) != meld.Epsilon {
		t.Errorf("ξℓ1 = %d, want ε", r.ConsumeVersion(l[1], a))
	}
}

// TestMotivatingFigure2 checks the headline of the example: same points-to
// results as SFS with 3 points-to sets instead of 6 and 2 propagation
// constraints instead of 6.
func TestMotivatingFigure2(t *testing.T) {
	g, l, a := motivatingFragment(t)
	sfsRes := sfs.Solve(g.Clone())
	vsfsRes := Solve(g.Clone())
	prog := g.Prog

	// Identical observable results.
	for _, name := range []string{"v3", "v4", "v5"} {
		v := varByName(t, prog, name)
		if !sfsRes.PointsTo(v).Equal(vsfsRes.PointsTo(v)) {
			t.Errorf("pts(%s): SFS %v ≠ VSFS %v", name, sfsRes.PointsTo(v), vsfsRes.PointsTo(v))
		}
	}
	// v3 sees only the first store; v4/v5 see both.
	if got := sfsRes.PointsTo(varByName(t, prog, "v3")).Len(); got != 1 {
		t.Errorf("|pts(v3)| = %d, want 1", got)
	}
	if got := sfsRes.PointsTo(varByName(t, prog, "v4")).Len(); got != 2 {
		t.Errorf("|pts(v4)| = %d, want 2", got)
	}

	// Storage: SFS keeps 6 sets for o (IN at ℓ2..ℓ5, OUT at ℓ1, ℓ2);
	// VSFS keeps 3 (κ1, κ2, κ1⊙κ2).
	if sfsRes.Stats.PtsSets != 6 {
		t.Errorf("SFS PtsSets = %d, want 6", sfsRes.Stats.PtsSets)
	}
	if vsfsRes.Stats.PtsSets != 3 {
		t.Errorf("VSFS PtsSets = %d, want 3", vsfsRes.Stats.PtsSets)
	}
	// Constraints: 6 edges for SFS vs 2 version constraints for VSFS.
	if g.NumIndirectEdges != 6 {
		t.Errorf("indirect edges = %d, want 6", g.NumIndirectEdges)
	}
	if vsfsRes.Stats.VersionConstraints != 2 {
		t.Errorf("VSFS version constraints = %d, want 2", vsfsRes.Stats.VersionConstraints)
	}
	_ = l
	_ = a
}

// equalResults asserts the precision-equivalence claim of Section IV-E:
// SFS and VSFS agree on every top-level points-to set, on the resolved
// call graph, and on the points-to set of every object consumed at every
// load.
func equalResults(t *testing.T, prog *ir.Program, g *svfg.Graph, s *sfs.Result, v *Result) {
	t.Helper()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if !prog.IsPointer(id) {
			continue
		}
		if !s.PointsTo(id).Equal(v.PointsTo(id)) {
			t.Fatalf("pts(%s): SFS %v ≠ VSFS %v", prog.NameOf(id), s.PointsTo(id), v.PointsTo(id))
		}
	}
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			switch in.Op {
			case ir.Call:
				sc, vc := s.CalleesOf(in), v.CalleesOf(in)
				if len(sc) != len(vc) {
					t.Fatalf("call graph differs at %v: SFS %v, VSFS %v", in.Op, sc, vc)
				}
				for i := range sc {
					if sc[i] != vc[i] {
						t.Fatalf("call graph differs: %v vs %v", sc, vc)
					}
				}
			case ir.Load:
				g.MSSA.MuOf(in.Label).ForEach(func(o uint32) {
					ss := s.InSet(in.Label, ir.ID(o))
					vs := v.ConsumedSet(in.Label, ir.ID(o))
					if !ss.Equal(vs) {
						t.Fatalf("consumed set of %s at load %d: SFS %v ≠ VSFS %v",
							prog.NameOf(ir.ID(o)), in.Label, ss, vs)
					}
				})
			}
		})
	}
}

// TestQuickEquivalenceWithSFS is the paper's central claim, checked on a
// spread of random programs.
func TestQuickEquivalenceWithSFS(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := workload.Random(seed, workload.DefaultRandomConfig())
			aux := andersen.Analyze(prog)
			mssa := memssa.Build(prog, aux)
			g := svfg.Build(prog, aux, mssa)
			sfsRes := sfs.Solve(g.Clone())
			vsfsRes := Solve(g.Clone())
			equalResults(t, prog, g, sfsRes, vsfsRes)

			// The storage claim: VSFS never keeps more per-object sets.
			if vsfsRes.Stats.PtsSets > sfsRes.Stats.PtsSets {
				t.Errorf("VSFS stores more sets (%d) than SFS (%d)",
					vsfsRes.Stats.PtsSets, sfsRes.Stats.PtsSets)
			}
		})
	}
}

func TestVersioningStatsPopulated(t *testing.T) {
	prog := workload.Random(3, workload.DefaultRandomConfig())
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	r := Solve(g)
	vs := r.Stats.Versioning
	if vs.Prelabels == 0 || vs.DistinctVersions <= 1 {
		t.Errorf("versioning stats look empty: %+v", vs)
	}
	if vs.ConsumeEntries == 0 || vs.YieldEntries == 0 {
		t.Errorf("no consume/yield entries: %+v", vs)
	}
}
