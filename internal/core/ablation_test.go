package core

import (
	"fmt"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/meld"
	"vsfs/internal/memssa"
	"vsfs/internal/sfs"
	"vsfs/internal/svfg"
	"vsfs/internal/workload"
)

// TestPrewiredNoDeltaPrelabels checks the §IV-C1 remark: with the
// auxiliary call graph wired at build time, store prelabels alone
// suffice — no node is δ and no [OTF-CG]^P prelabels exist.
func TestPrewiredNoDeltaPrelabels(t *testing.T) {
	prog, err := irparse.Parse(`
func setter(q, val) {
entry:
  store q, val
  ret
}
func main() {
entry:
  p = alloc.heap a 0
  x = alloc b 0
  y = alloc c 0
  store p, y
  fp = funcaddr setter
  calli fp(p, x)
  v = load p
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.BuildAuxCallGraph(prog, aux, mssa)
	for l, d := range g.Delta {
		if d {
			t.Errorf("node %d marked δ in prewired mode", l)
		}
	}
	r := Solve(g)
	// The callee entry's consume version comes from melding, not a
	// prelabel: it must equal the caller-side yield.
	setter := prog.FuncByName("setter")
	var call *ir.Instr
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.IsIndirectCall() {
			call = in
		}
	})
	a := ir.None
	g.MSSA.MuOf(call.Label).ForEach(func(o uint32) { a = ir.ID(o) })
	if a == ir.None {
		t.Fatal("call has no μ objects")
	}
	callY := r.YieldVersion(call.Label, a)
	entryC := r.ConsumeVersion(setter.EntryInstr.Label, a)
	if callY == meld.Epsilon || callY != entryC {
		t.Errorf("prewired entry did not meld caller's version: call η=%d, entry ξ=%d", callY, entryC)
	}
	// Results still correct: the heap cell accumulates both stores.
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsPointer(id) && prog.Value(id).Name == "v" {
			if got := r.PointsTo(id); got.Len() != 2 {
				t.Errorf("pts(v) = %v, want {b, c}", got)
			}
		}
	}
}

// TestPrewiredEquivalenceAndSoundness: in prewired mode SFS ≡ VSFS
// still holds, and on-the-fly results are at least as precise as
// prewired ones (pt_otf ⊆ pt_prewired ⊆ pt_aux) for every top-level
// pointer.
func TestPrewiredEquivalenceAndSoundness(t *testing.T) {
	for seed := int64(200); seed < 212; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := workload.Random(seed, workload.DefaultRandomConfig())
			aux := andersen.Analyze(prog)
			mssa := memssa.Build(prog, aux)

			otf := svfg.Build(prog, aux, mssa)
			pre := svfg.BuildAuxCallGraph(prog, aux, mssa)

			sfsPre := sfs.Solve(pre.Clone())
			vsfsPre := Solve(pre.Clone())
			vsfsOtf := Solve(otf.Clone())

			for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
				if !prog.IsPointer(v) {
					continue
				}
				if !sfsPre.PointsTo(v).Equal(vsfsPre.PointsTo(v)) {
					t.Fatalf("prewired SFS ≠ VSFS at %s: %v vs %v",
						prog.NameOf(v), sfsPre.PointsTo(v), vsfsPre.PointsTo(v))
				}
				if !vsfsOtf.PointsTo(v).SubsetOf(vsfsPre.PointsTo(v)) {
					t.Fatalf("OTF not ⊆ prewired at %s: %v vs %v",
						prog.NameOf(v), vsfsOtf.PointsTo(v), vsfsPre.PointsTo(v))
				}
				if !vsfsPre.PointsTo(v).SubsetOf(aux.PointsTo(v)) {
					t.Fatalf("prewired not ⊆ aux at %s", prog.NameOf(v))
				}
			}
		})
	}
}
