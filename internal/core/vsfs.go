package core

import (
	"context"
	"time"

	"vsfs/internal/bitset"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/meld"
	"vsfs/internal/obs"
	"vsfs/internal/svfg"
)

// Stats quantifies the main phase, comparable field-for-field with
// sfs.Stats.
type Stats struct {
	NodesProcessed     int
	Propagations       int // set unions attempted
	Changed            int // unions that grew the target
	PtsSets            int // distinct (object, version) points-to sets stored
	PtsWords           int // 64-bit words backing those sets
	TopLevelWords      int
	CallEdges          int
	VersionProps       int // version-reliance propagations
	VersionConstraints int // pt_κ ⊆ pt_κ' constraints registered
	WorklistHW         int // main-phase worklist high-water mark

	Versioning VersionStats
	SolveTime  time.Duration

	// Parallel quantifies the sharded engine's schedule; nil for
	// sequential solves. See parallel.go.
	Parallel *ParallelStats
}

// Result is the outcome of versioned staged flow-sensitive analysis.
type Result struct {
	Graph *svfg.Graph

	ver *versioning

	pt []*bitset.Sparse // top-level points-to sets

	// ptv maps (object, version) to its global points-to set. Storage
	// is split into ShardCount maps keyed by the owning object's shard
	// (shardOf) so the parallel engine's apply phase can mutate shards
	// concurrently without sharing map internals; the sequential solver
	// pays one mask per access for the same layout.
	ptv [ShardCount]map[verKey]*bitset.Sparse

	callees map[*ir.Instr]map[*ir.Function]bool

	Stats Stats
}

type verKey struct {
	obj ir.ID
	ver meld.Version
}

var empty = bitset.New()

// PointsTo returns the flow-sensitive points-to set of a top-level
// pointer; identical to SFS's by the paper's correctness argument.
func (r *Result) PointsTo(v ir.ID) *bitset.Sparse {
	if int(v) < len(r.pt) && r.pt[v] != nil {
		return r.pt[v]
	}
	return empty
}

// CalleesOf returns the flow-sensitively resolved callees of a call,
// ordered by name with ties broken by entry label: names alone are not
// unique (Function.Name is a mutable display string), and sorting map
// keys by a non-unique key leaks map iteration order into the result.
func (r *Result) CalleesOf(call *ir.Instr) []*ir.Function {
	m := r.callees[call]
	out := make([]*ir.Function, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sortFuncs(out)
	return out
}

// sortFuncs orders functions by funcLess — a total order, so the
// result is independent of the (randomized) map iteration order the
// callers collect from.
func sortFuncs(fs []*ir.Function) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && funcLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// funcLess orders functions by name, then by entry label (unique per
// function once the program is finalized).
func funcLess(a, b *ir.Function) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.EntryInstr.Label < b.EntryInstr.Label
}

// ObjectSummary returns the union of o's points-to sets over every
// version: everything the object may ever hold.
func (r *Result) ObjectSummary(o ir.ID) *bitset.Sparse {
	out := bitset.New()
	for key, set := range r.ptv[shardOf(o)] {
		if key.obj == o {
			out.UnionWith(set)
		}
	}
	return out
}

// ConsumedSet returns pt_{ξ_ℓ(o)}(o): the points-to set of the version
// of o consumed at ℓ — what an IN-set lookup would return in SFS.
func (r *Result) ConsumedSet(label uint32, o ir.ID) *bitset.Sparse {
	return r.ptvOf(o, r.ver.consumeOf(label, o))
}

// YieldedSet returns pt_{η_ℓ(o)}(o).
func (r *Result) YieldedSet(label uint32, o ir.ID) *bitset.Sparse {
	return r.ptvOf(o, r.ver.yieldOf(label, o))
}

// ConsumeVersion exposes ξ_ℓ(o) for tests and diagnostics.
func (r *Result) ConsumeVersion(label uint32, o ir.ID) meld.Version {
	return r.ver.consumeOf(label, o)
}

// YieldVersion exposes η_ℓ(o).
func (r *Result) YieldVersion(label uint32, o ir.ID) meld.Version {
	return r.ver.yieldOf(label, o)
}

func (r *Result) ptvOf(o ir.ID, v meld.Version) *bitset.Sparse {
	if s := r.ptv[shardOf(o)][verKey{obj: o, ver: v}]; s != nil {
		return s
	}
	return empty
}

// Solve runs versioning then the versioned flow-sensitive main phase. It
// mutates g (on-the-fly indirect edges); pass a fresh or cloned graph.
func Solve(g *svfg.Graph) *Result {
	r, _ := SolveContext(context.Background(), g)
	return r
}

// SolveContext is Solve with cancellation: both the meld-labelling
// fixpoint and the main worklist loop poll ctx every
// cancelCheckInterval iterations and abort with ctx.Err() when the
// context is done. A cancelled solve returns no Result; the mutated
// graph must be discarded.
func SolveContext(ctx context.Context, g *svfg.Graph) (*Result, error) {
	attr := obs.AttrFrom(ctx)
	sp := obs.StartSpan(ctx, "meld")
	ver, err := runVersioning(ctx, g)
	if err != nil {
		return nil, err
	}
	sp.Arg("prelabels", ver.stats.Prelabels).
		Arg("distinctVersions", ver.stats.DistinctVersions).
		Arg("iterations", ver.stats.Iterations).
		Arg("meldOps", ver.stats.MeldOps).
		End()
	s := &state{
		Result:       newResult(g, ver),
		ctx:          ctx,
		attr:         attr,
		verReliance:  make(map[verKey][]meld.Version),
		stmtReliance: make(map[verKey][]uint32),
		fsCallers:    make(map[*ir.Function][]uint32),
	}
	s.Stats.Versioning = ver.stats
	sp = obs.StartSpan(ctx, "main")
	start := time.Now()
	s.buildReliances()
	if err := s.run(); err != nil {
		return nil, err
	}
	s.Stats.SolveTime = time.Since(start)
	s.Stats.WorklistHW = s.work.hw
	s.collectStats()
	sp.Arg("nodesProcessed", s.Stats.NodesProcessed).
		Arg("propagations", s.Stats.Propagations).
		Arg("ptsSets", s.Stats.PtsSets).
		Arg("worklistHW", s.Stats.WorklistHW).
		End()
	return s.Result, nil
}

// cancelCheckInterval is how many worklist iterations pass between
// context polls in this package's fixpoint loops.
const cancelCheckInterval = 1024

// newResult allocates the shared result shell both engines solve into.
func newResult(g *svfg.Graph, ver *versioning) *Result {
	r := &Result{
		Graph:   g,
		ver:     ver,
		pt:      make([]*bitset.Sparse, g.Prog.NumValues()+1),
		callees: make(map[*ir.Instr]map[*ir.Function]bool),
	}
	for i := range r.ptv {
		r.ptv[i] = make(map[verKey]*bitset.Sparse)
	}
	return r
}

type state struct {
	*Result

	ctx context.Context

	// attr charges solver work to owning objects; nil (a no-op
	// receiver) when attribution is off, so the hot path pays one
	// predicted branch per event. Charging follows the conservation
	// rule: every Stats increment pairs with exactly one attr charge,
	// with object 0 as the bucket for top-level (objectless) work.
	attr *obs.ObjectAttr

	// verReliance[(o, κ)] lists versions κ' with pt_κ(o) ⊆ pt_κ'(o),
	// derived from indirect edges whose endpoints carry different
	// versions ([A-PROP]^F reduced to version constraints).
	verReliance map[verKey][]meld.Version

	// stmtReliance[(o, κ)] lists nodes to reprocess when pt_κ(o) grows:
	// loads that consume it and stores whose weak update consumes it.
	stmtReliance map[verKey][]uint32

	fsCallers map[*ir.Function][]uint32

	work worklist
}

// buildReliances turns every static indirect edge into a version
// constraint and registers statement reliances for loads and stores.
func (s *state) buildReliances() {
	g := s.Graph
	prog := g.Prog
	for l := uint32(1); l < uint32(len(prog.Instrs)); l++ {
		// Edge-derived version constraints.
		if ym := s.ver.yield[l]; ym != nil {
			for o, yv := range ym {
				for _, succ := range g.IndirSuccs(l, o) {
					s.addVerConstraint(o, yv, s.ver.consumeOf(succ, o))
				}
			}
		}
		in := prog.Instrs[l]
		switch in.Op {
		case ir.Load:
			g.MSSA.MuOf(l).ForEach(func(o uint32) {
				s.addStmtReliance(ir.ID(o), s.ver.consumeOf(l, ir.ID(o)), l)
			})
		case ir.Store:
			g.MSSA.ChiOf(l).ForEach(func(o uint32) {
				s.addStmtReliance(ir.ID(o), s.ver.consumeOf(l, ir.ID(o)), l)
			})
		}
	}
}

func (s *state) addVerConstraint(o ir.ID, from, to meld.Version) {
	if from == to || from == meld.Epsilon {
		return
	}
	key := verKey{obj: o, ver: from}
	for _, t := range s.verReliance[key] {
		if t == to {
			return
		}
	}
	s.verReliance[key] = append(s.verReliance[key], to)
}

func (s *state) addStmtReliance(o ir.ID, v meld.Version, l uint32) {
	if v == meld.Epsilon {
		// pt_ε is permanently empty; no reprocessing can arise from it.
		return
	}
	key := verKey{obj: o, ver: v}
	for _, t := range s.stmtReliance[key] {
		if t == l {
			return
		}
	}
	s.stmtReliance[key] = append(s.stmtReliance[key], l)
}

func (s *state) ptOf(v ir.ID) *bitset.Sparse {
	if int(v) >= len(s.pt) {
		grown := make([]*bitset.Sparse, s.Graph.Prog.NumValues()+1)
		copy(grown, s.pt)
		s.pt = grown
	}
	if s.pt[v] == nil {
		s.pt[v] = bitset.New()
	}
	return s.pt[v]
}

func (s *state) ptvSet(o ir.ID, v meld.Version) *bitset.Sparse {
	key := verKey{obj: o, ver: v}
	m := s.ptv[shardOf(o)]
	set := m[key]
	if set == nil {
		set = bitset.New()
		m[key] = set
	}
	return set
}

// addPt unions src into pt(v), rescheduling users on change.
func (s *state) addPt(v ir.ID, src *bitset.Sparse) {
	s.Stats.Propagations++
	s.attr.Prop(0)
	if s.ptOf(v).UnionWith(src) {
		s.Stats.Changed++
		for _, u := range s.Graph.UsersOf(v) {
			s.work.push(u)
		}
	}
}

// growVersion unions src into pt_κ(o) and, on change, propagates to
// reliant versions (transitively) and reschedules reliant statements.
func (s *state) growVersion(o ir.ID, v meld.Version, src *bitset.Sparse) {
	if src.IsEmpty() || v == meld.Epsilon {
		return
	}
	type item struct {
		ver meld.Version
	}
	s.Stats.Propagations++
	s.attr.Prop(uint32(o))
	if !s.ptvSet(o, v).UnionWith(src) {
		return
	}
	s.Stats.Changed++
	queue := []item{{ver: v}}
	//vsfs:lint-ignore guardtick version cascade is finite (monotone sets over prelabelled versions) and metered at the next run checkpoint; see DESIGN §15
	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		key := verKey{obj: o, ver: it.ver}
		for _, l := range s.stmtReliance[key] {
			s.work.push(l)
		}
		cur := s.ptv[shardOf(o)][key]
		for _, to := range s.verReliance[key] {
			s.Stats.Propagations++
			s.Stats.VersionProps++
			s.attr.Prop(uint32(o))
			if s.ptvSet(o, to).UnionWith(cur) {
				s.Stats.Changed++
				queue = append(queue, item{ver: to})
			}
		}
	}
}

func (s *state) run() error {
	prog := s.Graph.Prog
	for l := 1; l < len(prog.Instrs); l++ {
		s.work.push(uint32(l))
	}
	for steps := 0; ; steps++ {
		if steps%cancelCheckInterval == 0 {
			if err := guard.Tick(s.ctx, "solve", cancelCheckInterval); err != nil {
				return err
			}
		}
		l, ok := s.work.pop()
		if !ok {
			return nil
		}
		s.Stats.NodesProcessed++
		in := prog.Instrs[l]
		s.attr.Pop(popOwner(s.Graph, in))
		s.process(in)
	}
}

// popOwner charges a worklist pop to the object whose memory state the
// node manipulates: the smallest χ'd object for stores, the smallest
// μ'd object for loads, the unattributed bucket for pure top-level
// nodes. Shared rule with internal/sfs so per-backend attribution is
// comparable.
func popOwner(g *svfg.Graph, in *ir.Instr) uint32 {
	switch in.Op {
	case ir.Store:
		if chi := g.MSSA.ChiOf(in.Label); !chi.IsEmpty() {
			return chi.Min()
		}
	case ir.Load:
		if mu := g.MSSA.MuOf(in.Label); !mu.IsEmpty() {
			return mu.Min()
		}
	}
	return 0
}

// process applies the rules of Figure 10. Identity nodes (MEMPHI,
// CallRet, FUNENTRY, FUNEXIT) need no object work at all: their version
// flow was folded into version constraints — that is VSFS's saving.
func (s *state) process(in *ir.Instr) {
	g := s.Graph
	switch in.Op {
	case ir.Alloc:
		s.Stats.Propagations++
		s.attr.Prop(0)
		if s.ptOf(in.Def).Set(uint32(in.Obj)) {
			s.Stats.Changed++
			for _, u := range g.UsersOf(in.Def) {
				s.work.push(u)
			}
		}

	case ir.Copy:
		s.addPt(in.Def, s.ptOf(in.Uses[0]))

	case ir.Phi:
		for _, u := range in.Uses {
			s.addPt(in.Def, s.ptOf(u))
		}

	case ir.Field:
		prog := g.Prog
		add := bitset.New()
		s.ptOf(in.Uses[0]).ForEach(func(o uint32) {
			if prog.Value(ir.ID(o)).ObjKind == ir.FuncObj {
				return
			}
			add.Set(uint32(prog.FieldObj(ir.ID(o), in.Off)))
		})
		s.addPt(in.Def, add)

	case ir.Load:
		// [LOAD]^F: pt(p) ⊇ pt_{ξ_ℓ(o)}(o) for each o ∈ pt(q).
		l := in.Label
		s.ptOf(in.Uses[0]).Clone().ForEach(func(o uint32) {
			s.addPt(in.Def, s.ConsumedSet(l, ir.ID(o)))
		})

	case ir.Store:
		s.processStore(in)

	case ir.Call:
		s.processCall(in)

	case ir.FunExit:
		for _, c := range s.fsCallers[in.Parent] {
			s.work.push(c)
		}
	}
}

// processStore applies [STORE]^F and [SU/WU]^F: pt_{η(o)} gains pt(q)
// for stored-to objects, and the consumed version's set unless a strong
// update kills it; χ'd objects not pointed to by p pass through. The
// strong-update predicate uses the auxiliary points-to set of p so that
// SFS and VSFS are least fixpoints of identical monotone equations (see
// the matching comment in internal/sfs).
func (s *state) processStore(in *ir.Instr) {
	g := s.Graph
	l := in.Label
	p, q := in.Uses[0], in.Uses[1]
	ptp := s.ptOf(p)
	ptq := s.ptOf(q)

	strong := false
	if single, ok := g.Aux.PointsTo(p).Single(); ok && g.IsSingleton(ir.ID(single)) {
		strong = true
	}

	g.MSSA.ChiOf(l).ForEach(func(o32 uint32) {
		o := ir.ID(o32)
		yv := s.ver.yieldOf(l, o)
		if strong {
			s.growVersion(o, yv, ptq)
			return
		}
		s.growVersion(o, yv, s.ConsumedSet(l, o))
		if ptp.Has(o32) {
			s.growVersion(o, yv, ptq)
		}
	})
}

// processCall wires top-level flow and performs on-the-fly call-graph
// resolution, adding version constraints for the new interprocedural
// edges into the δ nodes' prelabelled consume versions.
func (s *state) processCall(in *ir.Instr) {
	g := s.Graph
	if in.Callee != nil {
		s.wireCallee(in, in.Callee)
		return
	}
	if g.Prewired {
		// Ablation mode: the auxiliary call graph was wired at build
		// time; resolve targets from it instead of flow-sensitive
		// function-pointer values.
		for _, callee := range g.Aux.CalleesOf(in) {
			s.wireCallee(in, callee)
		}
		return
	}
	prog := g.Prog
	s.ptOf(in.CalleePtr()).Clone().ForEach(func(o uint32) {
		v := prog.Value(ir.ID(o))
		if v.ObjKind == ir.FuncObj {
			s.wireCallee(in, v.Func)
		}
	})
}

func (s *state) wireCallee(call *ir.Instr, callee *ir.Function) {
	g := s.Graph
	m := s.callees[call]
	if m == nil {
		m = make(map[*ir.Function]bool)
		s.callees[call] = m
	}
	if !m[callee] {
		m[callee] = true
		s.Stats.CallEdges++
		s.fsCallers[callee] = append(s.fsCallers[callee], call.Label)

		entry := callee.EntryInstr.Label
		g.MSSA.FormalIn[callee].ForEach(func(o32 uint32) {
			o := ir.ID(o32)
			if !g.MSSA.MuOf(call.Label).Has(o32) {
				return
			}
			if g.AddIndirectEdge(call.Label, entry, o) {
				from := s.ver.yieldOf(call.Label, o)
				to := s.ver.consumeOf(entry, o)
				s.addVerConstraint(o, from, to)
				s.growVersion(o, to, s.ptvOf(o, from))
			}
		})
		if ret := g.MSSA.CallRets[call]; ret != nil {
			exit := callee.ExitInstr.Label
			g.MSSA.FormalOut[callee].ForEach(func(o32 uint32) {
				o := ir.ID(o32)
				if !g.MSSA.ChiOf(ret.Label).Has(o32) {
					return
				}
				if g.AddIndirectEdge(exit, ret.Label, o) {
					from := s.ver.yieldOf(exit, o)
					to := s.ver.consumeOf(ret.Label, o)
					s.addVerConstraint(o, from, to)
					s.growVersion(o, to, s.ptvOf(o, from))
				}
			})
		}
		s.work.push(entry)
	}

	args := call.CallArgs()
	for i, a := range args {
		if i >= len(callee.Params) {
			break
		}
		s.addPt(callee.Params[i], s.ptOf(a))
	}
	if call.Def != ir.None && callee.Ret != ir.None {
		s.addPt(call.Def, s.ptOf(callee.Ret))
	}
}

func (s *state) collectStats() {
	for _, targets := range s.verReliance {
		s.Stats.VersionConstraints += len(targets)
	}
	for sh := range s.ptv {
		for key, set := range s.ptv[sh] {
			s.Stats.PtsSets++
			s.Stats.PtsWords += set.Words()
			s.attr.Set(uint32(key.obj))
		}
	}
	for _, set := range s.pt {
		if set != nil {
			s.Stats.TopLevelWords += set.Words()
		}
	}
}
