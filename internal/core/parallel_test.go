package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"vsfs/internal/andersen"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/memssa"
	"vsfs/internal/obs"
	"vsfs/internal/svfg"
	"vsfs/internal/workload"
)

// buildGraph stages one random program up to its SVFG. Andersen runs
// first and materialises every field object the flow-sensitive solves
// can reach, so value IDs are stable across all solves of the shared
// program.
func buildGraph(t *testing.T, seed int64) (*ir.Program, *svfg.Graph) {
	t.Helper()
	prog := workload.Random(seed, workload.DefaultRandomConfig())
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	return prog, svfg.Build(prog, aux, mssa)
}

// requireSameFacts asserts the two results agree on every fact a
// client can observe: top-level points-to sets, per-(load/store)
// consumed and yielded sets, object summaries, and the resolved call
// graph. Schedule-effort counters are deliberately not compared here.
func requireSameFacts(t *testing.T, prog *ir.Program, g *svfg.Graph, a, b *Result) {
	t.Helper()
	for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
		if !a.PointsTo(v).Equal(b.PointsTo(v)) {
			t.Fatalf("pts(%s): sequential %v ≠ parallel %v", prog.NameOf(v), a.PointsTo(v), b.PointsTo(v))
		}
	}
	for l := uint32(1); l < uint32(len(prog.Instrs)); l++ {
		in := prog.Instrs[l]
		switch in.Op {
		case ir.Load:
			g.MSSA.MuOf(l).ForEach(func(o uint32) {
				if !a.ConsumedSet(l, ir.ID(o)).Equal(b.ConsumedSet(l, ir.ID(o))) {
					t.Fatalf("consumed set at load %d, %s differs", l, prog.NameOf(ir.ID(o)))
				}
			})
		case ir.Store:
			g.MSSA.ChiOf(l).ForEach(func(o uint32) {
				if !a.ConsumedSet(l, ir.ID(o)).Equal(b.ConsumedSet(l, ir.ID(o))) {
					t.Fatalf("consumed set at store %d, %s differs", l, prog.NameOf(ir.ID(o)))
				}
				if !a.YieldedSet(l, ir.ID(o)).Equal(b.YieldedSet(l, ir.ID(o))) {
					t.Fatalf("yielded set at store %d, %s differs", l, prog.NameOf(ir.ID(o)))
				}
			})
		case ir.Call:
			ac, bc := a.CalleesOf(in), b.CalleesOf(in)
			if len(ac) != len(bc) {
				t.Fatalf("call %d: sequential resolves %d callees, parallel %d", l, len(ac), len(bc))
			}
			for i := range ac {
				if ac[i] != bc[i] {
					t.Fatalf("call %d: callee %d differs (%s vs %s)", l, i, ac[i].Name, bc[i].Name)
				}
			}
		}
	}
	for o := ir.ID(1); int(o) < prog.NumValues(); o++ {
		if prog.Value(o).Kind != ir.Object {
			continue
		}
		if !a.ObjectSummary(o).Equal(b.ObjectSummary(o)) {
			t.Fatalf("object summary of %s differs", prog.NameOf(o))
		}
	}
}

// TestParallelEquivalenceWithSequential is the parallel engine's core
// contract: the monotone equations have a unique least fixpoint, so
// the sharded bulk-synchronous schedule must land on exactly the
// sequential facts — including the invariant counters that measure the
// fixpoint rather than the schedule.
func TestParallelEquivalenceWithSequential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog, g := buildGraph(t, seed)
			seq := Solve(g.Clone())
			par := SolveParallel(g.Clone(), 4)
			if par.Stats.Parallel == nil {
				t.Fatalf("parallel solve did not record ParallelStats")
			}
			requireSameFacts(t, prog, g, seq, par)

			// The fixpoint-shaped (schedule-independent) counters must
			// match the sequential engine exactly.
			if seq.Stats.PtsSets != par.Stats.PtsSets {
				t.Errorf("PtsSets: sequential %d, parallel %d", seq.Stats.PtsSets, par.Stats.PtsSets)
			}
			if seq.Stats.CallEdges != par.Stats.CallEdges {
				t.Errorf("CallEdges: sequential %d, parallel %d", seq.Stats.CallEdges, par.Stats.CallEdges)
			}
			if seq.Stats.VersionConstraints != par.Stats.VersionConstraints {
				t.Errorf("VersionConstraints: sequential %d, parallel %d",
					seq.Stats.VersionConstraints, par.Stats.VersionConstraints)
			}
			if seq.Stats.Versioning.Prelabels != par.Stats.Versioning.Prelabels {
				t.Errorf("Prelabels: sequential %d, parallel %d",
					seq.Stats.Versioning.Prelabels, par.Stats.Versioning.Prelabels)
			}
			if seq.Stats.Versioning.ConsumeEntries != par.Stats.Versioning.ConsumeEntries ||
				seq.Stats.Versioning.YieldEntries != par.Stats.Versioning.YieldEntries {
				t.Errorf("consume/yield entries differ: sequential %d/%d, parallel %d/%d",
					seq.Stats.Versioning.ConsumeEntries, seq.Stats.Versioning.YieldEntries,
					par.Stats.Versioning.ConsumeEntries, par.Stats.Versioning.YieldEntries)
			}
		})
	}
}

// normalizeParallelStats strips the only legitimately
// schedule-dependent values so everything that remains must be
// byte-identical across worker counts and GOMAXPROCS settings.
func normalizeParallelStats(s Stats) Stats {
	s.SolveTime = 0
	s.Versioning.Duration = 0
	if s.Parallel != nil {
		ps := *s.Parallel
		ps.Workers = 0
		ps.Steals = 0
		s.Parallel = &ps
	}
	return s
}

// TestParallelDeterminismAcrossWorkers pins the engine's central
// design property: ShardCount is a constant, batches are sorted into a
// canonical order, and per-shard counters merge in shard order — so
// every stat except wall clock and steal counts is identical for any
// worker count ≥ 2, which is what lets all parallel requests share one
// cache entry.
func TestParallelDeterminismAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 7, 19} {
		prog, g := buildGraph(t, seed)
		var ref *Result
		for _, w := range []int{2, 3, 4, 8, 16} {
			r := SolveParallel(g.Clone(), w)
			if ref == nil {
				ref = r
				continue
			}
			requireSameFacts(t, prog, g, ref, r)
			a, b := normalizeParallelStats(ref.Stats), normalizeParallelStats(r.Stats)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: stats differ between 2 and %d workers:\n%+v\nvs\n%+v", seed, w, a, b)
			}
		}
		// GOMAXPROCS must not leak into anything observable either.
		old := runtime.GOMAXPROCS(1)
		r1 := SolveParallel(g.Clone(), 4)
		runtime.GOMAXPROCS(old)
		requireSameFacts(t, prog, g, ref, r1)
		if !reflect.DeepEqual(normalizeParallelStats(ref.Stats), normalizeParallelStats(r1.Stats)) {
			t.Fatalf("seed %d: stats differ under GOMAXPROCS=1", seed)
		}
	}
}

// TestParallelAttributionDeterministic: per-worker and per-shard
// collectors merge by commutative sums, so the hot-objects table —
// ranked by cost with ID tie-breaks — is identical across worker
// counts and identical to the sequential charge-out.
func TestParallelAttributionDeterministic(t *testing.T) {
	prog, g := buildGraph(t, 5)
	top := func(workers int) []obs.HotObject {
		attr := obs.NewObjectAttr(prog.NumValues())
		ctx := obs.WithCollector(context.Background(), attr)
		r, err := SolveParallelContext(ctx, g.Clone(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := attr.TotalPops(), uint64(r.Stats.NodesProcessed); got != want {
			t.Fatalf("workers=%d: attributed pops %d ≠ NodesProcessed %d", workers, got, want)
		}
		if got, want := attr.TotalProps(), uint64(r.Stats.Propagations); got != want {
			t.Fatalf("workers=%d: attributed props %d ≠ Propagations %d", workers, got, want)
		}
		if got, want := attr.TotalSets(), uint64(r.Stats.PtsSets); got != want {
			t.Fatalf("workers=%d: attributed sets %d ≠ PtsSets %d", workers, got, want)
		}
		if got, want := attr.TotalMelds(), uint64(r.Stats.Versioning.MeldOps); got != want {
			t.Fatalf("workers=%d: attributed melds %d ≠ MeldOps %d", workers, got, want)
		}
		return attr.TopK(10, func(o uint32) string { return prog.NameOf(ir.ID(o)) })
	}
	ref := top(2)
	for _, w := range []int{4, 8} {
		if got := top(w); !reflect.DeepEqual(ref, got) {
			t.Fatalf("hot objects differ between 2 and %d workers:\n%+v\nvs\n%+v", w, ref, got)
		}
	}
}

// settleGoroutines waits for the runtime to return to the baseline
// goroutine count, failing if anything the solve spawned outlives it.
func settleGoroutines(t *testing.T, label string, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d goroutines still alive, baseline %d", label, runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParallelCancellationNoLeaks cancels solves mid-flight at every
// required worker count and asserts (a) a cancelled solve reports the
// context error and no result, and (b) every worker goroutine is
// joined before SolveParallelContext returns — nothing outlives the
// call, whether the cancel landed in versioning, a process phase, an
// apply phase, or a stint.
func TestParallelCancellationNoLeaks(t *testing.T) {
	_, g := buildGraph(t, 11)
	for _, w := range []int{1, 2, 8} {
		w := w
		t.Run(fmt.Sprintf("workers%d", w), func(t *testing.T) {
			base := runtime.NumGoroutine()

			// Pre-cancelled: deterministic error path.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if r, err := SolveParallelContext(ctx, g.Clone(), w); !errors.Is(err, context.Canceled) || r != nil {
				t.Fatalf("pre-cancelled solve: result=%v err=%v, want nil result and context.Canceled", r, err)
			}
			settleGoroutines(t, "pre-cancelled", base)

			// Racing cancels at staggered delays so aborts land in
			// different phases across iterations.
			for i := 0; i < 8; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				go func(d time.Duration) {
					time.Sleep(d)
					cancel()
				}(time.Duration(i*150) * time.Microsecond)
				r, err := SolveParallelContext(ctx, g.Clone(), w)
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("iteration %d: unexpected error %v", i, err)
					}
					if r != nil {
						t.Fatalf("iteration %d: cancelled solve also returned a result", i)
					}
				}
				cancel()
				settleGoroutines(t, fmt.Sprintf("iteration %d", i), base)
			}
		})
	}
}

// TestParallelBudgetConservation is the DESIGN §13 conservation rule:
// the engine's per-shard guard ledger must sum exactly to what the
// shared budget was charged — no double-charged and no unmetered work,
// no matter how shards interleaved.
func TestParallelBudgetConservation(t *testing.T) {
	_, g := buildGraph(t, 13)
	for _, w := range []int{2, 8} {
		b := guard.NewBudget(1<<40, 0, 0)
		ctx := guard.WithBudget(context.Background(), b)
		r, err := SolveParallelContext(ctx, g.Clone(), w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		var sum int64
		for _, c := range r.Stats.Parallel.GuardCharges {
			sum += c
		}
		if sum != b.StepsUsed() {
			t.Fatalf("workers=%d: ledger sums to %d, budget charged %d", w, sum, b.StepsUsed())
		}
		if sum == 0 {
			t.Fatalf("workers=%d: no guard charges recorded", w)
		}
	}
}

// TestParallelShardBreachProvenance: with a budget so tight the very
// first sharded charge breaches it, the typed error must carry the
// charging shard — the provenance the degradation ladder reports.
func TestParallelShardBreachProvenance(t *testing.T) {
	_, g := buildGraph(t, 17)
	b := guard.NewBudget(1, 0, 0)
	ctx := guard.WithBudget(context.Background(), b)
	r, err := SolveParallelContext(ctx, g.Clone(), 4)
	if r != nil || err == nil {
		t.Fatalf("solve under a 1-step budget returned result=%v err=%v", r, err)
	}
	var be *guard.ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not *guard.ErrBudgetExceeded", err)
	}
	if be.Shard < 0 || be.Shard >= ShardCount {
		t.Fatalf("breach not attributed to a shard: %+v", be)
	}
	if be.Phase != "solve" {
		t.Fatalf("breach attributed to phase %q, want solve", be.Phase)
	}
}
