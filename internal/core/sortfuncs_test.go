package core

import (
	"testing"

	"vsfs/internal/ir"
)

// TestSortFuncsDuplicateNames pins the CalleesOf ordering contract:
// Function.Name is not unique, so the sort must fall back to the
// entry label or map iteration order leaks into the returned slice.
func TestSortFuncsDuplicateNames(t *testing.T) {
	mk := func(name string, label uint32) *ir.Function {
		return &ir.Function{Name: name, EntryInstr: &ir.Instr{Label: label}}
	}
	fs := []*ir.Function{
		mk("g", 40), mk("f", 30), mk("g", 10), mk("f", 20), mk("f", 20),
	}
	sortFuncs(fs)
	wantNames := []string{"f", "f", "f", "g", "g"}
	wantLabels := []uint32{20, 20, 30, 10, 40}
	for i, f := range fs {
		if f.Name != wantNames[i] || f.EntryInstr.Label != wantLabels[i] {
			t.Fatalf("position %d: got (%s, %d), want (%s, %d)",
				i, f.Name, f.EntryInstr.Label, wantNames[i], wantLabels[i])
		}
	}
}

// TestCalleesOfSorted runs the sort through the public accessor: a
// callee map assembled in arbitrary order must come back in
// (name, entry label) order.
func TestCalleesOfSorted(t *testing.T) {
	mk := func(name string, label uint32) *ir.Function {
		return &ir.Function{Name: name, EntryInstr: &ir.Instr{Label: label}}
	}
	call := &ir.Instr{Label: 99}
	fns := []*ir.Function{mk("h", 3), mk("g", 2), mk("g", 1), mk("a", 7)}
	r := &Result{callees: map[*ir.Instr]map[*ir.Function]bool{call: {}}}
	for _, f := range fns {
		r.callees[call][f] = true
	}
	for trial := 0; trial < 16; trial++ {
		got := r.CalleesOf(call)
		if len(got) != len(fns) {
			t.Fatalf("got %d callees, want %d", len(got), len(fns))
		}
		for i := 1; i < len(got); i++ {
			if funcLess(got[i], got[i-1]) {
				t.Fatalf("trial %d: callees out of order at %d: %s/%d after %s/%d",
					trial, i, got[i].Name, got[i].EntryInstr.Label,
					got[i-1].Name, got[i-1].EntryInstr.Label)
			}
		}
	}
}
