package core

import (
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/ir"
	"vsfs/internal/memssa"
	"vsfs/internal/svfg"
)

// dupNameProgram builds a program whose indirect call resolves to two
// distinct functions that share a display name: Function.Name is
// mutable, so clients can (and do) produce name collisions after
// construction, and CalleesOf must not fall back to map iteration
// order when that happens.
func dupNameProgram(t *testing.T) (*ir.Program, *ir.Function, *ir.Function, *ir.Instr) {
	t.Helper()
	prog := ir.NewProgram()
	h1 := prog.NewFunction("h1", 0)
	h2 := prog.NewFunction("h2", 0)
	mainFn := prog.NewFunction("main", 0)

	b := mainFn.Entry
	fp1 := prog.NewPointer("fp1")
	mainFn.EmitAlloc(b, fp1, prog.FuncObj(h1))
	fp2 := prog.NewPointer("fp2")
	mainFn.EmitAlloc(b, fp2, prog.FuncObj(h2))
	ph := prog.NewPointer("ph")
	mainFn.EmitPhi(b, ph, fp1, fp2)
	call := mainFn.EmitCallIndirect(b, ir.None, ph)

	if err := prog.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	// Collide the names after construction (NewFunction rejects
	// duplicates up front, but the field is public and mutable).
	h1.Name, h2.Name = "handler", "handler"
	return prog, h1, h2, call
}

// TestCalleesOfDuplicateNamesDeterministic is the regression test for
// the insertion sort keyed on Name alone: with two equally-named
// callees it returned map-iteration order, differing from call to
// call. Ties must break by entry label (creation order).
func TestCalleesOfDuplicateNamesDeterministic(t *testing.T) {
	prog, h1, h2, call := dupNameProgram(t)
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	r := Solve(svfg.Build(prog, aux, mssa))

	for i := 0; i < 64; i++ {
		got := r.CalleesOf(call)
		if len(got) != 2 {
			t.Fatalf("CalleesOf = %v, want both handlers", got)
		}
		if got[0] != h1 || got[1] != h2 {
			t.Fatalf("iteration %d: CalleesOf order = [%p %p], want [h1=%p h2=%p] (entry-label tie-break)",
				i, got[0], got[1], h1, h2)
		}
	}
}
