// Package core implements the paper's contribution: versioned staged
// flow-sensitive points-to analysis (VSFS). A fast pre-analysis versions
// every (instruction, object) pair by meld labelling the SVFG — each
// STORE yields a fresh version for the objects it may define ([STORE]^P)
// and each δ node consumes a fresh version ([OTF-CG]^P); versions then
// propagate along object-labelled indirect edges ([EXTERNAL]^V) and from
// consume to yield inside non-store nodes ([INTERNAL]^V). Nodes sharing
// a version of o provably see the same points-to set for o, so the main
// phase keeps one global points-to set per (object, version) instead of
// per-node IN/OUT maps, eliminating SFS's redundant single-object
// propagation and storage while producing identical results.
package core

import (
	"context"
	"time"

	"vsfs/internal/bitset"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/meld"
	"vsfs/internal/obs"
	"vsfs/internal/svfg"
)

// VersionStats quantifies the pre-analysis.
type VersionStats struct {
	Prelabels        int // fresh versions from [STORE]^P and [OTF-CG]^P
	DistinctVersions int // distinct labels at fixpoint (incl. ε)
	MeldOps          int // external melds applied
	ConsumeEntries   int // (node, object) consume slots materialised
	YieldEntries     int // (node, object) yield slots materialised
	Iterations       int // meld-labelling worklist pops
	WorklistHW       int // meld-labelling worklist high-water mark
	Meld             meld.TableStats
	Duration         time.Duration // wall-clock versioning time
}

// versioning holds the C (consume) and Y (yield) functions of Section
// IV-C, per node label.
type versioning struct {
	tab *meld.Table

	consume []map[ir.ID]meld.Version // ξ_ℓ(o)
	yield   []map[ir.ID]meld.Version // η_ℓ(o)

	stats VersionStats
}

func (v *versioning) consumeOf(l uint32, o ir.ID) meld.Version {
	if m := v.consume[l]; m != nil {
		return m[o]
	}
	return meld.Epsilon
}

func (v *versioning) yieldOf(l uint32, o ir.ID) meld.Version {
	if m := v.yield[l]; m != nil {
		return m[o]
	}
	return meld.Epsilon
}

func (v *versioning) setConsume(l uint32, o ir.ID, ver meld.Version) {
	m := v.consume[l]
	if m == nil {
		m = make(map[ir.ID]meld.Version)
		v.consume[l] = m
	}
	m[o] = ver
}

func (v *versioning) setYield(l uint32, o ir.ID, ver meld.Version) {
	m := v.yield[l]
	if m == nil {
		m = make(map[ir.ID]meld.Version)
		v.yield[l] = m
	}
	m[o] = ver
}

// runVersioning performs prelabelling and meld labelling over the SVFG,
// polling ctx periodically so a cancelled request aborts the
// pre-analysis too, not just the main phase.
func runVersioning(ctx context.Context, g *svfg.Graph) (*versioning, error) {
	start := time.Now()
	attr := obs.AttrFrom(ctx)
	n := len(g.Prog.Instrs)
	v := &versioning{
		tab:     meld.NewTable(),
		consume: make([]map[ir.ID]meld.Version, n),
		yield:   make([]map[ir.ID]meld.Version, n),
	}

	// Prelabelling ([STORE]^P and [OTF-CG]^P), in label order for
	// determinism; objects ascend within a node (bitset order). The
	// fixed-point loop is event-driven: each worklist entry carries the
	// set of objects whose version changed at that node, so a pop only
	// touches dirty (node, object) pairs.
	work := &objWorklist{dirty: make(map[uint32]*bitset.Sparse)}
	for l := uint32(1); l < uint32(n); l++ {
		in := g.Prog.Instrs[l]
		if in.Op == ir.Store {
			g.MSSA.ChiOf(l).ForEach(func(o uint32) {
				v.setYield(l, ir.ID(o), v.tab.NewAtom())
				v.stats.Prelabels++
				work.push(l, ir.ID(o))
			})
		}
		if g.Delta[l] {
			// δ nodes consume a fresh version for each object they may
			// propagate forward (their χ set).
			g.MSSA.ChiOf(l).ForEach(func(o uint32) {
				v.setConsume(l, ir.ID(o), v.tab.NewAtom())
				v.stats.Prelabels++
				work.push(l, ir.ID(o))
			})
		}
	}

	// Meld labelling to a fixed point.
	for steps := 0; ; steps++ {
		if steps%cancelCheckInterval == 0 {
			if err := guard.Tick(ctx, "solve", cancelCheckInterval); err != nil {
				return nil, err
			}
		}
		l, objs, ok := work.pop()
		if !ok {
			break
		}
		v.stats.Iterations++
		in := g.Prog.Instrs[l]
		for _, o := range objs {
			// [INTERNAL]^V: non-store nodes yield what they consume.
			if in.Op != ir.Store {
				cv := v.consumeOf(l, o)
				if cv != meld.Epsilon && v.yieldOf(l, o) != cv {
					v.setYield(l, o, cv)
				}
			}
			yv := v.yieldOf(l, o)
			if yv == meld.Epsilon {
				continue
			}
			// [EXTERNAL]^V: meld this node's yield into the consumes of
			// its indirect successors, except δ nodes (frozen consume).
			for _, succ := range g.IndirSuccs(l, o) {
				if g.Delta[succ] {
					continue
				}
				old := v.consumeOf(succ, o)
				melded := v.tab.Meld(old, yv)
				if melded != old {
					v.setConsume(succ, o, melded)
					v.stats.MeldOps++
					attr.Meld(uint32(o))
					work.push(succ, o)
				}
			}
		}
	}

	v.stats.DistinctVersions = v.tab.Distinct()
	v.stats.WorklistHW = work.hw
	v.stats.Meld = v.tab.Stats()
	for _, m := range v.consume {
		v.stats.ConsumeEntries += len(m)
	}
	for _, m := range v.yield {
		v.stats.YieldEntries += len(m)
	}
	v.stats.Duration = time.Since(start)
	return v, nil
}

func sortIDs(ids []ir.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// objWorklist is a FIFO over nodes carrying per-node dirty object sets.
type objWorklist struct {
	queue []uint32
	dirty map[uint32]*bitset.Sparse
	hw    int // high-water mark of queued nodes
}

func (w *objWorklist) push(n uint32, o ir.ID) {
	set := w.dirty[n]
	if set == nil {
		set = bitset.New()
		w.dirty[n] = set
		w.queue = append(w.queue, n)
	} else if set.IsEmpty() {
		w.queue = append(w.queue, n)
	}
	if len(w.queue) > w.hw {
		w.hw = len(w.queue)
	}
	set.Set(uint32(o))
}

func (w *objWorklist) pop() (uint32, []ir.ID, bool) {
	if len(w.queue) == 0 {
		return 0, nil, false
	}
	n := w.queue[0]
	w.queue = w.queue[1:]
	set := w.dirty[n]
	objs := make([]ir.ID, 0, set.Len())
	set.ForEach(func(o uint32) { objs = append(objs, ir.ID(o)) })
	set.Copy(emptyScratch)
	return n, objs, true
}

var emptyScratch = bitset.New()

// worklist is FIFO with membership dedup over node labels (used by the
// solving phase).
type worklist struct {
	queue []uint32
	mark  map[uint32]bool
	hw    int // high-water mark of queued nodes
}

func (w *worklist) push(n uint32) {
	if w.mark == nil {
		w.mark = make(map[uint32]bool)
	}
	if !w.mark[n] {
		w.mark[n] = true
		w.queue = append(w.queue, n)
		if len(w.queue) > w.hw {
			w.hw = len(w.queue)
		}
	}
}

func (w *worklist) pop() (uint32, bool) {
	if len(w.queue) == 0 {
		return 0, false
	}
	n := w.queue[0]
	w.queue = w.queue[1:]
	w.mark[n] = false
	return n, true
}
