// Parallel sharded versioned solve.
//
// The paper's central artifact — one global points-to set per (object,
// version) instead of per-node IN/OUT maps — makes the main phase
// naturally partitionable by object: meld labelling is an independent
// fixpoint per object, and version-to-version propagation (verReliance)
// never crosses objects. This file exploits both:
//
//   - runVersioningParallel partitions objects over ShardCount shards
//     (shardOf = object ID mod ShardCount), gives each shard a private
//     meld.Table, and runs every object's labelling fixpoint to
//     completion inside its shard. Final labels are canonical up to
//     atom renaming (the meld algebra is an ACI set union), so the
//     merged consume/yield functions induce exactly the sequential
//     partition of nodes into versions — the facts are identical; only
//     schedule-effort counters (MeldOps, Iterations, DistinctVersions)
//     may differ from the sequential pass, deterministically.
//
//   - the main phase runs bulk-synchronous rounds over a sorted
//     frontier. A process phase has workers grab fixed-size chunks of
//     the frontier through an atomic cursor (work stealing: an idle
//     worker takes whatever chunk is next, wherever its "home" was)
//     and evaluate each node against the frozen round-start state,
//     emitting MDE-style batched deltas — cloned (target, set) pairs
//     routed to the shard that owns the target (pt deltas by value ID,
//     ptv deltas by object). After a barrier, an apply phase has each
//     shard owner sort its batch by (kind, target, emitting node) —
//     a total order, since one node emits at most one delta per
//     target — and apply it exclusively to the structures it owns,
//     including the intra-object (hence intra-shard) transitive
//     version-reliance propagation. Nodes whose processing must
//     mutate shared state (Call/FunExit wire the call graph and the
//     reliance maps; Field materialises field objects in the program)
//     are deferred to a short sequential step after the second
//     barrier, processed in ascending label order through the
//     sequential engine's own code paths. Small frontiers skip the
//     machinery entirely and run sequential "stints" — the
//     convergence tail costs barrier-free Gauss–Seidel iterations.
//
// Everything observable is independent of the worker count and of
// GOMAXPROCS: shards are fixed at ShardCount regardless of workers,
// chunk boundaries depend only on the frontier, batches are sorted
// before application, per-shard counters merge in shard order, and
// per-worker/per-shard attribution merges by commutative sums. Two
// parallel solves of the same graph — at any worker counts ≥ 2 —
// produce byte-identical results and stats; only ParallelStats.Steals
// (and wall-clock durations) reflect the actual schedule. The oracle's
// parallel-eq-sequential invariant pins the facts to the sequential
// engine's; parallel-determinism pins the full stats across worker
// counts.
//
// Budget governance follows the conservation rule of DESIGN.md §13:
// every guard charge is attributed to the shard that performs the work
// (TickShard) or to the unsharded bucket (frontier chunks, sequential
// stints), all charges land on the one shared Budget, and the
// per-shard ledger in ParallelStats.GuardCharges sums exactly to the
// budget's StepsUsed.
package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vsfs/internal/bitset"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/meld"
	"vsfs/internal/obs"
	"vsfs/internal/svfg"
)

// ShardCount is the fixed number of logical shards the parallel engine
// partitions objects (and pt targets) into. It is a constant — not the
// worker count — so every schedule-independent quantity (batch
// contents, per-shard counters, the guard ledger) is identical for any
// number of workers; workers multiplex over shards. Exported so the
// server can materialise per-shard metric series up front.
const ShardCount = 16

// shardOf maps an object (or any value ID) to its owning shard.
func shardOf(o ir.ID) int { return int(uint32(o) % ShardCount) }

// parallelChunk is the frontier slice a worker claims per cursor
// bump during the process phase. Chunk boundaries depend only on the
// frontier, never on the workers, so charges stay deterministic.
const parallelChunk = 256

// parallelThreshold is the frontier size below which a round is not
// worth the barrier + clone traffic; smaller frontiers run as
// sequential stints on the embedded engine.
const parallelThreshold = 512

// stintCap bounds one sequential stint so a frontier that grows back
// past the threshold returns to parallel rounds.
const stintCap = 16384

// ParallelStats quantifies the sharded engine's schedule. All fields
// except Steals are deterministic for a given graph — independent of
// the worker count and GOMAXPROCS — and therefore safe to expose
// anywhere; Steals counts chunks claimed by a worker other than the
// chunk's home worker and is inherently schedule-dependent, so it
// feeds /metrics gauges only and never a report.
type ParallelStats struct {
	Workers      int // workers actually used (clamped to [2, ShardCount])
	Shards       int // always ShardCount; recorded for display
	Rounds       int // bulk-synchronous parallel rounds executed
	DirectStints int // sequential small-frontier stints

	// ShardPops counts processed nodes per shard, attributed by the
	// owning object of each pop (popOwner mod ShardCount) — the same
	// rule attribution uses, so the histogram is deterministic.
	ShardPops [ShardCount]int64

	// Steals counts process-phase chunks executed by a non-home
	// worker. Nondeterministic; metrics only.
	Steals int64

	// ImbalanceRatio is max(ShardPops) over the mean of ShardPops —
	// 1.0 is a perfectly balanced partition.
	ImbalanceRatio float64

	// GuardCharges is the engine-local ledger of budget charges by
	// shard; index ShardCount is the unsharded bucket (frontier
	// chunks, sequential stints, the deferred-node step). The
	// conservation rule: for a solve that owns its Budget, the sum of
	// GuardCharges equals Budget.StepsUsed.
	GuardCharges [ShardCount + 1]int64
}

// SolveParallel is Solve on the sharded engine with the given worker
// count; workers <= 1 falls back to the sequential engine.
func SolveParallel(g *svfg.Graph, workers int) *Result {
	r, _ := SolveParallelContext(context.Background(), g, workers)
	return r
}

// SolveParallelContext runs the parallel meld-labelling pass and the
// sharded bulk-synchronous main phase. Facts and attribution are
// identical to SolveContext's (the equations are monotone with a
// unique least fixpoint, and the schedule is deterministic);
// schedule-effort counters (NodesProcessed, Propagations, Changed,
// WorklistHW, MeldOps, Iterations, DistinctVersions) may differ from
// the sequential engine's but are themselves deterministic and
// worker-count-independent. Cancellation and budgets are polled at
// every chunk and batch; on error all workers are joined before
// returning, so a cancelled solve leaks nothing.
func SolveParallelContext(ctx context.Context, g *svfg.Graph, workers int) (*Result, error) {
	if workers <= 1 {
		return SolveContext(ctx, g)
	}
	if workers > ShardCount {
		workers = ShardCount
	}
	attr := obs.AttrFrom(ctx)
	e := &parEngine{
		workers: workers,
		ps:      &ParallelStats{Workers: workers, Shards: ShardCount},
		wattr:   make([]*obs.ObjectAttr, workers),
	}
	if attr != nil {
		hint := g.Prog.NumValues()
		for i := range e.wattr {
			e.wattr[i] = obs.NewObjectAttr(hint)
		}
		for i := range e.sattr {
			e.sattr[i] = obs.NewObjectAttr(hint)
		}
	}

	sp := obs.StartSpan(ctx, "meld").Arg("workers", workers)
	ver, err := runVersioningParallel(ctx, g, workers, e)
	if err != nil {
		return nil, err
	}
	sp.Arg("prelabels", ver.stats.Prelabels).
		Arg("distinctVersions", ver.stats.DistinctVersions).
		Arg("iterations", ver.stats.Iterations).
		Arg("meldOps", ver.stats.MeldOps).
		End()

	e.state = &state{
		Result:       newResult(g, ver),
		ctx:          ctx,
		attr:         attr,
		verReliance:  make(map[verKey][]meld.Version),
		stmtReliance: make(map[verKey][]uint32),
		fsCallers:    make(map[*ir.Function][]uint32),
	}
	e.Stats.Versioning = ver.stats

	sp = obs.StartSpan(ctx, "main").Arg("workers", workers)
	start := time.Now()
	e.buildReliances()
	if err := e.runParallel(); err != nil {
		return nil, err
	}
	e.Stats.SolveTime = time.Since(start)
	e.Stats.WorklistHW = max(e.maxFrontier, e.work.hw)
	e.collectStats()

	// Fold the per-worker and per-shard attribution into the run's
	// collector; sums commute, so the merged totals are independent of
	// how chunks and shards landed on workers.
	for _, wa := range e.wattr {
		attr.Merge(wa)
	}
	for i := range e.sattr {
		attr.Merge(e.sattr[i])
	}

	ps := e.ps
	var total int64
	for sh := range ps.ShardPops {
		total += ps.ShardPops[sh]
	}
	if total > 0 {
		maxPops := ps.ShardPops[0]
		for _, p := range ps.ShardPops[1:] {
			maxPops = max(maxPops, p)
		}
		ps.ImbalanceRatio = float64(maxPops) * ShardCount / float64(total)
	}
	for i := range e.ledger {
		ps.GuardCharges[i] = e.ledger[i].Load()
	}
	ps.Steals = e.steals.Load()
	e.Stats.Parallel = ps

	sp.Arg("nodesProcessed", e.Stats.NodesProcessed).
		Arg("rounds", ps.Rounds).
		Arg("directStints", ps.DirectStints).
		End()
	return e.Result, nil
}

// parEngine embeds the sequential engine's state so the deferred-node
// step and small-frontier stints run through the exact sequential code
// paths, and adds the round machinery around it.
type parEngine struct {
	*state

	workers int
	ps      *ParallelStats

	// ledger mirrors every guard charge by shard (index ShardCount =
	// unsharded); atomics because process-phase workers charge the
	// unsharded bucket concurrently.
	ledger [ShardCount + 1]atomic.Int64
	steals atomic.Int64

	// wattr holds per-worker collectors for process-phase pop charges;
	// sattr per-shard collectors for versioning melds and apply-phase
	// propagation charges. All nil when attribution is off.
	wattr []*obs.ObjectAttr
	sattr [ShardCount]*obs.ObjectAttr

	seqSteps    int // sequential-path step counter (stints + deferred)
	maxFrontier int
}

// delta is one batched shard-boundary message: "union set into target".
// kind dPt targets the top-level set pt[target]; kind dPtv targets the
// global (obj, ver) set. node is the emitting SVFG node — the sort
// tie-break that makes batch application order-canonical.
type delta struct {
	kind   uint8
	node   uint32
	target ir.ID // dPt: value ID; dPtv: object ID
	ver    meld.Version
	set    *bitset.Sparse
}

const (
	dPt uint8 = iota
	dPtv
)

// prelabel is one [STORE]^P / [OTF-CG]^P seed of an object's
// meld-labelling fixpoint, recorded in label order by the sequential
// prelabelling scan.
type prelabel struct {
	l     uint32
	delta bool
}

func deltaLess(a, b delta) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.target != b.target {
		return a.target < b.target
	}
	if a.ver != b.ver {
		return a.ver < b.ver
	}
	return a.node < b.node
}

// runParallel drives rounds until the frontier drains.
func (e *parEngine) runParallel() error {
	n := len(e.Graph.Prog.Instrs)
	frontier := make([]uint32, 0, n-1)
	for l := 1; l < n; l++ {
		frontier = append(frontier, uint32(l))
	}
	for len(frontier) > 0 {
		e.maxFrontier = max(e.maxFrontier, len(frontier))
		if len(frontier) < parallelThreshold {
			e.ps.DirectStints++
			for _, l := range frontier {
				e.work.push(l)
			}
			if err := e.stint(); err != nil {
				return err
			}
			frontier = e.drainWork()
			continue
		}
		e.ps.Rounds++
		var perShard [ShardCount][]delta
		deferred, err := e.processPhase(frontier, &perShard)
		if err != nil {
			return err
		}
		shardNext, err := e.applyPhase(&perShard)
		if err != nil {
			return err
		}
		if err := e.sequentialStep(deferred); err != nil {
			return err
		}
		frontier = e.assembleNext(shardNext)
	}
	return nil
}

// stint runs the embedded sequential engine for at most stintCap pops —
// the barrier-free treatment for small frontiers and the convergence
// tail. Charges go to the unsharded ledger bucket.
func (e *parEngine) stint() error {
	prog := e.Graph.Prog
	for pops := 0; pops < stintCap; pops++ {
		if e.seqSteps%cancelCheckInterval == 0 {
			if err := guard.Tick(e.ctx, "solve", cancelCheckInterval); err != nil {
				return err
			}
			e.ledger[ShardCount].Add(cancelCheckInterval)
		}
		e.seqSteps++
		l, ok := e.work.pop()
		if !ok {
			return nil
		}
		e.Stats.NodesProcessed++
		in := prog.Instrs[l]
		owner := popOwner(e.Graph, in)
		e.ps.ShardPops[shardOf(ir.ID(owner))]++
		e.attr.Pop(owner)
		e.process(in)
	}
	return nil
}

// drainWork empties the embedded worklist into a sorted frontier.
func (e *parEngine) drainWork() []uint32 {
	var out []uint32
	//vsfs:lint-ignore guardtick drains a finite worklist snapshot between BSP rounds; each node is charged when its chunk is processed
	for {
		l, ok := e.work.pop()
		if !ok {
			break
		}
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// processPhase evaluates every frontier node against the frozen
// round-start state: workers claim chunks through an atomic cursor and
// emit cloned deltas into per-worker per-shard buckets (no locks, no
// shared mutation). Nodes that must mutate shared state (Field, Call,
// FunExit) are collected for the sequential step instead. On success
// the per-worker buckets are concatenated per shard — concatenation
// order is irrelevant because apply sorts each batch by a total order.
func (e *parEngine) processPhase(frontier []uint32, perShard *[ShardCount][]delta) ([]uint32, error) {
	w := e.workers
	outs := make([][ShardCount][]delta, w)
	defs := make([][]uint32, w)
	pops := make([][ShardCount]int64, w)
	errs := make([]error, w)

	var cursor atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for !stop.Load() {
				start := int(cursor.Add(parallelChunk)) - parallelChunk
				if start >= len(frontier) {
					return
				}
				end := min(start+parallelChunk, len(frontier))
				if err := guard.Tick(e.ctx, "solve", int64(end-start)); err != nil {
					errs[wi] = err
					stop.Store(true)
					return
				}
				e.ledger[ShardCount].Add(int64(end - start))
				if (start/parallelChunk)%w != wi {
					e.steals.Add(1)
				}
				for _, l := range frontier[start:end] {
					in := e.Graph.Prog.Instrs[l]
					owner := popOwner(e.Graph, in)
					pops[wi][shardOf(ir.ID(owner))]++
					e.wattr[wi].Pop(owner)
					e.emit(&outs[wi], &defs[wi], in)
				}
			}
		}(wi)
	}
	wg.Wait()
	for wi := 0; wi < w; wi++ {
		if errs[wi] != nil {
			return nil, errs[wi]
		}
	}

	e.Stats.NodesProcessed += len(frontier)
	for wi := 0; wi < w; wi++ {
		for sh := range perShard {
			perShard[sh] = append(perShard[sh], outs[wi][sh]...)
		}
		for sh, p := range pops[wi] {
			e.ps.ShardPops[sh] += p
		}
	}
	deferred := make([]uint32, 0, 16)
	for wi := 0; wi < w; wi++ {
		deferred = append(deferred, defs[wi]...)
	}
	sort.Slice(deferred, func(i, j int) bool { return deferred[i] < deferred[j] })
	return deferred, nil
}

// emit computes one node's contribution against the frozen state. Reads
// only: pt/ptv via the read-only accessors, the versioning functions,
// memory SSA, and the auxiliary result — nothing the apply phase of
// this round has touched yet. Deltas whose set is already contained in
// the target are dropped here (the containment can only grow), which
// removes the steady-state no-op unions that dominate late rounds.
func (e *parEngine) emit(out *[ShardCount][]delta, deferred *[]uint32, in *ir.Instr) {
	switch in.Op {
	case ir.Alloc:
		if !e.PointsTo(in.Def).Has(uint32(in.Obj)) {
			e.emitPt(out, in.Label, in.Def, bitset.Of(uint32(in.Obj)))
		}

	case ir.Copy:
		if src := e.PointsTo(in.Uses[0]); !src.SubsetOf(e.PointsTo(in.Def)) {
			e.emitPt(out, in.Label, in.Def, src.Clone())
		}

	case ir.Phi:
		acc := bitset.New()
		for _, u := range in.Uses {
			acc.UnionWith(e.PointsTo(u))
		}
		if !acc.SubsetOf(e.PointsTo(in.Def)) {
			e.emitPt(out, in.Label, in.Def, acc)
		}

	case ir.Load:
		// [LOAD]^F against the frozen consumed sets.
		l := in.Label
		acc := bitset.New()
		e.PointsTo(in.Uses[0]).ForEach(func(o uint32) {
			acc.UnionWith(e.ConsumedSet(l, ir.ID(o)))
		})
		if !acc.SubsetOf(e.PointsTo(in.Def)) {
			e.emitPt(out, in.Label, in.Def, acc)
		}

	case ir.Store:
		e.emitStore(out, in)

	case ir.Field, ir.Call, ir.FunExit:
		// Field materialises field objects in the program; Call and
		// FunExit wire the call graph, reliance maps, and indirect
		// edges. All mutate shared state — the sequential step owns
		// them.
		*deferred = append(*deferred, in.Label)
	}
}

func (e *parEngine) emitPt(out *[ShardCount][]delta, node uint32, v ir.ID, set *bitset.Sparse) {
	if set.IsEmpty() {
		return
	}
	sh := shardOf(v)
	out[sh] = append(out[sh], delta{kind: dPt, node: node, target: v, set: set})
}

// emitStore applies [STORE]^F and [SU/WU]^F read-only, one merged delta
// per yielded (object, version).
func (e *parEngine) emitStore(out *[ShardCount][]delta, in *ir.Instr) {
	g := e.Graph
	l := in.Label
	p, q := in.Uses[0], in.Uses[1]
	ptp := e.PointsTo(p)
	ptq := e.PointsTo(q)

	strong := false
	if single, ok := g.Aux.PointsTo(p).Single(); ok && g.IsSingleton(ir.ID(single)) {
		strong = true
	}

	g.MSSA.ChiOf(l).ForEach(func(o32 uint32) {
		o := ir.ID(o32)
		yv := e.ver.yieldOf(l, o)
		if yv == meld.Epsilon {
			return
		}
		acc := bitset.New()
		if strong {
			acc.UnionWith(ptq)
		} else {
			acc.UnionWith(e.ConsumedSet(l, o))
			if ptp.Has(o32) {
				acc.UnionWith(ptq)
			}
		}
		if acc.IsEmpty() || acc.SubsetOf(e.ptvOf(o, yv)) {
			return
		}
		sh := shardOf(o)
		out[sh] = append(out[sh], delta{kind: dPtv, node: l, target: o, ver: yv, set: acc})
	})
}

// shardDeltaStats accumulates one shard's apply-phase counter bumps,
// merged into Stats in shard order after the barrier.
type shardDeltaStats struct {
	propagations int
	changed      int
	versionProps int
}

// applyPhase hands each shard's sorted batch to exactly one worker at a
// time; the shard owner exclusively mutates the pt entries and the ptv
// shard map it owns, runs the intra-shard transitive version-reliance
// propagation, and collects the nodes to reschedule. Charges go to the
// shard's ledger slot via TickShard, so a breach here carries the
// shard's identity into the degradation provenance.
func (e *parEngine) applyPhase(perShard *[ShardCount][]delta) (*[ShardCount][]uint32, error) {
	// Owner-exclusive writes need the pt slice to already span every
	// delta target: grow once, before workers start.
	maxV := ir.ID(len(e.pt) - 1)
	for sh := range perShard {
		for _, d := range perShard[sh] {
			if d.kind == dPt && d.target > maxV {
				maxV = d.target
			}
		}
	}
	if int(maxV) >= len(e.pt) {
		grown := make([]*bitset.Sparse, maxV+1)
		copy(grown, e.pt)
		e.pt = grown
	}

	var next [ShardCount][]uint32
	var stats [ShardCount]shardDeltaStats
	var errs [ShardCount]error

	var cursor atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for wi := 0; wi < e.workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				sh := int(cursor.Add(1)) - 1
				if sh >= ShardCount {
					return
				}
				batch := perShard[sh]
				if len(batch) == 0 {
					continue
				}
				if err := guard.TickShard(e.ctx, "solve", sh, int64(len(batch))); err != nil {
					errs[sh] = err
					stop.Store(true)
					return
				}
				e.ledger[sh].Add(int64(len(batch)))
				sort.Slice(batch, func(i, j int) bool { return deltaLess(batch[i], batch[j]) })
				e.applyBatch(sh, batch, &stats[sh], &next[sh])
			}
		}()
	}
	wg.Wait()
	for sh := range errs {
		if errs[sh] != nil {
			return nil, errs[sh]
		}
	}
	for sh := range stats {
		e.Stats.Propagations += stats[sh].propagations
		e.Stats.Changed += stats[sh].changed
		e.Stats.VersionProps += stats[sh].versionProps
	}
	return &next, nil
}

// applyBatch applies one shard's canonical batch. For pt deltas the
// shard owns pt[v] for every v ≡ sh (mod ShardCount); for ptv deltas it
// owns the shard's map and the whole reliance closure of its objects.
func (e *parEngine) applyBatch(sh int, batch []delta, st *shardDeltaStats, next *[]uint32) {
	g := e.Graph
	attr := e.sattr[sh]
	for _, d := range batch {
		if d.kind == dPt {
			st.propagations++
			attr.Prop(0)
			tgt := e.pt[d.target]
			if tgt == nil {
				tgt = bitset.New()
				e.pt[d.target] = tgt
			}
			if tgt.UnionWith(d.set) {
				st.changed++
				*next = append(*next, g.UsersOf(d.target)...)
			}
			continue
		}
		// dPtv: the sequential growVersion, with pushes redirected to
		// the shard's reschedule list. The reliance closure stays
		// inside the object, hence inside this shard.
		o := d.target
		st.propagations++
		attr.Prop(uint32(o))
		if !e.ptvSet(o, d.ver).UnionWith(d.set) {
			continue
		}
		st.changed++
		queue := []meld.Version{d.ver}
		//vsfs:lint-ignore guardtick version cascade is finite (monotone sets over prelabelled versions) and metered at the next shard checkpoint; see DESIGN §15
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			key := verKey{obj: o, ver: v}
			*next = append(*next, e.stmtReliance[key]...)
			cur := e.ptv[sh][key]
			for _, to := range e.verReliance[key] {
				st.propagations++
				st.versionProps++
				attr.Prop(uint32(o))
				if e.ptvSet(o, to).UnionWith(cur) {
					st.changed++
					queue = append(queue, to)
				}
			}
		}
	}
}

// sequentialStep processes the round's deferred nodes in ascending
// label order through the sequential engine: call-graph wiring,
// interprocedural version constraints, field-object materialisation.
// Their pops were already charged in the process phase, so the step
// polls governance without charging steps.
func (e *parEngine) sequentialStep(deferred []uint32) error {
	prog := e.Graph.Prog
	for i, l := range deferred {
		if i%cancelCheckInterval == 0 {
			if err := guard.Tick(e.ctx, "solve", 0); err != nil {
				return err
			}
		}
		e.process(prog.Instrs[l])
	}
	return nil
}

// assembleNext merges the per-shard reschedule lists (in shard order)
// with whatever the sequential step pushed, into a sorted deduplicated
// frontier.
func (e *parEngine) assembleNext(shardNext *[ShardCount][]uint32) []uint32 {
	var out []uint32
	for sh := range shardNext {
		out = append(out, shardNext[sh]...)
	}
	out = append(out, e.drainWork()...)
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dst := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[dst] = out[i]
			dst++
		}
	}
	return out[:dst]
}

// runVersioningParallel is the parallel meld-labelling pass: a
// sequential prelabelling scan builds each object's worklist seeds in
// label order, then workers drain the ShardCount object partitions,
// each shard running its objects' fixpoints (ascending object ID)
// against a private meld.Table. The merged consume/yield functions
// carry per-shard version handles — meaningless across objects, which
// is fine: the main phase only ever compares versions of one object,
// under keys that include the object.
func runVersioningParallel(ctx context.Context, g *svfg.Graph, workers int, e *parEngine) (*versioning, error) {
	start := time.Now()
	n := len(g.Prog.Instrs)

	perObj := make(map[ir.ID][]prelabel)
	var shardObjs [ShardCount][]ir.ID
	add := func(l uint32, o ir.ID, isDelta bool) {
		if len(perObj[o]) == 0 {
			shardObjs[shardOf(o)] = append(shardObjs[shardOf(o)], o)
		}
		perObj[o] = append(perObj[o], prelabel{l: l, delta: isDelta})
	}
	for l := uint32(1); l < uint32(n); l++ {
		in := g.Prog.Instrs[l]
		if in.Op == ir.Store {
			g.MSSA.ChiOf(l).ForEach(func(o uint32) { add(l, ir.ID(o), false) })
		}
		if g.Delta[l] {
			g.MSSA.ChiOf(l).ForEach(func(o uint32) { add(l, ir.ID(o), true) })
		}
	}
	for sh := range shardObjs {
		objs := shardObjs[sh]
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	}

	shards := make([]*versioning, ShardCount)
	for sh := range shards {
		shards[sh] = &versioning{
			tab:     meld.NewTable(),
			consume: make([]map[ir.ID]meld.Version, n),
			yield:   make([]map[ir.ID]meld.Version, n),
		}
	}

	var errs [ShardCount]error
	var cursor atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				sh := int(cursor.Add(1)) - 1
				if sh >= ShardCount {
					return
				}
				if len(shardObjs[sh]) == 0 {
					continue
				}
				if err := versionShard(ctx, g, e, shards[sh], sh, shardObjs[sh], perObj); err != nil {
					errs[sh] = err
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for sh := range errs {
		if errs[sh] != nil {
			return nil, errs[sh]
		}
	}

	// Merge in shard order. Melding is complete, so the merged
	// versioning carries no table; per-shard distinct counts dedupe
	// the shared ε. Key sets are disjoint across shards (objects are
	// partitioned), so map inserts commute.
	v := &versioning{
		consume: make([]map[ir.ID]meld.Version, n),
		yield:   make([]map[ir.ID]meld.Version, n),
	}
	v.stats.DistinctVersions = 1
	for _, sv := range shards {
		for l := 0; l < n; l++ {
			for o, ver := range sv.consume[l] {
				v.setConsume(uint32(l), o, ver)
			}
			for o, ver := range sv.yield[l] {
				v.setYield(uint32(l), o, ver)
			}
		}
		v.stats.Prelabels += sv.stats.Prelabels
		v.stats.MeldOps += sv.stats.MeldOps
		v.stats.Iterations += sv.stats.Iterations
		v.stats.WorklistHW = max(v.stats.WorklistHW, sv.stats.WorklistHW)
		v.stats.DistinctVersions += sv.tab.Distinct() - 1
		ts := sv.tab.Stats()
		v.stats.Meld.Melds += ts.Melds
		v.stats.Meld.CacheHits += ts.CacheHits
		v.stats.Meld.SubsetFast += ts.SubsetFast
		v.stats.Meld.NewLabels += ts.NewLabels
	}
	for _, m := range v.consume {
		v.stats.ConsumeEntries += len(m)
	}
	for _, m := range v.yield {
		v.stats.YieldEntries += len(m)
	}
	v.stats.Duration = time.Since(start)
	return v, nil
}

// versionShard runs one shard's meld-labelling fixpoints: every object
// in ascending ID order, each to completion — per-object fixpoints are
// fully independent, so intra-shard sequencing costs nothing and keeps
// the schedule canonical.
func versionShard(ctx context.Context, g *svfg.Graph, e *parEngine, sv *versioning, sh int, objs []ir.ID, perObj map[ir.ID][]prelabel) error {
	attr := e.sattr[sh]
	ticks := 0
	var work worklist
	for _, o := range objs {
		for _, pe := range perObj[o] {
			if pe.delta {
				sv.setConsume(pe.l, o, sv.tab.NewAtom())
			} else {
				sv.setYield(pe.l, o, sv.tab.NewAtom())
			}
			sv.stats.Prelabels++
			work.push(pe.l)
		}
		for {
			if ticks%cancelCheckInterval == 0 {
				if err := guard.TickShard(ctx, "solve", sh, cancelCheckInterval); err != nil {
					return err
				}
				e.ledger[sh].Add(cancelCheckInterval)
			}
			ticks++
			l, ok := work.pop()
			if !ok {
				break
			}
			sv.stats.Iterations++
			sv.stats.WorklistHW = max(sv.stats.WorklistHW, work.hw)
			in := g.Prog.Instrs[l]
			// [INTERNAL]^V: non-store nodes yield what they consume.
			if in.Op != ir.Store {
				cv := sv.consumeOf(l, o)
				if cv != meld.Epsilon && sv.yieldOf(l, o) != cv {
					sv.setYield(l, o, cv)
				}
			}
			yv := sv.yieldOf(l, o)
			if yv == meld.Epsilon {
				continue
			}
			// [EXTERNAL]^V: meld into indirect successors' consumes,
			// except frozen δ consumes.
			for _, succ := range g.IndirSuccs(l, o) {
				if g.Delta[succ] {
					continue
				}
				old := sv.consumeOf(succ, o)
				melded := sv.tab.Meld(old, yv)
				if melded != old {
					sv.setConsume(succ, o, melded)
					sv.stats.MeldOps++
					attr.Meld(uint32(o))
					work.push(succ)
				}
			}
		}
	}
	return nil
}
