package memssa

import (
	"fmt"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/workload"
)

func build(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	aux := andersen.Analyze(prog)
	return prog, Build(prog, aux)
}

// findInstr returns the nth instruction with the given op.
func findInstr(prog *ir.Program, op ir.Op, n int) *ir.Instr {
	for _, in := range prog.Instrs {
		if in != nil && in.Op == op {
			if n == 0 {
				return in
			}
			n--
		}
	}
	return nil
}

func objByName(prog *ir.Program, name string) ir.ID {
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsObject(id) && prog.Value(id).Name == name {
			return id
		}
	}
	return ir.None
}

func hasEdge(r *Result, from, to uint32, obj ir.ID) bool {
	for _, e := range r.Edges {
		if e.From == from && e.To == to && e.Obj == obj {
			return true
		}
	}
	return false
}

func TestFigure1ChiMuAndEdges(t *testing.T) {
	// Figure 1's shape: store then load of the same object.
	prog, r := build(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  store p, x
  y = load p
  ret
}
`)
	a := objByName(prog, "a")
	store := findInstr(prog, ir.Store, 0)
	load := findInstr(prog, ir.Load, 0)
	if !r.ChiOf(store.Label).Has(uint32(a)) {
		t.Errorf("store not annotated with χ(a); chi = %v", r.ChiOf(store.Label))
	}
	if !r.MuOf(load.Label).Has(uint32(a)) {
		t.Errorf("load not annotated with μ(a); mu = %v", r.MuOf(load.Label))
	}
	if !hasEdge(r, store.Label, load.Label, a) {
		t.Errorf("missing indirect edge store --a--> load; edges = %v", r.Edges)
	}
	if len(r.MemPhis) != 0 {
		t.Errorf("straight-line code got %d memphis", len(r.MemPhis))
	}
}

func TestMemPhiAtJoin(t *testing.T) {
	prog, r := build(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  y = alloc c 0
  br left, right
left:
  store p, x
  jmp join
right:
  store p, y
  jmp join
join:
  v = load p
  ret
}
`)
	a := objByName(prog, "a")
	if len(r.MemPhis) != 1 {
		t.Fatalf("memphis = %d, want 1", len(r.MemPhis))
	}
	phi := r.MemPhis[0]
	if phi.Obj != a {
		t.Errorf("memphi object = %s, want a", prog.NameOf(phi.Obj))
	}
	if phi.Block.Name != "join" {
		t.Errorf("memphi in block %q, want join", phi.Block.Name)
	}
	// Both stores feed the phi; the phi feeds the load.
	s1 := findInstr(prog, ir.Store, 0)
	s2 := findInstr(prog, ir.Store, 1)
	load := findInstr(prog, ir.Load, 0)
	if !hasEdge(r, s1.Label, phi.Label, a) || !hasEdge(r, s2.Label, phi.Label, a) {
		t.Errorf("stores do not feed memphi: %v", r.Edges)
	}
	if !hasEdge(r, phi.Label, load.Label, a) {
		t.Errorf("memphi does not feed load: %v", r.Edges)
	}
	if hasEdge(r, s1.Label, load.Label, a) {
		t.Errorf("store 1 directly feeds load despite memphi")
	}
}

func TestStoreWeakUpdateConsumesPreviousDef(t *testing.T) {
	prog, r := build(t, `
func main() {
entry:
  p = alloc a 0
  q = phi(p, p)
  x = alloc b 0
  y = alloc c 0
  store p, x
  store q, y
  ret
}
`)
	a := objByName(prog, "a")
	s1 := findInstr(prog, ir.Store, 0)
	s2 := findInstr(prog, ir.Store, 1)
	if !hasEdge(r, s1.Label, s2.Label, a) {
		t.Errorf("second store does not consume first store's def of a: %v", r.Edges)
	}
}

func TestLoopMemPhi(t *testing.T) {
	prog, r := build(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  jmp header
header:
  br body, exit
body:
  store p, x
  jmp header
exit:
  v = load p
  ret
}
`)
	a := objByName(prog, "a")
	if len(r.MemPhis) != 1 {
		t.Fatalf("memphis = %d, want 1 at loop header", len(r.MemPhis))
	}
	phi := r.MemPhis[0]
	if phi.Block.Name != "header" {
		t.Errorf("memphi in %q, want header", phi.Block.Name)
	}
	store := findInstr(prog, ir.Store, 0)
	load := findInstr(prog, ir.Load, 0)
	if !hasEdge(r, store.Label, phi.Label, a) {
		t.Error("store does not feed loop-header memphi")
	}
	if !hasEdge(r, phi.Label, load.Label, a) {
		t.Error("memphi does not feed post-loop load")
	}
	if !hasEdge(r, phi.Label, store.Label, a) {
		t.Error("memphi does not feed the store's weak update")
	}
}

func TestInterproceduralDirectCall(t *testing.T) {
	prog, r := build(t, `
func setter(q) {
entry:
  x = alloc tgt 0
  store q, x
  ret
}
func main() {
entry:
  p = alloc a 0
  call setter(p)
  v = load p
  ret
}
`)
	a := objByName(prog, "a")
	setter := prog.FuncByName("setter")

	if !r.FormalOut[setter].Has(uint32(a)) {
		t.Fatalf("FormalOut(setter) = %v, want to contain a", r.FormalOut[setter])
	}
	if !r.FormalIn[setter].Has(uint32(a)) {
		t.Errorf("FormalIn(setter) = %v, want to contain a (mod ⊆ in)", r.FormalIn[setter])
	}

	call := findInstr(prog, ir.Call, 0)
	callRet := r.CallRets[call]
	if callRet == nil {
		t.Fatal("no CallRet for modifying call")
	}
	if callRet.Block != call.Block {
		t.Error("CallRet not in the call's block")
	}

	// Chain: entry-of-main χ(a)? No: a is defined only in main before the
	// call; call sends def to setter entry; setter's store defines a;
	// setter exit μ's a; exit feeds CallRet; CallRet feeds load.
	entry := setter.EntryInstr.Label
	exit := setter.ExitInstr.Label
	if !hasEdge(r, call.Label, entry, a) {
		t.Errorf("call does not send a into setter entry: %v", r.Edges)
	}
	store := findInstr(prog, ir.Store, 0)
	if !hasEdge(r, setter.EntryInstr.Label, store.Label, a) {
		t.Errorf("setter entry def does not reach store weak update")
	}
	if !hasEdge(r, store.Label, exit, a) {
		t.Errorf("store does not reach setter exit μ")
	}
	if !hasEdge(r, exit, callRet.Label, a) {
		t.Errorf("setter exit does not feed CallRet")
	}
	load := findInstr(prog, ir.Load, 0)
	if !hasEdge(r, callRet.Label, load.Label, a) {
		t.Errorf("CallRet does not feed the load")
	}
	// The value sent into the callee must come from before the call, not
	// from the CallRet.
	if hasEdge(r, callRet.Label, entry, a) {
		t.Error("CallRet feeds callee entry (actual-out leaked into actual-in)")
	}
}

func TestTransitiveModRef(t *testing.T) {
	prog, r := build(t, `
func inner(q) {
entry:
  x = alloc tgt 0
  store q, x
  ret
}
func outer(w) {
entry:
  call inner(w)
  ret
}
func main() {
entry:
  p = alloc a 0
  call outer(p)
  v = load p
  ret
}
`)
	a := objByName(prog, "a")
	outer := prog.FuncByName("outer")
	if !r.FormalOut[outer].Has(uint32(a)) {
		t.Errorf("FormalOut(outer) = %v missing a (transitive mod)", r.FormalOut[outer])
	}
	// Full chain main → outer → inner → back works: load sees tgt via
	// CallRet chain. Just check the return chain into main.
	var mainCall *ir.Instr
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.Call {
			mainCall = in
		}
	})
	ret := r.CallRets[mainCall]
	if ret == nil {
		t.Fatal("main's call has no CallRet")
	}
	if !hasEdge(r, outer.ExitInstr.Label, ret.Label, a) {
		t.Error("outer exit does not feed main's CallRet")
	}
}

func TestEntryNormalization(t *testing.T) {
	// A back edge into the first block forces entry splitting.
	prog, r := build(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  store p, x
  br entry, out
out:
  v = load p
  ret
}
`)
	f := prog.FuncByName("main")
	if len(f.Entry.Preds) != 0 {
		t.Fatalf("entry still has %d preds after normalization", len(f.Entry.Preds))
	}
	if f.Entry.Instrs[0] != f.EntryInstr {
		t.Error("FunEntry not in new entry block")
	}
	// The loop on the old entry block needs a memphi for a.
	a := objByName(prog, "a")
	found := false
	for _, phi := range r.MemPhis {
		if phi.Obj == a {
			found = true
		}
	}
	if !found {
		t.Errorf("no memphi for a despite loop; memphis = %v", r.MemPhis)
	}
}

func TestIndirectCallNotWiredAtBuild(t *testing.T) {
	prog, r := build(t, `
func setter(q) {
entry:
  x = alloc tgt 0
  store q, x
  ret
}
func main() {
entry:
  p = alloc a 0
  fp = funcaddr setter
  calli fp(p)
  v = load p
  ret
}
`)
	setter := prog.FuncByName("setter")
	call := findInstr(prog, ir.Call, 0)
	a := objByName(prog, "a")
	// μ/χ annotated from aux targets...
	if !r.MuOf(call.Label).Has(uint32(a)) {
		t.Error("indirect call not annotated with μ(a)")
	}
	ret := r.CallRets[call]
	if ret == nil {
		t.Fatal("indirect call without CallRet despite aux targets")
	}
	// ...but interprocedural edges are left to on-the-fly resolution.
	if hasEdge(r, call.Label, setter.EntryInstr.Label, a) {
		t.Error("indirect call wired at build time")
	}
	if hasEdge(r, setter.ExitInstr.Label, ret.Label, a) {
		t.Error("indirect return wired at build time")
	}
}

// Every def-use edge must be object-consistent: the source defines the
// object (χ) and the target uses or redefines it (μ, χ, or memphi
// operand); checked over random programs.
func TestQuickEdgeConsistency(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := workload.Random(seed, workload.DefaultRandomConfig())
			aux := andersen.Analyze(prog)
			r := Build(prog, aux)
			for _, e := range r.Edges {
				from := prog.Instrs[e.From]
				to := prog.Instrs[e.To]
				if from == nil || to == nil {
					t.Fatalf("edge with dangling label: %+v", e)
				}
				// Sources define the object, except interprocedural
				// sends (call → entry) and returns (exit → callret).
				srcOK := r.ChiOf(e.From).Has(uint32(e.Obj)) ||
					from.Op == ir.Call || from.Op == ir.FunExit
				if !srcOK {
					t.Errorf("edge source %v does not define %s", from.Op, prog.NameOf(e.Obj))
				}
				dstOK := r.MuOf(e.To).Has(uint32(e.Obj)) ||
					r.ChiOf(e.To).Has(uint32(e.Obj)) ||
					(to.Op == ir.MemPhi && to.Obj == e.Obj) ||
					to.Op == ir.FunEntry
				if !dstOK {
					t.Errorf("edge target %v does not use %s", to.Op, prog.NameOf(e.Obj))
				}
			}
		})
	}
}

func TestLabelsDenseAfterBuild(t *testing.T) {
	prog, _ := build(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  br l, r
l:
  store p, x
  jmp j
r:
  store p, x2
  jmp j
j:
  v = load p
  ret
}
`)
	for l, in := range prog.Instrs {
		if l == 0 {
			continue
		}
		if in == nil || int(in.Label) != l {
			t.Fatalf("labels not dense after memssa (slot %d)", l)
		}
	}
}
