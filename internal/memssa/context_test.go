package memssa

import (
	"context"
	"errors"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/irparse"
)

const ctxFixture = `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  store p, x
  y = load p
  ret
}
`

func TestBuildContextCancelled(t *testing.T) {
	prog, err := irparse.Parse(ctxFixture)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	aux := andersen.Analyze(prog)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BuildContext(ctx, prog, aux)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildContext on cancelled ctx: res=%v err=%v, want context.Canceled", res, err)
	}
}

func TestBuildContextMatchesBuild(t *testing.T) {
	parse := func() (*Result, error) {
		prog, err := irparse.Parse(ctxFixture)
		if err != nil {
			return nil, err
		}
		aux := andersen.Analyze(prog)
		return BuildContext(context.Background(), prog, aux)
	}
	a, err := parse()
	if err != nil {
		t.Fatalf("BuildContext: %v", err)
	}
	b, err := parse()
	if err != nil {
		t.Fatalf("BuildContext: %v", err)
	}
	if len(a.Edges) == 0 || len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ or empty: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a.Edges[i], b.Edges[i])
		}
	}
}
