// Package memssa builds the memory SSA form over address-taken objects:
// it computes transitive mod/ref summaries from the auxiliary analysis,
// annotates instructions with χ (may-define) and μ (may-use) sets,
// inserts MEMPHI instructions at iterated dominance frontiers, and then
// renames per-object definitions along the dominator tree to produce the
// indirect def-use chains that become the SVFG's indirect value-flow
// edges.
package memssa

import (
	"context"
	"sort"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/cfg"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
)

// cancelCheckInterval is how many fixpoint iterations pass between
// context/budget polls inside the mod/ref worklist.
const cancelCheckInterval = 1024

// IndirEdge is one indirect value-flow: the definition of Obj at From
// reaches a use (μ, the previous-version operand of a χ, or a MEMPHI
// operand) at To. From and To are instruction labels.
type IndirEdge struct {
	From, To uint32
	Obj      ir.ID
}

// Result is the memory SSA form of a program.
type Result struct {
	Prog *ir.Program
	Aux  *andersen.Result

	// Mu and Chi are label-indexed: the objects an instruction may use
	// and may define. Loads μ their pointees; stores χ their pointees;
	// call sites μ the callees' FormalIn and χ their FormalOut; FUNENTRY
	// χ's FormalIn; FUNEXIT μ's FormalOut; a MEMPHI χ's its object.
	Mu  []*bitset.Sparse
	Chi []*bitset.Sparse

	// FormalIn(f) = ref*(f) ∪ mod*(f): objects whose definitions flow
	// into f at its entry. FormalOut(f) = mod*(f): objects whose
	// definitions flow back to callers at its exit.
	FormalIn  map[*ir.Function]*bitset.Sparse
	FormalOut map[*ir.Function]*bitset.Sparse

	// Edges are the intraprocedural indirect def-use chains plus the
	// interprocedural chains of direct calls. Chains for indirect calls
	// are added during flow-sensitive solving (on-the-fly call graph).
	Edges []IndirEdge

	// MemPhis lists the inserted MEMPHI instructions.
	MemPhis []*ir.Instr

	// CallRets maps each CALL instruction to its companion CallRet node
	// (SVF's ActualOUT), present when the call may modify objects.
	CallRets map[*ir.Instr]*ir.Instr
}

// MuOf returns μ(ℓ); never nil.
func (r *Result) MuOf(label uint32) *bitset.Sparse {
	if s := r.Mu[label]; s != nil {
		return s
	}
	return empty
}

// ChiOf returns χ(ℓ); never nil.
func (r *Result) ChiOf(label uint32) *bitset.Sparse {
	if s := r.Chi[label]; s != nil {
		return s
	}
	return empty
}

var empty = bitset.New()

// Build constructs the memory SSA form. It inserts MEMPHI instructions
// into prog's blocks and renumbers instruction labels.
func Build(prog *ir.Program, aux *andersen.Result) *Result {
	res, err := BuildContext(context.Background(), prog, aux)
	if err != nil {
		// Unreachable: a background context carries no deadline, budget
		// or fault plan, so construction cannot be interrupted.
		panic(err)
	}
	return res
}

// BuildContext is Build with cooperative cancellation: construction
// polls ctx (and any guard budget or fault plan attached to it) between
// passes and periodically inside the mod/ref fixpoint, returning the
// context or budget error instead of a Result.
func BuildContext(ctx context.Context, prog *ir.Program, aux *andersen.Result) (*Result, error) {
	b := &builder{
		ctx:  ctx,
		prog: prog,
		aux:  aux,
		res: &Result{
			Prog:      prog,
			Aux:       aux,
			FormalIn:  make(map[*ir.Function]*bitset.Sparse),
			FormalOut: make(map[*ir.Function]*bitset.Sparse),
			CallRets:  make(map[*ir.Instr]*ir.Instr),
		},
		edgeSeen: make(map[IndirEdge]struct{}),
	}
	for _, pass := range []func() error{
		func() error { b.normalizeEntries(); return nil },
		b.modRef,
		func() error { b.insertCallRets(); return nil },
		func() error { b.placeMemPhis(); return nil },
		func() error { prog.Renumber(); return nil },
		func() error { b.annotate(); return nil },
		b.rename,
		func() error { b.interprocDirectCalls(); return nil },
	} {
		if err := b.tick(0); err != nil {
			return nil, err
		}
		if err := pass(); err != nil {
			return nil, err
		}
	}
	return b.res, nil
}

type builder struct {
	ctx  context.Context
	prog *ir.Program
	aux  *andersen.Result
	res  *Result

	mod map[*ir.Function]*bitset.Sparse
	ref map[*ir.Function]*bitset.Sparse

	edgeSeen map[IndirEdge]struct{}
}

func (b *builder) tick(n int64) error {
	return guard.Tick(b.ctx, "memssa", n)
}

// normalizeEntries guarantees no entry block has CFG predecessors, so
// MEMPHI placement never competes with FUNENTRY. A fresh entry block is
// spliced in front when needed.
func (b *builder) normalizeEntries() {
	for _, f := range b.prog.Funcs {
		old := f.Entry
		if len(old.Preds) == 0 {
			continue
		}
		ne := &ir.Block{Name: old.Name + ".pre", Parent: f}
		// Move FUNENTRY into the new block.
		if len(old.Instrs) > 0 && old.Instrs[0] == f.EntryInstr {
			old.Instrs = old.Instrs[1:]
		}
		f.EntryInstr.Block = ne
		ne.Instrs = []*ir.Instr{f.EntryInstr}
		ne.AddSucc(old)
		f.Entry = ne
		f.Blocks = append([]*ir.Block{ne}, f.Blocks...)
		for i, blk := range f.Blocks {
			blk.Index = i
		}
	}
}

// modRef computes transitive mod/ref summaries over the auxiliary call
// graph with a worklist fixpoint.
func (b *builder) modRef() error {
	b.mod = make(map[*ir.Function]*bitset.Sparse)
	b.ref = make(map[*ir.Function]*bitset.Sparse)
	callers := make(map[*ir.Function][]*ir.Function)

	for _, f := range b.prog.Funcs {
		b.mod[f] = bitset.New()
		b.ref[f] = bitset.New()
	}
	for _, f := range b.prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			switch in.Op {
			case ir.Store:
				b.mod[f].UnionWith(b.aux.PointsTo(in.Uses[0]))
			case ir.Load:
				b.ref[f].UnionWith(b.aux.PointsTo(in.Uses[0]))
			case ir.Call:
				for _, callee := range b.aux.CalleesOf(in) {
					callers[callee] = append(callers[callee], f)
				}
			}
		})
	}

	work := append([]*ir.Function(nil), b.prog.Funcs...)
	inWork := make(map[*ir.Function]bool, len(work))
	for _, f := range work {
		inWork[f] = true
	}
	for steps := 0; len(work) > 0; steps++ {
		if steps%cancelCheckInterval == 0 && steps > 0 {
			if err := b.tick(cancelCheckInterval); err != nil {
				return err
			}
		}
		g := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[g] = false
		for _, f := range callers[g] {
			changed := b.mod[f].UnionWith(b.mod[g])
			if b.ref[f].UnionWith(b.ref[g]) {
				changed = true
			}
			if changed && !inWork[f] {
				inWork[f] = true
				work = append(work, f)
			}
		}
	}

	for _, f := range b.prog.Funcs {
		fin := b.ref[f].Clone()
		fin.UnionWith(b.mod[f])
		b.res.FormalIn[f] = fin
		b.res.FormalOut[f] = b.mod[f].Clone()
	}
	return nil
}

// insertCallRets gives every call that may modify objects (per the
// auxiliary analysis) a companion CallRet node placed right after it, so
// returned definitions merge after the call rather than into the values
// sent to the callee.
func (b *builder) insertCallRets() {
	for _, f := range b.prog.Funcs {
		for _, blk := range f.Blocks {
			out := make([]*ir.Instr, 0, len(blk.Instrs))
			for _, in := range blk.Instrs {
				out = append(out, in)
				if in.Op != ir.Call {
					continue
				}
				chi := bitset.New()
				for _, callee := range b.aux.CalleesOf(in) {
					chi.UnionWith(b.res.FormalOut[callee])
				}
				if chi.IsEmpty() {
					continue
				}
				ret := &ir.Instr{Op: ir.CallRet, CallSite: in, Block: blk, Parent: f}
				b.res.CallRets[in] = ret
				out = append(out, ret)
			}
			blk.Instrs = out
		}
	}
}

// calleeSet unions a per-callee set over a call's auxiliary targets.
func (b *builder) calleeSet(call *ir.Instr, of map[*ir.Function]*bitset.Sparse) *bitset.Sparse {
	out := bitset.New()
	for _, callee := range b.aux.CalleesOf(call) {
		out.UnionWith(of[callee])
	}
	return out
}

// chiObjectsAt returns the χ set an instruction will receive, before
// MEMPHI insertion (used for phi placement).
func (b *builder) chiObjectsAt(in *ir.Instr) *bitset.Sparse {
	switch in.Op {
	case ir.Store:
		return b.aux.PointsTo(in.Uses[0])
	case ir.CallRet:
		return b.calleeSet(in.CallSite, b.res.FormalOut)
	case ir.FunEntry:
		return b.res.FormalIn[in.Parent]
	}
	return empty
}

// placeMemPhis inserts MEMPHI instructions at the iterated dominance
// frontier of each object's χ blocks.
func (b *builder) placeMemPhis() {
	for _, f := range b.prog.Funcs {
		info := cfg.Compute(f)

		// Blocks containing a χ for each object.
		defBlocks := make(map[ir.ID][]*ir.Block)
		f.ForEachInstr(func(in *ir.Instr) {
			if !info.Reachable(in.Block) {
				return
			}
			b.chiObjectsAt(in).ForEach(func(o uint32) {
				blks := defBlocks[ir.ID(o)]
				if len(blks) == 0 || blks[len(blks)-1] != in.Block {
					defBlocks[ir.ID(o)] = append(blks, in.Block)
				}
			})
		})

		// Deterministic object order.
		objs := make([]ir.ID, 0, len(defBlocks))
		for o := range defBlocks {
			objs = append(objs, o)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })

		phiAt := make(map[*ir.Block][]*ir.Instr)
		for _, o := range objs {
			placed := make(map[*ir.Block]bool)
			work := append([]*ir.Block(nil), defBlocks[o]...)
			for len(work) > 0 {
				blk := work[len(work)-1]
				work = work[:len(work)-1]
				for _, df := range info.Frontier(blk) {
					if placed[df] {
						continue
					}
					placed[df] = true
					phi := &ir.Instr{Op: ir.MemPhi, Obj: o, Block: df, Parent: f}
					phiAt[df] = append(phiAt[df], phi)
					b.res.MemPhis = append(b.res.MemPhis, phi)
					// The phi is itself a definition of o.
					work = append(work, df)
				}
			}
		}
		for blk, phis := range phiAt {
			blk.Instrs = append(phis, blk.Instrs...)
		}
	}
}

// annotate fills label-indexed Mu/Chi after renumbering.
func (b *builder) annotate() {
	n := len(b.prog.Instrs)
	b.res.Mu = make([]*bitset.Sparse, n)
	b.res.Chi = make([]*bitset.Sparse, n)
	for _, f := range b.prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			switch in.Op {
			case ir.Load:
				b.res.Mu[in.Label] = b.aux.PointsTo(in.Uses[0]).Clone()
			case ir.Store:
				b.res.Chi[in.Label] = b.aux.PointsTo(in.Uses[0]).Clone()
			case ir.Call:
				b.res.Mu[in.Label] = b.calleeSet(in, b.res.FormalIn)
			case ir.CallRet:
				b.res.Chi[in.Label] = b.calleeSet(in.CallSite, b.res.FormalOut)
			case ir.FunEntry:
				b.res.Chi[in.Label] = b.res.FormalIn[in.Parent].Clone()
			case ir.FunExit:
				b.res.Mu[in.Label] = b.res.FormalOut[in.Parent].Clone()
			case ir.MemPhi:
				b.res.Chi[in.Label] = bitset.Of(uint32(in.Obj))
			}
		})
	}
}

func (b *builder) addEdge(from, to uint32, obj ir.ID) {
	e := IndirEdge{From: from, To: to, Obj: obj}
	if _, dup := b.edgeSeen[e]; dup {
		return
	}
	b.edgeSeen[e] = struct{}{}
	b.res.Edges = append(b.res.Edges, e)
}

// rename walks each function's dominator tree, maintaining a stack of
// reaching definitions per object, and records def→use edges.
func (b *builder) rename() error {
	for _, f := range b.prog.Funcs {
		if err := b.tick(int64(len(f.Blocks))); err != nil {
			return err
		}
		info := cfg.Compute(f)

		// Dominator-tree children.
		children := make(map[*ir.Block][]*ir.Block)
		for _, blk := range f.Blocks {
			if idom := info.Idom(blk); idom != nil {
				children[idom] = append(children[idom], blk)
			}
		}

		stacks := make(map[ir.ID][]uint32)
		top := func(o ir.ID) (uint32, bool) {
			s := stacks[o]
			if len(s) == 0 {
				return 0, false
			}
			return s[len(s)-1], true
		}

		var visit func(blk *ir.Block)
		visit = func(blk *ir.Block) {
			var pushed []ir.ID
			for _, in := range blk.Instrs {
				if in.Op == ir.MemPhi {
					stacks[in.Obj] = append(stacks[in.Obj], in.Label)
					pushed = append(pushed, in.Obj)
					continue
				}
				b.res.MuOf(in.Label).ForEach(func(o32 uint32) {
					o := ir.ID(o32)
					if d, ok := top(o); ok {
						b.addEdge(d, in.Label, o)
					}
				})
				b.res.ChiOf(in.Label).ForEach(func(o32 uint32) {
					o := ir.ID(o32)
					// The previous version flows into the (weak) update.
					if d, ok := top(o); ok {
						b.addEdge(d, in.Label, o)
					}
					stacks[o] = append(stacks[o], in.Label)
					pushed = append(pushed, o)
				})
			}
			// Feed MEMPHI operands of CFG successors.
			for _, s := range blk.Succs {
				for _, in := range s.Instrs {
					if in.Op != ir.MemPhi {
						break // phis are grouped at the top
					}
					if d, ok := top(in.Obj); ok {
						b.addEdge(d, in.Label, in.Obj)
					}
				}
			}
			for _, c := range children[blk] {
				visit(c)
			}
			for i := len(pushed) - 1; i >= 0; i-- {
				o := pushed[i]
				stacks[o] = stacks[o][:len(stacks[o])-1]
			}
		}
		visit(f.Entry)
	}
	return nil
}

// interprocDirectCalls wires the μ/χ chains across direct calls: the
// definition reaching a call site flows into the callee's FUNENTRY, and
// the definition reaching the callee's FUNEXIT flows back into the call
// site's χ. Indirect calls are wired during flow-sensitive solving.
func (b *builder) interprocDirectCalls() {
	for _, f := range b.prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call || in.Callee == nil {
				return
			}
			callee := in.Callee
			entry, exit := callee.EntryInstr.Label, callee.ExitInstr.Label
			b.res.FormalIn[callee].ForEach(func(o uint32) {
				if b.res.MuOf(in.Label).Has(o) {
					b.addEdge(in.Label, entry, ir.ID(o))
				}
			})
			if ret := b.res.CallRets[in]; ret != nil {
				b.res.FormalOut[callee].ForEach(func(o uint32) {
					if b.res.ChiOf(ret.Label).Has(o) {
						b.addEdge(exit, ret.Label, ir.ID(o))
					}
				})
			}
		})
	}
}
