package workload

import "vsfs/internal/ir"

// Profile is one named benchmark standing in for a program from the
// paper's Table II. The synthetic shape is scaled to roughly 1/40 of the
// paper's SVFG sizes and tuned along the axes that drive the paper's
// result: heap intensity, pointer-chase redundancy (single-object
// duplication), global sharing (mod/ref width), and indirect-call
// density.
type Profile struct {
	Name string
	Desc string
	Seed int64
	Cfg  RandomConfig
}

// Build generates the profile's program.
func (p Profile) Build() *ir.Program { return Random(p.Seed, p.Cfg) }

// Profiles returns the 15 named benchmarks in the paper's Table II
// order.
func Profiles() []Profile {
	base := func(funcs, instrs, globals int) RandomConfig {
		return RandomConfig{
			Funcs:         funcs,
			MaxParams:     3,
			InstrsPerFunc: instrs,
			MaxFields:     3,
			HeapFrac:      0.3,
			IndirectCalls: true,
			Globals:       globals,
			LoopFrac:      0.12,
			BranchFrac:    0.28,
			StoreFrac:     0.4,
			ChainFrac:     0.15,
			ChainLen:      3,
			GlobalBias:    0.15,
			BuilderFrac:   0.05,
		}
	}
	tune := func(cfg RandomConfig, f func(*RandomConfig)) RandomConfig {
		f(&cfg)
		return cfg
	}

	return []Profile{
		{
			Name: "du", Desc: "Disk usage (GNU)", Seed: 101,
			Cfg: tune(base(48, 30, 6), func(c *RandomConfig) {
				c.ChainFrac, c.GlobalBias = 0.25, 0.25 // coreutils share state
				c.CallLocality = 5
			}),
		},
		{
			Name: "ninja", Desc: "Build system", Seed: 102,
			Cfg: tune(base(90, 36, 8), func(c *RandomConfig) {
				// Read-heavy dependency-graph chasing: few distinct stores,
				// many loads sharing their versions.
				c.HeapFrac, c.ChainFrac, c.ChainLen = 0.5, 0.35, 7
				c.BuilderFrac = 0.1
				c.GlobalBias = 0.3
				c.StoreFrac = 0.2
				c.CallLocality = 6
			}),
		},
		{
			Name: "bake", Desc: "Build system", Seed: 103,
			Cfg: tune(base(90, 40, 6), func(c *RandomConfig) {
				// The paper's extreme case: heavy chains over a densely
				// connected heap graph published through globals.
				c.HeapFrac, c.ChainFrac, c.ChainLen, c.BuilderFrac = 0.5, 0.3, 6, 0.22
				c.GlobalBias = 0.4
				c.CallLocality = 8
			}),
		},
		{
			Name: "dpkg", Desc: "Package manager", Seed: 104,
			Cfg: tune(base(60, 32, 10), func(c *RandomConfig) {
				// Easy for SFS: few chains, little heap, modular calls.
				c.HeapFrac, c.ChainFrac, c.GlobalBias = 0.12, 0.04, 0.06
				c.CallLocality = 3
			}),
		},
		{
			Name: "nano", Desc: "Text editor", Seed: 105,
			Cfg: tune(base(66, 34, 10), func(c *RandomConfig) {
				c.ChainFrac, c.GlobalBias, c.BuilderFrac = 0.3, 0.25, 0.08
				c.CallLocality = 5
			}),
		},
		{
			Name: "i3", Desc: "Window manager", Seed: 106,
			Cfg: tune(base(80, 32, 10), func(c *RandomConfig) {
				// Callback tables: handler cells installed and dispatched.
				c.HeapFrac, c.ChainFrac, c.GlobalBias = 0.15, 0.05, 0.05
				c.DispatchFrac = 0.12
				c.CallLocality = 3
			}),
		},
		{
			Name: "psql", Desc: "PostgreSQL frontend", Seed: 107,
			Cfg: tune(base(72, 32, 8), func(c *RandomConfig) {
				c.ChainFrac, c.GlobalBias = 0.12, 0.12
				c.CallLocality = 4
			}),
		},
		{
			Name: "janet", Desc: "Janet compiler", Seed: 108,
			Cfg: tune(base(110, 36, 8), func(c *RandomConfig) {
				c.HeapFrac, c.ChainFrac, c.ChainLen, c.BuilderFrac = 0.5, 0.32, 6, 0.18
				c.GlobalBias = 0.25
				c.CallLocality = 8
			}),
		},
		{
			Name: "astyle", Desc: "Code formatter", Seed: 109,
			Cfg: tune(base(110, 38, 10), func(c *RandomConfig) {
				c.HeapFrac, c.ChainFrac, c.ChainLen, c.GlobalBias = 0.45, 0.38, 7, 0.3
				c.CallLocality = 9
			}),
		},
		{
			Name: "tmux", Desc: "Terminal multiplexer", Seed: 110,
			Cfg: tune(base(120, 36, 12), func(c *RandomConfig) {
				c.ChainFrac, c.GlobalBias, c.BuilderFrac = 0.25, 0.25, 0.16
				c.HeapFrac = 0.45
				c.CallLocality = 6
			}),
		},
		{
			Name: "mruby", Desc: "Ruby interpreter", Seed: 111,
			Cfg: tune(base(110, 36, 8), func(c *RandomConfig) {
				c.HeapFrac, c.BuilderFrac = 0.5, 0.1
				c.ChainFrac, c.ChainLen = 0.3, 5
				c.GlobalBias = 0.3
				c.CallLocality = 6
			}),
		},
		{
			Name: "mutt", Desc: "Terminal email client", Seed: 112,
			Cfg: tune(base(130, 38, 14), func(c *RandomConfig) {
				c.ChainFrac, c.ChainLen, c.GlobalBias = 0.3, 5, 0.3
				c.CallLocality = 8
			}),
		},
		{
			Name: "bash", Desc: "UNIX shell", Seed: 113,
			Cfg: tune(base(120, 36, 12), func(c *RandomConfig) {
				// Very wide global sharing with little pointer-chase
				// redundancy: huge mod/ref sets and dense indirect edges
				// hurt memory far more than versioning can win back time
				// (the paper's bash sees only 1.46x).
				c.GlobalBias, c.ChainFrac, c.ChainLen, c.HeapFrac = 0.5, 0.03, 2, 0.25
				c.StoreFrac = 0.85 // store-dominated: almost every node yields a fresh version
				c.CallLocality = 10
			}),
		},
		{
			Name: "lynx", Desc: "Terminal web browser", Seed: 114,
			Cfg: tune(base(190, 38, 14), func(c *RandomConfig) {
				// The SFS memory killer: global sharing and heap chains.
				// The paper's SFS ran out of memory on lynx.
				c.GlobalBias, c.ChainFrac, c.ChainLen, c.HeapFrac, c.BuilderFrac = 0.4, 0.3, 6, 0.45, 0.1
				c.CallLocality = 10
			}),
		},
		{
			Name: "hyriseConsole", Desc: "Hyrise DB frontend", Seed: 116,
			Cfg: tune(base(170, 40, 12), func(c *RandomConfig) {
				c.HeapFrac, c.ChainFrac, c.ChainLen = 0.45, 0.32, 6
				c.CallLocality = 7
			}),
		},
	}
}

// ProfileByName returns the named profile, or nil.
func ProfileByName(name string) *Profile {
	for _, p := range Profiles() {
		if p.Name == name {
			return &p
		}
	}
	return nil
}
