package workload

import (
	"fmt"
	"testing"

	"vsfs/internal/cfg"
	"vsfs/internal/ir"
)

func TestRandomDeterministic(t *testing.T) {
	cfg := DefaultRandomConfig()
	a := Random(7, cfg).String()
	b := Random(7, cfg).String()
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := Random(8, cfg).String()
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

func TestRandomProgramsAreValid(t *testing.T) {
	// Random panics on invalid programs (Finalize checks); exercise a
	// spread of seeds and shapes.
	for seed := int64(0); seed < 10; seed++ {
		cfg := DefaultRandomConfig()
		cfg.InstrsPerFunc = 20 + int(seed)*7
		prog := Random(seed, cfg)
		if len(prog.Funcs) == 0 || len(prog.Instrs) < 2 {
			t.Fatalf("seed %d: degenerate program", seed)
		}
	}
}

// TestDefsDominateUses verifies the generator's structural guarantee:
// every non-phi use of a top-level pointer is dominated by its
// definition (as compiler-emitted partial SSA would be).
func TestDefsDominateUses(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := Random(seed, DefaultRandomConfig())
			defAt := map[ir.ID]*ir.Instr{}
			for _, f := range prog.Funcs {
				for _, p := range f.Params {
					defAt[p] = f.EntryInstr
				}
				f.ForEachInstr(func(in *ir.Instr) {
					if in.Def != ir.None && in.Op != ir.FunEntry {
						defAt[in.Def] = in
					}
				})
			}
			for _, f := range prog.Funcs {
				info := cfg.Compute(f)
				f.ForEachInstr(func(in *ir.Instr) {
					if in.Op == ir.Phi {
						return // phi operands flow along edges
					}
					for _, u := range in.Uses {
						def := defAt[u]
						if def == nil {
							continue // globals and undefined temps
						}
						if def.Parent != f {
							continue // globals defined in __globals__
						}
						if def.Block == in.Block {
							continue // same block: emission order suffices
						}
						if !info.Dominates(def.Block, in.Block) {
							t.Fatalf("use of %s in %s not dominated by def in %s",
								prog.NameOf(u), in.Block.Name, def.Block.Name)
						}
					}
				})
			}
		})
	}
}

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 15 {
		t.Fatalf("profiles = %d, want 15", len(ps))
	}
	names := map[string]bool{}
	wantOrder := []string{"du", "ninja", "bake", "dpkg", "nano", "i3", "psql",
		"janet", "astyle", "tmux", "mruby", "mutt", "bash", "lynx", "hyriseConsole"}
	for i, p := range ps {
		if names[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.Name != wantOrder[i] {
			t.Errorf("profile %d = %q, want %q (Table II order)", i, p.Name, wantOrder[i])
		}
		if p.Desc == "" || p.Seed == 0 || p.Cfg.Funcs == 0 {
			t.Errorf("profile %q underspecified", p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if p := ProfileByName("du"); p == nil || p.Name != "du" {
		t.Error("ProfileByName(du) failed")
	}
	if ProfileByName("nope") != nil {
		t.Error("ProfileByName(nope) returned a profile")
	}
}

func TestProfileBuildSmallest(t *testing.T) {
	prog := ProfileByName("du").Build()
	if len(prog.Instrs) < 500 {
		t.Errorf("du program suspiciously small: %d instrs", len(prog.Instrs))
	}
	// Deterministic.
	if prog.String() != ProfileByName("du").Build().String() {
		t.Error("profile build not deterministic")
	}
}

func TestChainAndBuilderKnobs(t *testing.T) {
	cfg := DefaultRandomConfig()
	cfg.ChainFrac, cfg.ChainLen = 0.5, 5
	cfg.BuilderFrac = 0.3
	cfg.GlobalBias = 0.5
	prog := Random(3, cfg)
	loads, stores := 0, 0
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			switch in.Op {
			case ir.Load:
				loads++
			case ir.Store:
				stores++
			}
		})
	}
	if loads == 0 || stores == 0 {
		t.Errorf("knob-heavy program has no memory ops (loads=%d stores=%d)", loads, stores)
	}
}

func TestCallLocality(t *testing.T) {
	cfg := DefaultRandomConfig()
	cfg.Funcs = 30
	cfg.CallLocality = 2
	prog := Random(5, cfg)
	idx := map[*ir.Function]int{}
	for i, f := range prog.Funcs {
		idx[f] = i
	}
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call || in.Callee == nil {
				return
			}
			d := idx[f] - idx[in.Callee]
			if d < 0 {
				d = -d
			}
			// __globals__ shifts indexes by at most one slot; allow 3.
			if d > 3 {
				t.Errorf("call from %s to %s violates locality (distance %d)",
					f.Name, in.Callee.Name, d)
			}
		})
	}
}
