// Package workload generates synthetic programs for testing and
// benchmarking the analyses: structured random programs (for property
// testing — SFS ≡ VSFS, soundness orderings) and the 15 named benchmark
// profiles that stand in for the paper's open-source programs (Table II).
package workload

import (
	"fmt"
	"math/rand"

	"vsfs/internal/ir"
)

// RandomConfig bounds the shape of a random program.
type RandomConfig struct {
	Funcs         int     // number of functions besides main
	MaxParams     int     // max parameters per function
	InstrsPerFunc int     // approximate instruction budget per function
	MaxFields     int     // max fields of aggregate objects
	HeapFrac      float64 // fraction of allocs that are heap objects
	IndirectCalls bool    // generate funcaddr + calli
	Globals       int     // number of global variables
	LoopFrac      float64 // fraction of regions that become loops
	BranchFrac    float64 // fraction of regions that become diamonds
	StoreFrac     float64 // weight of stores among memory ops

	// Profile knobs for the named benchmarks (zero values disable them).

	// ChainFrac emits pointer-chase chains (v1 = load p; v2 = load v1;
	// ...) of length ChainLen: many loads consuming the same
	// definitions, the single-object redundancy VSFS targets.
	ChainFrac float64
	ChainLen  int

	// GlobalBias picks globals as operands with this probability,
	// concentrating value flows through few objects (large mod/ref
	// sets, many indirect edges — the bash/lynx effect).
	GlobalBias float64

	// ChainFromGlobals makes pointer-chase chains start at a global
	// with this probability (the redundancy sweep uses it to keep
	// chains traversing the live heap graph).
	ChainFromGlobals float64

	// BuilderFrac emits heap-graph builders (h = malloc; *h = prev;
	// *cell = h), the heap-intensive pattern of interpreters.
	BuilderFrac float64

	// DispatchFrac emits dispatch-table traffic: function addresses
	// stored into pointer cells, later loaded and called indirectly.
	// Overwritten cells make the flow-sensitive call graph strictly
	// smaller than the auxiliary one.
	DispatchFrac float64

	// FreeProb emits free(p) — a store of the FREED token through a
	// dominated pointer — with this probability per straight-line slot.
	// Zero (the default) keeps the generator's output and random stream
	// bit-identical to pre-deallocation versions, so named profiles and
	// golden tests are unaffected.
	FreeProb float64

	// CallLocality, when positive, restricts call targets to functions
	// within this index distance — modular programs with narrow
	// transitive mod/ref summaries. Zero means any function may call
	// any other (monolithic sharing, the bash/lynx shape).
	CallLocality int
}

// DefaultRandomConfig is a reasonable mid-size shape for property tests.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		Funcs:         6,
		MaxParams:     3,
		InstrsPerFunc: 40,
		MaxFields:     3,
		HeapFrac:      0.4,
		IndirectCalls: true,
		Globals:       3,
		LoopFrac:      0.15,
		BranchFrac:    0.3,
		StoreFrac:     0.45,
	}
}

// Random builds a deterministic pseudo-random program. The generator is
// structured (nested diamonds and loops), so every use of a top-level
// pointer is dominated by its definition, as a compiler-produced partial
// SSA program would be.
func Random(seed int64, cfg RandomConfig) *ir.Program {
	g := &rgen{
		r:    rand.New(rand.NewSource(seed)),
		cfg:  cfg,
		prog: ir.NewProgram(),
	}
	return g.run()
}

type rgen struct {
	r    *rand.Rand
	cfg  RandomConfig
	prog *ir.Program

	funcs   []*ir.Function
	globals []ir.ID
	nextID  int
}

func (g *rgen) name(prefix string) string {
	g.nextID++
	return fmt.Sprintf("%s%d", prefix, g.nextID)
}

func (g *rgen) run() *ir.Program {
	for i := 0; i < g.cfg.Globals; i++ {
		ptr, _ := g.prog.NewGlobal(g.name("g"), g.r.Intn(g.cfg.MaxFields+1))
		g.globals = append(g.globals, ptr)
	}
	// Phase 1: function shells, so calls can target any function.
	main := g.prog.NewFunction("main", 0)
	g.funcs = append(g.funcs, main)
	for i := 0; i < g.cfg.Funcs; i++ {
		f := g.prog.NewFunction(g.name("f"), g.r.Intn(g.cfg.MaxParams+1))
		g.funcs = append(g.funcs, f)
	}
	// Phase 2: bodies.
	for i, f := range g.funcs {
		g.genBody(f, i)
	}
	if err := g.prog.Finalize(); err != nil {
		// The generator is supposed to emit only valid programs; a
		// failure here is a bug worth failing loudly for.
		panic(fmt.Sprintf("workload: generated invalid program: %v", err))
	}
	return g.prog
}

// fstate is the per-function generation state.
type fstate struct {
	f      *ir.Function
	fidx   int // index of f within the generated function list
	cur    *ir.Block
	dom    []ir.ID // pointer vars whose defs dominate cur
	budget int
}

// calleeFor picks a call target, respecting CallLocality.
func (g *rgen) calleeFor(st *fstate) *ir.Function {
	if g.cfg.CallLocality <= 0 {
		return g.funcs[g.r.Intn(len(g.funcs))]
	}
	lo := st.fidx - g.cfg.CallLocality
	if lo < 0 {
		lo = 0
	}
	hi := st.fidx + g.cfg.CallLocality
	if hi >= len(g.funcs) {
		hi = len(g.funcs) - 1
	}
	return g.funcs[lo+g.r.Intn(hi-lo+1)]
}

func (g *rgen) genBody(f *ir.Function, idx int) {
	st := &fstate{
		f:      f,
		fidx:   idx,
		cur:    f.Entry,
		dom:    append([]ir.ID(nil), f.Params...),
		budget: g.cfg.InstrsPerFunc/2 + g.r.Intn(g.cfg.InstrsPerFunc+1),
	}
	st.dom = append(st.dom, g.globals...)
	// Guarantee at least one local object so memory ops have targets.
	g.emitAlloc(st)
	g.genRegion(st, 3)
	f.Exit = st.cur
	if len(st.dom) > 0 && g.r.Intn(4) > 0 {
		f.Ret = st.pick(g.r)
	}
}

func (st *fstate) pick(r *rand.Rand) ir.ID {
	return st.dom[r.Intn(len(st.dom))]
}

// pickBiased prefers global pointers with probability g.cfg.GlobalBias.
func (g *rgen) pickBiased(st *fstate) ir.ID {
	if len(g.globals) > 0 && g.r.Float64() < g.cfg.GlobalBias {
		return g.globals[g.r.Intn(len(g.globals))]
	}
	return st.pick(g.r)
}

// genRegion emits straight-line code interleaved with nested control
// flow until the budget runs out.
func (g *rgen) genRegion(st *fstate, depth int) {
	for st.budget > 0 {
		roll := g.r.Float64()
		switch {
		case depth > 0 && roll < g.cfg.BranchFrac:
			g.genDiamond(st, depth)
		case depth > 0 && roll < g.cfg.BranchFrac+g.cfg.LoopFrac:
			g.genLoop(st, depth)
		default:
			g.emitStraight(st)
		}
	}
}

// genDiamond builds cur → {left, right} → join with optional phis.
func (g *rgen) genDiamond(st *fstate, depth int) {
	f := st.f
	left := f.NewBlock(g.name("L"))
	right := f.NewBlock(g.name("R"))
	join := f.NewBlock(g.name("J"))
	st.cur.AddSucc(left)
	st.cur.AddSucc(right)

	baseDom := append([]ir.ID(nil), st.dom...)
	total := st.budget
	branchBudget := total / 3

	st.cur, st.dom, st.budget = left, append([]ir.ID(nil), baseDom...), branchBudget
	g.genRegion(st, depth-1)
	leftVars := st.dom[len(baseDom):]
	st.cur.AddSucc(join) // branch tail falls through to the join

	st.cur, st.dom, st.budget = right, append([]ir.ID(nil), baseDom...), branchBudget
	g.genRegion(st, depth-1)
	rightVars := st.dom[len(baseDom):]
	st.cur.AddSucc(join)

	st.cur = join
	st.dom = baseDom
	st.budget = total - 2*branchBudget - 1

	// Merge a value from each branch with a phi, when both produced one.
	if len(leftVars) > 0 && len(rightVars) > 0 && g.r.Intn(2) == 0 {
		p := g.prog.NewPointer(g.name("phi"))
		f.EmitPhi(join, p,
			leftVars[g.r.Intn(len(leftVars))],
			rightVars[g.r.Intn(len(rightVars))])
		st.dom = append(st.dom, p)
		st.budget--
	}
}

// genLoop builds cur → header; header → {body, after}; body → header.
func (g *rgen) genLoop(st *fstate, depth int) {
	f := st.f
	header := f.NewBlock(g.name("H"))
	body := f.NewBlock(g.name("B"))
	after := f.NewBlock(g.name("A"))
	st.cur.AddSucc(header)
	header.AddSucc(body)
	header.AddSucc(after)

	baseDom := append([]ir.ID(nil), st.dom...)
	total := st.budget
	bodyBudget := total / 2

	st.cur, st.dom, st.budget = body, append([]ir.ID(nil), baseDom...), bodyBudget
	g.genRegion(st, depth-1)
	st.cur.AddSucc(header) // back edge from the body's tail

	st.cur = after
	st.dom = baseDom
	st.budget = total - bodyBudget - 1
}

// emitStraight appends one simple instruction to the current block.
func (g *rgen) emitStraight(st *fstate) {
	st.budget--
	r := g.r
	if g.cfg.ChainFrac > 0 && r.Float64() < g.cfg.ChainFrac {
		g.emitChain(st)
		return
	}
	if g.cfg.BuilderFrac > 0 && r.Float64() < g.cfg.BuilderFrac {
		g.emitBuilder(st)
		return
	}
	if g.cfg.DispatchFrac > 0 && r.Float64() < g.cfg.DispatchFrac {
		g.emitDispatch(st)
		return
	}
	if g.cfg.FreeProb > 0 && r.Float64() < g.cfg.FreeProb {
		st.f.EmitStore(st.cur, g.pickBiased(st), g.prog.FreedPtr())
		return
	}
	switch r.Intn(10) {
	case 0, 1:
		g.emitAlloc(st)
	case 2:
		p := g.prog.NewPointer(g.name("c"))
		st.f.EmitCopy(st.cur, p, g.pickBiased(st))
		st.dom = append(st.dom, p)
	case 3:
		p := g.prog.NewPointer(g.name("fl"))
		st.f.EmitField(st.cur, p, g.pickBiased(st), r.Intn(g.cfg.MaxFields+1))
		st.dom = append(st.dom, p)
	case 4, 5:
		p := g.prog.NewPointer(g.name("v"))
		st.f.EmitLoad(st.cur, p, g.pickBiased(st))
		st.dom = append(st.dom, p)
	case 6, 7:
		if r.Float64() < g.cfg.StoreFrac*2 {
			st.f.EmitStore(st.cur, g.pickBiased(st), g.pickBiased(st))
		} else {
			p := g.prog.NewPointer(g.name("v"))
			st.f.EmitLoad(st.cur, p, g.pickBiased(st))
			st.dom = append(st.dom, p)
		}
	case 8:
		callee := g.calleeFor(st)
		args := make([]ir.ID, len(callee.Params))
		for i := range args {
			args[i] = st.pick(r)
		}
		p := ir.None
		if r.Intn(2) == 0 {
			p = g.prog.NewPointer(g.name("r"))
		}
		st.f.EmitCall(st.cur, p, callee, args...)
		if p != ir.None {
			st.dom = append(st.dom, p)
		}
	case 9:
		if !g.cfg.IndirectCalls {
			g.emitAlloc(st)
			return
		}
		// Take a function's address, then sometimes call through a
		// pointer that may hold it.
		callee := g.calleeFor(st)
		fp := g.prog.NewPointer(g.name("fp"))
		st.f.EmitAlloc(st.cur, fp, g.prog.FuncObj(callee))
		st.dom = append(st.dom, fp)
		if r.Intn(2) == 0 {
			nargs := len(callee.Params)
			args := make([]ir.ID, nargs)
			for i := range args {
				args[i] = st.pick(r)
			}
			p := ir.None
			if r.Intn(2) == 0 {
				p = g.prog.NewPointer(g.name("ri"))
			}
			st.f.EmitCallIndirect(st.cur, p, fp, args...)
			if p != ir.None {
				st.dom = append(st.dom, p)
			}
		}
	}
}

func (g *rgen) emitAlloc(st *fstate) {
	kind := ir.StackObj
	owner := st.f
	prefix := "o"
	if g.r.Float64() < g.cfg.HeapFrac {
		kind = ir.HeapObj
		owner = nil
		prefix = "h"
	}
	p := g.prog.NewPointer(g.name("p"))
	obj := g.prog.NewObject(g.name(prefix), kind, g.r.Intn(g.cfg.MaxFields+1), owner)
	st.f.EmitAlloc(st.cur, p, obj)
	st.dom = append(st.dom, p)
}

// emitChain appends a pointer-chase: a run of loads each consuming the
// previous result. These are the instruction sequences where SFS
// duplicates one object's points-to set at every step. Chains start
// from globals most of the time so they traverse the live heap graph
// rather than dead local slots.
func (g *rgen) emitChain(st *fstate) {
	v := g.pickBiased(st)
	if len(g.globals) > 0 && g.r.Float64() < g.cfg.ChainFromGlobals {
		v = g.globals[g.r.Intn(len(g.globals))]
	}
	n := 1 + g.r.Intn(g.cfg.ChainLen)
	for i := 0; i < n && st.budget > 0; i++ {
		p := g.prog.NewPointer(g.name("ch"))
		st.f.EmitLoad(st.cur, p, v)
		st.dom = append(st.dom, p)
		v = p
		st.budget--
	}
}

// emitBuilder appends a heap-graph builder step: allocate, link to a
// previous value, publish through a pointer.
func (g *rgen) emitBuilder(st *fstate) {
	r := g.r
	h := g.prog.NewPointer(g.name("hb"))
	obj := g.prog.NewObject(g.name("hn"), ir.HeapObj, r.Intn(g.cfg.MaxFields+1), nil)
	st.f.EmitAlloc(st.cur, h, obj)
	st.f.EmitStore(st.cur, h, g.pickBiased(st))
	st.f.EmitStore(st.cur, g.pickBiased(st), h)
	st.dom = append(st.dom, h)
	st.budget -= 3
}

// emitDispatch emits handler-table traffic: install a function address
// into a cell, or fetch a handler from a cell and call it. Installs into
// singleton cells are strongly updatable, so the flow-sensitive call
// graph can prune handlers the auxiliary analysis keeps.
func (g *rgen) emitDispatch(st *fstate) {
	r := g.r
	cell := g.pickBiased(st)
	if r.Intn(2) == 0 {
		// Install: *cell = &callee.
		callee := g.calleeFor(st)
		fp := g.prog.NewPointer(g.name("hf"))
		st.f.EmitAlloc(st.cur, fp, g.prog.FuncObj(callee))
		st.f.EmitStore(st.cur, cell, fp)
		st.dom = append(st.dom, fp)
		st.budget -= 2
		return
	}
	// Fetch and call: h = *cell; h(args...).
	h := g.prog.NewPointer(g.name("hl"))
	st.f.EmitLoad(st.cur, h, cell)
	st.dom = append(st.dom, h)
	nargs := r.Intn(2)
	args := make([]ir.ID, nargs)
	for i := range args {
		args[i] = st.pick(r)
	}
	def := ir.None
	if r.Intn(2) == 0 {
		def = g.prog.NewPointer(g.name("hr"))
	}
	st.f.EmitCallIndirect(st.cur, def, h, args...)
	if def != ir.None {
		st.dom = append(st.dom, def)
	}
	st.budget -= 2
}
