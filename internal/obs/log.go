package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// NewLogger builds a slog.Logger writing to w in the named format:
// "text" (logfmt-style, the default), "json" (one object per line), or
// "off" (discard everything).
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "off", "none":
		return Discard(), nil
	}
	return nil, fmt.Errorf(`unknown log format %q (want "text", "json", or "off")`, format)
}

// Discard returns a logger that drops every record without formatting
// it, so disabled logging costs one Enabled check per call site.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// reqSeq backs NewRequestID when the system's entropy source fails.
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-character request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%012x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// requestIDKey keys a request ID in a context.
type requestIDKey struct{}

// WithRequestID returns ctx carrying id. The ID rides the request
// context through the cache, single-flight, and worker-pool layers so
// cancellation and load-shedding events stay correlatable with the
// request that suffered them.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the context's request ID, or "" when absent.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
