package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace collects completed spans of one pipeline run and exports them
// as Chrome trace_event JSON, viewable in chrome://tracing or Perfetto.
// A Trace is safe for concurrent spans; span nesting in the viewer is
// inferred from time containment on the shared track.
type Trace struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
	tags   map[string]any
}

// Event is one complete ("ph":"X") trace event. Timestamps and
// durations are microseconds; Ts is relative to the trace start.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the Chrome trace_event "JSON object format".
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// NewTrace returns an empty trace whose time origin is now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Span is one in-flight region of a Trace. A nil *Span is a valid
// no-op, so instrumentation sites need no "is tracing on?" branches.
type Span struct {
	tr    *Trace
	name  string
	begin time.Time
	args  map[string]any
}

// Tag stamps key=value onto the args of every span completed from now
// on (explicit Span.Arg values win on collision). The daemon uses it to
// carry the request ID into per-solve traces, so a trace file can be
// correlated with the access-log line for the same request.
func (t *Trace) Tag(key string, value any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.tags == nil {
		t.tags = make(map[string]any)
	}
	t.tags[key] = value
	t.mu.Unlock()
}

// Start opens a span. Close it with End.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, begin: time.Now()}
}

// Arg attaches a key/value to the span (rendered under "args" in the
// viewer). Returns the span for chaining.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = value
	return s
}

// End completes the span and records it on the trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.tr.mu.Lock()
	if len(s.tr.tags) > 0 {
		if s.args == nil {
			s.args = make(map[string]any, len(s.tr.tags))
		}
		for k, v := range s.tr.tags {
			if _, ok := s.args[k]; !ok {
				s.args[k] = v
			}
		}
	}
	s.tr.events = append(s.tr.events, Event{
		Name: s.name,
		Cat:  "vsfs",
		Ph:   "X",
		Ts:   s.begin.Sub(s.tr.start).Microseconds(),
		Dur:  end.Sub(s.begin).Microseconds(),
		Pid:  1,
		Tid:  1,
		Args: s.args,
	})
	s.tr.mu.Unlock()
}

// Events returns a snapshot of the completed events, in completion
// order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// WriteJSON renders the trace in Chrome trace_event JSON object format.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	f := traceFile{TraceEvents: t.events, DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []Event{}
	}
	data, err := json.MarshalIndent(f, "", "  ")
	t.mu.Unlock()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// traceKey keys a *Trace in a context.
type traceKey struct{}

// NewContext returns ctx carrying t, so the pipeline phases deep in the
// solver packages can emit spans without signature changes.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the context's trace, or nil when tracing is off.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan opens a span on the context's trace; with no trace attached
// it returns a nil (no-op) span. This is the one-liner used at every
// instrumentation site.
func StartSpan(ctx context.Context, name string) *Span {
	return TraceFrom(ctx).Start(name)
}
