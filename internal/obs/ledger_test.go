package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type testRec struct {
	N   int    `json:"n"`
	Pad string `json:"pad,omitempty"`
}

func TestLedgerAppendTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 5; i++ {
		if err := l.Append(testRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := l.Tail(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("Tail(3) returned %d records", len(recs))
	}
	// Oldest first: 2, 3, 4.
	for i, want := range []int{2, 3, 4} {
		var r testRec
		if err := json.Unmarshal(recs[i], &r); err != nil {
			t.Fatal(err)
		}
		if r.N != want {
			t.Errorf("record %d has n=%d, want %d", i, r.N, want)
		}
	}
	if recs, err := l.Tail(100); err != nil || len(recs) != 5 {
		t.Fatalf("Tail(100) = %d records, err %v; want all 5", len(recs), err)
	}
	if recs, err := l.Tail(0); err != nil || len(recs) != 0 {
		t.Fatalf("Tail(0) = %d records, err %v; want none", len(recs), err)
	}
}

func TestLedgerReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRec{N: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l, err = OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testRec{N: 2}); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Tail(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("reopened ledger lost records: got %d, want 2", len(recs))
	}
}

func TestLedgerRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	// Records are ~40 bytes; a 100-byte cap forces rotation every few
	// appends.
	l, err := OpenLedger(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 20; i++ {
		if err := l.Append(testRec{N: i, Pad: "xxxxxxxxxxxxxxxxxxxx"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("no rotated file after 20 over-cap appends: %v", err)
	}
	// The newest records must survive rotation, oldest first.
	recs, err := l.Tail(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("Tail(2) = %d records", len(recs))
	}
	var last testRec
	if err := json.Unmarshal(recs[1], &last); err != nil {
		t.Fatal(err)
	}
	if last.N != 19 {
		t.Errorf("newest record n=%d, want 19", last.N)
	}
}

// TestLedgerRotationNeverTearsALine hammers a tiny ledger from many
// goroutines while a reader tails it, then verifies every surviving
// line in both generations parses as a whole JSON record — the
// rotate-at-line-boundary guarantee.
func TestLedgerRotationNeverTearsALine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenLedger(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const writers, appends = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				rec := testRec{N: w*appends + i, Pad: "concurrent-writer-payload"}
				if err := l.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	// Concurrent tailer: Tail errors on any invalid JSON line, so a torn
	// read mid-rotation would fail here.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := l.Tail(10); err != nil {
				t.Errorf("tail during writes: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Post-hoc audit of both generations, byte-level: every line must be
	// valid JSON (readLines errors otherwise).
	total := 0
	for _, p := range []string{path + ".1", path} {
		recs, err := readLines(p)
		if err != nil {
			t.Fatalf("torn line detected: %v", err)
		}
		total += len(recs)
		for _, raw := range recs {
			var r testRec
			if err := json.Unmarshal(raw, &r); err != nil {
				t.Fatalf("unparseable record %q: %v", raw, err)
			}
		}
	}
	if total == 0 {
		t.Fatal("no records survived")
	}
	// Rotation drops whole old generations, never individual lines, so
	// the current file plus one predecessor is all we can assert on.
	t.Logf("audited %d surviving records across generations", total)
}

func TestLedgerOverCapRecordStillWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := testRec{N: 1, Pad: "this-record-alone-exceeds-the-cap"}
	if err := l.Append(big); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Tail(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatal("over-cap record on empty file was not written")
	}
}

func TestLedgerTailRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := os.WriteFile(path, []byte("{\"n\":1}\n{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Tail(5); err == nil {
		t.Fatal("Tail accepted a corrupt line")
	} else if want := "not valid JSON"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "vsfs_build_info") {
		t.Fatalf("no vsfs_build_info in exposition:\n%s", text)
	}
	if !strings.Contains(text, `version="`+Version+`"`) {
		t.Fatalf("build info missing version label:\n%s", text)
	}
}
