package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("http", "id", "abc123", "status", 200)
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &rec); err != nil {
		t.Fatalf("json log line is not JSON: %v (%q)", err, b.String())
	}
	if rec["id"] != "abc123" || rec["msg"] != "http" {
		t.Errorf("unexpected record: %v", rec)
	}

	b.Reset()
	lg, err = NewLogger(&b, "text", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("http", "id", "abc123")
	if !strings.Contains(b.String(), "id=abc123") {
		t.Errorf("text log missing attr: %q", b.String())
	}

	if _, err := NewLogger(&b, "xml", slog.LevelInfo); err == nil {
		t.Error("expected error for unknown format")
	}

	b.Reset()
	lg, err = NewLogger(&b, "off", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Error("dropped")
	if b.Len() != 0 {
		t.Errorf("off logger wrote %q", b.String())
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == "" || a == b {
		t.Fatalf("request IDs not unique: %q %q", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Errorf("RequestID = %q, want %q", got, a)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("RequestID on bare context = %q, want empty", got)
	}
}
