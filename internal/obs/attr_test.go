package obs

import (
	"context"
	"fmt"
	"testing"
)

func TestObjectAttrNilSafe(t *testing.T) {
	var a *ObjectAttr
	// The disabled path must be a no-op, never a panic.
	a.Pop(3)
	a.Prop(7)
	a.Set(0)
	a.Meld(12)
	if a.TotalPops() != 0 || a.TotalProps() != 0 || a.TotalSets() != 0 || a.TotalMelds() != 0 {
		t.Fatal("nil ObjectAttr reported nonzero totals")
	}
	if got := a.TopK(5, nil); got != nil {
		t.Fatalf("nil ObjectAttr TopK = %v, want nil", got)
	}
}

func TestObjectAttrTotalsConserved(t *testing.T) {
	a := NewObjectAttr(4)
	for i := 0; i < 5; i++ {
		a.Pop(1)
	}
	a.Pop(0)
	a.Prop(2)
	a.Prop(2)
	a.Set(1)
	a.Meld(3)
	if got := a.TotalPops(); got != 6 {
		t.Errorf("TotalPops = %d, want 6", got)
	}
	if got := a.TotalProps(); got != 2 {
		t.Errorf("TotalProps = %d, want 2", got)
	}
	if got := a.TotalSets(); got != 1 {
		t.Errorf("TotalSets = %d, want 1", got)
	}
	if got := a.TotalMelds(); got != 1 {
		t.Errorf("TotalMelds = %d, want 1", got)
	}
}

func TestObjectAttrGrowth(t *testing.T) {
	a := NewObjectAttr(1)
	// Field objects materialise mid-solve with IDs past the hint.
	a.Pop(100)
	a.Prop(250)
	a.Meld(999)
	if a.TotalPops() != 1 || a.TotalProps() != 1 || a.TotalMelds() != 1 {
		t.Fatal("charges past the hint were lost")
	}
}

func TestTopKRankingAndNames(t *testing.T) {
	a := NewObjectAttr(8)
	name := func(o uint32) string {
		if o == 0 {
			t.Fatal("nameOf called for object 0")
		}
		return fmt.Sprintf("obj%d", o)
	}

	// Object 3: cost 10 (props). Object 5: cost 4 (pops+melds).
	// Object 1: cost 4 too — tie broken by ascending ID.
	// Object 0: unattributed, cost 1. Object 6: only sets (cost 0, but
	// charged — must still appear, ranked last).
	for i := 0; i < 10; i++ {
		a.Prop(3)
	}
	a.Pop(5)
	a.Pop(5)
	a.Meld(5)
	a.Meld(5)
	for i := 0; i < 4; i++ {
		a.Prop(1)
	}
	a.Prop(0)
	a.Set(6)

	rows := a.TopK(10, name)
	if len(rows) != 5 {
		t.Fatalf("TopK returned %d rows, want 5: %+v", len(rows), rows)
	}
	wantOrder := []uint32{3, 1, 5, 0, 6}
	for i, want := range wantOrder {
		if rows[i].ID != want {
			t.Fatalf("row %d has ID %d, want %d (rows %+v)", i, rows[i].ID, want, rows)
		}
	}
	if rows[0].Object != "obj3" {
		t.Errorf("row 0 named %q, want obj3", rows[0].Object)
	}
	for _, r := range rows {
		if r.ID == 0 && r.Object != "(unattributed)" {
			t.Errorf("object 0 named %q, want (unattributed)", r.Object)
		}
	}

	// k truncates after ranking.
	if got := a.TopK(2, name); len(got) != 2 || got[0].ID != 3 || got[1].ID != 1 {
		t.Fatalf("TopK(2) = %+v, want objects 3 then 1", got)
	}
}

func TestTopKSkipsUncharged(t *testing.T) {
	a := NewObjectAttr(100)
	a.Prop(42)
	rows := a.TopK(10, func(o uint32) string { return "x" })
	if len(rows) != 1 || rows[0].ID != 42 {
		t.Fatalf("TopK = %+v, want exactly object 42", rows)
	}
}

func TestCollectorContextRoundTrip(t *testing.T) {
	if AttrFrom(context.Background()) != nil {
		t.Fatal("AttrFrom on empty context is non-nil")
	}
	a := NewObjectAttr(1)
	ctx := WithCollector(context.Background(), a)
	if got := AttrFrom(ctx); got != a {
		t.Fatalf("AttrFrom = %p, want %p", got, a)
	}
}

// TestMergeCommutesAndConserves pins the property the parallel solver
// leans on: folding per-worker collectors together in ANY order yields
// identical totals and an identical TopK, and merged totals are the sum
// of the parts. Uses mismatched slice lengths so the grow-on-merge path
// is exercised too.
func TestMergeCommutesAndConserves(t *testing.T) {
	build := func(charges [][2]uint32) *ObjectAttr {
		a := NewObjectAttr(1)
		for _, c := range charges {
			switch c[0] {
			case 0:
				a.Pop(c[1])
			case 1:
				a.Prop(c[1])
			case 2:
				a.Set(c[1])
			case 3:
				a.Meld(c[1])
			}
		}
		return a
	}
	parts := [][][2]uint32{
		{{0, 1}, {0, 1}, {1, 5}, {3, 200}},
		{{0, 2}, {2, 2}, {1, 1}},
		{{0, 1}, {0, 5}, {1, 5}, {2, 999}},
	}
	nameOf := func(o uint32) string { return fmt.Sprintf("o%d", o) }

	var want []HotObject
	var wantPops, wantProps uint64
	orders := [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}}
	for _, ord := range orders {
		m := NewObjectAttr(1)
		for _, i := range ord {
			m.Merge(build(parts[i]))
		}
		top := m.TopK(10, nameOf)
		if want == nil {
			want, wantPops, wantProps = top, m.TotalPops(), m.TotalProps()
			continue
		}
		if m.TotalPops() != wantPops || m.TotalProps() != wantProps {
			t.Fatalf("order %v: totals differ (%d/%d vs %d/%d)",
				ord, m.TotalPops(), m.TotalProps(), wantPops, wantProps)
		}
		if fmt.Sprint(top) != fmt.Sprint(want) {
			t.Fatalf("order %v: TopK differs:\n%v\nvs\n%v", ord, top, want)
		}
	}

	// Conservation: the merged totals are the sum of the parts'.
	var popSum uint64
	for _, p := range parts {
		popSum += build(p).TotalPops()
	}
	if wantPops != popSum {
		t.Fatalf("merged pops = %d, parts sum to %d", wantPops, popSum)
	}

	// Merging into or from nil stays a no-op.
	var nilAttr *ObjectAttr
	nilAttr.Merge(build(parts[0]))
	m := build(parts[0])
	m.Merge(nil)
	if m.TotalPops() != build(parts[0]).TotalPops() {
		t.Fatal("Merge(nil) changed the receiver")
	}
}

// TestTopKTieOrderingDeterministic: objects with equal cost must rank by
// ascending ID, so a tie-heavy table renders identically run after run —
// the determinism the report byte-identity contract depends on.
func TestTopKTieOrderingDeterministic(t *testing.T) {
	a := NewObjectAttr(64)
	// Ten objects, every one charged exactly 3 cost units (2 pops + 1
	// prop), IDs deliberately out of charge order.
	ids := []uint32{9, 3, 14, 1, 30, 7, 22, 5, 11, 2}
	for _, o := range ids {
		a.Pop(o)
		a.Pop(o)
		a.Prop(o)
	}
	nameOf := func(o uint32) string { return fmt.Sprintf("o%d", o) }
	top := a.TopK(len(ids), nameOf)
	if len(top) != len(ids) {
		t.Fatalf("TopK returned %d rows, want %d", len(top), len(ids))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].cost() != top[i].cost() {
			t.Fatalf("rows %d/%d have unequal cost in a pure tie table", i-1, i)
		}
		if top[i-1].ID >= top[i].ID {
			t.Fatalf("tie not broken by ascending ID: row %d ID %d, row %d ID %d",
				i-1, top[i-1].ID, i, top[i].ID)
		}
	}
	// Truncation keeps the lowest-ID ties.
	top3 := a.TopK(3, nameOf)
	if len(top3) != 3 || top3[0].ID != 1 || top3[1].ID != 2 || top3[2].ID != 3 {
		t.Fatalf("truncated tie table = %v, want IDs 1,2,3", top3)
	}
}
