package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceChromeJSON(t *testing.T) {
	tr := NewTrace()
	outer := tr.Start("solve").Arg("mode", "vsfs")
	inner := tr.Start("meld")
	time.Sleep(time.Millisecond)
	inner.End()
	tr.Start("main").End()
	outer.End()

	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int64          `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(f.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %s: negative ts/dur (%d/%d)", ev.Name, ev.Ts, ev.Dur)
		}
		byName[ev.Name] = i
	}
	solve := f.TraceEvents[byName["solve"]]
	meld := f.TraceEvents[byName["meld"]]
	// Correct nesting: the meld span lies within the solve span.
	if meld.Ts < solve.Ts || meld.Ts+meld.Dur > solve.Ts+solve.Dur {
		t.Errorf("meld span [%d,%d] not nested in solve span [%d,%d]",
			meld.Ts, meld.Ts+meld.Dur, solve.Ts, solve.Ts+solve.Dur)
	}
	if solve.Args["mode"] != "vsfs" {
		t.Errorf("solve args = %v, want mode=vsfs", solve.Args)
	}
}

func TestNilSpanIsNoop(t *testing.T) {
	// No trace on the context: spans must be free no-ops.
	sp := StartSpan(context.Background(), "phase")
	if sp != nil {
		t.Fatal("expected nil span without a trace")
	}
	sp.Arg("k", 1) // must not panic
	sp.End()
}

func TestContextPlumbing(t *testing.T) {
	tr := NewTrace()
	ctx := NewContext(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	StartSpan(ctx, "parse").End()
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Name != "parse" {
		t.Fatalf("events = %+v, want one parse span", evs)
	}
}

func TestEmptyTraceWritesValidJSON(t *testing.T) {
	var b strings.Builder
	if err := NewTrace().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatal(err)
	}
	if _, ok := f["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents missing or not an array: %v", f)
	}
}
