// Package obs is the repository's dependency-free telemetry layer:
// a metrics registry rendered in Prometheus text exposition format, a
// span tracer exporting Chrome trace_event JSON (viewable in Perfetto),
// and structured-logging helpers on log/slog with per-request IDs.
//
// Everything is standard library only. The registry is safe for
// concurrent use: metric reads and writes are atomic, and registration
// is idempotent (registering an existing name with the same kind
// returns the existing family), so package-level wiring never races.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that may go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fixed bucket layouts. Per-phase solve latencies span sub-millisecond
// parses to multi-second fixpoints; points-to-set counts span single
// digits to hundreds of thousands, so the size buckets are powers of 4.
var (
	// LatencyBuckets is the upper-bound layout (seconds) for solve and
	// phase duration histograms.
	LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

	// SizeBuckets is the upper-bound layout for cardinality histograms
	// (points-to sets stored, worklist lengths): powers of four.
	SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// Family is one named metric family: a help string, a kind, and one
// series per label combination (a single unlabelled series for plain
// metrics).
type Family struct {
	name    string
	help    string
	kind    Kind
	bounds  []float64 // histogram upper bounds, ascending; +Inf implicit
	valueFn func() float64

	mu     sync.Mutex
	series map[string]*Series
}

// Series is a single time series of a family: the object metric values
// are written to. All mutators are atomic.
type Series struct {
	fam    *Family
	labels string // rendered `{k="v",...}` or ""

	bits atomic.Uint64 // counter/gauge value as float64 bits

	// Histogram state; counts has len(bounds)+1, the last being +Inf.
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the family for name, creating it if absent. It
// panics on a kind conflict or invalid name: both are wiring bugs.
func (r *Registry) register(name, help string, kind Kind, bounds []float64) *Family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		return f
	}
	f := &Family{
		name:   name,
		help:   help,
		kind:   kind,
		bounds: bounds,
		series: make(map[string]*Series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or finds) a counter family and returns its
// unlabelled series.
func (r *Registry) Counter(name, help string) *Series {
	return r.register(name, help, KindCounter, nil).With()
}

// Gauge registers (or finds) a gauge family and returns its unlabelled
// series.
func (r *Registry) Gauge(name, help string) *Series {
	return r.register(name, help, KindGauge, nil).With()
}

// Histogram registers (or finds) a histogram family with the given
// ascending upper bounds and returns its unlabelled series.
func (r *Registry) Histogram(name, help string, bounds []float64) *Series {
	return r.register(name, help, KindHistogram, bounds).With()
}

// CounterVec registers a counter family whose series are distinguished
// by labels passed to With.
func (r *Registry) CounterVec(name, help string) *Family {
	return r.register(name, help, KindCounter, nil)
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string) *Family {
	return r.register(name, help, KindGauge, nil)
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64) *Family {
	return r.register(name, help, KindHistogram, bounds)
}

// GaugeFunc registers a gauge whose value is computed by fn at
// scrape/snapshot time — for instantaneous quantities (queue depth,
// cache entries, uptime) that already have an owner.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil)
	f.valueFn = fn
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// With returns the series for the given label pairs (key, value, key,
// value, ...), creating it on first use. With no arguments it returns
// the unlabelled series.
func (f *Family) With(kv ...string) *Series {
	if len(kv)%2 != 0 {
		panic("obs: With requires key/value pairs")
	}
	var labels string
	if len(kv) > 0 {
		var b strings.Builder
		b.WriteByte('{')
		for i := 0; i < len(kv); i += 2 {
			if !validName(kv[i]) {
				panic(fmt.Sprintf("obs: invalid label name %q", kv[i]))
			}
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s="%s"`, kv[i], escapeLabelValue(kv[i+1]))
		}
		b.WriteByte('}')
		labels = b.String()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[labels]
	if !ok {
		s = &Series{fam: f, labels: labels}
		if f.kind == KindHistogram {
			s.counts = make([]atomic.Uint64, len(f.bounds)+1)
		}
		f.series[labels] = s
	}
	return s
}

// Total sums the current values of every series in a counter or gauge
// family — e.g. total HTTP requests across per-endpoint series.
func (f *Family) Total() float64 {
	if f.kind == KindHistogram {
		panic("obs: Total on histogram family")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var t float64
	for _, s := range f.series {
		t += s.Value()
	}
	return t
}

func (s *Series) addFloat(a *atomic.Uint64, delta float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// Add increments a counter or gauge by delta. Counters reject negative
// deltas (panic: wiring bug).
func (s *Series) Add(delta float64) {
	if s.fam.kind == KindHistogram {
		panic("obs: Add on histogram series")
	}
	if s.fam.kind == KindCounter && delta < 0 {
		panic("obs: negative counter increment")
	}
	s.addFloat(&s.bits, delta)
}

// Inc adds 1.
func (s *Series) Inc() { s.Add(1) }

// Set stores a gauge's value.
func (s *Series) Set(v float64) {
	if s.fam.kind != KindGauge {
		panic("obs: Set on non-gauge series")
	}
	s.bits.Store(math.Float64bits(v))
}

// SetMax raises a gauge to v if v exceeds the current value — a
// high-water-mark gauge.
func (s *Series) SetMax(v float64) {
	if s.fam.kind != KindGauge {
		panic("obs: SetMax on non-gauge series")
	}
	for {
		old := s.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if s.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value of a counter or gauge.
func (s *Series) Value() float64 {
	if s.fam.kind == KindHistogram {
		panic("obs: Value on histogram series")
	}
	return math.Float64frombits(s.bits.Load())
}

// Observe records one sample into a histogram.
func (s *Series) Observe(v float64) {
	if s.fam.kind != KindHistogram {
		panic("obs: Observe on non-histogram series")
	}
	idx := sort.SearchFloat64s(s.fam.bounds, v) // first bound >= v
	s.counts[idx].Add(1)
	s.count.Add(1)
	s.addFloat(&s.sum, v)
}

// Count returns a histogram's total sample count.
func (s *Series) Count() uint64 { return s.count.Load() }

// Sum returns a histogram's sample sum.
func (s *Series) Sum() float64 { return math.Float64frombits(s.sum.Load()) }

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point, +Inf as "+Inf".
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format
// (version 0.0.4), families sorted by name and series by label string,
// so output is deterministic for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*Family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.valueFn != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(f.valueFn()))
			continue
		}
		f.mu.Lock()
		labels := make([]string, 0, len(f.series))
		for l := range f.series {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		series := make([]*Series, 0, len(labels))
		for _, l := range labels {
			series = append(series, f.series[l])
		}
		f.mu.Unlock()
		for i, s := range series {
			switch f.kind {
			case KindHistogram:
				s.writeHistogram(&b, labels[i])
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labels[i], formatValue(s.Value()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets, sum,
// count. The le label is appended to any existing labels.
func (s *Series) writeHistogram(b *strings.Builder, labels string) {
	name := s.fam.name
	joinLe := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		return fmt.Sprintf(`%s,le="%s"}`, labels[:len(labels)-1], le)
	}
	var cum uint64
	for i, bound := range s.fam.bounds {
		cum += s.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, joinLe(formatValue(bound)), cum)
	}
	cum += s.counts[len(s.fam.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, joinLe("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatValue(s.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}
