package obs

import "runtime"

// Version identifies this build of the analysis toolchain. It is
// surfaced by `vsfs -version`, `GET /healthz`, and the
// vsfs_build_info{version,go} gauge on /metrics, so a deployment is
// identifiable from a scrape alone. Bumped whenever the report schema,
// ledger schema, or bench baseline changes shape.
const Version = "0.7.0"

// GoVersion reports the Go toolchain the binary was built with.
func GoVersion() string { return runtime.Version() }

// RegisterBuildInfo materialises the conventional build-info gauge
// (value fixed at 1; the information rides in the labels) on r.
func RegisterBuildInfo(r *Registry) {
	r.GaugeVec("vsfs_build_info",
		"Build identity; the value is always 1, the labels carry the facts.").
		With("version", Version, "go", GoVersion()).Set(1)
}
