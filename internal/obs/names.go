package obs

// MetricNames is the single declared registry of every metric family
// the system may register, mapped to its kind. The vsfs-lint
// metricname analyzer cross-checks each Registry registration call
// against this table at vet time, so the dup-name / typo'd-family
// class of bug (two call sites drifting apart, a dashboard scraping a
// name that no longer exists) is impossible to merge: a registration
// absent from this map, a map entry no call site registers, or the
// same name registered under two kinds all fail `make lint`.
//
// Keep entries sorted by name; obs tests and the analyzer enforce the
// naming convention (vsfs_ prefix, [a-z0-9_], counters end in
// _total).
var MetricNames = map[string]Kind{
	"vsfs_attr_charges_total":            KindCounter,
	"vsfs_attr_object_cost":              KindHistogram,
	"vsfs_breaker_opens_total":           KindCounter,
	"vsfs_breaker_rejects_total":         KindCounter,
	"vsfs_budget_exceeded_total":         KindCounter,
	"vsfs_build_info":                    KindGauge,
	"vsfs_cache_entries":                 KindGauge,
	"vsfs_cache_requests_total":          KindCounter,
	"vsfs_degraded_results_total":        KindCounter,
	"vsfs_distinct_versions":             KindGauge,
	"vsfs_findings_total":                KindCounter,
	"vsfs_gateway_draining":              KindGauge,
	"vsfs_gateway_ejections_total":       KindCounter,
	"vsfs_gateway_hedges_total":          KindCounter,
	"vsfs_gateway_http_requests_total":   KindCounter,
	"vsfs_gateway_no_replica_total":      KindCounter,
	"vsfs_gateway_readmissions_total":    KindCounter,
	"vsfs_gateway_replica_healthy":       KindGauge,
	"vsfs_gateway_requests_total":        KindCounter,
	"vsfs_gateway_retries_total":         KindCounter,
	"vsfs_gateway_ring_rebalances":       KindGauge,
	"vsfs_gateway_upstream_errors_total": KindCounter,
	"vsfs_gateway_upstream_seconds":      KindHistogram,
	"vsfs_gateway_uptime_seconds":        KindGauge,
	"vsfs_guard_panics_total":            KindCounter,
	"vsfs_http_requests_total":           KindCounter,
	"vsfs_parallel_solves_total":         KindCounter,
	"vsfs_points_to_sets":                KindHistogram,
	"vsfs_prelabels":                     KindGauge,
	"vsfs_propagations_total":            KindCounter,
	"vsfs_queue_depth":                   KindGauge,
	"vsfs_requests_total":                KindCounter,
	"vsfs_shape_address_taken":           KindGauge,
	"vsfs_shape_indirect_density":        KindGauge,
	"vsfs_shape_instrs":                  KindGauge,
	"vsfs_shape_singleton_ratio":         KindGauge,
	"vsfs_shape_store_load_ratio":        KindGauge,
	"vsfs_shard_imbalance":               KindGauge,
	"vsfs_shard_pops_total":              KindCounter,
	"vsfs_shard_steals_total":            KindCounter,
	"vsfs_shed_requests_total":           KindCounter,
	"vsfs_singleflight_shared_total":     KindCounter,
	"vsfs_solve_max_seconds":             KindGauge,
	"vsfs_solve_phase_seconds":           KindHistogram,
	"vsfs_solve_seconds":                 KindHistogram,
	"vsfs_solves_started_total":          KindCounter,
	"vsfs_solves_total":                  KindCounter,
	"vsfs_uptime_seconds":                KindGauge,
	"vsfs_workers":                       KindGauge,
	"vsfs_workers_busy":                  KindGauge,
	"vsfs_worklist_high_water":           KindGauge,
}
