package obs

import (
	"context"
	"sort"
)

// Collector receives per-object solver cost events. The solvers charge
// every worklist pop, set union, stored set, and meld operation to the
// abstract object that owns the work (or to object 0, the
// "unattributed" bucket, when no single object does), so per-object
// totals are conserved: they sum exactly to the solver-wide gauges the
// stats structs already report. *ObjectAttr is the one implementation;
// the interface exists so the facade and server can consume attribution
// without depending on the concrete counter layout.
type Collector interface {
	Pop(o uint32)
	Prop(o uint32)
	Set(o uint32)
	Meld(o uint32)
}

// ObjectAttr is a zero-allocation Collector: four flat uint64 slices
// indexed by object ID, grown geometrically as field objects
// materialise mid-solve. It is NOT safe for concurrent use — each solve
// owns its own ObjectAttr, exactly like the solver state it shadows.
//
// Every method is nil-receiver safe, so solver code holds a concrete
// *ObjectAttr (nil when attribution is off) and the disabled path costs
// one predictable branch per event rather than an interface dispatch —
// that is what keeps the disabled-path overhead within the ≤5% budget.
type ObjectAttr struct {
	pops  []uint64
	props []uint64
	sets  []uint64
	melds []uint64
}

// NewObjectAttr returns a collector pre-sized for object IDs < hint.
func NewObjectAttr(hint int) *ObjectAttr {
	if hint < 1 {
		hint = 1
	}
	return &ObjectAttr{
		pops:  make([]uint64, hint),
		props: make([]uint64, hint),
		sets:  make([]uint64, hint),
		melds: make([]uint64, hint),
	}
}

func grow(s []uint64, o uint32) []uint64 {
	n := len(s) * 2
	if n <= int(o) {
		n = int(o) + 1
	}
	out := make([]uint64, n)
	copy(out, s)
	return out
}

// Pop charges one worklist pop to object o (0 = unattributed).
func (a *ObjectAttr) Pop(o uint32) {
	if a == nil {
		return
	}
	if int(o) >= len(a.pops) {
		a.pops = grow(a.pops, o)
	}
	a.pops[o]++
}

// Prop charges one attempted set union to object o.
func (a *ObjectAttr) Prop(o uint32) {
	if a == nil {
		return
	}
	if int(o) >= len(a.props) {
		a.props = grow(a.props, o)
	}
	a.props[o]++
}

// Set charges one stored points-to set to object o: an (object,
// version) set for VSFS, an IN/OUT map entry for SFS, a non-empty node
// set for the CFG-free backend.
func (a *ObjectAttr) Set(o uint32) {
	if a == nil {
		return
	}
	if int(o) >= len(a.sets) {
		a.sets = grow(a.sets, o)
	}
	a.sets[o]++
}

// Meld charges one meld-labelling operation to object o (VSFS only).
func (a *ObjectAttr) Meld(o uint32) {
	if a == nil {
		return
	}
	if int(o) >= len(a.melds) {
		a.melds = grow(a.melds, o)
	}
	a.melds[o]++
}

// Merge folds other's counters into a. The parallel solver gives each
// worker and each shard a private ObjectAttr (the type is not safe for
// concurrent use) and merges them into the run's collector after the
// final barrier; because counter addition commutes, the merged totals —
// and therefore TopK's deterministic cost/ID ordering — are identical
// no matter how work was scheduled across workers. Merging into a nil
// collector is a no-op, like every other ObjectAttr method.
func (a *ObjectAttr) Merge(other *ObjectAttr) {
	if a == nil || other == nil {
		return
	}
	merge := func(dst *[]uint64, src []uint64) {
		if len(src) == 0 {
			return
		}
		if len(src) > len(*dst) {
			*dst = append(*dst, make([]uint64, len(src)-len(*dst))...)
		}
		for i, v := range src {
			(*dst)[i] += v
		}
	}
	merge(&a.pops, other.pops)
	merge(&a.props, other.props)
	merge(&a.sets, other.sets)
	merge(&a.melds, other.melds)
}

func total(a *ObjectAttr, pick func(*ObjectAttr) []uint64) uint64 {
	if a == nil {
		return 0
	}
	var t uint64
	for _, v := range pick(a) {
		t += v
	}
	return t
}

// TotalPops returns the sum of all charged pops — by the conservation
// rule, exactly the solver's NodesProcessed. Nil-safe, like every
// ObjectAttr method.
func (a *ObjectAttr) TotalPops() uint64 {
	return total(a, func(a *ObjectAttr) []uint64 { return a.pops })
}

// TotalProps returns the sum of all charged unions — exactly the
// solver's Propagations.
func (a *ObjectAttr) TotalProps() uint64 {
	return total(a, func(a *ObjectAttr) []uint64 { return a.props })
}

// TotalSets returns the sum of all charged stored sets — exactly the
// solver's PtsSets.
func (a *ObjectAttr) TotalSets() uint64 {
	return total(a, func(a *ObjectAttr) []uint64 { return a.sets })
}

// TotalMelds returns the sum of all charged meld operations — exactly
// the versioning pass's MeldOps.
func (a *ObjectAttr) TotalMelds() uint64 {
	return total(a, func(a *ObjectAttr) []uint64 { return a.melds })
}

// HotObject is one row of the top-K cost table: everything the solve
// charged to a single abstract object. The zero ID row aggregates
// unattributed work (top-level propagation, copy/phi/alloc unions).
type HotObject struct {
	Object       string `json:"object"`
	ID           uint32 `json:"id"`
	Pops         uint64 `json:"pops"`
	Propagations uint64 `json:"propagations"`
	Sets         uint64 `json:"sets,omitempty"`
	Melds        uint64 `json:"melds,omitempty"`
}

// cost is the ranking key of the hot-objects table.
func (h HotObject) cost() uint64 { return h.Propagations + h.Pops + h.Melds }

// TopK returns the k costliest objects, ranked by propagations + pops +
// melds with ties broken by ascending ID (deterministic), skipping
// objects that were never charged. nameOf renders object IDs; it is
// never called for ID 0, which is reported as "(unattributed)".
func (a *ObjectAttr) TopK(k int, nameOf func(o uint32) string) []HotObject {
	if a == nil || k <= 0 {
		return nil
	}
	n := len(a.pops)
	for _, s := range [][]uint64{a.props, a.sets, a.melds} {
		if len(s) > n {
			n = len(s)
		}
	}
	at := func(s []uint64, i int) uint64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	rows := make([]HotObject, 0, 16)
	for i := 0; i < n; i++ {
		h := HotObject{
			ID:           uint32(i),
			Pops:         at(a.pops, i),
			Propagations: at(a.props, i),
			Sets:         at(a.sets, i),
			Melds:        at(a.melds, i),
		}
		if h.Pops == 0 && h.Propagations == 0 && h.Sets == 0 && h.Melds == 0 {
			continue
		}
		if i == 0 {
			h.Object = "(unattributed)"
		} else {
			h.Object = nameOf(uint32(i))
		}
		rows = append(rows, h)
	}
	sort.Slice(rows, func(i, j int) bool {
		if ci, cj := rows[i].cost(), rows[j].cost(); ci != cj {
			return ci > cj
		}
		return rows[i].ID < rows[j].ID
	})
	if len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// attrKey keys a *ObjectAttr in a context.
type attrKey struct{}

// WithCollector returns ctx carrying the collector, so the solver
// packages can pick it up without signature changes — the same pattern
// the tracer uses.
func WithCollector(ctx context.Context, c Collector) context.Context {
	return context.WithValue(ctx, attrKey{}, c)
}

// AttrFrom extracts the context's collector as its concrete type, or
// nil when attribution is off (or a foreign Collector implementation
// was attached — solvers only know how to drive the zero-alloc one).
func AttrFrom(ctx context.Context) *ObjectAttr {
	a, _ := ctx.Value(attrKey{}).(*ObjectAttr)
	return a
}
