package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Ledger is an append-only, size-rotated JSONL run log: one JSON object
// per line, whole lines only. When appending a record would push the
// current file past its size cap, the file is first renamed to
// <path>.1 (replacing any previous rotation) and a fresh file is
// opened — rotation therefore only ever happens at a line boundary, so
// neither file can hold a torn line. Append and Tail share one mutex,
// making concurrent writers and readers safe within a process.
type Ledger struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
}

// DefaultLedgerMaxBytes caps one ledger file before rotation; with the
// rotated predecessor retained, on-disk usage stays under twice this.
const DefaultLedgerMaxBytes = 8 << 20

// OpenLedger opens (creating if needed) the ledger at path, appending
// to any existing content. maxBytes <= 0 selects
// DefaultLedgerMaxBytes.
func OpenLedger(path string, maxBytes int64) (*Ledger, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultLedgerMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Ledger{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// Path returns the ledger's current file path.
func (l *Ledger) Path() string { return l.path }

// Append marshals v as one JSON line and appends it, rotating first if
// the line would overflow the size cap. An over-cap record on an empty
// file is still written whole — records are never split.
func (l *Ledger) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.size > 0 && l.size+int64(len(data)) > l.maxBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(data)
	l.size += int64(n)
	return err
}

func (l *Ledger) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(l.path, l.path+".1"); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.size = 0
	return nil
}

// Tail returns the last n records, oldest first, reading the rotated
// predecessor when the current file holds fewer than n lines. Lines
// that fail to parse as JSON are reported as an error rather than
// skipped: the whole-line append discipline means a malformed line is
// corruption, not an expected state.
func (l *Ledger) Tail(n int) ([]json.RawMessage, error) {
	if n <= 0 {
		return []json.RawMessage{}, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []json.RawMessage
	for _, p := range []string{l.path + ".1", l.path} {
		recs, err := readLines(p)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out, nil
}

// Close flushes and closes the current file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

func readLines(path string) ([]json.RawMessage, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []json.RawMessage
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			return nil, fmt.Errorf("ledger %s: line %d is not valid JSON", path, lineNo)
		}
		rec := make(json.RawMessage, len(line))
		copy(rec, line)
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger %s: %w", path, err)
	}
	return out, nil
}
