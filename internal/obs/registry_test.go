package obs

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// promLine matches one sample line of the text exposition format:
// name{labels} value. Labels are validated separately.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

var promLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)

// checkPrometheusText validates the exposition output line by line:
// every line is a HELP/TYPE comment or a sample, every sample's family
// has a preceding TYPE, histogram families expose _bucket/_sum/_count,
// and label pairs are well-formed. Returns the parsed samples.
func checkPrometheusText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample line: %q", ln+1, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if _, ok := typed[strings.TrimSuffix(name, suffix)]; ok {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		if labels != "" {
			inner := labels[1 : len(labels)-1]
			for _, pair := range strings.Split(inner, ",") {
				if !promLabel.MatchString(pair) {
					t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
				}
			}
		}
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		default:
			var err error
			v, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
		}
		samples[name+labels] = v
	}
	return samples
}

func TestWritePrometheusValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("vsfs_solves_total", "Total solves started.").Add(3)
	r.Gauge("vsfs_queue_depth", "Jobs waiting for a worker.").Set(2)
	r.GaugeFunc("vsfs_uptime_seconds", "Daemon uptime.", func() float64 { return 12.5 })
	v := r.CounterVec("vsfs_cache_requests_total", "Cache lookups by result.")
	v.With("result", "hit").Add(5)
	v.With("result", "miss").Inc()
	h := r.HistogramVec("vsfs_solve_phase_seconds", "Per-phase solve latency.", LatencyBuckets)
	h.With("phase", "andersen").Observe(0.003)
	h.With("phase", "solve").Observe(1.7)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := checkPrometheusText(t, b.String())

	if got := samples["vsfs_solves_total"]; got != 3 {
		t.Errorf("vsfs_solves_total = %v, want 3", got)
	}
	if got := samples[`vsfs_cache_requests_total{result="hit"}`]; got != 5 {
		t.Errorf("cache hit counter = %v, want 5", got)
	}
	if got := samples["vsfs_uptime_seconds"]; got != 12.5 {
		t.Errorf("uptime gauge func = %v, want 12.5", got)
	}
	if got := samples[`vsfs_solve_phase_seconds_count{phase="solve"}`]; got != 1 {
		t.Errorf("histogram count = %v, want 1", got)
	}
	if got := samples[`vsfs_solve_phase_seconds_bucket{phase="solve",le="+Inf"}`]; got != 1 {
		t.Errorf("+Inf bucket = %v, want 1", got)
	}
}

func TestHistogramBucketsMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pts_sets", "Points-to sets stored per solve.", SizeBuckets)
	for _, v := range []float64{0, 1, 3, 17, 300, 1e6, 5e6, 64, 64, 65536} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := checkPrometheusText(t, b.String())

	prev := -1.0
	for _, bound := range SizeBuckets {
		key := fmt.Sprintf(`pts_sets_bucket{le="%s"}`, formatValue(bound))
		got, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if got < prev {
			t.Fatalf("bucket %s = %v < previous %v: not monotone", key, got, prev)
		}
		prev = got
	}
	inf := samples[`pts_sets_bucket{le="+Inf"}`]
	if inf < prev {
		t.Fatalf("+Inf bucket %v < previous %v", inf, prev)
	}
	if inf != 10 || samples["pts_sets_count"] != 10 {
		t.Fatalf("count = %v / +Inf = %v, want 10", samples["pts_sets_count"], inf)
	}
	// Exact bucketing: bounds are inclusive upper bounds.
	if got := samples[`pts_sets_bucket{le="1"}`]; got != 2 { // 0 and 1
		t.Errorf("le=1 bucket = %v, want 2", got)
	}
	if got := samples[`pts_sets_bucket{le="64"}`]; got != 6 { // + 3, 17, 64, 64
		t.Errorf("le=64 bucket = %v, want 6", got)
	}
}

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Errorf("counter = %v, want 3", c.Value())
	}
	g := r.Gauge("g", "")
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Errorf("gauge = %v, want 6", g.Value())
	}
	g.SetMax(5)
	if g.Value() != 6 {
		t.Errorf("SetMax lowered the gauge: %v", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Errorf("SetMax = %v, want 9", g.Value())
	}
	// Registration is idempotent: same name returns the same series.
	if r.Counter("c_total", "") != c {
		t.Error("re-registration returned a different series")
	}
	if r.CounterVec("v_total", "").With("a", "1") != r.CounterVec("v_total", "").With("a", "1") {
		t.Error("vec With not idempotent")
	}
	if r.CounterVec("v_total", "").Total() != 0 {
		t.Errorf("Total = %v, want 0", r.CounterVec("v_total", "").Total())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("h", "", LatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %v, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-80) > 1e-9 {
		t.Errorf("histogram sum = %v, want 80", h.Sum())
	}
}
