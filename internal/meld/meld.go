// Package meld implements meld labelling (Section IV-B of the paper): a
// prelabelling extension for directed graphs. Prelabelled nodes carry
// distinct atoms; every other node ends up labelled with the meld (here:
// set union) of the labels of the prelabelled nodes that transitively
// reach it. The meld operator is commutative, associative, idempotent
// and has an identity ε (the empty atom set), exactly the laws Section
// IV-B requires; labels are interned so equal label sets share one ID
// and comparing labels is integer comparison.
package meld

import "vsfs/internal/bitset"

// Version is an interned label: an ID standing for a set of prelabel
// atoms. The zero Version is ε, the identity.
type Version = uint32

// Epsilon is the identity label ε.
const Epsilon Version = 0

// TableStats quantifies meld-operator effort: how many melds were
// evaluated, how many were answered from the pair cache or the subset
// fast paths without touching the interner, and how many allocated a
// genuinely new label. These are the per-run numbers behind the
// "distinct versions" column of the versioning-effectiveness table.
type TableStats struct {
	Melds      int // non-trivial Meld evaluations (identity/ε short-circuits excluded)
	CacheHits  int // melds answered from the pair cache
	SubsetFast int // melds answered by a subset fast path
	NewLabels  int // melds that interned a new label
}

// Table allocates atoms and evaluates the meld operator over interned
// label sets. It is the label domain 𝒦 of the paper.
type Table struct {
	in    *bitset.Interner
	atoms uint32
	cache map[[2]Version]Version
	stats TableStats
}

// NewTable returns an empty label domain.
func NewTable() *Table {
	return &Table{
		in:    bitset.NewInterner(),
		cache: make(map[[2]Version]Version),
	}
}

// NewAtom returns a fresh prelabel: a label distinct from every other
// label, melding with which yields a strictly larger label.
func (t *Table) NewAtom() Version {
	a := t.atoms
	t.atoms++
	return t.in.Intern(bitset.Of(a))
}

// Meld returns a ⊙ b.
func (t *Table) Meld(a, b Version) Version {
	if a == b || b == Epsilon {
		return a
	}
	if a == Epsilon {
		return b
	}
	t.stats.Melds++
	key := [2]Version{a, b}
	if a > b {
		key = [2]Version{b, a}
	}
	if r, ok := t.cache[key]; ok {
		t.stats.CacheHits++
		return r
	}
	// Subset fast paths avoid interner churn: melding a label into one
	// that already covers it is the common case at convergence.
	sa, sb := t.in.Get(a), t.in.Get(b)
	var r Version
	switch {
	case sb.SubsetOf(sa):
		r = a
		t.stats.SubsetFast++
	case sa.SubsetOf(sb):
		r = b
		t.stats.SubsetFast++
	default:
		before := t.in.Len()
		u := sa.Clone()
		u.UnionWith(sb)
		r = t.in.Intern(u)
		if t.in.Len() > before {
			t.stats.NewLabels++
		}
	}
	t.cache[key] = r
	return r
}

// Stats returns the table's effort counters.
func (t *Table) Stats() TableStats { return t.stats }

// Atoms returns the number of atoms allocated.
func (t *Table) Atoms() int { return int(t.atoms) }

// Distinct returns the number of distinct labels seen (including ε).
func (t *Table) Distinct() int { return t.in.Len() }

// AtomSet exposes the underlying atom set of a label, for tests and
// diagnostics. The result must not be mutated.
func (t *Table) AtomSet(v Version) *bitset.Sparse { return t.in.Get(v) }

// Run performs plain meld labelling on a directed graph: nodes in
// prelabelled get fresh distinct atoms (frozen — [MELD] never changes
// them); every other node starts at ε and accumulates melds from its
// incoming neighbours until a fixed point. succs enumerates the
// out-edges of a node. Returns the final labelling and the table.
//
// This is the general-purpose form used for the paper's Figure 4; the
// points-to analysis uses the per-object two-slot variant implemented in
// internal/core on top of Table.
func Run(numNodes int, succs func(uint32) []uint32, prelabelled []uint32) ([]Version, *Table) {
	t := NewTable()
	label := make([]Version, numNodes)
	frozen := make([]bool, numNodes)
	for _, n := range prelabelled {
		label[n] = t.NewAtom()
		frozen[n] = true
	}
	queue := append([]uint32(nil), prelabelled...)
	inQueue := make([]bool, numNodes)
	for _, n := range prelabelled {
		inQueue[n] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		inQueue[n] = false
		for _, s := range succs(n) {
			if frozen[s] {
				continue
			}
			if m := t.Meld(label[s], label[n]); m != label[s] {
				label[s] = m
				if !inQueue[s] {
					inQueue[s] = true
					queue = append(queue, s)
				}
			}
		}
	}
	return label, t
}
