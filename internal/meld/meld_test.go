package meld

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vsfs/internal/graph"
)

// TestOperatorLaws checks the four laws of Section IV-B on random labels
// built from random atom melds.
func TestOperatorLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := NewTable()
		// Build a pool of labels by melding random atoms.
		pool := []Version{Epsilon}
		for i := 0; i < 8; i++ {
			pool = append(pool, tab.NewAtom())
		}
		for i := 0; i < 20; i++ {
			a := pool[r.Intn(len(pool))]
			b := pool[r.Intn(len(pool))]
			pool = append(pool, tab.Meld(a, b))
		}
		a := pool[r.Intn(len(pool))]
		b := pool[r.Intn(len(pool))]
		c := pool[r.Intn(len(pool))]
		if tab.Meld(a, b) != tab.Meld(b, a) {
			return false // commutativity
		}
		if tab.Meld(a, tab.Meld(b, c)) != tab.Meld(tab.Meld(a, b), c) {
			return false // associativity
		}
		if tab.Meld(a, a) != a {
			return false // idempotence
		}
		if tab.Meld(a, Epsilon) != a {
			return false // identity
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAtomsAreDistinct(t *testing.T) {
	tab := NewTable()
	a := tab.NewAtom()
	b := tab.NewAtom()
	if a == b {
		t.Fatal("two atoms interned to the same version")
	}
	if a == Epsilon || b == Epsilon {
		t.Fatal("atom equals ε")
	}
	m := tab.Meld(a, b)
	if m == a || m == b || m == Epsilon {
		t.Error("meld of distinct atoms collapsed")
	}
	if tab.Atoms() != 2 {
		t.Errorf("Atoms = %d", tab.Atoms())
	}
	if tab.Distinct() != 4 { // ε, {a}, {b}, {a,b}
		t.Errorf("Distinct = %d, want 4", tab.Distinct())
	}
}

// TestFigure4 reconstructs the paper's Figure 4: a 9-node graph with two
// prelabelled nodes. Node numbering (1-based in the figure, 0-based
// here):
//
//	1→3, 2→3, 2→4, 3→5, 4→6, 5→7, 6→7, 3→8(via 5? no)…
//
// The figure's exact topology is not fully recoverable from text, so we
// build the property it illustrates: two nodes with *different incoming
// neighbours* finish with the same label when the same set of prelabels
// reaches them.
func TestFigure4Property(t *testing.T) {
	// Graph: p1 → a → c, p2 → b → c, c → d
	//        p1 → e, p2 → e            (e: both prelabels, direct)
	// c and e have different incoming neighbours but identical reaching
	// prelabel sets {p1, p2}.
	const (
		p1 = iota
		p2
		a
		b
		c
		d
		e
		n
	)
	g := graph.New(n)
	g.AddEdge(p1, a)
	g.AddEdge(a, c)
	g.AddEdge(p2, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	g.AddEdge(p1, e)
	g.AddEdge(p2, e)

	label, tab := Run(n, g.Succs, []uint32{p1, p2})

	if label[a] != label[p1] {
		t.Errorf("label(a) = %d, want p1's label %d", label[a], label[p1])
	}
	if label[b] != label[p2] {
		t.Errorf("label(b) = %d, want p2's label", label[b])
	}
	if label[c] != label[e] {
		t.Errorf("label(c) = %d ≠ label(e) = %d despite same reaching prelabels", label[c], label[e])
	}
	if label[d] != label[c] {
		t.Errorf("label(d) = %d, want c's label (single incoming)", label[d])
	}
	if label[c] == label[p1] || label[c] == label[p2] {
		t.Error("melded label collapsed into a prelabel")
	}
	want := tab.Meld(label[p1], label[p2])
	if label[c] != want {
		t.Errorf("label(c) = %d, want meld %d", label[c], want)
	}
}

func TestPrelabelledNodesNeverChange(t *testing.T) {
	// p2 is reachable from p1, but prelabels are frozen.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	label, tab := Run(3, g.Succs, []uint32{0, 1})
	if tab.AtomSet(label[1]).Len() != 1 {
		t.Errorf("prelabelled node 1 changed: %v", tab.AtomSet(label[1]))
	}
	// Node 2 melds only node 1's label (its sole incoming neighbour).
	if label[2] != label[1] {
		t.Errorf("label(2) = %d, want %d", label[2], label[1])
	}
}

func TestUnreachableStaysEpsilon(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	// 2 → 3 unreachable from prelabel 0.
	g.AddEdge(2, 3)
	label, _ := Run(4, g.Succs, []uint32{0})
	if label[2] != Epsilon || label[3] != Epsilon {
		t.Errorf("unreachable nodes not ε: %v", label)
	}
}

func TestCycleConverges(t *testing.T) {
	// p → a → b → a (cycle); both a and b end with p's label.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	label, _ := Run(3, g.Succs, []uint32{0})
	if label[1] != label[0] || label[2] != label[0] {
		t.Errorf("cycle labels = %v", label)
	}
}

// Property: the final label of every non-prelabelled node equals the
// meld of the atoms of exactly the prelabelled nodes that reach it.
func TestQuickLabelEqualsReachingPrelabels(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(15)
		g := graph.New(n)
		for e := 0; e < 3*n; e++ {
			g.AddEdge(uint32(r.Intn(n)), uint32(r.Intn(n)))
		}
		var pre []uint32
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				pre = append(pre, uint32(v))
			}
		}
		label, tab := Run(n, g.Succs, pre)

		for v := 0; v < n; v++ {
			frozen := false
			for _, p := range pre {
				if p == uint32(v) {
					frozen = true
				}
			}
			if frozen {
				if tab.AtomSet(label[v]).Len() != 1 {
					return false
				}
				continue
			}
			want := Epsilon
			for _, p := range pre {
				// p reaches v via a path not passing through... no:
				// plain reachability, but labels propagate through
				// frozen nodes too (their labels flow out, they just
				// do not change). A prelabel q on the path masks
				// nothing — p's label still flows only if each hop is
				// unfrozen. Frozen intermediate nodes block p.
				if reachesAvoidingFrozen(g, p, uint32(v), pre) {
					want = tab.Meld(want, label[p])
				}
			}
			if label[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// reachesAvoidingFrozen reports whether from's label flows to to:
// a path from→…→to whose intermediate nodes are all unfrozen (frozen
// nodes absorb incoming labels without changing).
func reachesAvoidingFrozen(g *graph.Digraph, from, to uint32, pre []uint32) bool {
	frozen := map[uint32]bool{}
	for _, p := range pre {
		frozen[p] = true
	}
	seen := map[uint32]bool{from: true}
	work := []uint32{from}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.Succs(v) {
			if s == to {
				return true
			}
			if seen[s] || frozen[s] {
				continue
			}
			seen[s] = true
			work = append(work, s)
		}
	}
	return false
}
