// Package bench reproduces the paper's evaluation: it runs Andersen's
// analysis, SFS, VSFS and the CFG-free backend over the 15 synthetic
// benchmark profiles and renders Table II (benchmark characteristics)
// and Table III (time and memory), plus a per-backend comparison and
// the redundancy sweep backing the Section V shape claims.
//
// Timing follows the paper: the auxiliary analysis, memory-SSA and SVFG
// construction are excluded; the main solving phase is timed, and VSFS's
// versioning phase is reported separately. Memory is an analysis-level
// model — bytes backing points-to sets plus per-set and per-version
// bookkeeping overhead — rather than process RSS, because the former is
// deterministic and is precisely the quantity object versioning reduces.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/cfgfree"
	"vsfs/internal/checker"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/memssa"
	"vsfs/internal/sfs"
	"vsfs/internal/svfg"
	"vsfs/internal/workload"
)

// Options configures a benchmark run.
type Options struct {
	// Runs is the number of timed repetitions per analysis; the average
	// is reported (the paper used 5).
	Runs int

	// MemLimit, when nonzero, marks an analysis OOM in Table III if its
	// modelled memory exceeds this many bytes (the paper capped runs at
	// 120 GB, which SFS exceeded on lynx).
	MemLimit int64

	// Parallel, when ≥ 2, also times the sharded parallel VSFS engine
	// at that worker count and reports ParallelTime/ParallelSpeedup per
	// row (plus a "vsfs-parallel" backend row in JSON artifacts).
	Parallel int
}

// Row holds every measured quantity for one benchmark.
type Row struct {
	Profile workload.Profile

	// Table II.
	Nodes         int
	DirectEdges   int
	IndirectEdges int
	TopLevel      int
	AddressTaken  int

	// Table III.
	AndersenTime time.Duration
	AndersenMem  int64
	SFSTime      time.Duration
	SFSMem       int64
	SFSOOM       bool
	VersionTime  time.Duration
	VSFSTime     time.Duration
	VSFSMem      int64
	// Speedup is SFSTime / (VSFSTime + VersionTime); MemRatio is
	// SFSMem / VSFSMem. Both are zero when SFS OOMed: its time and
	// memory are not measurements there, so any ratio over them would
	// be garbage (tables render the column as "—" and means skip it).
	Speedup  float64
	MemRatio float64

	// Parallel engine (Options.Parallel ≥ 2 only): the sharded solve's
	// versioning + main-phase time and its speedup over the sequential
	// VSFS solve of the same graph. Memory is not reported separately —
	// the parallel engine stores the identical (object, version) sets.
	ParallelTime    time.Duration
	ParallelSpeedup float64

	// CFG-free backend (the Andersen-style flow-sensitive solver):
	// solving time over the program plus the auxiliary result, and the
	// modelled memory of its global sets and strong-update windows.
	CfgfreeTime time.Duration
	CfgfreeMem  int64

	SFSStats     sfs.Stats
	VSFSStats    core.Stats
	CfgfreeStats cfgfree.Stats

	// Checker overhead: wall time of the full memory-safety checker
	// suite over the solved VSFS facts, and how many findings it
	// produced. Quantifies what -check adds on top of solving.
	CheckTime     time.Duration
	CheckFindings int
}

// Per-entry overhead constants for the memory model: a bitset header +
// map entry ≈ 48 bytes; a consume/yield slot ≈ 16 bytes.
const (
	setOverhead  = 48
	slotOverhead = 16
)

// SFSMemBytes models SFS's points-to storage.
func SFSMemBytes(st sfs.Stats) int64 {
	return int64(st.PtsWords)*8 + int64(st.PtsSets)*setOverhead + int64(st.TopLevelWords)*8
}

// VSFSMemBytes models VSFS's points-to storage plus versioning overhead.
func VSFSMemBytes(st core.Stats) int64 {
	return int64(st.PtsWords)*8 + int64(st.PtsSets)*setOverhead + int64(st.TopLevelWords)*8 +
		int64(st.Versioning.ConsumeEntries+st.Versioning.YieldEntries)*slotOverhead
}

// CfgfreeMemBytes models the CFG-free backend's storage: the global
// per-variable and per-object sets plus one slot per store value held
// in a strong-update window.
func CfgfreeMemBytes(st cfgfree.Stats) int64 {
	return int64(st.PtsWords)*8 + int64(st.PtsSets)*setOverhead +
		int64(st.WindowStores)*slotOverhead
}

// AndersenMemBytes models the auxiliary analysis's storage. Cycle
// collapsing shares one set across a merged equivalence class, so
// distinct sets are counted once.
func AndersenMemBytes(prog *ir.Program, aux *andersen.Result) int64 {
	seen := make(map[*bitset.Sparse]bool)
	var bytes int64
	for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
		s := aux.PointsTo(v)
		if s.IsEmpty() || seen[s] {
			continue
		}
		seen[s] = true
		bytes += int64(s.Words())*8 + setOverhead
	}
	return bytes
}

// RunProfile builds one profile's program and measures all three
// analyses.
func RunProfile(p workload.Profile, opts Options) Row {
	if opts.Runs <= 0 {
		opts.Runs = 1
	}
	row := Row{Profile: p}

	prog := p.Build()

	// Auxiliary analysis (timed separately, per the paper's Table III).
	start := time.Now()
	aux := andersen.Analyze(prog)
	row.AndersenTime = time.Since(start)
	row.AndersenMem = AndersenMemBytes(prog, aux)

	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)

	row.Nodes = g.NumNodes
	row.DirectEdges = g.NumDirectEdges
	row.IndirectEdges = g.NumIndirectEdges
	row.TopLevel = g.NumTopLevel
	row.AddressTaken = g.NumAddressTaken

	var sfsTotal, vsfsTotal, verTotal, cfTotal, parTotal time.Duration
	var lastVR *core.Result
	for i := 0; i < opts.Runs; i++ {
		gs := g.Clone()
		start = time.Now()
		sr := sfs.Solve(gs)
		sfsTotal += time.Since(start)
		row.SFSStats = sr.Stats

		gv := g.Clone()
		vr := core.Solve(gv)
		vsfsTotal += vr.Stats.SolveTime
		verTotal += vr.Stats.Versioning.Duration
		row.VSFSStats = vr.Stats
		lastVR = vr

		if opts.Parallel > 1 {
			pr := core.SolveParallel(g.Clone(), opts.Parallel)
			parTotal += pr.Stats.SolveTime + pr.Stats.Versioning.Duration
		}

		start = time.Now()
		cr := cfgfree.Solve(prog, aux)
		cfTotal += time.Since(start)
		row.CfgfreeStats = cr.Stats
	}
	start = time.Now()
	row.CheckFindings = runCheckers(prog, lastVR)
	row.CheckTime = time.Since(start)
	row.SFSTime = sfsTotal / time.Duration(opts.Runs)
	row.VSFSTime = vsfsTotal / time.Duration(opts.Runs)
	row.VersionTime = verTotal / time.Duration(opts.Runs)
	row.CfgfreeTime = cfTotal / time.Duration(opts.Runs)

	row.SFSMem = SFSMemBytes(row.SFSStats)
	row.VSFSMem = VSFSMemBytes(row.VSFSStats)
	row.CfgfreeMem = CfgfreeMemBytes(row.CfgfreeStats)
	if opts.MemLimit > 0 && row.SFSMem > opts.MemLimit {
		// An OOMed SFS never finished: its time and modelled memory are
		// where it gave up, not measurements, so the SFS/VSFS ratios
		// stay zero rather than flattering VSFS with garbage.
		row.SFSOOM = true
	} else {
		if row.VSFSTime+row.VersionTime > 0 {
			row.Speedup = float64(row.SFSTime) / float64(row.VSFSTime+row.VersionTime)
		}
		if row.VSFSMem > 0 {
			row.MemRatio = float64(row.SFSMem) / float64(row.VSFSMem)
		}
	}
	if opts.Parallel > 1 {
		row.ParallelTime = parTotal / time.Duration(opts.Runs)
		if row.ParallelTime > 0 {
			row.ParallelSpeedup = float64(row.VSFSTime+row.VersionTime) / float64(row.ParallelTime)
		}
	}
	return row
}

// Run measures every profile, reporting progress to w (may be nil).
func Run(profiles []workload.Profile, opts Options, w io.Writer) []Row {
	rows := make([]Row, 0, len(profiles))
	for _, p := range profiles {
		if w != nil {
			fmt.Fprintf(w, "bench: %s...\n", p.Name)
		}
		rows = append(rows, RunProfile(p, opts))
	}
	return rows
}

// geoMean computes the geometric mean of xs, skipping non-positive
// entries (as the paper does for missing data).
func geoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// FormatTable2 renders Table II: benchmark characteristics.
func FormatTable2(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: benchmark characteristics (synthetic profiles, ~1/40 paper scale)\n\n")
	fmt.Fprintf(&b, "%-14s %9s %10s %10s %10s %10s  %s\n",
		"Bench.", "# Nodes", "# D.Edges", "# I.Edges", "TopLevel", "AddrTaken", "Description")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %10d %10d %10d %10d  %s\n",
			r.Profile.Name, r.Nodes, r.DirectEdges, r.IndirectEdges,
			r.TopLevel, r.AddressTaken, r.Profile.Desc)
	}
	return b.String()
}

// FormatTable3 renders Table III: analysis time and modelled memory.
func FormatTable3(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: time (ms) and modelled memory (MB)\n\n")
	fmt.Fprintf(&b, "%-14s %9s | %9s %9s | %7s %9s %9s | %9s %8s\n",
		"Bench.", "Ander.", "SFS t", "SFS MB", "ver t", "VSFS t", "VSFS MB", "Time diff", "Mem diff")
	var speedups, memRatios []float64
	for _, r := range rows {
		sfsT := fmt.Sprintf("%9.1f", ms(r.SFSTime))
		sfsM := fmt.Sprintf("%9.2f", mb(r.SFSMem))
		diffT := fmt.Sprintf("%8.2fx", r.Speedup)
		diffM := fmt.Sprintf("%7.2fx", r.MemRatio)
		if r.SFSOOM {
			// Both ratios are meaningless when SFS never finished; keep
			// them out of the table and the averages entirely.
			sfsT, diffT, diffM = "      OOM", "        —", "      —"
		} else {
			speedups = append(speedups, r.Speedup)
			memRatios = append(memRatios, r.MemRatio)
		}
		fmt.Fprintf(&b, "%-14s %9.1f | %s %s | %7.1f %9.1f %9.2f | %s %s\n",
			r.Profile.Name, ms(r.AndersenTime), sfsT, sfsM,
			ms(r.VersionTime), ms(r.VSFSTime), mb(r.VSFSMem), diffT, diffM)
	}
	fmt.Fprintf(&b, "\n%-14s %s %8.2fx %s %7.2fx\n", "Average", strings.Repeat(" ", 63),
		geoMean(speedups), strings.Repeat(" ", 1), geoMean(memRatios))
	return b.String()
}

// FormatParallel renders the parallel-engine comparison: the sequential
// VSFS solve (versioning + main phase) against the sharded engine at the
// measured worker count, per benchmark. Rows that never ran the parallel
// engine are skipped.
func FormatParallel(rows []Row, workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel VSFS: sequential vs sharded solve at %d workers\n\n", workers)
	fmt.Fprintf(&b, "%-14s %11s %11s %9s\n", "Bench.", "seq ms", "par ms", "speedup")
	var speedups []float64
	for _, r := range rows {
		if r.ParallelTime <= 0 {
			continue
		}
		fmt.Fprintf(&b, "%-14s %11.1f %11.1f %8.2fx\n",
			r.Profile.Name, ms(r.VSFSTime+r.VersionTime), ms(r.ParallelTime), r.ParallelSpeedup)
		speedups = append(speedups, r.ParallelSpeedup)
	}
	fmt.Fprintf(&b, "\n%-14s %s %8.2fx\n", "Average", strings.Repeat(" ", 23), geoMean(speedups))
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
func mb(bytes int64) float64     { return float64(bytes) / (1 << 20) }

// FormatBackends renders the per-backend comparison: solving time and
// modelled memory for every selectable backend, one line per benchmark.
// VSFS's time includes its versioning phase, since backend selection
// pays for both. Precision rises left to right except for the last
// column: sfs ≡ vsfs ⊆ cfgfree ⊆ andersen.
func FormatBackends(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Backend comparison: solving time (ms) and modelled memory (MB)\n\n")
	fmt.Fprintf(&b, "%-14s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n",
		"Bench.", "ander t", "ander MB", "sfs t", "sfs MB",
		"vsfs t", "vsfs MB", "cfree t", "cfree MB")
	for _, r := range rows {
		sfsT := fmt.Sprintf("%9.1f", ms(r.SFSTime))
		if r.SFSOOM {
			sfsT = "      OOM"
		}
		fmt.Fprintf(&b, "%-14s | %9.1f %9.2f | %s %9.2f | %9.1f %9.2f | %9.1f %9.2f\n",
			r.Profile.Name, ms(r.AndersenTime), mb(r.AndersenMem),
			sfsT, mb(r.SFSMem),
			ms(r.VSFSTime+r.VersionTime), mb(r.VSFSMem),
			ms(r.CfgfreeTime), mb(r.CfgfreeMem))
	}
	return b.String()
}

// SweepPoint is one measurement of the redundancy sweep.
type SweepPoint struct {
	ChainFrac float64
	Speedup   float64
	MemRatio  float64
}

// RunSweep varies the pointer-chase redundancy knob on a mid-size
// profile and reports the SFS/VSFS ratios — the Section V claim that
// VSFS's advantage grows with single-object redundancy, with no
// regression at zero. The instruction budget is scaled so the non-chain
// core of the program (stores, allocations, calls) stays roughly
// constant while the redundant load chains grow.
func RunSweep(fracs []float64, w io.Writer) []SweepPoint {
	var out []SweepPoint
	for _, frac := range fracs {
		const chainCost = 3 // average budget one emitted chain consumes
		budget := int(34 * (frac*chainCost + (1 - frac)) / (1 - frac + 1e-9))
		if w != nil {
			fmt.Fprintf(w, "sweep: ChainFrac=%.2f...\n", frac)
		}
		// Average over several seeds: each (frac, seed) pair generates a
		// structurally different program, so a single draw is noisy.
		var speedups, memRatios []float64
		for seed := int64(500); seed < 503; seed++ {
			p := workload.Profile{
				Name: fmt.Sprintf("sweep-%.2f-%d", frac, seed),
				Seed: seed,
				Cfg: workload.RandomConfig{
					Funcs: 60, MaxParams: 3, InstrsPerFunc: budget, MaxFields: 3,
					HeapFrac: 0.4, IndirectCalls: true, Globals: 8,
					LoopFrac: 0.12, BranchFrac: 0.28, StoreFrac: 0.4,
					ChainFrac: frac, ChainLen: 5, GlobalBias: 0.2, BuilderFrac: 0.06,
					ChainFromGlobals: 0.7,
				},
			}
			row := RunProfile(p, Options{Runs: 1})
			speedups = append(speedups, row.Speedup)
			memRatios = append(memRatios, row.MemRatio)
		}
		out = append(out, SweepPoint{ChainFrac: frac, Speedup: geoMean(speedups), MemRatio: geoMean(memRatios)})
	}
	return out
}

// FormatSweep renders the sweep series.
func FormatSweep(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Redundancy sweep (ChainFrac → SFS/VSFS ratios)\n\n")
	fmt.Fprintf(&b, "%9s %10s %10s\n", "ChainFrac", "Time diff", "Mem diff")
	for _, p := range points {
		fmt.Fprintf(&b, "%9.2f %9.2fx %9.2fx\n", p.ChainFrac, p.Speedup, p.MemRatio)
	}
	return b.String()
}

// Sanity exposes small invariant checks used by tests and the CLI: the
// two analyses must agree on every top-level points-to set.
func Sanity(p workload.Profile) error {
	prog := p.Build()
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	sr := sfs.Solve(g.Clone())
	vr := core.Solve(g.Clone())
	for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
		if !prog.IsPointer(v) {
			continue
		}
		if !sr.PointsTo(v).Equal(vr.PointsTo(v)) {
			return fmt.Errorf("profile %s: pts(%s) differs between SFS and VSFS", p.Name, prog.NameOf(v))
		}
	}
	return nil
}

// AblationRow compares on-the-fly call-graph resolution (the paper's
// configuration) against prewiring the auxiliary call graph (the
// §IV-C1 simplification) for one benchmark.
type AblationRow struct {
	Name string

	OTFCallEdges int // flow-sensitively resolved (call, callee) pairs
	AuxCallEdges int // auxiliary-resolved pairs

	OTFTime time.Duration // versioning + main phase, OTF
	AuxTime time.Duration // versioning + main phase, prewired
	OTFSets int
	AuxSets int
}

// RunCallGraphAblation measures VSFS under both call-graph strategies.
func RunCallGraphAblation(profiles []workload.Profile, w io.Writer) []AblationRow {
	var out []AblationRow
	for _, p := range profiles {
		if w != nil {
			fmt.Fprintf(w, "ablation: %s...\n", p.Name)
		}
		prog := p.Build()
		aux := andersen.Analyze(prog)
		mssa := memssa.Build(prog, aux)
		otf := svfg.Build(prog, aux, mssa)
		pre := svfg.BuildAuxCallGraph(prog, aux, mssa)

		row := AblationRow{Name: p.Name}

		rOtf := core.Solve(otf.Clone())
		row.OTFTime = rOtf.Stats.SolveTime + rOtf.Stats.Versioning.Duration
		row.OTFSets = rOtf.Stats.PtsSets
		row.OTFCallEdges = rOtf.Stats.CallEdges

		rPre := core.Solve(pre.Clone())
		row.AuxTime = rPre.Stats.SolveTime + rPre.Stats.Versioning.Duration
		row.AuxSets = rPre.Stats.PtsSets
		row.AuxCallEdges = rPre.Stats.CallEdges

		out = append(out, row)
	}
	return out
}

// FormatAblation renders the call-graph ablation: the paper argues
// on-the-fly resolution is "more precise and performant" than using the
// auxiliary call graph; the call-edge column shows the precision side
// and the time column the performance side.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Call-graph ablation: on-the-fly (OTF, §IV-C1 default) vs auxiliary prewired\n\n")
	fmt.Fprintf(&b, "%-14s %12s %12s | %10s %10s | %9s %9s\n",
		"Bench.", "OTF edges", "Aux edges", "OTF ms", "Aux ms", "OTF sets", "Aux sets")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12d %12d | %10.1f %10.1f | %9d %9d\n",
			r.Name, r.OTFCallEdges, r.AuxCallEdges,
			ms(r.OTFTime), ms(r.AuxTime), r.OTFSets, r.AuxSets)
	}
	return b.String()
}

// VersionRow summarises the pre-analysis per benchmark: how much
// sharing object versioning achieves.
type VersionRow struct {
	Name string

	IndirectEdges      int
	VersionConstraints int // surviving A-PROP constraints between versions
	Prelabels          int
	DistinctVersions   int
	SFSSets            int // (node, object) points-to sets SFS stores
	VSFSSets           int // (object, version) sets VSFS stores
}

// RunVersionStats measures the sharing factors of Section IV on each
// profile: constraints per indirect edge and sets per SFS set are the
// two reductions the motivating example illustrates (6→2 and 6→3).
func RunVersionStats(profiles []workload.Profile, w io.Writer) []VersionRow {
	var out []VersionRow
	for _, p := range profiles {
		if w != nil {
			fmt.Fprintf(w, "versions: %s...\n", p.Name)
		}
		prog := p.Build()
		aux := andersen.Analyze(prog)
		mssa := memssa.Build(prog, aux)
		g := svfg.Build(prog, aux, mssa)
		sr := sfs.Solve(g.Clone())
		vr := core.Solve(g.Clone())
		out = append(out, VersionRow{
			Name:               p.Name,
			IndirectEdges:      g.NumIndirectEdges,
			VersionConstraints: vr.Stats.VersionConstraints,
			Prelabels:          vr.Stats.Versioning.Prelabels,
			DistinctVersions:   vr.Stats.Versioning.DistinctVersions,
			SFSSets:            sr.Stats.PtsSets,
			VSFSSets:           vr.Stats.PtsSets,
		})
	}
	return out
}

// FormatVersionStats renders the sharing table.
func FormatVersionStats(rows []VersionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Versioning effectiveness: stored sets and propagation constraints\n\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %8s | %10s %10s %8s | %10s %10s\n",
		"Bench.", "I.Edges", "V.Constr", "ratio",
		"SFS sets", "VSFS sets", "ratio", "Prelabels", "Versions")
	for _, r := range rows {
		cr, sr := 0.0, 0.0
		if r.VersionConstraints > 0 {
			cr = float64(r.IndirectEdges) / float64(r.VersionConstraints)
		}
		if r.VSFSSets > 0 {
			sr = float64(r.SFSSets) / float64(r.VSFSSets)
		}
		fmt.Fprintf(&b, "%-14s %10d %10d %7.1fx | %10d %10d %7.1fx | %10d %10d\n",
			r.Name, r.IndirectEdges, r.VersionConstraints, cr,
			r.SFSSets, r.VSFSSets, sr, r.Prelabels, r.DistinctVersions)
	}
	return b.String()
}

// checkFacts adapts a solved VSFS result to the checker interfaces.
type checkFacts struct{ r *core.Result }

func (f checkFacts) PointsTo(v ir.ID) *bitset.Sparse      { return f.r.PointsTo(v) }
func (f checkFacts) ObjectSummary(o ir.ID) *bitset.Sparse { return f.r.ObjectSummary(o) }
func (f checkFacts) ContentsBefore(label uint32, o ir.ID) *bitset.Sparse {
	return f.r.ConsumedSet(label, o)
}

// runCheckers runs the memory-safety checker suite once, returning the
// total finding count (the work -check performs after solving).
func runCheckers(prog *ir.Program, vr *core.Result) int {
	facts := checkFacts{vr}
	n := len(checker.NullDerefs(prog, facts))
	n += len(checker.DanglingReturns(prog, facts))
	n += len(checker.StackEscapes(prog, facts))
	n += len(checker.UseAfterFrees(prog, facts))
	n += len(checker.DoubleFrees(prog, facts))
	n += len(checker.MemoryLeaks(prog, facts))
	return n
}
