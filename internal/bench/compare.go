package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Regression is one baseline-vs-current metric that moved past its
// threshold. Metric is "time", "mem", or "oom" (an OOM transition is
// always a regression regardless of thresholds).
type Regression struct {
	Bench    string  `json:"bench"`
	Backend  string  `json:"backend"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Pct      float64 `json:"pct"` // percent increase over baseline
}

// ReadJSONReport decodes a vsfs-bench -json artifact.
func ReadJSONReport(r io.Reader) (JSONReport, error) {
	var rep JSONReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return JSONReport{}, fmt.Errorf("decoding bench report: %w", err)
	}
	return rep, nil
}

// Compare gates current against baseline per (bench, backend) pair:
// time regressions beyond timePct percent and memory regressions beyond
// memPct percent are reported, as is any pair that newly OOMs. Pairs
// present only in one report are skipped — adding or removing a profile
// must not trip the gate. A nonpositive threshold disables that metric.
// Output order is deterministic (bench, then backend, then metric).
func Compare(baseline, current JSONReport, timePct, memPct float64) []Regression {
	base := make(map[string]BackendRow, len(baseline.Backends))
	for _, row := range baseline.Backends {
		base[row.Bench+"\x00"+row.Backend] = row
	}
	var regs []Regression
	for _, cur := range current.Backends {
		b, ok := base[cur.Bench+"\x00"+cur.Backend]
		if !ok {
			continue
		}
		if cur.OOM != b.OOM {
			if cur.OOM {
				regs = append(regs, Regression{
					Bench: cur.Bench, Backend: cur.Backend, Metric: "oom",
					Baseline: 0, Current: 1, Pct: 0,
				})
			}
			// A pair that stopped OOMing is an improvement; either way
			// its time/mem numbers are not comparable.
			continue
		}
		if cur.OOM {
			continue
		}
		if timePct > 0 && b.Ms > 0 {
			if pct := (cur.Ms - b.Ms) / b.Ms * 100; pct > timePct {
				regs = append(regs, Regression{
					Bench: cur.Bench, Backend: cur.Backend, Metric: "time",
					Baseline: b.Ms, Current: cur.Ms, Pct: pct,
				})
			}
		}
		if memPct > 0 && b.MemMB > 0 {
			if pct := (cur.MemMB - b.MemMB) / b.MemMB * 100; pct > memPct {
				regs = append(regs, Regression{
					Bench: cur.Bench, Backend: cur.Backend, Metric: "mem",
					Baseline: b.MemMB, Current: cur.MemMB, Pct: pct,
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		a, b := regs[i], regs[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Backend != b.Backend {
			return a.Backend < b.Backend
		}
		return a.Metric < b.Metric
	})
	return regs
}

// FormatRegressions renders regressions for CI logs, one per line.
func FormatRegressions(regs []Regression) string {
	var sb strings.Builder
	for _, r := range regs {
		switch r.Metric {
		case "oom":
			fmt.Fprintf(&sb, "REGRESSION %s/%s: newly OOM\n", r.Bench, r.Backend)
		case "time":
			fmt.Fprintf(&sb, "REGRESSION %s/%s: time %.1fms -> %.1fms (+%.1f%%)\n",
				r.Bench, r.Backend, r.Baseline, r.Current, r.Pct)
		case "mem":
			fmt.Fprintf(&sb, "REGRESSION %s/%s: mem %.2fMB -> %.2fMB (+%.1f%%)\n",
				r.Bench, r.Backend, r.Baseline, r.Current, r.Pct)
		}
	}
	return sb.String()
}
