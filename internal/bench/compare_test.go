package bench

import (
	"strings"
	"testing"
)

func rep(rows ...BackendRow) JSONReport { return JSONReport{Backends: rows} }

func TestCompareClean(t *testing.T) {
	base := rep(BackendRow{Bench: "du", Backend: "vsfs", Ms: 100, MemMB: 10})
	cur := rep(BackendRow{Bench: "du", Backend: "vsfs", Ms: 105, MemMB: 10.5})
	if regs := Compare(base, cur, 50, 25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}
}

func TestCompareTimeRegression(t *testing.T) {
	base := rep(BackendRow{Bench: "du", Backend: "vsfs", Ms: 100, MemMB: 10})
	cur := rep(BackendRow{Bench: "du", Backend: "vsfs", Ms: 200, MemMB: 10})
	regs := Compare(base, cur, 50, 25)
	if len(regs) != 1 || regs[0].Metric != "time" {
		t.Fatalf("want one time regression, got %+v", regs)
	}
	if regs[0].Pct != 100 {
		t.Errorf("Pct = %v, want 100", regs[0].Pct)
	}
}

func TestCompareMemRegression(t *testing.T) {
	base := rep(BackendRow{Bench: "du", Backend: "sfs", Ms: 100, MemMB: 10})
	cur := rep(BackendRow{Bench: "du", Backend: "sfs", Ms: 100, MemMB: 20})
	regs := Compare(base, cur, 50, 25)
	if len(regs) != 1 || regs[0].Metric != "mem" {
		t.Fatalf("want one mem regression, got %+v", regs)
	}
}

func TestCompareThresholdDisabled(t *testing.T) {
	base := rep(BackendRow{Bench: "du", Backend: "vsfs", Ms: 100, MemMB: 10})
	cur := rep(BackendRow{Bench: "du", Backend: "vsfs", Ms: 1000, MemMB: 100})
	if regs := Compare(base, cur, 0, 0); len(regs) != 0 {
		t.Fatalf("disabled thresholds still fired: %+v", regs)
	}
}

func TestCompareOOMTransition(t *testing.T) {
	base := rep(BackendRow{Bench: "du", Backend: "sfs", Ms: 100, MemMB: 10})
	cur := rep(BackendRow{Bench: "du", Backend: "sfs", OOM: true})
	regs := Compare(base, cur, 50, 25)
	if len(regs) != 1 || regs[0].Metric != "oom" {
		t.Fatalf("want one oom regression, got %+v", regs)
	}
	// Recovery from OOM is not a regression even though Ms goes 0 -> n.
	if regs := Compare(cur, base, 50, 25); len(regs) != 0 {
		t.Fatalf("OOM recovery flagged: %+v", regs)
	}
}

func TestCompareSkipsUnknownBenches(t *testing.T) {
	base := rep(BackendRow{Bench: "du", Backend: "vsfs", Ms: 100, MemMB: 10})
	cur := rep(
		BackendRow{Bench: "du", Backend: "vsfs", Ms: 100, MemMB: 10},
		BackendRow{Bench: "brand-new", Backend: "vsfs", Ms: 9999, MemMB: 999},
	)
	if regs := Compare(base, cur, 50, 25); len(regs) != 0 {
		t.Fatalf("new bench tripped the gate: %+v", regs)
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	base := rep(
		BackendRow{Bench: "b", Backend: "vsfs", Ms: 10, MemMB: 1},
		BackendRow{Bench: "a", Backend: "sfs", Ms: 10, MemMB: 1},
		BackendRow{Bench: "a", Backend: "vsfs", Ms: 10, MemMB: 1},
	)
	cur := rep(
		BackendRow{Bench: "b", Backend: "vsfs", Ms: 100, MemMB: 10},
		BackendRow{Bench: "a", Backend: "sfs", Ms: 100, MemMB: 10},
		BackendRow{Bench: "a", Backend: "vsfs", Ms: 100, MemMB: 10},
	)
	regs := Compare(base, cur, 50, 25)
	if len(regs) != 6 {
		t.Fatalf("want 6 regressions, got %d", len(regs))
	}
	for i := 1; i < len(regs); i++ {
		a, b := regs[i-1], regs[i]
		if a.Bench > b.Bench || (a.Bench == b.Bench && a.Backend > b.Backend) {
			t.Fatalf("not sorted at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestReadJSONReport(t *testing.T) {
	src := `{"rows":[],"backends":[{"bench":"du","backend":"vsfs","ms":1.5,"memMB":0.5}],"geoMeanSpeedup":1,"geoMeanMemRatio":1}`
	rep, err := ReadJSONReport(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Backends) != 1 || rep.Backends[0].Bench != "du" {
		t.Fatalf("bad decode: %+v", rep)
	}
	if _, err := ReadJSONReport(strings.NewReader("{nope")); err == nil {
		t.Fatal("invalid JSON accepted")
	}
}

func TestFormatRegressions(t *testing.T) {
	out := FormatRegressions([]Regression{
		{Bench: "du", Backend: "vsfs", Metric: "time", Baseline: 10, Current: 20, Pct: 100},
		{Bench: "du", Backend: "sfs", Metric: "oom"},
		{Bench: "du", Backend: "sfs", Metric: "mem", Baseline: 1, Current: 2, Pct: 100},
	})
	for _, want := range []string{"REGRESSION du/vsfs: time", "newly OOM", "mem 1.00MB -> 2.00MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
