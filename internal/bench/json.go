package bench

import (
	"encoding/json"
	"io"
)

// JSONRow is one benchmark's Table II and Table III quantities in
// machine-readable form, with times in milliseconds and memory in MB
// to match the rendered tables.
type JSONRow struct {
	Bench string `json:"bench"`
	Desc  string `json:"desc"`

	// Table II: benchmark characteristics.
	Nodes         int `json:"nodes"`
	DirectEdges   int `json:"directEdges"`
	IndirectEdges int `json:"indirectEdges"`
	TopLevel      int `json:"topLevel"`
	AddressTaken  int `json:"addressTaken"`

	// Table III: time and modelled memory.
	AndersenMs    float64 `json:"andersenMs"`
	AndersenMemMB float64 `json:"andersenMemMB"`
	SFSMs         float64 `json:"sfsMs"`
	SFSMemMB      float64 `json:"sfsMemMB"`
	SFSOOM        bool    `json:"sfsOOM,omitempty"`
	VersionMs     float64 `json:"versionMs"`
	VSFSMs        float64 `json:"vsfsMs"`
	VSFSMemMB     float64 `json:"vsfsMemMB"`
	CfgfreeMs     float64 `json:"cfgfreeMs"`
	CfgfreeMemMB  float64 `json:"cfgfreeMemMB"`
	Speedup       float64 `json:"speedup"`
	MemRatio      float64 `json:"memRatio"`

	// Sharded parallel engine, present only when the run measured it.
	// ParallelSpeedup is sequential-VSFS time (solve + versioning) over
	// parallel time, so >1 means the shards helped.
	ParallelMs      float64 `json:"parallelMs,omitempty"`
	ParallelSpeedup float64 `json:"parallelSpeedup,omitempty"`

	// Checker suite overhead on the solved VSFS facts.
	CheckMs       float64 `json:"checkMs"`
	CheckFindings int     `json:"checkFindings"`
}

// BackendRow is one (benchmark, backend) measurement: the flat shape
// downstream dashboards consume to track each backend's time and
// memory independently. VSFS's time includes its versioning phase.
type BackendRow struct {
	Bench   string  `json:"bench"`
	Backend string  `json:"backend"` // andersen | sfs | vsfs | cfgfree | vsfs-parallel
	Ms      float64 `json:"ms"`
	MemMB   float64 `json:"memMB"`
	OOM     bool    `json:"oom,omitempty"`
}

// JSONReport is the body of a BENCH_*.json artifact: every row, the
// per-backend rows, and the geometric means reported in Table III's
// Average line.
type JSONReport struct {
	Rows            []JSONRow    `json:"rows"`
	Backends        []BackendRow `json:"backends"`
	GeoMeanSpeedup  float64      `json:"geoMeanSpeedup"`
	GeoMeanMemRatio float64      `json:"geoMeanMemRatio"`
}

// JSONReportOf converts measured rows into the artifact shape. OOM rows
// are excluded from both geomeans, mirroring FormatTable3: neither ratio
// is meaningful when the SFS baseline never completed.
func JSONReportOf(rows []Row) JSONReport {
	rep := JSONReport{Rows: make([]JSONRow, 0, len(rows))}
	var speedups, memRatios []float64
	for _, r := range rows {
		rep.Rows = append(rep.Rows, JSONRow{
			Bench:           r.Profile.Name,
			Desc:            r.Profile.Desc,
			Nodes:           r.Nodes,
			DirectEdges:     r.DirectEdges,
			IndirectEdges:   r.IndirectEdges,
			TopLevel:        r.TopLevel,
			AddressTaken:    r.AddressTaken,
			AndersenMs:      ms(r.AndersenTime),
			AndersenMemMB:   mb(r.AndersenMem),
			SFSMs:           ms(r.SFSTime),
			SFSMemMB:        mb(r.SFSMem),
			SFSOOM:          r.SFSOOM,
			VersionMs:       ms(r.VersionTime),
			VSFSMs:          ms(r.VSFSTime),
			VSFSMemMB:       mb(r.VSFSMem),
			CfgfreeMs:       ms(r.CfgfreeTime),
			CfgfreeMemMB:    mb(r.CfgfreeMem),
			Speedup:         r.Speedup,
			MemRatio:        r.MemRatio,
			ParallelMs:      ms(r.ParallelTime),
			ParallelSpeedup: r.ParallelSpeedup,
			CheckMs:         ms(r.CheckTime),
			CheckFindings:   r.CheckFindings,
		})
		rep.Backends = append(rep.Backends,
			BackendRow{Bench: r.Profile.Name, Backend: "andersen", Ms: ms(r.AndersenTime), MemMB: mb(r.AndersenMem)},
			BackendRow{Bench: r.Profile.Name, Backend: "sfs", Ms: ms(r.SFSTime), MemMB: mb(r.SFSMem), OOM: r.SFSOOM},
			BackendRow{Bench: r.Profile.Name, Backend: "vsfs", Ms: ms(r.VSFSTime + r.VersionTime), MemMB: mb(r.VSFSMem)},
			BackendRow{Bench: r.Profile.Name, Backend: "cfgfree", Ms: ms(r.CfgfreeTime), MemMB: mb(r.CfgfreeMem)},
		)
		if r.ParallelTime > 0 {
			rep.Backends = append(rep.Backends,
				BackendRow{Bench: r.Profile.Name, Backend: "vsfs-parallel", Ms: ms(r.ParallelTime), MemMB: mb(r.VSFSMem)})
		}
		if !r.SFSOOM {
			speedups = append(speedups, r.Speedup)
			memRatios = append(memRatios, r.MemRatio)
		}
	}
	rep.GeoMeanSpeedup = geoMean(speedups)
	rep.GeoMeanMemRatio = geoMean(memRatios)
	return rep
}

// WriteJSON renders rows as an indented JSON artifact.
func WriteJSON(w io.Writer, rows []Row) error {
	data, err := json.MarshalIndent(JSONReportOf(rows), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
