package bench

import (
	"math"
	"strings"
	"testing"

	"vsfs/internal/workload"
)

// tinyProfile is a fast profile for harness tests.
func tinyProfile() workload.Profile {
	cfg := workload.DefaultRandomConfig()
	cfg.Funcs = 8
	cfg.InstrsPerFunc = 30
	return workload.Profile{Name: "tiny", Desc: "test profile", Seed: 42, Cfg: cfg}
}

func TestRunProfilePopulatesRow(t *testing.T) {
	row := RunProfile(tinyProfile(), Options{Runs: 1})
	if row.Nodes == 0 || row.IndirectEdges == 0 || row.TopLevel == 0 {
		t.Errorf("Table II fields empty: %+v", row)
	}
	if row.SFSTime <= 0 || row.VSFSTime <= 0 {
		t.Errorf("times not measured: sfs=%v vsfs=%v", row.SFSTime, row.VSFSTime)
	}
	if row.SFSMem <= 0 || row.VSFSMem <= 0 {
		t.Errorf("memory models empty: %d %d", row.SFSMem, row.VSFSMem)
	}
	if row.Speedup <= 0 || row.MemRatio <= 0 {
		t.Errorf("ratios not computed: %f %f", row.Speedup, row.MemRatio)
	}
	if row.SFSOOM {
		t.Error("OOM marked without a limit")
	}
}

// TestBackendRows pins the per-backend quantities: every backend's
// time and modelled memory must be measured, and the JSON artifact
// must carry one BackendRow per (bench, backend) pair.
func TestBackendRows(t *testing.T) {
	row := RunProfile(tinyProfile(), Options{Runs: 1})
	if row.CfgfreeTime <= 0 || row.CfgfreeMem <= 0 {
		t.Errorf("cfgfree not measured: t=%v mem=%d", row.CfgfreeTime, row.CfgfreeMem)
	}
	if row.AndersenMem <= 0 {
		t.Errorf("AndersenMem = %d, want > 0", row.AndersenMem)
	}
	if row.CfgfreeStats.PtsSets == 0 {
		t.Errorf("cfgfree stats empty: %+v", row.CfgfreeStats)
	}

	rep := JSONReportOf([]Row{row})
	if len(rep.Backends) != 4 {
		t.Fatalf("backends = %d rows, want 4: %+v", len(rep.Backends), rep.Backends)
	}
	want := []string{"andersen", "sfs", "vsfs", "cfgfree"}
	for i, br := range rep.Backends {
		if br.Bench != row.Profile.Name || br.Backend != want[i] {
			t.Errorf("backend row %d = %+v, want backend %q", i, br, want[i])
		}
		if br.Ms <= 0 || br.MemMB <= 0 {
			t.Errorf("backend row %q not measured: %+v", br.Backend, br)
		}
	}

	got := FormatBackends([]Row{row})
	for _, w := range []string{"tiny", "cfree t", "ander MB"} {
		if !strings.Contains(got, w) {
			t.Errorf("backend table missing %q:\n%s", w, got)
		}
	}
}

func TestMemLimitMarksOOM(t *testing.T) {
	row := RunProfile(tinyProfile(), Options{Runs: 1, MemLimit: 1})
	if !row.SFSOOM {
		t.Error("1-byte limit did not mark SFS OOM")
	}
}

// TestOOMRowExcludedFromRatios is the regression test for the OOM ratio
// bug: an OOMed SFS baseline has no meaningful time or memory, so the
// row's Speedup/MemRatio must stay zero, both diff columns must render
// as "—", and neither geomean may include the row.
func TestOOMRowExcludedFromRatios(t *testing.T) {
	oom := RunProfile(tinyProfile(), Options{Runs: 1, MemLimit: 1})
	if !oom.SFSOOM {
		t.Fatal("limit did not trigger OOM")
	}
	if oom.Speedup != 0 || oom.MemRatio != 0 {
		t.Fatalf("OOM row kept ratios: speedup=%f memRatio=%f", oom.Speedup, oom.MemRatio)
	}

	// A healthy row alongside: the averages must come from it alone.
	ok := RunProfile(tinyProfile(), Options{Runs: 1})
	rows := []Row{oom, ok}

	t3 := FormatTable3(rows)
	oomLine := ""
	for _, line := range strings.Split(t3, "\n") {
		if strings.Contains(line, "OOM") {
			oomLine = line
		}
	}
	if oomLine == "" {
		t.Fatalf("no OOM line rendered:\n%s", t3)
	}
	if strings.Count(oomLine, "—") != 2 {
		t.Errorf("OOM line should dash out both diff columns: %q", oomLine)
	}
	if strings.Contains(oomLine, "0.00x") {
		t.Errorf("OOM line renders a zero ratio instead of a dash: %q", oomLine)
	}

	rep := JSONReportOf(rows)
	if rep.Rows[0].Speedup != 0 || rep.Rows[0].MemRatio != 0 {
		t.Errorf("JSON OOM row kept ratios: %+v", rep.Rows[0])
	}
	if math.Abs(rep.GeoMeanSpeedup-ok.Speedup) > 1e-9 {
		t.Errorf("speedup geomean = %f, want the healthy row's %f (OOM excluded)",
			rep.GeoMeanSpeedup, ok.Speedup)
	}
	if math.Abs(rep.GeoMeanMemRatio-ok.MemRatio) > 1e-9 {
		t.Errorf("mem-ratio geomean = %f, want the healthy row's %f (OOM excluded)",
			rep.GeoMeanMemRatio, ok.MemRatio)
	}
}

// TestParallelMeasured: Options.Parallel times the sharded engine and
// threads it through the JSON artifact and the parallel table.
func TestParallelMeasured(t *testing.T) {
	row := RunProfile(tinyProfile(), Options{Runs: 1, Parallel: 2})
	if row.ParallelTime <= 0 || row.ParallelSpeedup <= 0 {
		t.Fatalf("parallel engine not measured: t=%v speedup=%f", row.ParallelTime, row.ParallelSpeedup)
	}

	rep := JSONReportOf([]Row{row})
	if rep.Rows[0].ParallelMs != ms(row.ParallelTime) || rep.Rows[0].ParallelSpeedup != row.ParallelSpeedup {
		t.Errorf("JSON row = %+v, want parallelMs %v / speedup %f",
			rep.Rows[0], ms(row.ParallelTime), row.ParallelSpeedup)
	}
	if len(rep.Backends) != 5 || rep.Backends[4].Backend != "vsfs-parallel" {
		t.Fatalf("backends = %+v, want a fifth vsfs-parallel row", rep.Backends)
	}
	if rep.Backends[4].Ms != ms(row.ParallelTime) || rep.Backends[4].MemMB <= 0 {
		t.Errorf("vsfs-parallel backend row = %+v", rep.Backends[4])
	}

	table := FormatParallel([]Row{row}, 2)
	for _, want := range []string{"tiny", "seq ms", "par ms", "Average", "2 workers"} {
		if !strings.Contains(table, want) {
			t.Errorf("parallel table missing %q:\n%s", want, table)
		}
	}

	// Rows without a measurement stay out of the artifact and the table.
	seq := RunProfile(tinyProfile(), Options{Runs: 1})
	if seq.ParallelTime != 0 {
		t.Fatalf("sequential-only run measured the parallel engine: %+v", seq)
	}
	rep = JSONReportOf([]Row{seq})
	if len(rep.Backends) != 4 {
		t.Errorf("sequential-only run emitted %d backend rows, want 4", len(rep.Backends))
	}
	if strings.Contains(FormatParallel([]Row{seq}, 4), "tiny") {
		t.Error("parallel table rendered a row that was never measured")
	}
}

func TestFormatting(t *testing.T) {
	rows := Run([]workload.Profile{tinyProfile()}, Options{Runs: 1}, nil)
	t2 := FormatTable2(rows)
	t3 := FormatTable3(rows)
	for _, want := range []string{"tiny", "# Nodes", "I.Edges"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q:\n%s", want, t2)
		}
	}
	for _, want := range []string{"tiny", "Time diff", "Mem diff", "Average"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table III missing %q:\n%s", want, t3)
		}
	}
	// OOM formatting path.
	rows[0].SFSOOM = true
	if got := FormatTable3(rows); !strings.Contains(got, "OOM") {
		t.Errorf("OOM row not rendered:\n%s", got)
	}
}

func TestGeoMean(t *testing.T) {
	if g := geoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geoMean(2,8) = %f", g)
	}
	if g := geoMean([]float64{5, 0, -1}); math.Abs(g-5) > 1e-9 {
		t.Errorf("geoMean skipping nonpositive = %f", g)
	}
	if g := geoMean(nil); g != 0 {
		t.Errorf("geoMean(nil) = %f", g)
	}
}

func TestSanity(t *testing.T) {
	if err := Sanity(tinyProfile()); err != nil {
		t.Errorf("Sanity: %v", err)
	}
}

func TestSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep point is slow")
	}
	points := RunSweep([]float64{0.2}, nil)
	if len(points) != 1 || points[0].Speedup <= 0 {
		t.Errorf("sweep = %+v", points)
	}
	if !strings.Contains(FormatSweep(points), "0.20") {
		t.Error("sweep formatting missing point")
	}
}

func TestVersionStats(t *testing.T) {
	rows := RunVersionStats([]workload.Profile{tinyProfile()}, nil)
	if len(rows) != 1 {
		t.Fatal("no rows")
	}
	r := rows[0]
	if r.IndirectEdges == 0 || r.SFSSets == 0 || r.VSFSSets == 0 {
		t.Errorf("row empty: %+v", r)
	}
	if r.VSFSSets > r.SFSSets {
		t.Errorf("VSFS stores more sets than SFS: %+v", r)
	}
	if r.VersionConstraints > r.IndirectEdges {
		t.Errorf("more version constraints than edges: %+v", r)
	}
	if !strings.Contains(FormatVersionStats(rows), "tiny") {
		t.Error("formatting missing row")
	}
}

// TestRunProfileMeasuresCheckerOverhead pins the new -check overhead
// quantities: the suite must actually run (nonzero time) and the JSON
// artifact must carry them.
func TestRunProfileMeasuresCheckerOverhead(t *testing.T) {
	p := workload.Profiles()[0]
	row := RunProfile(p, Options{Runs: 1})
	if row.CheckTime <= 0 {
		t.Errorf("CheckTime = %v, want > 0", row.CheckTime)
	}
	if row.CheckFindings < 0 {
		t.Errorf("CheckFindings = %d", row.CheckFindings)
	}
	rep := JSONReportOf([]Row{row})
	if rep.Rows[0].CheckMs != ms(row.CheckTime) || rep.Rows[0].CheckFindings != row.CheckFindings {
		t.Errorf("JSON row = %+v, want checkMs %v / findings %d",
			rep.Rows[0], ms(row.CheckTime), row.CheckFindings)
	}
}
