package lang

import (
	"fmt"
	"strings"
)

// Type is a mini-C type.
type Type struct {
	Kind   TypeKind
	Elem   *Type      // PointerT, ArrayT
	Len    int        // ArrayT
	Struct *StructDef // StructT
	Sig    *Signature // FuncT (only behind pointers)
}

// TypeKind discriminates Type.
type TypeKind uint8

const (
	// IntT is the scalar type; not tracked by the analysis.
	IntT TypeKind = iota
	// VoidT is a function-return-only type.
	VoidT
	// PointerT is a pointer to Elem.
	PointerT
	// StructT is a struct by reference to its definition.
	StructT
	// FuncT is a function type (used behind pointers).
	FuncT
	// ArrayT is a fixed-size array of Elem (Len elements). The analysis
	// models an array as one summary object, so array locations never
	// receive strong updates.
	ArrayT
)

// Signature is a function type.
type Signature struct {
	Params []*Type
	Ret    *Type
}

func (t *Type) String() string {
	switch t.Kind {
	case IntT:
		return "int"
	case VoidT:
		return "void"
	case PointerT:
		return t.Elem.String() + "*"
	case StructT:
		return "struct " + t.Struct.Name
	case FuncT:
		parts := make([]string, len(t.Sig.Params))
		for i, p := range t.Sig.Params {
			parts[i] = p.String()
		}
		return fmt.Sprintf("%s(%s)", t.Sig.Ret, strings.Join(parts, ", "))
	case ArrayT:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "?"
}

// IsPointer reports whether t is pointer-typed (tracked by the analysis).
func (t *Type) IsPointer() bool { return t != nil && t.Kind == PointerT }

func typesEqual(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case PointerT:
		return typesEqual(a.Elem, b.Elem)
	case StructT:
		return a.Struct == b.Struct
	case ArrayT:
		return a.Len == b.Len && typesEqual(a.Elem, b.Elem)
	case FuncT:
		if len(a.Sig.Params) != len(b.Sig.Params) || !typesEqual(a.Sig.Ret, b.Sig.Ret) {
			return false
		}
		for i := range a.Sig.Params {
			if !typesEqual(a.Sig.Params[i], b.Sig.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

// StructDef is a struct declaration.
type StructDef struct {
	Name   string
	Fields []Field
	Line   int
	Col    int
}

// Field is one struct member.
type Field struct {
	Name string
	Type *Type
}

// FieldIndex returns the offset of a member, or -1.
func (s *StructDef) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// File is a parsed translation unit.
type File struct {
	Structs []*StructDef
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares a variable (global or local).
type VarDecl struct {
	Name string
	Type *Type
	Init Expr // optional initializer
	Line int
	Col  int
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Name   string
	Params []*VarDecl
	Ret    *Type
	Body   *BlockStmt
	Line   int
	Col    int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	X    Expr
	Line int
	Col  int
}

// AssignStmt is lhs = rhs.
type AssignStmt struct {
	LHS, RHS Expr
	Line     int
	Col      int
}

// IfStmt is if (cond) then [else els].
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
	Line int
	Col  int
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
	Col  int
}

// ReturnStmt is return [expr];.
type ReturnStmt struct {
	X    Expr // may be nil
	Line int
	Col  int
}

// ForStmt is for (init; cond; post) body; all three header parts are
// optional, and init/post are assignments or expressions.
type ForStmt struct {
	Init Stmt // nil, *AssignStmt or *ExprStmt
	Cond Expr // may be nil
	Post Stmt // nil, *AssignStmt or *ExprStmt
	Body *BlockStmt
	Line int
	Col  int
}

// DoWhileStmt is do body while (cond);.
type DoWhileStmt struct {
	Body *BlockStmt
	Cond Expr
	Line int
	Col  int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	Line int
	Col  int
}

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct {
	Line int
	Col  int
}

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*ForStmt) stmt()      {}
func (*DoWhileStmt) stmt()  {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is an expression node. The checker records the computed type.
type Expr interface {
	expr()
	TypeOf() *Type
	setType(*Type)
	// Pos returns the 1-based source line and column of the expression,
	// threaded through lowering onto the IR instructions it produces.
	Pos() (line, col int)
}

type exprBase struct{ typ *Type }

func (b *exprBase) expr()           {}
func (b *exprBase) TypeOf() *Type   { return b.typ }
func (b *exprBase) setType(t *Type) { b.typ = t }

// Ident references a variable or function by name.
type Ident struct {
	exprBase
	Name string
	Line int
	Col  int

	// Resolved by the checker: exactly one is set.
	Var *VarDecl
	Fun *FuncDecl
}

// NumberLit is an integer literal.
type NumberLit struct {
	exprBase
	Value string
	Line  int
	Col   int
}

// NullLit is the null pointer constant.
type NullLit struct {
	exprBase
	Line int
	Col  int
}

// Unary is &x, *x, !x, -x.
type Unary struct {
	exprBase
	Op   string
	X    Expr
	Line int
	Col  int
}

// Binary is arithmetic/comparison; never pointer-producing except no-op.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
	Line int
	Col  int
}

// FieldAccess is x.f or x->f (Arrow selects).
type FieldAccess struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Line  int
	Col   int

	// Resolved by the checker.
	Def   *StructDef
	Index int
}

// CallExpr is f(args) or (*fp)(args) / fp(args).
type CallExpr struct {
	exprBase
	Fun  Expr
	Args []Expr
	Line int
	Col  int
}

// IndexExpr is x[i]: array indexing (one summary location per array)
// or pointer indexing (p[i] reads through p, object-granular).
type IndexExpr struct {
	exprBase
	X    Expr
	Idx  Expr
	Line int
	Col  int
}

// MallocExpr is malloc(); its type comes from the assignment context or
// an explicit cast-like annotation in the grammar: `malloc()` assigned
// to a T* yields a fresh T object.
type MallocExpr struct {
	exprBase
	Line int
	Col  int
}

// FreeExpr is free(p): deallocation of every object p points to,
// lowered to a store of the distinguished FREED token through p. It is
// an int-typed expression (like C's void free) used for effect only.
type FreeExpr struct {
	exprBase
	X    Expr
	Line int
	Col  int
}

func (x *Ident) Pos() (int, int)       { return x.Line, x.Col }
func (x *NumberLit) Pos() (int, int)   { return x.Line, x.Col }
func (x *NullLit) Pos() (int, int)     { return x.Line, x.Col }
func (x *Unary) Pos() (int, int)       { return x.Line, x.Col }
func (x *Binary) Pos() (int, int)      { return x.Line, x.Col }
func (x *FieldAccess) Pos() (int, int) { return x.Line, x.Col }
func (x *CallExpr) Pos() (int, int)    { return x.Line, x.Col }
func (x *IndexExpr) Pos() (int, int)   { return x.Line, x.Col }
func (x *MallocExpr) Pos() (int, int)  { return x.Line, x.Col }
func (x *FreeExpr) Pos() (int, int)    { return x.Line, x.Col }
