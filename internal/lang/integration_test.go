package lang

import (
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/memssa"
	"vsfs/internal/sfs"
	"vsfs/internal/svfg"
)

// Realistic end-to-end programs: each is compiled, solved with both
// flow-sensitive analyses, checked for SFS ≡ VSFS, and probed for
// specific points-to facts.

const linkedListC = `
struct Node {
  int *value;
  struct Node *next;
};

struct Node *push(struct Node *head, int *v) {
  struct Node *n;
  n = malloc();
  n->value = v;
  n->next = head;
  return n;
}

int *peek(struct Node *head) {
  return head->value;
}

struct Node *pop(struct Node *head) {
  return head->next;
}

int main() {
  int a;
  int b;
  int c;
  struct Node *stack;
  stack = null;
  stack = push(stack, &a);
  stack = push(stack, &b);
  stack = push(stack, &c);
  int *top;
  top = peek(stack);
  stack = pop(stack);
  stack = pop(stack);
  int *bottom;
  bottom = peek(stack);
  return 0;
}
`

const hashTableC = `
struct Entry {
  int *key;
  int *val;
  struct Entry *chain;
};

struct Entry *buckets[16];

void put(int idx, int *k, int *v) {
  struct Entry *e;
  e = malloc();
  e->key = k;
  e->val = v;
  e->chain = buckets[idx];
  buckets[idx] = e;
  return;
}

int *get(int idx, int *k) {
  struct Entry *e;
  e = buckets[idx];
  while (e != null) {
    if (e->key == k) {
      return e->val;
    }
    e = e->chain;
  }
  return null;
}

int main() {
  int k1; int v1;
  int k2; int v2;
  put(0, &k1, &v1);
  put(5, &k2, &v2);
  int *r;
  r = get(0, &k1);
  return 0;
}
`

const stateMachineC = `
int sIdle;
int sRun;
int sStop;

int *onIdle() { return &sRun; }
int *onRun() { return &sStop; }
int *onStop() { return &sIdle; }

int main() {
  int i;
  int *state;
  state = &sIdle;
  for (i = 0; i < 10; i = i + 1) {
    int *(*h)();
    if (state == &sIdle) {
      h = onIdle;
    } else if (state == &sRun) {
      h = onRun;
    } else {
      h = onStop;
    }
    state = h();
  }
  return 0;
}
`

const interpreterC = `
struct Value {
  int *payload;
  struct Value *link;
};

struct VM {
  struct Value *stack;
  struct Value *env;
};

struct VM *newVM() {
  struct VM *vm;
  vm = malloc();
  vm->stack = null;
  vm->env = null;
  return vm;
}

void pushVal(struct VM *vm, int *p) {
  struct Value *v;
  v = malloc();
  v->payload = p;
  v->link = vm->stack;
  vm->stack = v;
  return;
}

int *popVal(struct VM *vm) {
  struct Value *v;
  v = vm->stack;
  vm->stack = v->link;
  return v->payload;
}

void save(struct VM *vm) {
  struct Value *e;
  e = malloc();
  e->payload = popVal(vm);
  e->link = vm->env;
  vm->env = e;
  return;
}

int main() {
  int lit1;
  int lit2;
  struct VM *vm;
  vm = newVM();
  pushVal(vm, &lit1);
  pushVal(vm, &lit2);
  save(vm);
  int *top;
  top = popVal(vm);
  struct Value *saved;
  saved = vm->env;
  int *got;
  got = saved->payload;
  return 0;
}
`

func solveBoth(t *testing.T, src string) (*ir.Program, *sfs.Result, *core.Result) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	sr := sfs.Solve(g.Clone())
	vr := core.Solve(g.Clone())
	for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
		if prog.IsPointer(v) && !sr.PointsTo(v).Equal(vr.PointsTo(v)) {
			t.Fatalf("SFS ≠ VSFS at %s", prog.NameOf(v))
		}
	}
	return prog, sr, vr
}

func ptsNames(prog *ir.Program, r *core.Result, v ir.ID) map[string]bool {
	out := map[string]bool{}
	r.PointsTo(v).ForEach(func(o uint32) { out[prog.NameOf(ir.ID(o))] = true })
	return out
}

func TestLinkedList(t *testing.T) {
	prog, _, vr := solveBoth(t, linkedListC)
	// All three pushed addresses flow to the peeked value (one abstract
	// node summarises the list cells).
	top := ptsNames(prog, vr, lastTemp(t, prog, "value"))
	for _, want := range []string{"main.a", "main.b", "main.c"} {
		if !top[want] {
			t.Errorf("peek result missing %s: %v", want, top)
		}
	}
}

func TestHashTable(t *testing.T) {
	prog, _, vr := solveBoth(t, hashTableC)
	// get's return chains through e->val: both values reachable (the
	// bucket array is one summary object).
	got := ptsNames(prog, vr, lastTemp(t, prog, "val"))
	if !got["main.v1"] || !got["main.v2"] {
		t.Errorf("hash get = %v, want both values", got)
	}
	// Keys never flow into values.
	if got["main.k1"] || got["main.k2"] {
		t.Errorf("hash get leaked keys: %v", got)
	}
}

func TestStateMachine(t *testing.T) {
	prog, _, vr := solveBoth(t, stateMachineC)
	// The handler pointer resolves to all three handlers across the loop.
	h := ptsNames(prog, vr, lastTemp(t, prog, "h"))
	for _, want := range []string{"&onIdle", "&onRun", "&onStop"} {
		if !h[want] {
			t.Errorf("handler pts = %v, want %s", h, want)
		}
	}
	// All three states reach the state variable.
	st := ptsNames(prog, vr, lastTemp(t, prog, "state"))
	for _, want := range []string{"sIdle.obj", "sRun.obj", "sStop.obj"} {
		if !st[want] {
			t.Errorf("state pts = %v, want %s", st, want)
		}
	}
	// Indirect calls resolve to exactly the three handlers.
	var icall *ir.Instr
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.IsIndirectCall() {
			icall = in
		}
	})
	if icall == nil {
		t.Fatal("no indirect call")
	}
	if callees := vr.CalleesOf(icall); len(callees) != 3 {
		t.Errorf("callees = %v, want 3", callees)
	}
}

func TestInterpreter(t *testing.T) {
	prog, _, vr := solveBoth(t, interpreterC)
	// Literal addresses flow through push/pop and the env save.
	got := ptsNames(prog, vr, lastTemp(t, prog, "payload"))
	if !got["main.lit1"] || !got["main.lit2"] {
		t.Errorf("payload pts = %v, want both literals", got)
	}
}
