package lang

import (
	"strings"
	"testing"
)

func TestTypeString(t *testing.T) {
	intT := &Type{Kind: IntT}
	sd := &StructDef{Name: "S"}
	cases := map[string]*Type{
		"int":      intT,
		"void":     {Kind: VoidT},
		"int*":     {Kind: PointerT, Elem: intT},
		"int**":    {Kind: PointerT, Elem: &Type{Kind: PointerT, Elem: intT}},
		"struct S": {Kind: StructT, Struct: sd},
		"int[4]":   {Kind: ArrayT, Elem: intT, Len: 4},
		"int(int*)": {Kind: FuncT, Sig: &Signature{
			Ret:    intT,
			Params: []*Type{{Kind: PointerT, Elem: intT}},
		}},
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if (&Type{Kind: TypeKind(9)}).String() != "?" {
		t.Error("unknown type kind should render as ?")
	}
}

func TestTypesEqual(t *testing.T) {
	intT := &Type{Kind: IntT}
	pInt := &Type{Kind: PointerT, Elem: intT}
	s1 := &StructDef{Name: "A"}
	s2 := &StructDef{Name: "A"} // same name, different identity
	cases := []struct {
		a, b *Type
		want bool
	}{
		{intT, &Type{Kind: IntT}, true},
		{intT, pInt, false},
		{pInt, &Type{Kind: PointerT, Elem: &Type{Kind: IntT}}, true},
		{&Type{Kind: StructT, Struct: s1}, &Type{Kind: StructT, Struct: s1}, true},
		{&Type{Kind: StructT, Struct: s1}, &Type{Kind: StructT, Struct: s2}, false},
		{&Type{Kind: ArrayT, Elem: intT, Len: 3}, &Type{Kind: ArrayT, Elem: intT, Len: 3}, true},
		{&Type{Kind: ArrayT, Elem: intT, Len: 3}, &Type{Kind: ArrayT, Elem: intT, Len: 4}, false},
		{nil, nil, true},
		{intT, nil, false},
		{
			&Type{Kind: FuncT, Sig: &Signature{Ret: intT, Params: []*Type{pInt}}},
			&Type{Kind: FuncT, Sig: &Signature{Ret: intT, Params: []*Type{pInt}}},
			true,
		},
		{
			&Type{Kind: FuncT, Sig: &Signature{Ret: intT, Params: []*Type{pInt}}},
			&Type{Kind: FuncT, Sig: &Signature{Ret: intT, Params: []*Type{intT}}},
			false,
		},
		{
			&Type{Kind: FuncT, Sig: &Signature{Ret: intT}},
			&Type{Kind: FuncT, Sig: &Signature{Ret: pInt}},
			false,
		},
	}
	for i, c := range cases {
		if got := typesEqual(c.a, c.b); got != c.want {
			t.Errorf("case %d: typesEqual = %v, want %v", i, got, c.want)
		}
	}
}

func TestMoreCheckErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"assign to call", "int f() { return 0; }\nint main() { f() = 1; return 0; }", "not assignable"},
		{"assign to literal", "int main() { 1 = 2; return 0; }", "not assignable"},
		{"assign to addr", "int main() { int a; &a = null; return 0; }", "not assignable"},
		{"addr of literal", "int main() { int *p; p = &1; return 0; }", "& requires"},
		{"void fn returns value", "void f() { return 1; }\nint main() { return 0; }", "void function"},
		{"unary on undefined", "int main() { int *p; p = *q; return 0; }", "undefined name"},
		{"arg type", "int f(int *p) { return 0; }\nint main() { int a; f(a); return 0; }", "cannot assign"},
		{"field of int", "int main() { int a; a.b = 1; return 0; }", ". on non-struct"},
		{"struct ret", "struct S { int a; };\nstruct S f() { struct S s; return s; }", "returns a struct"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestMoreParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"missing semicolon", "int main() { int a\nreturn 0; }", "expected"},
		{"bad for", "int main() { for int; { } return 0; }", "expected"},
		{"do without while", "int main() { do { } return 0; }", "expected 'while'"},
		{"unterminated block", "int main() { if (1) { return 0;", "unterminated"},
		{"bad array size", "int main() { int a[x]; return 0; }", "array size"},
		{"bad fp declarator", "int main() { int (*f(int); return 0; }", "expected"},
		{"top junk", "$$$", "unexpected character"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestVoidFunctionAndShortCircuit(t *testing.T) {
	// void functions, && and || conditions, nested calls in conditions.
	_, err := Compile(`
int g;
void reset(int *p) {
  return;
}
int main() {
  int a;
  int b;
  if (a && b || !a) {
    reset(&a);
  }
  while (a <= b && b >= a) {
    a = a + 1;
  }
  return 0;
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestMallocWithSizeArg(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int *p;
  p = malloc(8);
  int *q;
  q = p;
  return 0;
}
`)
	got := r.PointsTo(lastTemp(t, prog, "p"))
	if got.Len() != 1 {
		t.Errorf("pts = %v", got)
	}
}
