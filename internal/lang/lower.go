package lang

import (
	"fmt"

	"vsfs/internal/ir"
)

// Compile parses, checks and lowers mini-C source to a finalized IR
// program.
func Compile(src string) (*ir.Program, error) {
	file, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if err := Check(file); err != nil {
		return nil, err
	}
	return Lower(file)
}

// Lower translates a checked AST to the partial-SSA IR, clang -O0
// style: every variable gets a stack (or global) object; reads and
// writes go through LOAD/STORE; only pointer-typed values generate
// data-flow instructions.
func Lower(file *File) (*ir.Program, error) {
	lo := &lowerer{
		file:     file,
		prog:     ir.NewProgram(),
		irFuncs:  make(map[*FuncDecl]*ir.Function),
		varAddr:  make(map[*VarDecl]ir.ID),
		paramIdx: make(map[*FuncDecl][]int),
	}
	if err := lo.run(); err != nil {
		return nil, err
	}
	if err := lo.prog.Finalize(); err != nil {
		return nil, fmt.Errorf("lang: lowering produced invalid IR: %w", err)
	}
	// The FunEntry/FunExit pseudo-instructions are synthesised during
	// finalization; give them the declaring function's position so
	// findings anchored at function boundaries (dangling returns, stack
	// escapes) still point at source.
	for fd, f := range lo.irFuncs {
		pos := ir.Pos{Line: fd.Line, Col: fd.Col}
		if f.EntryInstr != nil && !f.EntryInstr.Pos.IsKnown() {
			f.EntryInstr.Pos = pos
		}
		if f.ExitInstr != nil && !f.ExitInstr.Pos.IsKnown() {
			f.ExitInstr.Pos = pos
		}
	}
	return lo.prog, nil
}

type lowerer struct {
	file *File
	prog *ir.Program

	irFuncs map[*FuncDecl]*ir.Function
	varAddr map[*VarDecl]ir.ID

	// paramIdx maps a function to the C-parameter indexes that are
	// pointer-typed — the only ones that become IR parameters. Call
	// sites filter their arguments identically.
	paramIdx map[*FuncDecl][]int

	temps int
}

// at stamps in with the source position of e, so diagnostics built on
// the IR can point at the mini-C source that produced each instruction.
func at(in *ir.Instr, e Expr) *ir.Instr {
	line, col := e.Pos()
	in.Pos = ir.Pos{Line: line, Col: col}
	return in
}

// atLC stamps in with an explicit line/column (declarations and
// statements, which are not Exprs).
func atLC(in *ir.Instr, line, col int) *ir.Instr {
	in.Pos = ir.Pos{Line: line, Col: col}
	return in
}

func (lo *lowerer) temp(prefix string) ir.ID {
	lo.temps++
	return lo.prog.NewPointer(fmt.Sprintf("%s.%d", prefix, lo.temps))
}

// objFields returns the number of field slots for a variable of type t.
func objFields(t *Type) int {
	if t.Kind == StructT {
		return len(t.Struct.Fields)
	}
	return 0
}

// markIfArray flags array storage as collapsed: one abstract object
// summarises every element, so strong updates must never apply.
func (lo *lowerer) markIfArray(obj ir.ID, t *Type) {
	if t.Kind == ArrayT {
		lo.prog.Value(obj).Collapsed = true
	}
}

// pointeeFields returns the field count of the object a T* allocation
// creates.
func pointeeFields(t *Type) int {
	if t.IsPointer() {
		return objFields(t.Elem)
	}
	return 0
}

func (lo *lowerer) run() error {
	// Globals: storage object + address pointer.
	for _, g := range lo.file.Globals {
		ptr, obj := lo.prog.NewGlobal(g.Name, objFields(g.Type))
		lo.markIfArray(obj, g.Type)
		lo.varAddr[g] = ptr
	}

	// Function shells first so calls resolve forward references.
	for _, fd := range lo.file.Funcs {
		var idx []int
		for i, prm := range fd.Params {
			if prm.Type.IsPointer() {
				idx = append(idx, i)
			}
		}
		lo.paramIdx[fd] = idx
		f := lo.prog.NewFunction(fd.Name, len(idx))
		lo.irFuncs[fd] = f
	}

	// Global initializers run in __cinit__, called at the top of main.
	var cinit *ir.Function
	haveInits := false
	for _, g := range lo.file.Globals {
		if g.Init != nil {
			haveInits = true
		}
	}
	if haveInits {
		cinit = lo.prog.NewFunction("__cinit__", 0)
		fl := &funcLowerer{lo: lo, f: cinit, cur: cinit.Entry}
		for _, g := range lo.file.Globals {
			if g.Init == nil {
				continue
			}
			if err := fl.assignTo(lo.varAddr[g], g.Type, g.Init, g.Line, g.Col); err != nil {
				return err
			}
		}
		cinit.Exit = fl.cur
	}

	for _, fd := range lo.file.Funcs {
		if err := lo.lowerFunc(fd, cinit); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) lowerFunc(fd *FuncDecl, cinit *ir.Function) error {
	f := lo.irFuncs[fd]
	fl := &funcLowerer{lo: lo, f: f, cur: f.Entry}

	if fd.Name == "main" && cinit != nil {
		atLC(f.EmitCall(f.Entry, ir.None, cinit), fd.Line, fd.Col)
	}

	// Allocate storage for parameters and spill incoming values.
	for i, prm := range fd.Params {
		obj := lo.prog.NewObject(fd.Name+"."+prm.Name, ir.StackObj, objFields(prm.Type), f)
		addr := lo.temp(prm.Name + ".addr")
		atLC(f.EmitAlloc(f.Entry, addr, obj), prm.Line, prm.Col)
		lo.varAddr[prm] = addr
		if prm.Type.IsPointer() {
			irIdx := indexOf(lo.paramIdx[fd], i)
			atLC(f.EmitStore(f.Entry, addr, f.Params[irIdx]), prm.Line, prm.Col)
		}
	}

	// Hoist every local declaration's storage to the entry block
	// (clang -O0 allocas).
	collectDecls(fd.Body, func(d *VarDecl) {
		obj := lo.prog.NewObject(fd.Name+"."+d.Name, ir.StackObj, objFields(d.Type), f)
		lo.markIfArray(obj, d.Type)
		addr := lo.temp(d.Name + ".addr")
		atLC(f.EmitAlloc(f.Entry, addr, obj), d.Line, d.Col)
		lo.varAddr[d] = addr
	})

	if err := fl.block(fd.Body); err != nil {
		return err
	}
	fl.finish(fd)
	return nil
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	panic("lang: parameter index lost")
}

func collectDecls(b *BlockStmt, visit func(*VarDecl)) {
	for _, st := range b.Stmts {
		switch s := st.(type) {
		case *DeclStmt:
			visit(s.Decl)
		case *BlockStmt:
			collectDecls(s, visit)
		case *IfStmt:
			collectDecls(s.Then, visit)
			if s.Else != nil {
				collectDecls(s.Else, visit)
			}
		case *WhileStmt:
			collectDecls(s.Body, visit)
		case *ForStmt:
			collectDecls(s.Body, visit)
		case *DoWhileStmt:
			collectDecls(s.Body, visit)
		}
	}
}

// funcLowerer lowers one function body.
type funcLowerer struct {
	lo  *lowerer
	f   *ir.Function
	cur *ir.Block

	rets []retSite

	// loops is the enclosing-loop stack: break jumps to after,
	// continue to next (the post block of a for, else the header).
	loops []loopCtx

	blocks int
}

type loopCtx struct {
	next  *ir.Block
	after *ir.Block
}

type retSite struct {
	block *ir.Block
	val   ir.ID
}

func (fl *funcLowerer) newBlock(prefix string) *ir.Block {
	fl.blocks++
	return fl.f.NewBlock(fmt.Sprintf("%s%d", prefix, fl.blocks))
}

// finish unifies the return sites into a single exit block.
func (fl *funcLowerer) finish(fd *FuncDecl) {
	f := fl.f
	// Falling off the end is an implicit return.
	fl.rets = append(fl.rets, retSite{block: fl.cur, val: ir.None})

	if len(fl.rets) == 1 {
		f.Exit = fl.rets[0].block
		f.Ret = fl.rets[0].val
		return
	}
	exit := fl.newBlock("exit")
	var vals []ir.ID
	for _, r := range fl.rets {
		r.block.AddSucc(exit)
		if r.val != ir.None {
			vals = append(vals, r.val)
		}
	}
	f.Exit = exit
	switch len(vals) {
	case 0:
		f.Ret = ir.None
	case 1:
		f.Ret = vals[0]
	default:
		ret := fl.lo.temp(fd.Name + ".ret")
		atLC(f.EmitPhi(exit, ret, vals...), fd.Line, fd.Col)
		f.Ret = ret
	}
}

func (fl *funcLowerer) block(b *BlockStmt) error {
	for _, st := range b.Stmts {
		if err := fl.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (fl *funcLowerer) stmt(st Stmt) error {
	switch s := st.(type) {
	case *BlockStmt:
		return fl.block(s)

	case *DeclStmt:
		if s.Decl.Init != nil {
			return fl.assignTo(fl.lo.varAddr[s.Decl], s.Decl.Type, s.Decl.Init, s.Decl.Line, s.Decl.Col)
		}
		return nil

	case *ExprStmt:
		_, err := fl.value(s.X)
		return err

	case *AssignStmt:
		addr, err := fl.addr(s.LHS)
		if err != nil {
			return err
		}
		if !s.LHS.TypeOf().IsPointer() {
			// An integer write through memory (*p = n, q->f = n, a[i] = n)
			// produces no tracked store, but the access itself must exist
			// in the IR so memory-safety checkers see it: emit a "touch"
			// load of the location. Its fresh def is never used, so it
			// cannot perturb any points-to result. Plain variable writes
			// (x = n) are direct frame accesses and are not touched.
			if _, plain := s.LHS.(*Ident); !plain {
				tmp := fl.lo.temp("w")
				at(fl.f.EmitLoad(fl.cur, tmp, addr), s.LHS)
			}
		}
		return fl.assignTo(addr, s.LHS.TypeOf(), s.RHS, s.Line, s.Col)

	case *IfStmt:
		if _, err := fl.value(s.Cond); err != nil {
			return err
		}
		then := fl.newBlock("then")
		join := fl.newBlock("join")
		fl.cur.AddSucc(then)
		var els *ir.Block
		if s.Else != nil {
			els = fl.newBlock("else")
			fl.cur.AddSucc(els)
		} else {
			fl.cur.AddSucc(join)
		}
		fl.cur = then
		if err := fl.block(s.Then); err != nil {
			return err
		}
		fl.cur.AddSucc(join)
		if s.Else != nil {
			fl.cur = els
			if err := fl.block(s.Else); err != nil {
				return err
			}
			fl.cur.AddSucc(join)
		}
		fl.cur = join
		return nil

	case *WhileStmt:
		header := fl.newBlock("head")
		body := fl.newBlock("body")
		after := fl.newBlock("after")
		fl.cur.AddSucc(header)
		fl.cur = header
		if _, err := fl.value(s.Cond); err != nil {
			return err
		}
		fl.cur.AddSucc(body)
		fl.cur.AddSucc(after)
		fl.cur = body
		fl.loops = append(fl.loops, loopCtx{next: header, after: after})
		err := fl.block(s.Body)
		fl.loops = fl.loops[:len(fl.loops)-1]
		if err != nil {
			return err
		}
		fl.cur.AddSucc(header)
		fl.cur = after
		return nil

	case *ForStmt:
		if s.Init != nil {
			if err := fl.stmt(s.Init); err != nil {
				return err
			}
		}
		header := fl.newBlock("fhead")
		body := fl.newBlock("fbody")
		post := fl.newBlock("fpost")
		after := fl.newBlock("fafter")
		fl.cur.AddSucc(header)
		fl.cur = header
		if s.Cond != nil {
			if _, err := fl.value(s.Cond); err != nil {
				return err
			}
		}
		fl.cur.AddSucc(body)
		fl.cur.AddSucc(after)
		fl.cur = body
		fl.loops = append(fl.loops, loopCtx{next: post, after: after})
		err := fl.block(s.Body)
		fl.loops = fl.loops[:len(fl.loops)-1]
		if err != nil {
			return err
		}
		fl.cur.AddSucc(post)
		fl.cur = post
		if s.Post != nil {
			if err := fl.stmt(s.Post); err != nil {
				return err
			}
		}
		fl.cur.AddSucc(header)
		fl.cur = after
		return nil

	case *DoWhileStmt:
		body := fl.newBlock("dbody")
		check := fl.newBlock("dcheck")
		after := fl.newBlock("dafter")
		fl.cur.AddSucc(body)
		fl.cur = body
		fl.loops = append(fl.loops, loopCtx{next: check, after: after})
		err := fl.block(s.Body)
		fl.loops = fl.loops[:len(fl.loops)-1]
		if err != nil {
			return err
		}
		fl.cur.AddSucc(check)
		fl.cur = check
		if _, err := fl.value(s.Cond); err != nil {
			return err
		}
		fl.cur.AddSucc(body)
		fl.cur.AddSucc(after)
		fl.cur = after
		return nil

	case *BreakStmt:
		ctx := fl.loops[len(fl.loops)-1]
		fl.cur.AddSucc(ctx.after)
		fl.cur = fl.newBlock("dead")
		return nil

	case *ContinueStmt:
		ctx := fl.loops[len(fl.loops)-1]
		fl.cur.AddSucc(ctx.next)
		fl.cur = fl.newBlock("dead")
		return nil

	case *ReturnStmt:
		var val ir.ID
		if s.X != nil {
			v, err := fl.value(s.X)
			if err != nil {
				return err
			}
			if s.X.TypeOf() == nil || s.X.TypeOf().IsPointer() {
				val = v
			}
		}
		fl.rets = append(fl.rets, retSite{block: fl.cur, val: val})
		// Statements after a return are unreachable; give them a
		// dangling block so lowering stays simple.
		fl.cur = fl.newBlock("dead")
		return nil
	}
	return fmt.Errorf("unhandled statement %T", st)
}

// assignTo stores the value of rhs into the location addr of type lt,
// stamping the store with the assignment's source position. Integer
// assignments lower only the side effects of rhs.
func (fl *funcLowerer) assignTo(addr ir.ID, lt *Type, rhs Expr, line, col int) error {
	val, err := fl.value(rhs)
	if err != nil {
		return err
	}
	if !lt.IsPointer() {
		return nil // int (or struct-field int) assignment: untracked
	}
	if val == ir.None {
		// null (or an untracked value): store a fresh undefined temp,
		// whose empty points-to set models the null pointer — a strong
		// update with it clears a singleton location.
		val = fl.lo.temp("null")
	}
	atLC(fl.f.EmitStore(fl.cur, addr, val), line, col)
	return nil
}

// addr lowers an lvalue to a temp holding its address.
func (fl *funcLowerer) addr(e Expr) (ir.ID, error) {
	switch x := e.(type) {
	case *Ident:
		if x.Var == nil {
			return ir.None, errAt(x.Line, "cannot take address of function %q here", x.Name)
		}
		return fl.lo.varAddr[x.Var], nil

	case *Unary:
		if x.Op != "*" {
			return ir.None, errAt(x.Line, "not an lvalue")
		}
		return fl.value(x.X) // address = the pointer's value

	case *FieldAccess:
		var base ir.ID
		var err error
		if x.Arrow {
			base, err = fl.value(x.X) // pointer value
		} else {
			base, err = fl.addr(x.X) // struct variable's address
		}
		if err != nil {
			return ir.None, err
		}
		t := fl.lo.temp("fld")
		at(fl.f.EmitField(fl.cur, t, base, x.Index), x)
		return t, nil

	case *IndexExpr:
		if _, err := fl.value(x.Idx); err != nil { // side effects only
			return ir.None, err
		}
		if x.X.TypeOf() != nil && x.X.TypeOf().Kind == ArrayT {
			// The whole array is one summary object: &a[i] is &a.
			return fl.addr(x.X)
		}
		// Pointer indexing: p[i] reads/writes through p's pointees.
		return fl.value(x.X)
	}
	return ir.None, fmt.Errorf("expression is not an lvalue")
}

// value lowers an expression to a temp holding its value. Non-pointer
// expressions lower their side effects and return ir.None.
func (fl *funcLowerer) value(e Expr) (ir.ID, error) {
	switch x := e.(type) {
	case *NumberLit, *NullLit:
		return ir.None, nil

	case *MallocExpr:
		t := x.TypeOf()
		obj := fl.lo.prog.NewObject(fmt.Sprintf("heap.%d", fl.lo.temps), ir.HeapObj, pointeeFields(t), nil)
		tmp := fl.lo.temp("m")
		at(fl.f.EmitAlloc(fl.cur, tmp, obj), x)
		return tmp, nil

	case *FreeExpr:
		v, err := fl.value(x.X)
		if err != nil {
			return ir.None, err
		}
		if v == ir.None {
			return ir.None, nil // free(null): a no-op
		}
		// free(p) deallocates p's pointees: store the FREED token
		// through p. On singleton pointees the strong update replaces
		// the old contents, making the model flow-sensitively precise.
		at(fl.f.EmitStore(fl.cur, v, fl.lo.prog.FreedPtr()), x)
		return ir.None, nil

	case *Ident:
		if x.Fun != nil {
			tmp := fl.lo.temp("fn")
			at(fl.f.EmitAlloc(fl.cur, tmp, fl.lo.prog.FuncObj(fl.lo.irFuncs[x.Fun])), x)
			return tmp, nil
		}
		if !x.TypeOf().IsPointer() {
			return ir.None, nil
		}
		tmp := fl.lo.temp(x.Name)
		at(fl.f.EmitLoad(fl.cur, tmp, fl.lo.varAddr[x.Var]), x)
		return tmp, nil

	case *Unary:
		switch x.Op {
		case "&":
			if id, ok := x.X.(*Ident); ok && id.Fun != nil {
				tmp := fl.lo.temp("fn")
				at(fl.f.EmitAlloc(fl.cur, tmp, fl.lo.prog.FuncObj(fl.lo.irFuncs[id.Fun])), x)
				return tmp, nil
			}
			return fl.addr(x.X)
		case "*":
			a, err := fl.value(x.X)
			if err != nil {
				return ir.None, err
			}
			tmp := fl.lo.temp("d")
			at(fl.f.EmitLoad(fl.cur, tmp, a), x)
			if !x.TypeOf().IsPointer() {
				return ir.None, nil // *intptr as an int value; load kept for checkers
			}
			return tmp, nil
		default: // !, -
			_, err := fl.value(x.X)
			return ir.None, err
		}

	case *Binary:
		if _, err := fl.value(x.X); err != nil {
			return ir.None, err
		}
		if _, err := fl.value(x.Y); err != nil {
			return ir.None, err
		}
		return ir.None, nil

	case *FieldAccess:
		a, err := fl.addr(x)
		if err != nil {
			return ir.None, err
		}
		tmp := fl.lo.temp(x.Name)
		at(fl.f.EmitLoad(fl.cur, tmp, a), x)
		if !x.TypeOf().IsPointer() {
			return ir.None, nil // int field; load kept for checkers
		}
		return tmp, nil

	case *IndexExpr:
		a, err := fl.addr(x)
		if err != nil {
			return ir.None, err
		}
		tmp := fl.lo.temp("elt")
		at(fl.f.EmitLoad(fl.cur, tmp, a), x)
		if !x.TypeOf().IsPointer() {
			return ir.None, nil // int element; load kept for checkers
		}
		return tmp, nil

	case *CallExpr:
		return fl.call(x)
	}
	return ir.None, fmt.Errorf("unhandled expression %T", e)
}

func (fl *funcLowerer) call(x *CallExpr) (ir.ID, error) {
	// Arguments: pointer-typed ones only, in signature order.
	sig := x.Fun.TypeOf().Elem.Sig
	var args []ir.ID
	for i, a := range x.Args {
		v, err := fl.value(a)
		if err != nil {
			return ir.None, err
		}
		if !sig.Params[i].IsPointer() {
			continue
		}
		if v == ir.None {
			v = fl.lo.temp("null")
		}
		args = append(args, v)
	}

	var def ir.ID
	if sig.Ret.IsPointer() {
		def = fl.lo.temp("r")
	}

	if id, ok := x.Fun.(*Ident); ok && id.Fun != nil {
		at(fl.f.EmitCall(fl.cur, def, fl.lo.irFuncs[id.Fun], args...), x)
		return def, nil
	}
	fp, err := fl.value(x.Fun)
	if err != nil {
		return ir.None, err
	}
	if fp == ir.None {
		return ir.None, errAt(x.Line, "indirect call through untracked value")
	}
	at(fl.f.EmitCallIndirect(fl.cur, def, fp, args...), x)
	return def, nil
}
