package lang

import (
	"strings"
	"testing"

	"vsfs/internal/ir"
)

func TestForLoopFlow(t *testing.T) {
	prog, r := analyze(t, `
struct Node { int *data; struct Node *next; };

int main() {
  int i;
  int x;
  struct Node *head;
  head = null;
  for (i = 0; i < 10; i = i + 1) {
    struct Node *n;
    n = malloc();
    n->data = &x;
    n->next = head;
    head = n;
  }
  int *d;
  d = head->data;
  struct Node *rest;
  rest = head->next;
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "data"), "main.x")
	// rest points back into the list (the single malloc site).
	got := r.PointsTo(lastTemp(t, prog, "next"))
	if got.Len() != 1 {
		t.Errorf("|pts(rest)| = %d, want 1", got.Len())
	}
}

func TestDoWhileFlow(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int a;
  int b;
  int *p;
  p = &a;
  do {
    p = &b;
  } while (a > 0);
  int *v;
  v = p;
  return 0;
}
`)
	// The do-while body always executes at least once, but the analysis
	// is path-insensitive over the back edge: p may be &b only at the
	// final read (the store in the body strongly updates the slot, and
	// the loop exit reads after the body).
	got := map[string]bool{}
	r.PointsTo(lastTemp(t, prog, "p")).ForEach(func(o uint32) {
		got[prog.NameOf(ir.ID(o))] = true
	})
	if !got["main.b"] {
		t.Errorf("pts(v) = %v, want to contain main.b", got)
	}
}

func TestBreakContinue(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int a;
  int b;
  int c;
  int *p;
  p = &a;
  while (a) {
    if (b) {
      p = &b;
      break;
    }
    if (c) {
      continue;
    }
    p = &c;
  }
  int *v;
  v = p;
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "p"), "main.a", "main.b", "main.c")
}

func TestBreakOutsideLoopRejected(t *testing.T) {
	for _, src := range []string{
		"int main() { break; return 0; }",
		"int main() { continue; return 0; }",
	} {
		if _, err := Compile(src); err == nil || !strings.Contains(err.Error(), "outside a loop") {
			t.Errorf("err = %v for %q", err, src)
		}
	}
}

func TestArraySummaryWeakUpdates(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int a;
  int b;
  int *arr[4];
  arr[0] = &a;
  arr[1] = &b;
  int *v;
  v = arr[2];
  return 0;
}
`)
	// One summary object: both stores accumulate (weak), any index reads
	// both.
	wantObjs(t, prog, r, lastTemp(t, prog, "elt"), "main.a", "main.b")
}

func TestArrayNeverStronglyUpdated(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int a;
  int b;
  int *arr[4];
  arr[0] = &a;
  arr[0] = &b;
  int *v;
  v = arr[0];
  return 0;
}
`)
	// Even same-index stores must not kill: the summary object stands
	// for all elements.
	wantObjs(t, prog, r, lastTemp(t, prog, "elt"), "main.a", "main.b")
}

func TestPointerIndexing(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int a;
  int *pa;
  pa = &a;
  int **pp;
  pp = &pa;
  int *v;
  v = pp[0];
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "elt"), "main.a")
}

func TestGlobalArray(t *testing.T) {
	prog, r := analyze(t, `
int x;
int *table[8];

int main() {
  table[3] = &x;
  int *v;
  v = table[5];
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "elt"), "x.obj")
}

func TestArrayRestrictions(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"array field", "struct S { int *a[3]; };", "array fields are not supported"},
		{"array param", "int f(int *a[3]) { return 0; }", "aggregate"},
		{"array assign", "int main() { int *a[2]; int *b[2]; a = b; return 0; }", "aggregate"},
		{"bad size", "int main() { int *a[0]; return 0; }", "positive"},
		{"index non-array", "int main() { int a; a[0] = 1; return 0; }", "indexing non-array"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestForHeaderParts(t *testing.T) {
	// Empty header sections, continue targeting the post block.
	prog, r := analyze(t, `
int main() {
  int a;
  int b;
  int *p;
  p = &a;
  int i;
  for (;;) {
    if (a) {
      break;
    }
    p = &b;
  }
  for (i = 0; ; i = i + 1) {
    if (i > 3) {
      break;
    }
    continue;
  }
  int *v;
  v = p;
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "p"), "main.a", "main.b")
}
