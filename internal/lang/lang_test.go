package lang

import (
	"strings"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/memssa"
	"vsfs/internal/sfs"
	"vsfs/internal/svfg"
)

// analyze compiles mini-C and runs the full pipeline with VSFS.
func analyze(t *testing.T, src string) (*ir.Program, *core.Result) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	return prog, core.Solve(g)
}

// ptsOfTemp finds the lowered temp defined by the nth load of the
// given variable's address... too fragile; instead tests use objects:
// objNames returns the set of object names in pts(v) for the pointer
// temp whose name has the given prefix and highest sequence number
// (i.e. the last lowered read of that variable).
func lastTemp(t *testing.T, prog *ir.Program, prefix string) ir.ID {
	t.Helper()
	var best ir.ID
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		name := prog.Value(id).Name
		if prog.IsPointer(id) && strings.HasPrefix(name, prefix+".") && !strings.Contains(name, ".addr") {
			best = id
		}
	}
	if best == ir.None {
		t.Fatalf("no temp with prefix %q", prefix)
	}
	return best
}

func wantObjs(t *testing.T, prog *ir.Program, r *core.Result, v ir.ID, want ...string) {
	t.Helper()
	got := map[string]bool{}
	r.PointsTo(v).ForEach(func(o uint32) { got[prog.NameOf(ir.ID(o))] = true })
	if len(got) != len(want) {
		t.Errorf("pts = %v, want %v", got, want)
		return
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("pts = %v, want %v", got, want)
			return
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("int *p; // c\n p = q->next; /* block\ncomment */ x != y;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"int", "*", "p", ";", "p", "=", "q", "->", "next", ";", "x", "!=", "y", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("int a @ b;"); err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Errorf("err = %v", err)
	}
	if _, err := lex("/* unterminated"); err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Errorf("err = %v", err)
	}
}

func TestParseAndCheckErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"undefined", "int main() { return x; }", "undefined name"},
		{"dup struct", "struct S { int a; };\nstruct S { int a; };", "duplicate struct"},
		{"self struct", "struct S { struct S s; };", "contains itself"},
		{"unknown struct", "struct T *f() { return null; }", "unknown struct"},
		{"bad deref", "int main() { int a; a = *a; return 0; }", "cannot dereference"},
		{"bad field", "struct S { int a; };\nint main() { struct S s; s.b = 1; return 0; }", "no field"},
		{"arrow on value", "struct S { int a; };\nint main() { struct S s; s->a = 1; return 0; }", "-> on non-struct-pointer"},
		{"call non-fn", "int main() { int a; a(); return 0; }", "call of non-function"},
		{"arity", "int f(int a) { return a; }\nint main() { f(); return 0; }", "0 arguments, want 1"},
		{"type mismatch", "int main() { int *p; int a; p = a; return 0; }", "cannot assign"},
		{"malloc to int", "int main() { int a; a = malloc(); return 0; }", "malloc assigned to non-pointer"},
		{"struct by value", "struct S { int a; };\nint f(struct S s) { return 0; }", "aggregate"},
		{"struct assign", "struct S { int a; };\nint main() { struct S a; struct S b; a = b; return 0; }", "aggregate values cannot"},
		{"void var", "int main() { void v; return 0; }", "void variable"},
		{"missing return value", "int f() { return; }", "must return a value"},
		{"redeclaration", "int main() { int a; int a; return 0; }", "redeclaration"},
		{"dup param", "int f(int a, int a) { return 0; }", "duplicate parameter"},
		{"null to int", "int main() { int a; a = null; return 0; }", "null assigned to non-pointer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error with %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestBasicAddressFlow(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int a;
  int *p;
  int *q;
  p = &a;
  q = p;
  return 0;
}
`)
	// q's last load should point to main.a.
	wantObjs(t, prog, r, lastTemp(t, prog, "p"), "main.a")
}

func TestHeapAndStrongUpdate(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int a;
  int b;
  int *p;
  p = &a;
  p = &b;
  int *v;
  v = p;
  return 0;
}
`)
	// p is a singleton stack slot: the second store strongly updates it.
	wantObjs(t, prog, r, lastTemp(t, prog, "p"), "main.b")
}

func TestStructFieldFlow(t *testing.T) {
	prog, r := analyze(t, `
struct Node {
  int *data;
  struct Node *next;
};

int main() {
  struct Node n;
  struct Node *h;
  int x;
  h = &n;
  h->data = &x;
  h->next = h;
  int *d;
  d = h->data;
  struct Node *m;
  m = h->next;
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "data"), "main.x")
	wantObjs(t, prog, r, lastTemp(t, prog, "next"), "main.n")
}

func TestMallocFlow(t *testing.T) {
	prog, r := analyze(t, `
struct Node { int *data; struct Node *next; };

struct Node *mk() {
  struct Node *n;
  n = malloc();
  return n;
}

int main() {
  struct Node *a;
  struct Node *b;
  a = mk();
  b = mk();
  a->next = b;
  struct Node *c;
  c = a->next;
  return 0;
}
`)
	// Context-insensitive: both mallocs share... no — each malloc site is
	// one abstract object; mk has a single malloc, so both a and b point
	// to the same heap object.
	got := r.PointsTo(lastTemp(t, prog, "next"))
	if got.Len() != 1 {
		t.Errorf("|pts(c)| = %d, want 1 heap object", got.Len())
	}
	name := ""
	got.ForEach(func(o uint32) { name = prog.NameOf(ir.ID(o)) })
	if !strings.HasPrefix(name, "heap.") {
		t.Errorf("pts(c) = %q, want a heap object", name)
	}
}

func TestFunctionPointers(t *testing.T) {
	prog, r := analyze(t, `
int *id(int *x) { return x; }

int main() {
  int a;
  int *(*fp)(int *);
  fp = id;
  int *res;
  res = fp(&a);
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "r"), "main.a")
	// The indirect call resolved to id.
	var call *ir.Instr
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.IsIndirectCall() {
			call = in
		}
	})
	if call == nil {
		t.Fatal("no indirect call lowered")
	}
	if callees := r.CalleesOf(call); len(callees) != 1 || callees[0].Name != "id" {
		t.Errorf("callees = %v", callees)
	}
}

func TestGlobalsAndInit(t *testing.T) {
	prog, r := analyze(t, `
int g;
int *gp = &g;

int main() {
  int *v;
  v = gp;
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "gp"), "g.obj")
}

func TestControlFlowNullAndLoop(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int a;
  int b;
  int *p;
  p = null;
  if (a) {
    p = &a;
  } else {
    p = &b;
  }
  while (b) {
    p = &a;
  }
  int *v;
  v = p;
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "p"), "main.a", "main.b")
}

func TestNullStrongUpdateClears(t *testing.T) {
	prog, r := analyze(t, `
int main() {
  int a;
  int *p;
  p = &a;
  p = null;
  int *v;
  v = p;
  return 0;
}
`)
	got := r.PointsTo(lastTemp(t, prog, "p"))
	if !got.IsEmpty() {
		t.Errorf("pts(v) = %v, want empty after null strong update", got)
	}
}

func TestIndirectCallTwoTargets(t *testing.T) {
	prog, r := analyze(t, `
int x;
int y;
int *fx() { return &x; }
int *fy() { return &y; }

int main() {
  int c;
  int *(*fp)();
  if (c) {
    fp = fx;
  } else {
    fp = fy;
  }
  int *v;
  v = fp();
  return 0;
}
`)
	wantObjs(t, prog, r, lastTemp(t, prog, "r"), "x.obj", "y.obj")
}

func TestMatchesSFS(t *testing.T) {
	src := `
struct List { int *head; struct List *tail; };

struct List *cons(int *h, struct List *t) {
  struct List *c;
  c = malloc();
  c->head = h;
  c->tail = t;
  return c;
}

int main() {
  int a; int b;
  struct List *l;
  l = cons(&a, null);
  l = cons(&b, l);
  int *first;
  first = l->head;
  struct List *rest;
  rest = l->tail;
  return 0;
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	sfsRes := sfs.Solve(g.Clone())
	vsfsRes := core.Solve(g.Clone())
	for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
		if !prog.IsPointer(v) {
			continue
		}
		if !sfsRes.PointsTo(v).Equal(vsfsRes.PointsTo(v)) {
			t.Fatalf("pts(%s): SFS %v ≠ VSFS %v", prog.NameOf(v), sfsRes.PointsTo(v), vsfsRes.PointsTo(v))
		}
	}
	// Both mallocs flow into l over the loop of conses.
	first := vsfsRes.PointsTo(lastTemp(t, prog, "head"))
	names := map[string]bool{}
	first.ForEach(func(o uint32) { names[prog.NameOf(ir.ID(o))] = true })
	if !names["main.a"] && !names["main.b"] {
		t.Errorf("first = %v, expected stack objects", names)
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	prog, err := Compile(`
int main() {
  int a;
  int *p;
  p = &a;
  return 0;
  p = null;
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if prog.FuncByName("main") == nil {
		t.Fatal("main missing")
	}
}

func TestNestedIfElseChain(t *testing.T) {
	_, err := Compile(`
int main() {
  int a;
  if (a) {
    a = 1;
  } else if (a > 2) {
    a = 2;
  } else {
    a = 3;
  }
  return a;
}
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
}
