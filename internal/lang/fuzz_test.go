package lang

import "testing"

// FuzzCompile checks the frontend never panics: any input either
// compiles to a valid program or returns an error. Run with
// `go test -fuzz=FuzzCompile ./internal/lang` to explore; the seed
// corpus runs under plain `go test`.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"int main() { return 0; }",
		"int *id(int *x) { return x; }",
		"struct S { int *p; };",
		"int main() { int a; int *p; p = &a; *p = 1; return 0; }",
		"int main() { for (;;) { break; } return 0; }",
		"int main() { int *a[3]; a[0] = null; return 0; }",
		"int g; int *gp = &g; int main() { return 0; }",
		"int main() { do { continue; } while (1); return 0; }",
		"int f() { return", // truncated
		"struct S { struct S s; };",
		"int main() { malloc(); return 0; }",
		"int main() { int *(*fp)(int*); return 0; }",
		"/* unterminated",
		"int main() { if (1) { } else if (2) { } else { } return 0; }",
		"int main() { int a; a = 1 + 2 * 3 % 4 - (5 / 6); return 0; }",
		"int main() { @ }",
		"int x[99999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err == nil && prog == nil {
			t.Error("Compile returned nil, nil")
		}
	})
}
