package lang

import "fmt"

// Check resolves names, computes expression types, and enforces the
// subset's typing rules. It must succeed before Lower runs.
func Check(f *File) error {
	c := &checker{
		file:    f,
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*VarDecl),
	}
	return c.run()
}

type checker struct {
	file    *File
	funcs   map[string]*FuncDecl
	globals map[string]*VarDecl

	cur       *FuncDecl
	scopes    []map[string]*VarDecl
	loopDepth int
}

func errAt(line int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

func (c *checker) run() error {
	for _, sd := range c.file.Structs {
		for _, fld := range sd.Fields {
			if fld.Type.Kind == ArrayT {
				return errAt(sd.Line, "struct %s: array fields are not supported; use a pointer", sd.Name)
			}
		}
	}
	for _, g := range c.file.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errAt(g.Line, "duplicate global %q", g.Name)
		}
		if g.Type.Kind == VoidT {
			return errAt(g.Line, "void variable %q", g.Name)
		}
		c.globals[g.Name] = g
	}
	for _, fd := range c.file.Funcs {
		if _, dup := c.funcs[fd.Name]; dup {
			return errAt(fd.Line, "duplicate function %q", fd.Name)
		}
		c.funcs[fd.Name] = fd
	}
	for _, g := range c.file.Globals {
		if g.Init != nil {
			if err := c.checkInit(g.Type, g.Init, g.Line); err != nil {
				return err
			}
		}
	}
	for _, fd := range c.file.Funcs {
		if err := c.checkFunc(fd); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkFunc(fd *FuncDecl) error {
	c.cur = fd
	c.scopes = []map[string]*VarDecl{{}}
	if fd.Ret.Kind == StructT {
		return errAt(fd.Line, "function %s returns a struct by value; return a pointer", fd.Name)
	}
	for _, prm := range fd.Params {
		if prm.Type.Kind == VoidT {
			return errAt(prm.Line, "void parameter %q", prm.Name)
		}
		if prm.Type.Kind == StructT || prm.Type.Kind == ArrayT {
			return errAt(prm.Line, "parameter %q is an aggregate by value; pass a pointer", prm.Name)
		}
		if _, dup := c.scopes[0][prm.Name]; dup {
			return errAt(prm.Line, "duplicate parameter %q", prm.Name)
		}
		c.scopes[0][prm.Name] = prm
	}
	return c.checkBlock(fd.Body)
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*VarDecl{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookupVar(name string) *VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d := c.scopes[i][name]; d != nil {
			return d
		}
	}
	return c.globals[name]
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, st := range b.Stmts {
		if err := c.checkStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(st Stmt) error {
	switch s := st.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *DeclStmt:
		d := s.Decl
		if d.Type.Kind == VoidT {
			return errAt(d.Line, "void variable %q", d.Name)
		}
		top := c.scopes[len(c.scopes)-1]
		if _, dup := top[d.Name]; dup {
			return errAt(d.Line, "redeclaration of %q", d.Name)
		}
		if d.Init != nil {
			if err := c.checkInit(d.Type, d.Init, d.Line); err != nil {
				return err
			}
		}
		top[d.Name] = d
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(s.X)
		return err
	case *AssignStmt:
		if err := c.checkLValue(s.LHS); err != nil {
			return err
		}
		lt, err := c.checkExpr(s.LHS)
		if err != nil {
			return err
		}
		return c.checkAssignable(lt, s.RHS, s.Line)
	case *IfStmt:
		if _, err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkBlock(s.Else)
		}
		return nil
	case *WhileStmt:
		if _, err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(s.Body)
	case *ForStmt:
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if _, err := c.checkExpr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(s.Body)
	case *DoWhileStmt:
		c.loopDepth++
		err := c.checkBlock(s.Body)
		c.loopDepth--
		if err != nil {
			return err
		}
		_, err = c.checkExpr(s.Cond)
		return err
	case *BreakStmt:
		if c.loopDepth == 0 {
			return errAt(s.Line, "break outside a loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errAt(s.Line, "continue outside a loop")
		}
		return nil
	case *ReturnStmt:
		if s.X == nil {
			if c.cur.Ret.Kind != VoidT {
				return errAt(s.Line, "function %s must return a value", c.cur.Name)
			}
			return nil
		}
		if c.cur.Ret.Kind == VoidT {
			return errAt(s.Line, "void function %s returns a value", c.cur.Name)
		}
		return c.checkAssignable(c.cur.Ret, s.X, s.Line)
	}
	return fmt.Errorf("unhandled statement %T", st)
}

// checkInit types an initializer against the declared type.
func (c *checker) checkInit(typ *Type, init Expr, line int) error {
	return c.checkAssignable(typ, init, line)
}

// checkAssignable types rhs and checks it may be assigned to lt. Malloc
// and null adopt the target pointer type.
func (c *checker) checkAssignable(lt *Type, rhs Expr, line int) error {
	switch r := rhs.(type) {
	case *MallocExpr:
		if !lt.IsPointer() {
			return errAt(line, "malloc assigned to non-pointer %s", lt)
		}
		r.setType(lt)
		return nil
	case *NullLit:
		if !lt.IsPointer() {
			return errAt(line, "null assigned to non-pointer %s", lt)
		}
		r.setType(lt)
		return nil
	}
	rt, err := c.checkExpr(rhs)
	if err != nil {
		return err
	}
	if lt.Kind == StructT || lt.Kind == ArrayT {
		return errAt(line, "aggregate values cannot be assigned or passed; use pointers or elements")
	}
	if typesEqual(lt, rt) {
		return nil
	}
	return errAt(line, "cannot assign %s to %s", rt, lt)
}

// checkLValue verifies an expression designates a storage location.
func (c *checker) checkLValue(e Expr) error {
	switch x := e.(type) {
	case *Ident:
		if c.lookupVar(x.Name) == nil {
			return errAt(x.Line, "assignment to non-variable %q", x.Name)
		}
		return nil
	case *Unary:
		if x.Op == "*" {
			return nil
		}
	case *FieldAccess:
		return nil
	case *IndexExpr:
		return nil
	}
	return fmt.Errorf("expression is not assignable")
}

func (c *checker) checkExpr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *NumberLit:
		t := &Type{Kind: IntT}
		x.setType(t)
		return t, nil

	case *NullLit:
		// Context-free null: give it int* and rely on comparisons only.
		t := &Type{Kind: PointerT, Elem: &Type{Kind: IntT}}
		x.setType(t)
		return t, nil

	case *MallocExpr:
		return nil, errAt(x.Line, "malloc() needs a pointer assignment context")

	case *FreeExpr:
		t, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !t.IsPointer() || t.Elem.Kind == FuncT {
			return nil, errAt(x.Line, "free of non-pointer %s", t)
		}
		it := &Type{Kind: IntT}
		x.setType(it)
		return it, nil

	case *Ident:
		if d := c.lookupVar(x.Name); d != nil {
			x.Var = d
			x.setType(d.Type)
			return d.Type, nil
		}
		if fd := c.funcs[x.Name]; fd != nil {
			x.Fun = fd
			sig := &Signature{Ret: fd.Ret}
			for _, prm := range fd.Params {
				sig.Params = append(sig.Params, prm.Type)
			}
			t := &Type{Kind: PointerT, Elem: &Type{Kind: FuncT, Sig: sig}}
			x.setType(t)
			return t, nil
		}
		return nil, errAt(x.Line, "undefined name %q", x.Name)

	case *Unary:
		switch x.Op {
		case "&":
			if id, ok := x.X.(*Ident); ok {
				t, err := c.checkExpr(id)
				if err != nil {
					return nil, err
				}
				if id.Fun != nil {
					// &f is the same as f: function designator.
					x.setType(t)
					return t, nil
				}
				pt := &Type{Kind: PointerT, Elem: t}
				x.setType(pt)
				return pt, nil
			}
			if fa, ok := x.X.(*FieldAccess); ok {
				t, err := c.checkExpr(fa)
				if err != nil {
					return nil, err
				}
				pt := &Type{Kind: PointerT, Elem: t}
				x.setType(pt)
				return pt, nil
			}
			return nil, errAt(x.Line, "& requires a variable or field")
		case "*":
			t, err := c.checkExpr(x.X)
			if err != nil {
				return nil, err
			}
			if !t.IsPointer() {
				return nil, errAt(x.Line, "cannot dereference %s", t)
			}
			x.setType(t.Elem)
			return t.Elem, nil
		case "!", "-":
			if _, err := c.checkExpr(x.X); err != nil {
				return nil, err
			}
			t := &Type{Kind: IntT}
			x.setType(t)
			return t, nil
		}
		return nil, errAt(x.Line, "unknown unary operator %q", x.Op)

	case *Binary:
		if _, err := c.checkExpr(x.X); err != nil {
			return nil, err
		}
		if _, err := c.checkExpr(x.Y); err != nil {
			return nil, err
		}
		t := &Type{Kind: IntT}
		x.setType(t)
		return t, nil

	case *FieldAccess:
		bt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		var sd *StructDef
		if x.Arrow {
			if !bt.IsPointer() || bt.Elem.Kind != StructT {
				return nil, errAt(x.Line, "-> on non-struct-pointer %s", bt)
			}
			sd = bt.Elem.Struct
		} else {
			if bt.Kind != StructT {
				return nil, errAt(x.Line, ". on non-struct %s", bt)
			}
			sd = bt.Struct
		}
		idx := sd.FieldIndex(x.Name)
		if idx < 0 {
			return nil, errAt(x.Line, "struct %s has no field %q", sd.Name, x.Name)
		}
		x.Def = sd
		x.Index = idx
		x.setType(sd.Fields[idx].Type)
		return sd.Fields[idx].Type, nil

	case *IndexExpr:
		if _, err := c.checkExpr(x.Idx); err != nil {
			return nil, err
		}
		bt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		switch bt.Kind {
		case ArrayT:
			x.setType(bt.Elem)
			return bt.Elem, nil
		case PointerT:
			x.setType(bt.Elem)
			return bt.Elem, nil
		}
		return nil, errAt(x.Line, "indexing non-array, non-pointer %s", bt)

	case *CallExpr:
		ft, err := c.checkExpr(x.Fun)
		if err != nil {
			return nil, err
		}
		if !ft.IsPointer() || ft.Elem.Kind != FuncT {
			return nil, errAt(x.Line, "call of non-function %s", ft)
		}
		sig := ft.Elem.Sig
		if len(x.Args) != len(sig.Params) {
			return nil, errAt(x.Line, "call has %d arguments, want %d", len(x.Args), len(sig.Params))
		}
		for i, a := range x.Args {
			if err := c.checkAssignable(sig.Params[i], a, x.Line); err != nil {
				return nil, err
			}
		}
		x.setType(sig.Ret)
		return sig.Ret, nil
	}
	return nil, fmt.Errorf("unhandled expression %T", e)
}
