package lang

import (
	"fmt"
	"strconv"
)

// ParseFile parses mini-C source into an AST. The checker (Check) must
// run before lowering.
func ParseFile(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &cparser{toks: toks}
	return p.file()
}

type cparser struct {
	toks []token
	pos  int

	structs map[string]*StructDef
}

func (p *cparser) cur() token { return p.toks[p.pos] }

// peek looks k tokens ahead, returning the EOF token past the end.
func (p *cparser) peek(k int) token {
	if p.pos+k < len(p.toks) {
		return p.toks[p.pos+k]
	}
	return p.toks[len(p.toks)-1]
}

func (p *cparser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *cparser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *cparser) accept(text string) bool {
	if p.cur().kind != tokEOF && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *cparser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, got %s", text, p.cur())
	}
	return nil
}

func (p *cparser) expectIdent() (string, int, int, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", t.line, t.col, p.errf("expected identifier, got %s", t)
	}
	p.pos++
	return t.text, t.line, t.col, nil
}

// atType reports whether the next tokens start a type.
func (p *cparser) atType() bool {
	t := p.cur()
	return t.kind == tokKeyword && (t.text == "int" || t.text == "void" || t.text == "struct")
}

func (p *cparser) file() (*File, error) {
	f := &File{}
	p.structs = make(map[string]*StructDef)
	for p.cur().kind != tokEOF {
		if p.cur().text == "struct" && p.peek(2).text == "{" {
			sd, err := p.structDef()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
			continue
		}
		if !p.atType() {
			return nil, p.errf("expected declaration, got %s", p.cur())
		}
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		typ, name, line, col, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if p.cur().text == "(" && typ.Kind != PointerT {
			// Function definition: name(params) { ... } — the declarator
			// gave us the return type directly.
			fd, err := p.funcRest(typ, name, line, col)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
			continue
		}
		if p.cur().text == "(" {
			// Pointer-returning function: T* name(params).
			fd, err := p.funcRest(typ, name, line, col)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
			continue
		}
		g := &VarDecl{Name: name, Type: typ, Line: line, Col: col}
		if p.accept("=") {
			g.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, g)
	}
	return f, nil
}

func (p *cparser) structDef() (*StructDef, error) {
	line, col := p.cur().line, p.cur().col
	p.next() // struct
	name, _, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, dup := p.structs[name]; dup {
		return nil, fmt.Errorf("line %d: duplicate struct %q", line, name)
	}
	sd := &StructDef{Name: name, Line: line, Col: col}
	// Register before parsing fields so self-referential structs work.
	p.structs[name] = sd
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.accept("}") {
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		typ, fname, _, _, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if typ.Kind == StructT && typ.Struct == sd {
			return nil, p.errf("struct %s contains itself", name)
		}
		sd.Fields = append(sd.Fields, Field{Name: fname, Type: typ})
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return sd, nil
}

// baseType parses int | void | struct S, without pointer stars.
func (p *cparser) baseType() (*Type, error) {
	t := p.next()
	switch t.text {
	case "int":
		return &Type{Kind: IntT}, nil
	case "void":
		return &Type{Kind: VoidT}, nil
	case "struct":
		name, _, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sd := p.structs[name]
		if sd == nil {
			return nil, p.errf("unknown struct %q", name)
		}
		return &Type{Kind: StructT, Struct: sd}, nil
	}
	return nil, fmt.Errorf("line %d: expected type, got %q", t.line, t.text)
}

// declarator parses "*"* (name | (*name)(paramtypes)), returning the full
// type and the declared name.
func (p *cparser) declarator(base *Type) (*Type, string, int, int, error) {
	typ := base
	for p.accept("*") {
		typ = &Type{Kind: PointerT, Elem: typ}
	}
	// Function-pointer declarator: (*name)(T1, T2).
	if p.cur().text == "(" && p.peek(1).text == "*" {
		p.next() // (
		p.next() // *
		name, line, col, err := p.expectIdent()
		if err != nil {
			return nil, "", 0, 0, err
		}
		if err := p.expect(")"); err != nil {
			return nil, "", 0, 0, err
		}
		if err := p.expect("("); err != nil {
			return nil, "", 0, 0, err
		}
		sig := &Signature{Ret: typ}
		for !p.accept(")") {
			if len(sig.Params) > 0 {
				if err := p.expect(","); err != nil {
					return nil, "", 0, 0, err
				}
			}
			pb, err := p.baseType()
			if err != nil {
				return nil, "", 0, 0, err
			}
			pt := pb
			for p.accept("*") {
				pt = &Type{Kind: PointerT, Elem: pt}
			}
			sig.Params = append(sig.Params, pt)
		}
		fp := &Type{Kind: PointerT, Elem: &Type{Kind: FuncT, Sig: sig}}
		return fp, name, line, col, nil
	}
	name, line, col, err := p.expectIdent()
	if err != nil {
		return nil, "", 0, 0, err
	}
	// Array suffix: name[N].
	if p.accept("[") {
		n := p.cur()
		if n.kind != tokNumber {
			return nil, "", 0, 0, p.errf("array size must be a number literal")
		}
		p.pos++
		size, _ := strconv.Atoi(n.text)
		if size <= 0 {
			return nil, "", 0, 0, p.errf("array size must be positive")
		}
		if err := p.expect("]"); err != nil {
			return nil, "", 0, 0, err
		}
		typ = &Type{Kind: ArrayT, Elem: typ, Len: size}
	}
	return typ, name, line, col, nil
}

func (p *cparser) funcRest(ret *Type, name string, line, col int) (*FuncDecl, error) {
	fd := &FuncDecl{Name: name, Ret: ret, Line: line, Col: col}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.accept(")") {
		if len(fd.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		if p.cur().text == "void" && p.peek(1).text == ")" {
			p.next()
			continue
		}
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		typ, pname, pline, pcol, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		fd.Params = append(fd.Params, &VarDecl{Name: pname, Type: typ, Line: pline, Col: pcol})
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *cparser) block() (*BlockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *cparser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.text == "{":
		return p.block()
	case p.atType():
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		typ, name, line, col, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Name: name, Type: typ, Line: line, Col: col}
		if p.accept("=") {
			d.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case t.text == "if":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: t.line, Col: t.col}
		if p.accept("else") {
			if p.cur().text == "if" {
				inner, err := p.stmt()
				if err != nil {
					return nil, err
				}
				st.Else = &BlockStmt{Stmts: []Stmt{inner}}
			} else {
				st.Else, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return st, nil
	case t.text == "while":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line, Col: t.col}, nil
	case t.text == "for":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st := &ForStmt{Line: t.line, Col: t.col}
		if p.cur().text != ";" {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if p.cur().text != ";" {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if p.cur().text != ")" {
			post, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			st.Post = post
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case t.text == "do":
		p.next()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		if !p.accept("while") {
			return nil, p.errf("expected 'while' after do block")
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond, Line: t.line, Col: t.col}, nil
	case t.text == "break":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line, Col: t.col}, nil
	case t.text == "continue":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line, Col: t.col}, nil
	case t.text == "return":
		p.next()
		st := &ReturnStmt{Line: t.line, Col: t.col}
		if p.cur().text != ";" {
			var err error
			st.X, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return st, nil
	}
	// Expression or assignment statement.
	st, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return st, nil
}

// simpleStmt parses an assignment or expression without the trailing
// semicolon (also used by for headers).
func (p *cparser) simpleStmt() (Stmt, error) {
	line, col := p.cur().line, p.cur().col
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Line: line, Col: col}, nil
	}
	return &ExprStmt{X: lhs, Line: line, Col: col}, nil
}

// Expression precedence: || < && < == != < > <= >= < + - < * / % < unary.

func (p *cparser) expr() (Expr, error) { return p.orExpr() }

func (p *cparser) binaryLevel(ops []string, sub func() (Expr, error)) (Expr, error) {
	x, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.cur().text == op {
				line, col := p.cur().line, p.cur().col
				p.next()
				y, err := sub()
				if err != nil {
					return nil, err
				}
				x = &Binary{Op: op, X: x, Y: y, Line: line, Col: col}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *cparser) orExpr() (Expr, error) {
	return p.binaryLevel([]string{"||"}, p.andExpr)
}

func (p *cparser) andExpr() (Expr, error) {
	return p.binaryLevel([]string{"&&"}, p.cmpExpr)
}

func (p *cparser) cmpExpr() (Expr, error) {
	return p.binaryLevel([]string{"==", "!=", "<", ">", "<=", ">="}, p.addExpr)
}

func (p *cparser) addExpr() (Expr, error) {
	return p.binaryLevel([]string{"+", "-"}, p.mulExpr)
}

func (p *cparser) mulExpr() (Expr, error) {
	return p.binaryLevel([]string{"*", "/", "%"}, p.unary)
}

func (p *cparser) unary() (Expr, error) {
	t := p.cur()
	switch t.text {
	case "&", "*", "!", "-":
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x, Line: t.line, Col: t.col}, nil
	}
	return p.postfix()
}

func (p *cparser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tokArrow:
			p.next()
			name, _, _, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &FieldAccess{X: x, Name: name, Arrow: true, Line: t.line, Col: t.col}
		case t.text == ".":
			p.next()
			name, _, _, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &FieldAccess{X: x, Name: name, Arrow: false, Line: t.line, Col: t.col}
		case t.text == "[":
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Idx: idx, Line: t.line, Col: t.col}
		case t.text == "(":
			p.next()
			call := &CallExpr{Fun: x, Line: t.line, Col: t.col}
			for !p.accept(")") {
				if len(call.Args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			x = call
		default:
			return x, nil
		}
	}
}

func (p *cparser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokIdent:
		p.next()
		return &Ident{Name: t.text, Line: t.line, Col: t.col}, nil
	case t.kind == tokNumber:
		p.next()
		return &NumberLit{Value: t.text, Line: t.line, Col: t.col}, nil
	case t.text == "null":
		p.next()
		return &NullLit{Line: t.line, Col: t.col}, nil
	case t.text == "malloc":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		// Allow a size-ish expression for C flavour; ignored.
		if p.cur().text != ")" {
			if _, err := p.expr(); err != nil {
				return nil, err
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &MallocExpr{Line: t.line, Col: t.col}, nil
	case t.text == "free":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &FreeExpr{X: arg, Line: t.line, Col: t.col}, nil
	case t.text == "(":
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("unexpected token %s", t)
}
