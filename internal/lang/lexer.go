// Package lang is a mini-C frontend: lexer, parser, type checker and a
// lowering pass producing the partial-SSA IR the analyses consume. It
// plays the role Clang/WLLVM play for the paper — realistic pointer
// programs written in a C subset, compiled to the LLVM-like instruction
// set of Table I.
//
// The subset covers what pointer analysis cares about: multi-level
// pointers, address-of, dereference, structs with pointer fields, heap
// allocation (malloc) and deallocation (free, lowered to a store of
// the distinguished FREED token through the freed pointer), function
// pointers and indirect calls, globals, and arbitrary control flow
// (if/else, while). Integer arithmetic is parsed and type-checked but
// lowers to nothing: points-to analysis does not track scalar values.
//
// Every token carries a line and column; the parser stamps them on AST
// nodes and lowering threads them onto the IR instructions (ir.Pos), so
// checker findings point at source positions rather than instruction
// labels.
//
// Lowering follows the clang -O0 model: every local variable gets a
// stack object (ALLOC) at function entry; reads and writes become LOAD
// and STORE through that object's address. The temporaries produced are
// in SSA form by construction, giving exactly the partial SSA split of
// top-level pointers and address-taken variables that the paper's
// Section II describes.
package lang

import (
	"fmt"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct   // one of ( ) { } [ ] ; , & * = . < > ! + - / %
	tokArrow   // ->
	tokEq      // ==
	tokNe      // !=
	tokLe      // <=
	tokGe      // >=
	tokAnd     // &&
	tokOr      // ||
	tokKeyword // int, void, struct, if, else, while, return, malloc, free, null
)

var keywords = map[string]bool{
	"int": true, "void": true, "struct": true, "if": true, "else": true,
	"while": true, "for": true, "do": true, "break": true, "continue": true,
	"return": true, "malloc": true, "free": true, "null": true,
}

type token struct {
	kind tokKind
	text string
	line int
	col  int // 1-based byte column of the token's first character
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes src; errors carry line numbers, tokens line and column.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0 // index of the first byte of the current line
	i := 0
	col := func(at int) int { return at - lineStart + 1 }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
					lineStart = i + 1
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated block comment", line)
			}
			i += 2
		case isLetter(c):
			j := i
			for j < len(src) && (isLetter(src[j]) || isDigit(src[j])) {
				j++
			}
			word := src[i:j]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: word, line: line, col: col(i)})
			i = j
		case isDigit(c):
			j := i
			for j < len(src) && isDigit(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], line: line, col: col(i)})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "->":
				toks = append(toks, token{kind: tokArrow, text: two, line: line, col: col(i)})
				i += 2
				continue
			case "==":
				toks = append(toks, token{kind: tokEq, text: two, line: line, col: col(i)})
				i += 2
				continue
			case "!=":
				toks = append(toks, token{kind: tokNe, text: two, line: line, col: col(i)})
				i += 2
				continue
			case "<=":
				toks = append(toks, token{kind: tokLe, text: two, line: line, col: col(i)})
				i += 2
				continue
			case ">=":
				toks = append(toks, token{kind: tokGe, text: two, line: line, col: col(i)})
				i += 2
				continue
			case "&&":
				toks = append(toks, token{kind: tokAnd, text: two, line: line, col: col(i)})
				i += 2
				continue
			case "||":
				toks = append(toks, token{kind: tokOr, text: two, line: line, col: col(i)})
				i += 2
				continue
			}
			switch c {
			case '(', ')', '{', '}', '[', ']', ';', ',', '&', '*', '=', '.', '<', '>', '!', '+', '-', '/', '%':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line, col: col(i)})
				i++
			default:
				return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col(i)})
	return toks, nil
}

func isLetter(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
