package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Defaults for the health checker's zero config values.
const (
	DefaultProbeInterval = time.Second
	DefaultProbeTimeout  = 2 * time.Second
	DefaultEjectAfter    = 3
	DefaultReadmitAfter  = 2
)

// healthChecker actively probes every replica's GET /readyz and drives
// ring membership from the results: EjectAfter consecutive failures
// eject a replica (Pick stops routing to it), ReadmitAfter consecutive
// successes after that readmit it. A replica that answers /readyz with
// 503 — the drain signal — is as ejected as one that refuses the
// connection.
type healthChecker struct {
	ring     *Ring
	client   *http.Client
	interval time.Duration
	eject    int
	readmit  int
	// onChange is called outside the poll loop's per-replica goroutine
	// whenever membership flips; the gateway hangs metrics off it.
	onChange func(name string, healthy bool)

	mu     sync.Mutex
	fails  map[string]int
	oks    map[string]int
	stop   chan struct{}
	done   chan struct{}
	booted bool
}

func newHealthChecker(ring *Ring, interval, timeout time.Duration, eject, readmit int, transport http.RoundTripper, onChange func(string, bool)) *healthChecker {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	if eject <= 0 {
		eject = DefaultEjectAfter
	}
	if readmit <= 0 {
		readmit = DefaultReadmitAfter
	}
	return &healthChecker{
		ring:     ring,
		client:   &http.Client{Timeout: timeout, Transport: transport},
		interval: interval,
		eject:    eject,
		readmit:  readmit,
		onChange: onChange,
		fails:    make(map[string]int),
		oks:      make(map[string]int),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// start launches the probe loop. One immediate sweep runs before the
// first tick so a gateway booted against a dead replica ejects it
// within EjectAfter·interval, not (EjectAfter+1)·interval.
func (h *healthChecker) start() {
	h.mu.Lock()
	booted := h.booted
	h.booted = true
	h.mu.Unlock()
	if booted {
		return
	}
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		h.sweep()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.sweep()
			}
		}
	}()
}

// close stops the loop and waits for the in-flight sweep to finish.
func (h *healthChecker) close() {
	h.mu.Lock()
	booted := h.booted
	h.mu.Unlock()
	if !booted {
		return
	}
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

// sweep probes every replica concurrently and folds the outcomes into
// the consecutive-result counters.
func (h *healthChecker) sweep() {
	members := h.ring.Members()
	var wg sync.WaitGroup
	results := make([]bool, len(members))
	for i, name := range members {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			results[i] = h.probe(name)
		}(i, name)
	}
	wg.Wait()
	for i, name := range members {
		h.record(name, results[i])
	}
}

// probe asks one replica for readiness.
func (h *healthChecker) probe(name string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), h.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// record folds one probe outcome into the counters and flips membership
// at the thresholds.
func (h *healthChecker) record(name string, ok bool) {
	h.mu.Lock()
	var flip *bool
	if ok {
		h.fails[name] = 0
		h.oks[name]++
		if h.oks[name] >= h.readmit && !h.ring.Healthy(name) {
			t := true
			flip = &t
		}
	} else {
		h.oks[name] = 0
		h.fails[name]++
		if h.fails[name] >= h.eject && h.ring.Healthy(name) {
			f := false
			flip = &f
		}
	}
	h.mu.Unlock()
	if flip != nil {
		if h.ring.SetHealthy(name, *flip) && h.onChange != nil {
			h.onChange(name, *flip)
		}
	}
}
