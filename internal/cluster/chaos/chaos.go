// Package chaos injects deterministic network faults into an in-process
// fleet. It extends the guard.FaultPlan philosophy — "fail at the Nth
// checkpoint", never "fail randomly with probability p" — to the wire:
// a Plan names exactly which accepted connection at which replica
// misbehaves and how, so a chaos run is a reproducible test case, not a
// dice roll. Faults are indexed by each replica's accepted-connection
// count (the fleet harness disables HTTP keep-alives, making connection
// index line up with request order), and a Plan records how many faults
// actually fired so tests can assert the drill really happened.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind is what a fault does to its connection.
type Kind int

const (
	// Refuse closes the connection the instant it is accepted: the
	// client sees a connect-time failure (EOF or ECONNRESET before any
	// response bytes).
	Refuse Kind = iota
	// Reset lets the connection proceed, then hard-closes it after the
	// replica has written After response bytes — a mid-body reset that
	// corrupts the response in flight.
	Reset
	// Delay stalls the replica's first response write by the fault's
	// Delay — a latency spike shaped to trip the gateway's hedging
	// threshold without failing anything.
	Delay
)

func (k Kind) String() string {
	switch k {
	case Refuse:
		return "refuse"
	case Reset:
		return "reset"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("chaos.Kind(%d)", int(k))
	}
}

// Fault is one scheduled misbehaviour: connection number Conn (0-based,
// in accepted order) at Replica suffers Kind.
type Fault struct {
	Replica string
	Conn    int
	Kind    Kind
	// Delay is the stall for Kind Delay.
	Delay time.Duration
	// After is how many response bytes escape before a Reset. Zero
	// resets before the first byte.
	After int
}

// Plan is a deterministic schedule of connection faults. Wrap each
// replica's listener with Wrap; all methods are safe for concurrent
// use.
type Plan struct {
	mu       sync.Mutex
	faults   map[string]map[int]Fault // replica → conn index → fault
	accepted map[string]int           // replica → next conn index
	injected []Fault
}

// NewPlan builds a plan from an explicit fault list. Later faults for
// the same (replica, conn) slot overwrite earlier ones.
func NewPlan(faults ...Fault) *Plan {
	p := &Plan{
		faults:   make(map[string]map[int]Fault),
		accepted: make(map[string]int),
	}
	for _, f := range faults {
		byConn := p.faults[f.Replica]
		if byConn == nil {
			byConn = make(map[int]Fault)
			p.faults[f.Replica] = byConn
		}
		byConn[f.Conn] = f
	}
	return p
}

// Seeded derives a reproducible plan from a seed: count faults spread
// over the replicas' first conns connections, with kinds, offsets, and
// delays drawn from a seeded PRNG. Same arguments, same plan — a chaos
// run is re-runnable from its seed alone.
func Seeded(seed int64, replicas []string, conns, count int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	names := append([]string(nil), replicas...)
	sort.Strings(names)
	var faults []Fault
	used := make(map[string]bool)
	for len(faults) < count && len(used) < len(names)*conns {
		rep := names[rng.Intn(len(names))]
		conn := rng.Intn(conns)
		slot := fmt.Sprintf("%s#%d", rep, conn)
		if used[slot] {
			continue
		}
		used[slot] = true
		f := Fault{Replica: rep, Conn: conn, Kind: Kind(rng.Intn(3))}
		switch f.Kind {
		case Reset:
			f.After = rng.Intn(512)
		case Delay:
			f.Delay = time.Duration(50+rng.Intn(200)) * time.Millisecond
		}
		faults = append(faults, f)
	}
	return NewPlan(faults...)
}

// Injected returns the faults that have actually fired, in firing
// order. Tests assert on it to prove a drill exercised what it claims.
func (p *Plan) Injected() []Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Fault(nil), p.injected...)
}

// Accepted returns how many connections replica has accepted so far.
func (p *Plan) Accepted(replica string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted[replica]
}

// next claims the next connection index for replica and returns its
// scheduled fault, if any.
func (p *Plan) next(replica string) (Fault, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := p.accepted[replica]
	p.accepted[replica] = idx + 1
	f, ok := p.faults[replica][idx]
	return f, ok
}

func (p *Plan) fired(f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.injected = append(p.injected, f)
}

// String renders the schedule for logs and failure messages.
func (p *Plan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var parts []string
	for rep, byConn := range p.faults {
		for conn, f := range byConn {
			parts = append(parts, fmt.Sprintf("%s conn %d: %s", rep, conn, f.Kind))
		}
	}
	sort.Strings(parts)
	return "chaos.Plan{" + strings.Join(parts, "; ") + "}"
}

// Wrap returns ln with the plan's faults for replica applied to its
// accepted connections.
func (p *Plan) Wrap(ln net.Listener, replica string) net.Listener {
	return &faultListener{Listener: ln, plan: p, replica: replica}
}

type faultListener struct {
	net.Listener
	plan    *Plan
	replica string
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		f, ok := l.plan.next(l.replica)
		if !ok {
			return c, nil
		}
		switch f.Kind {
		case Refuse:
			hardClose(c)
			l.plan.fired(f)
			continue
		case Delay:
			l.plan.fired(f)
			return &delayConn{Conn: c, delay: f.Delay}, nil
		case Reset:
			// fired is recorded when the reset actually triggers.
			return &resetConn{Conn: c, plan: l.plan, fault: f, budget: f.After}, nil
		default:
			return c, nil
		}
	}
}

// hardClose makes Close look like a crash, not a goodbye: SO_LINGER 0
// turns the FIN into an RST so the peer sees "connection reset", the
// honest signature of a killed process.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// delayConn stalls the first response write.
type delayConn struct {
	net.Conn
	delay   time.Duration
	delayed bool
}

func (c *delayConn) Write(b []byte) (int, error) {
	if !c.delayed {
		c.delayed = true
		time.Sleep(c.delay)
	}
	return c.Conn.Write(b)
}

// resetConn lets budget response bytes escape, then kills the
// connection mid-body.
type resetConn struct {
	net.Conn
	plan   *Plan
	fault  Fault
	budget int
	dead   bool
}

func (c *resetConn) Write(b []byte) (int, error) {
	if c.dead {
		return 0, net.ErrClosed
	}
	if len(b) <= c.budget {
		c.budget -= len(b)
		return c.Conn.Write(b)
	}
	n := 0
	if c.budget > 0 {
		n, _ = c.Conn.Write(b[:c.budget])
	}
	c.dead = true
	hardClose(c.Conn)
	c.plan.fired(c.fault)
	return n, fmt.Errorf("chaos: reset %s conn %d after %d bytes", c.fault.Replica, c.fault.Conn, c.fault.After)
}
