package chaos

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startVictim serves a fixed body behind a chaos-wrapped listener and
// returns its URL plus a keep-alive-free client (one connection per
// request, so connection index == request index).
func startVictim(t *testing.T, plan *Plan, replica, body string) (string, *http.Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})}
	go srv.Serve(plan.Wrap(ln, replica))
	t.Cleanup(func() { srv.Close() })
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	return "http://" + ln.Addr().String(), client
}

func TestRefuseKillsExactlyTheScheduledConn(t *testing.T) {
	plan := NewPlan(Fault{Replica: "r0", Conn: 1, Kind: Refuse})
	url, client := startVictim(t, plan, "r0", "hello")

	for i := 0; i < 3; i++ {
		resp, err := client.Get(url)
		if i == 1 {
			if err == nil {
				resp.Body.Close()
				t.Fatalf("conn %d: want a refused connection, got status %d", i, resp.StatusCode)
			}
			continue
		}
		if err != nil {
			t.Fatalf("conn %d: unscheduled failure: %v", i, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(data) != "hello" {
			t.Fatalf("conn %d: body %q", i, data)
		}
	}
	inj := plan.Injected()
	if len(inj) != 1 || inj[0].Kind != Refuse || inj[0].Conn != 1 {
		t.Errorf("Injected = %+v, want the one scheduled refusal", inj)
	}
}

func TestResetCorruptsTheBodyMidFlight(t *testing.T) {
	big := strings.Repeat("x", 64<<10)
	plan := NewPlan(Fault{Replica: "r0", Conn: 0, Kind: Reset, After: 128})
	url, client := startVictim(t, plan, "r0", big)

	resp, err := client.Get(url)
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("want a mid-body failure, got the whole response")
		}
	}
	if len(plan.Injected()) != 1 {
		t.Errorf("Injected = %+v, want the reset", plan.Injected())
	}

	// The next connection is untouched.
	resp, err = client.Get(url)
	if err != nil {
		t.Fatalf("conn 1 should be clean: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(data) != big {
		t.Fatalf("conn 1: got %d bytes, want %d", len(data), len(big))
	}
}

func TestDelayStallsTheResponse(t *testing.T) {
	const stall = 150 * time.Millisecond
	plan := NewPlan(Fault{Replica: "r0", Conn: 0, Kind: Delay, Delay: stall})
	url, client := startVictim(t, plan, "r0", "slow")

	start := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < stall {
		t.Errorf("response arrived in %v, scheduled stall was %v", elapsed, stall)
	}
	if len(plan.Injected()) != 1 {
		t.Errorf("Injected = %+v, want the delay", plan.Injected())
	}
}

func TestSeededPlansAreReproducible(t *testing.T) {
	reps := []string{"r0", "r1", "r2"}
	a := Seeded(42, reps, 20, 6)
	b := Seeded(42, reps, 20, 6)
	if a.String() != b.String() {
		t.Errorf("same seed, different plans:\n%s\n%s", a, b)
	}
	if got := Seeded(43, reps, 20, 6).String(); got == a.String() {
		t.Errorf("seeds 42 and 43 built the identical plan %s", got)
	}
}

func TestPlanCountsAccepts(t *testing.T) {
	plan := NewPlan()
	url, client := startVictim(t, plan, "r0", "ok")
	for i := 0; i < 3; i++ {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if got := plan.Accepted("r0"); got != 3 {
		t.Errorf("Accepted = %d, want 3", got)
	}
}
