package cluster

import (
	"net/http"
	"testing"
	"time"
)

func TestBackoffDelayWithinExponentialCeiling(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	ceilings := []time.Duration{
		10 * time.Millisecond, // attempt 0
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for attempt, ceil := range ceilings {
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt, 0)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 42)
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 42)
	for i := 0; i < 50; i++ {
		if da, db := a.Delay(i%4, 0), b.Delay(i%4, 0); da != db {
			t.Fatalf("draw %d: same seed gave %v vs %v", i, da, db)
		}
	}
}

func TestBackoffJitterActuallySpreads(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 7)
	distinct := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		distinct[b.Delay(3, 0)] = true
	}
	if len(distinct) < 10 {
		t.Errorf("100 draws produced only %d distinct delays — jitter is not spreading", len(distinct))
	}
}

func TestBackoffHonorsRetryAfterAsFloor(t *testing.T) {
	b := NewBackoff(time.Millisecond, 10*time.Second, 1)
	for i := 0; i < 50; i++ {
		if d := b.Delay(0, 2*time.Second); d < 2*time.Second {
			t.Fatalf("delay %v below the upstream's Retry-After floor of 2s", d)
		}
	}
	// ...but a hostile Retry-After cannot exceed the cap.
	b = NewBackoff(time.Millisecond, 50*time.Millisecond, 1)
	if d := b.Delay(0, time.Hour); d > 50*time.Millisecond {
		t.Errorf("delay %v exceeds cap despite absurd Retry-After", d)
	}
}

func TestRetryAfterOf(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-1", 0},
		{"garbage", 0},
		{"Tue, 29 Oct 2024 16:56:32 GMT", 0},
	}
	for _, c := range cases {
		if got := retryAfterOf(mk(c.in)); got != c.want {
			t.Errorf("retryAfterOf(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if retryAfterOf(nil) != 0 {
		t.Error("retryAfterOf(nil) should be 0")
	}
}
