package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vsfs/internal/obs"
)

// Config sizes the gateway. Zero values select sensible defaults.
type Config struct {
	// Replicas are the vsfs-serve base URLs (e.g. http://10.0.0.1:8080)
	// forming the ring. Required, at least one.
	Replicas []string

	// VirtualNodes per replica on the ring; default DefaultVirtualNodes.
	VirtualNodes int
	// LoadFactor is the bounded-load constant c (> 1); default
	// DefaultLoadFactor.
	LoadFactor float64

	// MaxAttempts is the per-request retry budget: the total number of
	// upstream attempts (the first try, every retry, and every hedge)
	// one client request may spend. Default 4.
	MaxAttempts int
	// RetryBase/RetryCap bound the exponential backoff between retry
	// rounds; defaults DefaultRetryBase / DefaultRetryCap.
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetrySeed seeds the backoff jitter; 0 draws a random seed.
	RetrySeed int64
	// AttemptTimeout caps one upstream attempt's wall clock; default
	// 30s. The client's own deadline still propagates and wins when
	// shorter.
	AttemptTimeout time.Duration

	// HedgeAfter controls tail-latency hedging: after this long without
	// an answer, a second attempt is launched at the next ring replica
	// and the first success wins. 0 adapts the threshold to the
	// HedgeQuantile of recent upstream latencies; negative disables
	// hedging.
	HedgeAfter time.Duration
	// HedgeQuantile is the latency quantile used when HedgeAfter is 0;
	// default 0.95.
	HedgeQuantile float64
	// HedgeMin floors the adaptive threshold; default 25ms.
	HedgeMin time.Duration

	// ProbeInterval/ProbeTimeout drive the /readyz health checker;
	// defaults 1s / 2s.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// EjectAfter consecutive failed probes eject a replica from the
	// ring; ReadmitAfter consecutive successes readmit it. Defaults 3/2.
	EjectAfter   int
	ReadmitAfter int

	// MaxBodyBytes caps a proxied request body; default 32 MiB.
	MaxBodyBytes int64

	// Transport overrides the upstream http.RoundTripper (tests inject
	// chaos here); default is a dedicated transport with sane timeouts.
	Transport http.RoundTripper
	// Logger receives structured logs; default discards.
	Logger *slog.Logger
	// DisableMetrics leaves GET /metrics unmounted.
	DisableMetrics bool
}

// Defaults for Config's zero values.
const (
	DefaultMaxAttempts    = 4
	DefaultAttemptTimeout = 30 * time.Second
	DefaultHedgeQuantile  = 0.95
	DefaultHedgeMin       = 25 * time.Millisecond
	DefaultMaxBodyBytes   = 32 << 20

	// defaultHedgeCold is the hedging threshold used before the latency
	// window has enough samples to trust a quantile.
	defaultHedgeCold = 250 * time.Millisecond
	// hedgeWarmupSamples is how many latency samples the adaptive
	// threshold needs before it switches from defaultHedgeCold.
	hedgeWarmupSamples = 16
)

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = DefaultAttemptTimeout
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = DefaultHedgeQuantile
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = DefaultHedgeMin
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.Logger == nil {
		c.Logger = obs.Discard()
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return c
}

// Gateway routes POST /analyze, /query, and /check across a fleet of
// vsfs-serve replicas: consistent-hash placement on the content hash,
// bounded load, health-checked failover, retries with backoff + jitter
// under a per-request budget, and tail-latency hedging. Create with
// New, mount as an http.Handler, stop with Close.
type Gateway struct {
	cfg     Config
	ring    *Ring
	hc      *healthChecker
	met     *gatewayMetrics
	backoff *Backoff
	client  *http.Client
	logger  *slog.Logger
	started time.Time
	mux     *http.ServeMux

	// hedgeWindow aggregates successful upstream latencies fleet-wide
	// for the adaptive hedging threshold; latencies holds the
	// per-replica windows /stats reports.
	hedgeWindow *latencyWindow
	latMu       sync.Mutex
	latencies   map[string]*latencyWindow

	inflight sync.WaitGroup
	draining atomic.Bool
}

// New builds a Gateway and starts its health checker.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Replicas, cfg.VirtualNodes, cfg.LoadFactor)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:         cfg,
		ring:        ring,
		backoff:     NewBackoff(cfg.RetryBase, cfg.RetryCap, cfg.RetrySeed),
		client:      &http.Client{Transport: cfg.Transport},
		logger:      cfg.Logger,
		started:     time.Now(),
		hedgeWindow: newLatencyWindow(),
		latencies:   make(map[string]*latencyWindow, len(cfg.Replicas)),
	}
	for _, rep := range cfg.Replicas {
		g.latencies[rep] = newLatencyWindow()
	}
	g.met = newGatewayMetrics(g, ring.Members())
	g.hc = newHealthChecker(ring, cfg.ProbeInterval, cfg.ProbeTimeout, cfg.EjectAfter, cfg.ReadmitAfter,
		cfg.Transport, func(name string, healthy bool) {
			if healthy {
				g.met.readmissions.With("replica", name).Inc()
				g.met.replicaHealthy.With("replica", name).Set(1)
				g.logger.Info("replica readmitted", "replica", name)
			} else {
				g.met.ejections.With("replica", name).Inc()
				g.met.replicaHealthy.With("replica", name).Set(0)
				g.logger.Warn("replica ejected", "replica", name)
			}
		})

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /stats", g.handleStats)
	if !cfg.DisableMetrics {
		g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	}
	for _, path := range []string{"/analyze", "/query", "/check"} {
		g.mux.HandleFunc("POST "+path, g.handleProxy)
	}
	g.hc.start()
	return g, nil
}

// Close drains the gateway like the replica tier: /readyz flips to 503
// immediately, the health checker stops, and in-flight proxied requests
// are waited out (ctx bounds the wait).
func (g *Gateway) Close(ctx context.Context) error {
	g.draining.Store(true)
	g.hc.close()
	done := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns a point-in-time snapshot of the gateway counters.
func (g *Gateway) Stats() StatsSnapshot { return g.snapshot() }

// Ring exposes the routing ring (tests and the fleet harness read it).
func (g *Gateway) Ring() *Ring { return g.ring }

// ServeHTTP implements http.Handler: request-ID middleware around the
// mux, mirroring the replica tier.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	startedAt := time.Now()
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = obs.NewRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	r = r.WithContext(obs.WithRequestID(r.Context(), id))
	g.met.httpRequests.With("endpoint", gatewayEndpointOf(r.URL.Path)).Inc()
	sw := &statusWriter{ResponseWriter: w}
	g.mux.ServeHTTP(sw, r)
	g.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Duration("duration", time.Since(startedAt)))
}

func gatewayEndpointOf(path string) string {
	switch path {
	case "/analyze", "/query", "/check":
		return path[1:]
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/stats":
		return "stats"
	case "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ok",
		"version": obs.Version,
		"go":      obs.GoVersion(),
	})
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.snapshot())
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.met.reg.WritePrometheus(w)
}

// routeRequest is the slice of the replica request schema the gateway
// needs for placement: the fields of the replica's cache key.
type routeRequest struct {
	Source   string `json:"source"`
	Lang     string `json:"lang"`
	Mode     string `json:"mode"`
	Parallel int    `json:"parallel"`
}

// handleProxy is the routed path: read the body, place it on the ring
// by content hash, and forward with retries, failover, and hedging.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusServiceUnavailable, "gateway draining", obs.RequestID(r.Context()))
		return
	}
	g.inflight.Add(1)
	defer g.inflight.Done()

	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "reading request body: "+err.Error(), obs.RequestID(r.Context()))
		return
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		writeJSONError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", g.cfg.MaxBodyBytes), obs.RequestID(r.Context()))
		return
	}
	var rr routeRequest
	var key string
	if err := json.Unmarshal(body, &rr); err == nil && rr.Source != "" {
		key = RouteKey(rr.Mode, rr.Lang, rr.Parallel, rr.Source)
	} else {
		key = RouteKey("", "", 0, string(body))
	}

	up, err := g.forward(r.Context(), r.URL.Path, r.Header.Get("Content-Type"), body, key)
	if err != nil {
		id := obs.RequestID(r.Context())
		status := http.StatusBadGateway
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			status = http.StatusGatewayTimeout
		case errors.Is(err, errNoReplica):
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		g.logger.Warn("proxy failed", "id", id, "path", r.URL.Path, "err", err)
		writeJSONError(w, status, err.Error(), id)
		return
	}
	relay(w, up)
}

// errNoReplica is returned when the ring yields no candidate at all.
var errNoReplica = errors.New("cluster: no replica available")

// upstream is one fully-buffered upstream response. Buffering decouples
// the client connection from the replica connection: a mid-body reset
// upstream becomes a retryable attempt failure instead of a corrupted
// client response.
type upstream struct {
	status  int
	header  http.Header
	body    []byte
	replica string
	// attempts is the total number of upstream attempts this answer
	// cost, echoed to the client in X-Vsfs-Gateway-Attempts.
	attempts int
}

// relay writes an upstream response to the client, byte-identical body,
// with the gateway's routing annotations riding in headers — the same
// out-of-band rule the replica's cache status follows.
func relay(w http.ResponseWriter, up *upstream) {
	for _, k := range []string{"Content-Type", "X-Vsfs-Cache", "X-Vsfs-Key", "X-Vsfs-Degraded", "X-Vsfs-Breaker", "Retry-After"} {
		if v := up.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Vsfs-Replica", up.replica)
	w.Header().Set("X-Vsfs-Gateway-Attempts", strconv.Itoa(up.attempts))
	w.WriteHeader(up.status)
	w.Write(up.body)
}

// attemptResult is one upstream attempt's outcome.
type attemptResult struct {
	up     *upstream
	err    error
	reason string // retry reason when the attempt is written off
	hedged bool
}

// forward sends one proxied request to the fleet and returns the first
// final answer. The loop structure: each round races a primary attempt
// (plus, after the hedging threshold, one hedge at the next ring
// replica); a round that ends with only retryable outcomes backs off —
// honoring the upstream's Retry-After under jitter — and fails over to
// the next candidate. The per-request attempt budget (MaxAttempts)
// bounds the total work one client request can cause fleet-wide.
func (g *Gateway) forward(ctx context.Context, path, contentType string, body []byte, key string) (*upstream, error) {
	candidates := g.ring.Pick(key)
	if len(candidates) == 0 {
		g.met.noReplica.Inc()
		return nil, errNoReplica
	}
	budget := g.cfg.MaxAttempts
	attempts := 0
	next := 0 // rotating cursor into candidates
	var lastUp *upstream
	var lastErr error

	for round := 0; budget > 0; round++ {
		primary := candidates[next%len(candidates)]
		next++
		budget--
		hedge := ""
		if budget > 0 && len(candidates) > 1 {
			hedge = candidates[next%len(candidates)]
		}
		res := g.race(ctx, primary, hedge, &budget, path, contentType, body)
		attempts += res.attempts
		if res.final != nil {
			res.final.attempts = attempts
			return res.final, nil
		}
		lastUp, lastErr = res.lastUp, res.lastErr
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if budget <= 0 {
			break
		}
		// Back off before the next round, honoring Retry-After; bail if
		// the client's deadline would expire first.
		var retryAfter time.Duration
		if lastUp != nil {
			retryAfter = retryAfterOf(&http.Response{Header: lastUp.header})
		}
		delay := g.backoff.Delay(round, retryAfter)
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= delay {
			break
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Budget exhausted: surface the last upstream rejection verbatim
	// (it carries the most truthful status and Retry-After), or the
	// transport error when no replica ever answered.
	if lastUp != nil {
		lastUp.attempts = attempts
		return lastUp, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("cluster: all %d attempts failed: %w", attempts, lastErr)
	}
	return nil, errNoReplica
}

// raceResult summarises one round of race.
type raceResult struct {
	final    *upstream // non-retryable answer, or nil
	lastUp   *upstream // last retryable upstream response
	lastErr  error     // last transport error
	attempts int
}

// race runs one primary attempt and, if the hedging threshold passes
// first, one hedge at the next ring replica. The first final
// (non-retryable) answer wins and the loser is cancelled; retryable
// outcomes wait for the other leg before giving up on the round.
func (g *Gateway) race(ctx context.Context, primary, hedge string, budget *int, path, contentType string, body []byte) raceResult {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attemptResult, 2)
	launch := func(replica string, hedged bool) {
		go func() {
			r := g.attempt(actx, replica, path, contentType, body)
			r.hedged = hedged
			ch <- r
		}()
	}
	launch(primary, false)
	out := raceResult{attempts: 1}
	outstanding := 1
	hedgeLaunched := false

	var hedgeC <-chan time.Time
	if hedge != "" && g.cfg.HedgeAfter >= 0 {
		t := time.NewTimer(g.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}

	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil && !retryableStatus(r.up.status) {
				if hedgeLaunched {
					if r.hedged {
						g.met.hedges.With("outcome", "won").Inc()
					} else {
						g.met.hedges.With("outcome", "lost").Inc()
					}
				}
				out.final = r.up
				return out
			}
			// Written off: count the retry reason, remember the outcome.
			g.met.retries.With("reason", r.reason).Inc()
			if r.err != nil {
				out.lastErr = r.err
			} else {
				out.lastUp = r.up
			}
		case <-hedgeC:
			hedgeC = nil
			if *budget > 0 {
				*budget--
				out.attempts++
				outstanding++
				hedgeLaunched = true
				launch(hedge, true)
			}
		case <-ctx.Done():
			out.lastErr = ctx.Err()
			return out
		}
	}
	return out
}

// hedgeDelay is the current hedging threshold: fixed when configured,
// otherwise the configured quantile of recent fleet-wide latencies
// (with a floor), or a conservative constant until the window warms up.
func (g *Gateway) hedgeDelay() time.Duration {
	if g.cfg.HedgeAfter > 0 {
		return g.cfg.HedgeAfter
	}
	if g.hedgeWindow.count() < hedgeWarmupSamples {
		return defaultHedgeCold
	}
	q, ok := g.hedgeWindow.quantile(g.cfg.HedgeQuantile)
	if !ok || q < g.cfg.HedgeMin {
		return g.cfg.HedgeMin
	}
	return q
}

// retryableStatus reports whether an upstream status is worth another
// replica: any 5xx (shed, breaker, panic, timeout, bad gateway). 4xx
// means the request itself is at fault and every replica will agree.
func retryableStatus(status int) bool { return status >= 500 }

// attempt sends one upstream request and buffers the full response.
func (g *Gateway) attempt(ctx context.Context, replica, path, contentType string, body []byte) attemptResult {
	g.ring.Acquire(replica)
	defer g.ring.Release(replica)
	g.met.upstreamRequests.With("replica", replica).Inc()

	actx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, replica+path, bytes.NewReader(body))
	if err != nil {
		return attemptResult{err: err, reason: "connect"}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}

	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		g.met.upstreamErrors.With("replica", replica).Inc()
		return attemptResult{err: err, reason: transportReason(err)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// Headers arrived but the body died: a mid-stream reset.
		g.met.upstreamErrors.With("replica", replica).Inc()
		return attemptResult{err: fmt.Errorf("reading upstream body from %s: %w", replica, err), reason: "reset"}
	}
	up := &upstream{status: resp.StatusCode, header: resp.Header, body: data, replica: replica}
	if retryableStatus(resp.StatusCode) {
		g.met.upstreamErrors.With("replica", replica).Inc()
		reason := "status-5xx"
		if resp.StatusCode == http.StatusServiceUnavailable {
			reason = "status-503"
		}
		return attemptResult{up: up, reason: reason}
	}
	lat := time.Since(start)
	g.hedgeWindow.add(lat)
	g.latencyOf(replica).add(lat)
	g.met.upstreamSeconds.With("replica", replica).Observe(lat.Seconds())
	return attemptResult{up: up}
}

// transportReason classifies a transport error for the retry counter.
func transportReason(err error) string {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() || errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	return "connect"
}

// latencyOf returns replica's latency window, creating it for names the
// config did not list (defensive; Pick only yields configured names).
func (g *Gateway) latencyOf(replica string) *latencyWindow {
	g.latMu.Lock()
	defer g.latMu.Unlock()
	w := g.latencies[replica]
	if w == nil {
		w = newLatencyWindow()
		g.latencies[replica] = w
	}
	return w
}

type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"requestId,omitempty"`
}

func writeJSONError(w http.ResponseWriter, status int, msg, id string) {
	writeJSON(w, status, errorBody{Error: msg, RequestID: id})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}
