package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"vsfs/internal/cluster/chaos"
	"vsfs/internal/server"
	"vsfs/internal/workload"
)

// smokeCorpus is a deterministic set of IR programs sized to solve in
// a few milliseconds each.
func smokeCorpus(n int) []string {
	cfg := workload.DefaultRandomConfig()
	cfg.Funcs = 8
	cfg.InstrsPerFunc = 25
	progs := make([]string, n)
	for i := range progs {
		progs[i] = workload.Random(int64(100+i), cfg).String()
	}
	return progs
}

func analyzeBody(prog string) []byte {
	data, _ := json.Marshal(map[string]any{"source": prog, "lang": "ir"})
	return data
}

// directAnswers solves the corpus on a lone replica with no gateway and
// no chaos — the reference the fleet must match byte for byte.
func directAnswers(t *testing.T, scfg server.Config, corpus []string) [][]byte {
	t.Helper()
	f, err := StartFleet(1, scfg, Config{HedgeAfter: -1, ProbeInterval: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	answers := make([][]byte, len(corpus))
	for i, prog := range corpus {
		resp, err := client.Post(f.ReplicaURL(0)+"/analyze", "application/json", bytes.NewReader(analyzeBody(prog)))
		if err != nil {
			t.Fatalf("direct solve %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("direct solve %d: status %d: %s", i, resp.StatusCode, body)
		}
		answers[i] = body
	}
	return answers
}

// TestFleetSmoke is the full drill: three replicas behind the gateway,
// a seeded chaos plan faulting their connections, one replica killed a
// third of the way through the corpus and restarted at two thirds. The
// bar is absolute: zero client-visible failures and every body
// byte-identical to the direct single-replica answer.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet smoke is not a -short test")
	}
	scfg := server.Config{Workers: 2}
	corpus := smokeCorpus(6)
	want := directAnswers(t, scfg, corpus)

	plan := chaos.Seeded(42, FleetNames(3), 12, 5)
	gcfg := Config{
		MaxAttempts:   4,
		RetryBase:     5 * time.Millisecond,
		RetryCap:      100 * time.Millisecond,
		RetrySeed:     7,
		HedgeAfter:    50 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
		EjectAfter:    2,
		ReadmitAfter:  2,
	}
	f, err := StartFleet(3, scfg, gcfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	send := func(round, i int, prog string) {
		t.Helper()
		resp, err := client.Post(f.GatewayURL()+"/analyze", "application/json", bytes.NewReader(analyzeBody(prog)))
		if err != nil {
			t.Fatalf("round %d program %d: client-visible failure: %v", round, i, err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			t.Fatalf("round %d program %d: body read failed: %v", round, i, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d program %d: status %d (attempts %s, replica %s): %s",
				round, i, resp.StatusCode,
				resp.Header.Get("X-Vsfs-Gateway-Attempts"), resp.Header.Get("X-Vsfs-Replica"), body)
		}
		if !bytes.Equal(body, want[i]) {
			t.Fatalf("round %d program %d: gateway answer differs from direct solve\n gateway: %.200s\n direct:  %.200s",
				round, i, body, want[i])
		}
	}

	// Round 1: calm fleet (modulo the chaos plan's scheduled faults).
	for i, prog := range corpus {
		send(1, i, prog)
	}

	// Kill replica 0 and run the corpus again — failover territory.
	f.Kill(0)
	waitFor(t, "killed replica ejection", func() bool {
		return !f.Gateway().Ring().Healthy(f.ReplicaURL(0))
	})
	for i, prog := range corpus {
		send(2, i, prog)
	}

	// Restart it (cold cache) and run once more — readmission territory.
	if err := f.Restart(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restarted replica readmission", func() bool {
		return f.Gateway().Ring().Healthy(f.ReplicaURL(0))
	})
	for i, prog := range corpus {
		send(3, i, prog)
	}

	s := f.Gateway().Stats()
	if s.Ejections < 1 || s.Readmissions < 1 {
		t.Errorf("drill did not flex membership: ejections=%d readmissions=%d", s.Ejections, s.Readmissions)
	}
	var retries int64
	for _, n := range s.Retries {
		retries += n
	}
	if retries == 0 && len(plan.Injected()) == 0 {
		t.Error("drill injected nothing and retried nothing — chaos plan never fired")
	}
	t.Logf("fleet smoke: %d retries %v, hedges won=%d lost=%d, ejections=%d, readmissions=%d, chaos fired=%d",
		retries, s.Retries, s.HedgesWon, s.HedgesLost, s.Ejections, s.Readmissions, len(plan.Injected()))
}

// TestFleetGatewayMatchesDirectPerEndpoint widens byte-identity to the
// /query and /check endpoints on a calm fleet.
func TestFleetGatewayMatchesDirectPerEndpoint(t *testing.T) {
	scfg := server.Config{Workers: 2}
	prog := smokeCorpus(1)[0]

	direct, err := StartFleet(1, scfg, Config{HedgeAfter: -1, ProbeInterval: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	fleet, err := StartFleet(3, scfg, Config{HedgeAfter: -1, ProbeInterval: time.Hour, RetrySeed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	bodies := map[string][]byte{
		"/analyze": analyzeBody(prog),
		"/query":   mustJSON(map[string]any{"source": prog, "lang": "ir", "kind": "callgraph"}),
		"/check":   mustJSON(map[string]any{"source": prog, "lang": "ir"}),
	}
	for path, body := range bodies {
		var got [2][]byte
		for j, base := range []string{direct.ReplicaURL(0), fleet.GatewayURL()} {
			resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("%s via %s: %v", path, base, err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			got[j] = append([]byte(fmt.Sprintf("%d\n", resp.StatusCode)), data...)
		}
		if !bytes.Equal(got[0], got[1]) {
			t.Errorf("%s: gateway differs from direct\n direct:  %.200s\n gateway: %.200s", path, got[0], got[1])
		}
	}
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}
