package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"vsfs/internal/cluster/chaos"
	"vsfs/internal/server"
)

// Fleet is an in-process analysis fleet: n real vsfs-serve replicas
// (each a full server.Server on its own TCP listener) behind one
// Gateway, with an optional chaos plan wired into every replica's
// listener. Tests, the oracle, and the CI smoke drill all share it —
// the same harness that proves gateway-eq-direct is the one that kills
// replicas mid-corpus.
//
// Chaos plans address replicas by index name: replica i is "r<i>"
// (chaos.Seeded(seed, FleetNames(n), ...) builds a matching list).
type Fleet struct {
	mu       sync.Mutex
	replicas []*fleetReplica
	scfg     server.Config
	plan     *chaos.Plan

	gw    *Gateway
	gwSrv *http.Server
	gwURL string
}

type fleetReplica struct {
	name  string // chaos plan name: r0, r1, ...
	url   string // http://127.0.0.1:port
	addr  string // 127.0.0.1:port, pinned across restarts
	svc   *server.Server
	srv   *http.Server
	alive bool
}

// FleetNames returns the chaos-plan names of an n-replica fleet.
func FleetNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	return names
}

// StartFleet boots n replicas with scfg and a gateway with gcfg in
// front of them (gcfg.Replicas is filled in; gcfg.Transport defaults to
// a keep-alive-free transport so each request is one connection, which
// is what makes connection-indexed chaos line up with request order).
// plan may be nil for a calm fleet. Always Close the fleet.
func StartFleet(n int, scfg server.Config, gcfg Config, plan *chaos.Plan) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one replica")
	}
	f := &Fleet{scfg: scfg, plan: plan}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		r := &fleetReplica{name: fmt.Sprintf("r%d", i)}
		if err := f.boot(r, "127.0.0.1:0"); err != nil {
			f.Close()
			return nil, err
		}
		f.replicas = append(f.replicas, r)
		urls = append(urls, r.url)
	}

	gcfg.Replicas = urls
	if gcfg.Transport == nil {
		gcfg.Transport = &http.Transport{
			DisableKeepAlives: true,
			DialContext:       (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
		}
	}
	gw, err := New(gcfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	f.gw = gw

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close()
		return nil, err
	}
	f.gwURL = "http://" + ln.Addr().String()
	f.gwSrv = &http.Server{Handler: gw}
	go f.gwSrv.Serve(ln)
	return f, nil
}

// boot listens on addr (a concrete port on restart, :0 on first boot),
// wraps the listener in the chaos plan, and serves a fresh
// server.Server — fresh meaning cold cache and zeroed breakers, the
// same state a restarted process would have.
func (f *Fleet) boot(r *fleetReplica, addr string) error {
	var ln net.Listener
	var err error
	// A replica restarting onto its old port can transiently collide
	// with the dying listener; retry briefly rather than fail the drill.
	for deadline := time.Now().Add(2 * time.Second); ; {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: replica %s cannot listen on %s: %w", r.name, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.addr = ln.Addr().String()
	r.url = "http://" + r.addr
	if f.plan != nil {
		ln = f.plan.Wrap(ln, r.name)
	}
	r.svc = server.New(f.scfg)
	r.srv = &http.Server{Handler: r.svc}
	r.alive = true
	go r.srv.Serve(ln)
	return nil
}

// GatewayURL is the base URL clients should hit.
func (f *Fleet) GatewayURL() string { return f.gwURL }

// Gateway exposes the gateway for assertions on stats and the ring.
func (f *Fleet) Gateway() *Gateway { return f.gw }

// ReplicaURL returns replica i's base URL (stable across restarts).
func (f *Fleet) ReplicaURL(i int) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replicas[i].url
}

// Kill crashes replica i: its listener and every open connection are
// torn down immediately, with no drain — the fleet-level analogue of
// kill -9. Idempotent.
func (f *Fleet) Kill(i int) {
	f.mu.Lock()
	r := f.replicas[i]
	alive := r.alive
	r.alive = false
	f.mu.Unlock()
	if !alive {
		return
	}
	r.srv.Close()
	// Reap the worker pool in the background; a crashed process would
	// not drain, but a leaked test goroutine helps nobody.
	svc := r.svc
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Close(ctx)
	}()
}

// Restart brings a killed replica back on its original port with a
// fresh server (cold cache), as a supervisor would. Its chaos
// connection counter keeps counting from where the old incarnation
// stopped.
func (f *Fleet) Restart(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.replicas[i]
	if r.alive {
		return nil
	}
	return f.boot(r, r.addr)
}

// Close tears the whole fleet down: gateway drain first (so no request
// is mid-flight when replicas vanish), then every live replica.
func (f *Fleet) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if f.gw != nil {
		f.gw.Close(ctx)
	}
	if f.gwSrv != nil {
		f.gwSrv.Close()
	}
	f.mu.Lock()
	replicas := append([]*fleetReplica(nil), f.replicas...)
	f.mu.Unlock()
	for _, r := range replicas {
		if !r.alive {
			continue
		}
		r.srv.Close()
		r.svc.Close(ctx)
		r.alive = false
	}
}
