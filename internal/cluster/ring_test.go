package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestNewRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0, 0); err == nil {
		t.Error("empty ring: want error")
	}
	if _, err := NewRing([]string{"a", "a"}, 0, 0); err == nil {
		t.Error("duplicate replica: want error")
	}
}

func TestPickIsDeterministicAndSticky(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r1, err := NewRing(names, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(names, 0, 0)
	for i := 0; i < 50; i++ {
		key := RouteKey("", "", 0, fmt.Sprintf("prog-%d", i))
		p1 := r1.Pick(key)
		p2 := r2.Pick(key)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("key %d: rings disagree: %v vs %v", i, p1, p2)
		}
		if len(p1) != len(names) {
			t.Fatalf("key %d: Pick returned %d candidates, want %d", i, len(p1), len(names))
		}
		seen := map[string]bool{}
		for _, n := range p1 {
			if seen[n] {
				t.Fatalf("key %d: duplicate candidate %s", i, n)
			}
			seen[n] = true
		}
	}
}

func TestPickSpreadsKeys(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r, _ := NewRing(names, 0, 0)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[r.Pick(RouteKey("", "", 0, fmt.Sprintf("prog-%d", i)))[0]]++
	}
	for _, n := range names {
		if counts[n] == 0 {
			t.Errorf("replica %s owns no keys out of 300: %v", n, counts)
		}
	}
}

func TestPickBoundedLoadSpillsHotReplica(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r, _ := NewRing(names, 0, 1.25)
	key := RouteKey("", "", 0, "hot program")
	primary := r.Pick(key)[0]

	// Saturate the primary: with total inflight 4 on it and none
	// elsewhere, capacity = ceil(1.25·5/3) = 3, so the primary is over
	// capacity and must move behind the idle replicas.
	for i := 0; i < 4; i++ {
		r.Acquire(primary)
	}
	got := r.Pick(key)
	if got[0] == primary {
		t.Fatalf("saturated primary %s still first in %v", primary, got)
	}
	if got[len(got)-1] != primary {
		t.Errorf("saturated primary %s should be last resort in %v", primary, got)
	}
	for i := 0; i < 4; i++ {
		r.Release(primary)
	}
	if got := r.Pick(key)[0]; got != primary {
		t.Errorf("after release primary = %s, want %s", got, primary)
	}
}

func TestSetHealthyRoutesAroundAndRebalances(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r, _ := NewRing(names, 0, 0)
	key := RouteKey("", "", 0, "some program")
	primary := r.Pick(key)[0]

	if !r.SetHealthy(primary, false) {
		t.Fatal("SetHealthy(false) reported no change")
	}
	if r.SetHealthy(primary, false) {
		t.Error("second SetHealthy(false) should be a no-op")
	}
	got := r.Pick(key)
	if len(got) != 2 {
		t.Fatalf("with one ejected, Pick = %v, want 2 candidates", got)
	}
	for _, n := range got {
		if n == primary {
			t.Fatalf("ejected replica %s still routed: %v", primary, got)
		}
	}
	if r.Rebalances() != 1 {
		t.Errorf("Rebalances = %d, want 1", r.Rebalances())
	}
	r.SetHealthy(primary, true)
	if got := r.Pick(key)[0]; got != primary {
		t.Errorf("after readmission primary = %s, want %s", got, primary)
	}
	if r.Rebalances() != 2 {
		t.Errorf("Rebalances = %d, want 2", r.Rebalances())
	}
}

func TestPickAllUnhealthyStillRoutes(t *testing.T) {
	names := []string{"http://a", "http://b"}
	r, _ := NewRing(names, 0, 0)
	r.SetHealthy("http://a", false)
	r.SetHealthy("http://b", false)
	got := r.Pick(RouteKey("", "", 0, "x"))
	if len(got) != 2 {
		t.Fatalf("all-unhealthy Pick = %v, want the full membership", got)
	}
}

func TestRouteKeyMatchesCacheKeyShape(t *testing.T) {
	// Defaults fill in exactly like the replica's cache key.
	if RouteKey("", "", 0, "src") != RouteKey("vsfs", "c", 1, "src") {
		t.Error("defaulted key differs from explicit (vsfs, c, seq) key")
	}
	// Only the parallel class matters, not the worker count.
	if RouteKey("", "", 2, "src") != RouteKey("", "", 8, "src") {
		t.Error("parallel=2 and parallel=8 should share a key")
	}
	if RouteKey("", "", 1, "src") == RouteKey("", "", 2, "src") {
		t.Error("sequential and parallel classes should differ")
	}
	if RouteKey("sfs", "", 0, "src") == RouteKey("", "", 0, "src") {
		t.Error("mode should enter the key")
	}
	if RouteKey("", "ir", 0, "src") == RouteKey("", "", 0, "src") {
		t.Error("lang should enter the key")
	}
}
