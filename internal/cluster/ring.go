// Package cluster is the fault-tolerant routing tier in front of a
// fleet of vsfs-serve replicas. Because every response is
// content-addressed and deterministic (the server-cache-identity and
// parallel-eq-sequential invariants), any replica can serve any key and
// produce byte-identical fixpoint-shaped output — so the gateway is
// free to retry, fail over, and hedge aggressively without ever
// changing an answer. The oracle enforces exactly that as
// gateway-eq-direct.
//
// The pieces:
//
//   - Ring: a consistent-hash ring over the replica set with the
//     bounded-load refinement, so one hot program cannot saturate its
//     home replica while the rest idle.
//   - healthChecker: active readiness probing of GET /readyz with
//     ejection after consecutive failures and readmission after
//     consecutive successes.
//   - Backoff: capped exponential retry delays with seeded full jitter
//     that honor upstream Retry-After.
//   - Gateway: the http.Handler tying it together — routing, retries,
//     failover, hedging, metrics, and graceful drain.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is how many points each replica occupies on the
// ring: enough that removing one replica spreads its keyspace across
// every survivor instead of dumping it on one neighbour.
const DefaultVirtualNodes = 64

// DefaultLoadFactor is the bounded-load constant c: a replica may hold
// at most ceil(c · mean) in-flight requests before Pick spills its keys
// to the next replica on the ring.
const DefaultLoadFactor = 1.25

// Ring is a consistent-hash ring over named replicas with bounded-load
// routing and health-driven membership. All methods are safe for
// concurrent use.
type Ring struct {
	mu         sync.Mutex
	vnodesPer  int
	loadFactor float64
	replicas   map[string]*ringMember
	vnodes     []vnode // healthy members' points, sorted by hash
	rebalances int64
}

type ringMember struct {
	name     string
	healthy  bool
	inflight int
}

type vnode struct {
	hash uint64
	name string
}

// NewRing builds a ring over the given replica names, all initially
// healthy. vnodesPer ≤ 0 and loadFactor ≤ 1 select the defaults.
func NewRing(names []string, vnodesPer int, loadFactor float64) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one replica")
	}
	if vnodesPer <= 0 {
		vnodesPer = DefaultVirtualNodes
	}
	if loadFactor <= 1 {
		loadFactor = DefaultLoadFactor
	}
	r := &Ring{
		vnodesPer:  vnodesPer,
		loadFactor: loadFactor,
		replicas:   make(map[string]*ringMember, len(names)),
	}
	for _, n := range names {
		if _, dup := r.replicas[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica %q", n)
		}
		r.replicas[n] = &ringMember{name: n, healthy: true}
	}
	r.rebuildLocked()
	return r, nil
}

// rebuildLocked regenerates the sorted vnode list from the healthy
// members. Caller holds mu.
func (r *Ring) rebuildLocked() {
	r.vnodes = r.vnodes[:0]
	for _, m := range r.replicas {
		if !m.healthy {
			continue
		}
		for i := 0; i < r.vnodesPer; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", m.name, i)
			r.vnodes = append(r.vnodes, vnode{hash: h.Sum64(), name: m.name})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		return r.vnodes[i].name < r.vnodes[j].name
	})
}

// SetHealthy flips one replica's membership and reports whether that
// changed anything. Membership changes rebuild the vnode list (a "ring
// rebalance").
func (r *Ring) SetHealthy(name string, healthy bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.replicas[name]
	if m == nil || m.healthy == healthy {
		return false
	}
	m.healthy = healthy
	r.rebuildLocked()
	r.rebalances++
	return true
}

// Healthy reports one replica's current membership.
func (r *Ring) Healthy(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.replicas[name]
	return m != nil && m.healthy
}

// Rebalances counts membership changes since the ring was built.
func (r *Ring) Rebalances() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rebalances
}

// Acquire charges one in-flight request to name's bounded-load
// accounting; pair with Release.
func (r *Ring) Acquire(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.replicas[name]; m != nil {
		m.inflight++
	}
}

// Release returns Acquire's charge.
func (r *Ring) Release(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.replicas[name]; m != nil && m.inflight > 0 {
		m.inflight--
	}
}

// Inflight reports name's current bounded-load charge.
func (r *Ring) Inflight(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.replicas[name]; m != nil {
		return m.inflight
	}
	return 0
}

// Pick returns the failover order for key: every distinct replica in
// ring-walk order from hash(key), with the bounded-load refinement —
// replicas already at or over capacity (ceil(c · (total+1)/n) in-flight
// requests) are moved behind the under-capacity ones, preserving walk
// order within each class. The first entry is the primary. When every
// replica is unhealthy, the walk runs over the full membership instead:
// probes can be wrong, and trying a replica beats refusing the request
// outright.
func (r *Ring) Pick(key string) []string {
	h := fnv.New64a()
	h.Write([]byte(key))
	kh := h.Sum64()

	r.mu.Lock()
	defer r.mu.Unlock()

	vn := r.vnodes
	candidates := len(vn) / max(r.vnodesPer, 1)
	if len(vn) == 0 {
		// Total eclipse: walk the full membership, deterministically.
		for _, m := range r.replicas {
			for i := 0; i < r.vnodesPer; i++ {
				hh := fnv.New64a()
				fmt.Fprintf(hh, "%s#%d", m.name, i)
				vn = append(vn, vnode{hash: hh.Sum64(), name: m.name})
			}
		}
		sort.Slice(vn, func(i, j int) bool {
			if vn[i].hash != vn[j].hash {
				return vn[i].hash < vn[j].hash
			}
			return vn[i].name < vn[j].name
		})
		candidates = len(r.replicas)
	}
	if len(vn) == 0 {
		return nil
	}

	start := sort.Search(len(vn), func(i int) bool { return vn[i].hash >= kh })
	var walk []string
	seen := make(map[string]bool, candidates)
	for i := 0; len(walk) < candidates && i < len(vn); i++ {
		n := vn[(start+i)%len(vn)].name
		if !seen[n] {
			seen[n] = true
			walk = append(walk, n)
		}
	}

	// Bounded load: capacity = ceil(c · (inflight+1) / replicas).
	total := 0
	for _, n := range walk {
		total += r.replicas[n].inflight
	}
	capacity := int(r.loadFactor * float64(total+1) / float64(len(walk)))
	if float64(capacity) < r.loadFactor*float64(total+1)/float64(len(walk)) {
		capacity++
	}
	if capacity < 1 {
		capacity = 1
	}
	under := make([]string, 0, len(walk))
	var over []string
	for _, n := range walk {
		if r.replicas[n].inflight < capacity {
			under = append(under, n)
		} else {
			over = append(over, n)
		}
	}
	return append(under, over...)
}

// Members returns every replica name, sorted.
func (r *Ring) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.replicas))
	for n := range r.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RouteKey content-addresses a request body the way the replica tier's
// result cache does — SHA-256 over (mode, language, schedule class,
// source), NUL-separated — so a program's requests always walk the ring
// from the same point and land on the replica that already holds the
// result. A body the gateway cannot decode hashes as raw bytes: the
// replica will reject it, but deterministically via the same path.
func RouteKey(mode, lang string, parallel int, source string) string {
	if mode == "" {
		mode = "vsfs"
	}
	if lang == "" {
		lang = "c"
	}
	class := "seq"
	if parallel > 1 {
		class = "par"
	}
	h := sha256.New()
	h.Write([]byte(mode))
	h.Write([]byte{0})
	h.Write([]byte(lang))
	h.Write([]byte{0})
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}
