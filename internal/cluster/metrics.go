package cluster

import (
	"sort"
	"sync"
	"time"

	"vsfs/internal/obs"
)

// retryReasons is the bounded label set of vsfs_gateway_retries_total:
// why an upstream attempt was written off and the request moved on.
var retryReasons = []string{"connect", "timeout", "reset", "status-503", "status-5xx"}

// gatewayMetrics wires the gateway's counters and gauges into one
// obs.Registry; GET /metrics renders it and GET /stats reads the same
// series back, mirroring the replica tier's two-surfaces-one-registry
// rule.
type gatewayMetrics struct {
	reg *obs.Registry

	httpRequests     *obs.Family // counter by endpoint
	upstreamRequests *obs.Family // counter by replica: attempts sent
	upstreamErrors   *obs.Family // counter by replica: attempts that failed
	retries          *obs.Family // counter by reason
	hedges           *obs.Family // counter by outcome (won|lost)
	replicaHealthy   *obs.Family // gauge by replica: 1 in the ring, 0 ejected
	ejections        *obs.Family // counter by replica
	readmissions     *obs.Family // counter by replica
	upstreamSeconds  *obs.Family // histogram by replica
	noReplica        *obs.Series // counter: requests refused with no candidate
}

func newGatewayMetrics(g *Gateway, replicas []string) *gatewayMetrics {
	r := obs.NewRegistry()
	m := &gatewayMetrics{
		reg: r,
		httpRequests: r.CounterVec("vsfs_gateway_http_requests_total",
			"HTTP requests received by the gateway, by endpoint."),
		upstreamRequests: r.CounterVec("vsfs_gateway_requests_total",
			"Upstream attempts dispatched, by replica (retries and hedges each count)."),
		upstreamErrors: r.CounterVec("vsfs_gateway_upstream_errors_total",
			"Upstream attempts that failed (transport error or 5xx), by replica."),
		retries: r.CounterVec("vsfs_gateway_retries_total",
			"Upstream attempts written off and retried or failed over, by reason."),
		hedges: r.CounterVec("vsfs_gateway_hedges_total",
			"Hedged attempts launched after the latency threshold, by outcome: won (hedge answered first) or lost."),
		replicaHealthy: r.GaugeVec("vsfs_gateway_replica_healthy",
			"Replica ring membership: 1 healthy/routable, 0 ejected by the health checker."),
		ejections: r.CounterVec("vsfs_gateway_ejections_total",
			"Replicas ejected from the ring after consecutive failed readiness probes, by replica."),
		readmissions: r.CounterVec("vsfs_gateway_readmissions_total",
			"Ejected replicas readmitted after consecutive successful readiness probes, by replica."),
		upstreamSeconds: r.HistogramVec("vsfs_gateway_upstream_seconds",
			"Latency of upstream attempts that returned a final answer, by replica.", obs.LatencyBuckets),
		noReplica: r.Counter("vsfs_gateway_no_replica_total",
			"Requests refused because the ring had no candidate replica."),
	}
	obs.RegisterBuildInfo(r)
	r.GaugeFunc("vsfs_gateway_ring_rebalances",
		"Ring membership changes (ejections + readmissions) since the gateway started.",
		func() float64 { return float64(g.ring.Rebalances()) })
	r.GaugeFunc("vsfs_gateway_uptime_seconds",
		"Seconds since the gateway was created.",
		func() float64 { return time.Since(g.started).Seconds() })
	r.GaugeFunc("vsfs_gateway_draining",
		"1 once graceful shutdown has begun, else 0.",
		func() float64 {
			if g.draining.Load() {
				return 1
			}
			return 0
		})

	// Materialise every label combination /stats reads, so a fresh
	// gateway exposes zeros rather than absent series.
	for _, ep := range []string{"analyze", "query", "check", "healthz", "readyz", "stats", "metrics", "other"} {
		m.httpRequests.With("endpoint", ep)
	}
	for _, reason := range retryReasons {
		m.retries.With("reason", reason)
	}
	for _, out := range []string{"won", "lost"} {
		m.hedges.With("outcome", out)
	}
	for _, rep := range replicas {
		m.upstreamRequests.With("replica", rep)
		m.upstreamErrors.With("replica", rep)
		m.ejections.With("replica", rep)
		m.readmissions.With("replica", rep)
		m.replicaHealthy.With("replica", rep).Set(1)
	}
	return m
}

// latencyWindow is a fixed-size ring of recent latency samples; the
// hedging threshold and the /stats percentiles read it.
type latencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration
	idx     int
	filled  int
	last    time.Duration
}

const latencyWindowSize = 256

func newLatencyWindow() *latencyWindow {
	return &latencyWindow{samples: make([]time.Duration, latencyWindowSize)}
}

func (w *latencyWindow) add(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples[w.idx] = d
	w.idx = (w.idx + 1) % len(w.samples)
	if w.filled < len(w.samples) {
		w.filled++
	}
	w.last = d
}

// quantile returns the q-quantile of the window, or false when empty.
func (w *latencyWindow) quantile(q float64) (time.Duration, bool) {
	w.mu.Lock()
	n := w.filled
	buf := make([]time.Duration, n)
	copy(buf, w.samples[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0, false
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	i := int(q * float64(n-1))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return buf[i], true
}

func (w *latencyWindow) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.filled
}

func (w *latencyWindow) lastSample() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last
}

// ReplicaStats is one replica's row in the gateway's /stats body.
type ReplicaStats struct {
	Name     string  `json:"name"`
	Healthy  bool    `json:"healthy"`
	Inflight int     `json:"inflight"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Samples  int     `json:"samples"`
	P50Ms    float64 `json:"p50Ms"`
	P95Ms    float64 `json:"p95Ms"`
	LastMs   float64 `json:"lastMs"`
}

// StatsSnapshot is the JSON body of the gateway's GET /stats.
type StatsSnapshot struct {
	Draining       bool             `json:"draining"`
	UptimeSeconds  float64          `json:"uptimeSeconds"`
	Requests       int64            `json:"requests"`
	NoReplica      int64            `json:"noReplica"`
	Retries        map[string]int64 `json:"retries"`
	HedgesWon      int64            `json:"hedgesWon"`
	HedgesLost     int64            `json:"hedgesLost"`
	Ejections      int64            `json:"ejections"`
	Readmissions   int64            `json:"readmissions"`
	RingRebalances int64            `json:"ringRebalances"`
	Replicas       []ReplicaStats   `json:"replicas"`
}

func (g *Gateway) snapshot() StatsSnapshot {
	m := g.met
	snap := StatsSnapshot{
		Draining:       g.draining.Load(),
		UptimeSeconds:  time.Since(g.started).Seconds(),
		Requests:       int64(m.httpRequests.With("endpoint", "analyze").Value()) + int64(m.httpRequests.With("endpoint", "query").Value()) + int64(m.httpRequests.With("endpoint", "check").Value()),
		NoReplica:      int64(m.noReplica.Value()),
		Retries:        make(map[string]int64, len(retryReasons)),
		HedgesWon:      int64(m.hedges.With("outcome", "won").Value()),
		HedgesLost:     int64(m.hedges.With("outcome", "lost").Value()),
		Ejections:      int64(m.ejections.Total()),
		Readmissions:   int64(m.readmissions.Total()),
		RingRebalances: g.ring.Rebalances(),
	}
	for _, reason := range retryReasons {
		snap.Retries[reason] = int64(m.retries.With("reason", reason).Value())
	}
	for _, name := range g.ring.Members() {
		w := g.latencyOf(name)
		p50, _ := w.quantile(0.50)
		p95, _ := w.quantile(0.95)
		snap.Replicas = append(snap.Replicas, ReplicaStats{
			Name:     name,
			Healthy:  g.ring.Healthy(name),
			Inflight: g.ring.Inflight(name),
			Requests: int64(m.upstreamRequests.With("replica", name).Value()),
			Errors:   int64(m.upstreamErrors.With("replica", name).Value()),
			Samples:  w.count(),
			P50Ms:    float64(p50) / 1e6,
			P95Ms:    float64(p95) / 1e6,
			LastMs:   float64(w.lastSample()) / 1e6,
		})
	}
	return snap
}
