package cluster

import (
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Backoff computes retry delays: capped exponential growth with full
// jitter (delay drawn uniformly from [0, cap'd exponential]), the
// combination that de-correlates a burst of clients retrying the same
// failure. An upstream Retry-After acts as a floor — the server said
// when it wants us back, and we never come back earlier — but is still
// capped so a hostile or buggy header cannot park a request forever.
//
// The RNG is seeded, never the wall clock, so tests are deterministic.
type Backoff struct {
	base time.Duration
	cap  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Defaults for NewBackoff's zero arguments.
const (
	DefaultRetryBase = 25 * time.Millisecond
	DefaultRetryCap  = 2 * time.Second
)

// NewBackoff builds a backoff policy. Zero base/cap select the
// defaults; seed 0 draws a random one.
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = DefaultRetryBase
	}
	if cap <= 0 {
		cap = DefaultRetryCap
	}
	if cap < base {
		cap = base
	}
	if seed == 0 {
		seed = rand.Int63()
	}
	return &Backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns how long to wait before retry number attempt (0-based:
// the delay before the first retry is Delay(0)). retryAfter is the
// upstream's Retry-After wish, or 0.
func (b *Backoff) Delay(attempt int, retryAfter time.Duration) time.Duration {
	ceil := b.base
	for i := 0; i < attempt && ceil < b.cap; i++ {
		ceil *= 2
	}
	if ceil > b.cap {
		ceil = b.cap
	}
	b.mu.Lock()
	d := time.Duration(b.rng.Int63n(int64(ceil) + 1))
	b.mu.Unlock()
	if retryAfter > 0 {
		if retryAfter > b.cap {
			retryAfter = b.cap
		}
		if d < retryAfter {
			d = retryAfter
		}
	}
	return d
}

// retryAfterOf parses a response's Retry-After header (delta-seconds
// form only — the HTTP-date form is pointless between our own tiers).
func retryAfterOf(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
