package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a scripted stand-in for vsfs-serve: it answers
// GET /readyz from a flippable ready flag and hands POSTs to a script.
type fakeReplica struct {
	srv      *httptest.Server
	ready    atomic.Bool
	requests atomic.Int64
	handle   func(n int64, w http.ResponseWriter, r *http.Request)
}

func newFakeReplica(t *testing.T, handle func(n int64, w http.ResponseWriter, r *http.Request)) *fakeReplica {
	t.Helper()
	f := &fakeReplica{handle: handle}
	f.ready.Store(true)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/readyz" {
			if f.ready.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			return
		}
		f.handle(f.requests.Add(1), w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func ok200(body string) func(int64, http.ResponseWriter, *http.Request) {
	return func(_ int64, w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}
}

// quietConfig keeps tests deterministic: no hedging, no probe ticks
// beyond the initial sweep, tiny backoff.
func quietConfig(replicas ...string) Config {
	return Config{
		Replicas:      replicas,
		HedgeAfter:    -1,
		ProbeInterval: time.Hour,
		RetryBase:     time.Millisecond,
		RetryCap:      2 * time.Millisecond,
		RetrySeed:     1,
	}
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		g.Close(ctx)
	})
	return g
}

func gwPost(t *testing.T, g *Gateway, path, body string) (int, http.Header, []byte) {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

func TestGatewayProxiesAndSticks(t *testing.T) {
	a := newFakeReplica(t, ok200("from-a"))
	b := newFakeReplica(t, ok200("from-b"))
	g := newTestGateway(t, quietConfig(a.srv.URL, b.srv.URL))

	body := `{"source":"int main() { return 0; }"}`
	var first string
	for i := 0; i < 5; i++ {
		code, hdr, got := gwPost(t, g, "/analyze", body)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, got)
		}
		if hdr.Get("X-Vsfs-Replica") == "" {
			t.Fatal("missing X-Vsfs-Replica header")
		}
		if hdr.Get("X-Vsfs-Gateway-Attempts") != "1" {
			t.Fatalf("attempts = %q, want 1", hdr.Get("X-Vsfs-Gateway-Attempts"))
		}
		if first == "" {
			first = string(got)
		} else if string(got) != first {
			t.Fatalf("request %d landed on a different replica: %q vs %q", i, got, first)
		}
	}
	// All five went to one replica, none to the other.
	if an, bn := a.requests.Load(), b.requests.Load(); an+bn != 5 || (an != 0 && bn != 0) {
		t.Errorf("requests split a=%d b=%d; want all 5 on one replica", an, bn)
	}
}

func TestGatewayRetriesOn503ThenSucceeds(t *testing.T) {
	rep := newFakeReplica(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "finally")
	})
	g := newTestGateway(t, func() Config {
		c := quietConfig(rep.srv.URL)
		c.MaxAttempts = 3
		return c
	}())

	code, hdr, body := gwPost(t, g, "/analyze", "prog")
	if code != http.StatusOK || string(body) != "finally" {
		t.Fatalf("status %d body %q", code, body)
	}
	if got := hdr.Get("X-Vsfs-Gateway-Attempts"); got != "3" {
		t.Errorf("attempts = %q, want 3", got)
	}
	if got := g.Stats().Retries["status-503"]; got != 2 {
		t.Errorf("status-503 retries = %d, want 2", got)
	}
}

func TestGatewayBudgetExhaustedSurfacesUpstreamRejection(t *testing.T) {
	rep := newFakeReplica(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	g := newTestGateway(t, func() Config {
		c := quietConfig(rep.srv.URL)
		c.MaxAttempts = 2
		return c
	}())

	code, hdr, _ := gwPost(t, g, "/analyze", "prog")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 relayed from upstream", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("upstream Retry-After should be relayed")
	}
	if got := rep.requests.Load(); got != 2 {
		t.Errorf("upstream saw %d attempts, want exactly the budget of 2", got)
	}
}

func TestGateway4xxIsFinal(t *testing.T) {
	rep := newFakeReplica(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad program", http.StatusBadRequest)
	})
	g := newTestGateway(t, func() Config {
		c := quietConfig(rep.srv.URL)
		c.MaxAttempts = 4
		return c
	}())

	code, _, _ := gwPost(t, g, "/analyze", "prog")
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if got := rep.requests.Load(); got != 1 {
		t.Errorf("4xx was retried: %d attempts", got)
	}
}

func TestGatewayFailsOverOnConnectError(t *testing.T) {
	live := newFakeReplica(t, ok200("alive"))
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	g := newTestGateway(t, func() Config {
		c := quietConfig(live.srv.URL, deadURL)
		c.MaxAttempts = 3
		return c
	}())

	// Across many distinct keys some route to the dead replica first;
	// every one of them must fail over and succeed.
	connectRetries := false
	for i := 0; i < 20; i++ {
		code, _, body := gwPost(t, g, "/analyze", fmt.Sprintf("prog-%d", i))
		if code != http.StatusOK || string(body) != "alive" {
			t.Fatalf("request %d: status %d body %q", i, code, body)
		}
	}
	if g.Stats().Retries["connect"] > 0 {
		connectRetries = true
	}
	if !connectRetries {
		t.Error("20 keys across 2 replicas never hit the dead one — failover untested")
	}
}

func TestGatewayHedgesSlowPrimary(t *testing.T) {
	slow := newFakeReplica(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		io.WriteString(w, "slow")
	})
	fast := newFakeReplica(t, ok200("fast"))
	cfg := quietConfig(slow.srv.URL, fast.srv.URL)
	cfg.HedgeAfter = 20 * time.Millisecond
	cfg.MaxAttempts = 2
	g := newTestGateway(t, cfg)

	// Find a body whose primary is the slow replica.
	body := ""
	for i := 0; i < 200; i++ {
		candidate := fmt.Sprintf("prog-%d", i)
		if g.Ring().Pick(RouteKey("", "", 0, candidate))[0] == slow.srv.URL {
			body = candidate
			break
		}
	}
	if body == "" {
		t.Fatal("no key routes to the slow replica first")
	}

	start := time.Now()
	code, hdr, got := gwPost(t, g, "/analyze", body)
	if code != http.StatusOK || string(got) != "fast" {
		t.Fatalf("status %d body %q, want the hedge's answer", code, got)
	}
	if hdr.Get("X-Vsfs-Replica") != fast.srv.URL {
		t.Errorf("X-Vsfs-Replica = %q, want the fast replica", hdr.Get("X-Vsfs-Replica"))
	}
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Errorf("hedged request took %v — waited out the slow primary", elapsed)
	}
	if won := g.Stats().HedgesWon; won != 1 {
		t.Errorf("HedgesWon = %d, want 1", won)
	}
}

func TestGatewayHealthEjectsAndReadmits(t *testing.T) {
	flaky := newFakeReplica(t, ok200("flaky"))
	steady := newFakeReplica(t, ok200("steady"))
	cfg := quietConfig(flaky.srv.URL, steady.srv.URL)
	cfg.ProbeInterval = 10 * time.Millisecond
	cfg.EjectAfter = 2
	cfg.ReadmitAfter = 2
	g := newTestGateway(t, cfg)

	flaky.ready.Store(false)
	waitFor(t, "ejection", func() bool { return !g.Ring().Healthy(flaky.srv.URL) })
	if got := g.Stats().Ejections; got != 1 {
		t.Errorf("Ejections = %d, want 1", got)
	}

	// While ejected, every key routes to the steady replica.
	for i := 0; i < 10; i++ {
		code, hdr, _ := gwPost(t, g, "/analyze", fmt.Sprintf("prog-%d", i))
		if code != http.StatusOK {
			t.Fatalf("request %d failed with %d", i, code)
		}
		if hdr.Get("X-Vsfs-Replica") != steady.srv.URL {
			t.Fatalf("request %d routed to ejected replica", i)
		}
	}

	flaky.ready.Store(true)
	waitFor(t, "readmission", func() bool { return g.Ring().Healthy(flaky.srv.URL) })
	s := g.Stats()
	if s.Readmissions != 1 {
		t.Errorf("Readmissions = %d, want 1", s.Readmissions)
	}
	if s.RingRebalances != 2 {
		t.Errorf("RingRebalances = %d, want 2", s.RingRebalances)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatewayDrain(t *testing.T) {
	rep := newFakeReplica(t, ok200("ok"))
	g := newTestGateway(t, quietConfig(rep.srv.URL))

	req := httptest.NewRequest("GET", "/readyz", nil)
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-drain /readyz = %d", rec.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Close(ctx); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain /readyz = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("post-drain /readyz missing Retry-After")
	}
	code, hdr, _ := gwPost(t, g, "/analyze", "prog")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("post-drain proxy = %d (Retry-After %q), want 503 with Retry-After", code, hdr.Get("Retry-After"))
	}
	// /healthz stays a pure liveness check.
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("post-drain /healthz = %d, want 200", rec.Code)
	}
}

func TestGatewayStatsAndMetricsSurfaces(t *testing.T) {
	rep := newFakeReplica(t, ok200("ok"))
	g := newTestGateway(t, quietConfig(rep.srv.URL))
	for i := 0; i < 3; i++ {
		if code, _, _ := gwPost(t, g, "/analyze", fmt.Sprintf("p%d", i)); code != http.StatusOK {
			t.Fatal("seed request failed")
		}
	}

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if snap.Requests != 3 {
		t.Errorf("stats.Requests = %d, want 3", snap.Requests)
	}
	if len(snap.Replicas) != 1 || snap.Replicas[0].Requests != 3 || !snap.Replicas[0].Healthy {
		t.Errorf("stats.Replicas = %+v", snap.Replicas)
	}
	if snap.Replicas[0].Samples != 3 || snap.Replicas[0].P95Ms <= 0 {
		t.Errorf("latency snapshot missing: %+v", snap.Replicas[0])
	}

	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"vsfs_gateway_requests_total",
		"vsfs_gateway_retries_total",
		"vsfs_gateway_hedges_total",
		"vsfs_gateway_replica_healthy",
		"vsfs_gateway_upstream_seconds",
		"vsfs_gateway_ring_rebalances",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestGatewayBodyTooLarge(t *testing.T) {
	rep := newFakeReplica(t, ok200("ok"))
	cfg := quietConfig(rep.srv.URL)
	cfg.MaxBodyBytes = 64
	g := newTestGateway(t, cfg)
	code, _, _ := gwPost(t, g, "/analyze", strings.Repeat("x", 65))
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", code)
	}
	if rep.requests.Load() != 0 {
		t.Error("oversized body reached a replica")
	}
}

func TestGatewayRelaysUpstreamAnnotations(t *testing.T) {
	rep := newFakeReplica(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Vsfs-Cache", "hit")
		w.Header().Set("X-Vsfs-Key", "abc123")
		io.WriteString(w, "{}")
	})
	g := newTestGateway(t, quietConfig(rep.srv.URL))
	_, hdr, _ := gwPost(t, g, "/analyze", "prog")
	if hdr.Get("X-Vsfs-Cache") != "hit" || hdr.Get("X-Vsfs-Key") != "abc123" {
		t.Errorf("upstream annotations dropped: cache=%q key=%q",
			hdr.Get("X-Vsfs-Cache"), hdr.Get("X-Vsfs-Key"))
	}
}

func TestGatewayDeadlinePropagates(t *testing.T) {
	rep := newFakeReplica(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
			io.WriteString(w, "too late")
		}
	})
	g := newTestGateway(t, quietConfig(rep.srv.URL))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("POST", "/analyze", strings.NewReader("prog")).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	g.ServeHTTP(rec, req)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline ignored: took %v", elapsed)
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", rec.Code)
	}
}
