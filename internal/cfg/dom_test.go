package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vsfs/internal/ir"
)

// diamond builds:  entry → {then, else} → join → exit
func diamond(t *testing.T) (*ir.Program, *ir.Function) {
	t.Helper()
	p := ir.NewProgram()
	f := p.NewFunction("f", 0)
	entry := f.Entry
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	entry.AddSucc(then)
	entry.AddSucc(els)
	then.AddSucc(join)
	els.AddSucc(join)
	f.Exit = join
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p, f
}

func TestDiamondDominators(t *testing.T) {
	_, f := diamond(t)
	info := Compute(f)

	entry, then, els, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if info.Idom(entry) != nil {
		t.Error("entry has an idom")
	}
	for _, b := range []*ir.Block{then, els, join} {
		if info.Idom(b) != entry {
			t.Errorf("idom(%s) = %v, want entry", b, info.Idom(b))
		}
	}
	if !info.Dominates(entry, join) {
		t.Error("entry should dominate join")
	}
	if info.Dominates(then, join) {
		t.Error("then should not dominate join")
	}
	if !info.Dominates(join, join) {
		t.Error("dominance should be reflexive")
	}
	// DF(then) = DF(else) = {join}; DF(entry) = DF(join) = {}.
	if df := info.Frontier(then); len(df) != 1 || df[0] != join {
		t.Errorf("DF(then) = %v", df)
	}
	if df := info.Frontier(els); len(df) != 1 || df[0] != join {
		t.Errorf("DF(else) = %v", df)
	}
	if df := info.Frontier(entry); len(df) != 0 {
		t.Errorf("DF(entry) = %v", df)
	}
}

func TestLoopFrontier(t *testing.T) {
	// entry → header; header → {body, exit}; body → header
	p := ir.NewProgram()
	f := p.NewFunction("f", 0)
	entry := f.Entry
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	entry.AddSucc(header)
	header.AddSucc(body)
	header.AddSucc(exit)
	body.AddSucc(header)
	f.Exit = exit
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	info := Compute(f)
	if info.Idom(header) != entry || info.Idom(body) != header || info.Idom(exit) != header {
		t.Errorf("idoms wrong: header←%v body←%v exit←%v",
			info.Idom(header), info.Idom(body), info.Idom(exit))
	}
	// header is in its own frontier (loop) and in body's.
	if df := info.Frontier(body); len(df) != 1 || df[0] != header {
		t.Errorf("DF(body) = %v", df)
	}
	found := false
	for _, b := range info.Frontier(header) {
		if b == header {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(header) = %v, want to contain header", info.Frontier(header))
	}
}

func TestUnreachableBlock(t *testing.T) {
	p := ir.NewProgram()
	f := p.NewFunction("f", 0)
	dead := f.NewBlock("dead")
	f.Exit = f.Entry
	dead.AddSucc(f.Entry)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	info := Compute(f)
	if info.Reachable(dead) {
		t.Error("dead block marked reachable")
	}
	if info.Idom(dead) != nil {
		t.Error("dead block has idom")
	}
	if len(info.RPO) != 1 {
		t.Errorf("RPO = %v", info.RPO)
	}
	if info.Dominates(dead, f.Entry) || info.Dominates(f.Entry, dead) {
		t.Error("dominance involving unreachable block")
	}
}

// Property: on random CFGs, Idom matches a brute-force dominator
// computation (b dominates c iff every entry→c path passes through b,
// checked by deleting b and testing reachability).
func TestQuickIdomMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := ir.NewProgram()
		fn := p.NewFunction("f", 0)
		n := 2 + r.Intn(8)
		blocks := []*ir.Block{fn.Entry}
		for i := 1; i < n; i++ {
			blocks = append(blocks, fn.NewBlock("b"))
		}
		for e := 0; e < 2*n; e++ {
			blocks[r.Intn(n)].AddSucc(blocks[r.Intn(n)])
		}
		fn.Exit = blocks[n-1]
		if err := p.Finalize(); err != nil {
			return true // malformed; skip
		}
		info := Compute(fn)

		// Brute force dominance: c reachable from entry avoiding b?
		reachAvoiding := func(avoid, target *ir.Block) bool {
			if avoid == fn.Entry {
				return target == fn.Entry // nothing else reachable
			}
			seen := map[*ir.Block]bool{fn.Entry: true}
			work := []*ir.Block{fn.Entry}
			for len(work) > 0 {
				b := work[len(work)-1]
				work = work[:len(work)-1]
				for _, s := range b.Succs {
					if s == avoid || seen[s] {
						continue
					}
					seen[s] = true
					work = append(work, s)
				}
			}
			return seen[target]
		}
		dominates := func(a, b *ir.Block) bool {
			if !info.Reachable(b) || !info.Reachable(a) {
				return false
			}
			if a == b {
				return true
			}
			return !reachAvoiding(a, b)
		}
		for _, a := range blocks {
			for _, b := range blocks {
				if info.Dominates(a, b) != dominates(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the dominance-frontier definition holds — c ∈ DF(b) iff b
// dominates a predecessor of c but does not strictly dominate c.
func TestQuickFrontierDefinition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := ir.NewProgram()
		fn := p.NewFunction("f", 0)
		n := 2 + r.Intn(8)
		blocks := []*ir.Block{fn.Entry}
		for i := 1; i < n; i++ {
			blocks = append(blocks, fn.NewBlock("b"))
		}
		for e := 0; e < 2*n; e++ {
			blocks[r.Intn(n)].AddSucc(blocks[r.Intn(n)])
		}
		fn.Exit = blocks[n-1]
		if err := p.Finalize(); err != nil {
			return true
		}
		info := Compute(fn)
		inDF := func(b, c *ir.Block) bool {
			for _, x := range info.Frontier(b) {
				if x == c {
					return true
				}
			}
			return false
		}
		for _, b := range blocks {
			if !info.Reachable(b) {
				continue
			}
			for _, c := range blocks {
				if !info.Reachable(c) {
					continue
				}
				want := false
				for _, pb := range c.Preds {
					if info.Reachable(pb) && info.Dominates(b, pb) && !(info.Dominates(b, c) && b != c) {
						want = true
					}
				}
				if inDF(b, c) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
