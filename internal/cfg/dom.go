// Package cfg computes per-function control-flow facts needed by the
// memory-SSA construction: reverse postorder, immediate dominators
// (Cooper–Harvey–Kennedy, "A Simple, Fast Dominance Algorithm"), and
// dominance frontiers (Cytron et al.), which determine where MEMPHI nodes
// are placed.
package cfg

import "vsfs/internal/ir"

// Info holds the control-flow facts for one function. Blocks unreachable
// from the entry have Idom == nil and empty frontiers; the memory-SSA pass
// skips them.
type Info struct {
	Fn *ir.Function

	// RPO is the reverse postorder of reachable blocks, starting with the
	// entry block.
	RPO []*ir.Block

	// rpoNum maps block index (within Fn.Blocks) to its position in RPO,
	// or -1 if unreachable.
	rpoNum []int

	// idom maps block index to immediate dominator (nil for entry and
	// unreachable blocks).
	idom []*ir.Block

	// frontier maps block index to its dominance frontier.
	frontier [][]*ir.Block
}

// Compute builds the Info for f.
func Compute(f *ir.Function) *Info {
	n := len(f.Blocks)
	info := &Info{
		Fn:       f,
		rpoNum:   make([]int, n),
		idom:     make([]*ir.Block, n),
		frontier: make([][]*ir.Block, n),
	}
	for i := range info.rpoNum {
		info.rpoNum[i] = -1
	}
	info.buildRPO()
	info.buildIdom()
	info.buildFrontiers()
	return info
}

// Reachable reports whether b is reachable from the entry.
func (i *Info) Reachable(b *ir.Block) bool { return i.rpoNum[b.Index] >= 0 }

// Idom returns the immediate dominator of b (nil for the entry block and
// unreachable blocks).
func (i *Info) Idom(b *ir.Block) *ir.Block { return i.idom[b.Index] }

// Frontier returns the dominance frontier of b.
func (i *Info) Frontier(b *ir.Block) []*ir.Block { return i.frontier[b.Index] }

// Dominates reports whether a dominates b (reflexively).
func (i *Info) Dominates(a, b *ir.Block) bool {
	if !i.Reachable(a) || !i.Reachable(b) {
		return false
	}
	for b != nil {
		if a == b {
			return true
		}
		b = i.idom[b.Index]
	}
	return false
}

func (i *Info) buildRPO() {
	f := i.Fn
	var post []*ir.Block
	state := make([]uint8, len(f.Blocks)) // 0 unseen, 1 on stack, 2 done

	type frame struct {
		b    *ir.Block
		next int
	}
	stack := []frame{{b: f.Entry}}
	state[f.Entry.Index] = 1
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(fr.b.Succs) {
			s := fr.b.Succs[fr.next]
			fr.next++
			if state[s.Index] == 0 {
				state[s.Index] = 1
				stack = append(stack, frame{b: s})
			}
			continue
		}
		state[fr.b.Index] = 2
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	i.RPO = make([]*ir.Block, len(post))
	for k := range post {
		b := post[len(post)-1-k]
		i.RPO[k] = b
		i.rpoNum[b.Index] = k
	}
}

// buildIdom runs the CHK iteration-to-fixpoint over RPO.
func (i *Info) buildIdom() {
	if len(i.RPO) == 0 {
		return
	}
	entry := i.RPO[0]
	// doms, indexed by RPO number.
	doms := make([]int, len(i.RPO))
	for k := range doms {
		doms[k] = -1
	}
	doms[0] = 0

	intersect := func(a, b int) int {
		for a != b {
			for a > b {
				a = doms[a]
			}
			for b > a {
				b = doms[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for k := 1; k < len(i.RPO); k++ {
			b := i.RPO[k]
			newIdom := -1
			for _, p := range b.Preds {
				pn := i.rpoNum[p.Index]
				if pn < 0 || doms[pn] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = pn
				} else {
					newIdom = intersect(newIdom, pn)
				}
			}
			if newIdom >= 0 && doms[k] != newIdom {
				doms[k] = newIdom
				changed = true
			}
		}
	}
	for k := 1; k < len(i.RPO); k++ {
		if doms[k] >= 0 {
			i.idom[i.RPO[k].Index] = i.RPO[doms[k]]
		}
	}
	_ = entry
}

// buildFrontiers computes DF(b) with the standard two-predecessor walk.
func (i *Info) buildFrontiers() {
	for _, b := range i.RPO {
		for _, p := range b.Preds {
			if !i.Reachable(p) {
				continue
			}
			runner := p
			for runner != nil && runner != i.idom[b.Index] {
				if !frontierHas(i.frontier[runner.Index], b) {
					i.frontier[runner.Index] = append(i.frontier[runner.Index], b)
				}
				runner = i.idom[runner.Index]
			}
		}
	}
}

func frontierHas(fs []*ir.Block, b *ir.Block) bool {
	for _, f := range fs {
		if f == b {
			return true
		}
	}
	return false
}
