// Package checker hosts client analyses built on the pointer-analysis
// results: a null/uninitialised-dereference checker and a
// dangling-stack-pointer checker. They consume any solver's results
// through the PointsTo interface, so the same client runs on Andersen's,
// SFS or VSFS facts — with flow-sensitive facts finding strictly more
// (and more precise) issues.
package checker

import (
	"fmt"

	"vsfs/internal/bitset"
	"vsfs/internal/ir"
)

// PointsTo abstracts a solved analysis.
type PointsTo interface {
	PointsTo(v ir.ID) *bitset.Sparse
}

// Kind classifies a finding.
type Kind string

const (
	// NullDeref: a load or store whose base pointer has an empty
	// points-to set at that point — null or uninitialised.
	NullDeref Kind = "null-deref"
	// DanglingReturn: a function returns a pointer that may reference
	// its own stack frame.
	DanglingReturn Kind = "dangling-return"
	// StackEscape: a store publishes the address of a local variable
	// into a global or heap object that outlives the frame.
	StackEscape Kind = "stack-escape"
)

// Finding is one reported issue.
type Finding struct {
	Kind    Kind
	Func    string
	Label   uint32 // instruction label
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s (ℓ%d): %s", f.Kind, f.Func, f.Label, f.Message)
}

// NullDerefs reports loads and stores whose base pointer may be null or
// uninitialised under the given analysis results.
func NullDerefs(prog *ir.Program, res PointsTo) []Finding {
	var out []Finding
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			var base ir.ID
			var what string
			switch in.Op {
			case ir.Load:
				base, what = in.Uses[0], "load"
			case ir.Store:
				base, what = in.Uses[0], "store"
			default:
				return
			}
			if res.PointsTo(base).IsEmpty() {
				out = append(out, Finding{
					Kind:  NullDeref,
					Func:  f.Name,
					Label: in.Label,
					Message: fmt.Sprintf("%s through %s, which points to nothing here",
						what, prog.NameOf(base)),
				})
			}
		})
	}
	return out
}

// DanglingReturns reports functions that may return a pointer into
// their own stack frame.
func DanglingReturns(prog *ir.Program, res PointsTo) []Finding {
	var out []Finding
	for _, f := range prog.Funcs {
		if f.Ret == ir.None {
			continue
		}
		res.PointsTo(f.Ret).ForEach(func(o uint32) {
			v := prog.Value(ir.ID(o))
			if v.ObjKind == ir.StackObj && v.DefFunc == f {
				out = append(out, Finding{
					Kind:  DanglingReturn,
					Func:  f.Name,
					Label: f.ExitInstr.Label,
					Message: fmt.Sprintf("returns a pointer to its own local %s",
						v.Name),
				})
			}
		})
	}
	return out
}

// ObjectSummaries abstracts per-object "may ever hold" queries, provided
// by the flow-sensitive solvers and by Andersen's PointsTo directly.
type ObjectSummaries interface {
	ObjectSummary(o ir.ID) *bitset.Sparse
}

// StackEscapes reports stores that publish a local's address into
// storage that outlives the frame: a global or heap object whose summary
// contains a stack object of another frame's future dead local.
func StackEscapes(prog *ir.Program, sums ObjectSummaries) []Finding {
	var out []Finding
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		holder := prog.Value(id)
		if holder.Kind != ir.Object {
			continue
		}
		if holder.ObjKind != ir.GlobalObj && holder.ObjKind != ir.HeapObj {
			continue
		}
		sums.ObjectSummary(id).ForEach(func(o uint32) {
			pointee := prog.Value(ir.ID(o))
			if pointee.ObjKind != ir.StackObj || pointee.DefFunc == nil {
				return
			}
			out = append(out, Finding{
				Kind:  StackEscape,
				Func:  pointee.DefFunc.Name,
				Label: pointee.DefFunc.ExitInstr.Label,
				Message: fmt.Sprintf("address of local %s escapes into %s %s",
					pointee.Name, holder.ObjKind, holder.Name),
			})
		})
	}
	return out
}
