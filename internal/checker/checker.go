// Package checker hosts the memory-safety and information-flow clients
// built on the pointer-analysis results:
//
//   - null-deref: a load or store whose base pointer has an empty
//     points-to set at that point (null or uninitialised);
//   - dangling-return: a function may return a pointer into its own
//     stack frame;
//   - stack-escape: the address of a local escapes into a global or
//     heap object that outlives the frame;
//   - use-after-free: a load or store may access an object that was
//     freed on some path reaching it, or dereferences a pointer value
//     that was itself loaded from freed memory;
//   - double-free: a free whose operand may point to an
//     already-freed object;
//   - memory-leak: a heap allocation that is neither freed nor
//     reachable from any root (global contents or main's pointers) when
//     the program exits;
//   - leak (taint): an object allocated in a source function reaches an
//     argument of a sink call, with optional sanitizer functions that
//     clear sensitivity.
//
// Deallocation is modelled by lowering free(p) to a store of the
// distinguished FREED token object through p (ir.Program.FreedObj).
// "Object o is freed before instruction ℓ" is then exactly "the FREED
// token is in o's contents entering ℓ", a question every flow-sensitive
// solver already answers; strong updates on singleton pointees make the
// answer per-path precise.
//
// The checkers consume any solver's results through the PointsTo /
// ObjectSummaries / FlowFacts interfaces, so the same client runs on
// Andersen's, SFS or VSFS facts — with flow-sensitive facts giving
// strictly more precise answers. See internal/oracle for the formal
// relationships between the three solvers' findings.
package checker

import (
	"fmt"

	"vsfs/internal/bitset"
	"vsfs/internal/ir"
)

// PointsTo abstracts a solved analysis.
type PointsTo interface {
	PointsTo(v ir.ID) *bitset.Sparse
}

// Kind classifies a finding.
type Kind string

const (
	// NullDeref: a load or store whose base pointer has an empty
	// points-to set at that point — null or uninitialised.
	NullDeref Kind = "null-deref"
	// DanglingReturn: a function returns a pointer that may reference
	// its own stack frame.
	DanglingReturn Kind = "dangling-return"
	// StackEscape: a store publishes the address of a local variable
	// into a global or heap object that outlives the frame.
	StackEscape Kind = "stack-escape"
	// UseAfterFree: a load or store may access an object already freed
	// at that point, or dereferences a pointer loaded from freed memory.
	UseAfterFree Kind = "use-after-free"
	// DoubleFree: a free whose operand may point to an already-freed
	// object.
	DoubleFree Kind = "double-free"
	// MemoryLeak: a heap allocation neither freed nor reachable from
	// any root when the program exits.
	MemoryLeak Kind = "memory-leak"
)

// Kinds lists every finding kind the package can produce, in reporting
// order. Diagnostics configuration (internal/diag) indexes by these.
func Kinds() []Kind {
	return []Kind{NullDeref, DanglingReturn, StackEscape, UseAfterFree, DoubleFree, MemoryLeak, Leak}
}

// Finding is one reported issue.
type Finding struct {
	Kind    Kind
	Func    string
	Label   uint32 // instruction label
	Pos     ir.Pos // source position, when the IR carries provenance
	Message string
}

func (f Finding) String() string {
	if f.Pos.IsKnown() {
		return fmt.Sprintf("[%s] %s (%s): %s", f.Kind, f.Func, f.Pos, f.Message)
	}
	return fmt.Sprintf("[%s] %s (ℓ%d): %s", f.Kind, f.Func, f.Label, f.Message)
}

// NullDerefs reports loads and stores whose base pointer may be null or
// uninitialised under the given analysis results.
func NullDerefs(prog *ir.Program, res PointsTo) []Finding {
	var out []Finding
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			var base ir.ID
			var what string
			switch in.Op {
			case ir.Load:
				base, what = in.Uses[0], "load"
			case ir.Store:
				base, what = in.Uses[0], "store"
			default:
				return
			}
			if res.PointsTo(base).IsEmpty() {
				out = append(out, Finding{
					Kind:  NullDeref,
					Func:  f.Name,
					Label: in.Label,
					Pos:   in.Pos,
					Message: fmt.Sprintf("%s through %s, which points to nothing here",
						what, prog.NameOf(base)),
				})
			}
		})
	}
	return out
}

// DanglingReturns reports functions that may return a pointer into
// their own stack frame.
func DanglingReturns(prog *ir.Program, res PointsTo) []Finding {
	var out []Finding
	for _, f := range prog.Funcs {
		if f.Ret == ir.None {
			continue
		}
		res.PointsTo(f.Ret).ForEach(func(o uint32) {
			v := prog.Value(ir.ID(o))
			if v.ObjKind == ir.StackObj && v.DefFunc == f {
				out = append(out, Finding{
					Kind:  DanglingReturn,
					Func:  f.Name,
					Label: f.ExitInstr.Label,
					Pos:   f.ExitInstr.Pos,
					Message: fmt.Sprintf("returns a pointer to its own local %s",
						v.Name),
				})
			}
		})
	}
	return out
}

// ObjectSummaries abstracts per-object "may ever hold" queries, provided
// by the flow-sensitive solvers and by Andersen's PointsTo directly.
type ObjectSummaries interface {
	ObjectSummary(o ir.ID) *bitset.Sparse
}

// FlowFacts is what the deallocation checkers need: top-level points-to
// sets, per-object summaries, and the flow-sensitive contents of an
// object at a program point. ContentsBefore(ℓ, o) is what o may hold
// immediately before instruction ℓ executes — SFS answers it with
// IN[ℓ](o), VSFS with the points-to set of o's consume version at ℓ,
// and Andersen's over-approximates it with the object summary. It is
// meaningful whenever the memory-SSA pass placed a μ or χ for o at ℓ,
// which holds for every o in the points-to set of ℓ's base pointer;
// callers must not rely on it elsewhere.
type FlowFacts interface {
	PointsTo
	ObjectSummaries
	ContentsBefore(label uint32, o ir.ID) *bitset.Sparse
}

// StackEscapes reports stores that publish a local's address into
// storage that outlives the frame: a global or heap object whose summary
// contains a stack object of another frame's future dead local.
func StackEscapes(prog *ir.Program, sums ObjectSummaries) []Finding {
	var out []Finding
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		holder := prog.Value(id)
		if holder.Kind != ir.Object {
			continue
		}
		if holder.ObjKind != ir.GlobalObj && holder.ObjKind != ir.HeapObj {
			continue
		}
		sums.ObjectSummary(id).ForEach(func(o uint32) {
			pointee := prog.Value(ir.ID(o))
			if pointee.ObjKind != ir.StackObj || pointee.DefFunc == nil {
				return
			}
			out = append(out, Finding{
				Kind:  StackEscape,
				Func:  pointee.DefFunc.Name,
				Label: pointee.DefFunc.ExitInstr.Label,
				Pos:   pointee.DefFunc.ExitInstr.Pos,
				Message: fmt.Sprintf("address of local %s escapes into %s %s",
					pointee.Name, holder.ObjKind, holder.Name),
			})
		})
	}
	return out
}
