package checker

import (
	"strings"
	"testing"

	"vsfs/internal/bitset"
	"vsfs/internal/core"
	"vsfs/internal/ir"
)

// coreFacts adapts the VSFS result to FlowFacts: the contents of o
// entering ℓ are the points-to set of o's consume version at ℓ.
type coreFacts struct{ *core.Result }

func (c coreFacts) ContentsBefore(label uint32, o ir.ID) *bitset.Sparse {
	return c.ConsumedSet(label, o)
}

func solveFacts(t *testing.T, src string) (*ir.Program, coreFacts) {
	t.Helper()
	prog, res := solve(t, src)
	return prog, coreFacts{res}
}

func TestUseAfterFree(t *testing.T) {
	prog, facts := solveFacts(t, `
int main() {
  int *p;
  p = malloc();
  *p = 1;
  free(p);
  *p = 2;
  return 0;
}
`)
	findings := UseAfterFrees(prog, facts)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the post-free store", findings)
	}
	f := findings[0]
	if f.Kind != UseAfterFree || f.Func != "main" || !strings.Contains(f.Message, "freed") {
		t.Errorf("finding = %v", f)
	}
	if f.Pos.Line != 7 {
		t.Errorf("finding at %v, want line 7 (*p = 2)", f.Pos)
	}
	if !strings.Contains(f.String(), "7:") {
		t.Errorf("String() = %q, want source position", f.String())
	}
}

func TestUseAfterFreeCleanAfterRealloc(t *testing.T) {
	prog, facts := solveFacts(t, `
int main() {
  int *p;
  p = malloc();
  free(p);
  p = malloc();
  *p = 2;
  return 0;
}
`)
	// Each malloc is a distinct allocation site; the second deref only
	// touches the fresh one.
	for _, f := range UseAfterFrees(prog, facts) {
		if f.Pos.Line == 7 {
			t.Errorf("fresh allocation reported as UAF: %v", f)
		}
	}
}

func TestUseAfterFreeDanglingValue(t *testing.T) {
	prog, facts := solveFacts(t, `
int main() {
  int x;
  int **q;
  q = malloc();
  *q = &x;
  free(q);
  int *p;
  p = *q;
  *p = 1;
  return 0;
}
`)
	findings := UseAfterFrees(prog, facts)
	var loadFromFreed, derefDangling bool
	for _, f := range findings {
		if f.Pos.Line == 9 && strings.Contains(f.Message, "after it was freed") {
			loadFromFreed = true
		}
		if f.Pos.Line == 10 && strings.Contains(f.Message, "loaded from freed memory") {
			derefDangling = true
		}
	}
	if !loadFromFreed || !derefDangling {
		t.Errorf("findings = %v, want load-from-freed at line 9 and dangling-value deref at line 10", findings)
	}
}

func TestDoubleFree(t *testing.T) {
	prog, facts := solveFacts(t, `
int main() {
  int *p;
  p = malloc();
  free(p);
  free(p);
  return 0;
}
`)
	findings := DoubleFrees(prog, facts)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the second free", findings)
	}
	f := findings[0]
	if f.Kind != DoubleFree || f.Pos.Line != 6 {
		t.Errorf("finding = %v, want double-free at line 6", f)
	}
}

func TestDoubleFreeBranchMerge(t *testing.T) {
	prog, facts := solveFacts(t, `
int main(int c) {
  int *p;
  p = malloc();
  if (c) {
    free(p);
  }
  free(p);
  return 0;
}
`)
	findings := DoubleFrees(prog, facts)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want the merged second free only", findings)
	}
	if findings[0].Pos.Line != 8 {
		t.Errorf("finding = %v, want line 8", findings[0])
	}
}

func TestFreeCleanProgram(t *testing.T) {
	prog, facts := solveFacts(t, `
int main() {
  int *p;
  p = malloc();
  *p = 1;
  free(p);
  return 0;
}
`)
	if f := UseAfterFrees(prog, facts); len(f) != 0 {
		t.Errorf("use-after-frees = %v", f)
	}
	if f := DoubleFrees(prog, facts); len(f) != 0 {
		t.Errorf("double-frees = %v", f)
	}
}

func TestFreeCheckersSkipFreeLessPrograms(t *testing.T) {
	prog, facts := solveFacts(t, `int main() { int *p; p = malloc(); return 0; }`)
	if f := UseAfterFrees(prog, facts); f != nil {
		t.Errorf("use-after-frees = %v, want nil fast path", f)
	}
	if f := DoubleFrees(prog, facts); f != nil {
		t.Errorf("double-frees = %v, want nil fast path", f)
	}
}

func TestMemoryLeaks(t *testing.T) {
	prog, facts := solveFacts(t, `
int *keep;

int *make() {
  int *p;
  p = malloc();
  return p;
}
int lose() {
  int *q;
  q = malloc();
  return 0;
}
int freeIt(int *x) {
  free(x);
  return 0;
}
int tidy() {
  int *r;
  r = malloc();
  freeIt(r);
  return 0;
}
int main() {
  keep = make();
  lose();
  tidy();
  return 0;
}
`)
	findings := MemoryLeaks(prog, facts)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the allocation in lose", findings)
	}
	f := findings[0]
	if f.Kind != MemoryLeak || f.Func != "lose" || f.Pos.Line != 11 {
		t.Errorf("finding = %v, want memory-leak in lose at line 11", f)
	}
}

func TestMemoryLeaksMainLocalsAreRoots(t *testing.T) {
	prog, facts := solveFacts(t, `
int main() {
  int *p;
  p = malloc();
  *p = 1;
  return 0;
}
`)
	// p is a live top-level pointer of main at exit: not a leak.
	if f := MemoryLeaks(prog, facts); len(f) != 0 {
		t.Errorf("findings = %v, want none", f)
	}
}
