package checker

import (
	"fmt"

	"vsfs/internal/bitset"
	"vsfs/internal/ir"
)

// LeakSource identifies the objects considered sensitive: every object
// allocated inside the named function (heap or stack).
type LeakSource struct {
	Func string
}

// LeakSink identifies where sensitive objects must not flow: pointer
// arguments of calls to the named function.
type LeakSink struct {
	Func string
}

// Leaks reports calls to the sink function whose arguments may reach a
// sensitive object, directly or through any chain of heap/field loads
// (the points-to closure). This is the classic alias-based
// taint/leak client built on flow-sensitive facts: a secret wrapped in
// a struct and passed through the heap is still found, while pointers
// that provably never alias the secret are not.
func Leaks(prog *ir.Program, res PointsTo, sums ObjectSummaries, source LeakSource, sink LeakSink) []Finding {
	srcFn := prog.FuncByName(source.Func)
	sinkFn := prog.FuncByName(sink.Func)
	if srcFn == nil || sinkFn == nil {
		return nil
	}

	// Sensitive objects: allocation sites inside the source function.
	sensitive := bitset.New()
	srcFn.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.Alloc {
			sensitive.Set(uint32(in.Obj))
		}
	})
	if sensitive.IsEmpty() {
		return nil
	}

	var out []Finding
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call {
				return
			}
			if in.Callee != sinkFn && !callsIndirectly(prog, res, in, sinkFn) {
				return
			}
			for i, arg := range in.CallArgs() {
				if reaches(res.PointsTo(arg), sensitive, sums) {
					out = append(out, Finding{
						Kind:  Leak,
						Func:  f.Name,
						Label: in.Label,
						Message: fmt.Sprintf("argument %d of %s may reach an object allocated in %s",
							i, sink.Func, source.Func),
					})
				}
			}
		})
	}
	return out
}

// Leak marks a sensitive-object flow into a sink.
const Leak Kind = "leak"

// callsIndirectly reports whether an indirect call may target fn.
func callsIndirectly(prog *ir.Program, res PointsTo, call *ir.Instr, fn *ir.Function) bool {
	if !call.IsIndirectCall() {
		return false
	}
	found := false
	res.PointsTo(call.CalleePtr()).ForEach(func(o uint32) {
		if v := prog.Value(ir.ID(o)); v.ObjKind == ir.FuncObj && v.Func == fn {
			found = true
		}
	})
	return found
}

// reaches reports whether the points-to closure of start intersects the
// target set: start's objects, everything they may hold, and so on.
func reaches(start *bitset.Sparse, targets *bitset.Sparse, sums ObjectSummaries) bool {
	if start.Intersects(targets) {
		return true
	}
	seen := start.Clone()
	work := start.Slice()
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		held := sums.ObjectSummary(ir.ID(o))
		if held.Intersects(targets) {
			return true
		}
		held.ForEach(func(h uint32) {
			if seen.Set(h) {
				work = append(work, h)
			}
		})
	}
	return false
}
