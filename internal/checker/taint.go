package checker

import (
	"fmt"

	"vsfs/internal/bitset"
	"vsfs/internal/ir"
)

// LeakSource identifies the objects considered sensitive: every object
// allocated inside the named function (heap or stack).
type LeakSource struct {
	Func string
}

// LeakSink identifies where sensitive objects must not flow: pointer
// arguments of calls to the named function.
type LeakSink struct {
	Func string
}

// LeakSanitizer identifies calls that clear sensitivity: every object
// reachable from an argument of a call to the named function (through
// the points-to closure) is no longer considered sensitive.
type LeakSanitizer struct {
	Func string
}

// Leaks reports calls to the sink function whose arguments may reach a
// sensitive object, directly or through any chain of heap/field loads
// (the points-to closure). This is the classic alias-based
// taint/leak client built on flow-sensitive facts: a secret wrapped in
// a struct and passed through the heap is still found, while pointers
// that provably never alias the secret are not.
//
// Optional sanitizers harden the client: any object reachable from an
// argument of a call to a sanitizer function is declassified — removed
// from the sensitive set everywhere. This is a may-sanitize
// interpretation (one possible sanitizing call clears the object for
// the whole program), which is the usual choice for suppressing noise
// but is deliberately NOT monotone in analysis precision: a less
// precise analysis may sanitize more and so report fewer leaks. The
// solver-comparison oracle therefore excludes sanitized taint from its
// subset invariants; see internal/oracle.
func Leaks(prog *ir.Program, res PointsTo, sums ObjectSummaries, source LeakSource, sink LeakSink, sanitizers ...LeakSanitizer) []Finding {
	srcFn := prog.FuncByName(source.Func)
	sinkFn := prog.FuncByName(sink.Func)
	if srcFn == nil || sinkFn == nil {
		return nil
	}

	// Sensitive objects: allocation sites inside the source function.
	sensitive := bitset.New()
	srcFn.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.Alloc {
			sensitive.Set(uint32(in.Obj))
		}
	})
	for _, san := range sanitizers {
		sensitive.DifferenceWith(sanitizedObjects(prog, res, sums, san))
	}
	if sensitive.IsEmpty() {
		return nil
	}

	var out []Finding
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call {
				return
			}
			if in.Callee != sinkFn && !callsIndirectly(prog, res, in, sinkFn) {
				return
			}
			for i, arg := range in.CallArgs() {
				if reaches(res.PointsTo(arg), sensitive, sums) {
					out = append(out, Finding{
						Kind:  Leak,
						Func:  f.Name,
						Label: in.Label,
						Pos:   in.Pos,
						Message: fmt.Sprintf("argument %d of %s may reach an object allocated in %s",
							i, sink.Func, source.Func),
					})
				}
			}
		})
	}
	return out
}

// Leak marks a sensitive-object flow into a sink.
const Leak Kind = "leak"

// sanitizedObjects collects every object in the points-to closure of an
// argument of any call (direct or indirect) to the sanitizer function.
func sanitizedObjects(prog *ir.Program, res PointsTo, sums ObjectSummaries, san LeakSanitizer) *bitset.Sparse {
	out := bitset.New()
	fn := prog.FuncByName(san.Func)
	if fn == nil {
		return out
	}
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call {
				return
			}
			if in.Callee != fn && !callsIndirectly(prog, res, in, fn) {
				return
			}
			for _, arg := range in.CallArgs() {
				closure(res.PointsTo(arg), sums, out)
			}
		})
	}
	return out
}

// closure adds start's objects and everything transitively held by them
// into dst.
func closure(start *bitset.Sparse, sums ObjectSummaries, dst *bitset.Sparse) {
	var work []uint32
	start.ForEach(func(o uint32) {
		if dst.Set(o) {
			work = append(work, o)
		}
	})
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		sums.ObjectSummary(ir.ID(o)).ForEach(func(h uint32) {
			if dst.Set(h) {
				work = append(work, h)
			}
		})
	}
}

// callsIndirectly reports whether an indirect call may target fn.
func callsIndirectly(prog *ir.Program, res PointsTo, call *ir.Instr, fn *ir.Function) bool {
	if !call.IsIndirectCall() {
		return false
	}
	found := false
	res.PointsTo(call.CalleePtr()).ForEach(func(o uint32) {
		if v := prog.Value(ir.ID(o)); v.ObjKind == ir.FuncObj && v.Func == fn {
			found = true
		}
	})
	return found
}

// reaches reports whether the points-to closure of start intersects the
// target set: start's objects, everything they may hold, and so on.
func reaches(start *bitset.Sparse, targets *bitset.Sparse, sums ObjectSummaries) bool {
	if start.Intersects(targets) {
		return true
	}
	seen := start.Clone()
	work := start.Slice()
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		held := sums.ObjectSummary(ir.ID(o))
		if held.Intersects(targets) {
			return true
		}
		held.ForEach(func(h uint32) {
			if seen.Set(h) {
				work = append(work, h)
			}
		})
	}
	return false
}
