package checker

import (
	"strings"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/lang"
	"vsfs/internal/memssa"
	"vsfs/internal/svfg"
)

func solve(t *testing.T, src string) (*ir.Program, *core.Result) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	return prog, core.Solve(g)
}

func kinds(fs []Finding) map[Kind]int {
	out := map[Kind]int{}
	for _, f := range fs {
		out[f.Kind]++
	}
	return out
}

func TestNullDerefFlowSensitive(t *testing.T) {
	prog, fs := solve(t, `
int main() {
  int a;
  int *pa;
  pa = &a;
  int **ok;
  ok = &pa;
  *ok = &a;

  int **bug;
  bug = &pa;
  bug = null;
  *bug = &a;

  return 0;
}
`)
	findings := NullDerefs(prog, fs)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the null store", findings)
	}
	f := findings[0]
	if f.Kind != NullDeref || f.Func != "main" || !strings.Contains(f.Message, "store") {
		t.Errorf("finding = %v", f)
	}
	if !strings.Contains(f.String(), "null-deref") {
		t.Errorf("String() = %q", f.String())
	}
}

func TestDanglingReturn(t *testing.T) {
	prog, fs := solve(t, `
int *bad() {
  int local;
  return &local;
}
int *good(int *x) {
  return x;
}
int main() {
  int a;
  int *p;
  p = bad();
  int *q;
  q = good(&a);
  return 0;
}
`)
	findings := DanglingReturns(prog, fs)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1", findings)
	}
	if findings[0].Func != "bad" || !strings.Contains(findings[0].Message, "local") {
		t.Errorf("finding = %v", findings[0])
	}
}

func TestStackEscape(t *testing.T) {
	prog, fs := solve(t, `
int *g;

int leak() {
  int local;
  g = &local;
  return 0;
}
int fine() {
  int local2;
  int *p;
  p = &local2;
  return 0;
}
int main() {
  leak();
  fine();
  return 0;
}
`)
	findings := StackEscapes(prog, fs)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1 (the global leak)", findings)
	}
	f := findings[0]
	if f.Kind != StackEscape || f.Func != "leak" || !strings.Contains(f.Message, "g.obj") {
		t.Errorf("finding = %v", f)
	}
}

func TestHeapEscape(t *testing.T) {
	prog, fs := solve(t, `
struct Box { int *v; };
int use(struct Box *b) {
  int local;
  b->v = &local;
  return 0;
}
int main() {
  struct Box *b;
  b = malloc();
  use(b);
  return 0;
}
`)
	findings := StackEscapes(prog, fs)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1 heap escape", findings)
	}
	if findings[0].Func != "use" {
		t.Errorf("finding = %v", findings[0])
	}
}

func TestCleanProgramNoFindings(t *testing.T) {
	prog, fs := solve(t, `
int *g;
int x;

int main() {
  g = &x;
  int *p;
  p = g;
  int *v;
  v = p;
  return 0;
}
`)
	if f := NullDerefs(prog, fs); len(f) != 0 {
		t.Errorf("null derefs = %v", f)
	}
	if f := DanglingReturns(prog, fs); len(f) != 0 {
		t.Errorf("dangling = %v", f)
	}
	if f := StackEscapes(prog, fs); len(f) != 0 {
		t.Errorf("escapes = %v", f)
	}
}

// The checkers accept any solver: Andersen's results work too, with
// fewer (flow-insensitive) findings.
func TestWorksOnAndersen(t *testing.T) {
	prog, err := lang.Compile(`
int main() {
  int a;
  int *pa;
  pa = &a;
  int **bug;
  bug = &pa;
  bug = null;
  *bug = &a;
  return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	aux := andersen.Analyze(prog)
	findings := NullDerefs(prog, aux)
	// Flow-insensitively bug still points to pa: the bug is invisible.
	for _, f := range findings {
		if strings.Contains(f.Message, "bug") {
			t.Errorf("flow-insensitive analysis should miss the nulled pointer: %v", f)
		}
	}
}
