package checker

import (
	"fmt"

	"vsfs/internal/bitset"
	"vsfs/internal/ir"
)

// UseAfterFrees reports memory accesses that may touch freed storage.
// Two shapes are recognised, both per (instruction, object) so that the
// solver-comparison invariants in internal/oracle hold elementwise:
//
//   - a load or store through r where some pointee o of r has the FREED
//     token in its contents entering the instruction — the object was
//     freed on a path reaching the access;
//   - an instruction whose base pointer r may itself hold the FREED
//     token — r's value was loaded out of freed memory, so the access
//     dereferences a dangling value.
//
// Free-stores themselves are skipped for the first shape (freeing a
// freed object is DoubleFrees' report), but not the second: passing a
// value read from freed memory to free is still a use of that value.
// Programs with no free are skipped entirely.
func UseAfterFrees(prog *ir.Program, facts FlowFacts) []Finding {
	freed := prog.FreedObj()
	if freed == ir.None {
		return nil
	}
	var out []Finding
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			var what string
			switch in.Op {
			case ir.Load:
				what = "load"
			case ir.Store:
				what = "store"
			default:
				return
			}
			base := in.Uses[0]
			pts := facts.PointsTo(base)
			if pts.Has(uint32(freed)) {
				out = append(out, Finding{
					Kind:  UseAfterFree,
					Func:  f.Name,
					Label: in.Label,
					Pos:   in.Pos,
					Message: fmt.Sprintf("%s through %s, whose value was loaded from freed memory",
						what, prog.NameOf(base)),
				})
			}
			if prog.IsFreeStore(in) {
				return
			}
			pts.ForEach(func(o uint32) {
				if ir.ID(o) == freed {
					return
				}
				if facts.ContentsBefore(in.Label, ir.ID(o)).Has(uint32(freed)) {
					out = append(out, Finding{
						Kind:  UseAfterFree,
						Func:  f.Name,
						Label: in.Label,
						Pos:   in.Pos,
						Message: fmt.Sprintf("%s through %s may access %s after it was freed",
							what, prog.NameOf(base), prog.NameOf(ir.ID(o))),
					})
				}
			})
		})
	}
	return out
}

// DoubleFrees reports free calls whose operand may point to an object
// that was already freed when the free executes: the FREED token is in
// the pointee's contents entering the free-store. Reported per
// (instruction, object).
func DoubleFrees(prog *ir.Program, facts FlowFacts) []Finding {
	freed := prog.FreedObj()
	if freed == ir.None {
		return nil
	}
	var out []Finding
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if !prog.IsFreeStore(in) {
				return
			}
			base := in.Uses[0]
			facts.PointsTo(base).ForEach(func(o uint32) {
				if ir.ID(o) == freed {
					return
				}
				if facts.ContentsBefore(in.Label, ir.ID(o)).Has(uint32(freed)) {
					out = append(out, Finding{
						Kind:  DoubleFree,
						Func:  f.Name,
						Label: in.Label,
						Pos:   in.Pos,
						Message: fmt.Sprintf("free of %s, which %s may already have freed",
							prog.NameOf(base), prog.NameOf(ir.ID(o))),
					})
				}
			})
		})
	}
	return out
}

// MemoryLeaks reports heap allocations that are neither freed anywhere
// nor reachable from a root when the program exits. Roots are the
// contents of every global object plus the final points-to sets of
// main's top-level pointers (main's frame is the only one still live at
// exit); reachability closes the roots under object summaries, so
// anything a root may ever hold — directly or through a chain of heap
// links — counts as reachable. Both sides over-approximate, which keeps
// the checker conservative: a reported allocation has no may-alias path
// from any root and no free on any path.
//
// One finding is emitted per leaked heap allocation site, anchored at
// its Alloc instruction.
func MemoryLeaks(prog *ir.Program, facts FlowFacts) []Finding {
	freed := prog.FreedObj()

	// Collect the roots.
	reach := bitset.New()
	var work []uint32
	add := func(s *bitset.Sparse) {
		s.ForEach(func(o uint32) {
			if reach.Set(o) {
				work = append(work, o)
			}
		})
	}
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		v := prog.Value(id)
		if v.Kind == ir.Object && v.ObjKind == ir.GlobalObj {
			add(facts.ObjectSummary(id))
		}
	}
	if m := prog.FuncByName("main"); m != nil {
		m.ForEachInstr(func(in *ir.Instr) {
			if in.Def != ir.None {
				add(facts.PointsTo(in.Def))
			}
		})
		for _, p := range m.Params {
			add(facts.PointsTo(p))
		}
	}

	// Close under "may hold".
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		add(facts.ObjectSummary(ir.ID(o)))
	}

	// An allocation is reachable (or freed) if its base object or any of
	// its field objects is: project everything onto allocation bases.
	reachBase := bitset.New()
	reach.ForEach(func(o uint32) {
		reachBase.Set(uint32(prog.Value(ir.ID(o)).Base))
	})
	freedBase := bitset.New()
	if freed != ir.None {
		for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
			v := prog.Value(id)
			if v.Kind == ir.Object && facts.ObjectSummary(id).Has(uint32(freed)) {
				freedBase.Set(uint32(v.Base))
			}
		}
	}

	var out []Finding
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Alloc {
				return
			}
			v := prog.Value(in.Obj)
			if v.ObjKind != ir.HeapObj || v.IsField() {
				return
			}
			if reachBase.Has(uint32(in.Obj)) || freedBase.Has(uint32(in.Obj)) {
				return
			}
			out = append(out, Finding{
				Kind:  MemoryLeak,
				Func:  f.Name,
				Label: in.Label,
				Pos:   in.Pos,
				Message: fmt.Sprintf("heap allocation %s is never freed and unreachable at exit",
					prog.NameOf(in.Obj)),
			})
		})
	}
	return out
}
