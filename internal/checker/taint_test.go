package checker

import (
	"strings"
	"testing"
)

const leakProgram = `
struct Wrapper { int *inner; };

int *read_secret() {
  int *s;
  s = malloc();
  return s;
}

void send(int *data) {
  return;
}

void sendWrapped(struct Wrapper *w) {
  return;
}

int main() {
  int *secret;
  secret = read_secret();

  int harmless;
  int *ok;
  ok = &harmless;
  send(ok);            // fine: never aliases the secret

  send(secret);        // LEAK: direct

  struct Wrapper *w;
  w = malloc();
  w->inner = secret;
  sendWrapped(w);      // LEAK: reachable through the heap

  return 0;
}
`

func TestLeaksDirectAndWrapped(t *testing.T) {
	prog, fs := solve(t, leakProgram)
	direct := Leaks(prog, fs, fs, LeakSource{Func: "read_secret"}, LeakSink{Func: "send"})
	if len(direct) != 1 {
		t.Fatalf("direct leaks = %v, want 1", direct)
	}
	if direct[0].Kind != Leak || !strings.Contains(direct[0].Message, "read_secret") {
		t.Errorf("finding = %v", direct[0])
	}
	wrapped := Leaks(prog, fs, fs, LeakSource{Func: "read_secret"}, LeakSink{Func: "sendWrapped"})
	if len(wrapped) != 1 {
		t.Fatalf("wrapped leaks = %v, want 1 (heap closure)", wrapped)
	}
}

func TestLeaksThroughIndirectCall(t *testing.T) {
	prog, fs := solve(t, `
int *mk() {
  int *s;
  s = malloc();
  return s;
}
void out(int *d) {
  return;
}
int main() {
  void (*fp)(int*);
  fp = out;
  int *x;
  x = mk();
  fp(x);
  return 0;
}
`)
	findings := Leaks(prog, fs, fs, LeakSource{Func: "mk"}, LeakSink{Func: "out"})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want indirect-call leak", findings)
	}
}

func TestLeaksFlowSensitiveClearance(t *testing.T) {
	// The pointer is redirected to harmless storage before the send:
	// flow-sensitively there is no leak.
	prog, fs := solve(t, `
int *grab() {
  int *s;
  s = malloc();
  return s;
}
void emit(int *d) {
  return;
}
int main() {
  int clean;
  int *p;
  p = grab();
  p = &clean;
  emit(p);
  return 0;
}
`)
	findings := Leaks(prog, fs, fs, LeakSource{Func: "grab"}, LeakSink{Func: "emit"})
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want none (strong update cleared p)", findings)
	}
}

func TestLeaksMissingFunctions(t *testing.T) {
	prog, fs := solve(t, `int main() { return 0; }`)
	if f := Leaks(prog, fs, fs, LeakSource{Func: "nope"}, LeakSink{Func: "also"}); f != nil {
		t.Errorf("findings = %v", f)
	}
}

func TestLeaksSanitizer(t *testing.T) {
	prog, fs := solve(t, `
int *fetch() {
  int *s;
  s = malloc();
  return s;
}
void scrub(int *d) {
  return;
}
void ship(int *d) {
  return;
}
int main() {
  int *x;
  x = fetch();
  scrub(x);
  ship(x);
  return 0;
}
`)
	src, snk := LeakSource{Func: "fetch"}, LeakSink{Func: "ship"}
	if f := Leaks(prog, fs, fs, src, snk); len(f) != 1 {
		t.Fatalf("without sanitizer: findings = %v, want 1", f)
	}
	if f := Leaks(prog, fs, fs, src, snk, LeakSanitizer{Func: "scrub"}); len(f) != 0 {
		t.Errorf("with sanitizer: findings = %v, want none (declassified)", f)
	}
	// A sanitizer that never runs on the secret declassifies nothing.
	if f := Leaks(prog, fs, fs, src, snk, LeakSanitizer{Func: "nosuch"}); len(f) != 1 {
		t.Errorf("with missing sanitizer: findings = %v, want 1", f)
	}
}
