// Package andersen implements the auxiliary flow-insensitive
// inclusion-based points-to analysis (Andersen's analysis) that stages
// the flow-sensitive phases: its results place the χ/μ annotations,
// drive memory-SSA construction and SVFG indirect edges, and bound the
// object sets used by the prelabelling.
//
// The solver is a standard worklist algorithm with difference
// propagation and periodic offline SCC collapsing of the copy-edge
// graph (cycle elimination), field-sensitive via the ir.Program's field
// objects, and with on-the-fly call-graph resolution for indirect calls.
package andersen

import (
	"context"

	"vsfs/internal/bitset"
	"vsfs/internal/graph"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
)

// Stats reports solver effort, used by the benchmark harness.
type Stats struct {
	Pops         int // worklist pops with a non-empty delta
	Propagations int // copy-edge propagations that changed a set
	SCCCollapses int // nodes merged by cycle elimination
	FinalNodes   int // value-ID space size at fixpoint
	WorklistHW   int // worklist high-water mark
}

// Result is the outcome of the auxiliary analysis. Points-to sets are
// frozen; callers must not mutate them.
type Result struct {
	prog *ir.Program

	parent []uint32
	pts    []*bitset.Sparse

	// callTargets maps each Call instruction to its resolved callees:
	// the static callee for direct calls, the discovered targets for
	// indirect calls. Keyed by instruction identity, not label, because
	// the memory-SSA pass renumbers labels afterwards.
	callTargets map[*ir.Instr][]*ir.Function

	// single backs Singletons (see singleton.go).
	single singletons

	Stats Stats
}

// Prog returns the analysed program.
func (r *Result) Prog() *ir.Program { return r.prog }

// PointsTo returns pts^aux(v): the points-to set of a top-level pointer
// or an address-taken object. The returned set is shared and must not
// be mutated.
func (r *Result) PointsTo(v ir.ID) *bitset.Sparse {
	n := r.find(uint32(v))
	if int(n) < len(r.pts) && r.pts[n] != nil {
		return r.pts[n]
	}
	return emptySet
}

var emptySet = bitset.New()

// CalleesOf returns the functions a Call instruction may invoke.
func (r *Result) CalleesOf(call *ir.Instr) []*ir.Function {
	return r.callTargets[call]
}

func (r *Result) find(x uint32) uint32 {
	//vsfs:lint-ignore guardtick union-find path halving is bounded by tree depth and does constant pointer chasing per step
	for r.parent[x] != x {
		r.parent[x] = r.parent[r.parent[x]]
		x = r.parent[x]
	}
	return x
}

// Analyze runs the auxiliary analysis to fixpoint.
func Analyze(prog *ir.Program) *Result {
	r, _ := AnalyzeContext(context.Background(), prog)
	return r
}

// AnalyzeContext runs the auxiliary analysis to fixpoint, aborting with
// ctx.Err() if the context is cancelled. The worklist loop polls the
// context every cancelCheckInterval pops, so cancellation latency is
// bounded by a small constant amount of solving work.
func AnalyzeContext(ctx context.Context, prog *ir.Program) (*Result, error) {
	s := newSolver(prog)
	s.ctx = ctx
	s.generate()
	if err := s.solve(); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

// cancelCheckInterval is how many worklist iterations pass between
// context polls in the solver loops of this package.
const cancelCheckInterval = 1024

// solver is the mutable analysis state.
type solver struct {
	prog *ir.Program
	ctx  context.Context

	parent    []uint32
	pts       []*bitset.Sparse
	processed []*bitset.Sparse
	succs     []*bitset.Sparse // copy edges, as successor bitsets

	// Complex constraints, indexed by the (representative of the)
	// pointer whose points-to set drives them.
	loadsAt  [][]ir.ID     // q → defs p of "p = *q"
	storesAt [][]ir.ID     // p → sources q of "*p = q"
	fieldsAt [][]fieldUse  // q → (def, off) of "p = &q->f"
	icallsAt [][]*ir.Instr // fp → indirect calls through fp

	// resolved tracks (call label, callee) pairs already wired.
	resolved map[callTarget]bool

	callTargets map[*ir.Instr][]*ir.Function

	work worklist

	stats Stats
	pops  int
}

type fieldUse struct {
	def ir.ID
	off int
}

type callTarget struct {
	call *ir.Instr
	fn   *ir.Function
}

// worklist is a FIFO queue with a membership bitset to avoid duplicates.
type worklist struct {
	queue []uint32
	in    bitset.Sparse
	hw    int // high-water mark of queued nodes
}

func (w *worklist) push(n uint32) {
	if w.in.Set(n) {
		w.queue = append(w.queue, n)
		if len(w.queue) > w.hw {
			w.hw = len(w.queue)
		}
	}
}

func (w *worklist) pop() (uint32, bool) {
	if len(w.queue) == 0 {
		return 0, false
	}
	n := w.queue[0]
	w.queue = w.queue[1:]
	w.in.Clear(n)
	return n, true
}

func (w *worklist) empty() bool { return len(w.queue) == 0 }

func newSolver(prog *ir.Program) *solver {
	return &solver{
		prog:        prog,
		resolved:    make(map[callTarget]bool),
		callTargets: make(map[*ir.Instr][]*ir.Function),
	}
}

// ensure grows the per-node tables to cover id (field objects are created
// during solving, so the ID space grows).
func (s *solver) ensure(id uint32) {
	//vsfs:lint-ignore guardtick growth is bounded by the node-ID space; the pop that created the id was charged at the run checkpoint
	for uint32(len(s.parent)) <= id {
		s.parent = append(s.parent, uint32(len(s.parent)))
		s.pts = append(s.pts, nil)
		s.processed = append(s.processed, nil)
		s.succs = append(s.succs, nil)
		s.loadsAt = append(s.loadsAt, nil)
		s.storesAt = append(s.storesAt, nil)
		s.fieldsAt = append(s.fieldsAt, nil)
		s.icallsAt = append(s.icallsAt, nil)
	}
}

func (s *solver) find(x uint32) uint32 {
	//vsfs:lint-ignore guardtick union-find path halving is bounded by tree depth and does constant pointer chasing per step
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

func (s *solver) ptsOf(n uint32) *bitset.Sparse {
	if s.pts[n] == nil {
		s.pts[n] = bitset.New()
	}
	return s.pts[n]
}

// addPts inserts obj into pts(n) and schedules n on change.
func (s *solver) addPts(n uint32, obj ir.ID) {
	n = s.find(n)
	if s.ptsOf(n).Set(uint32(obj)) {
		s.work.push(n)
	}
}

// addCopy inserts the copy edge src→dst (pts(dst) ⊇ pts(src)), eagerly
// propagating the current set.
func (s *solver) addCopy(dst, src ir.ID) {
	d, c := s.find(uint32(dst)), s.find(uint32(src))
	if d == c {
		return
	}
	if s.succs[c] == nil {
		s.succs[c] = bitset.New()
	}
	if !s.succs[c].Set(d) {
		return
	}
	if s.pts[c] != nil && !s.pts[c].IsEmpty() {
		if s.ptsOf(d).UnionWith(s.pts[c]) {
			s.stats.Propagations++
			s.work.push(d)
		}
	}
}

// generate installs the base and complex constraints for every
// instruction.
func (s *solver) generate() {
	s.ensure(uint32(s.prog.NumValues()))
	for _, f := range s.prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			switch in.Op {
			case ir.Alloc:
				s.addPts(uint32(in.Def), in.Obj)
			case ir.Copy:
				s.addCopy(in.Def, in.Uses[0])
			case ir.Phi:
				for _, u := range in.Uses {
					s.addCopy(in.Def, u)
				}
			case ir.Load:
				q := s.find(uint32(in.Uses[0]))
				s.loadsAt[q] = append(s.loadsAt[q], in.Def)
				s.reprocess(q)
			case ir.Store:
				p := s.find(uint32(in.Uses[0]))
				s.storesAt[p] = append(s.storesAt[p], in.Uses[1])
				s.reprocess(p)
			case ir.Field:
				q := s.find(uint32(in.Uses[0]))
				s.fieldsAt[q] = append(s.fieldsAt[q], fieldUse{def: in.Def, off: in.Off})
				s.reprocess(q)
			case ir.Call:
				if in.Callee != nil {
					s.wireCall(in, in.Callee)
				} else {
					fp := s.find(uint32(in.CalleePtr()))
					s.icallsAt[fp] = append(s.icallsAt[fp], in)
					s.reprocess(fp)
				}
			}
		})
	}
}

// reprocess forces the complex constraints at n to see the whole current
// points-to set again (used when a new constraint arrives at a node whose
// set is already partially processed).
func (s *solver) reprocess(n uint32) {
	if s.processed[n] != nil && !s.processed[n].IsEmpty() {
		s.processed[n] = nil
	}
	if s.pts[n] != nil && !s.pts[n].IsEmpty() {
		s.work.push(n)
	}
}

// wireCall connects actuals to formals and the return value for one
// (call, callee) pair, once.
func (s *solver) wireCall(call *ir.Instr, callee *ir.Function) {
	key := callTarget{call: call, fn: callee}
	if s.resolved[key] {
		return
	}
	s.resolved[key] = true
	s.callTargets[call] = append(s.callTargets[call], callee)
	args := call.CallArgs()
	for i, arg := range args {
		if i >= len(callee.Params) {
			break // excess actuals are dropped, as in K&R varargs
		}
		s.addCopy(callee.Params[i], arg)
	}
	if call.Def != ir.None && callee.Ret != ir.None {
		s.addCopy(call.Def, callee.Ret)
	}
}

// solve runs the worklist to fixpoint with periodic cycle elimination.
// It returns the context's error if cancelled mid-solve.
func (s *solver) solve() error {
	const collapseInterval = 20000
	s.collapseCycles()
	for steps := 0; ; steps++ {
		if steps%cancelCheckInterval == 0 {
			if err := guard.Tick(s.ctx, "andersen", cancelCheckInterval); err != nil {
				return err
			}
		}
		n, ok := s.work.pop()
		if !ok {
			break
		}
		n = s.find(n)
		if s.pts[n] == nil {
			continue
		}
		delta := s.pts[n].Clone()
		if s.processed[n] != nil {
			delta.DifferenceWith(s.processed[n])
		}
		if delta.IsEmpty() {
			continue
		}
		if s.processed[n] == nil {
			s.processed[n] = bitset.New()
		}
		s.processed[n].UnionWith(delta)
		s.stats.Pops++

		s.applyComplex(n, delta)

		// Propagate the delta along copy edges.
		if s.succs[n] != nil {
			s.succs[n].ForEach(func(d32 uint32) {
				d := s.find(d32)
				if d == n {
					return
				}
				if s.ptsOf(d).UnionWith(delta) {
					s.stats.Propagations++
					s.work.push(d)
				}
			})
		}

		s.pops++
		if s.pops%collapseInterval == 0 {
			s.collapseCycles()
		}
	}
	return nil
}

// applyComplex handles loads, stores, field addresses and indirect calls
// whose base pointer gained the objects in delta.
func (s *solver) applyComplex(n uint32, delta *bitset.Sparse) {
	prog := s.prog
	for _, def := range s.loadsAt[n] {
		delta.ForEach(func(o uint32) {
			s.addCopy(def, ir.ID(o)) // pts(def) ⊇ pts(o)
		})
	}
	for _, src := range s.storesAt[n] {
		delta.ForEach(func(o uint32) {
			s.addCopy(ir.ID(o), src) // pts(o) ⊇ pts(src)
		})
	}
	for _, fu := range s.fieldsAt[n] {
		delta.ForEach(func(o uint32) {
			if prog.Value(ir.ID(o)).ObjKind == ir.FuncObj {
				return // no fields of functions
			}
			fo := prog.FieldObj(ir.ID(o), fu.off)
			s.ensure(uint32(prog.NumValues()) - 1)
			s.addPts(uint32(fu.def), fo)
		})
	}
	if calls := s.icallsAt[n]; len(calls) > 0 {
		delta.ForEach(func(o uint32) {
			v := prog.Value(ir.ID(o))
			if v.ObjKind != ir.FuncObj {
				return // calling through a non-function pointer: no-op
			}
			for _, call := range calls {
				s.wireCall(call, v.Func)
			}
		})
	}
}

// collapseCycles finds SCCs of the copy graph and merges each cycle into
// its representative.
func (s *solver) collapseCycles() {
	n := len(s.parent)
	g := graph.New(n)
	for v := 0; v < n; v++ {
		if s.succs[v] == nil || s.find(uint32(v)) != uint32(v) {
			continue
		}
		s.succs[v].ForEach(func(d uint32) {
			d = s.find(d)
			if d != uint32(v) {
				g.AddEdge(uint32(v), d)
			}
		})
	}
	comp, k := g.SCCs()
	repOf := make([]uint32, k)
	for i := range repOf {
		repOf[i] = ^uint32(0)
	}
	for v := 0; v < n; v++ {
		if s.find(uint32(v)) != uint32(v) {
			continue
		}
		c := comp[v]
		if repOf[c] == ^uint32(0) {
			repOf[c] = uint32(v)
			continue
		}
		s.merge(repOf[c], uint32(v))
	}
}

// merge unions node b into representative a.
func (s *solver) merge(a, b uint32) {
	if a == b {
		return
	}
	s.stats.SCCCollapses++
	s.parent[b] = a
	if s.pts[b] != nil {
		s.ptsOf(a).UnionWith(s.pts[b])
		s.pts[b] = nil
	}
	if s.succs[b] != nil {
		if s.succs[a] == nil {
			s.succs[a] = bitset.New()
		}
		s.succs[a].UnionWith(s.succs[b])
		s.succs[b] = nil
	}
	s.loadsAt[a] = append(s.loadsAt[a], s.loadsAt[b]...)
	s.loadsAt[b] = nil
	s.storesAt[a] = append(s.storesAt[a], s.storesAt[b]...)
	s.storesAt[b] = nil
	s.fieldsAt[a] = append(s.fieldsAt[a], s.fieldsAt[b]...)
	s.fieldsAt[b] = nil
	s.icallsAt[a] = append(s.icallsAt[a], s.icallsAt[b]...)
	s.icallsAt[b] = nil
	// Force the merged node to reprocess its whole set: the cheapest
	// sound option after unioning constraint lists.
	s.processed[a] = nil
	s.processed[b] = nil
	s.work.push(a)
}

func (s *solver) finish() *Result {
	s.stats.FinalNodes = len(s.parent)
	s.stats.WorklistHW = s.work.hw
	return &Result{
		prog:        s.prog,
		parent:      s.parent,
		pts:         s.pts,
		callTargets: s.callTargets,
		Stats:       s.stats,
	}
}
