package andersen

import (
	"fmt"
	"testing"

	"vsfs/internal/bitset"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/workload"
)

// pointsToNames returns the object names in pts(v) for readable asserts.
func pointsToNames(r *Result, prog *ir.Program, v ir.ID) map[string]bool {
	out := map[string]bool{}
	r.PointsTo(v).ForEach(func(o uint32) { out[prog.NameOf(ir.ID(o))] = true })
	return out
}

func lookupVar(t *testing.T, prog *ir.Program, name string) ir.ID {
	t.Helper()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.Value(id).Name == name && prog.IsPointer(id) {
			return id
		}
	}
	t.Fatalf("no pointer named %q", name)
	return ir.None
}

func analyzeSrc(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog, Analyze(prog)
}

func TestBasicAllocCopy(t *testing.T) {
	prog, res := analyzeSrc(t, `
func main() {
entry:
  p = alloc a 0
  q = copy p
  s = phi(p, q)
  ret
}
`)
	for _, v := range []string{"p", "q", "s"} {
		got := pointsToNames(res, prog, lookupVar(t, prog, v))
		if len(got) != 1 || !got["a"] {
			t.Errorf("pts(%s) = %v, want {a}", v, got)
		}
	}
}

func TestStoreLoad(t *testing.T) {
	prog, res := analyzeSrc(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  store p, x
  y = load p
  ret
}
`)
	got := pointsToNames(res, prog, lookupVar(t, prog, "y"))
	if len(got) != 1 || !got["b"] {
		t.Errorf("pts(y) = %v, want {b}", got)
	}
	// The object a itself points to b.
	var aObj ir.ID
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.Value(id).Name == "a" && prog.IsObject(id) {
			aObj = id
		}
	}
	gotA := pointsToNames(res, prog, aObj)
	if len(gotA) != 1 || !gotA["b"] {
		t.Errorf("pts(a) = %v, want {b}", gotA)
	}
}

func TestFieldSensitivity(t *testing.T) {
	prog, res := analyzeSrc(t, `
func main() {
entry:
  s = alloc agg 2
  x = alloc tgt 0
  f1 = field s, 1
  store f1, x
  f1b = field s, 1
  v1 = load f1b
  f0 = field s, 0
  v0 = load f0
  ret
}
`)
	got1 := pointsToNames(res, prog, lookupVar(t, prog, "v1"))
	if len(got1) != 1 || !got1["tgt"] {
		t.Errorf("pts(v1) = %v, want {tgt}", got1)
	}
	got0 := pointsToNames(res, prog, lookupVar(t, prog, "v0"))
	if len(got0) != 0 {
		t.Errorf("pts(v0) = %v, want {} (field-sensitive)", got0)
	}
	// field s, 0 is the base object itself.
	f0 := lookupVar(t, prog, "f0")
	gotF0 := pointsToNames(res, prog, f0)
	if len(gotF0) != 1 || !gotF0["agg"] {
		t.Errorf("pts(f0) = %v, want {agg}", gotF0)
	}
}

func TestDirectCall(t *testing.T) {
	prog, res := analyzeSrc(t, `
func id(x) {
entry:
  r = copy x
  ret r
}
func main() {
entry:
  p = alloc a 0
  q = call id(p)
  ret
}
`)
	got := pointsToNames(res, prog, lookupVar(t, prog, "q"))
	if len(got) != 1 || !got["a"] {
		t.Errorf("pts(q) = %v, want {a}", got)
	}
}

func TestIndirectCallResolution(t *testing.T) {
	prog, res := analyzeSrc(t, `
func id(x) {
entry:
  r = copy x
  ret r
}
func other(y) {
entry:
  ret y
}
func main() {
entry:
  p = alloc a 0
  fp = funcaddr id
  q = calli fp(p)
  ret
}
`)
	got := pointsToNames(res, prog, lookupVar(t, prog, "q"))
	if len(got) != 1 || !got["a"] {
		t.Errorf("pts(q) = %v, want {a}", got)
	}
	// Call graph: the calli resolves to id only.
	var call *ir.Instr
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.IsIndirectCall() {
			call = in
		}
	})
	callees := res.CalleesOf(call)
	if len(callees) != 1 || callees[0].Name != "id" {
		t.Errorf("CalleesOf = %v, want [id]", callees)
	}
}

func TestIndirectCallTwoTargets(t *testing.T) {
	prog, res := analyzeSrc(t, `
func mk1() {
entry:
  a1 = alloc o1 0
  ret a1
}
func mk2() {
entry:
  a2 = alloc o2 0
  ret a2
}
func main() {
entry:
  fp1 = funcaddr mk1
  fp2 = funcaddr mk2
  fp = phi(fp1, fp2)
  q = calli fp()
  ret
}
`)
	got := pointsToNames(res, prog, lookupVar(t, prog, "q"))
	if len(got) != 2 || !got["o1"] || !got["o2"] {
		t.Errorf("pts(q) = %v, want {o1, o2}", got)
	}
}

func TestCallThroughNonFunctionIsIgnored(t *testing.T) {
	prog, res := analyzeSrc(t, `
func main() {
entry:
  p = alloc a 0
  q = calli p(p)
  ret
}
`)
	got := pointsToNames(res, prog, lookupVar(t, prog, "q"))
	if len(got) != 0 {
		t.Errorf("pts(q) = %v, want {}", got)
	}
}

func TestRecursionThroughMemory(t *testing.T) {
	// A store/load cycle: *p = p effectively, through two pointers.
	prog, res := analyzeSrc(t, `
func main() {
entry:
  p = alloc a 0
  q = copy p
  store p, q
  v = load q
  w = load v
  ret
}
`)
	for _, name := range []string{"v", "w"} {
		got := pointsToNames(res, prog, lookupVar(t, prog, name))
		if len(got) != 1 || !got["a"] {
			t.Errorf("pts(%s) = %v, want {a}", name, got)
		}
	}
}

func TestMutualRecursion(t *testing.T) {
	prog, res := analyzeSrc(t, `
func even(x) {
entry:
  r = call odd(x)
  ret r
}
func odd(y) {
entry:
  r2 = call even(y)
  br a, b
a:
  ret r2
b:
  ret y
}
func main() {
entry:
  p = alloc obj 0
  q = call even(p)
  ret
}
`)
	got := pointsToNames(res, prog, lookupVar(t, prog, "q"))
	if len(got) != 1 || !got["obj"] {
		t.Errorf("pts(q) = %v, want {obj}", got)
	}
	if res.Stats.SCCCollapses == 0 {
		t.Log("note: no SCCs collapsed (cycle may be under interval threshold)")
	}
}

func TestGlobalFlow(t *testing.T) {
	prog, res := analyzeSrc(t, `
global g 0
func setter() {
entry:
  x = alloc secret 0
  store g, x
  ret
}
func main() {
entry:
  call setter()
  v = load g
  ret
}
`)
	got := pointsToNames(res, prog, lookupVar(t, prog, "v"))
	if len(got) != 1 || !got["secret"] {
		t.Errorf("pts(v) = %v, want {secret}", got)
	}
}

func TestArgCountMismatch(t *testing.T) {
	// Passing more args than params must not crash or mis-wire.
	prog, res := analyzeSrc(t, `
func one(x) {
entry:
  ret x
}
func main() {
entry:
  p = alloc a 0
  q = alloc b 0
  r = call one(p, q)
  ret
}
`)
	got := pointsToNames(res, prog, lookupVar(t, prog, "r"))
	if len(got) != 1 || !got["a"] {
		t.Errorf("pts(r) = %v, want {a}", got)
	}
}

// naiveSolve is an obviously-correct reference: iterate all constraints
// to fixpoint with no difference propagation, no cycle elimination.
func naiveSolve(prog *ir.Program) map[ir.ID]*bitset.Sparse {
	pts := map[ir.ID]*bitset.Sparse{}
	get := func(v ir.ID) *bitset.Sparse {
		if pts[v] == nil {
			pts[v] = bitset.New()
		}
		return pts[v]
	}
	for changed := true; changed; {
		changed = false
		mark := func(c bool) {
			if c {
				changed = true
			}
		}
		for _, f := range prog.Funcs {
			f.ForEachInstr(func(in *ir.Instr) {
				switch in.Op {
				case ir.Alloc:
					mark(get(in.Def).Set(uint32(in.Obj)))
				case ir.Copy, ir.Phi:
					for _, u := range in.Uses {
						mark(get(in.Def).UnionWith(get(u)))
					}
				case ir.Field:
					get(in.Uses[0]).Clone().ForEach(func(o uint32) {
						if prog.Value(ir.ID(o)).ObjKind == ir.FuncObj {
							return
						}
						fo := prog.FieldObj(ir.ID(o), in.Off)
						mark(get(in.Def).Set(uint32(fo)))
					})
				case ir.Load:
					get(in.Uses[0]).Clone().ForEach(func(o uint32) {
						mark(get(in.Def).UnionWith(get(ir.ID(o))))
					})
				case ir.Store:
					get(in.Uses[0]).Clone().ForEach(func(o uint32) {
						mark(get(ir.ID(o)).UnionWith(get(in.Uses[1])))
					})
				case ir.Call:
					var callees []*ir.Function
					if in.Callee != nil {
						callees = []*ir.Function{in.Callee}
					} else {
						get(in.CalleePtr()).ForEach(func(o uint32) {
							if v := prog.Value(ir.ID(o)); v.ObjKind == ir.FuncObj {
								callees = append(callees, v.Func)
							}
						})
					}
					args := in.CallArgs()
					for _, callee := range callees {
						for i, a := range args {
							if i >= len(callee.Params) {
								break
							}
							mark(get(callee.Params[i]).UnionWith(get(a)))
						}
						if in.Def != ir.None && callee.Ret != ir.None {
							mark(get(in.Def).UnionWith(get(callee.Ret)))
						}
					}
				}
			})
		}
	}
	return pts
}

// TestAgainstNaiveReference cross-checks the optimised solver against the
// naive one on a spread of random programs.
func TestAgainstNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := workload.DefaultRandomConfig()
			prog := workload.Random(seed, cfg)
			res := Analyze(prog)
			want := naiveSolve(prog)
			n := prog.NumValues()
			for id := ir.ID(1); int(id) < n; id++ {
				got := res.PointsTo(id)
				w := want[id]
				if w == nil {
					w = bitset.New()
				}
				if !got.Equal(w) {
					t.Fatalf("pts(%s): solver %v, naive %v", prog.NameOf(id), got, w)
				}
			}
		})
	}
}

func TestStatsPopulated(t *testing.T) {
	prog := workload.Random(42, workload.DefaultRandomConfig())
	res := Analyze(prog)
	if res.Stats.Pops == 0 || res.Stats.FinalNodes == 0 {
		t.Errorf("stats look empty: %+v", res.Stats)
	}
}
