package andersen

import (
	"sync"

	"vsfs/internal/bitset"
	"vsfs/internal/graph"
	"vsfs/internal/ir"
)

// singletons is the lazily-computed classification behind Singletons;
// it lives in its own struct so Result stays copy-free.
type singletons struct {
	once sync.Once
	set  *bitset.Sparse
}

// Singletons returns the set of singleton objects: abstract objects
// that stand for exactly one concrete runtime cell, so a store known to
// target one of them alone may strongly update (kill) its contents.
// Globals always qualify; stack objects qualify when their defining
// function is non-recursive (one live frame at a time); heap and
// function objects never do, nor do field-collapsed objects.
//
// This is the single classification every strong-update-capable
// backend shares — the SVFG/SFS/VSFS pipeline and the CFG-free solver —
// so their kill predicates can never drift apart. The set is computed
// on first use over the auxiliary call graph and cached; field objects
// all exist by the time the auxiliary solve finishes, so the value
// space is stable. The returned set is shared and must not be mutated.
func (r *Result) Singletons() *bitset.Sparse {
	r.single.once.Do(func() {
		r.single.set = computeSingletons(r.prog, r)
	})
	return r.single.set
}

func computeSingletons(prog *ir.Program, aux *Result) *bitset.Sparse {
	// Recursive functions via the auxiliary call graph.
	idx := make(map[*ir.Function]uint32, len(prog.Funcs))
	for i, f := range prog.Funcs {
		idx[f] = uint32(i)
	}
	cg := graph.New(len(prog.Funcs))
	selfLoop := make([]bool, len(prog.Funcs))
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call {
				return
			}
			for _, callee := range aux.CalleesOf(in) {
				cg.AddEdge(idx[f], idx[callee])
				if callee == f {
					selfLoop[idx[f]] = true
				}
			}
		})
	}
	comp, k := cg.SCCs()
	sccSize := make([]int, k)
	for _, c := range comp {
		sccSize[c]++
	}
	recursive := func(f *ir.Function) bool {
		i := idx[f]
		return selfLoop[i] || sccSize[comp[i]] > 1
	}

	set := bitset.New()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		v := prog.Value(id)
		if v.Kind != ir.Object || v.Collapsed {
			continue
		}
		switch v.ObjKind {
		case ir.GlobalObj:
			set.Set(uint32(id))
		case ir.StackObj:
			if v.DefFunc != nil && !recursive(v.DefFunc) {
				set.Set(uint32(id))
			}
		}
	}
	return set
}
