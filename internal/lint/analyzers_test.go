package lint

import "testing"

func TestDetRange(t *testing.T) {
	passes := loadCorpus(t, "detrange",
		"vsfs/internal/obs", "vsfs/internal/core", "vsfs/internal/other")
	checkExpectations(t, passes, Run(passes, []*Analyzer{DetRange}))
}

func TestNoClock(t *testing.T) {
	passes := loadCorpus(t, "noclock",
		"vsfs/internal/core", "vsfs/internal/server")
	checkExpectations(t, passes, Run(passes, []*Analyzer{NoClock}))
}

func TestGuardTick(t *testing.T) {
	passes := loadCorpus(t, "guardtick",
		"vsfs/internal/guard", "vsfs/internal/core", "vsfs/internal/other")
	checkExpectations(t, passes, Run(passes, []*Analyzer{GuardTick}))
}

func TestMetricName(t *testing.T) {
	passes := loadCorpus(t, "metricname",
		"vsfs/internal/obs", "vsfs/internal/srv")
	checkExpectations(t, passes, Run(passes, []*Analyzer{MetricName}))
}

func TestReportContract(t *testing.T) {
	for _, corpus := range []string{"ok", "brk", "missing"} {
		t.Run(corpus, func(t *testing.T) {
			paths := []string{"vsfs"}
			if corpus == "ok" {
				paths = append(paths, "vsfs/internal/shape")
			}
			passes := loadCorpus(t, "reportcontract/"+corpus, paths...)
			checkExpectations(t, passes, Run(passes, []*Analyzer{ReportContract}))
		})
	}
}

// TestByName pins the suite roster: suppression directives and -run
// flags resolve analyzers through these names.
func TestByName(t *testing.T) {
	for _, name := range []string{"detrange", "noclock", "guardtick", "metricname", "reportcontract"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil, want analyzer", name)
		}
	}
	if ByName("bogus") != nil {
		t.Error("ByName(bogus) resolved to an analyzer")
	}
	if got := len(Analyzers()); got != 5 {
		t.Errorf("Analyzers() returned %d analyzers, want 5", got)
	}
}
