package lint

import (
	"go/ast"
	"go/types"
)

// GuardTick requires every unbounded loop in the solver worklist
// packages to reach a guard.Tick / guard.TickShard checkpoint. The
// guard subsystem's budget accounting (and its exact-conservation
// oracle invariant) only sees work that passes a checkpoint; an
// unbounded drain loop with no reachable Tick is work the budget
// cannot bound and a cancellation the caller cannot deliver.
//
// A loop is "unbounded" unless it is the classic three-clause counter
// form (init; cond; post) or a `range` statement, both of which are
// bounded by data the caller already paid for. Reachability is
// transitive through same-package functions and methods: a loop whose
// body calls a helper that ticks is covered.
var GuardTick = &Analyzer{
	Name: "guardtick",
	Doc: "unbounded loops in solver worklist packages must reach a guard.Tick/TickShard " +
		"checkpoint so budget coverage and cancellation latency cannot silently regress",
	Run: runGuardTick,
}

const guardPath = "vsfs/internal/guard"

// guardTickScope is the set of worklist solver packages: the three
// backends plus the versioned core.
var guardTickScope = map[string]bool{
	"vsfs/internal/andersen": true,
	"vsfs/internal/cfgfree":  true,
	"vsfs/internal/core":     true,
	"vsfs/internal/sfs":      true,
}

func runGuardTick(p *Pass) []Finding {
	if !guardTickScope[p.Path] {
		return nil
	}
	ticking := tickingFuncs(p)
	var out []Finding
	for _, file := range p.Files {
		imports := importsOf(file)
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || boundedFor(loop) || !doesWork(loop.Body) {
				return true
			}
			if reachesTick(p, imports, loop.Body, ticking) {
				return true
			}
			out = append(out, findingf(p, "guardtick", loop.Pos(),
				"unbounded loop never reaches guard.Tick/TickShard: its work is invisible to "+
					"budgets and uncancellable; add a checkpoint (guard.Tick(ctx, phase, 0) "+
					"charges nothing) or bound the loop"))
			return true
		})
	}
	return out
}

// boundedFor reports the classic counter form: all three clauses
// present. `for {}`, `for cond {}` and `for ; ; post {}` count as
// unbounded; `for i := 0; i < n; i++` does not.
func boundedFor(loop *ast.ForStmt) bool {
	return loop.Init != nil && loop.Cond != nil && loop.Post != nil
}

// doesWork reports whether the body performs anything beyond control
// flow — a call, assignment, or send. A loop that only spins over
// break/continue has nothing for a budget to meter.
func doesWork(body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.AssignStmt, *ast.SendStmt, *ast.IncDecStmt:
			work = true
			return false
		}
		return true
	})
	return work
}

// tickingFuncs computes the fixpoint of package functions that reach
// guard.Tick/TickShard: directly, or through calls to other ticking
// functions in the same package.
func tickingFuncs(p *Pass) map[*types.Func]bool {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	ticking := map[*types.Func]bool{}
	// Seed: functions with a direct guard.Tick/TickShard call.
	for fn, fd := range decls {
		imports := importsOf(fileOf(p, fd))
		direct := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if direct {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if _, ok := isPkgCall(p, imports, call, guardPath, "Tick", "TickShard"); ok {
					direct = true
					return false
				}
			}
			return true
		})
		if direct {
			ticking[fn] = true
		}
	}
	// Propagate through same-package calls to a fixpoint.
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if ticking[fn] {
				continue
			}
			calls := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if calls {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(p, call); callee != nil && ticking[callee] {
					calls = true
					return false
				}
				return true
			})
			if calls {
				ticking[fn] = true
				changed = true
			}
		}
	}
	return ticking
}

// reachesTick reports whether body contains a direct guard.Tick /
// TickShard call or a call to a same-package function known to tick.
func reachesTick(p *Pass, imports map[string]string, body *ast.BlockStmt, ticking map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := isPkgCall(p, imports, call, guardPath, "Tick", "TickShard"); ok {
			found = true
			return false
		}
		if callee := calleeFunc(p, call); callee != nil && ticking[callee] {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeFunc resolves a call to its *types.Func when the callee is a
// function or method of the package under analysis; nil otherwise.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != p.Path {
		return nil
	}
	return fn
}

// fileOf returns the *ast.File containing decl.
func fileOf(p *Pass, decl ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.Pos() <= decl.Pos() && decl.Pos() <= f.End() {
			return f
		}
	}
	return p.Files[0]
}
