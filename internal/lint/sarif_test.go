package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	findings := []Finding{
		{
			Analyzer: "detrange",
			Pos:      token.Position{Filename: "b.go", Line: 4, Column: 2},
			Message:  "map iteration order reaches slice out",
		},
		{
			Analyzer: "lint-ignore",
			Pos:      token.Position{Filename: "a.go", Line: 9, Column: 1},
			Message:  "unused //vsfs:lint-ignore noclock (stale)",
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not JSON: %v\n%s", err, buf.String())
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) == 0 {
		t.Fatal("no runs in SARIF output")
	}
	var results int
	for _, r := range doc.Runs {
		results += len(r.Results)
	}
	if results != len(findings) {
		t.Errorf("SARIF carries %d results, want %d", results, len(findings))
	}
	if !strings.Contains(buf.String(), "detrange") {
		t.Error("SARIF output does not mention the detrange rule")
	}
}
