package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the slice of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Dir string }
}

// Load type-checks the module packages matched by patterns (typically
// ["./..."]) rooted at dir and returns one Pass per package, sorted by
// import path.
//
// The loader shells out to the already-present go toolchain —
// `go list -deps -export -json` — which yields every dependency in
// topological order together with compiled export data for the
// non-module ones. Module packages are then parsed and type-checked
// from source (so analyzers get syntax trees), while imports outside
// the module resolve through the stdlib gc importer reading that
// export data: the exact scheme x/tools/go/packages uses, minus the
// dependency. Only non-test GoFiles are linted; the contracts being
// enforced are production-path invariants.
func Load(dir string, patterns ...string) ([]*Pass, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Export,Standard,Dir,GoFiles,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var modPkgs []listPackage
	moduleRoot := ""
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.Module == nil {
			continue
		}
		modPkgs = append(modPkgs, p)
		if moduleRoot == "" {
			moduleRoot = p.Module.Dir
		}
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := &chainImporter{
		gc:      importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		checked: checked,
	}

	var passes []*Pass
	// -deps emits dependencies before dependents, so by the time a
	// package is checked every module import it names is in `checked`.
	for _, p := range modPkgs {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := checkFiles(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		checked[p.ImportPath] = pkg
		passes = append(passes, &Pass{
			Path:       p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
			ModuleRoot: moduleRoot,
		})
	}
	// go list emits the -deps closure in dependency order; surface
	// passes in deterministic path order instead.
	sortPasses(passes)
	return passes, nil
}

func sortPasses(passes []*Pass) {
	for i := 1; i < len(passes); i++ {
		for j := i; j > 0 && passes[j].Path < passes[j-1].Path; j-- {
			passes[j], passes[j-1] = passes[j-1], passes[j]
		}
	}
}

// checkFiles type-checks one package's parsed files with full
// expression type and object-use information recorded.
func checkFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// chainImporter resolves module packages from the already-checked map
// and everything else through gc export data. A single shared gc
// importer instance keeps stdlib package identity consistent across
// the whole load.
type chainImporter struct {
	gc      types.ImporterFrom
	checked map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.checked[path]; ok {
		return p, nil
	}
	return c.gc.ImportFrom(path, dir, mode)
}
