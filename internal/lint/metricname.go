package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName cross-checks every obs metric registration in the module
// against the single declared registry, obs.MetricNames. The
// dynamic registry already dedups identical re-registrations, but it
// cannot catch a typo'd family name, a counter registered as a gauge
// at a second call site, or a dashboard-facing name that silently
// stopped being registered — all of which this analyzer makes a vet
// failure by construction:
//
//   - every Registry.Counter/Gauge/Histogram(+Vec)/GaugeFunc call must
//     pass a compile-time constant name that appears in
//     obs.MetricNames with the matching kind;
//   - every obs.MetricNames entry must be registered by some call
//     site (no stale declarations);
//   - declared names must satisfy the naming convention: vsfs_
//     prefix, [a-z0-9_] characters, counters (and only counters)
//     ending in _total.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "every obs metric registration must name a compile-time constant declared in " +
		"obs.MetricNames with the matching kind; declared names must all be registered",
	RunModule: runMetricName,
}

const obsPath = "vsfs/internal/obs"

// registerKinds maps obs.Registry registration methods to the Kind
// constant their family is created with.
var registerKinds = map[string]string{
	"Counter": "KindCounter", "CounterVec": "KindCounter",
	"Gauge": "KindGauge", "GaugeVec": "KindGauge", "GaugeFunc": "KindGauge",
	"Histogram": "KindHistogram", "HistogramVec": "KindHistogram",
}

var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// declaredMetric is one obs.MetricNames entry.
type declaredMetric struct {
	kind string // "KindCounter", ...
	pos  token.Pos
}

func runMetricName(passes []*Pass) []Finding {
	var obsPass *Pass
	for _, p := range passes {
		if p.Path == obsPath {
			obsPass = p
		}
	}
	if obsPass == nil {
		// Nothing in the load touches obs; nothing to check.
		return nil
	}
	declared, out := declaredMetrics(obsPass)

	registered := map[string]bool{}
	for _, p := range passes {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method, ok := registrationCall(p, call)
				if !ok || len(call.Args) == 0 {
					return true
				}
				name, isConst := constString(p, call.Args[0])
				if !isConst {
					out = append(out, findingf(p, "metricname", call.Args[0].Pos(),
						"metric name passed to Registry.%s must be a compile-time constant string "+
							"so the declared registry can be checked statically", method))
					return true
				}
				registered[name] = true
				d, ok := declared[name]
				if !ok {
					out = append(out, findingf(p, "metricname", call.Args[0].Pos(),
						"metric %q is not declared in obs.MetricNames; add it there (the registry is "+
							"the single source of truth for /metrics families)", name))
					return true
				}
				if want := registerKinds[method]; d.kind != want {
					out = append(out, findingf(p, "metricname", call.Args[0].Pos(),
						"metric %q registered via %s (%s) but declared %s in obs.MetricNames",
						name, method, want, d.kind))
				}
				return true
			})
		}
	}

	// Stale declarations: names nothing registers anymore.
	for name, d := range declared {
		if !registered[name] {
			out = append(out, findingf(obsPass, "metricname", d.pos,
				"obs.MetricNames declares %q but no call site registers it; delete the entry "+
					"or restore the registration", name))
		}
	}
	return out
}

// declaredMetrics extracts the obs.MetricNames map literal, emitting
// convention findings for malformed entries as it goes.
func declaredMetrics(p *Pass) (map[string]declaredMetric, []Finding) {
	declared := map[string]declaredMetric{}
	var out []Finding
	var lit *ast.CompositeLit
	var declPos token.Pos
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "MetricNames" || i >= len(vs.Values) {
					continue
				}
				declPos = name.Pos()
				if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
					lit = cl
				}
			}
			return true
		})
	}
	if lit == nil {
		pos := declPos
		if pos == token.NoPos {
			pos = p.Files[0].Pos()
		}
		return declared, []Finding{findingf(p, "metricname", pos,
			"obs.MetricNames map literal not found: the metricname analyzer needs the declared "+
				"registry to check registrations against")}
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		name, isConst := constString(p, kv.Key)
		if !isConst {
			out = append(out, findingf(p, "metricname", kv.Key.Pos(),
				"obs.MetricNames keys must be string literals"))
			continue
		}
		kindID, ok := kv.Value.(*ast.Ident)
		if !ok {
			out = append(out, findingf(p, "metricname", kv.Value.Pos(),
				"obs.MetricNames values must be Kind constants"))
			continue
		}
		declared[name] = declaredMetric{kind: kindID.Name, pos: kv.Key.Pos()}
		out = append(out, metricConvention(p, kv.Key.Pos(), name, kindID.Name)...)
	}
	return declared, out
}

// metricConvention enforces the naming rules on one declared entry.
func metricConvention(p *Pass, pos token.Pos, name, kind string) []Finding {
	var out []Finding
	if !strings.HasPrefix(name, "vsfs_") {
		out = append(out, findingf(p, "metricname", pos,
			"metric %q must carry the vsfs_ namespace prefix", name))
	}
	if !metricNameRe.MatchString(name) {
		out = append(out, findingf(p, "metricname", pos,
			"metric %q is not a valid Prometheus family name ([a-z][a-z0-9_]*)", name))
	}
	hasTotal := strings.HasSuffix(name, "_total")
	if kind == "KindCounter" && !hasTotal {
		out = append(out, findingf(p, "metricname", pos,
			"counter %q must end in _total (Prometheus counter convention)", name))
	}
	if kind != "KindCounter" && hasTotal {
		out = append(out, findingf(p, "metricname", pos,
			"%q ends in _total but is not a counter", name))
	}
	return out
}

// registrationCall reports whether call is a Registry
// registration method from the obs package, returning the method
// name.
func registrationCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, ok := registerKinds[sel.Sel.Name]; !ok {
		return "", false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !typeFromPkg(sig.Recv().Type(), obsPath) {
		return "", false
	}
	return sel.Sel.Name, true
}

// constString evaluates e as a compile-time constant string.
func constString(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
