package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

// ReportContract diffs the JSON-bearing result structs — vsfs.Report
// and vsfs.RunRecord plus every module struct reachable through their
// fields (FuncReport, VarFacts, Finding, Summary, shape.Profile,
// obs.HotObject, ...) — against the committed golden schema at
// internal/lint/report_schema.json. The contract is append-only, per
// PR 7: ROADMAP item 3's auto-heuristic trains on ledger records and
// report shapes, so a removed field, a renamed JSON tag, a changed
// type, or a reorder of existing fields silently corrupts every
// downstream consumer and cached byte-identity golden. New fields and
// new types are always legal; regenerate the golden with
// `vsfs-lint -update-schema` after adding them.
var ReportContract = &Analyzer{
	Name: "reportcontract",
	Doc: "Report/shape.Profile/RunRecord JSON structs are append-only against the committed " +
		"golden schema (internal/lint/report_schema.json); regenerate with vsfs-lint -update-schema",
	RunModule: runReportContract,
}

// reportRoots are the facade types whose reachable-field closure
// defines the contract surface.
var reportRoots = []struct{ pkg, typ string }{
	{"vsfs", "Report"},
	{"vsfs", "RunRecord"},
}

// SchemaRelPath is where the golden schema lives, relative to the
// module root.
const SchemaRelPath = "internal/lint/report_schema.json"

// Schema is the committed golden: every contract struct with its
// JSON-visible fields in declaration order.
type Schema struct {
	Version int                   `json:"version"`
	Types   map[string]SchemaType `json:"types"`
}

// SchemaType is one struct's field list, in declaration order.
type SchemaType struct {
	Fields []SchemaField `json:"fields"`
}

// SchemaField records what JSON consumers can observe about a field.
type SchemaField struct {
	Name string `json:"name"`
	JSON string `json:"json"`
	Type string `json:"type"`
}

func runReportContract(passes []*Pass) []Finding {
	root, current, anchors, ok := currentSchema(passes)
	if !ok {
		// Partial load (e.g. vsfs-lint ./internal/core) without the
		// facade package: nothing to check.
		return nil
	}
	schemaPath := filepath.Join(root.ModuleRoot, filepath.FromSlash(SchemaRelPath))
	data, err := os.ReadFile(schemaPath)
	if err != nil {
		return []Finding{{
			Analyzer: "reportcontract",
			Pos:      root.Fset.Position(root.Files[0].Pos()),
			Message: fmt.Sprintf("missing golden schema %s: run `vsfs-lint -update-schema` and commit it",
				SchemaRelPath),
		}}
	}
	var golden Schema
	if err := json.Unmarshal(data, &golden); err != nil {
		return []Finding{{
			Analyzer: "reportcontract",
			Pos:      root.Fset.Position(root.Files[0].Pos()),
			Message:  fmt.Sprintf("golden schema %s is not valid JSON: %v", SchemaRelPath, err),
		}}
	}
	return diffSchema(root, golden, current, anchors)
}

// diffSchema enforces append-only: everything the golden promises
// must still exist, unchanged and in the same relative order.
func diffSchema(root *Pass, golden, current Schema, anchors map[string]token.Pos) []Finding {
	var out []Finding
	report := func(typeName string, format string, args ...any) {
		pos := anchors[typeName]
		if pos == token.NoPos {
			pos = root.Files[0].Pos()
		}
		out = append(out, findingf(root, "reportcontract", pos, format, args...))
	}
	typeNames := make([]string, 0, len(golden.Types))
	for name := range golden.Types {
		typeNames = append(typeNames, name)
	}
	sort.Strings(typeNames)
	for _, typeName := range typeNames {
		gt := golden.Types[typeName]
		ct, ok := current.Types[typeName]
		if !ok {
			report(typeName, "contract type %s was removed (golden schema still promises it to "+
				"report/ledger consumers); the contract is append-only", typeName)
			continue
		}
		cur := map[string]SchemaField{}
		order := map[string]int{}
		for i, f := range ct.Fields {
			cur[f.Name] = f
			order[f.Name] = i
		}
		last := -1
		for _, gf := range gt.Fields {
			cf, ok := cur[gf.Name]
			if !ok {
				report(typeName, "%s.%s (json %q) was removed; the report/ledger contract is "+
					"append-only — deprecate in place instead", typeName, gf.Name, gf.JSON)
				continue
			}
			if cf.JSON != gf.JSON {
				report(typeName, "%s.%s json tag changed %q -> %q; renaming breaks every consumer "+
					"keyed on the old name", typeName, gf.Name, gf.JSON, cf.JSON)
			}
			if cf.Type != gf.Type {
				report(typeName, "%s.%s type changed %s -> %s; contract field types are frozen",
					typeName, gf.Name, gf.Type, cf.Type)
			}
			if idx := order[gf.Name]; idx < last {
				report(typeName, "%s.%s moved before an earlier contract field; existing fields "+
					"keep their relative order so marshaled JSON stays byte-stable", typeName, gf.Name)
			} else {
				last = idx
			}
		}
	}
	return out
}

// currentSchema builds the schema from the loaded type information,
// returning the facade pass, the schema, and a type-name → position
// anchor map.
func currentSchema(passes []*Pass) (*Pass, Schema, map[string]token.Pos, bool) {
	byPath := map[string]*Pass{}
	for _, p := range passes {
		byPath[p.Path] = p
	}
	root := byPath["vsfs"]
	if root == nil {
		return nil, Schema{}, nil, false
	}
	sch := Schema{Version: 1, Types: map[string]SchemaType{}}
	anchors := map[string]token.Pos{}
	var visit func(named *types.Named)
	visit = func(named *types.Named) {
		obj := named.Obj()
		if obj.Pkg() == nil || !inModule(obj.Pkg().Path()) {
			return
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		typeName := qualifiedName(obj)
		if _, seen := sch.Types[typeName]; seen {
			return
		}
		anchors[typeName] = obj.Pos()
		var fields []SchemaField
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			if tag == "-" {
				continue
			}
			fields = append(fields, SchemaField{
				Name: f.Name(),
				JSON: tag,
				Type: typeString(f.Type()),
			})
			for _, n := range namedIn(f.Type()) {
				visit(n)
			}
		}
		sch.Types[typeName] = SchemaType{Fields: fields}
	}
	for _, r := range reportRoots {
		p := byPath[r.pkg]
		if p == nil {
			return nil, Schema{}, nil, false
		}
		obj := p.Pkg.Scope().Lookup(r.typ)
		if obj == nil {
			// A removed root is the worst possible contract break;
			// anchor it at the package root.
			anchors[r.pkg+"."+r.typ] = p.Files[0].Pos()
			continue
		}
		if named, ok := types.Unalias(obj.Type()).(*types.Named); ok {
			visit(named)
		}
	}
	return root, sch, anchors, true
}

// BuildSchema computes the current schema for -update-schema.
func BuildSchema(passes []*Pass) (Schema, error) {
	_, sch, _, ok := currentSchema(passes)
	if !ok {
		return Schema{}, fmt.Errorf("load did not include the vsfs facade package; run over ./...")
	}
	return sch, nil
}

// WriteSchema marshals the schema to its canonical on-disk form.
func WriteSchema(path string, sch Schema) error {
	data, err := json.MarshalIndent(sch, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// inModule reports whether an import path belongs to this module.
func inModule(path string) bool {
	return path == "vsfs" || strings.HasPrefix(path, "vsfs/")
}

// qualifiedName renders a contract type as "pkgpath.Name" with the
// module prefix kept ("vsfs.Report", "vsfs/internal/shape.Profile").
func qualifiedName(obj *types.TypeName) string {
	return obj.Pkg().Path() + "." + obj.Name()
}

// typeString renders a field type with package-path qualifiers,
// unaliasing the top level so `type Shape = shape.Profile` and a
// direct shape.Profile reference produce the same contract string.
func typeString(t types.Type) string {
	return types.TypeString(types.Unalias(t), func(p *types.Package) string { return p.Path() })
}

// namedIn collects the module-local named struct types reachable from
// t through pointers, slices, arrays and map values — the types the
// contract closure must include.
func namedIn(t types.Type) []*types.Named {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		return []*types.Named{t}
	case *types.Pointer:
		return namedIn(t.Elem())
	case *types.Slice:
		return namedIn(t.Elem())
	case *types.Array:
		return namedIn(t.Elem())
	case *types.Map:
		return append(namedIn(t.Key()), namedIn(t.Elem())...)
	}
	return nil
}
