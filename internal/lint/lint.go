// Package lint is a dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver pattern: a suite of static
// analyzers that enforce, at review time, the determinism / guard /
// report contracts the oracle otherwise discovers only dynamically by
// fuzzing. The module is stdlib-only, so instead of importing the
// x/tools framework the package defines the same three-part shape —
// an Analyzer with a Run function, a Pass carrying one type-checked
// package, and position-anchored findings — on top of go/ast,
// go/types and `go list -export`.
//
// The shipped analyzers and the invariant each one fronts:
//
//	detrange        map iteration order must not reach a slice,
//	                report, JSON or metric emission without an
//	                intervening sort (oracle: *-determinism,
//	                cache byte identity)
//	noclock         no wall clock or unseeded math/rand inside
//	                deterministic solver paths (oracle: re-solve
//	                and parallel determinism)
//	guardtick       unbounded solver loops must reach a
//	                guard.Tick/TickShard checkpoint (guard: budget
//	                coverage, cancellation latency)
//	metricname      every obs metric registration is declared in
//	                the canonical registry (obs: no dup/typo'd
//	                families on /metrics)
//	reportcontract  Report/shape.Profile/RunRecord JSON fields are
//	                append-only against a committed golden schema
//	                (PR 7 contract; ROADMAP 3's training set)
//
// Findings are suppressed with
//
//	//vsfs:lint-ignore <analyzer> <reason>
//
// on the flagged line or the line above — the same grammar as the
// product checkers' vsfs:ignore, except a non-empty reason is
// mandatory (a reasonless directive is itself a finding).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. It mirrors
// x/tools/go/analysis.Analyzer: Name keys suppressions and -run
// filters, Doc renders in -list and SARIF rule metadata, and exactly
// one of Run / RunModule is set.
type Analyzer struct {
	Name string
	Doc  string

	// Run analyzes a single package. Called once per loaded package;
	// analyzers scope themselves via the Pass (most consult
	// Pass.Path against their own package allowlist).
	Run func(*Pass) []Finding

	// RunModule analyzes the whole module at once, for invariants
	// that span packages (metricname cross-checks every registration
	// site against the one declared registry). Passes arrive sorted
	// by import path.
	RunModule func([]*Pass) []Finding
}

// A Pass carries one type-checked package through an analyzer, plus
// the module-level context every analyzer shares.
type Pass struct {
	Path  string // import path ("vsfs", "vsfs/internal/core", ...)
	Dir   string // absolute directory of the package
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// ModuleRoot is the absolute directory containing go.mod;
	// reportcontract resolves its committed schema against it.
	ModuleRoot string
}

// A Finding is one analyzer hit, anchored to a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string

	// suppressible marks findings eligible for //vsfs:lint-ignore.
	// Meta-findings about the suppression mechanism itself (malformed
	// or unused directives) are not, or a typo'd directive could hide
	// its own diagnostic.
	suppressible bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// findingf builds a suppressible finding at pos.
func findingf(p *Pass, analyzer string, pos token.Pos, format string, args ...any) Finding {
	return Finding{
		Analyzer:     analyzer,
		Pos:          p.Fset.Position(pos),
		Message:      fmt.Sprintf(format, args...),
		suppressible: true,
	}
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRange,
		NoClock,
		GuardTick,
		MetricName,
		ReportContract,
	}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the given analyzers over the loaded passes, applies
// //vsfs:lint-ignore suppressions, and returns the surviving findings
// sorted by position then analyzer. Meta-findings for malformed and
// unused suppression directives are appended; they cannot themselves
// be suppressed.
func Run(passes []*Pass, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		if a.RunModule != nil {
			raw = append(raw, a.RunModule(passes)...)
			continue
		}
		for _, p := range passes {
			raw = append(raw, a.Run(p)...)
		}
	}

	dirs := collectDirectives(passes)
	var out []Finding
	for _, f := range raw {
		if f.suppressible && dirs.suppress(f) {
			continue
		}
		out = append(out, f)
	}
	out = append(out, dirs.metaFindings(analyzers)...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// pkgBase returns the last path element of an import path — the
// package-directory name analyzers use for scoping ("vsfs" for the
// module root).
func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// importsOf maps the local name each file binds for its imports to
// the import path, e.g. {"guard": "vsfs/internal/guard"}. Dot and
// blank imports are skipped.
func importsOf(file *ast.File) map[string]string {
	out := map[string]string{}
	for _, im := range file.Imports {
		path := im.Path.Value
		path = path[1 : len(path)-1] // unquote
		name := pkgBase(path)
		if im.Name != nil {
			name = im.Name.Name
			if name == "." || name == "_" {
				continue
			}
		}
		out[name] = path
	}
	return out
}

// isPkgCall reports whether call is pkgName.FuncName(...) where
// pkgName resolves (via the file's imports) to pkgPath, using type
// information to confirm the receiver really is the package and not a
// shadowing local.
func isPkgCall(p *Pass, imports map[string]string, call *ast.CallExpr, pkgPath string, funcs ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || imports[id.Name] != pkgPath {
		return "", false
	}
	if obj, ok := p.Info.Uses[id]; ok {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			return "", false
		}
	}
	for _, fn := range funcs {
		if sel.Sel.Name == fn {
			return fn, true
		}
	}
	return "", false
}

// unwrap peels Named/Alias wrappers off a type.
func unwrap(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
