package core

import (
	"math/rand"
	"time"
)

type stats struct {
	Solve time.Duration
}

// timed is the blessed timing-struct pattern: Now/Since as the whole
// right-hand side of assignments.
func timed(st *stats) {
	start := time.Now()
	work()
	st.Solve += time.Since(start)
}

func work() {}

func clocked(limit time.Duration) time.Time {
	start := time.Now()
	if time.Since(start) > limit { // want "time.Since in deterministic solver path"
		work()
	}
	observe(time.Now())          // want "time.Now in deterministic solver path"
	time.Sleep(time.Millisecond) // want "time.Sleep in deterministic solver path"
	return time.Now()            // want "time.Now in deterministic solver path"
}

func observe(t time.Time) {}

func mixedRHS(start time.Time, overhead time.Duration) time.Duration {
	total := time.Since(start) + overhead // want "time.Since in deterministic solver path"
	return total
}

func shuffleBad(xs []int) int {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global unseeded source"
	return rand.Intn(10)                                                  // want "global unseeded source"
}

func shuffleGood(xs []int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func suppressedClock() time.Time {
	//vsfs:lint-ignore noclock diagnostic-only stamp, never feeds facts
	return time.Now()
}
