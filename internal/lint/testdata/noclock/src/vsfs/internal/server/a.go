// Package server is out of the noclock scope: wall time is part of
// its job (deadlines, uptime), so nothing here is flagged.
package server

import "time"

func deadline(d time.Duration) time.Time {
	time.Sleep(d)
	return time.Now().Add(d)
}
