// Package other sits outside the detrange scope: identical code that
// would be flagged in a solver package stays silent here.
package other

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
