package core

import (
	"fmt"
	"sort"
	"strings"

	"vsfs/internal/obs"
)

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map iteration order reaches slice out"
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysHelperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortRows(out)
	return out
}

func sortRows(rows []string) { sort.Strings(rows) }

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt output"
	}
}

func accumulate(m map[string]int) string {
	var b strings.Builder
	total := 0.0
	s := ""
	for k, v := range m {
		b.WriteString(k)    // want "ordered output"
		total += float64(v) // want "floating-point accumulator"
		s += k              // want "string accumulator"
	}
	_ = total
	return b.String() + s
}

func sendAll(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send"
	}
}

// groupByKey is the order-insensitive shape: one slot per key.
func groupByKey(m map[string]int, groups map[string][]int) {
	for k, v := range m {
		groups[k] = append(groups[k], v)
	}
}

func nested(m map[string]int) []string {
	var out []string
	for k := range m {
		func() { out = append(out, k) }() // want "slice out via append"
	}
	return out
}

func sample(m map[string]float64, s *obs.Series, a *obs.ObjectAttr) {
	for o, v := range m {
		s.Set(v) // want "obs metric sample"
		s.Inc()
		a.Set(uint32(len(o)), 1)
	}
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//vsfs:lint-ignore detrange iteration order is laundered by the caller
		out = append(out, k)
	}
	return out
}
