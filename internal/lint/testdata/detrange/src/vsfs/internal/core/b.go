package core

// Suppression hygiene: malformed and stale directives are findings in
// their own right, and cannot suppress themselves.

/* want "malformed" */ //vsfs:lint-ignore

/* want "unknown analyzer" */ //vsfs:lint-ignore bogus never heard of it

/* want "missing its reason" */ //vsfs:lint-ignore detrange

/* want "unused" */                      //vsfs:lint-ignore detrange nothing below triggers anymore
func sortedAlready(xs []string) []string { return xs }
