// Package obs is a corpus stub: just enough surface for the detrange
// analyzer's obs-sink classification (Series/Family mutators are
// order-sensitive, ObjectAttr is a commutative per-object counter).
package obs

type Series struct{}

func (s *Series) Add(v float64)     {}
func (s *Series) Set(v float64)     {}
func (s *Series) Observe(v float64) {}
func (s *Series) Inc()              {}

type Family struct{}

func (f *Family) Set(v float64, labels ...string) {}

type ObjectAttr struct{}

func (a *ObjectAttr) Set(obj uint32, n int) {}
