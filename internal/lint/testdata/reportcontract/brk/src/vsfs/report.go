package vsfs // want "contract type vsfs.FuncReport was removed"

// Report breaks the golden four ways: Funcs changed type (which also
// severs FuncReport from the contract closure), Total's json tag was
// renamed and the field moved above Funcs, and Gone was deleted.
type Report struct { // want "type changed" "json tag changed" "moved before an earlier contract field" "Gone.*was removed"
	Total int    `json:"count"`
	Funcs string `json:"funcs"`
}

type RunRecord struct {
	ID string `json:"id"`
}
