package vsfs // want "missing golden schema"

type Report struct {
	Total int `json:"total"`
}

type RunRecord struct {
	ID string `json:"id"`
}
