package shape

type Profile struct {
	Instrs int `json:"instrs"`
}
