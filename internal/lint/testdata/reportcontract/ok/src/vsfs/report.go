// Package vsfs is a corpus twin of the facade's report surface. The
// committed golden (../../internal/lint/report_schema.json) predates
// the Appended field: appending is legal, so this corpus is clean.
package vsfs

import "vsfs/internal/shape"

type Report struct {
	Funcs    []FuncReport  `json:"funcs"`
	Total    int           `json:"total"`
	Shape    shape.Profile `json:"shape"`
	hidden   int
	Skipped  int    `json:"-"`
	Appended string `json:"appended"`
}

type FuncReport struct {
	Name string         `json:"name"`
	Vars map[string]int `json:"vars"`
}

type RunRecord struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}
