package srv

import "vsfs/internal/obs"

const constName = "vsfs_const_total"

// fake shadows the registration method names on a non-obs receiver:
// must not be mistaken for a registration.
type fake struct{}

func (fake) Counter(name, help string) {}

func register(reg *obs.Registry, dynamic string) {
	reg.Counter("vsfs_good_total", "solves completed")
	reg.Counter(constName, "named-constant names are fine")
	reg.CounterVec("vsfs_labeled_total", "per-shard pops", "shard")
	reg.Gauge("vsfs_depth", "queue depth")
	reg.Histogram("vsfs_cost", "per-object cost", nil)
	reg.Gauge("vsfs_wrong_total", "kind drift") // want "registered via Gauge"
	reg.Counter("vsfs_rogue_total", "typo'd")   // want "not declared in obs.MetricNames"
	reg.Counter(dynamic, "runtime-built name")  // want "compile-time constant"
	reg.Gauge("bad_name", "prefix checked at the declaration")
	reg.Gauge("vsfs_gauge_total", "suffix checked at the declaration")
	reg.Counter("vsfs_counts", "suffix checked at the declaration")
	reg.Gauge("Vsfs_Upper", "case checked at the declaration")
	fake{}.Counter("vsfs_never_declared", "different receiver type")
}
