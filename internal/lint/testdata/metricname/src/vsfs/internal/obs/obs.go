// Package obs is a corpus stub of the metric registry surface the
// metricname analyzer checks: the declared MetricNames table and the
// Registry registration methods.
package obs

type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

var dyn = "vsfs_dyn"

func kindOf() Kind { return KindGauge }

var MetricNames = map[string]Kind{
	"vsfs_good_total":    KindCounter,
	"vsfs_const_total":   KindCounter,
	"vsfs_labeled_total": KindCounter,
	"vsfs_depth":         KindGauge,
	"vsfs_cost":          KindHistogram,
	"vsfs_wrong_total":   KindCounter,
	"vsfs_stale_total":   KindCounter, // want "no call site registers it"
	"bad_name":           KindGauge,   // want "vsfs_ namespace prefix"
	"vsfs_gauge_total":   KindGauge,   // want "_total but is not a counter"
	"vsfs_counts":        KindCounter, // want "must end in _total"
	"Vsfs_Upper":         KindGauge,   // want "vsfs_ namespace prefix" "not a valid Prometheus family name"
	dyn:                  KindGauge,   // want "keys must be string literals"
	"vsfs_dynkind":       kindOf(),    // want "values must be Kind constants"
}

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string) *Series                      { return &Series{} }
func (r *Registry) Gauge(name, help string) *Series                        { return &Series{} }
func (r *Registry) Histogram(name, help string, buckets []float64) *Series { return &Series{} }
func (r *Registry) CounterVec(name, help string, labels ...string) *Family { return &Family{} }
func (r *Registry) GaugeFunc(name, help string, f func() float64)          {}

type Series struct{}

type Family struct{}
