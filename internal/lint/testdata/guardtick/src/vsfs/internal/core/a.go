package core

import (
	"context"

	"vsfs/internal/guard"
)

func drainBad(ctx context.Context, q []int) {
	for len(q) > 0 { // want "unbounded loop never reaches guard.Tick"
		q = q[1:]
	}
}

func drainTicked(ctx context.Context, q []int) error {
	for len(q) > 0 {
		if err := guard.Tick(ctx, "solve", 0); err != nil {
			return err
		}
		q = q[1:]
	}
	return nil
}

// drainViaHelper ticks one call away; drainTwoLevels two calls away —
// the fixpoint must see both.
func drainViaHelper(ctx context.Context, q []int) {
	for len(q) > 0 {
		checkpoint(ctx)
		q = q[1:]
	}
}

func drainTwoLevels(ctx context.Context, q []int) {
	for len(q) > 0 {
		poll(ctx)
		q = q[1:]
	}
}

func poll(ctx context.Context) { checkpoint(ctx) }

func checkpoint(ctx context.Context) { _ = guard.Tick(ctx, "solve", 0) }

// counted is the classic three-clause form: bounded, no tick needed.
func counted(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// overRange is bounded by its data.
func overRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// spin does no meterable work: control flow only.
func spin() {
	for {
		break
	}
}

type engine struct{ q []int }

func (e *engine) run(ctx context.Context) {
	for len(e.q) > 0 {
		e.tickOnce(ctx)
		e.q = e.q[1:]
	}
}

func (e *engine) tickOnce(ctx context.Context) { _ = guard.Tick(ctx, "solve", 0) }

func suppressedDrain(q []int) {
	//vsfs:lint-ignore guardtick bounded by the caller's snapshot length
	for len(q) > 0 {
		q = q[1:]
	}
}
