// Package guard is a corpus stub: the analyzer only resolves the
// Tick/TickShard names through this import path.
package guard

import "context"

func Tick(ctx context.Context, phase string, n int) error { return nil }

func TickShard(ctx context.Context, phase string, shard, n int) error { return nil }
