// Package other is outside the guardtick scope: unbounded loops in
// non-worklist packages are not this analyzer's business.
package other

func drain(q []int) {
	for len(q) > 0 {
		q = q[1:]
	}
}
