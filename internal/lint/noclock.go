package lint

import (
	"go/ast"
	"go/types"
)

// NoClock forbids wall-clock reads and unseeded math/rand inside the
// deterministic solver paths. The paper's versioning correctness
// argument (and this repo's cache/oracle byte-identity contracts)
// require a solve to be a pure function of its input program; a clock
// or global-rand read anywhere on that path is a latent determinism
// break.
//
// The only legal wall-clock shape in scope is the timing-struct
// pattern the facade and solvers use to fill obs timing fields:
//
//	start := time.Now()          // Now as the whole RHS of an assignment
//	stats.Solve += time.Since(start) // Since as the whole RHS (= or +=)
//
// Everything else — clocks in conditions, arguments, returns,
// time.Sleep/After/Tick/Until, timers — is flagged. Packages where
// wall time is part of the job (obs, guard wall budgets, server,
// cluster, bench, the binaries) are out of scope.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc: "no wall clock or unseeded math/rand in deterministic solver paths; " +
		"time.Now/Since only as whole-RHS timing-struct assignments",
	Run: runNoClock,
}

// noClockScope is every package on the input→facts path, where a
// solve must be a pure function of the program.
var noClockScope = map[string]bool{
	"vsfs":                   true,
	"vsfs/internal/andersen": true,
	"vsfs/internal/bitset":   true,
	"vsfs/internal/cfg":      true,
	"vsfs/internal/cfgfree":  true,
	"vsfs/internal/checker":  true,
	"vsfs/internal/core":     true,
	"vsfs/internal/diag":     true,
	"vsfs/internal/fsicfg":   true,
	"vsfs/internal/graph":    true,
	"vsfs/internal/ir":       true,
	"vsfs/internal/irparse":  true,
	"vsfs/internal/lang":     true,
	"vsfs/internal/meld":     true,
	"vsfs/internal/memssa":   true,
	"vsfs/internal/oracle":   true,
	"vsfs/internal/sfs":      true,
	"vsfs/internal/shape":    true,
	"vsfs/internal/svfg":     true,
	"vsfs/internal/workload": true,
}

// randSeeded lists math/rand names that construct or type seeded
// sources — legal because the caller controls the seed. Everything
// else reached through the package (top-level Intn, Float64, Perm,
// Shuffle, ...) rides the global, unseeded source.
var randSeeded = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true, "Rand": true, "Source": true, "Zipf": true,
	"PCG": true, "ChaCha8": true, "Source64": true,
}

func runNoClock(p *Pass) []Finding {
	if !noClockScope[p.Path] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		imports := importsOf(file)
		legal := legalTimingCalls(p, imports, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn, ok := isPkgCall(p, imports, n, "time",
					"Now", "Since", "Until", "Sleep", "After", "Tick",
					"NewTimer", "NewTicker", "AfterFunc"); ok {
					if legal[n] {
						return true
					}
					out = append(out, findingf(p, "noclock", n.Pos(),
						"time.%s in deterministic solver path: wall time is only legal as a "+
							"whole-RHS timing-struct assignment (start := time.Now(); d = time.Since(start))", fn))
				}
			case *ast.SelectorExpr:
				out = append(out, randUse(p, imports, n)...)
			}
			return true
		})
	}
	return out
}

// legalTimingCalls marks the time.Now/time.Since calls that appear as
// the entire right-hand side of an assignment — the blessed
// timing-struct pattern.
func legalTimingCalls(p *Pass, imports map[string]string, file *ast.File) map[*ast.CallExpr]bool {
	legal := map[*ast.CallExpr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return true
		}
		for _, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if _, ok := isPkgCall(p, imports, call, "time", "Now", "Since"); ok {
				legal[call] = true
			}
		}
		return true
	})
	return legal
}

// randUse flags selections through the unseeded math/rand (or
// math/rand/v2) global source.
func randUse(p *Pass, imports map[string]string, sel *ast.SelectorExpr) []Finding {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	path := imports[id.Name]
	if path != "math/rand" && path != "math/rand/v2" {
		return nil
	}
	if obj, ok := p.Info.Uses[id]; ok {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			return nil
		}
	}
	if randSeeded[sel.Sel.Name] {
		return nil
	}
	return []Finding{findingf(p, "noclock", sel.Pos(),
		"%s.%s uses the global unseeded source in a deterministic solver path; "+
			"construct a seeded rand.New(rand.NewSource(seed)) instead", id.Name, sel.Sel.Name)}
}
