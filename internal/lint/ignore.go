package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
)

// ignoreRe matches a suppression directive inside a line comment. The
// grammar extends the product checkers' vsfs:ignore with a mandatory
// analyzer name and reason:
//
//	//vsfs:lint-ignore <analyzer> <reason...>
//
// A directive covers its own source line (trailing form) and the line
// below it (standalone form) — the conventional nolint placement.
var ignoreRe = regexp.MustCompile(`^//\s*vsfs:lint-ignore\b[ \t]*(.*)$`)

// directive is one parsed //vsfs:lint-ignore comment.
type directive struct {
	pos      token.Position // where the directive itself sits
	analyzer string
	reason   string
	used     bool
}

// directiveSet indexes directives by (filename, covered line).
type directiveSet struct {
	byLine    map[string]map[int][]*directive
	malformed []Finding
	all       []*directive
}

// collectDirectives parses every //vsfs:lint-ignore in the loaded
// files. Malformed directives (no analyzer, unknown analyzer, or a
// missing reason) become unsuppressible meta-findings immediately.
func collectDirectives(passes []*Pass) *directiveSet {
	ds := &directiveSet{byLine: map[string]map[int][]*directive{}}
	for _, p := range passes {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					ds.add(pos, strings.TrimSpace(m[1]))
				}
			}
		}
	}
	return ds
}

func (ds *directiveSet) add(pos token.Position, rest string) {
	meta := func(format string, args ...any) {
		ds.malformed = append(ds.malformed, Finding{
			Analyzer: "lint-ignore",
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	name, reason, _ := strings.Cut(rest, " ")
	if name == "" {
		meta("malformed //vsfs:lint-ignore: want \"//vsfs:lint-ignore <analyzer> <reason>\"")
		return
	}
	if ByName(name) == nil {
		meta("//vsfs:lint-ignore names unknown analyzer %q", name)
		return
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		meta("//vsfs:lint-ignore %s is missing its reason: every suppression must say why", name)
		return
	}
	d := &directive{pos: pos, analyzer: name, reason: reason}
	ds.all = append(ds.all, d)
	lines := ds.byLine[pos.Filename]
	if lines == nil {
		lines = map[int][]*directive{}
		ds.byLine[pos.Filename] = lines
	}
	// Trailing form covers its own line, standalone form the next.
	lines[pos.Line] = append(lines[pos.Line], d)
	lines[pos.Line+1] = append(lines[pos.Line+1], d)
}

// suppress reports whether a matching directive covers f, marking the
// directive used.
func (ds *directiveSet) suppress(f Finding) bool {
	hit := false
	for _, d := range ds.byLine[f.Pos.Filename][f.Pos.Line] {
		if d.analyzer == f.Analyzer {
			d.used = true
			hit = true
		}
	}
	return hit
}

// metaFindings reports malformed directives plus directives that
// suppressed nothing during this run. Unused detection only applies
// to directives naming an analyzer that actually ran, so selective
// `-run` invocations don't misreport the rest as stale.
func (ds *directiveSet) metaFindings(ran []*Analyzer) []Finding {
	active := map[string]bool{}
	for _, a := range ran {
		active[a.Name] = true
	}
	out := append([]Finding(nil), ds.malformed...)
	for _, d := range ds.all {
		if d.used || !active[d.analyzer] {
			continue
		}
		out = append(out, Finding{
			Analyzer: "lint-ignore",
			Pos:      d.pos,
			Message:  fmt.Sprintf("unused //vsfs:lint-ignore %s (%s): nothing here triggers it anymore", d.analyzer, d.reason),
		})
	}
	return out
}
