package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetRange flags `range` statements over maps whose iteration order
// can reach an ordered output — a slice being appended to, a writer,
// a JSON encoder, a string accumulator, a floating-point accumulator,
// or an obs metric sample — without an intervening sort. Go
// randomizes map iteration order per run, so any such path is a
// byte-identity (report / cache / determinism-oracle) bug by
// construction. Scope: the solver and report-assembly packages named
// in detRangeScope.
//
// The one blessed pattern is collect-then-sort: appending keys or
// values to a slice that is passed to a sort/slices call (or any
// function whose name mentions sort) later in the same function.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc: "map iteration order must not reach slices, writers, JSON, string/float accumulators " +
		"or metric samples without an intervening sort (determinism contract)",
	Run: runDetRange,
}

// detRangeScope lists the packages whose outputs are covered by the
// byte-identity contract: the three solver backends, meld, the shape
// profile, report assembly in the facade root, bench tables, diag
// rendering, and the oracle itself.
var detRangeScope = map[string]bool{
	"vsfs":                   true,
	"vsfs/internal/core":     true,
	"vsfs/internal/sfs":      true,
	"vsfs/internal/cfgfree":  true,
	"vsfs/internal/andersen": true,
	"vsfs/internal/meld":     true,
	"vsfs/internal/shape":    true,
	"vsfs/internal/bench":    true,
	"vsfs/internal/diag":     true,
	"vsfs/internal/oracle":   true,
}

func runDetRange(p *Pass) []Finding {
	if !detRangeScope[p.Path] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		imports := importsOf(file)
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			out = append(out, detRangeFunc(p, imports, fn)...)
			return true
		})
	}
	return out
}

// detRangeFunc checks every map-range inside one function.
func detRangeFunc(p *Pass, imports map[string]string, fn *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := unwrap(t).(*types.Map); !isMap {
			return true
		}
		for _, sink := range mapOrderSinks(p, imports, rng) {
			if sink.sortTarget != "" && sortedAfter(p, imports, fn, rng.End(), sink.sortTarget) {
				continue
			}
			out = append(out, findingf(p, "detrange", sink.pos,
				"map iteration order reaches %s; sort before emitting (range starts at line %d)",
				sink.what, p.Fset.Position(rng.Pos()).Line))
		}
		return true
	})
	return out
}

// orderSink is one order-sensitive operation found in a map-range
// body. sortTarget, when non-empty, names the slice expression whose
// later sorting launders the nondeterminism.
type orderSink struct {
	pos        token.Pos
	what       string
	sortTarget string
}

// emitMethods are method names that write ordered output: io.Writer,
// bytes.Buffer, strings.Builder, bufio, json.Encoder and logger
// surfaces.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true, "Print": true, "Printf": true, "Println": true,
}

// obsOrderMethods are obs metric mutators whose result depends on
// sample order: Add/Observe accumulate floats (non-associative), Set
// is last-write-wins. Inc and SetMax are commutative and stay legal,
// as is everything on ObjectAttr (per-object counters).
var obsOrderMethods = map[string]bool{"Add": true, "Observe": true, "Set": true}

// obsOrderTypes are the obs receiver types whose mutators sample in
// order; ObjectAttr is deliberately absent.
var obsOrderTypes = map[string]bool{"Series": true, "Family": true}

// mapOrderSinks walks a map-range body collecting order-sensitive
// operations. Nested function literals are included: they close over
// the iteration and usually run within it.
func mapOrderSinks(p *Pass, imports map[string]string, rng *ast.RangeStmt) []orderSink {
	var sinks []orderSink
	keyed := map[string]bool{} // index expressions keyed by the loop vars are order-insensitive
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			keyed[id.Name] = true
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			sinks = append(sinks, orderSink{pos: n.Pos(), what: "a channel send"})
		case *ast.AssignStmt:
			sinks = append(sinks, assignSinks(p, n)...)
		case *ast.CallExpr:
			if s, ok := callSink(p, imports, n, keyed); ok {
				sinks = append(sinks, s)
			}
		}
		return true
	})
	return sinks
}

// assignSinks flags order-sensitive accumulating assignments: string
// concatenation and floating-point arithmetic, whose results depend
// on iteration order (the latter through non-associativity).
func assignSinks(p *Pass, as *ast.AssignStmt) []orderSink {
	var out []orderSink
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return nil
	}
	for _, lhs := range as.Lhs {
		t := p.Info.TypeOf(lhs)
		if t == nil {
			continue
		}
		b, ok := unwrap(t).(*types.Basic)
		if !ok {
			continue
		}
		switch {
		case as.Tok == token.ADD_ASSIGN && b.Info()&types.IsString != 0:
			out = append(out, orderSink{pos: as.Pos(), what: "a string accumulator (+= concatenation)"})
		case b.Info()&types.IsFloat != 0:
			out = append(out, orderSink{pos: as.Pos(),
				what: "a floating-point accumulator (FP arithmetic is not associative)"})
		}
	}
	return out
}

// callSink classifies one call inside a map-range body.
func callSink(p *Pass, imports map[string]string, call *ast.CallExpr, keyed map[string]bool) (orderSink, bool) {
	// append(target, ...) — order reaches target unless it is later
	// sorted, or the target itself is indexed by the loop key (one
	// slot per key: order-insensitive).
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			target := call.Args[0]
			if ix, ok := target.(*ast.IndexExpr); ok {
				if root, ok := ix.Index.(*ast.Ident); ok && keyed[root.Name] {
					return orderSink{}, false
				}
			}
			name := types.ExprString(target)
			return orderSink{
				pos:        call.Pos(),
				what:       "slice " + name + " via append",
				sortTarget: name,
			}, true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return orderSink{}, false
	}
	// fmt.Fprint*/Print* straight to a writer.
	if _, ok := isPkgCall(p, imports, call, "fmt",
		"Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println"); ok {
		return orderSink{pos: call.Pos(), what: "fmt output"}, true
	}
	// Method sinks need the selection to be a method call.
	selInfo, isSel := p.Info.Selections[sel]
	if !isSel || selInfo.Kind() != types.MethodVal {
		return orderSink{}, false
	}
	name := sel.Sel.Name
	recv := selInfo.Recv()
	if obsOrderMethods[name] && obsOrderTypes[namedName(recv)] && typeFromPkg(recv, obsPath) {
		return orderSink{pos: call.Pos(), what: "obs metric sample (" + name + ")"}, true
	}
	if emitMethods[name] {
		return orderSink{pos: call.Pos(), what: "ordered output (" + name + ")"}, true
	}
	return orderSink{}, false
}

// namedName returns the bare name of t's named type (after pointer
// deref), or "".
func namedName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// typeFromPkg reports whether t's named type (after pointer deref)
// was declared in pkgPath.
func typeFromPkg(t types.Type, pkgPath string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath
}

// sortedAfter reports whether, somewhere after pos in fn, target is
// handed to a sort: any function from the sort or slices packages, or
// any call whose name mentions "sort"/"Sort" (covering local helpers
// like sortRows), with target appearing among the arguments.
func sortedAfter(p *Pass, imports map[string]string, fn *ast.FuncDecl, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCall(p, imports, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(arg, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort.*/slices.Sort* calls and local helpers
// whose names mention sorting.
func isSortCall(p *Pass, imports map[string]string, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if path := imports[id.Name]; path == "sort" || path == "slices" {
				if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg || p.Info.Uses[id] == nil {
					return true
				}
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

// exprMentions reports whether any sub-expression of e renders
// exactly as target — an identifier match that is immune to the
// substring traps of strings.Contains.
func exprMentions(e ast.Expr, target string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ex, ok := n.(ast.Expr); ok && types.ExprString(ex) == target {
			found = true
			return false
		}
		return true
	})
	return found
}
