package lint

// The analyzer tests follow the x/tools analysistest pattern without
// the x/tools dependency: each analyzer owns a GOPATH-style corpus
// under testdata/<name>/src/<importpath>/ whose sources carry
// expectation comments
//
//	code()          // want "regex" "another regex"
//	/* want "regex" */ //vsfs:lint-ignore ...
//
// (the block form exists so a want can share a line with a directive
// under test). Every finding must match a want on its line and every
// want must match a finding. Corpora are real compiling Go: module
// packages are parsed from the corpus and type-checked against stub
// vsfs packages in the same corpus, stdlib against the source
// importer — the same Pass shape the production `go list` loader
// builds, so analyzers cannot tell the difference.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// testFset is shared by every corpus and the stdlib importer so all
// positions resolve in one space.
var testFset = token.NewFileSet()

// stdImporter type-checks stdlib dependencies from GOROOT source,
// shared (and internally cached) across corpora.
var stdImporter = importer.ForCompiler(testFset, "source", nil).(types.ImporterFrom)

// corpusLoader resolves module import paths from one corpus root.
type corpusLoader struct {
	root   string
	passes map[string]*Pass
}

// loadCorpus type-checks the named packages (and, transitively, their
// module imports) from testdata/<corpus>, returning passes sorted by
// import path as the production loader does.
func loadCorpus(t *testing.T, corpus string, paths ...string) []*Pass {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", filepath.FromSlash(corpus)))
	if err != nil {
		t.Fatal(err)
	}
	cl := &corpusLoader{root: root, passes: map[string]*Pass{}}
	var out []*Pass
	for _, path := range paths {
		p, err := cl.load(path)
		if err != nil {
			t.Fatalf("loading %s from corpus %s: %v", path, corpus, err)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func (cl *corpusLoader) Import(path string) (*types.Package, error) {
	return cl.ImportFrom(path, "", 0)
}

func (cl *corpusLoader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if inModule(path) {
		p, err := cl.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return stdImporter.ImportFrom(path, dir, 0)
}

func (cl *corpusLoader) load(path string) (*Pass, error) {
	if p, ok := cl.passes[path]; ok {
		return p, nil
	}
	dir := filepath.Join(cl.root, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(testFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: cl}
	pkg, err := conf.Check(path, testFset, files, info)
	if err != nil {
		return nil, err
	}
	p := &Pass{
		Path: path, Dir: dir, Fset: testFset, Files: files,
		Pkg: pkg, Info: info, ModuleRoot: cl.root,
	}
	cl.passes[path] = p
	return p, nil
}

// wantRe matches an expectation comment: a line comment or a
// same-line block comment beginning with "want", followed by one or
// more quoted regexes.
var wantRe = regexp.MustCompile(`^(?://|/\*)\s*want\b(.*?)(?:\*/)?\s*$`)

type wantKey struct {
	file string
	line int
}

type want struct {
	re  *regexp.Regexp
	src string
	hit bool
}

// checkExpectations cross-checks findings against the corpus's want
// comments: each finding must match a want on its exact line, each
// want must match at least one finding.
func checkExpectations(t *testing.T, passes []*Pass, findings []Finding) {
	t.Helper()
	wants := map[wantKey][]*want{}
	for _, p := range passes {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					k := wantKey{pos.Filename, pos.Line}
					rest := strings.TrimSpace(m[1])
					for rest != "" {
						q, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Errorf("%s:%d: malformed want clause %q", pos.Filename, pos.Line, rest)
							break
						}
						rest = strings.TrimSpace(rest[len(q):])
						expr, _ := strconv.Unquote(q)
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
							continue
						}
						wants[k] = append(wants[k], &want{re: re, src: expr})
					}
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants[wantKey{f.Pos.Filename, f.Pos.Line}] {
			if w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	keys := make([]wantKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.hit {
				t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, w.src)
			}
		}
	}
}
