package lint

import (
	"io"
	"sort"

	"vsfs/internal/diag"
)

// WriteSARIF renders lint findings through internal/diag's SARIF
// 2.1.0 writer, so vsfs-lint output lands in the exact pipeline the
// product's own checkers use (same tool driver shape, severities as
// levels, stable fingerprints). Each analyzer becomes a SARIF rule
// keyed by its name; analyzer findings are errors (they gate CI), and
// suppression-hygiene findings from lint-ignore are warnings.
func WriteSARIF(w io.Writer, findings []Finding) error {
	byFile := map[string][]diag.Raw{}
	for _, f := range findings {
		byFile[f.Pos.Filename] = append(byFile[f.Pos.Filename], diag.Raw{
			Kind:    f.Analyzer,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Message: f.Message,
		})
	}
	severities := map[string]diag.Severity{"lint-ignore": diag.Warning}
	for _, a := range Analyzers() {
		severities[a.Name] = diag.Error
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var all []diag.Finding
	for _, file := range files {
		all = append(all, diag.New(file, byFile[file], severities)...)
	}
	return diag.WriteSARIF(w, all)
}
