package oracle

import (
	"strings"
	"testing"
)

func TestJSONDiffPath(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		want string // substring of the diff, "" for equal
	}{
		{"equal", `{"x": 1}`, `{"x": 1}`, ""},
		{"nested key", `{"a": {"b": {"c": 1}}}`, `{"a": {"b": {"c": 2}}}`, "$.a.b.c: 1 != 2"},
		{"array index", `{"xs": [1, 2, 3]}`, `{"xs": [1, 9, 3]}`, "$.xs[1]: 2 != 9"},
		{"array length", `{"xs": [1, 2]}`, `{"xs": [1, 2, 3]}`, "$.xs: length 2 != 3"},
		{"missing left", `{"a": 1}`, `{"a": 1, "b": 2}`, "$.b: missing on the left"},
		{"missing right", `{"a": 1, "b": 2}`, `{"a": 1}`, "$.b: 2 on the left, missing on the right"},
		{"type change", `{"a": [1]}`, `{"a": {"x": 1}}`, "$.a: [1] != {\"x\":1}"},
		{"string value", `{"s": "cold"}`, `{"s": "warm"}`, `$.s: "cold" != "warm"`},
		{"scalar root", `1`, `2`, "$: 1 != 2"},
		{"big int fidelity", `{"n": 9007199254740993}`, `{"n": 9007199254740992}`, "$.n: 9007199254740993 != 9007199254740992"},
		{"non-json", "abc", "abd", `$: byte 2`},
		{"null vs zero", `{"v": null}`, `{"v": 0}`, "$.v: null != 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := jsonDiffPath([]byte(tc.a), []byte(tc.b))
			if tc.want == "" {
				if got != "" {
					t.Fatalf("jsonDiffPath = %q, want empty (documents equal)", got)
				}
				return
			}
			if !strings.Contains(got, tc.want) {
				t.Fatalf("jsonDiffPath = %q, want it to contain %q", got, tc.want)
			}
		})
	}
}

// TestJSONDiffPathWhitespace pins the fallback: byte-unequal but
// structurally equal documents still produce a located diff, since
// the byte-identity invariants compare raw bodies.
func TestJSONDiffPathWhitespace(t *testing.T) {
	got := jsonDiffPath([]byte(`{"a":1}`), []byte(`{ "a":1}`))
	if !strings.Contains(got, "byte 1") {
		t.Fatalf("jsonDiffPath = %q, want a byte-offset diff", got)
	}
}

// TestJSONDiffPathNamesFirstKey checks the report-shaped case the
// oracle hits: two large objects differing in one nested counter.
func TestJSONDiffPathNamesFirstKey(t *testing.T) {
	a := `{"funcs":[{"name":"f","vars":{"p":{"points_to":["a","b"]}}}],"summary":{"stores":4}}`
	b := `{"funcs":[{"name":"f","vars":{"p":{"points_to":["a","c"]}}}],"summary":{"stores":4}}`
	got := jsonDiffPath([]byte(a), []byte(b))
	want := `$.funcs[0].vars.p.points_to[1]: "b" != "c"`
	if got != want {
		t.Fatalf("jsonDiffPath = %q, want %q", got, want)
	}
}
