package oracle

import (
	"vsfs/internal/bitset"
	checks "vsfs/internal/checker"
	"vsfs/internal/ir"
)

// Facts adapters: one checker.FlowFacts view per analysis. The Andersen
// view answers every flow-sensitive question with the flow-insensitive
// summary — ContentsBefore(ℓ, o) and ObjectSummary(o) both collapse to
// pts_aux(o) — which is exactly the over-approximation the ordering
// invariants below quantify.

type sfsFacts struct{ b *Bundle }

func (f sfsFacts) PointsTo(v ir.ID) *bitset.Sparse      { return f.b.SFS.PointsTo(v) }
func (f sfsFacts) ObjectSummary(o ir.ID) *bitset.Sparse { return f.b.SFS.ObjectSummary(o) }
func (f sfsFacts) ContentsBefore(label uint32, o ir.ID) *bitset.Sparse {
	return f.b.SFS.InSet(label, o)
}

type vsfsFacts struct{ b *Bundle }

func (f vsfsFacts) PointsTo(v ir.ID) *bitset.Sparse      { return f.b.VSFS.PointsTo(v) }
func (f vsfsFacts) ObjectSummary(o ir.ID) *bitset.Sparse { return f.b.VSFS.ObjectSummary(o) }
func (f vsfsFacts) ContentsBefore(label uint32, o ir.ID) *bitset.Sparse {
	return f.b.VSFS.ConsumedSet(label, o)
}

type auxFacts struct{ b *Bundle }

func (f auxFacts) PointsTo(v ir.ID) *bitset.Sparse      { return f.b.Aux.PointsTo(v) }
func (f auxFacts) ObjectSummary(o ir.ID) *bitset.Sparse { return f.b.Aux.PointsTo(o) }
func (f auxFacts) ContentsBefore(label uint32, o ir.ID) *bitset.Sparse {
	return f.b.Aux.PointsTo(o)
}

// runCheckers runs the full memory-safety checker suite over one facts
// view and buckets the rendered findings by kind. The taint checker is
// deliberately absent: its sanitizer step subtracts a may-analysis fact,
// so precision is not monotone in the underlying points-to sets and no
// ordering invariant relates the three analyses (see checker.Leaks).
func runCheckers(prog *ir.Program, facts checks.FlowFacts) map[checks.Kind][]string {
	out := map[checks.Kind][]string{}
	add := func(fs []checks.Finding) {
		for _, f := range fs {
			out[f.Kind] = append(out[f.Kind], f.String())
		}
	}
	add(checks.NullDerefs(prog, facts))
	add(checks.DanglingReturns(prog, facts))
	add(checks.StackEscapes(prog, facts))
	add(checks.UseAfterFrees(prog, facts))
	add(checks.DoubleFrees(prog, facts))
	add(checks.MemoryLeaks(prog, facts))
	return out
}

// Checker kinds whose findings grow monotonically with the points-to
// facts: bigger pts sets can only add reports. For these the imprecise
// Andersen view must report a superset of VSFS's findings.
var monotoneKinds = []checks.Kind{
	checks.UseAfterFree,
	checks.DoubleFree,
	checks.DanglingReturn,
	checks.StackEscape,
}

// Checker kinds whose findings shrink with bigger facts: null-deref
// fires on *emptiness* and memory-leak on *unreachability*, both of
// which larger sets can only destroy. For these Andersen must report a
// subset of VSFS's findings.
var antitoneKinds = []checks.Kind{
	checks.NullDeref,
	checks.MemoryLeak,
}

// checkCheckers asserts the checker-level consequences of the solver
// invariants, per finding kind on rendered findings:
//
//	checker-vsfs-eq-sfs:    VSFS findings are byte-identical to SFS's
//	                        (every kind — precision theorem lifted to
//	                        the clients)
//	checker-aux-superset:   findings(VSFS) ⊆ findings(Andersen) for the
//	                        monotone kinds
//	checker-aux-subset:     findings(Andersen) ⊆ findings(VSFS) for
//	                        null-deref and memory-leak
//
// Findings are per (instruction, object), so the orderings hold
// elementwise, not just in aggregate counts.
func (c *checker) checkCheckers() {
	prog := c.b.Prog
	sf := runCheckers(prog, sfsFacts{c.b})
	vf := runCheckers(prog, vsfsFacts{c.b})
	af := runCheckers(prog, auxFacts{c.b})

	for _, kind := range checks.Kinds() {
		if c.full {
			return
		}
		s, v := sf[kind], vf[kind]
		if len(s) != len(v) {
			c.failf("checker-vsfs-eq-sfs", "%s: SFS reports %d finding(s), VSFS %d", kind, len(s), len(v))
			continue
		}
		for i := range s {
			if s[i] != v[i] {
				c.failf("checker-vsfs-eq-sfs", "%s: finding %d differs: SFS %q, VSFS %q", kind, i, s[i], v[i])
				break
			}
		}
	}
	for _, kind := range monotoneKinds {
		if c.full {
			return
		}
		aux := stringSet(af[kind])
		for _, f := range vf[kind] {
			if !aux[f] {
				c.failf("checker-aux-superset", "%s: VSFS reports %q, Andersen does not", kind, f)
				break
			}
		}
	}
	for _, kind := range antitoneKinds {
		if c.full {
			return
		}
		vs := stringSet(vf[kind])
		for _, f := range af[kind] {
			if !vs[f] {
				c.failf("checker-aux-subset", "%s: Andersen reports %q, VSFS does not", kind, f)
				break
			}
		}
	}
}

func stringSet(xs []string) map[string]bool {
	out := make(map[string]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}
