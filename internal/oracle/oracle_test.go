package oracle

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/workload"
)

func reportAll(t *testing.T, label string, vs []Violation) {
	t.Helper()
	for _, v := range vs {
		t.Errorf("%s: %s", label, v)
	}
}

// TestSweepDefaultConfig runs the full battery (including the re-solve
// determinism check) over a window of random seeds. This is the unit
// slice of what cmd/vsfs-fuzz does at scale.
func TestSweepDefaultConfig(t *testing.T) {
	cfg := workload.DefaultRandomConfig()
	for seed := int64(0); seed < 30; seed++ {
		reportAll(t, fmt.Sprintf("seed %d", seed), CheckSeed(seed, cfg, Options{}))
		if t.Failed() {
			t.Fatalf("battery failed at seed %d", seed)
		}
	}
}

// TestSweepFastProfiles checks the two cheapest named benchmark
// profiles end to end; the full 15-profile sweep is cmd/vsfs-fuzz
// territory (minutes, not unit-test time).
func TestSweepFastProfiles(t *testing.T) {
	for _, p := range workload.Profiles() {
		if p.Name != "du" && p.Name != "dpkg" {
			continue
		}
		reportAll(t, p.Name, CheckProgram(p.Build(), Options{SkipResolve: true}))
	}
}

// TestRegressionCorpus replays every minimized reproducer ever
// committed under testdata/regressions/. Each file pins a divergence
// the fuzzer once found; the battery must stay clean on all of them
// forever.
func TestRegressionCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "regressions", "*.ir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("regression corpus is empty; the replay harness is not wired up")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			reportAll(t, filepath.Base(file), CheckSource(string(src), Options{MaxWitnesses: -1}))
		})
	}
}

// TestCorpusExercisesWitnessPatterns guards the corpus itself: the two
// witness reproducers must actually contain the shapes that broke
// ExplainPointsTo (multiple funcaddr sites for one function; a fact
// targeting a field object), or a future regeneration could silently
// neuter them.
func TestCorpusExercisesWitnessPatterns(t *testing.T) {
	read := func(name string) *ir.Program {
		src, err := os.ReadFile(filepath.Join("testdata", "regressions", name))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := irparse.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return prog
	}

	prog := read("witness-multi-funcaddr.ir")
	funcAddrs := map[ir.ID]int{}
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op == ir.Alloc && prog.Value(in.Obj).ObjKind == ir.FuncObj {
				funcAddrs[in.Obj]++
			}
		})
	}
	multi := false
	for _, n := range funcAddrs {
		multi = multi || n >= 2
	}
	if !multi {
		t.Error("witness-multi-funcaddr.ir no longer has a function object with two funcaddr sites")
	}

	prog = read("witness-field-object.ir")
	b := SolveBundle(prog)
	fieldFact := false
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if !prog.IsPointer(id) || prog.Instrs[b.Graph.DefSite[id]].Op != ir.Load {
			continue
		}
		b.VSFS.PointsTo(id).ForEach(func(o uint32) {
			fieldFact = fieldFact || prog.Value(ir.ID(o)).Offset > 0
		})
	}
	if !fieldFact {
		t.Error("witness-field-object.ir no longer has a load resolving to a field object")
	}
}

// TestCheckSourceReportsParseFailure keeps corpus replay loops simple:
// garbage input is a violation, not a panic or a silent pass.
func TestCheckSourceReportsParseFailure(t *testing.T) {
	vs := CheckSource("func main() {\nentry:\n  p = bogus q\n}\n", Options{})
	if len(vs) != 1 || vs[0].Invariant != "parse" {
		t.Fatalf("CheckSource on garbage = %v, want a single parse violation", vs)
	}
}

// injectPrecisionBug corrupts a solved bundle the way a broken
// versioning scheme would: the first load-defined pointer (program
// order) with a non-empty VSFS points-to set loses its smallest object.
// Result.PointsTo hands back the live set, so the drop takes effect
// inside the bundle. Reports whether a target existed.
func injectPrecisionBug(b *Bundle) bool {
	for _, f := range b.Prog.Funcs {
		target := ir.None
		f.ForEachInstr(func(in *ir.Instr) {
			if target == ir.None && in.Op == ir.Load && in.Def != ir.None &&
				!b.VSFS.PointsTo(in.Def).IsEmpty() {
				target = in.Def
			}
		})
		if target != ir.None {
			pts := b.VSFS.PointsTo(target)
			pts.Clear(pts.Min())
			return true
		}
	}
	return false
}

func hasViolation(vs []Violation, invariant string) bool {
	for _, v := range vs {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// TestInjectedPrecisionBugCaughtAndMinimized is the mutation test for
// the oracle itself: deliberately break the VSFS result of a random
// program, assert the battery notices, then delta-debug the program
// against the injected bug and assert the reproducer is tiny. If this
// test fails, the oracle has gone blind and every green fuzz run is
// meaningless.
func TestInjectedPrecisionBugCaughtAndMinimized(t *testing.T) {
	cfg := workload.RandomConfig{
		Funcs: 2, MaxParams: 2, InstrsPerFunc: 14, MaxFields: 2,
		HeapFrac: 0.5, IndirectCalls: true, Globals: 1,
		LoopFrac: 0.1, BranchFrac: 0.3, StoreFrac: 0.5,
	}
	opts := Options{SkipResolve: true}

	var seed int64 = -1
	for s := int64(0); s < 50; s++ {
		if injectPrecisionBug(SolveBundle(workload.Random(s, cfg))) {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed in [0, 50) produced a load with a non-empty points-to set")
	}

	// The corrupted bundle must trip the precision half of the battery...
	b := SolveBundle(workload.Random(seed, cfg))
	injectPrecisionBug(b)
	vs := Check(b, opts)
	if !hasViolation(vs, "vsfs-eq-toplevel") {
		t.Fatalf("injected precision bug not caught: violations = %v", vs)
	}
	// ...and the clean bundle must not (the corruption is the only cause).
	if vs := Check(SolveBundle(workload.Random(seed, cfg)), opts); len(vs) != 0 {
		t.Fatalf("clean solve of seed %d has violations: %v", seed, vs)
	}

	fails := func(prog *ir.Program) bool {
		cb := SolveBundle(prog)
		if !injectPrecisionBug(cb) {
			return false
		}
		return hasViolation(Check(cb, opts), "vsfs-eq-toplevel")
	}
	src := workload.Random(seed, cfg).String()
	min := Minimize(src, fails)
	prog, err := irparse.Parse(min)
	if err != nil {
		t.Fatalf("minimized reproducer does not parse: %v\n%s", err, min)
	}
	if got, orig := CountInstrs(prog), CountInstrs(workload.Random(seed, cfg)); got > 15 {
		t.Errorf("minimized reproducer has %d instructions (from %d), want ≤ 15:\n%s", got, orig, min)
	}
	if !fails(prog) {
		t.Error("minimized reproducer no longer reproduces the injected bug")
	}
}

// TestMinimizeKeepsPassingInput pins Minimize's contract on input that
// never fails: return it unchanged instead of shrinking a healthy
// program to nothing.
func TestMinimizeKeepsPassingInput(t *testing.T) {
	src := workload.Random(7, workload.DefaultRandomConfig()).String()
	if got := Minimize(src, func(*ir.Program) bool { return false }); got != src {
		t.Error("Minimize rewrote a program that never failed the predicate")
	}
}

// TestServerIdentity runs the daemon-level half of the battery on two
// seeds: cache hits and concurrent single-flight waiters must be
// byte-identical to a cold solve.
func TestServerIdentity(t *testing.T) {
	cfg := workload.RandomConfig{
		Funcs: 2, MaxParams: 2, InstrsPerFunc: 10, MaxFields: 2,
		HeapFrac: 0.5, IndirectCalls: true, Globals: 1, StoreFrac: 0.5,
	}
	for seed := int64(0); seed < 2; seed++ {
		reportAll(t, "server seed", CheckServerIdentity(workload.Random(seed, cfg)))
	}
}

// TestCountInstrsExcludesSynthetic anchors the size metric reproducers
// are judged by.
func TestCountInstrsExcludesSynthetic(t *testing.T) {
	src := "global g1 1\nfunc main() {\nentry:\n  p = alloc a 0\n  store p, g1\n  v = load p\n  ret v\n}\n"
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := CountInstrs(prog); got != 3 {
		t.Fatalf("CountInstrs = %d, want 3 (alloc, store, load; no synthetic nodes, no global allocs)", got)
	}
}

// TestCheckerInvariantsWithFrees sweeps seeds whose programs contain
// free() so the checker-level invariants (checker-vsfs-eq-sfs,
// checker-aux-superset, checker-aux-subset) run over non-trivial
// deallocation traffic, and asserts the battery is not vacuous: at
// least one program must actually produce findings.
func TestCheckerInvariantsWithFrees(t *testing.T) {
	cfg := workload.DefaultRandomConfig()
	cfg.FreeProb = 0.3
	sawFindings := false
	for seed := int64(0); seed < 6; seed++ {
		prog := workload.Random(seed, cfg)
		b := SolveBundle(prog)
		reportAll(t, fmt.Sprintf("free seed %d", seed), Check(b, Options{SkipResolve: true}))
		for _, fs := range runCheckers(prog, vsfsFacts{b}) {
			if len(fs) > 0 {
				sawFindings = true
			}
		}
	}
	if !sawFindings {
		t.Error("no seed produced any checker finding; the invariants were tested vacuously")
	}
}

// TestCheckerInvariantAdapters pins the dispatch of each facts view on
// a concrete free-bearing program: SFS answers ContentsBefore with IN
// sets, VSFS with consume versions, Andersen with the summary.
func TestCheckerInvariantAdapters(t *testing.T) {
	src := `global g1 0
func main() {
entry:
  p = alloc h 0
  store g1, p
  free p
  q = load g1
  v = load q
  ret v
}
`
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := SolveBundle(prog)
	vf := runCheckers(prog, vsfsFacts{b})
	if len(vf["use-after-free"]) == 0 {
		t.Fatalf("no use-after-free from VSFS facts: %v", vf)
	}
	sf := runCheckers(prog, sfsFacts{b})
	if fmt.Sprint(sf) != fmt.Sprint(vf) {
		t.Errorf("SFS facts %v != VSFS facts %v", sf, vf)
	}
	af := runCheckers(prog, auxFacts{b})
	if len(af["use-after-free"]) < len(vf["use-after-free"]) {
		t.Errorf("Andersen facts report fewer UAFs (%v) than VSFS (%v)", af, vf)
	}
}
