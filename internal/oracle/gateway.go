package oracle

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"vsfs/internal/cluster"
	"vsfs/internal/cluster/chaos"
	"vsfs/internal/ir"
	"vsfs/internal/server"
)

// CheckGatewayIdentity exercises the routing tier against the direct
// single-replica answer for prog:
//
//	gateway-eq-direct: a request routed through the gateway — across a
//	                   calm three-replica fleet, and again across a
//	                   chaos-injected fleet with one replica killed
//	                   mid-sequence — succeeds and returns a body
//	                   byte-identical to a direct solve on a lone
//	                   server. Retries, failover, and hedging are only
//	                   allowed to move work, never to change answers.
//
// This is the cluster-level extension of server-flight-identity: the
// responses are deterministic and content-addressed, so byte equality
// across any routing history is the correct notion of "same result".
func CheckGatewayIdentity(prog *ir.Program) []Violation {
	src := prog.String()
	reqBody := []byte(fmt.Sprintf(`{"source": %q, "lang": "ir"}`, src))
	var out []Violation
	failf := func(format string, args ...any) {
		out = append(out, Violation{Invariant: "gateway-eq-direct", Detail: fmt.Sprintf(format, args...)})
	}
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(base string) (int, []byte, error) {
		resp, err := client.Post(base+"/analyze", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, buf.Bytes(), nil
	}
	scfg := server.Config{Workers: 2}

	// The reference: one lone replica, no gateway, no chaos.
	srv := server.New(scfg)
	ts := httptest.NewServer(srv)
	status, direct, err := post(ts.URL)
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Close(ctx)
	cancel()
	if err != nil || status != http.StatusOK {
		failf("direct solve failed: status %d, err %v", status, err)
		return out
	}

	// A calm three-replica fleet: both the cold solve (a miss on some
	// replica) and the repeat (a hit on the same replica, by routing
	// stickiness) must match the direct answer.
	calm, err := cluster.StartFleet(3, scfg, cluster.Config{
		HedgeAfter:    -1,
		ProbeInterval: time.Hour,
		RetrySeed:     1,
	}, nil)
	if err != nil {
		failf("calm fleet failed to start: %v", err)
		return out
	}
	for i := 0; i < 2; i++ {
		status, body, err := post(calm.GatewayURL())
		if err != nil || status != http.StatusOK {
			failf("calm fleet request %d failed: status %d, err %v", i, status, err)
			calm.Close()
			return out
		}
		if !bytes.Equal(body, direct) {
			failf("calm fleet request %d body differs from direct solve at %s", i, jsonDiffPath(body, direct))
			calm.Close()
			return out
		}
	}
	calm.Close()

	// The chaos fleet: a seeded plan faults connections, and replica 0
	// is killed between requests. Every request must still succeed with
	// the direct answer — failover may cost retries, never correctness.
	plan := chaos.Seeded(7, cluster.FleetNames(3), 8, 3)
	rough, err := cluster.StartFleet(3, scfg, cluster.Config{
		MaxAttempts:   4,
		RetryBase:     5 * time.Millisecond,
		RetryCap:      100 * time.Millisecond,
		RetrySeed:     7,
		HedgeAfter:    50 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  2,
	}, plan)
	if err != nil {
		failf("chaos fleet failed to start: %v", err)
		return out
	}
	defer rough.Close()
	for i := 0; i < 4; i++ {
		if i == 2 {
			rough.Kill(0)
		}
		status, body, err := post(rough.GatewayURL())
		if err != nil {
			failf("chaos fleet request %d: client-visible failure: %v", i, err)
			return out
		}
		if status != http.StatusOK {
			failf("chaos fleet request %d: status %d: %.200s", i, status, body)
			return out
		}
		if !bytes.Equal(body, direct) {
			failf("chaos fleet request %d body differs from direct solve (one replica down) at %s",
				i, jsonDiffPath(body, direct))
			return out
		}
	}
	return out
}
