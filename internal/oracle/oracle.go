// Package oracle is the differential-testing backbone of this
// repository: it solves one program with Andersen's analysis, SFS,
// VSFS, and the CFG-free backend, and cross-checks the battery of
// invariants the paper's correctness argument rests on — most
// importantly that VSFS is bit-for-bit as precise as SFS (the
// versioning theorem of Section IV-E), that every flow-sensitive
// backend refines the auxiliary one and sits where the precision chain
// fsicfg ⊆ sfs ≡ vsfs ⊆ cfgfree ⊆ andersen puts it, and that solving
// is deterministic. Every future optimisation PR
// regresses against this oracle: cmd/vsfs-fuzz drives it over random
// workload programs, and testdata/regressions/ replays every minimized
// divergence ever found.
package oracle

import (
	"context"
	"fmt"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/cfgfree"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/memssa"
	"vsfs/internal/obs"
	"vsfs/internal/sfs"
	"vsfs/internal/shape"
	"vsfs/internal/svfg"
	"vsfs/internal/workload"
)

// Violation is one invariant breach found by the oracle.
type Violation struct {
	// Invariant is a stable short key naming the broken property (see
	// the check* functions and DESIGN.md §8 for the full list).
	Invariant string
	// Detail is a human-readable description pinpointing the breach.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Options tunes how much of the battery runs.
type Options struct {
	// SkipResolve disables the determinism/idempotence re-solve (the
	// most expensive check: it solves both flow-sensitive analyses a
	// second time).
	SkipResolve bool
	// MaxWitnesses caps the number of (pointer, object) facts replayed
	// through the SVFG witness search; 0 means DefaultMaxWitnesses,
	// negative means unlimited.
	MaxWitnesses int
	// MaxViolations stops checking after this many violations; 0 means
	// DefaultMaxViolations, negative means unlimited.
	MaxViolations int
}

// Defaults for Options' zero values.
const (
	DefaultMaxWitnesses  = 200
	DefaultMaxViolations = 20
)

func (o Options) withDefaults() Options {
	if o.MaxWitnesses == 0 {
		o.MaxWitnesses = DefaultMaxWitnesses
	}
	if o.MaxViolations == 0 {
		o.MaxViolations = DefaultMaxViolations
	}
	return o
}

// Bundle holds one program solved by every backend — the staged
// flow-sensitive pair over clones of the same SVFG, plus the CFG-free
// solver over the raw IR — the shape every cross-analysis invariant
// needs.
type Bundle struct {
	Prog *ir.Program
	Aux  *andersen.Result
	// Graph is the pristine SVFG (no on-the-fly edges added).
	Graph *svfg.Graph
	SFS   *sfs.Result
	VSFS  *core.Result
	// CFGFree is solved on the post-memssa program, so its labels line
	// up with the SFS IN/OUT queries.
	CFGFree *cfgfree.Result
}

// SolveBundle runs the full staged pipeline once, both flow-sensitive
// main phases over independent clones of the resulting SVFG, and the
// CFG-free backend over the (memssa-rewritten) program.
func SolveBundle(prog *ir.Program) *Bundle {
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	return &Bundle{
		Prog:    prog,
		Aux:     aux,
		Graph:   g,
		SFS:     sfs.Solve(g.Clone()),
		VSFS:    core.Solve(g.Clone()),
		CFGFree: cfgfree.Solve(prog, aux),
	}
}

// checker accumulates violations up to the configured cap.
type checker struct {
	b    *Bundle
	opts Options
	out  []Violation
	full bool
}

func (c *checker) failf(invariant, format string, args ...any) {
	if c.full {
		return
	}
	c.out = append(c.out, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	if c.opts.MaxViolations > 0 && len(c.out) >= c.opts.MaxViolations {
		c.full = true
	}
}

// Check runs the whole battery on an already-solved bundle.
func Check(b *Bundle, opts Options) []Violation {
	c := &checker{b: b, opts: opts.withDefaults()}
	c.checkTopLevel()
	c.checkMemory()
	c.checkCallGraph()
	c.checkStorage()
	c.checkCheckers()
	c.checkWitnesses()
	c.checkCfgfree()
	c.checkShape()
	if !c.opts.SkipResolve {
		c.checkResolve()
		c.checkAttribution()
		c.checkParallel()
	}
	return c.out
}

// CheckProgram solves prog with every backend and checks the
// battery. The program must be finalized and never previously analysed.
func CheckProgram(prog *ir.Program, opts Options) []Violation {
	return Check(SolveBundle(prog), opts)
}

// CheckSource parses textual IR and checks it; parse failures are
// reported as a violation rather than an error so corpus replay loops
// stay simple.
func CheckSource(src string, opts Options) []Violation {
	prog, err := irparse.Parse(src)
	if err != nil {
		return []Violation{{Invariant: "parse", Detail: err.Error()}}
	}
	return CheckProgram(prog, opts)
}

// CheckSeed generates the workload program for (seed, cfg) and checks
// it.
func CheckSeed(seed int64, cfg workload.RandomConfig, opts Options) []Violation {
	return CheckProgram(workload.Random(seed, cfg), opts)
}

// checkTopLevel asserts, for every top-level pointer v:
//
//	vsfs-eq-toplevel:  pts_VSFS(v) = pts_SFS(v)   (the precision theorem)
//	sfs-subset-aux:    pts_SFS(v) ⊆ pts_aux(v)    (staging soundness)
func (c *checker) checkTopLevel() {
	b := c.b
	for id := ir.ID(1); int(id) < b.Prog.NumValues(); id++ {
		if c.full {
			return
		}
		if !b.Prog.IsPointer(id) {
			continue
		}
		sp, vp := b.SFS.PointsTo(id), b.VSFS.PointsTo(id)
		if !sp.Equal(vp) {
			c.failf("vsfs-eq-toplevel", "pts(%s): SFS %v ≠ VSFS %v", b.Prog.NameOf(id), sp, vp)
		}
		if !sp.SubsetOf(b.Aux.PointsTo(id)) {
			c.failf("sfs-subset-aux", "pts(%s): SFS %v ⊄ Andersen %v",
				b.Prog.NameOf(id), sp, b.Aux.PointsTo(id))
		}
	}
}

// checkMemory asserts the address-taken half of the precision theorem at
// every memory access ℓ and every object o it μ/χ-references:
//
//	vsfs-eq-consumed:  pt_{ξ_ℓ(o)}(o) = IN_SFS[ℓ](o)
//	vsfs-eq-yielded:   pt_{η_ℓ(o)}(o) = OUT_SFS[ℓ](o)   (stores)
//	sfs-in-subset-aux: IN_SFS[ℓ](o) ⊆ pts_aux(o)
func (c *checker) checkMemory() {
	b := c.b
	mssa := b.Graph.MSSA
	for _, f := range b.Prog.Funcs {
		if c.full {
			return
		}
		f.ForEachInstr(func(in *ir.Instr) {
			if c.full {
				return
			}
			switch in.Op {
			case ir.Load:
				mssa.MuOf(in.Label).ForEach(func(o32 uint32) {
					o := ir.ID(o32)
					ss, vs := b.SFS.InSet(in.Label, o), b.VSFS.ConsumedSet(in.Label, o)
					if !ss.Equal(vs) {
						c.failf("vsfs-eq-consumed", "load ℓ%d, %s: SFS IN %v ≠ VSFS %v",
							in.Label, b.Prog.NameOf(o), ss, vs)
					}
					if !ss.SubsetOf(b.Aux.PointsTo(o)) {
						c.failf("sfs-in-subset-aux", "load ℓ%d, %s: IN %v ⊄ Andersen %v",
							in.Label, b.Prog.NameOf(o), ss, b.Aux.PointsTo(o))
					}
				})
			case ir.Store:
				mssa.ChiOf(in.Label).ForEach(func(o32 uint32) {
					o := ir.ID(o32)
					ss, vs := b.SFS.InSet(in.Label, o), b.VSFS.ConsumedSet(in.Label, o)
					if !ss.Equal(vs) {
						c.failf("vsfs-eq-consumed", "store ℓ%d, %s: SFS IN %v ≠ VSFS %v",
							in.Label, b.Prog.NameOf(o), ss, vs)
					}
					so, vo := b.SFS.OutSet(in.Label, o), b.VSFS.YieldedSet(in.Label, o)
					if !so.Equal(vo) {
						c.failf("vsfs-eq-yielded", "store ℓ%d, %s: SFS OUT %v ≠ VSFS %v",
							in.Label, b.Prog.NameOf(o), so, vo)
					}
				})
			}
		})
	}
}

// checkCallGraph asserts per call site:
//
//	vsfs-eq-callgraph:  callees_VSFS = callees_SFS (same functions, same order)
//	sfs-cg-subset-aux:  callees_SFS ⊆ callees_aux  (indirect calls)
func (c *checker) checkCallGraph() {
	b := c.b
	for _, f := range b.Prog.Funcs {
		if c.full {
			return
		}
		f.ForEachInstr(func(in *ir.Instr) {
			if c.full || in.Op != ir.Call {
				return
			}
			sc, vc := b.SFS.CalleesOf(in), b.VSFS.CalleesOf(in)
			if len(sc) != len(vc) {
				c.failf("vsfs-eq-callgraph", "call ℓ%d: SFS %v ≠ VSFS %v", in.Label, sc, vc)
				return
			}
			for i := range sc {
				if sc[i] != vc[i] {
					c.failf("vsfs-eq-callgraph", "call ℓ%d: SFS %v ≠ VSFS %v", in.Label, sc, vc)
					return
				}
			}
			if in.IsIndirectCall() {
				aux := map[*ir.Function]bool{}
				for _, g := range b.Aux.CalleesOf(in) {
					aux[g] = true
				}
				for _, g := range sc {
					if !aux[g] {
						c.failf("sfs-cg-subset-aux", "call ℓ%d: SFS resolves %s, Andersen does not",
							in.Label, g.Name)
					}
				}
			}
		})
	}
}

// checkStorage asserts the paper's storage claim: VSFS never keeps more
// per-object points-to sets than SFS's IN/OUT maps (vsfs-storage).
func (c *checker) checkStorage() {
	if c.b.VSFS.Stats.PtsSets > c.b.SFS.Stats.PtsSets {
		c.failf("vsfs-storage", "VSFS stores %d sets, SFS %d",
			c.b.VSFS.Stats.PtsSets, c.b.SFS.Stats.PtsSets)
	}
}

// checkWitnesses replays solved facts through the SVFG witness search:
// every (v, o) with o ∈ pts_VSFS(v) and a known definition site must
// have a value-flow explanation from o's allocation to v's definition
// (witness-replay). A missing witness means the solver produced a fact
// the graph cannot justify.
func (c *checker) checkWitnesses() {
	b := c.b
	// Witness search runs on the VSFS-solved clone: it carries the
	// on-the-fly indirect edges the resolution added.
	g := b.VSFS.Graph
	prog := b.Prog

	summaries := map[ir.ID]*bitset.Sparse{}
	holds := func(x, o ir.ID) bool {
		if prog.IsPointer(x) {
			return b.VSFS.PointsTo(x).Has(uint32(o))
		}
		s := summaries[x]
		if s == nil {
			s = b.VSFS.ObjectSummary(x)
			summaries[x] = s
		}
		return s.Has(uint32(o))
	}

	checked := 0
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if c.full {
			return
		}
		if !prog.IsPointer(id) || g.DefSite[id] == 0 {
			continue
		}
		target := g.DefSite[id]
		if prog.Instrs[target].Op == ir.FunEntry {
			// Parameters have no intraprocedural definition to chain
			// back from; their facts are justified at call sites.
			continue
		}
		var bad bool
		b.VSFS.PointsTo(id).ForEach(func(o32 uint32) {
			if bad || c.full {
				return
			}
			if c.opts.MaxWitnesses > 0 && checked >= c.opts.MaxWitnesses {
				return
			}
			checked++
			o := ir.ID(o32)
			w := g.ExplainPointsTo(holds, id, o)
			if w == nil {
				c.failf("witness-replay", "no witness for %s → %s",
					prog.NameOf(id), prog.NameOf(o))
				bad = true
				return
			}
			if len(w.Steps) == 0 {
				c.failf("witness-replay", "empty witness for %s → %s",
					prog.NameOf(id), prog.NameOf(o))
				bad = true
				return
			}
			first, last := w.Steps[0], w.Steps[len(w.Steps)-1]
			if first.Instr == nil || (first.Instr.Op != ir.Alloc && first.Instr.Op != ir.Field) {
				c.failf("witness-replay", "witness for %s → %s does not start at an origin site",
					prog.NameOf(id), prog.NameOf(o))
				bad = true
				return
			}
			if last.Label != target {
				c.failf("witness-replay", "witness for %s → %s ends at ℓ%d, def site is ℓ%d",
					prog.NameOf(id), prog.NameOf(o), last.Label, target)
				bad = true
			}
		})
		if c.opts.MaxWitnesses > 0 && checked >= c.opts.MaxWitnesses {
			return
		}
	}
}

// checkCfgfree asserts the CFG-free backend's position in the precision
// chain, pointwise: fsicfg ⊆ sfs ≡ vsfs ⊆ cfgfree ⊆ andersen.
//
//	cfgfree-subset-aux:  pts_cf(x) ⊆ pts_aux(x) for every value —
//	                     soundness of the strong-update windows against
//	                     the analysis cfgfree refines
//	sfs-subset-cfgfree:  pts_SFS(v) ⊆ pts_cf(v) for top-level pointers,
//	                     IN_SFS[ℓ](o) ⊆ Consumed_cf(ℓ, o) and
//	                     OUT_SFS[ℓ](o) ⊆ Yielded_cf(ℓ, o) at every
//	                     μ/χ-referenced access — every staged
//	                     flow-sensitive fact (each of which the witness
//	                     battery justifies against the SVFG) survives in
//	                     the CFG-free answer, anchoring its soundness
//	                     from below
//	cfgfree-cg-bracket:  callees_SFS ⊆ callees_cf ⊆ callees_aux as sets
//	cfgfree-replay:      the solved result replays exactly on the
//	                     independent reference evaluator
func (c *checker) checkCfgfree() {
	b := c.b
	cf := b.CFGFree
	for id := ir.ID(1); int(id) < b.Prog.NumValues(); id++ {
		if c.full {
			return
		}
		cp := cf.PointsTo(id)
		if !cp.SubsetOf(b.Aux.PointsTo(id)) {
			c.failf("cfgfree-subset-aux", "pts(%s): cfgfree %v ⊄ Andersen %v",
				b.Prog.NameOf(id), cp, b.Aux.PointsTo(id))
		}
		if b.Prog.IsPointer(id) && !b.SFS.PointsTo(id).SubsetOf(cp) {
			c.failf("sfs-subset-cfgfree", "pts(%s): SFS %v ⊄ cfgfree %v",
				b.Prog.NameOf(id), b.SFS.PointsTo(id), cp)
		}
	}
	mssa := b.Graph.MSSA
	for _, f := range b.Prog.Funcs {
		if c.full {
			return
		}
		f.ForEachInstr(func(in *ir.Instr) {
			if c.full {
				return
			}
			switch in.Op {
			case ir.Load:
				mssa.MuOf(in.Label).ForEach(func(o32 uint32) {
					o := ir.ID(o32)
					ss, cs := b.SFS.InSet(in.Label, o), cf.ConsumedSet(in.Label, o)
					if !ss.SubsetOf(cs) {
						c.failf("sfs-subset-cfgfree", "load ℓ%d, %s: SFS IN %v ⊄ cfgfree consumed %v",
							in.Label, b.Prog.NameOf(o), ss, cs)
					}
				})
			case ir.Store:
				mssa.ChiOf(in.Label).ForEach(func(o32 uint32) {
					o := ir.ID(o32)
					ss, cs := b.SFS.InSet(in.Label, o), cf.ConsumedSet(in.Label, o)
					if !ss.SubsetOf(cs) {
						c.failf("sfs-subset-cfgfree", "store ℓ%d, %s: SFS IN %v ⊄ cfgfree consumed %v",
							in.Label, b.Prog.NameOf(o), ss, cs)
					}
					so, co := b.SFS.OutSet(in.Label, o), cf.YieldedSet(in.Label, o)
					if !so.SubsetOf(co) {
						c.failf("sfs-subset-cfgfree", "store ℓ%d, %s: SFS OUT %v ⊄ cfgfree yielded %v",
							in.Label, b.Prog.NameOf(o), so, co)
					}
				})
			case ir.Call:
				cset := map[*ir.Function]bool{}
				for _, g := range cf.CalleesOf(in) {
					cset[g] = true
				}
				for _, g := range b.SFS.CalleesOf(in) {
					if !cset[g] {
						c.failf("cfgfree-cg-bracket", "call ℓ%d: SFS resolves %s, cfgfree does not",
							in.Label, g.Name)
					}
				}
				aset := map[*ir.Function]bool{}
				for _, g := range b.Aux.CalleesOf(in) {
					aset[g] = true
				}
				for _, g := range cf.CalleesOf(in) {
					if !aset[g] {
						c.failf("cfgfree-cg-bracket", "call ℓ%d: cfgfree resolves %s, Andersen does not",
							in.Label, g.Name)
					}
				}
			}
		})
	}
	if err := cfgfree.Verify(b.Prog, b.Aux, cf); err != nil {
		c.failf("cfgfree-replay", "%v", err)
	}
}

// checkShape asserts the shape profile is a pure function of (program,
// auxiliary result): computing it twice must be bit-identical
// (shape-deterministic) — the contract the auto-backend heuristic and
// the run ledger rely on.
func (c *checker) checkShape() {
	p1 := shape.Of(c.b.Prog, c.b.Aux)
	p2 := shape.Of(c.b.Prog, c.b.Aux)
	if p1 != p2 {
		c.failf("shape-deterministic", "re-computed profile differs: %+v vs %+v", p1, p2)
	}
}

// checkAttribution re-solves every backend with a cost collector
// attached and asserts the conservation rule: per-object charges sum
// exactly to the solver-wide gauges (every counter bump pairs with one
// charge, with object 0 absorbing unattributable work). Gated with the
// re-solve battery because it solves all three backends again.
//
//	attr-conserved-pops:   Σ pops  = NodesProcessed
//	attr-conserved-props:  Σ props = Propagations
//	attr-conserved-sets:   Σ sets  = PtsSets
//	attr-conserved-melds:  Σ melds = MeldOps (VSFS versioning)
func (c *checker) checkAttribution() {
	b := c.b
	conserve := func(backend string, a *obs.ObjectAttr, pops, props, sets, melds int) {
		if a.TotalPops() != uint64(pops) {
			c.failf("attr-conserved-pops", "%s: charged %d, solver processed %d", backend, a.TotalPops(), pops)
		}
		if a.TotalProps() != uint64(props) {
			c.failf("attr-conserved-props", "%s: charged %d, solver propagated %d", backend, a.TotalProps(), props)
		}
		if a.TotalSets() != uint64(sets) {
			c.failf("attr-conserved-sets", "%s: charged %d, solver stored %d", backend, a.TotalSets(), sets)
		}
		if a.TotalMelds() != uint64(melds) {
			c.failf("attr-conserved-melds", "%s: charged %d, versioning melded %d", backend, a.TotalMelds(), melds)
		}
	}

	aS := obs.NewObjectAttr(b.Prog.NumValues())
	s2, err := sfs.SolveContext(obs.WithCollector(context.Background(), aS), b.Graph.Clone())
	if err != nil {
		c.failf("attr-conserved-pops", "SFS attributed re-solve failed: %v", err)
	} else {
		conserve("sfs", aS, s2.Stats.NodesProcessed, s2.Stats.Propagations, s2.Stats.PtsSets, 0)
	}

	aV := obs.NewObjectAttr(b.Prog.NumValues())
	v2, err := core.SolveContext(obs.WithCollector(context.Background(), aV), b.Graph.Clone())
	if err != nil {
		c.failf("attr-conserved-pops", "VSFS attributed re-solve failed: %v", err)
	} else {
		conserve("vsfs", aV, v2.Stats.NodesProcessed, v2.Stats.Propagations,
			v2.Stats.PtsSets, v2.Stats.Versioning.MeldOps)
	}

	aC := obs.NewObjectAttr(b.Prog.NumValues())
	c2, err := cfgfree.SolveContext(obs.WithCollector(context.Background(), aC), b.Prog, b.Aux)
	if err != nil {
		c.failf("attr-conserved-pops", "cfgfree attributed re-solve failed: %v", err)
	} else {
		conserve("cfgfree", aC, c2.Stats.NodesProcessed, c2.Stats.Propagations, c2.Stats.PtsSets, 0)
	}
}

// checkResolve solves both flow-sensitive analyses a second time over
// fresh clones and asserts the results are identical (solve-determinism):
// worklist scheduling and map iteration order must not leak into the
// fixpoint.
func (c *checker) checkResolve() {
	b := c.b
	sfs2 := sfs.Solve(b.Graph.Clone())
	vsfs2 := core.Solve(b.Graph.Clone())
	cf2 := cfgfree.Solve(b.Prog, b.Aux)
	for id := ir.ID(1); int(id) < b.Prog.NumValues(); id++ {
		if c.full {
			return
		}
		// The cfgfree comparison covers objects too: its global contents
		// sets are part of the fixpoint.
		if !b.CFGFree.PointsTo(id).Equal(cf2.PointsTo(id)) {
			c.failf("cfgfree-determinism", "cfgfree re-solve differs at pts(%s)", b.Prog.NameOf(id))
		}
		if !b.Prog.IsPointer(id) {
			continue
		}
		if !b.SFS.PointsTo(id).Equal(sfs2.PointsTo(id)) {
			c.failf("solve-determinism", "SFS re-solve differs at pts(%s)", b.Prog.NameOf(id))
		}
		if !b.VSFS.PointsTo(id).Equal(vsfs2.PointsTo(id)) {
			c.failf("solve-determinism", "VSFS re-solve differs at pts(%s)", b.Prog.NameOf(id))
		}
	}
	for _, f := range b.Prog.Funcs {
		if c.full {
			return
		}
		f.ForEachInstr(func(in *ir.Instr) {
			if c.full || in.Op != ir.Call {
				return
			}
			v1, v2 := b.VSFS.CalleesOf(in), vsfs2.CalleesOf(in)
			if len(v1) != len(v2) {
				c.failf("solve-determinism", "VSFS re-solve call graph differs at ℓ%d", in.Label)
				return
			}
			for i := range v1 {
				if v1[i] != v2[i] {
					c.failf("solve-determinism", "VSFS re-solve callee order differs at ℓ%d: %v vs %v",
						in.Label, v1, v2)
					return
				}
			}
			c1, c2 := b.CFGFree.CalleesOf(in), cf2.CalleesOf(in)
			if len(c1) != len(c2) {
				c.failf("cfgfree-determinism", "cfgfree re-solve call graph differs at ℓ%d", in.Label)
				return
			}
			for i := range c1 {
				if c1[i] != c2[i] {
					c.failf("cfgfree-determinism", "cfgfree re-solve callee order differs at ℓ%d: %v vs %v",
						in.Label, c1, c2)
					return
				}
			}
		})
	}
}

// CountInstrs counts the user-visible instructions of a program — the
// size metric minimized reproducers are measured by. Synthetic nodes
// (FUNENTRY/FUNEXIT/MEMPHI/CallRet) and the globals function's ALLOCs
// are excluded.
func CountInstrs(prog *ir.Program) int {
	n := 0
	for _, f := range prog.Funcs {
		if f == prog.GlobalsFunc() {
			continue
		}
		f.ForEachInstr(func(in *ir.Instr) {
			switch in.Op {
			case ir.Alloc, ir.Copy, ir.Phi, ir.Field, ir.Load, ir.Store, ir.Call:
				n++
			}
		})
	}
	return n
}
