package oracle

import (
	"testing"

	"vsfs/internal/workload"
)

// TestGatewayIdentity runs the cluster-level half of the battery: a
// gateway-routed solve — calm, and with chaos plus a killed replica —
// must be byte-identical to a direct single-server solve.
func TestGatewayIdentity(t *testing.T) {
	cfg := workload.RandomConfig{
		Funcs: 2, MaxParams: 2, InstrsPerFunc: 10, MaxFields: 2,
		HeapFrac: 0.5, IndirectCalls: true, Globals: 1, StoreFrac: 0.5,
	}
	reportAll(t, "gateway seed", CheckGatewayIdentity(workload.Random(0, cfg)))
}
