package oracle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// jsonDiffPath names the first difference between two JSON documents
// as a key path with both values rendered — `funcs[2].vars.p: "a" !=
// "b"` — so a byte-identity violation points at the offending field
// instead of leaving the maintainer to eyeball two multi-kilobyte
// reports. Returns "" when the documents are structurally equal.
// Inputs that fail to parse as JSON are diffed by byte offset.
func jsonDiffPath(a, b []byte) string {
	av, aErr := decodeJSON(a)
	bv, bErr := decodeJSON(b)
	if aErr != nil || bErr != nil {
		return byteDiff(a, b)
	}
	if msg, ok := diffValue("$", av, bv); ok {
		return msg
	}
	// Byte-unequal but structurally equal: whitespace or key-order
	// differences the decoder normalized away.
	return byteDiff(a, b)
}

// decodeJSON parses with UseNumber so large integers keep their exact
// rendering in diff output.
func decodeJSON(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// diffValue walks both values in lockstep and reports the first
// mismatch under path.
func diffValue(path string, a, b any) (string, bool) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			return fmt.Sprintf("%s: %s != %s", path, renderJSON(a), renderJSON(b)), true
		}
		var keys []string
		for k := range av {
			keys = append(keys, k)
		}
		for k := range bv {
			if _, dup := av[k]; !dup {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			x, inA := av[k]
			y, inB := bv[k]
			sub := path + "." + k
			switch {
			case !inA:
				return fmt.Sprintf("%s: missing on the left, %s on the right", sub, renderJSON(y)), true
			case !inB:
				return fmt.Sprintf("%s: %s on the left, missing on the right", sub, renderJSON(x)), true
			}
			if msg, ok := diffValue(sub, x, y); ok {
				return msg, true
			}
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			return fmt.Sprintf("%s: %s != %s", path, renderJSON(a), renderJSON(b)), true
		}
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			if msg, ok := diffValue(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i]); ok {
				return msg, true
			}
		}
		if len(av) != len(bv) {
			return fmt.Sprintf("%s: length %d != %d", path, len(av), len(bv)), true
		}
	default:
		if !scalarEqual(a, b) {
			return fmt.Sprintf("%s: %s != %s", path, renderJSON(a), renderJSON(b)), true
		}
	}
	return "", false
}

func scalarEqual(a, b any) bool {
	if an, ok := a.(json.Number); ok {
		bn, ok := b.(json.Number)
		return ok && an == bn
	}
	return a == b
}

// renderJSON shows a value compactly, truncating composites so a diff
// line stays one line.
func renderJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	const max = 60
	if len(data) > max {
		return string(data[:max]) + "..."
	}
	return string(data)
}

// byteDiff locates the first differing byte for non-JSON (or
// structurally equal but byte-unequal) payloads.
func byteDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("$: byte %d: %q != %q", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("$: length %d != %d", len(a), len(b))
	}
	return ""
}
