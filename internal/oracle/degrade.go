package oracle

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"vsfs"
	"vsfs/internal/guard"
)

// degradablePhases are the pipeline phases whose budget breach has a
// sound fallback: by the time any of them runs, the auxiliary Andersen
// result exists, so the ladder can retry on the CFG-free backend (which
// needs only the program and that result) and, failing that, answer
// from the auxiliary result itself — each rung over-approximating
// whatever the staged phases would have computed (DESIGN.md §9, §11).
var degradablePhases = []string{"memssa", "svfg", "solve"}

// violations accumulates breaches up to the configured cap, mirroring
// the solver battery's checker for the facade-level checks.
type violations struct {
	out []Violation
	max int
}

func (v *violations) failf(invariant, format string, args ...any) {
	if v.full() {
		return
	}
	v.out = append(v.out, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

func (v *violations) full() bool { return v.max > 0 && len(v.out) >= v.max }

// analyzeIR runs the facade on textual IR under the given fault plan
// and budget.
func analyzeIR(src string, mode vsfs.Mode, plan *guard.FaultPlan, b *guard.Budget) (*vsfs.Result, error) {
	ctx := context.Background()
	if plan != nil {
		ctx = guard.WithFaults(ctx, plan)
	}
	ctx = guard.WithBudget(ctx, b)
	return vsfs.AnalyzeContext(ctx, src, vsfs.Options{Mode: mode, Input: vsfs.InputIR})
}

// factsJSON projects a result onto the facts the degradation contract
// is defined over: per-function points-to sets, call graph, and checker
// findings. A run degraded before the SVFG exists reports findings at
// pre-memssa instruction labels (memssa inserts nodes and renumbers),
// so zeroLabels drops the label column for those comparisons; the facts
// themselves must still agree.
func factsJSON(r *vsfs.Result, zeroLabels bool) []byte {
	rep := r.Report()
	if zeroLabels {
		for i := range rep.Findings {
			rep.Findings[i].Label = 0
		}
	}
	data, err := vsfs.Report{Functions: rep.Functions, Findings: rep.Findings}.MarshalIndent()
	if err != nil {
		return []byte("marshal error: " + err.Error())
	}
	return data
}

// CheckDegradation forces a budget blowout in each post-auxiliary phase
// of the facade pipeline and asserts the degradation-ladder contract.
// A single breach lands the run on the intermediate rung: the result is
// marked degraded with the original cause, answers in CFG-free mode,
// and its facts are exactly a standalone -mode cfgfree run's — never a
// partial staged result. A second fault targeting the rung itself
// ("cfgfree" phase) drives the run to the bottom of the ladder, where
// the facts must be exactly the standalone Andersen run's.
//
// src is textual IR, the oracle's native format.
func CheckDegradation(src string, opts Options) []Violation {
	opts = opts.withDefaults()
	v := &violations{max: opts.MaxViolations}

	plain, err := analyzeIR(src, vsfs.FlowInsensitive, nil, nil)
	if err != nil {
		return []Violation{{Invariant: "degrade-baseline", Detail: err.Error()}}
	}
	cfree, err := analyzeIR(src, vsfs.CFGFree, nil, nil)
	if err != nil {
		return []Violation{{Invariant: "degrade-baseline", Detail: err.Error()}}
	}

	for _, phase := range degradablePhases {
		if v.full() {
			break
		}
		// A slowdown fault at the phase's first checkpoint charges a
		// huge step count, so the budget deterministically survives
		// every earlier phase and blows exactly here. The rung's fresh
		// budget then carries the run to the CFG-free result.
		plan := guard.NewFaultPlan(guard.Fault{Phase: phase, Step: 0, Kind: guard.FaultSlow})
		deg, err := analyzeIR(src, vsfs.VSFS, plan, guard.NewBudget(1<<30, 0, 0))
		if err != nil {
			v.failf("degrade-run", "%s: budget blowout became an error: %v", phase, err)
			continue
		}
		if !deg.Degraded() || deg.Degradation() == "" {
			v.failf("degrade-flag", "%s: over-budget run not marked degraded", phase)
			continue
		}
		if deg.Mode() != vsfs.CFGFree {
			v.failf("degrade-mode", "%s: degraded mode = %v, want the CFG-free rung", phase, deg.Mode())
			continue
		}
		causePhase, _ := deg.DegradedCause()
		if causePhase != phase {
			v.failf("degrade-cause", "%s: degradation attributed to %q", phase, causePhase)
		}
		// The degraded program went through (part of) the memory-SSA
		// rewrite, so labels differ from the standalone run's raw
		// program even though the facts agree; compare label-free.
		if dj, cj := factsJSON(deg, true), factsJSON(cfree, true); !bytes.Equal(dj, cj) {
			v.failf("degrade-eq-cfgfree", "%s: degraded facts differ from standalone cfgfree at %s",
				phase, jsonDiffPath(dj, cj))
		}
		if deg.Dump() != cfree.Dump() {
			v.failf("degrade-eq-cfgfree", "%s: degraded Dump differs from standalone cfgfree", phase)
		}
		rep := deg.Report()
		if !rep.Degraded || rep.Degradation == "" {
			v.failf("degrade-report", "%s: report does not carry the degradation marker", phase)
		}

		// Ladder bottom: breach the rung too. Provenance must keep
		// naming the original breach and the facts must be Andersen's.
		if v.full() {
			break
		}
		plan = guard.NewFaultPlan(
			guard.Fault{Phase: phase, Step: 0, Kind: guard.FaultSlow},
			guard.Fault{Phase: "cfgfree", Step: 0, Kind: guard.FaultSlow},
		)
		bot, err := analyzeIR(src, vsfs.VSFS, plan, guard.NewBudget(1<<30, 0, 0))
		if err != nil {
			v.failf("degrade-run", "%s+cfgfree: double blowout became an error: %v", phase, err)
			continue
		}
		if !bot.Degraded() || bot.Mode() != vsfs.FlowInsensitive {
			v.failf("degrade-mode", "%s+cfgfree: mode = %v, want the flow-insensitive bottom", phase, bot.Mode())
			continue
		}
		if causePhase, _ := bot.DegradedCause(); causePhase != phase {
			v.failf("degrade-cause", "%s+cfgfree: degradation attributed to %q, want the original breach", phase, causePhase)
		}
		if bj, pj := factsJSON(bot, true), factsJSON(plain, true); !bytes.Equal(bj, pj) {
			v.failf("degrade-eq-aux", "%s+cfgfree: ladder-bottom facts differ from standalone Andersen at %s",
				phase, jsonDiffPath(bj, pj))
		}
		if bot.Dump() != plain.Dump() {
			v.failf("degrade-eq-aux", "%s+cfgfree: ladder-bottom Dump differs from standalone Andersen", phase)
		}
	}
	return v.out
}

// CheckFaults is the fault-injection battery: it derives a
// deterministic fault from seed, runs the facade under it with finite
// budgets, and asserts the only possible outcomes are the governed
// ones — a typed phase/budget error or a sound result. An escaped
// panic would kill the harness process, which is exactly what the
// battery exists to rule out.
func CheckFaults(src string, seed int64, opts Options) []Violation {
	opts = opts.withDefaults()
	v := &violations{max: opts.MaxViolations}

	baseline, err := analyzeIR(src, vsfs.VSFS, nil, nil)
	if err != nil {
		return []Violation{{Invariant: "fault-baseline", Detail: err.Error()}}
	}
	baseDump := baseline.Dump()

	// Panic isolation: a panic injected into any phase must surface as
	// a *guard.PhaseError naming that phase, never a partial result.
	for _, phase := range guard.PipelinePhases {
		if v.full() {
			return v.out
		}
		plan := guard.NewFaultPlan(guard.Fault{Phase: phase, Step: 0, Kind: guard.FaultPanic})
		res, err := analyzeIR(src, vsfs.VSFS, plan, nil)
		var pe *guard.PhaseError
		if !errors.As(err, &pe) {
			v.failf("fault-panic-isolated", "%s: injected panic produced err %v, want *PhaseError", phase, err)
			continue
		}
		if pe.Phase != phase {
			v.failf("fault-panic-isolated", "%s: PhaseError.Phase = %q", phase, pe.Phase)
		}
		if _, ok := pe.Value.(*guard.InjectedPanic); !ok {
			v.failf("fault-panic-isolated", "%s: PhaseError.Value = %v, want *InjectedPanic", phase, pe.Value)
		}
		if res != nil {
			v.failf("fault-panic-isolated", "%s: panicked run also returned a result", phase)
		}
	}

	// Seeded fault: whatever it does, the outcome must be one of the
	// governed shapes, and any returned result must be sound.
	plan := guard.SeededPlan(seed)
	res, err := analyzeIR(src, vsfs.VSFS, plan, guard.NewBudget(1<<30, 1<<40, 0))
	switch {
	case err != nil:
		var pe *guard.PhaseError
		var be *guard.ErrBudgetExceeded
		switch {
		case errors.As(err, &pe):
			if _, ok := pe.Value.(*guard.InjectedPanic); !ok {
				v.failf("fault-organic-panic", "seed %d: organic panic under faults: %v", seed, pe)
			}
		case errors.As(err, &be):
			// Only the phases without a fallback may fail outright on
			// budget; later breaches must degrade instead.
			if be.Phase != "parse" && be.Phase != "andersen" {
				v.failf("fault-no-fallback", "seed %d: %s-phase breach returned an error instead of degrading", seed, be.Phase)
			}
		default:
			v.failf("fault-untyped-error", "seed %d: ungoverned error: %v", seed, err)
		}
	case res.Degraded():
		// The ladder has two rungs; compare against the standalone run
		// of whichever backend actually answered.
		switch res.Mode() {
		case vsfs.CFGFree:
			cfree, perr := analyzeIR(src, vsfs.CFGFree, nil, nil)
			if perr != nil {
				v.failf("fault-baseline", "seed %d: standalone cfgfree failed: %v", seed, perr)
				break
			}
			if rj, cj := factsJSON(res, true), factsJSON(cfree, true); !bytes.Equal(rj, cj) {
				v.failf("degrade-eq-cfgfree", "seed %d: degraded facts differ from standalone cfgfree at %s",
					seed, jsonDiffPath(rj, cj))
			}
		case vsfs.FlowInsensitive:
			plain, perr := analyzeIR(src, vsfs.FlowInsensitive, nil, nil)
			if perr != nil {
				v.failf("fault-baseline", "seed %d: standalone Andersen failed: %v", seed, perr)
				break
			}
			if rj, pj := factsJSON(res, true), factsJSON(plain, true); !bytes.Equal(rj, pj) {
				v.failf("degrade-eq-aux", "seed %d: degraded facts differ from standalone Andersen at %s",
					seed, jsonDiffPath(rj, pj))
			}
		default:
			v.failf("degrade-mode", "seed %d: degraded run answers in mode %v", seed, res.Mode())
		}
	default:
		// The fault did not bite (e.g. its step index was past the
		// phase's checkpoints): the result must be the baseline's.
		if res.Dump() != baseDump {
			v.failf("fault-unsound-result", "seed %d: non-degraded faulted run differs from fault-free run", seed)
		}
	}
	return v.out
}
