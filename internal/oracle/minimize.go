package oracle

import (
	"strings"

	"vsfs/internal/ir"
	"vsfs/internal/irparse"
)

// Minimize delta-debugs an IR program down to a small reproducer: it
// repeatedly deletes functions, globals, and instruction lines from the
// textual form, keeping every deletion under which the program still
// parses, finalizes, and fails the predicate. The result is a local
// minimum — removing any single remaining line either breaks the
// program or makes the failure disappear.
//
// fails must be deterministic; it is called once per candidate, so its
// cost dominates minimization time. If src does not fail to begin with,
// Minimize returns src unchanged.
func Minimize(src string, fails func(prog *ir.Program) bool) string {
	lines := strings.Split(src, "\n")
	alive := make([]bool, len(lines))
	for i := range alive {
		alive[i] = true
	}

	render := func(keep []bool) string {
		var b strings.Builder
		for i, l := range lines {
			if keep[i] {
				b.WriteString(l)
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	try := func(keep []bool) bool {
		prog, err := irparse.Parse(render(keep))
		if err != nil {
			return false
		}
		return fails(prog)
	}

	if !try(alive) {
		return src
	}

	without := func(from, to int) []bool {
		cand := make([]bool, len(alive))
		copy(cand, alive)
		for i := from; i < to && i < len(cand); i++ {
			cand[i] = false
		}
		return cand
	}

	for changed := true; changed; {
		changed = false

		// Pass 1: drop whole functions (their callers fail to parse, so
		// only unreferenced functions actually go).
		for _, span := range funcSpans(lines, alive) {
			cand := without(span.start, span.end+1)
			if try(cand) {
				alive = cand
				changed = true
			}
		}

		// Pass 2: ddmin over the remaining deletable lines, halving the
		// chunk size down to single lines.
		cands := deletableLines(lines, alive)
		for size := len(cands); size >= 1; size /= 2 {
			for lo := 0; lo < len(cands); lo += size {
				hi := lo + size
				if hi > len(cands) {
					hi = len(cands)
				}
				cand := make([]bool, len(alive))
				copy(cand, alive)
				removed := false
				for _, idx := range cands[lo:hi] {
					if cand[idx] {
						cand[idx] = false
						removed = true
					}
				}
				if removed && try(cand) {
					alive = cand
					changed = true
				}
			}
			if size == 1 {
				break
			}
		}
	}

	// Normalize: parse the survivor and print it back, so corpus files
	// are in canonical form regardless of the original's layout.
	out := render(alive)
	if prog, err := irparse.Parse(out); err == nil {
		return prog.String()
	}
	return out
}

type span struct{ start, end int }

// funcSpans returns the line ranges of function definitions that are
// still fully alive.
func funcSpans(lines []string, alive []bool) []span {
	var out []span
	for i := 0; i < len(lines); i++ {
		if !alive[i] || !strings.HasPrefix(strings.TrimSpace(lines[i]), "func ") {
			continue
		}
		for j := i + 1; j < len(lines); j++ {
			if alive[j] && strings.TrimSpace(lines[j]) == "}" {
				out = append(out, span{start: i, end: j})
				i = j
				break
			}
		}
	}
	return out
}

// deletableLines lists alive line indices that are plausible single
// deletions: instruction and global lines, but not structure (func
// headers, closing braces, block labels). Structural lines fall out via
// the function pass or stay; deleting them alone only yields parse
// errors.
func deletableLines(lines []string, alive []bool) []int {
	var out []int
	for i, l := range lines {
		if !alive[i] {
			continue
		}
		t := strings.TrimSpace(l)
		switch {
		case t == "" || t == "}":
		case strings.HasPrefix(t, "func "):
		case strings.HasSuffix(t, ":"):
		case strings.HasPrefix(t, "//") || strings.HasPrefix(t, "#"):
		default:
			out = append(out, i)
		}
	}
	return out
}
