package oracle

import (
	"testing"

	"vsfs"
	"vsfs/internal/guard"
	"vsfs/internal/workload"
)

// TestCheckParallelHolds runs the facade-level parallel contract over
// random workload programs: every worker count produces the sequential
// facts, and every worker count ≥ 2 produces byte-identical reports.
func TestCheckParallelHolds(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		src := workload.Random(seed, workload.DefaultRandomConfig()).String()
		if vs := CheckParallel(src, Options{}); len(vs) > 0 {
			for _, v := range vs {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
	}
}

// TestParallelDegradesDownLadder: a parallel request whose solve
// breaches the budget must walk the same degradation ladder as a
// sequential one — landing on the (sequential) CFG-free rung with the
// breach attributed to the solve phase — and, having degraded onto a
// sequential backend, must not report a parallel schedule.
func TestParallelDegradesDownLadder(t *testing.T) {
	src := workload.Random(3, workload.DefaultRandomConfig()).String()
	plan := guard.NewFaultPlan(guard.Fault{Phase: "solve", Step: 0, Kind: guard.FaultSlow})
	ctx := guard.WithFaults(guard.WithBudget(t.Context(), guard.NewBudget(1<<30, 0, 0)), plan)
	res, err := vsfs.AnalyzeContext(ctx, src, vsfs.Options{Mode: vsfs.VSFS, Input: vsfs.InputIR, Parallel: 4})
	if err != nil {
		t.Fatalf("budget blowout became an error: %v", err)
	}
	if !res.Degraded() || res.Mode() != vsfs.CFGFree {
		t.Fatalf("degraded=%v mode=%v, want a degraded CFG-free run", res.Degraded(), res.Mode())
	}
	if phase, _ := res.DegradedCause(); phase != "solve" {
		t.Fatalf("degradation attributed to %q, want solve", phase)
	}
	if res.Parallelism() != nil {
		t.Fatal("degraded sequential rung still reports parallel schedule stats")
	}
}
