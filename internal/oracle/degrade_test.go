package oracle

import (
	"testing"

	"vsfs/internal/workload"
)

// TestCheckDegradationHolds runs the degradation contract over a few
// random workload programs: forcing a budget blowout in any
// post-auxiliary phase must yield exactly the standalone Andersen
// result, marked degraded.
func TestCheckDegradationHolds(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		src := workload.Random(seed, workload.DefaultRandomConfig()).String()
		if vs := CheckDegradation(src, Options{}); len(vs) > 0 {
			for _, v := range vs {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
	}
}

// TestCheckFaultsHolds runs the fault battery: injected panics in every
// phase stay isolated, and seeded faults can only produce governed
// outcomes.
func TestCheckFaultsHolds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		src := workload.Random(seed, workload.DefaultRandomConfig()).String()
		if vs := CheckFaults(src, seed, Options{}); len(vs) > 0 {
			for _, v := range vs {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
	}
}
