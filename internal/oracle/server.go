package oracle

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"vsfs/internal/ir"
	"vsfs/internal/server"
)

// CheckServerIdentity exercises the daemon's cache and single-flight
// layers against the cold-solve result for prog:
//
//	server-cache-identity:        per mode (vsfs and cfgfree), a cache
//	                              hit's body is byte-identical to the
//	                              miss that populated it, and marked as
//	                              a hit.
//	server-mode-cache-separation: the two modes' responses differ (the
//	                              mode field at minimum), so a shared
//	                              cache entry would be a cache-key bug.
//	server-flight-identity:       N concurrent identical requests
//	                              against a cold server all return
//	                              bodies byte-identical to each other
//	                              and to the cold solve.
//
// Responses are deterministic by design (sorted keys everywhere), so
// byte equality is the correct notion of "same result".
func CheckServerIdentity(prog *ir.Program) []Violation {
	src := prog.String()
	var out []Violation
	failf := func(invariant, format string, args ...any) {
		out = append(out, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	post := func(ts *httptest.Server, mode string) (int, string, []byte, error) {
		body := fmt.Sprintf(`{"source": %q, "lang": "ir", "mode": %q}`, src, mode)
		resp, err := http.Post(ts.URL+"/analyze", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, "", nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return 0, "", nil, err
		}
		return resp.StatusCode, resp.Header.Get("X-Vsfs-Cache"), buf.Bytes(), nil
	}

	closeAll := func(srv *server.Server, ts *httptest.Server) {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	}

	// Per-mode cold solve, then a cache hit — both modes on ONE server,
	// so a cache key that ignored the mode would cross-contaminate.
	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	coldByMode := map[string][]byte{}
	for _, mode := range []string{"vsfs", "cfgfree"} {
		coldStatus, coldCache, coldBody, err := post(ts, mode)
		if err != nil {
			closeAll(srv, ts)
			failf("server-cache-identity", "%s: cold request failed: %v", mode, err)
			return out
		}
		if coldStatus != http.StatusOK {
			closeAll(srv, ts)
			failf("server-cache-identity", "%s: cold solve returned %d: %s", mode, coldStatus, coldBody)
			return out
		}
		if coldCache != "miss" {
			failf("server-cache-identity", "%s: cold solve marked %q, want miss", mode, coldCache)
		}
		coldByMode[mode] = coldBody
		warmStatus, warmCache, warmBody, err := post(ts, mode)
		if err != nil || warmStatus != http.StatusOK {
			closeAll(srv, ts)
			failf("server-cache-identity", "%s: warm request failed: status %d, err %v", mode, warmStatus, err)
			return out
		}
		if warmCache != "hit" {
			failf("server-cache-identity", "%s: repeat request marked %q, want hit", mode, warmCache)
		}
		if !bytes.Equal(coldBody, warmBody) {
			failf("server-cache-identity", "%s: cache hit body differs from the miss that populated it at %s",
				mode, jsonDiffPath(coldBody, warmBody))
		}
	}
	closeAll(srv, ts)
	if bytes.Equal(coldByMode["vsfs"], coldByMode["cfgfree"]) {
		failf("server-mode-cache-separation",
			"vsfs and cfgfree responses are byte-identical; the mode is not reaching the solve or the cache key")
	}

	// Concurrent identical requests against a fresh (cold) server: the
	// single-flight layer must hand every waiter the same result, and
	// that result must match the independent cold solve above.
	const concurrent = 8
	srv2 := server.New(server.Config{Workers: 2})
	ts2 := httptest.NewServer(srv2)
	bodies := make([][]byte, concurrent)
	errs := make([]error, concurrent)
	statuses := make([]int, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, bodies[i], errs[i] = post(ts2, "vsfs")
		}(i)
	}
	wg.Wait()
	closeAll(srv2, ts2)
	for i := 0; i < concurrent; i++ {
		if errs[i] != nil || statuses[i] != http.StatusOK {
			failf("server-flight-identity", "concurrent request %d failed: status %d, err %v",
				i, statuses[i], errs[i])
			return out
		}
		if !bytes.Equal(bodies[i], coldByMode["vsfs"]) {
			failf("server-flight-identity", "concurrent request %d body differs from cold solve", i)
			return out
		}
	}
	return out
}
