package oracle

import (
	"bytes"
	"context"
	"reflect"
	"runtime"

	"vsfs"
	"vsfs/internal/core"
	"vsfs/internal/ir"
)

// parallelWitnessWorkers is the worker count the battery solves with —
// enough to exercise real shard contention without oversubscribing CI
// runners.
const parallelWitnessWorkers = 4

// checkParallel asserts the parallel engine's contract at the core
// layer (parallel-eq-sequential): the sharded bulk-synchronous solve
// lands on exactly the sequential fixpoint — same top-level sets, same
// consumed/yielded sets at every memory access, same resolved call
// graph — and a second solve at a different worker count is identical
// to the first (parallel-determinism). Gated with the re-solve battery
// because it solves VSFS twice more.
func (c *checker) checkParallel() {
	b := c.b
	p1 := core.SolveParallel(b.Graph.Clone(), parallelWitnessWorkers)
	c.compareVSFS("parallel-eq-sequential", b.VSFS, p1)
	if c.full {
		return
	}
	p2 := core.SolveParallel(b.Graph.Clone(), 2*parallelWitnessWorkers)
	c.compareVSFS("parallel-determinism", p1, p2)
	// Everything in the stats except wall clock, the requested worker
	// count, and the steal tally must be schedule-independent.
	s1, s2 := normalizeParallelStats(p1.Stats), normalizeParallelStats(p2.Stats)
	if !reflect.DeepEqual(s1, s2) {
		c.failf("parallel-determinism", "stats differ between %d and %d workers: %+v vs %+v",
			parallelWitnessWorkers, 2*parallelWitnessWorkers, s1, s2)
	}
}

func normalizeParallelStats(s core.Stats) core.Stats {
	s.SolveTime = 0
	s.Versioning.Duration = 0
	if s.Parallel != nil {
		ps := *s.Parallel
		ps.Workers = 0
		ps.Steals = 0
		s.Parallel = &ps
	}
	return s
}

// compareVSFS asserts two VSFS results agree on every queryable fact.
func (c *checker) compareVSFS(invariant string, a, b2 *core.Result) {
	b := c.b
	for id := ir.ID(1); int(id) < b.Prog.NumValues(); id++ {
		if c.full {
			return
		}
		if b.Prog.IsPointer(id) && !a.PointsTo(id).Equal(b2.PointsTo(id)) {
			c.failf(invariant, "pts(%s): %v ≠ %v", b.Prog.NameOf(id), a.PointsTo(id), b2.PointsTo(id))
		}
		if b.Prog.Value(id).Kind == ir.Object && !a.ObjectSummary(id).Equal(b2.ObjectSummary(id)) {
			c.failf(invariant, "object summary of %s differs", b.Prog.NameOf(id))
		}
	}
	mssa := b.Graph.MSSA
	for _, f := range b.Prog.Funcs {
		if c.full {
			return
		}
		f.ForEachInstr(func(in *ir.Instr) {
			if c.full {
				return
			}
			switch in.Op {
			case ir.Load:
				mssa.MuOf(in.Label).ForEach(func(o32 uint32) {
					o := ir.ID(o32)
					if !a.ConsumedSet(in.Label, o).Equal(b2.ConsumedSet(in.Label, o)) {
						c.failf(invariant, "load ℓ%d, %s: consumed sets differ", in.Label, b.Prog.NameOf(o))
					}
				})
			case ir.Store:
				mssa.ChiOf(in.Label).ForEach(func(o32 uint32) {
					o := ir.ID(o32)
					if !a.ConsumedSet(in.Label, o).Equal(b2.ConsumedSet(in.Label, o)) {
						c.failf(invariant, "store ℓ%d, %s: consumed sets differ", in.Label, b.Prog.NameOf(o))
					}
					if !a.YieldedSet(in.Label, o).Equal(b2.YieldedSet(in.Label, o)) {
						c.failf(invariant, "store ℓ%d, %s: yielded sets differ", in.Label, b.Prog.NameOf(o))
					}
				})
			case ir.Call:
				ac, bc := a.CalleesOf(in), b2.CalleesOf(in)
				if len(ac) != len(bc) {
					c.failf(invariant, "call ℓ%d: callee counts differ (%d vs %d)", in.Label, len(ac), len(bc))
					return
				}
				for i := range ac {
					if ac[i] != bc[i] {
						c.failf(invariant, "call ℓ%d: callee %d differs (%s vs %s)",
							in.Label, i, ac[i].Name, bc[i].Name)
						return
					}
				}
			}
		})
	}
}

// parallelReportJSON renders a run's report with the schedule-shaped
// effort counters zeroed. A parallel schedule pops nodes in a different
// order than the sequential one, so NodesProcessed, Propagations,
// Changed, WorklistHighWater, MeldOps, MeldIterations, and
// DistinctVersions legitimately differ between the two engines (each is
// internally deterministic); every remaining byte — facts, findings,
// shape, and the fixpoint-shaped counters PtsSets and Prelabels — must
// agree.
func parallelReportJSON(r *vsfs.Result) []byte {
	rep := r.Report()
	rep.Stats.NodesProcessed = 0
	rep.Stats.Propagations = 0
	rep.Stats.Changed = 0
	rep.Stats.WorklistHighWater = 0
	rep.Stats.MeldOps = 0
	rep.Stats.MeldIterations = 0
	rep.Stats.DistinctVersions = 0
	data, err := rep.MarshalIndent()
	if err != nil {
		return []byte("marshal error: " + err.Error())
	}
	return data
}

// fullReportJSON renders a report verbatim, for comparisons where full
// byte identity is the contract.
func fullReportJSON(r *vsfs.Result) []byte {
	data, err := r.Report().MarshalIndent()
	if err != nil {
		return []byte("marshal error: " + err.Error())
	}
	return data
}

// analyzeIRWorkers runs the facade on textual IR with the parallel
// knob set.
func analyzeIRWorkers(src string, workers int) (*vsfs.Result, error) {
	return vsfs.AnalyzeContext(context.Background(), src,
		vsfs.Options{Mode: vsfs.VSFS, Input: vsfs.InputIR, Parallel: workers})
}

// CheckParallel asserts the facade-level parallel contract on textual
// IR:
//
//	parallel-eq-sequential: a -parallel N run's facts, findings, and
//	    Dump are identical to the sequential run's, and its report is
//	    byte-identical after zeroing the schedule-shaped effort
//	    counters — the invariant that makes parallelism a pure
//	    latency/CPU trade.
//	parallel-determinism:   every worker count ≥ 2 produces a
//	    byte-identical full report (counters included), and so does the
//	    same worker count under a different GOMAXPROCS — the invariant
//	    the server's single parallel cache-key class rests on.
func CheckParallel(src string, opts Options) []Violation {
	opts = opts.withDefaults()
	v := &violations{max: opts.MaxViolations}

	seq, err := analyzeIRWorkers(src, 0)
	if err != nil {
		return []Violation{{Invariant: "parallel-baseline", Detail: err.Error()}}
	}
	if seq.Parallelism() != nil {
		v.failf("parallel-baseline", "sequential run reports parallel schedule stats")
	}

	var ref *vsfs.Result
	for _, w := range []int{2, 4, 8} {
		if v.full() {
			return v.out
		}
		par, err := analyzeIRWorkers(src, w)
		if err != nil {
			v.failf("parallel-run", "workers=%d: %v", w, err)
			continue
		}
		ps := par.Parallelism()
		if ps == nil {
			v.failf("parallel-run", "workers=%d: no parallel schedule stats recorded", w)
			continue
		}
		if ps.Workers < 2 || ps.Workers > core.ShardCount {
			v.failf("parallel-run", "workers=%d: engine ran with %d workers, outside [2, %d]",
				w, ps.Workers, core.ShardCount)
		}
		if par.Dump() != seq.Dump() {
			v.failf("parallel-eq-sequential", "workers=%d: Dump differs from sequential run", w)
		}
		if pj, sj := parallelReportJSON(par), parallelReportJSON(seq); !bytes.Equal(pj, sj) {
			v.failf("parallel-eq-sequential", "workers=%d: report (schedule counters zeroed) differs from sequential run at %s",
				w, jsonDiffPath(pj, sj))
		}
		if ref == nil {
			ref = par
			continue
		}
		if pj, rj := fullReportJSON(par), fullReportJSON(ref); !bytes.Equal(pj, rj) {
			v.failf("parallel-determinism", "workers=%d: full report differs from workers=2 run at %s",
				w, jsonDiffPath(pj, rj))
		}
	}
	if v.full() || ref == nil {
		return v.out
	}

	// The schedule must also be blind to GOMAXPROCS: the engine's worker
	// count is the knob, not the runtime's.
	old := runtime.GOMAXPROCS(1)
	single, err := analyzeIRWorkers(src, 2)
	runtime.GOMAXPROCS(old)
	if err != nil {
		v.failf("parallel-run", "GOMAXPROCS=1: %v", err)
		return v.out
	}
	if sj, rj := fullReportJSON(single), fullReportJSON(ref); !bytes.Equal(sj, rj) {
		v.failf("parallel-determinism", "GOMAXPROCS=1 full report differs from unrestricted run at %s",
			jsonDiffPath(sj, rj))
	}
	return v.out
}
