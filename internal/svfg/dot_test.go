package svfg

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	g := buildTestGraph(t, `
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  store p, x
  v = load p
  ret
}
`)
	var b strings.Builder
	if err := g.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph svfg",
		`label="main"`,
		"alloc a",
		"*p = x",
		"v = *p",
		"style=dashed", // the indirect store→load edge
		"color=gray",   // a direct edge
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDotDeltaStyling(t *testing.T) {
	g := buildTestGraph(t, src) // has an indirect call
	var b strings.Builder
	if err := g.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "peripheries=2") {
		t.Error("δ nodes not doubled in dot output")
	}
}
