package svfg

import (
	"fmt"
	"strings"

	"vsfs/internal/ir"
)

// WitnessStep is one hop of a value-flow explanation.
type WitnessStep struct {
	Label uint32
	Instr *ir.Instr
	Note  string
}

// Witness is a value-flow path explaining why a pointer may point to an
// object: it starts at one of the object's origin sites (an allocation,
// or the FIELD instruction that derived a field object) and follows
// direct (top-level) and indirect (through-memory) value-flow edges to
// the pointer's definition.
type Witness struct {
	Var   ir.ID
	Obj   ir.ID
	Steps []WitnessStep
}

// Format renders the witness for humans.
func (w *Witness) Format(prog *ir.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "why may %s point to %s:\n", prog.NameOf(w.Var), prog.NameOf(w.Obj))
	for i, s := range w.Steps {
		fmt.Fprintf(&b, "  %2d. [%s] ℓ%d %s\n", i+1, s.Note, s.Label, describe(prog, s.Instr))
	}
	return b.String()
}

// ExplainPointsTo searches the SVFG for a value-flow witness from obj's
// allocation site to the definition of v, exploring the same flows the
// solvers propagate along — direct def-use edges via variables whose
// points-to sets contain obj, interprocedural argument/return copies,
// and indirect edges labelled with objects that may hold obj. The
// membership oracle holds(x, o) answers from solved facts: for a
// pointer x its points-to set, for an object x its summary.
//
// It returns nil if v's definition is unreachable from the allocation
// under the oracle — which, for a sound solver, means pts(v) should not
// contain obj. The witness is an explanation aid, not a proof: the path
// is feasible in the SVFG over-approximation, like the analysis result
// itself.
func (g *Graph) ExplainPointsTo(holds func(x ir.ID, o ir.ID) bool, v, obj ir.ID) *Witness {
	prog := g.Prog

	// Find every origin site of obj. Most objects have exactly one
	// allocation, but a function object is re-allocated by every
	// funcaddr of its function, and a field object is born at FIELD
	// instructions, not allocations: a FIELD's def holds only objects
	// the instruction itself derived, so holds(def, obj) identifies the
	// deriving sites without re-running the analysis. Seeding the search
	// from one arbitrary site (as this function once did) made witnesses
	// for facts reached from the other sites unfindable.
	var origins []*ir.Instr
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			switch {
			case in.Op == ir.Alloc && in.Obj == obj:
				origins = append(origins, in)
			case in.Op == ir.Field && in.Def != ir.None && holds(in.Def, obj):
				origins = append(origins, in)
			}
		})
	}
	if len(origins) == 0 {
		return nil
	}

	target := g.DefSite[v]
	if target == 0 {
		return nil
	}

	// Breadth-first search over value-flow successors. A state is a
	// node; we move along direct edges def(x)→use when x may point to
	// obj, and along indirect edges ℓ --o--> ℓ' when o may hold obj.
	type edgeKind struct {
		to   uint32
		note string
	}
	succsOf := func(l uint32) []edgeKind {
		in := prog.Instrs[l]
		var out []edgeKind
		// Direct: the defined variable's users, if the def may carry obj.
		def := in.Def
		if in.Op == ir.FunEntry {
			for _, p := range in.Uses {
				if holds(p, obj) {
					for _, u := range g.UsersOf(p) {
						out = append(out, edgeKind{to: u, note: "via " + prog.NameOf(p)})
					}
				}
			}
		} else if def != ir.None && holds(def, obj) {
			for _, u := range g.UsersOf(def) {
				out = append(out, edgeKind{to: u, note: "via " + prog.NameOf(def)})
			}
		}
		// Calls: actuals flow to formals of resolved callees.
		if in.Op == ir.Call {
			for _, callee := range g.Aux.CalleesOf(in) {
				args := in.CallArgs()
				for i, a := range args {
					if i >= len(callee.Params) {
						break
					}
					if holds(a, obj) {
						out = append(out, edgeKind{to: callee.EntryInstr.Label,
							note: "arg " + prog.NameOf(a)})
					}
				}
			}
		}
		// Returns: funexit flows to call sites' results.
		if in.Op == ir.FunExit && in.Parent.Ret != ir.None && holds(in.Parent.Ret, obj) {
			for _, f := range prog.Funcs {
				f.ForEachInstr(func(c *ir.Instr) {
					if c.Op != ir.Call || c.Def == ir.None {
						return
					}
					for _, callee := range g.Aux.CalleesOf(c) {
						if callee == in.Parent {
							out = append(out, edgeKind{to: c.Label, note: "return"})
						}
					}
				})
			}
		}
		// Indirect: memory flows for objects that may hold obj.
		if m := g.indirOut[l]; m != nil {
			for o, succs := range m {
				if !holds(o, obj) {
					continue
				}
				for _, s := range succs {
					out = append(out, edgeKind{to: s, note: "in " + prog.NameOf(o)})
				}
			}
		}
		return out
	}

	type visit struct {
		label uint32
		prev  int
		note  string
	}
	var visits []visit
	seen := map[uint32]bool{}
	for _, origin := range origins {
		if seen[origin.Label] {
			continue
		}
		seen[origin.Label] = true
		note := "allocation"
		if origin.Op == ir.Field {
			note = "field address"
		}
		visits = append(visits, visit{label: origin.Label, prev: -1, note: note})
	}
	for i := 0; i < len(visits); i++ {
		cur := visits[i]
		if cur.label == target {
			// Reconstruct.
			var steps []WitnessStep
			for j := i; j >= 0; j = visits[j].prev {
				steps = append(steps, WitnessStep{
					Label: visits[j].label,
					Instr: prog.Instrs[visits[j].label],
					Note:  visits[j].note,
				})
			}
			// Reverse into source order.
			for a, b := 0, len(steps)-1; a < b; a, b = a+1, b-1 {
				steps[a], steps[b] = steps[b], steps[a]
			}
			return &Witness{Var: v, Obj: obj, Steps: steps}
		}
		for _, e := range succsOf(cur.label) {
			if seen[e.to] {
				continue
			}
			seen[e.to] = true
			visits = append(visits, visit{label: e.to, prev: i, note: e.note})
		}
	}
	return nil
}
