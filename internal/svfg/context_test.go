package svfg

import (
	"context"
	"errors"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/irparse"
	"vsfs/internal/memssa"
)

func TestBuildContextCancelled(t *testing.T) {
	prog, err := irparse.Parse(`
func main() {
entry:
  p = alloc a 0
  x = alloc b 0
  store p, x
  y = load p
  ret
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := BuildContext(ctx, prog, aux, mssa)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildContext on cancelled ctx: g=%v err=%v, want context.Canceled", g, err)
	}
}
