package svfg

import (
	"fmt"
	"io"
	"sort"

	"vsfs/internal/ir"
)

// WriteDot renders the SVFG in Graphviz dot format: one node per
// instruction grouped into per-function clusters, solid edges for
// top-level (direct) value flows and dashed edges labelled with the
// object for indirect flows. δ nodes are drawn doubled. Intended for
// small programs — the output grows with the graph.
func (g *Graph) WriteDot(w io.Writer) error {
	prog := g.Prog
	if _, err := fmt.Fprintln(w, "digraph svfg {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=TB;`)
	fmt.Fprintln(w, `  node [shape=box, fontname="monospace", fontsize=10];`)

	for fi, f := range prog.Funcs {
		fmt.Fprintf(w, "  subgraph cluster_%d {\n    label=%q;\n", fi, f.Name)
		f.ForEachInstr(func(in *ir.Instr) {
			label := fmt.Sprintf("ℓ%d: %s", in.Label, describe(prog, in))
			attrs := ""
			if g.Delta[in.Label] {
				attrs = ", peripheries=2"
			}
			if in.Op == ir.Store {
				attrs += ", style=bold"
			}
			fmt.Fprintf(w, "    n%d [label=%q%s];\n", in.Label, label, attrs)
		})
		fmt.Fprintln(w, "  }")
	}

	// Direct (top-level) def-use edges.
	for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
		def := g.DefSite[v]
		if def == 0 {
			continue
		}
		for _, use := range g.users[v] {
			fmt.Fprintf(w, "  n%d -> n%d [color=gray, label=%q, fontsize=8];\n",
				def, use, prog.NameOf(v))
		}
	}

	// Indirect (object) value-flow edges, deterministically ordered.
	for from := range g.indirOut {
		m := g.indirOut[from]
		if m == nil {
			continue
		}
		objs := make([]ir.ID, 0, len(m))
		for o := range m {
			objs = append(objs, o)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		for _, o := range objs {
			for _, to := range m[o] {
				fmt.Fprintf(w, "  n%d -> n%d [style=dashed, label=%q, fontsize=8];\n",
					from, to, prog.NameOf(o))
			}
		}
	}

	_, err := fmt.Fprintln(w, "}")
	return err
}

func describe(prog *ir.Program, in *ir.Instr) string {
	name := prog.NameOf
	switch in.Op {
	case ir.Alloc:
		return fmt.Sprintf("%s = alloc %s", name(in.Def), name(in.Obj))
	case ir.Copy:
		return fmt.Sprintf("%s = %s", name(in.Def), name(in.Uses[0]))
	case ir.Phi:
		return fmt.Sprintf("%s = φ(…)", name(in.Def))
	case ir.Field:
		return fmt.Sprintf("%s = &%s->f%d", name(in.Def), name(in.Uses[0]), in.Off)
	case ir.Load:
		return fmt.Sprintf("%s = *%s", name(in.Def), name(in.Uses[0]))
	case ir.Store:
		return fmt.Sprintf("*%s = %s", name(in.Uses[0]), name(in.Uses[1]))
	case ir.Call:
		if in.Callee != nil {
			return fmt.Sprintf("call %s", in.Callee.Name)
		}
		return fmt.Sprintf("call *%s", name(in.CalleePtr()))
	case ir.FunEntry:
		return "funentry"
	case ir.FunExit:
		return "funexit"
	case ir.MemPhi:
		return fmt.Sprintf("%s = memφ", name(in.Obj))
	case ir.CallRet:
		return "callret"
	}
	return in.Op.String()
}
