package svfg_test

import (
	"strings"
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/lang"
	"vsfs/internal/memssa"
	"vsfs/internal/svfg"
)

func solve(t *testing.T, src string) (*ir.Program, *svfg.Graph, *core.Result) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	return prog, g, core.Solve(g)
}

func holdsFn(prog *ir.Program, r *core.Result) func(ir.ID, ir.ID) bool {
	return func(x, o ir.ID) bool {
		if prog.IsPointer(x) {
			return r.PointsTo(x).Has(uint32(o))
		}
		return r.ObjectSummary(x).Has(uint32(o))
	}
}

func findVar(t *testing.T, prog *ir.Program, prefix string) ir.ID {
	t.Helper()
	var best ir.ID
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		name := prog.Value(id).Name
		if prog.IsPointer(id) && strings.HasPrefix(name, prefix+".") && !strings.Contains(name, ".addr") {
			best = id
		}
	}
	if best == ir.None {
		t.Fatalf("no var %q", prefix)
	}
	return best
}

func findObj(t *testing.T, prog *ir.Program, name string) ir.ID {
	t.Helper()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsObject(id) && prog.Value(id).Name == name {
			return id
		}
	}
	t.Fatalf("no object %q", name)
	return ir.None
}

const witnessSrc = `
struct Box { int *v; };

struct Box *wrap(int *p) {
  struct Box *b;
  b = malloc();
  b->v = p;
  return b;
}

int main() {
  int a;
  struct Box *bx;
  bx = wrap(&a);
  int *got;
  got = bx->v;
  return 0;
}
`

func TestWitnessThroughHeapAndCalls(t *testing.T) {
	prog, g, r := solve(t, witnessSrc)
	v := findVar(t, prog, "v") // the field load temp for bx->v
	obj := findObj(t, prog, "main.a")
	if !r.PointsTo(v).Has(uint32(obj)) {
		t.Fatal("precondition: v must point to main.a")
	}
	w := g.ExplainPointsTo(holdsFn(prog, r), v, obj)
	if w == nil {
		t.Fatal("no witness found for a true points-to fact")
	}
	if len(w.Steps) < 3 {
		t.Errorf("witness suspiciously short: %+v", w.Steps)
	}
	if w.Steps[0].Instr.Op != ir.Alloc {
		t.Errorf("witness does not start at the allocation: %v", w.Steps[0].Instr.Op)
	}
	if w.Steps[len(w.Steps)-1].Label != g.DefSite[v] {
		t.Error("witness does not end at the definition")
	}
	text := w.Format(prog)
	for _, want := range []string{"why may", "allocation", "alloc"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted witness missing %q:\n%s", want, text)
		}
	}
}

func TestWitnessAbsentForFalseFact(t *testing.T) {
	prog, g, r := solve(t, `
int main() {
  int a;
  int b;
  int *p;
  int *q;
  p = &a;
  q = &b;
  int *u;
  u = p;
  return 0;
}
`)
	u := findVar(t, prog, "p") // load temp of p: points to main.a only
	bObj := findObj(t, prog, "main.b")
	if r.PointsTo(u).Has(uint32(bObj)) {
		t.Fatal("precondition: u must not point to main.b")
	}
	if w := g.ExplainPointsTo(holdsFn(prog, r), u, bObj); w != nil {
		t.Errorf("witness produced for a false fact:\n%s", w.Format(prog))
	}
}

// Completeness: every solved points-to fact for loaded temps has a
// witness.
func TestWitnessCompleteOnProgram(t *testing.T) {
	prog, g, r := solve(t, witnessSrc)
	checked := 0
	for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
		if !prog.IsPointer(v) || g.DefSite[v] == 0 {
			continue
		}
		r.PointsTo(v).ForEach(func(o uint32) {
			checked++
			if w := g.ExplainPointsTo(holdsFn(prog, r), v, ir.ID(o)); w == nil {
				t.Errorf("no witness for %s → %s", prog.NameOf(v), prog.NameOf(ir.ID(o)))
			}
		})
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}
