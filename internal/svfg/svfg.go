// Package svfg assembles the sparse value-flow graph (SVFG) the
// flow-sensitive analyses run on. Nodes are instruction labels. Direct
// edges carry top-level def-use chains (trivial in partial SSA); indirect
// edges carry per-object def-use chains from the memory-SSA pass. The
// graph also records which nodes are δ nodes (Definition 3 of the paper:
// nodes that may gain incoming indirect edges during on-the-fly
// call-graph resolution) and which objects are singletons (eligible for
// strong updates).
package svfg

import (
	"context"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/memssa"
)

// cancelCheckInterval is how many indirect edges are wired between
// context/budget polls during construction.
const cancelCheckInterval = 1024

// Graph is the sparse value-flow graph.
type Graph struct {
	Prog *ir.Program
	Aux  *andersen.Result
	MSSA *memssa.Result

	// DefSite maps a top-level pointer to its defining instruction label
	// (FUNENTRY for parameters), or 0 if it has no definition.
	DefSite []uint32

	// users maps a top-level pointer to the labels of instructions that
	// use it as an operand.
	users [][]uint32

	// indirOut[ℓ][o] lists the targets of indirect edges ℓ --o--> ℓ'.
	indirOut []map[ir.ID][]uint32

	// Delta marks δ nodes. Always false when Prewired.
	Delta []bool

	// Prewired reports that the auxiliary call graph was wired at build
	// time: the solvers resolve calls from the auxiliary results rather
	// than on the fly, and versioning needs no [OTF-CG]^P prelabels.
	Prewired bool

	// singleton[o] ⇒ strong updates are allowed on o.
	singleton *bitset.Sparse

	// Stats for Table II.
	NumNodes         int
	NumDirectEdges   int
	NumIndirectEdges int
	NumTopLevel      int
	NumAddressTaken  int
}

// Build assembles the SVFG from a finalized program, its auxiliary
// results and memory-SSA form, with on-the-fly call-graph resolution
// left to the flow-sensitive solvers (the paper's configuration).
func Build(prog *ir.Program, aux *andersen.Result, mssa *memssa.Result) *Graph {
	g, err := build(context.Background(), prog, aux, mssa, false)
	if err != nil {
		// Unreachable: a background context carries no deadline, budget
		// or fault plan, so construction cannot be interrupted.
		panic(err)
	}
	return g
}

// BuildContext is Build with cooperative cancellation: construction
// polls ctx (and any guard budget or fault plan attached to it) between
// sub-passes and periodically while wiring indirect edges, returning
// the context or budget error instead of a Graph.
func BuildContext(ctx context.Context, prog *ir.Program, aux *andersen.Result, mssa *memssa.Result) (*Graph, error) {
	return build(ctx, prog, aux, mssa, false)
}

// BuildAuxCallGraph assembles the SVFG with the auxiliary call graph
// wired in up front: every indirect call's interprocedural edges are
// added for all Andersen-resolved targets and no node is a δ node.
// Section IV-C1 of the paper notes store prelabelling alone is
// sufficient in this configuration; it trades the precision (and,
// per the paper, performance) of on-the-fly resolution for a simpler
// pre-analysis. Kept as an ablation.
func BuildAuxCallGraph(prog *ir.Program, aux *andersen.Result, mssa *memssa.Result) *Graph {
	g, err := build(context.Background(), prog, aux, mssa, true)
	if err != nil {
		panic(err) // unreachable, as in Build
	}
	return g
}

func build(ctx context.Context, prog *ir.Program, aux *andersen.Result, mssa *memssa.Result, prewire bool) (*Graph, error) {
	n := len(prog.Instrs)
	g := &Graph{
		Prog:     prog,
		Aux:      aux,
		MSSA:     mssa,
		Prewired: prewire,
		DefSite:  make([]uint32, prog.NumValues()),
		users:    make([][]uint32, prog.NumValues()),
		indirOut: make([]map[ir.ID][]uint32, n),
		Delta:    make([]bool, n),
	}
	if err := guard.Tick(ctx, "svfg", 0); err != nil {
		return nil, err
	}
	g.buildDirect()
	for i, e := range mssa.Edges {
		if i%cancelCheckInterval == 0 {
			if err := guard.Tick(ctx, "svfg", cancelCheckInterval); err != nil {
				return nil, err
			}
		}
		g.AddIndirectEdge(e.From, e.To, e.Obj)
	}
	if err := guard.Tick(ctx, "svfg", 0); err != nil {
		return nil, err
	}
	if prewire {
		g.prewireIndirectCalls()
	} else {
		g.markDelta()
	}
	if err := guard.Tick(ctx, "svfg", 0); err != nil {
		return nil, err
	}
	g.computeSingletons()
	g.countStats()
	return g, nil
}

// prewireIndirectCalls adds the interprocedural value-flow edges of
// every auxiliary-resolved indirect call at build time.
func (g *Graph) prewireIndirectCalls() {
	for _, f := range g.Prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call || !in.IsIndirectCall() {
				return
			}
			for _, callee := range g.Aux.CalleesOf(in) {
				entry := callee.EntryInstr.Label
				g.MSSA.FormalIn[callee].ForEach(func(o uint32) {
					if g.MSSA.MuOf(in.Label).Has(o) {
						g.AddIndirectEdge(in.Label, entry, ir.ID(o))
					}
				})
				if ret := g.MSSA.CallRets[in]; ret != nil {
					exit := callee.ExitInstr.Label
					g.MSSA.FormalOut[callee].ForEach(func(o uint32) {
						if g.MSSA.ChiOf(ret.Label).Has(o) {
							g.AddIndirectEdge(exit, ret.Label, ir.ID(o))
						}
					})
				}
			}
		})
	}
}

// Clone returns a copy of the graph that can be mutated independently.
// The flow-sensitive solvers add indirect edges during on-the-fly
// call-graph resolution, so running two solvers over one Graph value
// would let the first leak resolution work into the second; clone per
// solver instead. Immutable parts (direct edges, δ marks, singletons)
// are shared.
func (g *Graph) Clone() *Graph {
	c := *g
	c.indirOut = make([]map[ir.ID][]uint32, len(g.indirOut))
	for i, m := range g.indirOut {
		if m == nil {
			continue
		}
		cm := make(map[ir.ID][]uint32, len(m))
		for o, succs := range m {
			cm[o] = append([]uint32(nil), succs...)
		}
		c.indirOut[i] = cm
	}
	return &c
}

func (g *Graph) buildDirect() {
	prog := g.Prog
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op == ir.FunEntry {
				for _, p := range in.Uses {
					g.DefSite[p] = in.Label
				}
				return
			}
			if in.Def != ir.None {
				g.DefSite[in.Def] = in.Label
			}
			for _, u := range in.Uses {
				g.users[u] = append(g.users[u], in.Label)
			}
		})
	}
	for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
		if g.DefSite[v] != 0 {
			g.NumDirectEdges += len(g.users[v])
		}
	}
	// Interprocedural direct edges (actual→formal, return→result) for
	// auxiliary-resolved targets; counted for Table II parity with SVF.
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call {
				return
			}
			for _, callee := range g.Aux.CalleesOf(in) {
				na := len(in.CallArgs())
				if na > len(callee.Params) {
					na = len(callee.Params)
				}
				g.NumDirectEdges += na
				if in.Def != ir.None && callee.Ret != ir.None {
					g.NumDirectEdges++
				}
			}
		})
	}
}

// UsersOf returns the labels of instructions using pointer v. The result
// must not be mutated.
func (g *Graph) UsersOf(v ir.ID) []uint32 { return g.users[v] }

// AddIndirectEdge inserts ℓfrom --obj--> ℓto, reporting whether it was
// new. The flow-sensitive solvers call this during on-the-fly call-graph
// resolution.
func (g *Graph) AddIndirectEdge(from, to uint32, obj ir.ID) bool {
	m := g.indirOut[from]
	if m == nil {
		m = make(map[ir.ID][]uint32)
		g.indirOut[from] = m
	}
	for _, t := range m[obj] {
		if t == to {
			return false
		}
	}
	m[obj] = append(m[obj], to)
	g.NumIndirectEdges++
	return true
}

// IndirSuccs returns the targets of indirect edges from ℓ labelled with
// obj. The result must not be mutated.
func (g *Graph) IndirSuccs(from uint32, obj ir.ID) []uint32 {
	if m := g.indirOut[from]; m != nil {
		return m[obj]
	}
	return nil
}

// markDelta marks δ nodes: FUNENTRY of address-taken functions (possible
// indirect-call targets) and the CallRet side of indirect calls (return
// targets of indirect calls).
func (g *Graph) markDelta() {
	for _, f := range g.Prog.Funcs {
		if f.AddressTaken {
			g.Delta[f.EntryInstr.Label] = true
		}
	}
	for call, ret := range g.MSSA.CallRets {
		if call.IsIndirectCall() {
			g.Delta[ret.Label] = true
		}
	}
}

// IsSingleton reports whether o is a singleton object: it stands for
// exactly one concrete memory location, so a store with it as the sole
// pointee may strongly update it. Heap summaries, function objects,
// collapsed field objects and stack objects of recursive functions are
// excluded.
func (g *Graph) IsSingleton(o ir.ID) bool { return g.singleton.Has(uint32(o)) }

// computeSingletons adopts the auxiliary analysis's shared singleton
// classification (andersen.Result.Singletons), so the SVFG pipeline and
// the CFG-free backend apply an identical strong-update predicate.
func (g *Graph) computeSingletons() {
	g.singleton = g.Aux.Singletons()
}

func (g *Graph) countStats() {
	prog := g.Prog
	g.NumNodes = len(prog.Instrs) - 1 // slot 0 is reserved
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsPointer(id) {
			g.NumTopLevel++
		} else {
			g.NumAddressTaken++
		}
	}
}
