package svfg

import (
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/memssa"
)

func buildTestGraph(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	return Build(prog, aux, mssa)
}

func varByName(t *testing.T, prog *ir.Program, name string) ir.ID {
	t.Helper()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsPointer(id) && prog.Value(id).Name == name {
			return id
		}
	}
	t.Fatalf("no pointer %q", name)
	return ir.None
}

func objByName(t *testing.T, prog *ir.Program, name string) ir.ID {
	t.Helper()
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsObject(id) && prog.Value(id).Name == name {
			return id
		}
	}
	t.Fatalf("no object %q", name)
	return ir.None
}

const src = `
func callee(q) {
entry:
  x = alloc tgt 0
  store q, x
  ret
}
func recur(n) {
entry:
  l = alloc local 0
  call recur(n)
  ret
}
func main() {
entry:
  p = alloc a 0
  h = alloc.heap hobj 0
  fp = funcaddr callee
  calli fp(p)
  v = load p
  w = copy v
  ret
}
`

func TestDirectEdges(t *testing.T) {
	g := buildTestGraph(t, src)
	prog := g.Prog
	v := varByName(t, prog, "v")
	if g.DefSite[v] == 0 {
		t.Fatal("v has no def site")
	}
	if prog.Instrs[g.DefSite[v]].Op != ir.Load {
		t.Errorf("def of v is %v, want load", prog.Instrs[g.DefSite[v]].Op)
	}
	users := g.UsersOf(v)
	if len(users) != 1 || prog.Instrs[users[0]].Op != ir.Copy {
		t.Errorf("users of v wrong: %v", users)
	}
	// Parameters are defined at FUNENTRY.
	q := prog.FuncByName("callee").Params[0]
	if prog.Instrs[g.DefSite[q]].Op != ir.FunEntry {
		t.Error("param not defined at funentry")
	}
	if g.NumDirectEdges == 0 {
		t.Error("no direct edges counted")
	}
}

func TestDeltaNodes(t *testing.T) {
	g := buildTestGraph(t, src)
	prog := g.Prog
	callee := prog.FuncByName("callee")
	if !g.Delta[callee.EntryInstr.Label] {
		t.Error("address-taken function entry not δ")
	}
	main := prog.FuncByName("main")
	if g.Delta[main.EntryInstr.Label] {
		t.Error("main entry marked δ despite not being address-taken")
	}
	var icall *ir.Instr
	main.ForEachInstr(func(in *ir.Instr) {
		if in.IsIndirectCall() {
			icall = in
		}
	})
	ret := g.MSSA.CallRets[icall]
	if ret == nil {
		t.Fatal("indirect call has no CallRet")
	}
	if !g.Delta[ret.Label] {
		t.Error("indirect call's CallRet not δ")
	}
	// Direct (recursive) call's CallRet is not δ.
	var dcall *ir.Instr
	prog.FuncByName("recur").ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.Call {
			dcall = in
		}
	})
	if r := g.MSSA.CallRets[dcall]; r != nil && g.Delta[r.Label] {
		t.Error("direct call's CallRet marked δ")
	}
}

func TestSingletons(t *testing.T) {
	g := buildTestGraph(t, src)
	prog := g.Prog
	if !g.IsSingleton(objByName(t, prog, "a")) {
		t.Error("stack object of non-recursive main not singleton")
	}
	if g.IsSingleton(objByName(t, prog, "hobj")) {
		t.Error("heap object marked singleton")
	}
	if g.IsSingleton(objByName(t, prog, "local")) {
		t.Error("stack object of recursive function marked singleton")
	}
	if g.IsSingleton(objByName(t, prog, "&callee")) {
		t.Error("function object marked singleton")
	}
}

func TestGlobalSingletonAndCollapsedField(t *testing.T) {
	g := buildTestGraph(t, `
global gg 2
func main() {
entry:
  s = alloc agg 3
  f9 = field s, 9
  f1 = field s, 1
  x = alloc o 0
  store f9, x
  store f1, x
  ret
}
`)
	prog := g.Prog
	if !g.IsSingleton(objByName(t, prog, "gg.obj")) {
		t.Error("global object not singleton")
	}
	if !g.IsSingleton(objByName(t, prog, "agg.f1")) {
		t.Error("in-range field of stack aggregate not singleton")
	}
	// Offset 9 clamps onto agg.f2 (NumFields-1): that object stands for
	// several concrete locations and must not be a singleton.
	fo := prog.FieldObj(objByName(t, prog, "agg"), 9)
	if prog.Value(fo).Name != "agg.f2" {
		t.Fatalf("clamped field = %s", prog.Value(fo).Name)
	}
	if g.IsSingleton(fo) {
		t.Error("collapsed field object marked singleton")
	}
}

func TestAddIndirectEdgeDedup(t *testing.T) {
	g := buildTestGraph(t, src)
	o := objByName(t, g.Prog, "a")
	before := g.NumIndirectEdges
	if !g.AddIndirectEdge(1, 2, o) {
		t.Error("fresh edge not new")
	}
	if g.AddIndirectEdge(1, 2, o) {
		t.Error("duplicate edge reported new")
	}
	if g.NumIndirectEdges != before+1 {
		t.Errorf("edge count = %d, want %d", g.NumIndirectEdges, before+1)
	}
	hits := 0
	for _, s := range g.IndirSuccs(1, o) {
		if s == 2 {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("IndirSuccs = %v, want exactly one edge to 2", g.IndirSuccs(1, o))
	}
}

func TestStatsCounts(t *testing.T) {
	g := buildTestGraph(t, src)
	if g.NumNodes != len(g.Prog.Instrs)-1 {
		t.Errorf("NumNodes = %d, want %d", g.NumNodes, len(g.Prog.Instrs)-1)
	}
	if g.NumTopLevel == 0 || g.NumAddressTaken == 0 {
		t.Error("variable counts empty")
	}
	if g.NumTopLevel+g.NumAddressTaken != g.Prog.NumValues()-1 {
		t.Error("variable counts do not partition the value space")
	}
}
