// Package ir defines the LLVM-like partial-SSA intermediate representation
// the analyses operate on: the 10 instruction kinds of the paper's Table I
// (ALLOC, PHI, MEMPHI, CAST/COPY, FIELD, LOAD, STORE, CALL, FUNENTRY,
// FUNEXIT), a value table that splits the variable universe into top-level
// pointers (P = S ∪ G) and address-taken objects (A = O ∪ F), and a
// program container with validation.
//
// Top-level pointers are explicit and in SSA form: each has exactly one
// defining instruction. Address-taken objects are implicit; they are read
// and written only through LOAD and STORE and are *not* in SSA form until
// the memory-SSA pass runs.
package ir

import "fmt"

// ID identifies a value (top-level pointer or address-taken object) within
// a Program. IDs are dense and shared across both classes so points-to
// sets and worklists can be bit vectors. ID 0 is reserved and never a
// valid value.
type ID = uint32

// None is the absent value ID.
const None ID = 0

// ValueKind discriminates the two halves of the variable universe.
type ValueKind uint8

const (
	// Pointer is a top-level pointer variable (stack or global): the set P.
	Pointer ValueKind = iota
	// Object is an address-taken abstract object or field thereof: the set A.
	Object
)

func (k ValueKind) String() string {
	switch k {
	case Pointer:
		return "pointer"
	case Object:
		return "object"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// ObjKind classifies an abstract object by its allocation site.
type ObjKind uint8

const (
	// StackObj is an object allocated by a stack ALLOC (C local whose
	// address is taken).
	StackObj ObjKind = iota
	// GlobalObj is a global variable's storage.
	GlobalObj
	// HeapObj is a heap allocation site (malloc et al.). Heap objects are
	// summaries: one abstract object may stand for many runtime objects,
	// so they are never singletons.
	HeapObj
	// FuncObj is the address of a function; loading it and calling through
	// it drives indirect-call resolution.
	FuncObj
)

func (k ObjKind) String() string {
	switch k {
	case StackObj:
		return "stack"
	case GlobalObj:
		return "global"
	case HeapObj:
		return "heap"
	case FuncObj:
		return "func"
	default:
		return fmt.Sprintf("ObjKind(%d)", uint8(k))
	}
}

// Value is one entry in a Program's value table.
type Value struct {
	ID   ID
	Name string
	Kind ValueKind

	// Object-only fields. For a field object, Base is the owning base
	// object and Offset its field index; for a base object Base == ID and
	// Offset == 0.
	ObjKind   ObjKind
	Base      ID
	Offset    int
	NumFields int // fields of the base object (0 for scalars)

	// Func is set for FuncObj objects: the function whose address this
	// object represents.
	Func *Function

	// DefFunc is the function a StackObj belongs to, used to demote
	// singletons in recursive functions.
	DefFunc *Function

	// Collapsed marks a field object that stands for more than one
	// concrete location because out-of-range offsets were clamped onto
	// it; such objects are never singletons (no strong updates).
	Collapsed bool
}

// IsField reports whether v is a field object (not a base object).
func (v *Value) IsField() bool { return v.Kind == Object && v.Base != v.ID }

func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return v.Name
}
