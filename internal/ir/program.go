package ir

import (
	"fmt"
	"strings"
)

// Program is a whole-program module: the value table, the functions, and
// (after Finalize) the dense instruction labelling. Programs are built
// single-threaded through the New*/Emit* API or the irparse package.
type Program struct {
	values []Value // index = ID; slot 0 reserved
	Funcs  []*Function
	byName map[string]*Function

	// Instrs is the label-indexed instruction list, valid after Finalize.
	Instrs []*Instr

	fieldObjs map[fieldKey]ID
	funcObjs  map[*Function]ID

	// globalsFn is the synthetic function holding the ALLOC instructions
	// of global variables; it is not callable and has no entry/exit
	// semantics beyond providing SVFG nodes for the allocations.
	globalsFn *Function

	// freedPtr/freedObj are the distinguished FREED token: a synthetic
	// global pointer whose single pointee marks deallocated storage.
	// free(p) lowers to `store p, __freed__`, writing the token into
	// every pointee of p; "object o has been freed before ℓ" is then
	// exactly "FREED ∈ IN[ℓ](o)". Created lazily on first use.
	freedPtr ID
	freedObj ID

	// File is the name of the source file the program was compiled from,
	// used by diagnostics; empty for synthesised or textual-IR programs.
	File string

	finalized bool
}

type fieldKey struct {
	base ID
	off  int
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		values:    make([]Value, 1), // reserve ID 0
		byName:    make(map[string]*Function),
		fieldObjs: make(map[fieldKey]ID),
		funcObjs:  make(map[*Function]ID),
	}
}

// NumValues returns the size of the value ID space (valid IDs are
// 1..NumValues-1).
func (p *Program) NumValues() int { return len(p.values) }

// Value returns the value-table entry for id.
func (p *Program) Value(id ID) *Value { return &p.values[id] }

// NameOf returns a printable name for id. Out-of-range IDs render as
// placeholders so diagnostics never panic.
func (p *Program) NameOf(id ID) string {
	if id == None {
		return "_"
	}
	if int(id) >= len(p.values) {
		return fmt.Sprintf("<bad:%d>", id)
	}
	return p.values[id].Name
}

// IsObject reports whether id names an address-taken object.
func (p *Program) IsObject(id ID) bool {
	return id != None && p.values[id].Kind == Object
}

// IsPointer reports whether id names a top-level pointer.
func (p *Program) IsPointer(id ID) bool {
	return id != None && p.values[id].Kind == Pointer
}

func (p *Program) addValue(v Value) ID {
	v.ID = ID(len(p.values))
	p.values = append(p.values, v)
	return v.ID
}

// NewPointer creates a fresh top-level pointer variable.
func (p *Program) NewPointer(name string) ID {
	return p.addValue(Value{Name: name, Kind: Pointer})
}

// NewObject creates a fresh base abstract object. numFields is the number
// of addressable fields (0 for scalars). owner is the function whose
// frame holds a StackObj; pass nil otherwise.
func (p *Program) NewObject(name string, kind ObjKind, numFields int, owner *Function) ID {
	id := p.addValue(Value{
		Name:      name,
		Kind:      Object,
		ObjKind:   kind,
		NumFields: numFields,
		DefFunc:   owner,
	})
	p.values[id].Base = id
	return id
}

// FieldObj returns the abstract field object base.f_off, creating it on
// first use. Following the paper's [FIELD-ADD] rules, fields of fields
// accumulate offsets from the true base (o.f_i.f_j ⇒ o.f_{i+j}), and an
// offset at or beyond the base's field count collapses to the last field
// (field-index clamping, as SVF does with its field limit). For a scalar
// base (no fields) the base object itself is returned.
func (p *Program) FieldObj(obj ID, off int) ID {
	v := &p.values[obj]
	if v.Kind != Object {
		panic(fmt.Sprintf("ir: FieldObj of non-object %s", v.Name))
	}
	base := v.Base
	off += v.Offset
	bv := &p.values[base]
	if bv.NumFields == 0 {
		return base
	}
	clamped := false
	if off >= bv.NumFields {
		off = bv.NumFields - 1
		clamped = true
	}
	if off <= 0 {
		return base
	}
	key := fieldKey{base: base, off: off}
	if id, ok := p.fieldObjs[key]; ok {
		if clamped {
			p.values[id].Collapsed = true
		}
		return id
	}
	id := p.addValue(Value{
		Name:      fmt.Sprintf("%s.f%d", bv.Name, off),
		Kind:      Object,
		ObjKind:   bv.ObjKind,
		Base:      base,
		Offset:    off,
		DefFunc:   bv.DefFunc,
		Collapsed: clamped,
	})
	p.fieldObjs[key] = id
	return id
}

// FuncObj returns the function object for f (the abstract object denoting
// f's address), creating it on first use and marking f address-taken.
func (p *Program) FuncObj(f *Function) ID {
	if id, ok := p.funcObjs[f]; ok {
		return id
	}
	id := p.addValue(Value{
		Name:    "&" + f.Name,
		Kind:    Object,
		ObjKind: FuncObj,
		Func:    f,
	})
	p.values[id].Base = id
	p.funcObjs[f] = id
	f.AddressTaken = true
	return id
}

// NewFunction creates a function with nparams fresh parameter pointers.
func (p *Program) NewFunction(name string, nparams int) *Function {
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", name))
	}
	f := &Function{Name: name, Parent: p}
	for i := 0; i < nparams; i++ {
		f.Params = append(f.Params, p.NewPointer(fmt.Sprintf("%s.arg%d", name, i)))
	}
	f.setEntryExit()
	p.Funcs = append(p.Funcs, f)
	p.byName[name] = f
	return f
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Function { return p.byName[name] }

// NewGlobal declares a global variable with numFields fields. It returns
// the top-level pointer g (the constant &storage, as in LLVM where @g is
// a pointer to the global's storage) and the storage object. The defining
// ALLOC lives in the synthetic __globals__ function.
func (p *Program) NewGlobal(name string, numFields int) (ptr, obj ID) {
	if p.globalsFn == nil {
		p.globalsFn = p.NewFunction("__globals__", 0)
	}
	ptr = p.NewPointer(name)
	obj = p.NewObject(name+".obj", GlobalObj, numFields, nil)
	p.globalsFn.EmitAlloc(p.globalsFn.Entry, ptr, obj)
	return ptr, obj
}

// GlobalsFunc returns the synthetic function holding global ALLOCs, or
// nil if the program has no globals.
func (p *Program) GlobalsFunc() *Function { return p.globalsFn }

// FreedPtr returns the distinguished FREED-token pointer, creating it
// (and its single pointee object) on first use. It must only be called
// while the program is still under construction: the builder lowers
// free(p) to `store p, FreedPtr()`, a strong update writing the token
// into p's singleton pointees. Like any global it is defined by an
// ALLOC in the synthetic __globals__ function.
func (p *Program) FreedPtr() ID {
	if p.freedPtr == None {
		p.freedPtr, p.freedObj = p.NewGlobal("__freed__", 0)
	}
	return p.freedPtr
}

// FreedObj returns the FREED token object — the pointee every freed
// location is made to hold — or None when the program contains no free.
// Checkers test membership of this ID in flow-sensitive IN sets.
func (p *Program) FreedObj() ID { return p.freedObj }

// IsFreeStore reports whether in is the lowered form of free(q): a
// store of the FREED-token pointer through q. Such stores deallocate
// rather than use their pointees, so the use-after-free checker skips
// them and the double-free checker keys on them.
func (p *Program) IsFreeStore(in *Instr) bool {
	return p.freedPtr != None && in.Op == Store && len(in.Uses) == 2 && in.Uses[1] == p.freedPtr
}

// Finalize closes out every function (installing FUNEXIT nodes), assigns
// dense instruction labels, and validates the module. It must be called
// exactly once, after which the instruction set is frozen except for
// MemPhi insertion by the memory-SSA pass (which calls Renumber).
func (p *Program) Finalize() error {
	if p.finalized {
		return fmt.Errorf("ir: Finalize called twice")
	}
	for _, f := range p.Funcs {
		if f.Exit == nil {
			f.Exit = f.Blocks[len(f.Blocks)-1]
		}
		if err := f.finishExit(); err != nil {
			return err
		}
	}
	p.Renumber()
	if err := p.validate(); err != nil {
		return err
	}
	p.finalized = true
	return nil
}

// Renumber reassigns dense instruction labels in deterministic order
// (function creation order, block order, instruction order) and rebuilds
// Instrs. The memory-SSA pass calls this after inserting MemPhi nodes.
func (p *Program) Renumber() {
	p.Instrs = p.Instrs[:0]
	// Label 0 is reserved so that "no node" is expressible.
	p.Instrs = append(p.Instrs, nil)
	for _, f := range p.Funcs {
		f.ForEachInstr(func(in *Instr) {
			in.Label = uint32(len(p.Instrs))
			p.Instrs = append(p.Instrs, in)
		})
	}
}

// validate checks partial-SSA and structural invariants.
func (p *Program) validate() error {
	defCount := make(map[ID]int)
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("function %s has no blocks", f.Name)
		}
		if f.Entry != f.Blocks[0] {
			return fmt.Errorf("function %s: entry is not the first block", f.Name)
		}
		if f.EntryInstr == nil || f.ExitInstr == nil {
			return fmt.Errorf("function %s: missing entry/exit instruction", f.Name)
		}
		for _, prm := range f.Params {
			defCount[prm]++
		}
		var err error
		f.ForEachInstr(func(in *Instr) {
			if err != nil {
				return
			}
			if e := p.checkInstr(f, in); e != nil {
				err = e
				return
			}
			if in.Def != None && in.Op != FunEntry {
				defCount[in.Def]++
			}
		})
		if err != nil {
			return err
		}
	}
	for id, n := range defCount {
		if n > 1 {
			return fmt.Errorf("partial SSA violation: top-level pointer %s has %d definitions", p.NameOf(id), n)
		}
	}
	return nil
}

func (p *Program) checkInstr(f *Function, in *Instr) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("function %s: %s: "+format, append([]any{f.Name, in.format(p.NameOf)}, args...)...)
	}
	checkPtr := func(id ID, role string) error {
		if id == None || int(id) >= len(p.values) {
			return bad("%s is not a valid value ID (%d)", role, id)
		}
		if p.values[id].Kind != Pointer {
			return bad("%s %s is not a top-level pointer", role, p.NameOf(id))
		}
		return nil
	}
	for _, u := range in.Uses {
		if err := checkPtr(u, "operand"); err != nil {
			return err
		}
	}
	switch in.Op {
	case Alloc:
		if err := checkPtr(in.Def, "def"); err != nil {
			return err
		}
		if !p.IsObject(in.Obj) {
			return bad("alloc of non-object")
		}
	case Copy, Load:
		if err := checkPtr(in.Def, "def"); err != nil {
			return err
		}
		if len(in.Uses) != 1 {
			return bad("wants 1 operand, has %d", len(in.Uses))
		}
	case Phi:
		if err := checkPtr(in.Def, "def"); err != nil {
			return err
		}
		if len(in.Uses) == 0 {
			return bad("phi with no operands")
		}
	case Field:
		if err := checkPtr(in.Def, "def"); err != nil {
			return err
		}
		if len(in.Uses) != 1 {
			return bad("wants 1 operand, has %d", len(in.Uses))
		}
		if in.Off < 0 {
			return bad("negative field offset %d", in.Off)
		}
	case Store:
		if len(in.Uses) != 2 {
			return bad("wants 2 operands, has %d", len(in.Uses))
		}
	case Call:
		if in.Def != None {
			if err := checkPtr(in.Def, "def"); err != nil {
				return err
			}
		}
		if in.Callee == nil && len(in.Uses) == 0 {
			return bad("indirect call without function pointer")
		}
	case FunEntry, FunExit, MemPhi, CallRet:
		// Shapes fixed by construction.
	default:
		return bad("invalid opcode")
	}
	return nil
}

// String renders the whole program in the textual IR syntax understood by
// the irparse package; Parse(prog.String()) reconstructs an equivalent
// program.
func (p *Program) String() string {
	var b strings.Builder
	if p.globalsFn != nil {
		for _, in := range p.globalsFn.Entry.Instrs {
			if in.Op != Alloc || in.Def == p.freedPtr {
				// The FREED token global is implied by `free`
				// instructions; the parser recreates it on demand.
				continue
			}
			obj := p.Value(in.Obj)
			fmt.Fprintf(&b, "global %s %d\n", p.NameOf(in.Def), obj.NumFields)
		}
	}
	for _, f := range p.Funcs {
		if f == p.globalsFn {
			continue
		}
		p.writeFunc(&b, f)
	}
	return b.String()
}

func (p *Program) writeFunc(b *strings.Builder, f *Function) {
	fmt.Fprintf(b, "func %s(", f.Name)
	for i, prm := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.NameOf(prm))
	}
	b.WriteString(") {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			switch in.Op {
			case FunEntry, FunExit, MemPhi, CallRet:
				continue
			case Alloc:
				obj := p.Value(in.Obj)
				switch obj.ObjKind {
				case FuncObj:
					fmt.Fprintf(b, "  %s = funcaddr %s\n", p.NameOf(in.Def), obj.Func.Name)
				case HeapObj:
					fmt.Fprintf(b, "  %s = alloc.heap %s %d\n", p.NameOf(in.Def), obj.Name, obj.NumFields)
				default:
					fmt.Fprintf(b, "  %s = alloc %s %d\n", p.NameOf(in.Def), obj.Name, obj.NumFields)
				}
			default:
				if p.IsFreeStore(in) {
					fmt.Fprintf(b, "  free %s\n", p.NameOf(in.Uses[0]))
					continue
				}
				fmt.Fprintf(b, "  %s\n", in.format(p.NameOf))
			}
		}
		switch len(blk.Succs) {
		case 0:
			if f.Ret != None {
				fmt.Fprintf(b, "  ret %s\n", p.NameOf(f.Ret))
			} else {
				b.WriteString("  ret\n")
			}
		case 1:
			fmt.Fprintf(b, "  jmp %s\n", blk.Succs[0].Name)
		default:
			b.WriteString("  br ")
			for i, s := range blk.Succs {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(s.Name)
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("}\n")
}
