package ir

import (
	"strings"
	"testing"
)

func TestStringers(t *testing.T) {
	if Pointer.String() != "pointer" || Object.String() != "object" {
		t.Error("ValueKind.String wrong")
	}
	if ValueKind(9).String() == "" {
		t.Error("unknown ValueKind has no rendering")
	}
	kinds := map[ObjKind]string{
		StackObj: "stack", GlobalObj: "global", HeapObj: "heap", FuncObj: "func",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("ObjKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if ObjKind(9).String() == "" {
		t.Error("unknown ObjKind has no rendering")
	}
	ops := map[Op]string{
		Alloc: "alloc", Copy: "copy", Phi: "phi", Field: "field", Load: "load",
		Store: "store", Call: "call", FunEntry: "funentry", FunExit: "funexit",
		MemPhi: "memphi", CallRet: "callret", BadOp: "bad",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() == "" {
		t.Error("unknown Op has no rendering")
	}
}

func TestValueAndBlockString(t *testing.T) {
	p := NewProgram()
	f := p.NewFunction("f", 0)
	o := p.NewObject("obj", StackObj, 0, f)
	if got := p.Value(o).String(); got != "obj" {
		t.Errorf("Value.String = %q", got)
	}
	var nilv *Value
	if nilv.String() != "<nil>" {
		t.Error("nil Value String")
	}
	if f.Entry.String() != "entry" {
		t.Errorf("Block.String = %q", f.Entry.String())
	}
	if f.String() != "f" {
		t.Errorf("Function.String = %q", f.String())
	}
	if p.NameOf(None) != "_" {
		t.Error("NameOf(None)")
	}
	if p.NumValues() < 2 {
		t.Error("NumValues")
	}
}

// TestProgramStringAllForms drives the printer over every printable
// instruction form, then reparses mentally — the irparse round-trip test
// covers the inverse; here we pin the shapes.
func TestProgramStringAllForms(t *testing.T) {
	p := NewProgram()
	g, _ := p.NewGlobal("g", 1)
	callee := p.NewFunction("callee", 1)
	f := p.NewFunction("main", 0)
	b := f.Entry
	then := f.NewBlock("then")
	els := f.NewBlock("els")
	join := f.NewBlock("join")
	b.AddSucc(then)
	b.AddSucc(els)
	then.AddSucc(join)
	els.AddSucc(join)

	o := p.NewObject("o", StackObj, 2, f)
	h := p.NewObject("h", HeapObj, 0, nil)
	a := p.NewPointer("a")
	hp := p.NewPointer("hp")
	c := p.NewPointer("c")
	ph := p.NewPointer("ph")
	fl := p.NewPointer("fl")
	v := p.NewPointer("v")
	r1 := p.NewPointer("r1")
	r2 := p.NewPointer("r2")
	fp := p.NewPointer("fp")

	f.EmitAlloc(b, a, o)
	f.EmitAlloc(b, hp, h)
	f.EmitAlloc(b, fp, p.FuncObj(callee))
	f.EmitCopy(b, c, a)
	f.EmitPhi(join, ph, a, c)
	f.EmitField(b, fl, a, 1)
	f.EmitLoad(b, v, a)
	f.EmitStore(b, a, c)
	f.EmitCall(b, r1, callee, a)
	f.EmitCall(b, None, callee, g)
	f.EmitCallIndirect(b, r2, fp, a)
	f.EmitCallIndirect(b, None, fp)
	f.Exit = join
	f.Ret = ph
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}

	s := p.String()
	for _, want := range []string{
		"global g 1",
		"a = alloc o 2",
		"hp = alloc.heap h 0",
		"fp = funcaddr callee",
		"c = copy a",
		"ph = phi(a, c)",
		"fl = field a, 1",
		"v = load a",
		"store a, c",
		"r1 = call callee(a)",
		"call callee(g)",
		"r2 = calli fp(a)",
		"calli fp()",
		"br then, els",
		"jmp join",
		"ret ph",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestInstrFormatDiagnostics(t *testing.T) {
	// The format method surfaces in validator errors; exercise the
	// remaining shapes directly.
	p := NewProgram()
	f := p.NewFunction("f", 2)
	in := &Instr{Op: FunEntry, Uses: f.Params}
	if got := in.format(p.NameOf); !strings.HasPrefix(got, "funentry(") {
		t.Errorf("funentry format = %q", got)
	}
	ret := &Instr{Op: FunExit, Uses: []ID{f.Params[0]}}
	if got := ret.format(p.NameOf); !strings.HasPrefix(got, "funexit ") {
		t.Errorf("funexit format = %q", got)
	}
	bare := &Instr{Op: FunExit}
	if got := bare.format(p.NameOf); got != "funexit" {
		t.Errorf("bare funexit format = %q", got)
	}
	o := p.NewObject("o", StackObj, 0, f)
	mp := &Instr{Op: MemPhi, Obj: o}
	if got := mp.format(p.NameOf); got != "o = memphi" {
		t.Errorf("memphi format = %q", got)
	}
	cr := &Instr{Op: CallRet}
	if got := cr.format(p.NameOf); got != "callret" {
		t.Errorf("callret format = %q", got)
	}
	badop := &Instr{Op: Op(77)}
	if got := badop.format(p.NameOf); !strings.Contains(got, "bad op") {
		t.Errorf("bad op format = %q", got)
	}
	dcall := &Instr{Op: Call, Callee: f, Uses: []ID{f.Params[0]}}
	if got := dcall.format(p.NameOf); !strings.Contains(got, "call f(") {
		t.Errorf("direct call format = %q", got)
	}
	icall := &Instr{Op: Call, Def: f.Params[0], Uses: []ID{f.Params[1]}}
	if got := icall.format(p.NameOf); !strings.Contains(got, "calli") {
		t.Errorf("indirect call format = %q", got)
	}
}

func TestValidatorMoreErrors(t *testing.T) {
	cases := []struct {
		name string
		mk   func(p *Program, f *Function)
		want string
	}{
		{"copy arity", func(p *Program, f *Function) {
			v := p.NewPointer("v")
			f.append(f.Entry, &Instr{Op: Copy, Def: v, Uses: nil})
		}, "wants 1 operand"},
		{"phi empty", func(p *Program, f *Function) {
			v := p.NewPointer("v")
			f.append(f.Entry, &Instr{Op: Phi, Def: v, Uses: nil})
		}, "no operands"},
		{"field arity", func(p *Program, f *Function) {
			v := p.NewPointer("v")
			f.append(f.Entry, &Instr{Op: Field, Def: v, Uses: nil})
		}, "wants 1 operand"},
		{"field negative", func(p *Program, f *Function) {
			v := p.NewPointer("v")
			w := p.NewPointer("w")
			f.append(f.Entry, &Instr{Op: Field, Def: v, Uses: []ID{w}, Off: -1})
		}, "negative field offset"},
		{"store arity", func(p *Program, f *Function) {
			v := p.NewPointer("v")
			f.append(f.Entry, &Instr{Op: Store, Uses: []ID{v}})
		}, "wants 2 operands"},
		{"icall no fp", func(p *Program, f *Function) {
			f.append(f.Entry, &Instr{Op: Call})
		}, "without function pointer"},
		{"bad opcode", func(p *Program, f *Function) {
			f.append(f.Entry, &Instr{Op: Op(55), Uses: nil})
		}, "invalid opcode"},
		{"invalid id", func(p *Program, f *Function) {
			v := p.NewPointer("v")
			f.append(f.Entry, &Instr{Op: Copy, Def: v, Uses: []ID{9999}})
		}, "not a valid value ID"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewProgram()
			f := p.NewFunction("f", 0)
			c.mk(p, f)
			f.Exit = f.Entry
			err := p.Finalize()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Finalize err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate NewFunction did not panic")
		}
	}()
	p := NewProgram()
	p.NewFunction("f", 0)
	p.NewFunction("f", 0)
}

func TestFieldObjOfPointerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FieldObj of pointer did not panic")
		}
	}()
	p := NewProgram()
	v := p.NewPointer("v")
	p.FieldObj(v, 1)
}
